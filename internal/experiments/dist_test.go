package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"testing"
	"time"

	"rpivideo/internal/core"
	"rpivideo/internal/dist"
	"rpivideo/internal/obs"
)

// distWorkerEnv gates the TestMain re-exec that turns the test binary into
// a real campaign worker subprocess.
const distWorkerEnv = "RPIVIDEO_EXPERIMENTS_DIST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(distWorkerEnv) == "1" {
		if err := dist.Serve(os.Stdin, os.Stdout, DistRunner{}); err != nil {
			fmt.Fprintln(os.Stderr, "dist worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// serialReference computes the serial campaign exports for a spec: metrics
// and trace exactly as rpbench's serial -scenario path writes them, plus
// the shard-grouped summary reference (single-run summaries merged in
// run-index order — the float grouping the distributed fold uses).
func serialReference(t *testing.T, spec DistSpec, runs int) (metrics, trace, summary []byte) {
	t.Helper()
	cfg, err := resolveDistConfig(spec)
	if err != nil {
		t.Fatalf("resolveDistConfig: %v", err)
	}
	results, errs := core.RunCampaignWithOptions(cfg, runs, core.CampaignOptions{})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
	}
	var m, tr bytes.Buffer
	if err := core.WriteCampaignMetrics(&m, results); err != nil {
		t.Fatalf("serial metrics: %v", err)
	}
	if err := core.WriteCampaignTrace(&tr, results); err != nil {
		t.Fatalf("serial trace: %v", err)
	}
	ref := &core.Summary{}
	for _, r := range results {
		ref.Merge(core.Summarize([]*core.Result{r}))
	}
	sum, err := json.Marshal(ref)
	if err != nil {
		t.Fatalf("serial summary: %v", err)
	}
	return m.Bytes(), tr.Bytes(), sum
}

// foldOutcome runs FoldDistShards and renders the three comparable exports.
func foldOutcome(t *testing.T, spec DistSpec, out *dist.Outcome) (metrics, trace, summary []byte) {
	t.Helper()
	for run, err := range out.RunErrs {
		if err != nil {
			t.Fatalf("run %d failed: %v", run, err)
		}
	}
	camp, err := FoldDistShards(spec, out)
	if err != nil {
		t.Fatalf("FoldDistShards: %v", err)
	}
	var m bytes.Buffer
	if err := camp.Registry.WriteJSON(&m); err != nil {
		t.Fatalf("fold metrics: %v", err)
	}
	sum, err := json.Marshal(camp.Summary)
	if err != nil {
		t.Fatalf("fold summary: %v", err)
	}
	return m.Bytes(), camp.Trace, sum
}

func requireSameBytes(t *testing.T, what string, got, want []byte) {
	t.Helper()
	if !bytes.Equal(got, want) {
		limit := func(b []byte) string {
			if len(b) > 400 {
				return string(b[:400]) + "…"
			}
			return string(b)
		}
		t.Fatalf("%s diverged from the serial reference\n got (%d bytes): %s\nwant (%d bytes): %s",
			what, len(got), limit(got), len(want), limit(want))
	}
}

// TestDistMergeEquivalence proves the headline identity with in-process
// workers: a sharded campaign's metrics, trace and summary are
// byte-identical to the serial campaign's, at multiple topologies.
func TestDistMergeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run scenario campaigns skipped in -short mode")
	}
	spec := DistSpec{Scenario: "urban-gcc", Seed: 99}
	const runs = 5
	rawSpec, _ := json.Marshal(spec)
	wantMetrics, wantTrace, wantSummary := serialReference(t, spec, runs)

	for _, tc := range []struct{ workers, chunk int }{{3, 1}, {2, 2}} {
		t.Run(fmt.Sprintf("w%d_c%d", tc.workers, tc.chunk), func(t *testing.T) {
			peers := make([]dist.Peer, tc.workers)
			for i := range peers {
				peers[i] = dist.StartPipe(fmt.Sprintf("w%d", i), DistRunner{})
			}
			out, err := dist.Run(rawSpec, dist.Config{Runs: runs, ChunkSize: tc.chunk}, peers)
			if err != nil {
				t.Fatalf("dist.Run: %v", err)
			}
			gotMetrics, gotTrace, gotSummary := foldOutcome(t, spec, out)
			requireSameBytes(t, "metrics", gotMetrics, wantMetrics)
			requireSameBytes(t, "trace", gotTrace, wantTrace)
			requireSameBytes(t, "summary", gotSummary, wantSummary)
		})
	}
}

// TestDistChaosScenario is the end-to-end robustness proof on the real
// simulation: subprocess workers run the urban-gcc scenario, one is
// SIGKILLed mid-campaign, and the full report bundle must still come out
// byte-identical to the serial reference — at two (workers, chunk-size)
// topologies.
func TestDistChaosScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos campaigns skipped in -short mode")
	}
	spec := DistSpec{Scenario: "urban-gcc", Seed: 7}
	const runs = 6
	rawSpec, _ := json.Marshal(spec)
	wantMetrics, wantTrace, wantSummary := serialReference(t, spec, runs)
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}

	for _, tc := range []struct{ workers, chunk int }{{4, 2}, {3, 1}} {
		t.Run(fmt.Sprintf("w%d_c%d", tc.workers, tc.chunk), func(t *testing.T) {
			peers, err := dist.StartProcs(tc.workers, func(i int) *exec.Cmd {
				cmd := exec.Command(exe)
				cmd.Env = append(os.Environ(), distWorkerEnv+"=1")
				return cmd
			})
			if err != nil {
				t.Fatalf("StartProcs: %v", err)
			}
			pids := make([]int, len(peers))
			for i, p := range peers {
				pids[i] = p.(*dist.ProcPeer).Pid()
			}
			t.Cleanup(func() {
				for _, p := range peers {
					p.Kill()
					p.Close()
				}
			})

			// SIGKILL the worker that just received the second first-attempt
			// grant: it provably holds an uncommitted lease (the grant is
			// microseconds old; a scenario run takes milliseconds), so the
			// campaign cannot finish without the coordinator observing the
			// death and re-issuing the chunk. Killing an idle worker instead
			// would race campaign completion against EOF detection.
			var once sync.Once
			grants := 0
			reg := obs.NewRegistry()
			out, err := dist.Run(rawSpec, dist.Config{
				Runs: runs, ChunkSize: tc.chunk,
				Lease: 10 * time.Second, Backoff: 2 * time.Millisecond, BackoffMax: 10 * time.Millisecond,
				Metrics: reg,
				Events: func(e dist.Event) {
					if e.Kind == dist.EvGrant && e.Attempt == 1 {
						grants++
						if grants == 2 {
							once.Do(func() { syscall.Kill(pids[e.Worker], syscall.SIGKILL) })
						}
					}
				},
			}, peers)
			if err != nil {
				t.Fatalf("dist.Run: %v", err)
			}
			gotMetrics, gotTrace, gotSummary := foldOutcome(t, spec, out)
			requireSameBytes(t, "metrics", gotMetrics, wantMetrics)
			requireSameBytes(t, "trace", gotTrace, wantTrace)
			requireSameBytes(t, "summary", gotSummary, wantSummary)
			if lost := reg.Counter("dist_workers_lost"); lost != 1 {
				t.Fatalf("dist_workers_lost = %d, want 1", lost)
			}
			if n := reg.Counter("dist_leases_reissued"); n < 1 {
				t.Fatalf("dist_leases_reissued = %d, want >= 1 after the SIGKILL", n)
			}
		})
	}
}
