package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"rpivideo/internal/core"
	"rpivideo/internal/dist"
	"rpivideo/internal/obs"
)

// DistSpec is the campaign spec a distributed scenario campaign ships to
// its workers: the scenario name plus the same overrides the serial
// -scenario path applies. Both sides resolve the scenario from their own
// binary, so the wire form stays tiny and core.Config (which carries
// non-serializable hooks) never travels.
type DistSpec struct {
	// Scenario is the experiments scenario name (fleet scenarios are
	// rejected: a fleet shares one cell map and cannot shard by run).
	Scenario string `json:"scenario"`
	// Seed overrides the scenario's pinned base seed when non-zero.
	Seed int64 `json:"seed,omitempty"`
	// RunTimeout, when positive, arms core.RunWithTimeout's per-run
	// watchdog inside each worker.
	RunTimeout time.Duration `json:"run_timeout,omitempty"`
}

// distShard is one run's wire payload: the three byte-stable exports the
// serial scenario path derives from a Result. Shards are per run — never
// pre-merged per chunk — so the coordinator's fold applies the identical
// float-accumulation grouping a serial campaign would.
type distShard struct {
	// Registry is the run's obs registry export (Result.MetricsRegistry
	// rendered by WriteJSON).
	Registry json.RawMessage `json:"registry"`
	// Summary is the run's single-run core.Summary in its wire form.
	Summary json.RawMessage `json:"summary"`
	// Trace is the run's JSONL trace (meta line + events), byte-exact.
	Trace []byte `json:"trace,omitempty"`
}

// resolveDistConfig resolves a spec to the run configuration the serial
// path would use: the scenario's config with tracing forced on and the
// seed override applied.
func resolveDistConfig(spec DistSpec) (core.Config, error) {
	sc, err := ScenarioByName(spec.Scenario)
	if err != nil {
		return core.Config{}, err
	}
	if sc.Fleet > 0 {
		return core.Config{}, fmt.Errorf("scenario %s is a fleet scenario: fleets share one cell map and cannot shard by run", sc.Name)
	}
	cfg := sc.Config
	cfg.Trace = true
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	return cfg, nil
}

// DistRunner executes scenario runs on the worker side of a distributed
// campaign. Run index r maps to the same derived seed the serial campaign
// engine uses — core.DeriveSeed(base, r) — so a shard is byte-identical to
// what the serial path would have produced for that run.
type DistRunner struct{}

// Run implements dist.Runner.
func (DistRunner) Run(rawSpec json.RawMessage, run int) ([]byte, error) {
	var spec DistSpec
	if err := json.Unmarshal(rawSpec, &spec); err != nil {
		return nil, fmt.Errorf("dist spec: %w", err)
	}
	cfg, err := resolveDistConfig(spec)
	if err != nil {
		return nil, err
	}
	c := cfg
	c.Seed = core.DeriveSeed(cfg.Seed, run)
	res, err := core.RunWithTimeout(c, spec.RunTimeout)
	if err != nil {
		return nil, fmt.Errorf("scenario %s run %d: %w", spec.Scenario, run, err)
	}

	var sh distShard
	var reg bytes.Buffer
	if err := res.MetricsRegistry().WriteJSON(&reg); err != nil {
		return nil, fmt.Errorf("run %d registry: %w", run, err)
	}
	sh.Registry = reg.Bytes()
	if sh.Summary, err = json.Marshal(core.Summarize([]*core.Result{res})); err != nil {
		return nil, fmt.Errorf("run %d summary: %w", run, err)
	}
	if res.Trace != nil {
		var tr bytes.Buffer
		if err := obs.WriteJSONL(&tr, core.TraceRunMeta(res, run), res.Trace.Events()); err != nil {
			return nil, fmt.Errorf("run %d trace: %w", run, err)
		}
		sh.Trace = tr.Bytes()
	}
	return json.Marshal(&sh)
}

// DistCampaign is a distributed campaign's folded output: the same three
// exports the serial scenario path produces, rebuilt from per-run shards
// in run-index order.
type DistCampaign struct {
	// Registry is the campaign metrics registry; its WriteJSON output is
	// byte-identical to core.WriteCampaignMetrics over a serial campaign.
	Registry *obs.Registry
	// Summary is the campaign summary, merged per run in index order.
	Summary *core.Summary
	// Trace is the concatenated JSONL trace, byte-identical to
	// core.WriteCampaignTrace over a serial campaign.
	Trace []byte
	// RunErrs holds per-run errors (worker-reported failures and failed
	// chunks), indexed by run; nil entries succeeded.
	RunErrs []error
}

// FoldDistShards rebuilds the campaign outputs from a coordinator outcome.
// Failed or errored runs are skipped in every export, exactly as the serial
// path skips nil results; their errors stay in RunErrs. The summary's
// Config is restored from the spec (it does not travel with shards).
func FoldDistShards(spec DistSpec, out *dist.Outcome) (*DistCampaign, error) {
	cfg, err := resolveDistConfig(spec)
	if err != nil {
		return nil, err
	}
	camp := &DistCampaign{
		Registry: obs.NewRegistry(),
		Summary:  &core.Summary{},
		RunErrs:  out.RunErrs,
	}
	var trace bytes.Buffer
	for run, raw := range out.Shards {
		if raw == nil {
			continue
		}
		var sh distShard
		if err := json.Unmarshal(raw, &sh); err != nil {
			return nil, fmt.Errorf("run %d shard: %w", run, err)
		}
		reg, err := obs.ReadRegistryJSON(bytes.NewReader(sh.Registry))
		if err != nil {
			return nil, fmt.Errorf("run %d registry: %w", run, err)
		}
		camp.Registry.Merge(reg)
		var sum core.Summary
		if err := json.Unmarshal(sh.Summary, &sum); err != nil {
			return nil, fmt.Errorf("run %d summary: %w", run, err)
		}
		camp.Summary.Merge(&sum)
		trace.Write(sh.Trace)
	}
	camp.Trace = trace.Bytes()
	if camp.Summary.Runs > 0 {
		// The wire form drops Config (it has no JSON shape); the first
		// run's config under the campaign derivation is cfg with that
		// run's derived seed, which is what Summarize would have kept.
		cfg.Seed = core.DeriveSeed(cfg.Seed, firstRun(out))
		camp.Summary.Config = cfg
	}
	return camp, nil
}

// firstRun returns the lowest run index with a committed shard.
func firstRun(out *dist.Outcome) int {
	for run, raw := range out.Shards {
		if raw != nil {
			return run
		}
	}
	return 0
}
