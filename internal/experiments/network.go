package experiments

import (
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/core"
	"rpivideo/internal/metrics"
)

// mobilityConfigs enumerates the four air/ground × urban/rural corners the
// networking section (§4.1) compares, using the static workload (handover
// and latency statistics are workload-independent at this level).
func mobilityConfigs(seed int64) []core.Config {
	var out []core.Config
	for _, env := range []cell.Environment{cell.Urban, cell.Rural} {
		for _, air := range []bool{true, false} {
			out = append(out, core.Config{Env: env, Air: air, CC: core.CCStatic, Seed: seed})
		}
	}
	return out
}

// Fig4aHandoverFrequency reproduces Fig. 4(a): handover frequency in the
// air versus on the ground, per environment.
func Fig4aHandoverFrequency(o Options) *Report {
	o.defaults()
	r := &Report{ID: "fig4a", Title: "Handover frequency, air vs ground (HO/s)"}
	rates := map[string]float64{}
	var maxPerRun float64
	for _, cfg := range mobilityConfigs(o.Seed) {
		results := seededCampaign(cfg, o)
		var perRun metrics.Dist
		for _, res := range results {
			rate := res.HandoverRate()
			perRun.Add(rate)
			if cfg.Air && rate > maxPerRun {
				maxPerRun = rate
			}
		}
		rates[cfg.Label()] = perRun.Mean()
		r.row("%-22s %s", cfg.Label(), perRun.Box())
	}
	airU, grdU := rates["urban-P1-air-static"], rates["urban-P1-grd-static"]
	airR, grdR := rates["rural-P1-air-static"], rates["rural-P1-grd-static"]
	r.check("air ≈ order of magnitude above ground (urban)", airU >= 4*grdU,
		"air %.3f vs grd %.3f (paper: ≈10×)", airU, grdU)
	r.check("air above ground (rural)", airR >= 3*grdR, "air %.3f vs grd %.3f", airR, grdR)
	r.check("urban air above rural air", airU > airR, "%.3f vs %.3f", airU, airR)
	r.check("peak air rate plausible", maxPerRun <= 0.8, "max %.3f HO/s (paper: up to 0.7)", maxPerRun)
	return r
}

// Fig4bHandoverExecutionTime reproduces Fig. 4(b): HET in the air vs on the
// ground, with the 49.5 ms 3GPP success threshold and the aerial outliers.
func Fig4bHandoverExecutionTime(o Options) *Report {
	o.defaults()
	r := &Report{ID: "fig4b", Title: "Handover execution time, air vs ground (ms)"}
	var air, grd metrics.Dist
	for _, cfg := range mobilityConfigs(o.Seed) {
		for _, res := range seededCampaign(cfg, o) {
			for _, ev := range res.Handovers {
				ms := float64(ev.HET) / float64(time.Millisecond)
				if cfg.Air {
					air.Add(ms)
				} else {
					grd.Add(ms)
				}
			}
		}
	}
	r.row("%-6s %s", "air", air.Box())
	r.row("%-6s %s", "grd", grd.Box())
	r.row("air:   ≤49.5ms %.1f%%   >500ms %.2f%%", 100*air.FracBelow(49.5), 100*air.FracAtOrAbove(500))
	r.row("grd:   ≤49.5ms %.1f%%   >500ms %.2f%%", 100*grd.FracBelow(49.5), 100*grd.FracAtOrAbove(500))
	r.check("majority below 49.5 ms (3GPP threshold)", air.FracBelow(49.5) > 0.6 && grd.FracBelow(49.5) > 0.6,
		"air %.0f%%, grd %.0f%%", 100*air.FracBelow(49.5), 100*grd.FracBelow(49.5))
	r.check("excessive outliers are aerial", air.Max() > 500 && air.Max() <= 4001,
		"air max %.0f ms (paper: up to 4 s)", air.Max())
	r.check("ground outliers bounded", grd.N() == 0 || grd.Max() <= 1000, "grd max %.0f ms", grd.Max())
	return r
}

// Fig5OneWayLatency reproduces Fig. 5: the one-way latency CDFs on the
// ground and in the air, urban and rural.
func Fig5OneWayLatency(o Options) *Report {
	o.defaults()
	r := &Report{ID: "fig5", Title: "One-way latency CDF, ground vs air (ms)"}
	grid := []float64{30, 50, 100, 300, 1000}
	dists := map[string]*metrics.Sketch{}
	for _, cfg := range mobilityConfigs(o.Seed) {
		res := campaign(cfg, o)
		d := &res.OWDms
		dists[cfg.Label()] = d
		r.Lines = append(r.Lines, cdfRow(cfg.Label(), d, grid))
	}
	grdU100 := dists["urban-P1-grd-static"].FracBelow(100)
	airU100 := dists["urban-P1-air-static"].FracBelow(100)
	airR100 := dists["rural-P1-air-static"].FracBelow(100)
	r.check("ground ≈99% below 100 ms (urban)", grdU100 > 0.95, "%.1f%%", 100*grdU100)
	r.check("rural air mostly below 100 ms too", airR100 > 0.6, "%.1f%%", 100*airR100)
	r.check("air below ground (urban)", airU100 < grdU100, "air %.1f%% vs grd %.1f%%", 100*airU100, 100*grdU100)
	r.check("air still mostly below 100 ms", airU100 > 0.80, "%.1f%% (paper ≈96%%)", 100*airU100)
	r.check("air tail exceeds 1 s", dists["urban-P1-air-static"].Max() > 1000 || dists["rural-P1-air-static"].Max() > 1000,
		"urban max %.0f, rural max %.0f", dists["urban-P1-air-static"].Max(), dists["rural-P1-air-static"].Max())
	r.check("rural latency above urban (air median)",
		dists["rural-P1-air-static"].Median() > dists["urban-P1-air-static"].Median(),
		"rural %.0f ms vs urban %.0f ms", dists["rural-P1-air-static"].Median(), dists["urban-P1-air-static"].Median())
	return r
}

// Fig8HandoverTimeline reproduces Fig. 8: one flight's network latency,
// playback latency proxy, packet losses and handovers on a common timeline,
// demonstrating that latency spikes precede handovers.
func Fig8HandoverTimeline(o Options) *Report {
	o.defaults()
	r := &Report{ID: "fig8", Title: "Handover timeline: latency spikes around HOs (single rural GCC flight)"}
	res := core.Run(core.Config{Env: cell.Rural, Air: true, CC: core.CCGCC, Seed: o.Seed, KeepSeries: true})
	if res.OWDSeries == nil || res.OWDSeries.Len() == 0 {
		r.check("flight produced packets", false, "empty OWD series")
		return r
	}
	// Print a 5-second-bin timeline: median OWD per bin, HO markers.
	const bin = 5 * time.Second
	hoInBin := func(lo, hi time.Duration) int {
		n := 0
		for _, ev := range res.Handovers {
			if ev.At >= lo && ev.At < hi {
				n++
			}
		}
		return n
	}
	for lo := time.Duration(0); lo < res.Duration; lo += bin {
		pts := res.OWDSeries.Window(lo, lo+bin)
		if len(pts) == 0 {
			continue
		}
		var d metrics.Dist
		for _, p := range pts {
			d.Add(p.V)
		}
		marker := ""
		for i := 0; i < hoInBin(lo, lo+bin); i++ {
			marker += " HO"
		}
		r.row("t=%3ds owd p50=%5.0fms p95=%6.0fms%s", int(lo/time.Second), d.Median(), d.Quantile(0.95), marker)
	}
	// Shape: the peak OWD in the window around each HO (the pre-HO
	// degradation through the execution gap) should far exceed the
	// flight's median OWD.
	med := res.OWDms.Median()
	spiked := 0
	for _, ev := range res.Handovers {
		pts := res.OWDSeries.Window(ev.At-time.Second, ev.At+ev.HET+500*time.Millisecond)
		for _, p := range pts {
			if p.V > 2.5*med {
				spiked++
				break
			}
		}
	}
	r.check("handovers present", len(res.Handovers) > 0, "%d handovers", len(res.Handovers))
	r.check("latency spikes accompany handovers", len(res.Handovers) > 0 && spiked*2 >= len(res.Handovers),
		"%d of %d HOs with >2.5×median OWD in the surrounding window", spiked, len(res.Handovers))
	return r
}

// Fig9LatencyRatio reproduces Fig. 9: max/min network latency ratio in the
// 1-second windows before and after each aerial handover.
func Fig9LatencyRatio(o Options) *Report {
	o.defaults()
	r := &Report{ID: "fig9", Title: "Max/min latency ratio around aerial handovers"}
	var before, after metrics.Dist
	for _, env := range []cell.Environment{cell.Urban, cell.Rural} {
		cfg := core.Config{Env: env, Air: true, CC: core.CCStatic, Seed: o.Seed, KeepSeries: true}
		for _, res := range seededCampaign(cfg, o) {
			for _, ev := range res.Handovers {
				if b, ok := res.OWDSeries.WindowMaxMinRatio(ev.At-time.Second, ev.At); ok {
					before.Add(b)
				}
				end := ev.At + ev.HET
				if a, ok := res.OWDSeries.WindowMaxMinRatio(end, end+time.Second); ok {
					after.Add(a)
				}
			}
		}
	}
	r.row("before HO: %s", before.Box())
	r.row("after HO:  %s", after.Box())
	r.check("before-HO spikes pronounced", before.Mean() >= 3, "mean %.1f× (paper ≈8×)", before.Mean())
	r.check("before exceeds after", before.Mean() > after.Mean(), "%.1f vs %.1f (paper 8 vs 5)", before.Mean(), after.Mean())
	r.check("outliers exist but bounded", before.Max() >= 10 && before.Max() <= 80, "max %.0f× (paper up to 37×)", before.Max())
	return r
}
