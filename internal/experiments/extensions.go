package experiments

import (
	"rpivideo/internal/cell"
	"rpivideo/internal/core"
)

// ExtDAPS evaluates the Dual Active Protocol Stack handover (3GPP Rel-16)
// that §5 proposes as a fix for the pre-handover latency spikes: with
// make-before-break link establishment the execution gap disappears and the
// degradation around handovers is masked by the second leg.
func ExtDAPS(o Options) *Report {
	o.defaults()
	r := &Report{ID: "ext-daps", Title: "DAPS make-before-break handover (§5 extension)"}
	base := core.Config{Env: cell.Urban, Air: true, CC: core.CCStatic, Seed: o.Seed}
	daps := base
	daps.DAPS = true
	plain := campaign(base, o)
	withDAPS := campaign(daps, o)
	r.row("break-before-make: <300ms %.0f%%  owd p99 %4.0f ms  stalls %.2f/min",
		100*plain.PlaybackMs.FracBelow(300), plain.OWDms.Quantile(0.99), plain.StallsPerMin)
	r.row("DAPS:              <300ms %.0f%%  owd p99 %4.0f ms  stalls %.2f/min",
		100*withDAPS.PlaybackMs.FracBelow(300), withDAPS.OWDms.Quantile(0.99), withDAPS.StallsPerMin)
	r.check("DAPS removes the latency spikes", withDAPS.OWDms.Quantile(0.99) < 0.7*plain.OWDms.Quantile(0.99),
		"p99 %.0f → %.0f ms", plain.OWDms.Quantile(0.99), withDAPS.OWDms.Quantile(0.99))
	r.check("DAPS improves the 300 ms target",
		withDAPS.PlaybackMs.FracBelow(300) > plain.PlaybackMs.FracBelow(300),
		"%.0f%% → %.0f%%", 100*plain.PlaybackMs.FracBelow(300), 100*withDAPS.PlaybackMs.FracBelow(300))
	r.check("handover frequency unchanged (same radio)",
		withDAPS.HandoverRate() > 0.5*plain.HandoverRate() && withDAPS.HandoverRate() < 2*plain.HandoverRate(),
		"%.3f vs %.3f HO/s", withDAPS.HandoverRate(), plain.HandoverRate())
	return r
}

// ExtAQM evaluates the §5 bufferbloat mitigation: a CoDel queue manager on
// the bottleneck. In the queueing-dominated regime (rural ground, a static
// rate near capacity) it halves the delay tail and removes the overflow-
// induced frame loss; radio-stall spikes in the air are not queue-induced
// and remain.
func ExtAQM(o Options) *Report {
	o.defaults()
	r := &Report{ID: "ext-aqm", Title: "CoDel on the bottleneck buffer (§5 extension)"}
	base := core.Config{Env: cell.Rural, Air: false, CC: core.CCStatic, StaticRate: 10.5e6, Seed: o.Seed}
	aqm := base
	aqm.AQM = true
	plain := campaign(base, o)
	withAQM := campaign(aqm, o)
	r.row("deep FIFO: owd p95 %4.0f ms  p99 %4.0f ms  stalls %.2f/min",
		plain.OWDms.Quantile(0.95), plain.OWDms.Quantile(0.99), plain.StallsPerMin)
	r.row("CoDel:     owd p95 %4.0f ms  p99 %4.0f ms  stalls %.2f/min  aqm drops %d",
		withAQM.OWDms.Quantile(0.95), withAQM.OWDms.Quantile(0.99), withAQM.StallsPerMin, withAQM.AQMDrops)
	r.check("CoDel cuts the standing-queue delay", withAQM.OWDms.Quantile(0.95) < 0.75*plain.OWDms.Quantile(0.95),
		"p95 %.0f → %.0f ms (p99 %.0f → %.0f)", plain.OWDms.Quantile(0.95), withAQM.OWDms.Quantile(0.95),
		plain.OWDms.Quantile(0.99), withAQM.OWDms.Quantile(0.99))
	r.check("the bound is bought with drops", withAQM.AQMDrops > 0,
		"%d CoDel head drops", withAQM.AQMDrops)
	r.check("stall rate does not worsen", withAQM.StallsPerMin <= plain.StallsPerMin+0.2,
		"%.2f vs %.2f /min", withAQM.StallsPerMin, plain.StallsPerMin)
	return r
}

// ExtMultipath evaluates the multipath-transport idea of §2.1/§5: duplicate
// the stream over both operators' access links and play the first copy.
// Uncorrelated last-mile failures stop mattering, which is exactly the
// reliability argument the paper makes for multipath.
func ExtMultipath(o Options) *Report {
	o.defaults()
	r := &Report{ID: "ext-mpath", Title: "Multipath duplication over both operators (§5 extension)"}
	base := core.Config{Env: cell.Rural, Air: true, CC: core.CCStatic, Seed: o.Seed}
	mp := base
	mp.Multipath = true
	single := campaign(base, o)
	dual := campaign(mp, o)
	r.row("single path (P1):   <300ms %.0f%%  owd p99 %5.0f ms  skipped %3d  stalls %.2f/min",
		100*single.PlaybackMs.FracBelow(300), single.OWDms.Quantile(0.99), single.FramesSkipped, single.StallsPerMin)
	r.row("duplication (P1+P2): <300ms %.0f%%  owd p99 %5.0f ms  skipped %3d  stalls %.2f/min  dups %d",
		100*dual.PlaybackMs.FracBelow(300), dual.OWDms.Quantile(0.99), dual.FramesSkipped, dual.StallsPerMin, dual.MultipathDuplicates)
	r.check("duplication cuts the delay tail", dual.OWDms.Quantile(0.99) < 0.5*single.OWDms.Quantile(0.99),
		"p99 %.0f → %.0f ms", single.OWDms.Quantile(0.99), dual.OWDms.Quantile(0.99))
	r.check("duplication improves the 300 ms target",
		dual.PlaybackMs.FracBelow(300) > single.PlaybackMs.FracBelow(300)+0.1,
		"%.0f%% → %.0f%%", 100*single.PlaybackMs.FracBelow(300), 100*dual.PlaybackMs.FracBelow(300))
	r.check("fewer frames lost", dual.FramesSkipped <= single.FramesSkipped,
		"%d → %d skipped", single.FramesSkipped, dual.FramesSkipped)
	r.check("duplicates actually flowed", dual.MultipathDuplicates > 1000,
		"%d duplicate copies discarded", dual.MultipathDuplicates)
	return r
}
