package experiments

import (
	"fmt"
	"time"

	"rpivideo/internal/bond"
	"rpivideo/internal/cell"
	"rpivideo/internal/core"
	"rpivideo/internal/fault"
	"rpivideo/internal/obs"
	"rpivideo/internal/repair"
)

// Scenario is one small named configuration for observability runs: the
// rpbench -scenario mode traces it, exports its metrics, and the golden
// regression suite pins its trace bytes. Scenarios are deliberately short —
// seconds, not the six-minute campaign flights — so golden files stay small
// and the regression tests run under the race detector.
type Scenario struct {
	// Name is the -scenario / golden-file identifier.
	Name string
	// Desc is the one-line -list description.
	Desc string
	// Config is the run configuration (Seed is the campaign base seed;
	// per-run seeds derive from it).
	Config core.Config
	// Runs is the campaign size.
	Runs int
	// Fleet, when positive, makes this a fleet scenario: Fleet UAVs run
	// against one shared base-station map (core.RunFleet) instead of a
	// campaign of independent runs. Sched selects the per-cell PRB
	// scheduler. Fleet scenarios go through RunFleetScenario.
	Fleet int
	Sched cell.SchedulerKind
}

// Scenarios returns the named observability scenarios.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "urban-gcc",
			Desc: "urban ground GCC, 3 s — the clean-path trace",
			Config: core.Config{
				Env:      cell.Urban,
				Op:       cell.P1,
				CC:       core.CCGCC,
				Seed:     1,
				Duration: 3 * time.Second,
			},
			Runs: 1,
		},
		{
			Name: "robust-blackout",
			Desc: "urban ground GCC with a 2 s blackout at 3 s, 8 s — the fault-path trace",
			Config: core.Config{
				Env:      cell.Urban,
				Op:       cell.P1,
				CC:       core.CCGCC,
				Seed:     1,
				Duration: 8 * time.Second,
				Faults: fault.Config{
					Windows:          []fault.Window{{Start: 3 * time.Second, Duration: 2 * time.Second, Dir: fault.Both}},
					Watchdog:         true,
					KeyframeRecovery: true,
				},
			},
			Runs: 1,
		},
		{
			Name: "repair-blackout",
			Desc: "urban ground GCC with NACK/RTX repair through a 60 ms loss fade at 1.5 s and a 2 s blackout at 3 s, 8 s — the repair-path trace",
			Config: core.Config{
				Env:      cell.Urban,
				Op:       cell.P1,
				CC:       core.CCGCC,
				Seed:     1,
				Duration: 8 * time.Second,
				Faults: fault.Config{
					Windows: []fault.Window{
						// The fade exercises the full repair wire path
						// (nack-sent → rtx-sent → repair-ok); the blackout
						// exercises the outage guard's wholesale hand-off
						// to the PLI path (repair-abandoned).
						{Start: 1500 * time.Millisecond, Duration: 60 * time.Millisecond, Dir: fault.Both, Loss: true},
						{Start: 3 * time.Second, Duration: 2 * time.Second, Dir: fault.Both},
					},
					Watchdog:         true,
					KeyframeRecovery: true,
				},
				Repair: repair.Config{Enabled: true},
			},
			Runs: 1,
		},
		{
			Name: "bond-rlf",
			Desc: "urban ground GCC, dual-operator failover through a 2 s primary-path blackout with RLF at 3 s, 8 s — the bonding trace",
			Config: core.Config{
				Env:      cell.Urban,
				Op:       cell.P1,
				CC:       core.CCGCC,
				Seed:     1,
				Duration: 8 * time.Second,
				Bond:     bond.Config{Policy: bond.PolicyFailover},
				Faults: fault.Config{
					Windows:          []fault.Window{{Start: 3 * time.Second, Duration: 2 * time.Second, Dir: fault.Both, Path: fault.PathPrimary}},
					RLF:              true,
					Watchdog:         true,
					KeyframeRecovery: true,
				},
			},
			Runs: 1,
		},
		{
			Name: "fleet-contention",
			Desc: "urban aerial static-rate fleet of 8 on one shared cell map (round-robin PRB split), 3 s — the contention trace",
			Config: core.Config{
				Env:      cell.Urban,
				Op:       cell.P1,
				Air:      true,
				CC:       core.CCStatic,
				Seed:     1,
				Duration: 3 * time.Second,
			},
			Runs:  1,
			Fleet: 8,
		},
	}
}

// ScenarioByName resolves a scenario by its identifier.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("unknown scenario %q", name)
}

// ScenarioOptions tunes scenario execution beyond the scenario's own
// definition. The zero value reproduces the plain RunScenario behavior.
type ScenarioOptions struct {
	// Seed overrides the scenario's base seed when non-zero.
	Seed int64
	// Workers is the campaign worker count (0 = one per CPU). Results are
	// identical at any setting.
	Workers int
	// Runs overrides the scenario's campaign size when positive — the
	// rpbench -runs flag, mirroring the distributed mode's behavior. The
	// golden-trace and baseline tooling leaves this zero so checked-in
	// artifacts keep their pinned sizes.
	Runs int
	// StatusSink, when non-nil, receives live progress and per-run metrics
	// (the -serve ops endpoints). Purely observational.
	StatusSink obs.StatusSink
}

// RunScenario executes the scenario's campaign with tracing enabled and
// returns the per-run results in run-index order. seed overrides the
// scenario's base seed when non-zero; workers is the campaign worker count
// (0 = one per CPU). Results are identical at any worker count.
func RunScenario(sc Scenario, seed int64, workers int) ([]*core.Result, error) {
	return RunScenarioWithOptions(sc, ScenarioOptions{Seed: seed, Workers: workers})
}

// RunScenarioWithOptions is RunScenario with the full option set.
func RunScenarioWithOptions(sc Scenario, o ScenarioOptions) ([]*core.Result, error) {
	if sc.Fleet > 0 {
		return nil, fmt.Errorf("scenario %s is a fleet scenario: use RunFleetScenario", sc.Name)
	}
	cfg := sc.Config
	cfg.Trace = true
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	runs := sc.Runs
	if o.Runs > 0 {
		runs = o.Runs
	}
	results, errs := core.RunCampaignWithOptions(cfg, runs, core.CampaignOptions{Workers: o.Workers, StatusSink: o.StatusSink})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario %s run %d: %w", sc.Name, i, err)
		}
	}
	return results, nil
}

// RunFleetScenario executes a fleet scenario: sc.Fleet UAVs on one shared
// base-station map under sc.Sched, with the per-cell event timeline always
// recorded (it is the fleet counterpart of the per-run trace). seed
// overrides the scenario's base seed when non-zero; workers caps the
// per-UAV phases (0 = one per CPU). The result is byte-identical at any
// worker count.
func RunFleetScenario(sc Scenario, seed int64, workers int) (*core.FleetResult, error) {
	return RunFleetScenarioWithOptions(sc, ScenarioOptions{Seed: seed, Workers: workers})
}

// RunFleetScenarioWithOptions is RunFleetScenario with the full option set.
// ScenarioOptions.Runs is ignored: a fleet's size is the scenario's, not a
// campaign length.
func RunFleetScenarioWithOptions(sc Scenario, o ScenarioOptions) (*core.FleetResult, error) {
	if sc.Fleet <= 0 {
		return nil, fmt.Errorf("scenario %s is not a fleet scenario", sc.Name)
	}
	cfg := sc.Config
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	fr, errs := core.RunFleet(core.FleetConfig{
		Config:     cfg,
		Size:       sc.Fleet,
		Sched:      sc.Sched,
		Workers:    o.Workers,
		Events:     true,
		StatusSink: o.StatusSink,
	})
	for u, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario %s uav %d: %w", sc.Name, u, err)
		}
	}
	return fr, nil
}
