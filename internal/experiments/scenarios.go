package experiments

import (
	"fmt"
	"time"

	"rpivideo/internal/bond"
	"rpivideo/internal/cell"
	"rpivideo/internal/core"
	"rpivideo/internal/fault"
	"rpivideo/internal/repair"
)

// Scenario is one small named configuration for observability runs: the
// rpbench -scenario mode traces it, exports its metrics, and the golden
// regression suite pins its trace bytes. Scenarios are deliberately short —
// seconds, not the six-minute campaign flights — so golden files stay small
// and the regression tests run under the race detector.
type Scenario struct {
	// Name is the -scenario / golden-file identifier.
	Name string
	// Desc is the one-line -list description.
	Desc string
	// Config is the run configuration (Seed is the campaign base seed;
	// per-run seeds derive from it).
	Config core.Config
	// Runs is the campaign size.
	Runs int
}

// Scenarios returns the named observability scenarios.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "urban-gcc",
			Desc: "urban ground GCC, 3 s — the clean-path trace",
			Config: core.Config{
				Env:      cell.Urban,
				Op:       cell.P1,
				CC:       core.CCGCC,
				Seed:     1,
				Duration: 3 * time.Second,
			},
			Runs: 1,
		},
		{
			Name: "robust-blackout",
			Desc: "urban ground GCC with a 2 s blackout at 3 s, 8 s — the fault-path trace",
			Config: core.Config{
				Env:      cell.Urban,
				Op:       cell.P1,
				CC:       core.CCGCC,
				Seed:     1,
				Duration: 8 * time.Second,
				Faults: fault.Config{
					Windows:          []fault.Window{{Start: 3 * time.Second, Duration: 2 * time.Second, Dir: fault.Both}},
					Watchdog:         true,
					KeyframeRecovery: true,
				},
			},
			Runs: 1,
		},
		{
			Name: "repair-blackout",
			Desc: "urban ground GCC with NACK/RTX repair through a 60 ms loss fade at 1.5 s and a 2 s blackout at 3 s, 8 s — the repair-path trace",
			Config: core.Config{
				Env:      cell.Urban,
				Op:       cell.P1,
				CC:       core.CCGCC,
				Seed:     1,
				Duration: 8 * time.Second,
				Faults: fault.Config{
					Windows: []fault.Window{
						// The fade exercises the full repair wire path
						// (nack-sent → rtx-sent → repair-ok); the blackout
						// exercises the outage guard's wholesale hand-off
						// to the PLI path (repair-abandoned).
						{Start: 1500 * time.Millisecond, Duration: 60 * time.Millisecond, Dir: fault.Both, Loss: true},
						{Start: 3 * time.Second, Duration: 2 * time.Second, Dir: fault.Both},
					},
					Watchdog:         true,
					KeyframeRecovery: true,
				},
				Repair: repair.Config{Enabled: true},
			},
			Runs: 1,
		},
		{
			Name: "bond-rlf",
			Desc: "urban ground GCC, dual-operator failover through a 2 s primary-path blackout with RLF at 3 s, 8 s — the bonding trace",
			Config: core.Config{
				Env:      cell.Urban,
				Op:       cell.P1,
				CC:       core.CCGCC,
				Seed:     1,
				Duration: 8 * time.Second,
				Bond:     bond.Config{Policy: bond.PolicyFailover},
				Faults: fault.Config{
					Windows:          []fault.Window{{Start: 3 * time.Second, Duration: 2 * time.Second, Dir: fault.Both, Path: fault.PathPrimary}},
					RLF:              true,
					Watchdog:         true,
					KeyframeRecovery: true,
				},
			},
			Runs: 1,
		},
	}
}

// ScenarioByName resolves a scenario by its identifier.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("unknown scenario %q", name)
}

// RunScenario executes the scenario's campaign with tracing enabled and
// returns the per-run results in run-index order. seed overrides the
// scenario's base seed when non-zero; workers is the campaign worker count
// (0 = one per CPU). Results are identical at any worker count.
func RunScenario(sc Scenario, seed int64, workers int) ([]*core.Result, error) {
	cfg := sc.Config
	cfg.Trace = true
	if seed != 0 {
		cfg.Seed = seed
	}
	results, errs := core.RunCampaignWithOptions(cfg, sc.Runs, core.CampaignOptions{Workers: workers})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario %s run %d: %w", sc.Name, i, err)
		}
	}
	return results, nil
}
