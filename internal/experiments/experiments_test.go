package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsSatisfyShapeChecks runs every figure/table experiment at
// a reduced repetition count and asserts every shape check against the
// paper holds. This is the repository's main end-to-end regression.
func TestAllExperimentsSatisfyShapeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	o := Options{Runs: 2, Seed: 1}
	type exp struct {
		name string
		run  func(Options) *Report
	}
	exps := []exp{
		{"fig4a", Fig4aHandoverFrequency},
		{"fig4b", Fig4bHandoverExecutionTime},
		{"fig5", Fig5OneWayLatency},
		{"fig6", Fig6Goodput},
		{"fig7a", Fig7aFPS},
		{"fig7b", Fig7bSSIM},
		{"fig7c", Fig7cPlaybackLatency},
		{"fig8", Fig8HandoverTimeline},
		{"fig9", Fig9LatencyRatio},
		{"fig10", Fig10OperatorCapacity},
		{"tbl-stall", TableStallRates},
		{"tbl-rampup", TableRampUp},
		{"fig12", Fig12OperatorVideo},
		{"fig13", Fig13RTTByAltitude},
		{"abl-ack", AblationScreamAckWindow},
		{"abl-jb", AblationJitterBuffer},
		{"abl-est", AblationEstimator},
		{"ext-daps", ExtDAPS},
		{"ext-aqm", ExtAQM},
		{"ext-mpath", ExtMultipath},
		{"robust", Robustness},
		{"repair", Repair},
		{"bond", Bond},
		{"fleet", Fleet},
	}
	for _, e := range exps {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			rep := e.run(o)
			var sb strings.Builder
			if _, err := rep.WriteTo(&sb); err != nil {
				t.Fatal(err)
			}
			t.Log("\n" + sb.String())
			if !rep.OK() {
				t.Errorf("shape checks failed: %v", rep.FailedChecks())
			}
		})
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "test"}
	r.row("value %d", 42)
	r.check("passes", true, "fine")
	r.check("fails", false, "nope")
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== x — test ==", "value 42", "[ok  ]", "[FAIL]"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
	if r.OK() {
		t.Error("OK() with a failed check")
	}
	if got := r.FailedChecks(); len(got) != 1 || !strings.Contains(got[0], "fails") {
		t.Errorf("FailedChecks = %v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	o.defaults()
	if o.Runs != 3 || o.Seed != 1 {
		t.Errorf("defaults = %+v", o)
	}
}
