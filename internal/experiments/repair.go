package experiments

import (
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/core"
	"rpivideo/internal/fault"
	"rpivideo/internal/repair"
)

// Repair runs the packet-loss repair evaluation: the same urban ground
// campaign through the same scripted loss-fade schedule (§4.3 loss bursts;
// default "20s~60ms,40s~60ms,60s~60ms,75s~60ms", override with
// Options.FaultSpec) under three receivers — PLI-only recovery (the PR 2
// baseline), the full NACK/RTX repair layer, and a repair layer with a
// starved retransmission budget.
//
// Short fades are the regime selective retransmission exists for: the
// packets are freshly cached at the sender and the frames they belong to
// are still inside the player's give-up window, so sub-RTT repair is the
// difference between a healed frame and a skip plus a GOP-wide keyframe
// recovery. The shape claims: NACK/RTX repairs the fades the PLI path can
// only skip through (fewer skips, no added stalls, fewer keyframe
// recoveries); repair traffic never exceeds the accrued budget, with the
// token bucket visibly pacing the post-fade burst; and when the budget is
// starved the layer degrades in order — denials rise, repairs fall, and
// recovery falls back to the keyframe-request path instead of
// overspending. Multi-second blackouts are deliberately absent here: the
// detector's outage guard hands those straight to the PLI path (see the
// robust experiment and the repair-blackout scenario).
func Repair(o Options) *Report {
	o.defaults()
	r := &Report{ID: "repair", Title: "packet-loss repair: NACK/RTX vs PLI-only recovery"}

	spec := o.FaultSpec
	if spec == "" {
		spec = "20s~60ms,40s~60ms,60s~60ms,75s~60ms"
	}
	ws, err := fault.ParseSchedule(spec)
	if err != nil || len(ws) == 0 {
		r.check("fault schedule parses", false, "%q: %v", spec, err)
		return r
	}
	r.row("schedule %q, urban ground GCC, PLI recovery armed in every arm", spec)

	base := core.Config{
		Env: cell.Urban, Air: false, CC: core.CCGCC, Seed: o.Seed,
		Duration: 90 * time.Second,
		Faults: fault.Config{
			Windows:          ws,
			Watchdog:         true,
			KeyframeRecovery: true,
		},
	}

	pliOnly := campaign(base, o)

	repaired := base
	repaired.Repair = repair.Config{Enabled: true}
	rep := campaign(repaired, o)

	starved := base
	starved.Repair = repair.Config{Enabled: true, BudgetFraction: 1e-4, BudgetBurst: 1}
	stv := campaign(starved, o)

	arms := []struct {
		name string
		m    *core.Summary
	}{{"pli-only", pliOnly}, {"nack/rtx", rep}, {"starved", stv}}
	for _, a := range arms {
		m := a.m
		r.row("%-8s skipped %4d  stalls %.2f/min  nacks %4d  repaired %4d pkts / %3d frames  denied %5d  abandoned %5d  kf-req %2d  rtx %5.1f kB of %6.1f kB budget",
			a.name, m.FramesSkipped, m.StallsPerMin, m.NacksSent,
			m.PacketsRepaired, m.FramesRepaired, m.RepairDenied, m.RepairAbandoned,
			m.KeyframeRequests, float64(m.RtxBytes)/1e3, m.RepairBudgetAccrued/1e3)
	}

	r.check("repair layer active", rep.NacksSent > 0 && rep.PacketsRepaired > 0 && rep.FramesRepaired > 0,
		"nacks %d, packets %d, frames %d", rep.NacksSent, rep.PacketsRepaired, rep.FramesRepaired)
	r.check("repair skips fewer frames than pli-only", rep.FramesSkipped < pliOnly.FramesSkipped,
		"skipped: repair %d vs pli-only %d", rep.FramesSkipped, pliOnly.FramesSkipped)
	r.check("repair stalls no more than pli-only", rep.StallsPerMin <= pliOnly.StallsPerMin,
		"stalls/min: repair %.2f vs pli-only %.2f", rep.StallsPerMin, pliOnly.StallsPerMin)
	r.check("repair avoids keyframe recoveries", rep.KeyframeRequests < pliOnly.KeyframeRequests,
		"kf-req: repair %d vs pli-only %d", rep.KeyframeRequests, pliOnly.KeyframeRequests)
	r.check("repair traffic within budget",
		float64(rep.RtxBytes) <= rep.RepairBudgetAccrued && float64(stv.RtxBytes) <= stv.RepairBudgetAccrued,
		"rtx/accrued: repair %d/%.0f, starved %d/%.0f",
		rep.RtxBytes, rep.RepairBudgetAccrued, stv.RtxBytes, stv.RepairBudgetAccrued)
	r.check("budget paces the repair burst", rep.RepairDenied > 0 && rep.PacketsRepaired > 0,
		"denied %d then repaired %d under retry", rep.RepairDenied, rep.PacketsRepaired)
	r.check("starved budget denies and degrades to the PLI path",
		stv.RepairDenied > rep.RepairDenied && stv.RepairAbandoned > 0 && stv.KeyframeRequests > rep.KeyframeRequests,
		"denied: starved %d vs repair %d; abandoned %d; kf-req starved %d vs repair %d",
		stv.RepairDenied, rep.RepairDenied, stv.RepairAbandoned, stv.KeyframeRequests, rep.KeyframeRequests)
	r.check("starved budget repairs less", stv.PacketsRepaired < rep.PacketsRepaired,
		"repaired: starved %d vs full %d", stv.PacketsRepaired, rep.PacketsRepaired)
	r.check("degradation ordered: starved falls back toward pli-only",
		stv.FramesSkipped >= rep.FramesSkipped,
		"skipped starved %d ≥ repair %d", stv.FramesSkipped, rep.FramesSkipped)
	return r
}
