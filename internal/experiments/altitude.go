package experiments

import (
	"rpivideo/internal/cell"
	"rpivideo/internal/core"
)

// Fig13RTTByAltitude reproduces Fig. 13 (Appendix): ICMP-style RTTs at
// different altitudes, without cross traffic, in both environments.
func Fig13RTTByAltitude(o Options) *Report {
	o.defaults()
	r := &Report{ID: "fig13", Title: "RTT by altitude, no cross traffic (ms)"}
	grid := []float64{50, 100, 500}
	type key struct {
		env    cell.Environment
		bucket core.AltBucket
	}
	frac100 := map[key]float64{}
	n := map[key]int{}
	for _, env := range []cell.Environment{cell.Urban, cell.Rural} {
		res := campaign(core.Config{Env: env, Air: true, Workload: core.WorkloadPing, Seed: o.Seed}, o)
		for b := core.Alt0to20; b <= core.Alt101to140; b++ {
			d := res.RTTByAlt[b]
			k := key{env, b}
			frac100[k] = d.FracAtOrAbove(100)
			n[k] = d.N()
			r.Lines = append(r.Lines, cdfRow(env.String()+" "+b.String(), &d, grid))
		}
	}
	for _, env := range []cell.Environment{cell.Urban, cell.Rural} {
		low := frac100[key{env, core.Alt21to60}]
		high := frac100[key{env, core.Alt101to140}]
		r.check("outliers grow above 100 m ("+env.String()+")",
			n[key{env, core.Alt101to140}] > 0 && high > low,
			"≥100ms RTT: %.2f%% at 101–140 m vs %.2f%% at 21–60 m", 100*high, 100*low)
	}
	return r
}
