package experiments

import (
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/core"
)

// AblationScreamAckWindow reproduces the §4.2.1 diagnosis: the SCReAM
// library's RFC 8888 feedback covers only a fixed number of packets per
// report, so when more packets arrive between two consecutive reports than
// the window covers, the overflow is never acknowledged and the sender
// infers spurious losses. The paper hit this above ≈7 Mbps with the
// library's 64-packet default and raised the window to 256. The crossover
// rate depends on the report cadence and packet size; this ablation runs
// at the cadence where a high-rate urban stream exceeds 64 packets per
// report, comparing both window sizes.
func AblationScreamAckWindow(o Options) *Report {
	o.defaults()
	r := &Report{ID: "abl-ack", Title: "SCReAM feedback ack-window ablation (urban, §4.2.1)"}
	run := func(window int) *core.Summary {
		return campaign(core.Config{
			Env: cell.Urban, Air: true, CC: core.CCSCReAM,
			ScreamAckWindow:        window,
			ScreamFeedbackInterval: 40 * time.Millisecond,
			Seed:                   o.Seed,
		}, o)
	}
	w64 := run(64)
	w256 := run(256)
	r.row("window  64: goodput %5.1f Mbps  losses %5d (window-expiry %4d)  discards %d",
		w64.GoodputMean(), w64.ScreamLosses, w64.ScreamLossesWindow, w64.ScreamDiscards)
	r.row("window 256: goodput %5.1f Mbps  losses %5d (window-expiry %4d)  discards %d",
		w256.GoodputMean(), w256.ScreamLosses, w256.ScreamLossesWindow, w256.ScreamDiscards)
	lossRate := func(r *core.Summary) float64 {
		if r.PacketsSent == 0 {
			return 0
		}
		return float64(r.ScreamLossesWindow) / float64(r.PacketsSent)
	}
	r.check("64-window manufactures spurious losses",
		lossRate(w64) > 2*lossRate(w256),
		"window-expiry loss rate %.3f%% vs %.3f%% of sent packets",
		100*lossRate(w64), 100*lossRate(w256))
	r.check("spurious losses suppress the bitrate", w64.GoodputMean() < 0.8*w256.GoodputMean(),
		"%.1f vs %.1f Mbps", w64.GoodputMean(), w256.GoodputMean())
	return r
}

// AblationEstimator compares the two GCC delay estimators: the Kalman
// filter of the 2016-era GCC the paper ran, and the trendline
// (least-squares slope) estimator modern WebRTC ships. Both must deliver
// the paper's urban behaviour — high goodput with low playback latency —
// establishing that the measured GCC results are not an artifact of the
// estimator generation.
func AblationEstimator(o Options) *Report {
	o.defaults()
	r := &Report{ID: "abl-est", Title: "GCC delay-estimator ablation: Kalman vs trendline (urban)"}
	kal := campaign(core.Config{Env: cell.Urban, Air: true, CC: core.CCGCC, Seed: o.Seed}, o)
	trd := campaign(core.Config{Env: cell.Urban, Air: true, CC: core.CCGCC, GCCTrendline: true, Seed: o.Seed}, o)
	r.row("kalman:    goodput %5.1f Mbps  <300ms %.0f%%  owd p99 %4.0f ms",
		kal.GoodputMean(), 100*kal.PlaybackMs.FracBelow(300), kal.OWDms.Quantile(0.99))
	r.row("trendline: goodput %5.1f Mbps  <300ms %.0f%%  owd p99 %4.0f ms",
		trd.GoodputMean(), 100*trd.PlaybackMs.FracBelow(300), trd.OWDms.Quantile(0.99))
	r.check("both estimators reach high urban goodput", kal.GoodputMean() > 14 && trd.GoodputMean() > 14,
		"kalman %.1f, trendline %.1f Mbps", kal.GoodputMean(), trd.GoodputMean())
	r.check("both keep playback latency low", kal.PlaybackMs.FracBelow(300) > 0.65 && trd.PlaybackMs.FracBelow(300) > 0.65,
		"kalman %.0f%%, trendline %.0f%%", 100*kal.PlaybackMs.FracBelow(300), 100*trd.PlaybackMs.FracBelow(300))
	r.check("both keep the network queue in check", kal.OWDms.Quantile(0.99) < 600 && trd.OWDms.Quantile(0.99) < 600,
		"p99 %.0f vs %.0f ms", kal.OWDms.Quantile(0.99), trd.OWDms.Quantile(0.99))
	return r
}

// AblationJitterBuffer explores the §4.2 overview's remark that the jitter
// buffer can be resized, and Appendix A.4's drop-on-latency proposal: lower
// buffering trades stalls for latency, and dropping stale frames shortens
// recovery after spikes.
func AblationJitterBuffer(o Options) *Report {
	o.defaults()
	r := &Report{ID: "abl-jb", Title: "Jitter buffer sizing and drop-on-latency (urban GCC, A.4)"}
	type out struct {
		below300 float64
		stalls   float64
		p90      float64
	}
	run := func(buf time.Duration, drop bool) out {
		res := campaign(core.Config{
			Env: cell.Urban, Air: true, CC: core.CCGCC,
			JitterBuffer: buf, DropOnLatency: drop, Seed: o.Seed,
		}, o)
		return out{
			below300: res.PlaybackMs.FracBelow(300),
			stalls:   res.StallsPerMin,
			p90:      res.PlaybackMs.Quantile(0.9),
		}
	}
	var results []out
	bufs := []time.Duration{50 * time.Millisecond, 150 * time.Millisecond, 300 * time.Millisecond}
	for _, b := range bufs {
		res := run(b, false)
		results = append(results, res)
		r.row("buffer %4dms: <300ms %.0f%%  p90 %4.0fms  stalls %.2f/min",
			b/time.Millisecond, 100*res.below300, res.p90, res.stalls)
	}
	dropRes := run(150*time.Millisecond, true)
	r.row("buffer  150ms + drop-on-latency: <300ms %.0f%%  p90 %4.0fms  stalls %.2f/min",
		100*dropRes.below300, dropRes.p90, dropRes.stalls)
	r.check("larger buffer adds latency", results[2].p90 > results[0].p90,
		"p90 %0.f ms at 300 ms vs %.0f ms at 50 ms", results[2].p90, results[0].p90)
	r.check("drop-on-latency bounds tail latency", dropRes.p90 <= results[1].p90+1,
		"p90 %.0f ms vs %.0f ms without", dropRes.p90, results[1].p90)
	return r
}
