package experiments

import (
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/core"
	"rpivideo/internal/metrics"
)

// ccConfigs enumerates the six method × environment cells of §4.2.
func ccConfigs(seed int64) []core.Config {
	var out []core.Config
	for _, env := range []cell.Environment{cell.Urban, cell.Rural} {
		for _, cc := range []core.CCKind{core.CCStatic, core.CCSCReAM, core.CCGCC} {
			out = append(out, core.Config{Env: env, Air: true, CC: cc, Seed: seed})
		}
	}
	return out
}

// videoCampaigns runs the six cells and returns campaign summaries by label.
func videoCampaigns(o Options) map[string]*core.Summary {
	out := map[string]*core.Summary{}
	for _, cfg := range ccConfigs(o.Seed) {
		out[cfg.Label()] = campaign(cfg, o)
	}
	return out
}

// Fig6Goodput reproduces Fig. 6: the goodput of the three delivery methods
// in both environments.
func Fig6Goodput(o Options) *Report {
	o.defaults()
	r := &Report{ID: "fig6", Title: "Goodput per delivery method (Mbps)"}
	res := videoCampaigns(o)
	for _, cfg := range ccConfigs(o.Seed) {
		r.row("%-24s %s", cfg.Label(), res[cfg.Label()].Goodput.Box())
	}
	us := res["urban-P1-air-static"].GoodputMean()
	uscr := res["urban-P1-air-scream"].GoodputMean()
	ugcc := res["urban-P1-air-gcc"].GoodputMean()
	rs := res["rural-P1-air-static"].GoodputMean()
	rscr := res["rural-P1-air-scream"].GoodputMean()
	r.check("urban: static > SCReAM > GCC", us > uscr && uscr > ugcc,
		"%.1f > %.1f > %.1f (paper: 25 > 21 > 19)", us, uscr, ugcc)
	r.check("urban static ≈ 25 Mbps", us > 23 && us < 27, "%.1f", us)
	r.check("rural: SCReAM out-utilizes static", rscr > rs, "%.1f vs %.1f (paper: 10.5 vs 8)", rscr, rs)
	r.check("rural static ≈ 8 Mbps", rs > 7 && rs < 9, "%.1f", rs)
	r.check("rural capacity below urban", rscr < uscr, "%.1f vs %.1f", rscr, uscr)
	return r
}

// Fig7aFPS reproduces Fig. 7(a): the FPS distributions.
func Fig7aFPS(o Options) *Report {
	o.defaults()
	r := &Report{ID: "fig7a", Title: "Frames per second CDF"}
	res := videoCampaigns(o)
	grid := []float64{0, 10, 20, 29}
	for _, cfg := range ccConfigs(o.Seed) {
		d := res[cfg.Label()].FPS
		r.Lines = append(r.Lines, cdfRow(cfg.Label(), &d, grid))
	}
	us := res["urban-P1-air-static"].FPS
	uscr := res["urban-P1-air-scream"].FPS
	ugcc := res["urban-P1-air-gcc"].FPS
	r.check("≈30 FPS most of the time (urban adaptive)",
		uscr.FracAtOrAbove(29) > 0.5 && ugcc.FracAtOrAbove(29) > 0.75,
		"scream %.0f%%, gcc %.0f%% at ≥29 FPS (paper ≈90%%; our SCReAM skips more — see EXPERIMENTS.md)",
		100*uscr.FracAtOrAbove(29), 100*ugcc.FracAtOrAbove(29))
	r.check("static maintains high FPS floor", us.Quantile(0.005) >= 5,
		"P0.5 = %.0f FPS (paper: static min ≈8)", us.Quantile(0.005))
	return r
}

// Fig7bSSIM reproduces Fig. 7(b): the SSIM distributions with the 0.5
// quality threshold.
func Fig7bSSIM(o Options) *Report {
	o.defaults()
	r := &Report{ID: "fig7b", Title: "SSIM CDF and the 0.5 quality threshold"}
	res := videoCampaigns(o)
	for _, cfg := range ccConfigs(o.Seed) {
		d := res[cfg.Label()].SSIM
		r.row("%-24s below-0.5 %.2f%%   p10 %.2f   median %.2f", cfg.Label(),
			100*d.FracBelow(0.5), d.Quantile(0.10), d.Median())
	}
	us := res["urban-P1-air-static"].SSIM
	ugcc := res["urban-P1-air-gcc"].SSIM
	r.check("urban quality high (median ≥ 0.9)", us.Median() >= 0.9 && ugcc.Median() >= 0.85,
		"static %.2f, gcc %.2f", us.Median(), ugcc.Median())
	// The factor was 2× until the RTCP accounting fix (sender reports no
	// longer occupy media buffer space), which narrowed the static/GCC gap
	// to ≈1.9×; the ordering is the paper's claim, the factor is ours.
	r.check("static urban suffers the most interruptions vs GCC",
		us.FracBelow(0.5) > 1.5*ugcc.FracBelow(0.5),
		"static %.1f%% vs gcc %.1f%% (paper: 16.9%% vs low; our gap is smaller — see EXPERIMENTS.md)",
		100*us.FracBelow(0.5), 100*ugcc.FracBelow(0.5))
	worst, best := 0.0, 1.0
	for _, cfg := range ccConfigs(o.Seed) {
		f := res[cfg.Label()].SSIM.FracBelow(0.5)
		if f > worst {
			worst = f
		}
		if f < best {
			best = f
		}
	}
	r.check("interruption range spans the paper's band", best < 0.03 && worst > 0.05 && worst < 0.30,
		"%.2f%%–%.2f%% (paper: 0.37%%–19.09%%)", 100*best, 100*worst)
	return r
}

// Fig7cPlaybackLatency reproduces Fig. 7(c): the playback latency CDFs with
// the 300 ms RP threshold.
func Fig7cPlaybackLatency(o Options) *Report {
	o.defaults()
	r := &Report{ID: "fig7c", Title: "Playback latency CDF and the 300 ms threshold"}
	res := videoCampaigns(o)
	grid := []float64{200, 300, 500, 1000}
	for _, cfg := range ccConfigs(o.Seed) {
		d := res[cfg.Label()].PlaybackMs
		r.Lines = append(r.Lines, cdfRow(cfg.Label(), &d, grid))
	}
	ugcc := res["urban-P1-air-gcc"].PlaybackMs.FracBelow(300)
	us := res["urban-P1-air-static"].PlaybackMs.FracBelow(300)
	uscr := res["urban-P1-air-scream"].PlaybackMs.FracBelow(300)
	rscr := res["rural-P1-air-scream"].PlaybackMs.FracBelow(300)
	r.check("urban GCC and static meet 300 ms most of the time", ugcc > 0.65 && us > 0.6,
		"gcc %.0f%%, static %.0f%% (paper ≈90%%)", 100*ugcc, 100*us)
	r.check("urban SCReAM collapses (the paper's plateau)", uscr < ugcc-0.25,
		"scream %.0f%% vs gcc %.0f%% (paper: 38%% vs 90%%)", 100*uscr, 100*ugcc)
	r.check("rural SCReAM meets the threshold most of the time", rscr > 0.6,
		"%.0f%% (paper ≈85%%)", 100*rscr)
	r.check("SCReAM urban/rural inversion", rscr > uscr+0.2,
		"rural %.0f%% ≫ urban %.0f%%", 100*rscr, 100*uscr)
	return r
}

// TableStallRates reproduces the §4.2.1 stall-rate comparison.
func TableStallRates(o Options) *Report {
	o.defaults()
	r := &Report{ID: "tbl-stall", Title: "Video stalls per minute (urban, §4.2.1)"}
	rates := map[core.CCKind]float64{}
	for _, ccKind := range []core.CCKind{core.CCStatic, core.CCSCReAM, core.CCGCC} {
		res := campaign(core.Config{Env: cell.Urban, Air: true, CC: ccKind, Seed: o.Seed}, o)
		rates[ccKind] = res.StallsPerMin
		r.row("%-8s %.2f stalls/min", ccKind, res.StallsPerMin)
	}
	r.row("(paper: GCC 1.37, SCReAM 0.89, static 0.11)")
	r.check("adaptive methods stall", rates[core.CCGCC] > 0.05 || rates[core.CCSCReAM] > 0.05,
		"gcc %.2f, scream %.2f", rates[core.CCGCC], rates[core.CCSCReAM])
	r.check("stall rates bounded", rates[core.CCStatic] < 3 && rates[core.CCGCC] < 3 && rates[core.CCSCReAM] < 3,
		"all < 3/min")
	return r
}

// TableRampUp reproduces the §4.2.1 ramp-up comparison: the time each CC
// needs to reach the 25 Mbps target on a well-provisioned link.
func TableRampUp(o Options) *Report {
	o.defaults()
	r := &Report{ID: "tbl-rampup", Title: "Ramp-up to 25 Mbps (urban ground, §4.2.1)"}
	var gccUp, scrUp metrics.Dist
	// A 90 s window is ample: the paper's slowest ramp is ≈25 s.
	const window = 90 * time.Second
	for i := 0; i < o.Runs; i++ {
		g := core.Run(core.Config{Env: cell.Urban, Air: false, CC: core.CCGCC, Seed: o.Seed + int64(i), Duration: window})
		s := core.Run(core.Config{Env: cell.Urban, Air: false, CC: core.CCSCReAM, Seed: o.Seed + int64(i), Duration: window})
		if g.RampUpTo25 > 0 {
			gccUp.Add(g.RampUpTo25.Seconds())
		}
		if s.RampUpTo25 > 0 {
			scrUp.Add(s.RampUpTo25.Seconds())
		}
	}
	r.row("GCC:    mean %.1f s (paper ≈12 s)", gccUp.Mean())
	r.row("SCReAM: mean %.1f s (paper ≈25 s)", scrUp.Mean())
	r.check("both reach 25 Mbps", gccUp.N() == o.Runs && scrUp.N() == o.Runs,
		"gcc %d/%d, scream %d/%d", gccUp.N(), o.Runs, scrUp.N(), o.Runs)
	r.check("SCReAM ramps slower than GCC", scrUp.Mean() > gccUp.Mean(),
		"%.1f s vs %.1f s (paper: 25 vs 12)", scrUp.Mean(), gccUp.Mean())
	return r
}
