// Package experiments regenerates every table and figure of the paper's
// evaluation (§4, §5, Appendix A) from the simulation pipeline. Each
// experiment returns a Report containing the same rows/series the paper
// plots plus explicit shape checks — the qualitative claims that must hold
// (who wins, by roughly what factor, where crossovers fall). cmd/rpbench
// prints the reports; bench_test.go asserts the checks.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"rpivideo/internal/core"
	"rpivideo/internal/obs"
)

// Options controls experiment scale.
type Options struct {
	// Runs is the number of seeded repetitions per configuration (3 if
	// zero).
	Runs int
	// Seed is the base seed (1 if zero).
	Seed int64
	// Workers caps per-campaign parallelism: 0 means one worker per
	// logical CPU, 1 forces serial execution. Results are identical at
	// any setting (campaigns merge in run-index order), so Workers is
	// deliberately not part of the campaign memoization key.
	Workers int
	// FaultSpec overrides the robustness experiment's scripted outage
	// schedule (fault.ParseSchedule syntax, e.g. "45s+2s,70s+500ms/up").
	// Empty selects the default single 2 s blackout.
	FaultSpec string
	// BondPolicy restricts the bond experiment to one scheduler policy
	// (duplicate, failover, cheapest or spray). Empty compares all four.
	BondPolicy string
	// StatusSink, when non-nil, receives live campaign progress and per-run
	// metrics for the -serve ops endpoints. Like Workers it is excluded
	// from the memoization key: it observes execution without affecting
	// results (a memoized campaign re-publishes nothing — the runs already
	// happened).
	StatusSink obs.StatusSink
}

func (o *Options) defaults() {
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Check is one shape assertion derived from the paper's claims.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Report is the output of one experiment.
type Report struct {
	ID     string
	Title  string
	Lines  []string
	Checks []Check
}

// row appends one formatted output row.
func (r *Report) row(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// check records one shape assertion.
func (r *Report) check(name string, ok bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// OK reports whether every check passed.
func (r *Report) OK() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// FailedChecks lists the names of failed checks.
func (r *Report) FailedChecks() []string {
	var out []string
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c.Name+": "+c.Detail)
		}
	}
	return out
}

// WriteTo renders the report.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		fmt.Fprintf(&sb, "  %s\n", l)
	}
	for _, c := range r.Checks {
		status := "ok  "
		if !c.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&sb, "  [%s] %-40s %s\n", status, c.Name, c.Detail)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// campaignCache memoizes seeded campaigns: several figures consume the same
// configuration (Figs. 6 and 7a–c all need the six method×environment
// campaigns; Figs. 4a, 4b and 5 share the mobility sweep), and results are
// pure functions of (Config, Runs). Two caches exist because figures consume
// campaigns at two granularities: per-run results (handover event lists,
// per-run time series) and campaign summaries. Only the few figures that
// need per-run detail pay for retained samples; aggregate-only figures go
// through the sketch-based summary path, whose memory is O(buckets)
// regardless of the run count.
var (
	campaignCache sync.Map // string → *campaignEntry
	summaryCache  sync.Map // string → *summaryEntry
)

type campaignEntry struct {
	once sync.Once
	res  []*core.Result
	done atomic.Bool // res published (set inside once)
}

type summaryEntry struct {
	once sync.Once
	sum  *core.Summary
}

// ResetCache clears the campaign memoization. Benchmarks call it between
// iterations so every iteration measures a full regeneration.
func ResetCache() {
	campaignCache.Range(func(k, _ any) bool {
		campaignCache.Delete(k)
		return true
	})
	summaryCache.Range(func(k, _ any) bool {
		summaryCache.Delete(k)
		return true
	})
}

// campaignKey is the memoization key: results are pure functions of
// (Config, Runs), so Workers is deliberately excluded.
func campaignKey(cfg core.Config, o Options) string {
	return fmt.Sprintf("%+v|%d", cfg, o.Runs)
}

// experimentOptions pins the suite's campaign options. The experiment suite
// is the paper-vs-measured record: its shape thresholds and the
// EXPERIMENTS.md tables were calibrated under the legacy seed derivation, so
// campaigns here pin LegacySeeds to keep that record comparable across
// engine changes. Campaigns run through the public API default to the
// collision-resistant derivation.
func experimentOptions(o Options) core.CampaignOptions {
	return core.CampaignOptions{Workers: o.Workers, LegacySeeds: true, StatusSink: o.StatusSink}
}

// seededCampaign returns the memoized per-run results for a configuration.
// Callers must not mutate the returned results. Figures that only need the
// campaign aggregate should use campaign instead — this path retains every
// run's samples.
func seededCampaign(cfg core.Config, o Options) []*core.Result {
	key := campaignKey(cfg, o)
	e, _ := campaignCache.LoadOrStore(key, &campaignEntry{})
	ent := e.(*campaignEntry)
	ent.once.Do(func() {
		res, errs := core.RunCampaignWithOptions(cfg, o.Runs, experimentOptions(o))
		for _, err := range errs {
			if err != nil {
				panic(err)
			}
		}
		ent.res = res
		ent.done.Store(true)
	})
	return ent.res
}

// campaign returns the memoized sketch-based summary for a configuration.
// When another figure has already materialized the per-run results (the
// mobility configs feed both granularities), those are folded rather than
// re-run; otherwise the campaign streams through core.RunCampaignSummary,
// never holding more than the in-flight runs. Either path folds in
// run-index order, so the summary is identical.
func campaign(cfg core.Config, o Options) *core.Summary {
	key := campaignKey(cfg, o)
	e, _ := summaryCache.LoadOrStore(key, &summaryEntry{})
	ent := e.(*summaryEntry)
	ent.once.Do(func() {
		if pr, ok := campaignCache.Load(key); ok {
			if pe := pr.(*campaignEntry); pe.done.Load() {
				ent.sum = core.Summarize(pe.res)
				return
			}
		}
		sum, errs := core.RunCampaignSummary(cfg, o.Runs, experimentOptions(o))
		for _, err := range errs {
			if err != nil {
				panic(err)
			}
		}
		ent.sum = sum
	})
	return ent.sum
}

// cdfer is the CDF query both Dist and Sketch answer.
type cdfer interface {
	CDF(xs []float64) []float64
}

// cdfRow formats a CDF evaluated at grid points.
func cdfRow(name string, d cdfer, xs []float64) string {
	ps := d.CDF(xs)
	parts := make([]string, len(xs))
	for i := range xs {
		parts[i] = fmt.Sprintf("≤%g: %.3f", xs[i], ps[i])
	}
	return fmt.Sprintf("%-22s %s", name, strings.Join(parts, "  "))
}

// All runs every experiment in figure order.
func All(o Options) []*Report {
	return []*Report{
		Fig4aHandoverFrequency(o),
		Fig4bHandoverExecutionTime(o),
		Fig5OneWayLatency(o),
		Fig6Goodput(o),
		Fig7aFPS(o),
		Fig7bSSIM(o),
		Fig7cPlaybackLatency(o),
		Fig8HandoverTimeline(o),
		Fig9LatencyRatio(o),
		Fig10OperatorCapacity(o),
		TableStallRates(o),
		TableRampUp(o),
		Fig12OperatorVideo(o),
		Fig13RTTByAltitude(o),
		AblationScreamAckWindow(o),
		AblationJitterBuffer(o),
		AblationEstimator(o),
		ExtDAPS(o),
		ExtAQM(o),
		ExtMultipath(o),
		Robustness(o),
		Repair(o),
		Bond(o),
		Fleet(o),
	}
}
