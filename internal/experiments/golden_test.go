package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rpivideo/internal/core"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/experiments -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden trace/metrics files")

// TestGoldenTraces byte-compares each scenario's pinned-seed trace and
// campaign-metrics exports against testdata/golden/. Any change to the
// simulation's event order, the trace schema, the seed derivation or the
// metrics layouts shows up here as a diff; intentional changes regenerate
// with -update.
func TestGoldenTraces(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			var trace, metrics bytes.Buffer
			if sc.Fleet > 0 {
				// Fleet scenarios pin the cell event timeline (the fleet
				// counterpart of the per-run trace) and the merged registry.
				fr, err := RunFleetScenario(sc, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := fr.WriteCellEvents(&trace); err != nil {
					t.Fatal(err)
				}
				if err := fr.WriteMetrics(&metrics); err != nil {
					t.Fatal(err)
				}
			} else {
				results, err := RunScenario(sc, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := core.WriteCampaignTrace(&trace, results); err != nil {
					t.Fatal(err)
				}
				if err := core.WriteCampaignMetrics(&metrics, results); err != nil {
					t.Fatal(err)
				}
			}
			compareGolden(t, filepath.Join("testdata", "golden", sc.Name+".jsonl"), trace.Bytes())
			compareGolden(t, filepath.Join("testdata", "golden", sc.Name+".metrics.json"), metrics.Bytes())
		})
	}
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if bytes.Equal(want, got) {
		return
	}
	// Find the first differing line for a readable failure.
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g []byte
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if !bytes.Equal(w, g) {
			t.Fatalf("%s: first difference at line %d:\n  want: %s\n  got:  %s\n(%d vs %d bytes total; regenerate with -update if intentional)",
				path, i+1, w, g, len(want), len(got))
		}
	}
	t.Fatalf("%s: exports differ (%d vs %d bytes)", path, len(want), len(got))
}
