package experiments

import (
	"fmt"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/core"
	"rpivideo/internal/fault"
)

// Robustness runs the deterministic fault-injection scenario: the three
// rate-control regimes fly the same urban ground campaign through the same
// scripted coverage blackout (default: 2 s at t=45 s; override with
// Options.FaultSpec) with the graceful-degradation machinery armed —
// feedback-starvation watchdog, stale-queue flush and post-outage keyframe
// recovery. The shape claims: every regime sees the identical outage
// timeline; the adaptive controllers come back to ≥80% of their pre-outage
// rate within seconds and bound the post-outage queue; the static sender
// blindly fills the dead link's buffer and pays in overflows, flushed
// packets and playback damage.
func Robustness(o Options) *Report {
	o.defaults()
	r := &Report{ID: "robust", Title: "fault injection: outage response per rate-control regime"}

	spec := o.FaultSpec
	if spec == "" {
		spec = "45s+2s"
	}
	ws, err := fault.ParseSchedule(spec)
	if err != nil || len(ws) == 0 {
		r.check("fault schedule parses", false, "%q: %v", spec, err)
		return r
	}
	r.row("schedule %q, watchdog + stale flush + keyframe recovery armed", spec)

	base := core.Config{
		Env: cell.Urban, Air: false, Seed: o.Seed, Duration: 90 * time.Second,
		Faults: fault.Config{
			Windows:          ws,
			Watchdog:         true,
			KeyframeRecovery: true,
		},
	}
	regimes := []core.CCKind{core.CCStatic, core.CCGCC, core.CCSCReAM}
	res := make(map[core.CCKind]*core.Summary, len(regimes))
	for _, cc := range regimes {
		cfg := base
		cfg.CC = cc
		res[cc] = campaign(cfg, o)
	}

	for _, cc := range regimes {
		m := res[cc]
		rec := "n/a"
		if m.RecoveryMs.N() > 0 {
			rec = fmt.Sprintf("med %4.0f max %5.0f ms", m.RecoveryMs.Median(), m.RecoveryMs.Max())
		}
		r.row("%-7v outages %d (%.1fs)  recovery %s  post-outage queue %5.0f ms  overflow %4d  stale %4d  kf-req %2d  skipped %3d  stalls %.2f/min",
			cc, m.Outages, m.OutageTotal.Seconds(), rec, m.PostOutageQueueMs,
			m.Overflows, m.StaleDrops, m.KeyframeRequests, m.FramesSkipped, m.StallsPerMin)
	}

	st, gcc, scr := res[core.CCStatic], res[core.CCGCC], res[core.CCSCReAM]

	// An outage is judged for recovery only when the run leaves enough tail
	// after it: SCReAM's ramp from the floor is the slowest recovery in the
	// suite (≈25 s ramp-up, tbl-rampup), so an episode ending within 30 s
	// of the run end is reported but not asserted.
	judgeable := 0
	for _, w := range ws {
		if w.End()+30*time.Second <= base.Duration {
			judgeable++
		}
	}
	judgeable *= o.Runs

	sameTimeline := func(a, b []fault.Episode) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	r.check("identical fault timeline across regimes",
		sameTimeline(st.FaultEpisodes, gcc.FaultEpisodes) && sameTimeline(st.FaultEpisodes, scr.FaultEpisodes),
		"static %d, gcc %d, scream %d episodes", len(st.FaultEpisodes), len(gcc.FaultEpisodes), len(scr.FaultEpisodes))
	r.check("every scheduled blackout realized", st.Outages == len(ws)*o.Runs,
		"%d episodes over %d runs for %d windows", st.Outages, o.Runs, len(ws))
	r.check("gcc recovers to ≥80% after every judged outage",
		gcc.RecoveryMs.N() >= judgeable && gcc.RecoveryMs.N() > 0,
		"%d recoveries for %d outages (%d judged)", gcc.RecoveryMs.N(), gcc.Outages, judgeable)
	r.check("scream recovers to ≥80% after every judged outage",
		scr.RecoveryMs.N() >= judgeable && scr.RecoveryMs.N() > 0,
		"%d recoveries for %d outages (%d judged)", scr.RecoveryMs.N(), scr.Outages, judgeable)
	r.check("adaptive recovery takes seconds, not tens of seconds",
		gcc.RecoveryMs.N() > 0 && gcc.RecoveryMs.Max() < 15_000 &&
			scr.RecoveryMs.N() > 0 && scr.RecoveryMs.Max() < 15_000,
		"gcc max %.0f ms, scream max %.0f ms", gcc.RecoveryMs.Max(), scr.RecoveryMs.Max())
	r.check("watchdog bounds the adaptive post-outage queue",
		gcc.PostOutageQueueMs < 0.5*st.PostOutageQueueMs && scr.PostOutageQueueMs < 0.5*st.PostOutageQueueMs,
		"static %.0f ms vs gcc %.0f / scream %.0f ms", st.PostOutageQueueMs, gcc.PostOutageQueueMs, scr.PostOutageQueueMs)
	r.check("blind static sender pays in dropped packets",
		2*(st.Overflows+st.StaleDrops) > 3*(gcc.Overflows+gcc.StaleDrops) &&
			2*(st.Overflows+st.StaleDrops) > 3*(scr.Overflows+scr.StaleDrops),
		"static %d vs gcc %d / scream %d (overflow+stale)",
		st.Overflows+st.StaleDrops, gcc.Overflows+gcc.StaleDrops, scr.Overflows+scr.StaleDrops)
	r.check("only the blind sender tail-drops the dead link",
		st.Overflows > 2*gcc.Overflows && st.Overflows > 2*scr.Overflows,
		"overflows: static %d, gcc %d, scream %d", st.Overflows, gcc.Overflows, scr.Overflows)
	r.check("static skips more frames than gcc",
		st.FramesSkipped > gcc.FramesSkipped,
		"skipped: static %d, gcc %d (scream %d, its conservatism skips on its own)",
		st.FramesSkipped, gcc.FramesSkipped, scr.FramesSkipped)
	r.check("keyframe recovery engaged after the blackout",
		gcc.KeyframeRequests > 0 && scr.KeyframeRequests > 0 && st.KeyframeRequests > 0,
		"requests: static %d, gcc %d, scream %d", st.KeyframeRequests, gcc.KeyframeRequests, scr.KeyframeRequests)
	return r
}
