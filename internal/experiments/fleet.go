package experiments

import (
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/core"
)

// fleetPoint is one fleet size's contention aggregate.
type fleetPoint struct {
	size int
	fr   *core.FleetResult
}

func runFleetPoint(o Options, size int, sched cell.SchedulerKind) (fleetPoint, error) {
	cfg := core.Config{
		Env: cell.Urban, Op: cell.P1, Air: true, CC: core.CCStatic,
		Seed: o.Seed, Duration: 8 * time.Second,
	}
	fr, errs := core.RunFleet(core.FleetConfig{
		Config: cfg, Size: size, Sched: sched, Workers: o.Workers,
	})
	for _, err := range errs {
		if err != nil {
			return fleetPoint{}, err
		}
	}
	return fleetPoint{size: size, fr: fr}, nil
}

// Fleet runs the fleet-scale cell contention experiment: 1, 50 and 500 UAVs
// fly the same urban aerial mission against one shared base-station map, so
// every UAV on a cell splits its PRBs. The shape claims: a lone UAV keeps
// the whole cell (share exactly 1, no overload); the median per-UAV goodput
// degrades monotonically with fleet size and collapses below half the solo
// rate at 500 UAVs; overload epochs and peak cell occupancy grow with the
// fleet; and at 500 UAVs proportional-fair squeezes the cell-edge UAV
// harder than round-robin without starving it outright.
func Fleet(o Options) *Report {
	o.defaults()
	r := &Report{ID: "fleet", Title: "fleet-scale cell contention: shared base stations under PRB scheduling"}

	sizes := []int{1, 50, 500}
	points := make([]fleetPoint, 0, len(sizes))
	for _, size := range sizes {
		p, err := runFleetPoint(o, size, cell.SchedRR)
		if err != nil {
			r.check("fleet campaign completes", false, "size %d: %v", size, err)
			return r
		}
		points = append(points, p)
	}
	pf500, err := runFleetPoint(o, 500, cell.SchedPF)
	if err != nil {
		r.check("fleet campaign completes", false, "size 500/pf: %v", err)
		return r
	}

	r.row("urban aerial static-rate mission, 8 s, shared deployment, seed %d", o.Seed)
	row := func(sched string, p fleetPoint) {
		r.row("%4d UAVs %-3s median goodput %6.2f Mbps  min share %.4f  overload epochs %5d  peak cell users %3d  handovers %4d",
			p.size, sched, p.fr.MedianUAVGoodput(), p.fr.MinShare, p.fr.OverloadEpochs, p.fr.PeakCellUsers, p.fr.Summary.Handovers)
	}
	for _, p := range points {
		row("rr", p)
	}
	row("pf", pf500)

	solo, p50, p500 := points[0], points[1], points[2]
	r.check("lone UAV keeps the whole cell",
		solo.fr.MinShare == 1 && solo.fr.OverloadEpochs == 0,
		"min share %v, overload epochs %d", solo.fr.MinShare, solo.fr.OverloadEpochs)

	meds := []float64{solo.fr.MedianUAVGoodput(), p50.fr.MedianUAVGoodput(), p500.fr.MedianUAVGoodput()}
	const eps = 0.02 // relative tolerance for sampling noise
	mono := meds[1] <= meds[0]*(1+eps) && meds[2] <= meds[1]*(1+eps)
	r.check("median per-UAV goodput non-increasing in fleet size",
		mono, "%.2f → %.2f → %.2f Mbps at 1/50/500", meds[0], meds[1], meds[2])
	r.check("500-UAV contention collapses the median below half the solo rate",
		meds[2] < 0.5*meds[0], "%.2f vs solo %.2f Mbps", meds[2], meds[0])

	r.check("500-UAV fleet overloads cells",
		p500.fr.OverloadEpochs > 0, "%d overload epochs", p500.fr.OverloadEpochs)
	r.check("peak cell occupancy grows with the fleet",
		p500.fr.PeakCellUsers > p50.fr.PeakCellUsers && p50.fr.PeakCellUsers > 1,
		"peak users %d at 500 vs %d at 50", p500.fr.PeakCellUsers, p50.fr.PeakCellUsers)
	r.check("a larger fleet executes more handovers",
		p500.fr.Summary.Handovers > p50.fr.Summary.Handovers,
		"%d at 500 vs %d at 50", p500.fr.Summary.Handovers, p50.fr.Summary.Handovers)

	r.check("proportional-fair squeezes the cell edge harder than round-robin",
		pf500.fr.MinShare <= p500.fr.MinShare && pf500.fr.MinShare > 0,
		"pf min share %.4f vs rr %.4f", pf500.fr.MinShare, p500.fr.MinShare)
	return r
}
