package experiments

import (
	"time"

	"rpivideo/internal/bond"
	"rpivideo/internal/cell"
	"rpivideo/internal/core"
	"rpivideo/internal/fault"
)

// bondAgg aggregates one bonded configuration's campaign for the degradation
// comparison: playback damage (stall time, skipped frames), the redundancy
// bill (radio sends per uniquely delivered packet) and the health timeline.
type bondAgg struct {
	name       string
	stallMs    float64
	skipped    int
	delivered  int64
	pathSent   int64 // radio transmissions summed over paths (single: = sent)
	switches   int
	downEvents int
	reorderLF  int // late + forced reorder releases
}

// overhead is the redundancy bill: radio transmissions per uniquely
// delivered packet. Duplication pays ≈2×; the selective policies pay only
// the keep-alive probes.
func (a bondAgg) overhead() float64 {
	if a.delivered == 0 {
		return 0
	}
	return float64(a.pathSent) / float64(a.delivered)
}

func aggBond(name string, res []*core.Result) bondAgg {
	a := bondAgg{name: name}
	for _, r := range res {
		for _, s := range r.Stalls {
			a.stallMs += float64(s.Duration) / float64(time.Millisecond)
		}
		a.skipped += r.FramesSkipped
		if len(r.BondPaths) == 0 {
			a.pathSent += int64(r.PacketsSent)
			a.delivered += int64(r.PacketsDelivered)
		}
		for _, p := range r.BondPaths {
			a.pathSent += p.Sent
			a.delivered += p.Delivered - p.Suppressed // unique first copies
		}
		a.switches += r.BondSwitches
		a.downEvents += r.BondPathDownEvents
		a.reorderLF += r.BondReorderLate + r.BondReorderForced
	}
	return a
}

// Bond runs the dual-operator link-bonding comparison: a single-operator
// baseline and each scheduler policy fly the same urban ground GCC campaign
// through the same primary-operator blackout (default: 2 s at t=45 s on the
// primary bonded path; override with Options.FaultSpec) with RLF and the
// graceful-degradation machinery armed. The shape claims: failover rides out
// the primary's outage on the hot standby — strictly less stall time and
// frame loss than the single-operator run — while duplication pays the
// highest redundancy bill (≈2 radio sends per delivered packet) and the
// selective policies pay only the keep-alive probes.
func Bond(o Options) *Report {
	o.defaults()
	r := &Report{ID: "bond", Title: "dual-operator bonding: scheduler policies through a primary-path blackout"}

	spec := o.FaultSpec
	if spec == "" {
		spec = "45s+2s@p1"
	}
	ws, err := fault.ParseSchedule(spec)
	if err != nil || len(ws) == 0 {
		r.check("fault schedule parses", false, "%q: %v", spec, err)
		return r
	}

	policies := bond.Policies()
	if o.BondPolicy != "" {
		p, err := bond.ParsePolicy(o.BondPolicy)
		if err != nil {
			r.check("bond policy parses", false, "%v", err)
			return r
		}
		policies = []bond.Policy{p}
	}
	r.row("schedule %q, RLF + watchdog + keyframe recovery armed", spec)

	base := core.Config{
		Env: cell.Urban, Air: false, CC: core.CCGCC, Seed: o.Seed, Duration: 90 * time.Second,
		Faults: fault.Config{
			Windows:          ws,
			RLF:              true,
			Watchdog:         true,
			KeyframeRecovery: true,
		},
	}

	single := aggBond("single", seededCampaign(base, o))
	aggs := []bondAgg{single}
	byPolicy := make(map[bond.Policy]bondAgg, len(policies))
	for _, p := range policies {
		cfg := base
		cfg.Bond = bond.Config{Policy: p}
		a := aggBond(p.String(), seededCampaign(cfg, o))
		aggs = append(aggs, a)
		byPolicy[p] = a
	}

	for _, a := range aggs {
		r.row("%-9s stall %7.0f ms  skipped %4d  overhead %.3f sends/delivered  switches %3d  path-down %3d  reorder late+forced %3d",
			a.name, a.stallMs, a.skipped, a.overhead(), a.switches, a.downEvents, a.reorderLF)
	}

	if fo, ok := byPolicy[bond.PolicyFailover]; ok {
		r.check("failover stalls strictly less than single-operator",
			fo.stallMs < single.stallMs,
			"failover %.0f ms vs single %.0f ms", fo.stallMs, single.stallMs)
		r.check("failover loses strictly fewer frames than single-operator",
			fo.skipped < single.skipped,
			"failover %d vs single %d skipped", fo.skipped, single.skipped)
		r.check("failover switched off the dying primary",
			fo.switches >= o.Runs,
			"%d switches over %d runs", fo.switches, o.Runs)
	}
	if dup, ok := byPolicy[bond.PolicyDuplicate]; ok {
		r.check("duplication sends roughly every packet twice",
			dup.overhead() > 1.8,
			"%.3f sends per delivered packet", dup.overhead())
		for _, p := range policies {
			if p == bond.PolicyDuplicate {
				continue
			}
			a := byPolicy[p]
			r.check("duplicate pays more redundancy than "+p.String(),
				dup.overhead() > a.overhead(),
				"duplicate %.3f vs %s %.3f", dup.overhead(), p.String(), a.overhead())
		}
	}
	// Every bonded policy must at least observe the scripted primary outage.
	for _, p := range policies {
		a := byPolicy[p]
		r.check(p.String()+" health monitor saw the primary go down",
			a.downEvents >= o.Runs,
			"%d path-down events over %d runs", a.downEvents, o.Runs)
	}
	return r
}
