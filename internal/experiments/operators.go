package experiments

import (
	"rpivideo/internal/cell"
	"rpivideo/internal/core"
)

// Fig10OperatorCapacity reproduces Fig. 10: the achievable throughput and
// handover frequency of the two operators in the rural region.
func Fig10OperatorCapacity(o Options) *Report {
	o.defaults()
	r := &Report{ID: "fig10", Title: "Operators P1 vs P2 in the rural region"}
	// Achievable throughput: stream at the urban static rate (25 Mbps) so
	// the link, not the source, is the bottleneck.
	type row struct {
		label string
		gp    float64
		hoAir float64
	}
	var rows []row
	for _, op := range []cell.Operator{cell.P1, cell.P2} {
		probe := campaign(core.Config{Env: cell.Rural, Op: op, Air: true, CC: core.CCStatic, StaticRate: 25e6, Seed: o.Seed}, o)
		rows = append(rows, row{label: op.String(), gp: probe.GoodputMean(), hoAir: probe.HandoverRate()})
		r.row("%-3s achievable throughput %s", op, probe.Goodput.Box())
		r.row("%-3s air HO rate %.3f/s", op, probe.HandoverRate())
	}
	r.check("P2 offers more rural capacity", rows[1].gp > rows[0].gp,
		"P2 %.1f vs P1 %.1f Mbps", rows[1].gp, rows[0].gp)
	r.check("P2 hands over more (denser rural deployment)", rows[1].hoAir > rows[0].hoAir,
		"P2 %.3f vs P1 %.3f HO/s", rows[1].hoAir, rows[0].hoAir)
	return r
}

// Fig12OperatorVideo reproduces Fig. 12 (Appendix A.3): the video delivery
// performance over both operators in the rural environment, per method.
func Fig12OperatorVideo(o Options) *Report {
	o.defaults()
	r := &Report{ID: "fig12", Title: "Video delivery per operator, rural (Appendix A.3)"}
	res := map[string]*core.Summary{}
	for _, op := range []cell.Operator{cell.P1, cell.P2} {
		for _, ccKind := range []core.CCKind{core.CCStatic, core.CCSCReAM, core.CCGCC} {
			cfg := core.Config{Env: cell.Rural, Op: op, Air: true, CC: ccKind, Seed: o.Seed}
			m := campaign(cfg, o)
			res[cfg.Label()] = m
			r.row("%-24s goodput %.1f Mbps  fps@29 %.0f%%  <300ms %.0f%%  ssim<0.5 %.2f%%",
				cfg.Label(), m.GoodputMean(), 100*m.FPS.FracAtOrAbove(29),
				100*m.PlaybackMs.FracBelow(300), 100*m.SSIM.FracBelow(0.5))
		}
	}
	p1s, p2s := res["rural-P1-air-scream"], res["rural-P2-air-scream"]
	p1g, p2g := res["rural-P1-air-gcc"], res["rural-P2-air-gcc"]
	r.check("P2's capacity lifts goodput (SCReAM)", p2s.GoodputMean() > p1s.GoodputMean(),
		"%.1f vs %.1f Mbps", p2s.GoodputMean(), p1s.GoodputMean())
	r.check("P2's capacity lifts goodput (GCC)", p2g.GoodputMean() > p1g.GoodputMean(),
		"%.1f vs %.1f Mbps", p2g.GoodputMean(), p1g.GoodputMean())
	r.check("larger capacity does not fix SCReAM's playback latency",
		p2s.PlaybackMs.FracBelow(300) < p1s.PlaybackMs.FracBelow(300)+0.05,
		"P2 %.0f%% vs P1 %.0f%% below 300 ms (paper: P2 worse at higher rates)",
		100*p2s.PlaybackMs.FracBelow(300), 100*p1s.PlaybackMs.FracBelow(300))
	return r
}
