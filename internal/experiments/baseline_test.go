package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"rpivideo/internal/core"
	"rpivideo/internal/obs"
)

// baselinePath is the checked-in regression baseline the CI gate compares
// against (regenerate with
// `rpbench -scenario urban-gcc -metrics <path>` after an intentional
// behavior change).
const baselinePath = "testdata/baseline/urban-gcc.metrics.json"

// fleetBaselinePath is the fleet counterpart (regenerate with
// `rpbench -scenario fleet-contention -metrics <path>`).
const fleetBaselinePath = "testdata/baseline/fleet-contention.metrics.json"

func readBaselineAt(t *testing.T, path string) *obs.Registry {
	t.Helper()
	f, err := os.Open(filepath.FromSlash(path))
	if err != nil {
		t.Fatalf("baseline missing (regenerate with rpbench -scenario <name> -metrics): %v", err)
	}
	defer f.Close()
	base, err := obs.ReadRegistryJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func readBaseline(t *testing.T) *obs.Registry {
	t.Helper()
	return readBaselineAt(t, baselinePath)
}

// TestBaselineGate is the regression gate end-to-end: the urban-gcc
// scenario's campaign metrics must match the checked-in baseline exactly
// (runs are deterministic, so the tolerance is zero), and a perturbed
// baseline must trip the gate — proving the comparison actually bites.
func TestBaselineGate(t *testing.T) {
	sc, err := ScenarioByName("urban-gcc")
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunScenario(sc, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cur := core.CampaignMetrics(results)

	if drifts := obs.CompareRegistries(readBaseline(t), cur, obs.Tolerance{}); len(drifts) != 0 {
		for _, d := range drifts {
			t.Errorf("drift vs baseline: %s", d)
		}
		t.Fatal("urban-gcc campaign metrics drifted from testdata/baseline (regenerate the baseline if the change is intentional)")
	}

	// Perturb the baseline: the gate must catch it and name the metric.
	perturbed := readBaseline(t)
	perturbed.Add("packets_sent", 100)
	drifts := obs.CompareRegistries(perturbed, cur, obs.Tolerance{})
	found := false
	for _, d := range drifts {
		if d.Metric == "counter/packets_sent" {
			found = true
		}
	}
	if !found {
		t.Fatalf("perturbed baseline not caught: %v", drifts)
	}
}

// TestFleetBaselineGate mirrors TestBaselineGate for the fleet-contention
// scenario: the merged fleet registry (per-UAV metrics plus the fleet_*
// contention keys) must match the checked-in baseline exactly, and a
// perturbed baseline must trip the gate.
func TestFleetBaselineGate(t *testing.T) {
	sc, err := ScenarioByName("fleet-contention")
	if err != nil {
		t.Fatal(err)
	}
	fr, err := RunFleetScenario(sc, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cur := fr.MetricsRegistry()

	if drifts := obs.CompareRegistries(readBaselineAt(t, fleetBaselinePath), cur, obs.Tolerance{}); len(drifts) != 0 {
		for _, d := range drifts {
			t.Errorf("drift vs baseline: %s", d)
		}
		t.Fatal("fleet-contention metrics drifted from testdata/baseline (regenerate the baseline if the change is intentional)")
	}

	perturbed := readBaselineAt(t, fleetBaselinePath)
	perturbed.Add("fleet_overload_epochs", 1)
	drifts := obs.CompareRegistries(perturbed, cur, obs.Tolerance{})
	found := false
	for _, d := range drifts {
		if d.Metric == "counter/fleet_overload_epochs" {
			found = true
		}
	}
	if !found {
		t.Fatalf("perturbed baseline not caught: %v", drifts)
	}
}
