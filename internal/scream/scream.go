// Package scream implements Self-Clocked Rate Adaptation for Multimedia
// (Johansson, "Self-Clocked Rate Adaptation for Conversational Video in
// LTE", and RFC 8298), the second congestion controller the paper evaluates.
//
// SCReAM is window-based: a LEDBAT-style congestion window reacts to the
// estimated queuing delay, bytes in flight are limited to the window
// (self-clocking), and the media target rate follows the window while also
// reacting to the RTP send-queue delay. The send queue is discarded when it
// grows older than its age limit — the behaviour the paper observes causing
// large jumps of the highest received RTP sequence number (§4.2.1).
//
// Feedback arrives as RFC 8888 reports. Packets that fall out of the
// feedback ack window without ever being acknowledged are declared lost —
// with the Ericsson library's 64-packet window this manufactures spurious
// losses above ≈7 Mbps, the defect the paper diagnoses; a 256-packet window
// largely avoids it.
package scream

import (
	"time"

	"rpivideo/internal/cc"
	"rpivideo/internal/obs"
)

// Config parameterizes the controller.
type Config struct {
	// InitialRate, MinRate, MaxRate bound the media target in bits/s
	// (defaults 2, 2 and 25 Mbps — the paper's encoder range).
	InitialRate float64
	MinRate     float64
	MaxRate     float64
	// QDelayTarget is the queuing-delay setpoint (60 ms if zero).
	QDelayTarget time.Duration
	// RampUpSpeed limits additive rate increase in bits/s per second
	// (1 Mbps/s if zero — yielding the paper's ≈25 s ramp to 25 Mbps).
	RampUpSpeed float64
	// QueueDiscardAge is the RTP send-queue age beyond which the queue is
	// discarded (100 ms if zero, per §4.2.1).
	QueueDiscardAge time.Duration
	// QueueGrowthLimit is the send-queue delay above which the congestion
	// window stops growing (300 ms if zero, per the paper's description).
	QueueGrowthLimit time.Duration
	// MSS is the maximum segment size in bytes (1200 if zero).
	MSS int
	// FeedbackTimeout arms the feedback-starvation watchdog: after this
	// long without CCFB the target freezes at MinRate and sending stops
	// (the self-clock has no acks anyway); when feedback returns the
	// controller restarts the window from the floor under exponential
	// probe backoff, without counting the blackout as window losses. Zero
	// disables the watchdog.
	FeedbackTimeout time.Duration
}

func (c *Config) defaults() {
	if c.MinRate == 0 {
		c.MinRate = 2e6
	}
	if c.MaxRate == 0 {
		c.MaxRate = 25e6
	}
	if c.InitialRate == 0 {
		c.InitialRate = c.MinRate
	}
	if c.QDelayTarget == 0 {
		c.QDelayTarget = 60 * time.Millisecond
	}
	if c.RampUpSpeed == 0 {
		c.RampUpSpeed = 1e6
	}
	if c.QueueDiscardAge == 0 {
		c.QueueDiscardAge = 100 * time.Millisecond
	}
	if c.QueueGrowthLimit == 0 {
		c.QueueGrowthLimit = 300 * time.Millisecond
	}
	if c.MSS == 0 {
		c.MSS = 1200
	}
}

// gain constants (RFC 8298 §4.1.2 flavour).
const (
	gainUp       = 1.0
	lossBeta     = 0.9
	queueBeta    = 0.9  // target scale on send-queue pressure
	lossRateBeta = 0.95 // target scale on loss events (cwnd does the real work)
	pacingHead   = 1.25 // pacing headroom over the target
	// rateHeadroom keeps the media target below what the window sustains,
	// so transient capacity dips land in the congestion window rather than
	// the RTP queue (whose discard drops whole frames).
	rateHeadroom = 0.85
)

// inflightPkt is the sender-side record of an unacknowledged packet.
type inflightPkt struct {
	seq      uint16
	size     int
	sendTime time.Duration
}

// owdSample supports the windowed base-delay minimum.
type owdSample struct {
	at  time.Duration
	owd time.Duration
}

// Controller implements cc.Controller with SCReAM.
type Controller struct {
	cfg Config

	cwnd          float64 // bytes
	bytesInFlight int
	inflight      map[uint16]inflightPkt

	// One-way-delay tracking. The raw OWD includes the unknown clock
	// offset; the queuing delay is its excess over the windowed minimum.
	baseWindow []owdSample
	qdelay     time.Duration // EWMA of the queuing delay

	srtt time.Duration

	target         float64
	lastRateAdjust time.Duration
	lastLossAt     time.Duration
	started        bool

	queue *cc.SendQueue

	// Counters exposed for experiments and traces.
	Losses        int // packets declared lost (includes spurious ones)
	LossesInBand  int // losses detected inside a report (hole below highest)
	LossesWindow  int // losses from packets falling below the ack window
	QueueDiscards int // queue-discard events

	// wd is the feedback-starvation watchdog; nil when disabled.
	wd *cc.Watchdog

	// repairSpend, when set, reports the repair layer's recent RTX rate
	// (bits/s), subtracted from the encoder target.
	repairSpend func(time.Duration) float64

	// trace emits one obs.KindCC event per feedback-driven rate decision
	// (nil = disabled; purely observational).
	trace *obs.Tracer
}

var _ cc.Controller = (*Controller)(nil)
var _ cc.QueueAware = (*Controller)(nil)
var _ cc.Traceable = (*Controller)(nil)
var _ cc.RepairAware = (*Controller)(nil)

// SetTracer implements cc.Traceable.
func (c *Controller) SetTracer(tr *obs.Tracer) { c.trace = tr }

// New returns a SCReAM controller.
func New(cfg Config) *Controller {
	cfg.defaults()
	srtt := 100 * time.Millisecond
	c := &Controller{
		cfg:      cfg,
		inflight: make(map[uint16]inflightPkt),
		srtt:     srtt,
		target:   cfg.InitialRate,
		qdelay:   0,
	}
	// Initial window sized so the initial rate is sendable at the assumed
	// RTT.
	c.cwnd = cfg.InitialRate / 8 * srtt.Seconds()
	if c.cwnd < float64(2*cfg.MSS) {
		c.cwnd = float64(2 * cfg.MSS)
	}
	if cfg.FeedbackTimeout > 0 {
		c.wd = cc.NewWatchdog(cfg.FeedbackTimeout)
	}
	return c
}

// Name implements cc.Controller.
func (c *Controller) Name() string { return "scream" }

// SetQueue implements cc.QueueAware.
func (c *Controller) SetQueue(q *cc.SendQueue) { c.queue = q }

// TargetBitrate implements cc.Controller. A starved feedback path (link
// outage) freezes the target at the floor until feedback returns. Repair
// spend is subtracted (floored at MinRate): the RTX stream is invisible to
// the in-flight window, so the encoder budget is where it is accounted.
func (c *Controller) TargetBitrate(now time.Duration) float64 {
	if c.wd.Starved(now) {
		return c.cfg.MinRate
	}
	return cc.RepairAdjust(c.target, c.repairSpend, now, c.cfg.MinRate)
}

// SetRepairSpend implements cc.RepairAware.
func (c *Controller) SetRepairSpend(f func(time.Duration) float64) { c.repairSpend = f }

// PacingRate implements cc.Controller: the window per RTT, with headroom,
// but never slower than the target (so a freshly grown queue can drain) and
// never beyond 1.5× the rate ceiling (an inflated RTT estimate after an
// outage must not turn the pacer into a firehose).
func (c *Controller) PacingRate(time.Duration) float64 {
	cwndRate := c.cwnd * 8 / c.boundedSRTT().Seconds()
	r := c.target
	if cwndRate > r {
		r = cwndRate
	}
	r *= pacingHead
	if max := 1.5 * c.cfg.MaxRate; r > max {
		r = max
	}
	return r
}

// boundedSRTT caps the smoothed RTT used for window/rate conversions:
// outage-inflated samples otherwise balloon the window far beyond what the
// feedback ack range covers, manufacturing spurious losses.
func (c *Controller) boundedSRTT() time.Duration {
	if c.srtt > 200*time.Millisecond {
		return 200 * time.Millisecond
	}
	return c.srtt
}

// CanSend implements cc.Controller: self-clocking against the window. A
// 25 % margin lets encoder bursts (I-frames) flow into the network's deep
// buffer instead of ageing out of the RTP queue. A starved feedback path
// stops sending outright: with no acks coming back, everything sent would
// only pile into the dead link's buffer.
func (c *Controller) CanSend(now time.Duration, size int) bool {
	if c.wd.Starved(now) {
		return false
	}
	return float64(c.bytesInFlight+size) <= 1.25*c.cwnd
}

// CWND returns the congestion window in bytes (for traces and tests).
func (c *Controller) CWND() float64 { return c.cwnd }

// BytesInFlight returns the unacknowledged bytes.
func (c *Controller) BytesInFlight() int { return c.bytesInFlight }

// QDelay returns the smoothed queuing-delay estimate.
func (c *Controller) QDelay() time.Duration { return c.qdelay }

// SRTT returns the smoothed round-trip estimate.
func (c *Controller) SRTT() time.Duration { return c.srtt }

// OnPacketSent implements cc.Controller.
func (c *Controller) OnPacketSent(p cc.SentPacket) {
	c.inflight[p.Seq] = inflightPkt{seq: p.Seq, size: p.Size, sendTime: p.SendTime}
	c.bytesInFlight += p.Size
}

// seqLess reports whether a precedes b in serial-number order.
func seqLess(a, b uint16) bool { return a != b && b-a < 0x8000 }

// updateOWD folds one (send, arrival) pair into the base/queuing delay
// estimators and returns the instantaneous queuing delay.
func (c *Controller) updateOWD(now time.Duration, sendTime, arrival time.Duration) time.Duration {
	owd := arrival - sendTime
	const baseWindowLen = 10 * time.Second
	c.baseWindow = append(c.baseWindow, owdSample{at: now, owd: owd})
	i := 0
	for i < len(c.baseWindow) && now-c.baseWindow[i].at > baseWindowLen {
		i++
	}
	c.baseWindow = c.baseWindow[i:]
	base := c.baseWindow[0].owd
	for _, s := range c.baseWindow[1:] {
		if s.owd < base {
			base = s.owd
		}
	}
	q := owd - base
	if q < 0 {
		q = 0
	}
	// EWMA with 1/8 gain.
	c.qdelay = (c.qdelay*7 + q) / 8
	return q
}

// OnFeedback implements cc.Controller: it ingests one RFC 8888 report,
// translated by the transport into acks covering the report's sequence
// range (acks[0].Seq is the report's begin_seq).
func (c *Controller) OnFeedback(now time.Duration, acks []cc.Ack) {
	if c.wd.OnFeedback(now) {
		// Feedback returned after an outage. The blackout consumed whatever
		// was in flight — the stale backlog was flushed at re-establishment,
		// not dropped by congestion — so restart the self-clock from the
		// floor without counting it as window losses.
		c.inflight = make(map[uint16]inflightPkt)
		c.bytesInFlight = 0
		c.cwnd = c.cfg.MinRate / 8 * c.boundedSRTT().Seconds()
		if c.cwnd < float64(2*c.cfg.MSS) {
			c.cwnd = float64(2 * c.cfg.MSS)
		}
		c.target = c.cfg.MinRate
		c.qdelay = 0
		c.baseWindow = c.baseWindow[:0]
		c.lastLossAt = now
		c.lastRateAdjust = now
	}
	if len(acks) == 0 {
		return
	}
	c.started = true
	bytesAcked := 0
	lossDetected := false
	var highestAcked uint16
	haveHighest := false

	for _, a := range acks {
		pkt, known := c.inflight[a.Seq]
		if !a.Received {
			continue
		}
		if !haveHighest || seqLess(highestAcked, a.Seq) {
			highestAcked = a.Seq
			haveHighest = true
		}
		if !known {
			continue // already acked in an earlier overlapping report
		}
		delete(c.inflight, a.Seq)
		c.bytesInFlight -= pkt.size
		bytesAcked += pkt.size
		// RTT sample: feedback arrival minus packet departure.
		if s := now - pkt.sendTime; s > 0 {
			c.srtt = (c.srtt*7 + s) / 8
		}
		c.updateOWD(now, pkt.sendTime, a.ArrivalTime)
	}

	// Loss detection 1: a packet inside the report marked not-received
	// while a clearly later one was received. The margin tolerates the
	// mild reordering cellular links produce.
	const reorderMargin = 8
	if haveHighest {
		for _, a := range acks {
			if a.Received || !seqLess(a.Seq+reorderMargin, highestAcked) {
				continue
			}
			// The age guard keeps jitter-displaced packets (which arrive
			// moments later) from being declared lost: a packet must be
			// well past the feedback round trip before a hole below the
			// highest ack means anything.
			lossAge := c.srtt*3/2 + 20*time.Millisecond
			if pkt, known := c.inflight[a.Seq]; known && now-pkt.sendTime > lossAge {
				delete(c.inflight, a.Seq)
				c.bytesInFlight -= pkt.size
				c.Losses++
				c.LossesInBand++
				lossDetected = true
			}
		}
	}

	// Loss detection 2: packets older than the report's begin_seq can never
	// be acknowledged again — the ack-window defect manufactures losses
	// here at high rates.
	begin := acks[0].Seq
	for seq, pkt := range c.inflight {
		if seqLess(seq, begin) {
			delete(c.inflight, seq)
			c.bytesInFlight -= pkt.size
			c.Losses++
			c.LossesWindow++
			lossDetected = true
		}
	}
	if c.bytesInFlight < 0 {
		c.bytesInFlight = 0
	}

	lossReacted := c.updateCWND(now, bytesAcked, lossDetected)
	c.adjustRate(now, lossReacted)
	if c.wd.InBackoff(now) {
		// Post-recovery probe hold: keep the target at the floor until the
		// backoff window ends, then ramp normally.
		c.target = c.cfg.MinRate
	}
	c.manageQueue(now)
	if c.trace != nil {
		c.trace.Emit(obs.Event{T: now, Kind: obs.KindCC,
			Seq: int64(c.cwnd), Aux: int64(len(acks)), V: c.target})
	}
}

// updateCWND applies the LEDBAT-style window update and reports whether a
// loss event was acted upon (at most once per RTT).
func (c *Controller) updateCWND(now time.Duration, bytesAcked int, lossDetected bool) bool {
	lossReacted := false
	if lossDetected {
		// At most one multiplicative decrease per RTT.
		if now-c.lastLossAt > c.srtt {
			c.cwnd *= lossBeta
			c.lastLossAt = now
			lossReacted = true
		}
	} else if c.qdelay > 5*c.cfg.QDelayTarget/2 {
		// Sustained queuing-delay overshoot is treated as a congestion
		// event (RFC 8298 §4.1.2.1): a multiplicative cut, at most once
		// per RTT, so the window tracks deep capacity dips fast enough
		// that the RTP queue does not age out.
		if now-c.lastLossAt > c.srtt {
			c.cwnd *= 0.9
			c.lastLossAt = now
		}
	} else if bytesAcked > 0 {
		offTarget := float64(c.cfg.QDelayTarget-c.qdelay) / float64(c.cfg.QDelayTarget)
		if offTarget > 1 {
			offTarget = 1
		} else if offTarget < -1 {
			offTarget = -1
		}
		// The paper: the window grows only while the RTP queue is shorter
		// than the growth limit.
		queueOK := c.queue == nil || c.queue.Delay(now) < c.cfg.QueueGrowthLimit
		if offTarget > 0 && queueOK {
			c.cwnd += gainUp * offTarget * float64(bytesAcked) * float64(c.cfg.MSS) / c.cwnd
		} else if offTarget < 0 {
			c.cwnd += 2 * gainUp * offTarget * float64(bytesAcked) * float64(c.cfg.MSS) / c.cwnd
		}
	}
	// Clamps: never below two segments, never far beyond what the max rate
	// requires at the current RTT.
	if c.cwnd < float64(2*c.cfg.MSS) {
		c.cwnd = float64(2 * c.cfg.MSS)
	}
	maxCwnd := c.cfg.MaxRate / 8 * c.boundedSRTT().Seconds() * 2
	if c.cwnd > maxCwnd {
		c.cwnd = maxCwnd
	}
	return lossReacted
}

// adjustRate moves the media target toward what the window sustains.
func (c *Controller) adjustRate(now time.Duration, lossDetected bool) {
	const interval = 200 * time.Millisecond
	if lossDetected {
		c.target *= lossRateBeta
		c.clampTarget()
		c.lastRateAdjust = now
		return
	}
	if now-c.lastRateAdjust < interval {
		return
	}
	dt := (now - c.lastRateAdjust).Seconds()
	if dt > 1 {
		dt = 1
	}
	c.lastRateAdjust = now

	cwndRate := c.cwnd * 8 / c.boundedSRTT().Seconds() * rateHeadroom
	queueDelay := time.Duration(0)
	if c.queue != nil {
		queueDelay = c.queue.Delay(now)
	}
	switch {
	case queueDelay > c.cfg.QueueDiscardAge/2:
		// The window cannot push the media out: scale the rate down.
		c.target *= queueBeta
	case c.target < cwndRate:
		// Headroom: ramp up, limited by the configured speed. The limit
		// scales with the rate so recovery from a dip at high rates does
		// not take the whole flight, and widens further when the window
		// clearly sustains more (SCReAM's fast-increase mode).
		ramp := c.cfg.RampUpSpeed * dt
		if scaled := c.target / 10e6 * c.cfg.RampUpSpeed * dt; scaled > ramp {
			ramp = scaled
		}
		if c.target < 0.7*cwndRate {
			ramp *= 4
		}
		c.target += ramp
		if c.target > cwndRate {
			c.target = cwndRate
		}
	default:
		// The window does not sustain the target: follow it down gently.
		c.target = 0.9*c.target + 0.1*cwndRate
	}
	c.clampTarget()
}

func (c *Controller) clampTarget() {
	if c.target < c.cfg.MinRate {
		c.target = c.cfg.MinRate
	} else if c.target > c.cfg.MaxRate {
		c.target = c.cfg.MaxRate
	}
}

// manageQueue enforces the RTP queue age limit: when the head-of-queue age
// exceeds QueueDiscardAge, the whole queue is discarded (SCReAM's
// quick-recovery behaviour, §4.2.1) and the target is pulled down.
func (c *Controller) manageQueue(now time.Duration) {
	if c.queue == nil {
		return
	}
	if c.queue.Delay(now) > c.cfg.QueueDiscardAge {
		c.queue.Clear()
		c.QueueDiscards++
		c.target *= queueBeta
		c.clampTarget()
	}
}
