package scream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rpivideo/internal/cc"
)

func TestDefaults(t *testing.T) {
	cfg := Config{}
	cfg.defaults()
	if cfg.MinRate != 2e6 || cfg.MaxRate != 25e6 || cfg.InitialRate != 2e6 {
		t.Errorf("rate defaults = %+v", cfg)
	}
	if cfg.QDelayTarget != 60*time.Millisecond || cfg.QueueDiscardAge != 100*time.Millisecond ||
		cfg.QueueGrowthLimit != 300*time.Millisecond || cfg.MSS != 1200 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestInterface(t *testing.T) {
	c := New(Config{})
	if c.Name() != "scream" {
		t.Errorf("Name = %q", c.Name())
	}
	if c.TargetBitrate(0) != 2e6 {
		t.Errorf("initial target = %v", c.TargetBitrate(0))
	}
	if c.PacingRate(0) <= 0 {
		t.Error("pacing rate must be positive")
	}
}

func TestSelfClocking(t *testing.T) {
	c := New(Config{})
	size := 1200
	n := 0
	for c.CanSend(0, size) {
		c.OnPacketSent(cc.SentPacket{Seq: uint16(n), Size: size, SendTime: 0})
		n++
		if n > 10000 {
			t.Fatal("window never filled")
		}
	}
	if float64(c.BytesInFlight()) > 1.25*c.CWND()+1200 {
		t.Errorf("bytes in flight %d exceed the 1.25×cwnd burst margin (%.0f)", c.BytesInFlight(), c.CWND())
	}
	if n < 2 {
		t.Errorf("window admits only %d packets", n)
	}
}

// feedbackFor builds acks covering [begin, begin+n) where all sent packets
// arrive with the given one-way delay.
func feedbackFor(begin uint16, n int, sendTimes map[uint16]time.Duration, owd time.Duration) []cc.Ack {
	acks := make([]cc.Ack, 0, n)
	for i := 0; i < n; i++ {
		seq := begin + uint16(i)
		st, ok := sendTimes[seq]
		a := cc.Ack{Seq: seq, Size: 1200}
		if ok {
			a.Received = true
			a.SendTime = st
			a.ArrivalTime = st + owd
		}
		acks = append(acks, a)
	}
	return acks
}

func TestAckReleasesWindow(t *testing.T) {
	c := New(Config{})
	sendTimes := map[uint16]time.Duration{}
	for i := 0; i < 5; i++ {
		st := time.Duration(i) * time.Millisecond
		c.OnPacketSent(cc.SentPacket{Seq: uint16(i), Size: 1200, SendTime: st})
		sendTimes[uint16(i)] = st
	}
	before := c.BytesInFlight()
	c.OnFeedback(70*time.Millisecond, feedbackFor(0, 5, sendTimes, 50*time.Millisecond))
	if c.BytesInFlight() != before-5*1200 {
		t.Errorf("bytes in flight = %d, want %d", c.BytesInFlight(), before-5*1200)
	}
}

func TestCWNDGrowsWhenBelowQDelayTarget(t *testing.T) {
	c := New(Config{})
	cw0 := c.CWND()
	now := time.Duration(0)
	seq := uint16(0)
	for round := 0; round < 100; round++ {
		sendTimes := map[uint16]time.Duration{}
		for i := 0; i < 8; i++ {
			if !c.CanSend(now, 1200) {
				break
			}
			c.OnPacketSent(cc.SentPacket{Seq: seq, Size: 1200, SendTime: now})
			sendTimes[seq] = now
			seq++
			now += time.Millisecond
		}
		begin := seq - uint16(len(sendTimes))
		now += 50 * time.Millisecond
		c.OnFeedback(now, feedbackFor(begin, len(sendTimes), sendTimes, 40*time.Millisecond))
	}
	if c.CWND() <= cw0 {
		t.Errorf("cwnd did not grow: %.0f → %.0f", cw0, c.CWND())
	}
}

func TestCWNDShrinksOnLoss(t *testing.T) {
	c := New(Config{})
	sendTimes := map[uint16]time.Duration{}
	for i := 0; i < 10; i++ {
		st := time.Duration(i) * time.Millisecond
		c.OnPacketSent(cc.SentPacket{Seq: uint16(i), Size: 1200, SendTime: st})
		sendTimes[uint16(i)] = st
	}
	// First report: everything received except packet 3. Too fresh and too
	// close to the highest ack to be declared lost (reorder tolerance).
	acks := feedbackFor(0, 10, sendTimes, 50*time.Millisecond)
	acks[3].Received = false
	c.OnFeedback(100*time.Millisecond, acks)
	if c.Losses != 0 {
		t.Fatalf("fresh hole declared lost immediately (losses=%d)", c.Losses)
	}
	cw0 := c.CWND()
	// A newer packet far beyond the hole gets acked, and the hole has aged
	// past the guard: now it is a loss.
	c.OnPacketSent(cc.SentPacket{Seq: 30, Size: 1200, SendTime: 250 * time.Millisecond})
	c.OnFeedback(300*time.Millisecond, []cc.Ack{
		{Seq: 3, Size: 1200},
		{Seq: 30, Size: 1200, Received: true, SendTime: 250 * time.Millisecond, ArrivalTime: 290 * time.Millisecond},
	})
	if c.Losses != 1 {
		t.Errorf("Losses = %d, want 1", c.Losses)
	}
	if c.CWND() >= cw0 {
		t.Errorf("cwnd did not shrink on loss: %.0f → %.0f", cw0, c.CWND())
	}
	if c.BytesInFlight() != 0 {
		t.Errorf("lost packet still counted in flight: %d", c.BytesInFlight())
	}
}

func TestSpuriousLossFromAckWindow(t *testing.T) {
	// Packets that fall below the report's begin_seq without being acked
	// are declared lost — the §4.2.1 defect.
	c := New(Config{})
	sendTimes := map[uint16]time.Duration{}
	for i := 0; i < 100; i++ {
		st := time.Duration(i) * 100 * time.Microsecond
		c.OnPacketSent(cc.SentPacket{Seq: uint16(i), Size: 1200, SendTime: st})
		sendTimes[uint16(i)] = st
	}
	// A 64-wide report covering [36, 100): packets 0..35 fall out unacked.
	c.OnFeedback(60*time.Millisecond, feedbackFor(36, 64, sendTimes, 50*time.Millisecond))
	if c.Losses != 36 {
		t.Errorf("spurious losses = %d, want 36", c.Losses)
	}
	target0 := c.TargetBitrate(0)
	if target0 >= 2e6*1.01 && c.CWND() >= New(Config{}).CWND() {
		t.Error("spurious loss should reduce window or rate")
	}
}

func TestQDelayEstimateSubtractsBase(t *testing.T) {
	c := New(Config{})
	// Constant 80 ms OWD (e.g. clock offset + propagation): queuing delay
	// should settle near zero.
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		now += 10 * time.Millisecond
		c.updateOWD(now, now-80*time.Millisecond, now)
	}
	if c.QDelay() > 5*time.Millisecond {
		t.Errorf("qdelay = %v for constant OWD, want ≈0", c.QDelay())
	}
	// Then the delay rises by 100 ms: queuing delay should follow.
	for i := 0; i < 100; i++ {
		now += 10 * time.Millisecond
		c.updateOWD(now, now-180*time.Millisecond, now)
	}
	if c.QDelay() < 50*time.Millisecond {
		t.Errorf("qdelay = %v after +100 ms step, want > 50 ms", c.QDelay())
	}
}

func TestQueueDiscard(t *testing.T) {
	cfg := Config{QueueDiscardAge: 100 * time.Millisecond}
	c := New(cfg)
	var q cc.SendQueue
	c.SetQueue(&q)
	q.Push(cc.Item{Size: 1200, Enqueued: 0})
	q.Push(cc.Item{Size: 1200, Enqueued: 10 * time.Millisecond})

	sendTimes := map[uint16]time.Duration{0: 0}
	c.OnPacketSent(cc.SentPacket{Seq: 0, Size: 1200, SendTime: 0})
	// Feedback arrives at t=200ms: head of queue is 200 ms old → discard.
	c.OnFeedback(200*time.Millisecond, feedbackFor(0, 1, sendTimes, 50*time.Millisecond))
	if q.Len() != 0 {
		t.Errorf("queue len = %d after discard, want 0", q.Len())
	}
	if c.QueueDiscards != 1 {
		t.Errorf("QueueDiscards = %d, want 1", c.QueueDiscards)
	}
}

// run drives a closed loop against a synthetic link with given capacity and
// base OWD, returning the reached target bitrate.
func run(c *Controller, seconds float64, capacity float64, baseOWD time.Duration, lossP float64, rng *rand.Rand) float64 {
	var q cc.SendQueue
	c.SetQueue(&q)
	type flight struct {
		seq     uint16
		arrival time.Duration
		send    time.Duration
		lost    bool
	}
	var pipe []flight
	now := time.Duration(0)
	end := time.Duration(seconds * float64(time.Second))
	seq := uint16(0)
	// Link serialization clock.
	linkFree := time.Duration(0)
	const fbEvery = 10 * time.Millisecond
	nextFb := fbEvery
	sendTimes := map[uint16]time.Duration{}
	window := 256
	arrivedAll := map[uint16]time.Duration{}
	var highestSeq uint16
	haveHighest := false

	for now < end {
		now += time.Millisecond
		// Media: push packets at the target rate (1200-byte packets).
		pps := c.TargetBitrate(now) / (1200 * 8)
		n := int(pps / 1000)
		if rng.Float64() < math.Mod(pps/1000, 1) {
			n++
		}
		for i := 0; i < n; i++ {
			q.Push(cc.Item{Size: 1200, Enqueued: now})
		}
		// Self-clocked drain into the link.
		for {
			if _, ok := q.Peek(); !ok || !c.CanSend(now, 1200) {
				break
			}
			q.Pop()
			c.OnPacketSent(cc.SentPacket{Seq: seq, Size: 1200, SendTime: now})
			sendTimes[seq] = now
			ser := time.Duration(1200 * 8 / capacity * float64(time.Second))
			if linkFree < now {
				linkFree = now
			}
			linkFree += ser
			queuing := linkFree - now
			pipe = append(pipe, flight{seq: seq, send: now, arrival: now + baseOWD + queuing, lost: rng.Float64() < lossP})
			seq++
		}
		// Feedback every 10 ms covering the trailing window.
		if now >= nextFb {
			nextFb += fbEvery
			// Move newly arrived packets out of the pipe.
			keep := pipe[:0]
			for _, f := range pipe {
				if f.arrival <= now {
					if !f.lost {
						arrivedAll[f.seq] = f.arrival
						if !haveHighest || seqLess(highestSeq, f.seq) {
							highestSeq = f.seq
							haveHighest = true
						}
					}
				} else {
					keep = append(keep, f)
				}
			}
			pipe = keep
			arrived, highest, have := arrivedAll, highestSeq, haveHighest
			if have {
				begin := highest - uint16(window-1)
				acks := make([]cc.Ack, 0, window)
				for i := 0; i < window; i++ {
					s := begin + uint16(i)
					a := cc.Ack{Seq: s, Size: 1200}
					if at, ok := arrived[s]; ok {
						a.Received = true
						a.ArrivalTime = at
						a.SendTime = sendTimes[s]
					}
					acks = append(acks, a)
				}
				c.OnFeedback(now+baseOWD/2, acks)
			}
		}
	}
	return c.TargetBitrate(now)
}

func TestRampUpOnCleanLink(t *testing.T) {
	c := New(Config{})
	rng := rand.New(rand.NewSource(1))
	got := run(c, 40, 40e6, 35*time.Millisecond, 0, rng)
	if got < 20e6 {
		t.Errorf("target after 40 s on a 40 Mbps link = %.1f Mbps, want ≥ 20", got/1e6)
	}
}

func TestRampUpSpeedBoundsTime(t *testing.T) {
	// With a 1 Mbps/s ramp the paper's ≈25 s from 2→25 Mbps must hold: the
	// target cannot reach 25 Mbps before ~20 s.
	c := New(Config{})
	rng := rand.New(rand.NewSource(2))
	got := run(c, 15, 40e6, 35*time.Millisecond, 0, rng)
	if got >= 24.9e6 {
		t.Errorf("target after 15 s = %.1f Mbps; ramp-up should take ≈25 s", got/1e6)
	}
}

func TestConvergesBelowCapacity(t *testing.T) {
	c := New(Config{})
	rng := rand.New(rand.NewSource(3))
	got := run(c, 40, 10e6, 35*time.Millisecond, 0, rng)
	if got > 12.5e6 {
		t.Errorf("target on a 10 Mbps link = %.1f Mbps, want ≤ capacity + headroom", got/1e6)
	}
	if got < 5e6 {
		t.Errorf("target on a 10 Mbps link = %.1f Mbps, want reasonable utilization", got/1e6)
	}
}

func TestBacksOffUnderLoss(t *testing.T) {
	c := New(Config{})
	rng := rand.New(rand.NewSource(4))
	got := run(c, 20, 40e6, 35*time.Millisecond, 0.05, rng)
	if got > 15e6 {
		t.Errorf("target under 5%% loss = %.1f Mbps, want suppressed", got/1e6)
	}
	if c.Losses == 0 {
		t.Error("no losses recorded")
	}
}

// Property: the target stays within [MinRate, MaxRate], cwnd stays above the
// floor and bytes-in-flight never goes negative, under arbitrary feedback.
func TestPropertyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{})
		now := time.Duration(0)
		seq := uint16(0)
		for round := 0; round < 60; round++ {
			now += time.Duration(rng.Intn(20)+1) * time.Millisecond
			n := rng.Intn(10)
			sendTimes := map[uint16]time.Duration{}
			for i := 0; i < n; i++ {
				c.OnPacketSent(cc.SentPacket{Seq: seq, Size: rng.Intn(1400) + 100, SendTime: now})
				sendTimes[seq] = now
				seq++
			}
			var acks []cc.Ack
			m := rng.Intn(30) + 1
			begin := seq - uint16(rng.Intn(40))
			for i := 0; i < m; i++ {
				s := begin + uint16(i)
				a := cc.Ack{Seq: s, Size: 1200}
				if rng.Float64() < 0.7 {
					a.Received = true
					a.SendTime = sendTimes[s]
					a.ArrivalTime = now + time.Duration(rng.Intn(100))*time.Millisecond
				}
				acks = append(acks, a)
			}
			c.OnFeedback(now, acks)
			tb := c.TargetBitrate(now)
			if math.IsNaN(tb) || tb < 2e6-1 || tb > 25e6+1 {
				return false
			}
			if c.CWND() < float64(2*1200) || c.BytesInFlight() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEmptyFeedbackIgnored(t *testing.T) {
	c := New(Config{})
	before := c.TargetBitrate(0)
	c.OnFeedback(time.Second, nil)
	if c.TargetBitrate(0) != before {
		t.Error("empty feedback changed the target")
	}
}
