package scream

import (
	"testing"
	"time"

	"rpivideo/internal/cc"
)

func TestOverlappingReportsAckOnce(t *testing.T) {
	c := New(Config{})
	sendTimes := map[uint16]time.Duration{}
	for i := 0; i < 10; i++ {
		st := time.Duration(i) * time.Millisecond
		c.OnPacketSent(cc.SentPacket{Seq: uint16(i), Size: 1200, SendTime: st})
		sendTimes[uint16(i)] = st
	}
	// Two overlapping reports covering the same packets: the second must
	// not double-release bytes in flight.
	c.OnFeedback(60*time.Millisecond, feedbackFor(0, 10, sendTimes, 50*time.Millisecond))
	if c.BytesInFlight() != 0 {
		t.Fatalf("bytes in flight = %d after full ack", c.BytesInFlight())
	}
	c.OnFeedback(70*time.Millisecond, feedbackFor(0, 10, sendTimes, 50*time.Millisecond))
	if c.BytesInFlight() != 0 {
		t.Errorf("bytes in flight = %d after duplicate ack", c.BytesInFlight())
	}
}

func TestBoundedSRTTCapsWindow(t *testing.T) {
	c := New(Config{})
	// Feed an absurd RTT sample (long outage) and verify the window/rate
	// conversions stay bounded.
	c.OnPacketSent(cc.SentPacket{Seq: 0, Size: 1200, SendTime: 0})
	acks := []cc.Ack{{Seq: 0, Size: 1200, Received: true, SendTime: 0, ArrivalTime: 4 * time.Second}}
	for i := 0; i < 20; i++ {
		c.OnFeedback(4*time.Second+time.Duration(i)*10*time.Millisecond, acks)
	}
	if c.boundedSRTT() > 200*time.Millisecond {
		t.Errorf("bounded srtt = %v, want cap at 200 ms", c.boundedSRTT())
	}
	if r := c.PacingRate(0); r > 1.5*25e6+1 {
		t.Errorf("pacing rate = %v exceeds 1.5× max rate", r)
	}
}

func TestJitterReorderingNotDeclaredLost(t *testing.T) {
	c := New(Config{})
	sendTimes := map[uint16]time.Duration{}
	for i := 0; i < 20; i++ {
		st := time.Duration(i) * time.Millisecond
		c.OnPacketSent(cc.SentPacket{Seq: uint16(i), Size: 1200, SendTime: st})
		sendTimes[uint16(i)] = st
	}
	// A report in which packet 15 has not arrived yet (displaced by
	// jitter) but 16..19 have: it is recent (age < guard), so no loss.
	acks := feedbackFor(0, 20, sendTimes, 40*time.Millisecond)
	acks[15].Received = false
	c.OnFeedback(60*time.Millisecond, acks)
	if c.Losses != 0 {
		t.Errorf("recent reordered packet declared lost (%d losses)", c.Losses)
	}
	// Much later, with the hole aged and the highest ack far beyond the
	// reorder margin, it is a real loss.
	c.OnPacketSent(cc.SentPacket{Seq: 40, Size: 1200, SendTime: 800 * time.Millisecond})
	lateAcks := []cc.Ack{
		{Seq: 15, Size: 1200},
		{Seq: 40, Size: 1200, Received: true, SendTime: 800 * time.Millisecond, ArrivalTime: 850 * time.Millisecond},
	}
	c.OnFeedback(900*time.Millisecond, lateAcks)
	if c.Losses != 1 {
		t.Errorf("aged hole not declared lost (losses = %d)", c.Losses)
	}
}

func TestLossCountersSplit(t *testing.T) {
	c := New(Config{})
	sendTimes := map[uint16]time.Duration{}
	for i := 0; i < 300; i++ {
		st := time.Duration(i) * 100 * time.Microsecond
		c.OnPacketSent(cc.SentPacket{Seq: uint16(i), Size: 1200, SendTime: st})
		sendTimes[uint16(i)] = st
	}
	// A 64-wide report far ahead: everything below begin expires.
	c.OnFeedback(time.Second, feedbackFor(236, 64, sendTimes, 50*time.Millisecond))
	if c.LossesWindow == 0 {
		t.Error("window-expiry losses not counted")
	}
	if c.Losses != c.LossesWindow+c.LossesInBand {
		t.Errorf("loss counters inconsistent: %d != %d + %d", c.Losses, c.LossesWindow, c.LossesInBand)
	}
}

func TestRateHeadroomKeepsTargetBelowWindow(t *testing.T) {
	c := New(Config{})
	// Drive a long clean closed loop and verify the target stays below
	// what the window converts to.
	rngRun(c, t)
	cwndRate := c.CWND() * 8 / c.boundedSRTT().Seconds()
	if c.TargetBitrate(0) > cwndRate {
		t.Errorf("target %v above cwnd rate %v", c.TargetBitrate(0), cwndRate)
	}
}

func rngRun(c *Controller, t *testing.T) {
	t.Helper()
	sendTimes := map[uint16]time.Duration{}
	seq := uint16(0)
	now := time.Duration(0)
	for round := 0; round < 500; round++ {
		now += 10 * time.Millisecond
		for i := 0; i < 4; i++ {
			if !c.CanSend(now, 1200) {
				break
			}
			c.OnPacketSent(cc.SentPacket{Seq: seq, Size: 1200, SendTime: now})
			sendTimes[seq] = now
			seq++
		}
		if seq > 0 {
			begin := uint16(0)
			if seq > 64 {
				begin = seq - 64
			}
			c.OnFeedback(now+40*time.Millisecond, feedbackFor(begin, int(seq-begin), sendTimes, 35*time.Millisecond))
		}
	}
}
