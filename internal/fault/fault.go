// Package fault provides deterministic fault injection for the emulated
// cellular paths: scripted coverage outages (the paper's §5 coverage holes
// at altitude), plus the knobs that arm the radio-link-failure machinery
// and the graceful-degradation responses across the stack. Everything here
// is a pure function of the configuration — scripted windows carry no
// randomness of their own, and RLF randomness draws from the run's named
// rng streams — so a seeded run with faults enabled is byte-identical at
// any campaign worker count.
package fault

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Direction selects which side(s) of the bidirectional path a scripted
// window silences. Media flows uplink (vehicle to operator); feedback
// (TWCC/CCFB/RTCP) flows downlink, so Downlink-only windows starve the
// congestion controllers without touching the media path.
type Direction int

// Directions.
const (
	Both Direction = iota
	Uplink
	Downlink
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Uplink:
		return "up"
	case Downlink:
		return "down"
	default:
		return "both"
	}
}

// Path scopes a scripted window to one bonded radio chain. The zero value
// (PathAll) is the physical coverage hole of the single-path campaigns: the
// vehicle is inside it, so every radio is silenced. PathPrimary and
// PathSecondary model operator-side failures — an RLF or outage on one
// operator's network while the other keeps serving — which is the failure
// mode dual-operator bonding exists to survive.
const (
	PathAll       = 0
	PathPrimary   = 1
	PathSecondary = 2
)

// Window is one scripted fault episode on the link(s) in Dir over
// [Start, Start+Duration). With Loss false it is a coverage outage:
// service is interrupted, packets queue behind the interruption and the
// stale-backlog flush applies at resumption. With Loss true it is a deep
// fade: the radio keeps transmitting but every packet in the window is
// erased in flight — the §4.3 loss burst, the regime selective
// retransmission exists for — and none of the outage machinery (service
// interruption, watchdog starvation, stale flush) engages.
type Window struct {
	Start    time.Duration
	Duration time.Duration
	Dir      Direction
	Loss     bool
	// Path scopes the window to one bonded radio chain (PathPrimary or
	// PathSecondary); PathAll silences every chain.
	Path int
}

// End returns the instant service resumes.
func (w Window) End() time.Duration { return w.Start + w.Duration }

// ParseSchedule parses a comma-separated scripted fault schedule. Each
// element is start+duration (a coverage outage) or start~duration (a deep
// fade erasing packets in flight), with optional direction and path-scope
// suffixes:
//
//	"45s+2s"                 both directions dark for 2 s at t=45 s
//	"45s+2s,90s+500ms/down"  plus a feedback-only blackout at t=90 s
//	"20s~60ms"               a 60 ms loss fade at t=20 s
//	"45s+2s@p1"              an operator-side blackout of the primary
//	                         bonded path only (the secondary keeps serving)
//
// Direction suffixes are /up, /down and /both (the default); path-scope
// suffixes are @p1 and @p2 (default: every path). The suffixes compose in
// either order ("45s+2s/up@p1" ≡ "45s+2s@p1/up").
func ParseSchedule(spec string) ([]Window, error) {
	var out []Window
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		w := Window{Dir: Both}
		var haveDir, havePath bool
		for {
			i := strings.LastIndexAny(field, "/@")
			if i < 0 {
				break
			}
			tok := field[i+1:]
			switch field[i] {
			case '/':
				if haveDir {
					return nil, fmt.Errorf("fault: repeated direction suffix in %q", field)
				}
				haveDir = true
				switch tok {
				case "up":
					w.Dir = Uplink
				case "down":
					w.Dir = Downlink
				case "both":
					w.Dir = Both
				default:
					return nil, fmt.Errorf("fault: bad direction %q in %q (want up, down or both)", tok, field)
				}
			case '@':
				if havePath {
					return nil, fmt.Errorf("fault: repeated path scope in %q", field)
				}
				havePath = true
				switch tok {
				case "p1":
					w.Path = PathPrimary
				case "p2":
					w.Path = PathSecondary
				default:
					return nil, fmt.Errorf("fault: bad path scope %q in %q (want p1 or p2)", tok, field)
				}
			}
			field = field[:i]
		}
		start, dur, ok := strings.Cut(field, "+")
		if !ok {
			if start, dur, ok = strings.Cut(field, "~"); ok {
				w.Loss = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("fault: bad window %q (want start+duration for an outage or start~duration for a loss fade, e.g. 45s+2s or 20s~60ms)", field)
		}
		var err error
		if w.Start, err = time.ParseDuration(start); err != nil {
			return nil, fmt.Errorf("fault: bad start in %q: %v", field, err)
		}
		if w.Duration, err = time.ParseDuration(dur); err != nil {
			return nil, fmt.Errorf("fault: bad duration in %q: %v", field, err)
		}
		if w.Start < 0 || w.Duration <= 0 {
			return nil, fmt.Errorf("fault: window %q must have start ≥ 0 and duration > 0", field)
		}
		out = append(out, w)
	}
	if out == nil && strings.TrimSpace(spec) != "" {
		// A non-empty spec made only of separators ("," or " , ") is a
		// typo, not an empty schedule — arming faults with it would
		// silently run fault-free.
		return nil, fmt.Errorf("fault: schedule %q contains no windows", spec)
	}
	return out, nil
}

// Config arms the fault layer. The zero value disables everything; the
// graceful-degradation flags (Watchdog, KeyframeRecovery, the re-
// establishment queue policy) only take effect when Enabled.
type Config struct {
	// Windows are scripted outages (coverage holes); they apply on top of
	// any RLF-driven interruptions.
	Windows []Window
	// RLF enables the radio-link-failure model in the cell machine:
	// Qout/Qin thresholds with T310/T311 timers and HET-outlier handover
	// failures, each producing a multi-second re-establishment blackout.
	RLF bool
	// Watchdog enables the controllers' feedback-starvation watchdog:
	// after WatchdogTimeout without feedback the rate freezes to the floor
	// and probing stops; recovery re-probes under exponential backoff.
	Watchdog bool
	// WatchdogTimeout overrides the starvation threshold (750 ms when
	// zero — ≈15 TWCC intervals).
	WatchdogTimeout time.Duration
	// KeyframeRecovery enables the player's post-outage keyframe request
	// and the decode-error-propagation SSIM model (§5 error concealment).
	KeyframeRecovery bool
	// FreezeQueue keeps queued packets across an interruption instead of
	// the default drop-stale-at-re-establishment behaviour.
	FreezeQueue bool
	// StaleAfter is the queue age dropped when service resumes (600 ms
	// when zero; ignored under FreezeQueue).
	StaleAfter time.Duration
}

// Enabled reports whether any fault source is armed.
func (c Config) Enabled() bool { return len(c.Windows) > 0 || c.RLF }

// span is one merged half-open outage interval.
type span struct{ from, to time.Duration }

// Line is one link direction's view of a scripted schedule: the sorted,
// merged outage windows that silence that direction, plus the loss-fade
// windows that erase its packets in flight.
type Line struct {
	spans []span // outages (service interrupted)
	loss  []span // fades (packets erased, service up)
}

// mergeSpans sorts and coalesces overlapping intervals.
func mergeSpans(spans []span) []span {
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].from < spans[j].from })
	merged := spans[:1]
	for _, s := range spans[1:] {
		last := &merged[len(merged)-1]
		if s.from <= last.to {
			if s.to > last.to {
				last.to = s.to
			}
			continue
		}
		merged = append(merged, s)
	}
	return merged
}

// NewLine filters the windows that apply to dir regardless of path scope,
// sorts and merges them. It returns nil when none apply, which Blocked and
// Lossy treat as never blocked and never lossy.
func NewLine(ws []Window, dir Direction) *Line {
	return NewPathLine(ws, dir, PathAll)
}

// NewPathLine is NewLine restricted to the windows that apply to one bonded
// radio chain: PathAll windows silence every chain, path-scoped windows only
// their own. Passing PathAll as path includes every window.
func NewPathLine(ws []Window, dir Direction, path int) *Line {
	var outages, fades []span
	for _, w := range ws {
		if w.Duration <= 0 {
			continue
		}
		if w.Dir != Both && w.Dir != dir {
			continue
		}
		if w.Path != PathAll && path != PathAll && w.Path != path {
			continue
		}
		if w.Loss {
			fades = append(fades, span{from: w.Start, to: w.End()})
		} else {
			outages = append(outages, span{from: w.Start, to: w.End()})
		}
	}
	if len(outages) == 0 && len(fades) == 0 {
		return nil
	}
	return &Line{spans: mergeSpans(outages), loss: mergeSpans(fades)}
}

// Blocked reports whether the line is silenced at now, and until when.
func (l *Line) Blocked(now time.Duration) (until time.Duration, blocked bool) {
	if l == nil {
		return 0, false
	}
	for _, s := range l.spans {
		if now < s.from {
			return 0, false
		}
		if now < s.to {
			return s.to, true
		}
	}
	return 0, false
}

// Lossy reports whether the line is inside a loss fade at now: service is
// up but every packet transmitted is erased.
func (l *Line) Lossy(now time.Duration) bool {
	if l == nil {
		return false
	}
	for _, s := range l.loss {
		if now < s.from {
			return false
		}
		if now < s.to {
			return true
		}
	}
	return false
}

// Kind classifies a fault episode.
type Kind int

// Episode kinds.
const (
	// KindScripted is a configured outage window.
	KindScripted Kind = iota
	// KindRLF is a radio-link failure (T310 expiry on serving RSRP).
	KindRLF
	// KindHandoverFailure is a botched handover that forced RRC
	// re-establishment.
	KindHandoverFailure
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRLF:
		return "rlf"
	case KindHandoverFailure:
		return "ho-failure"
	default:
		return "scripted"
	}
}

// Episode is one realized outage in a run's timeline.
type Episode struct {
	Start, End time.Duration
	Kind       Kind
	// Dir is which side went dark (RLF episodes silence both).
	Dir Direction
}

// Length returns the episode duration.
func (e Episode) Length() time.Duration { return e.End - e.Start }
