package fault

import (
	"testing"
	"time"
)

func TestParseSchedule(t *testing.T) {
	ws, err := ParseSchedule("45s+2s, 90s+500ms/down ,120s+1s/up")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	want := []Window{
		{Start: 45 * time.Second, Duration: 2 * time.Second, Dir: Both},
		{Start: 90 * time.Second, Duration: 500 * time.Millisecond, Dir: Downlink},
		{Start: 120 * time.Second, Duration: time.Second, Dir: Uplink},
	}
	if len(ws) != len(want) {
		t.Fatalf("got %d windows, want %d", len(ws), len(want))
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Errorf("window %d: got %+v, want %+v", i, ws[i], want[i])
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, spec := range []string{
		"45s",          // no duration
		"45s+2s/side",  // bad direction
		"xyz+2s",       // bad start
		"45s+xyz",      // bad duration
		"-1s+2s",       // negative start
		"45s+0s",       // zero duration
		"45s+2s,45s+w", // error in second element
	} {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", spec)
		}
	}
	if ws, err := ParseSchedule(""); err != nil || len(ws) != 0 {
		t.Errorf("empty spec: got %v windows, err %v", ws, err)
	}
}

// TestParseScheduleEdgeCases pins the parser's behaviour on the inputs a
// user is most likely to mistype on the -faults flag.
func TestParseScheduleEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		want    []Window
		wantErr bool
	}{
		{name: "empty string", spec: "", want: nil},
		{name: "whitespace only", spec: "   ", want: nil},
		{
			name: "trailing comma",
			spec: "45s+2s,",
			want: []Window{{Start: 45 * time.Second, Duration: 2 * time.Second, Dir: Both}},
		},
		{
			name: "interior empty field",
			spec: "45s+2s,,90s+1s/up",
			want: []Window{
				{Start: 45 * time.Second, Duration: 2 * time.Second, Dir: Both},
				{Start: 90 * time.Second, Duration: time.Second, Dir: Uplink},
			},
		},
		{name: "separators only", spec: ",", wantErr: true},
		{name: "separators and spaces only", spec: " , , ", wantErr: true},
		{name: "zero duration", spec: "5s+0s", wantErr: true},
		{name: "negative duration", spec: "5s+-2s", wantErr: true},
		{name: "bad direction suffix", spec: "5s+1s/sideways", wantErr: true},
		{name: "empty direction suffix", spec: "5s+1s/", wantErr: true},
		{name: "missing plus", spec: "5s2s", wantErr: true},
		{
			// Overlapping windows parse fine; NewLine merges them at
			// activation time (TestLineMergesOverlaps).
			name: "overlapping windows",
			spec: "10s+5s,12s+5s",
			want: []Window{
				{Start: 10 * time.Second, Duration: 5 * time.Second, Dir: Both},
				{Start: 12 * time.Second, Duration: 5 * time.Second, Dir: Both},
			},
		},
		{
			name: "zero start is valid",
			spec: "0s+1s/down",
			want: []Window{{Start: 0, Duration: time.Second, Dir: Downlink}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseSchedule(tc.spec)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseSchedule(%q) = %+v, want error", tc.spec, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseSchedule(%q): %v", tc.spec, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("ParseSchedule(%q) = %+v, want %+v", tc.spec, got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Errorf("window %d: got %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestParseSchedulePaths: the @p1/@p2 suffix scopes a window to one bonded
// path and composes with the direction suffix in either order.
func TestParseSchedulePaths(t *testing.T) {
	ws, err := ParseSchedule("45s+2s@p1, 60s+1s/up@p2 ,75s+1s@p1/down, 90s~80ms@p2")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	want := []Window{
		{Start: 45 * time.Second, Duration: 2 * time.Second, Dir: Both, Path: PathPrimary},
		{Start: 60 * time.Second, Duration: time.Second, Dir: Uplink, Path: PathSecondary},
		{Start: 75 * time.Second, Duration: time.Second, Dir: Downlink, Path: PathPrimary},
		{Start: 90 * time.Second, Duration: 80 * time.Millisecond, Dir: Both, Loss: true, Path: PathSecondary},
	}
	if len(ws) != len(want) {
		t.Fatalf("got %d windows, want %d", len(ws), len(want))
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Errorf("window %d: got %+v, want %+v", i, ws[i], want[i])
		}
	}
	for _, spec := range []string{
		"45s+2s@p3",    // no such path
		"45s+2s@",      // empty path suffix
		"45s+2s@p1@p2", // doubled path suffix
		"45s+2s/up/up", // doubled direction suffix
	} {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", spec)
		}
	}
}

// TestPathLineFiltering: NewPathLine keeps PathAll windows on every line and
// path-scoped windows only on their own path's line.
func TestPathLineFiltering(t *testing.T) {
	ws := []Window{
		{Start: 10 * time.Second, Duration: time.Second},                      // all paths
		{Start: 20 * time.Second, Duration: time.Second, Path: PathPrimary},   // p1 only
		{Start: 30 * time.Second, Duration: time.Second, Path: PathSecondary}, // p2 only
	}
	p1 := NewPathLine(ws, Uplink, PathPrimary)
	p2 := NewPathLine(ws, Uplink, PathSecondary)
	all := NewPathLine(ws, Uplink, PathAll)

	check := func(l *Line, at time.Duration, wantBlocked bool, name string) {
		t.Helper()
		if _, blocked := l.Blocked(at); blocked != wantBlocked {
			t.Errorf("%s.Blocked(%v) = %v, want %v", name, at, blocked, wantBlocked)
		}
	}
	check(p1, 10500*time.Millisecond, true, "p1") // unscoped window hits both
	check(p2, 10500*time.Millisecond, true, "p2")
	check(p1, 20500*time.Millisecond, true, "p1")
	check(p2, 20500*time.Millisecond, false, "p2")
	check(p1, 30500*time.Millisecond, false, "p1")
	check(p2, 30500*time.Millisecond, true, "p2")
	// A PathAll line (the single-operator legacy shape) sees everything.
	check(all, 20500*time.Millisecond, true, "all")
	check(all, 30500*time.Millisecond, true, "all")

	if NewPathLine([]Window{{Start: 1, Duration: 1, Path: PathSecondary}}, Uplink, PathPrimary) != nil {
		t.Error("NewPathLine with no applicable windows should return nil")
	}
}

func TestLineDirectionFiltering(t *testing.T) {
	ws := []Window{
		{Start: 10 * time.Second, Duration: time.Second, Dir: Both},
		{Start: 20 * time.Second, Duration: time.Second, Dir: Uplink},
		{Start: 30 * time.Second, Duration: time.Second, Dir: Downlink},
	}
	up := NewLine(ws, Uplink)
	down := NewLine(ws, Downlink)

	check := func(l *Line, at time.Duration, wantBlocked bool, name string) {
		t.Helper()
		if _, blocked := l.Blocked(at); blocked != wantBlocked {
			t.Errorf("%s.Blocked(%v) = %v, want %v", name, at, blocked, wantBlocked)
		}
	}
	check(up, 10500*time.Millisecond, true, "up")     // Both window
	check(down, 10500*time.Millisecond, true, "down") // Both window
	check(up, 20500*time.Millisecond, true, "up")
	check(down, 20500*time.Millisecond, false, "down")
	check(up, 30500*time.Millisecond, false, "up")
	check(down, 30500*time.Millisecond, true, "down")
	check(up, 5*time.Second, false, "up")
	check(up, 50*time.Second, false, "up")
}

func TestLineMergesOverlaps(t *testing.T) {
	ws := []Window{
		{Start: 10 * time.Second, Duration: 2 * time.Second},
		{Start: 11 * time.Second, Duration: 3 * time.Second}, // overlaps → [10,14)
		{Start: 20 * time.Second, Duration: time.Second},
	}
	l := NewLine(ws, Uplink)
	until, blocked := l.Blocked(11 * time.Second)
	if !blocked || until != 14*time.Second {
		t.Errorf("Blocked(11s) = (%v, %v), want (14s, true)", until, blocked)
	}
	if _, blocked := l.Blocked(14 * time.Second); blocked {
		t.Error("Blocked at merged window end, want clear (half-open interval)")
	}
	if until, blocked := l.Blocked(20 * time.Second); !blocked || until != 21*time.Second {
		t.Errorf("Blocked(20s) = (%v, %v), want (21s, true)", until, blocked)
	}
}

func TestLineNilAndEmpty(t *testing.T) {
	var l *Line
	if _, blocked := l.Blocked(time.Second); blocked {
		t.Error("nil line reports blocked")
	}
	if NewLine(nil, Uplink) != nil {
		t.Error("NewLine with no windows should return nil")
	}
	if NewLine([]Window{{Start: 1, Duration: 1, Dir: Downlink}}, Uplink) != nil {
		t.Error("NewLine with no applicable windows should return nil")
	}
}

func TestParseScheduleLossFades(t *testing.T) {
	ws, err := ParseSchedule("20s~60ms, 45s+2s ,70s~80ms/up")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	want := []Window{
		{Start: 20 * time.Second, Duration: 60 * time.Millisecond, Dir: Both, Loss: true},
		{Start: 45 * time.Second, Duration: 2 * time.Second, Dir: Both},
		{Start: 70 * time.Second, Duration: 80 * time.Millisecond, Dir: Uplink, Loss: true},
	}
	if len(ws) != len(want) {
		t.Fatalf("got %d windows, want %d", len(ws), len(want))
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Errorf("window %d: got %+v, want %+v", i, ws[i], want[i])
		}
	}
	if _, err := ParseSchedule("20s~0s"); err == nil {
		t.Error("zero-duration fade parsed, want error")
	}
}

func TestLineLossyIndependentOfBlocked(t *testing.T) {
	ws := []Window{
		{Start: 10 * time.Second, Duration: time.Second},                     // outage
		{Start: 20 * time.Second, Duration: time.Second, Loss: true},         // fade
		{Start: 20500 * time.Millisecond, Duration: time.Second, Loss: true}, // overlapping fade → [20, 21.5)
	}
	l := NewLine(ws, Uplink)
	if !l.Lossy(20500 * time.Millisecond) {
		t.Error("inside fade not lossy")
	}
	if !l.Lossy(21200 * time.Millisecond) {
		t.Error("merged fade tail not lossy")
	}
	if l.Lossy(21500 * time.Millisecond) {
		t.Error("lossy at fade end, want clear (half-open interval)")
	}
	if l.Lossy(10500 * time.Millisecond) {
		t.Error("outage window reported lossy")
	}
	if _, blocked := l.Blocked(20500 * time.Millisecond); blocked {
		t.Error("fade window reported blocked: fades must not interrupt service")
	}
	if _, blocked := l.Blocked(10500 * time.Millisecond); !blocked {
		t.Error("outage window not blocked")
	}
	var nilLine *Line
	if nilLine.Lossy(time.Second) {
		t.Error("nil line reports lossy")
	}
	if NewLine([]Window{{Start: 1, Duration: 1, Loss: true}}, Uplink) == nil {
		t.Error("NewLine with only fades should not be nil")
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero Config reports enabled")
	}
	if !(Config{RLF: true}).Enabled() {
		t.Error("RLF-only Config reports disabled")
	}
	if !(Config{Windows: []Window{{Duration: time.Second}}}).Enabled() {
		t.Error("windowed Config reports disabled")
	}
}

func TestEpisodeLength(t *testing.T) {
	ep := Episode{Start: 2 * time.Second, End: 5 * time.Second, Kind: KindRLF}
	if ep.Length() != 3*time.Second {
		t.Errorf("Length = %v, want 3s", ep.Length())
	}
	for k, want := range map[Kind]string{KindScripted: "scripted", KindRLF: "rlf", KindHandoverFailure: "ho-failure"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	for d, want := range map[Direction]string{Both: "both", Uplink: "up", Downlink: "down"} {
		if d.String() != want {
			t.Errorf("Direction(%d).String() = %q, want %q", d, d.String(), want)
		}
	}
}
