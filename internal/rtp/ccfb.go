package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// atoUnit is the resolution of the RFC 8888 arrival time offset (1/1024 s).
const atoUnit = time.Second / 1024

// atoMax is the saturating maximum of the 13-bit arrival time offset field.
const atoMax = 0x1FFF

// CCFBMetric is one per-packet metric block of an RFC 8888 report.
type CCFBMetric struct {
	Received bool
	ECN      uint8 // 2 bits
	// ArrivalOffset is how long before the report timestamp the packet
	// arrived. It saturates at ~8 s on the wire.
	ArrivalOffset time.Duration
}

// CCFBReport carries the metric blocks for one RTP stream, covering the
// consecutive sequence numbers [BeginSeq, BeginSeq+len(Metrics)-1].
type CCFBReport struct {
	SSRC     uint32
	BeginSeq uint16
	Metrics  []CCFBMetric
}

// CCFB is an RFC 8888 congestion control feedback packet.
type CCFB struct {
	SenderSSRC uint32
	Reports    []CCFBReport
	// Timestamp is the report generation time relative to the receiver's
	// epoch; it wraps every 65536 s on the wire.
	Timestamp time.Duration
}

// Marshal serializes the feedback packet.
func (f *CCFB) Marshal() ([]byte, error) {
	size := rtcpHeaderSize + 4 // header + sender ssrc
	for _, r := range f.Reports {
		if len(r.Metrics) == 0 {
			return nil, errors.New("rtp: ccfb report with no metric blocks")
		}
		if len(r.Metrics) > 16384 {
			return nil, fmt.Errorf("rtp: ccfb report with %d metric blocks exceeds maximum", len(r.Metrics))
		}
		n := len(r.Metrics)
		if n%2 == 1 {
			n++ // pad to 32-bit boundary
		}
		size += 8 + 2*n
	}
	size += 4 // report timestamp
	buf := make([]byte, size)
	hdr := rtcpHeader{Fmt: FmtCCFB, Type: TypeTransportFeedback, Length: wordLength(size)}
	if err := hdr.marshalTo(buf); err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(buf[4:], f.SenderSSRC)
	off := 8
	for _, r := range f.Reports {
		binary.BigEndian.PutUint32(buf[off:], r.SSRC)
		binary.BigEndian.PutUint16(buf[off+4:], r.BeginSeq)
		binary.BigEndian.PutUint16(buf[off+6:], uint16(len(r.Metrics)))
		off += 8
		for _, m := range r.Metrics {
			var w uint16
			if m.Received {
				w |= 1 << 15
				w |= uint16(m.ECN&0x3) << 13
				ato := m.ArrivalOffset / atoUnit
				if ato < 0 {
					ato = 0
				}
				if ato > atoMax {
					ato = atoMax
				}
				w |= uint16(ato)
			}
			binary.BigEndian.PutUint16(buf[off:], w)
			off += 2
		}
		if len(r.Metrics)%2 == 1 {
			off += 2 // zero padding block
		}
	}
	binary.BigEndian.PutUint32(buf[off:], ntp32(f.Timestamp))
	return buf, nil
}

// Unmarshal parses an RFC 8888 feedback packet.
func (f *CCFB) Unmarshal(buf []byte) error {
	var hdr rtcpHeader
	if err := hdr.unmarshal(buf); err != nil {
		return err
	}
	if hdr.Type != TypeTransportFeedback || hdr.Fmt != FmtCCFB {
		return fmt.Errorf("rtp: not a ccfb packet (pt=%d fmt=%d)", hdr.Type, hdr.Fmt)
	}
	want := (int(hdr.Length) + 1) * 4
	if len(buf) < want || want < rtcpHeaderSize+8 {
		return ErrShortPacket
	}
	buf = buf[:want]
	f.SenderSSRC = binary.BigEndian.Uint32(buf[4:])
	f.Timestamp = fromNTP32(binary.BigEndian.Uint32(buf[len(buf)-4:]))
	body := buf[8 : len(buf)-4]
	f.Reports = f.Reports[:0]
	off := 0
	for off < len(body) {
		if off+8 > len(body) {
			return ErrShortPacket
		}
		r := CCFBReport{
			SSRC:     binary.BigEndian.Uint32(body[off:]),
			BeginSeq: binary.BigEndian.Uint16(body[off+4:]),
		}
		n := int(binary.BigEndian.Uint16(body[off+6:]))
		off += 8
		padded := n
		if padded%2 == 1 {
			padded++
		}
		if off+2*padded > len(body) {
			return ErrShortPacket
		}
		for i := 0; i < n; i++ {
			w := binary.BigEndian.Uint16(body[off+2*i:])
			m := CCFBMetric{}
			if w>>15 == 1 {
				m.Received = true
				m.ECN = uint8(w >> 13 & 0x3)
				m.ArrivalOffset = time.Duration(w&atoMax) * atoUnit
			}
			r.Metrics = append(r.Metrics, m)
		}
		off += 2 * padded
		f.Reports = append(f.Reports, r)
	}
	return nil
}

// CCFBGenerator runs at the receiver and reproduces the feedback generation
// of the Ericsson SCReAM library the paper used: every reporting interval it
// emits one report covering the packet with the highest received sequence
// number and the Window-1 preceding sequence numbers. With the library's
// default Window of 64, more than 64 RTP packets can arrive between two
// 10 ms reports at rates above ≈7 Mbps, leaving packets unacknowledged and
// making the sender infer spurious losses — the defect analysed in §4.2.1 of
// the paper. Setting Window to 256 reproduces the paper's mitigation.
type CCFBGenerator struct {
	SenderSSRC uint32
	MediaSSRC  uint32
	// Window is the number of sequence numbers covered per report,
	// counting back from the highest received one. The Ericsson library
	// default is 64.
	Window int

	started  bool
	highest  uint16
	arrivals map[uint16]time.Duration
}

// DefaultCCFBWindow is the ack window of the SCReAM library the paper used.
const DefaultCCFBWindow = 64

// NewCCFBGenerator returns a generator with the given ack window (0 means
// DefaultCCFBWindow).
func NewCCFBGenerator(senderSSRC, mediaSSRC uint32, window int) *CCFBGenerator {
	if window <= 0 {
		window = DefaultCCFBWindow
	}
	return &CCFBGenerator{
		SenderSSRC: senderSSRC,
		MediaSSRC:  mediaSSRC,
		Window:     window,
		arrivals:   make(map[uint16]time.Duration),
	}
}

// Record notes the arrival of RTP sequence number seq at time at.
func (g *CCFBGenerator) Record(seq uint16, at time.Duration) {
	if !g.started {
		g.started = true
		g.highest = seq
	} else if seqLess(g.highest, seq) {
		g.highest = seq
	}
	if _, dup := g.arrivals[seq]; !dup {
		g.arrivals[seq] = at
	}
	// Trim arrivals that can never be reported again to bound memory.
	if len(g.arrivals) > 4*g.Window {
		floor := g.highest - uint16(2*g.Window)
		for s := range g.arrivals {
			if seqLess(s, floor) {
				delete(g.arrivals, s)
			}
		}
	}
}

// Report builds the feedback packet for the current reporting instant, or
// returns nil when no packet has been received yet.
func (g *CCFBGenerator) Report(now time.Duration) *CCFB {
	if !g.started {
		return nil
	}
	begin := g.highest - uint16(g.Window-1)
	rep := CCFBReport{SSRC: g.MediaSSRC, BeginSeq: begin}
	for i := 0; i < g.Window; i++ {
		seq := begin + uint16(i)
		m := CCFBMetric{}
		if at, ok := g.arrivals[seq]; ok {
			m.Received = true
			if off := now - at; off > 0 {
				m.ArrivalOffset = off
			}
		}
		rep.Metrics = append(rep.Metrics, m)
	}
	return &CCFB{
		SenderSSRC: g.SenderSSRC,
		Reports:    []CCFBReport{rep},
		Timestamp:  now,
	}
}
