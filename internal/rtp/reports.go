package rtp

import (
	"encoding/binary"
	"fmt"
	"time"
)

// RTCP packet types for sender/receiver reports (RFC 3550 §6.4).
const (
	TypeSenderReport   = 200
	TypeReceiverReport = 201
)

// SenderReport is an RFC 3550 sender report (sender info only; report
// blocks ride in ReceiverReports in this pipeline).
type SenderReport struct {
	SSRC uint32
	// NTPTime is the sender's wall clock at report generation, relative to
	// the stream epoch (full 64-bit NTP resolution on the wire).
	NTPTime time.Duration
	// RTPTime is the media clock corresponding to NTPTime.
	RTPTime uint32
	// PacketCount and OctetCount are the cumulative sender counters.
	PacketCount uint32
	OctetCount  uint32
}

const senderReportSize = rtcpHeaderSize + 24

// Marshal serializes the report.
func (sr *SenderReport) Marshal() ([]byte, error) {
	buf := make([]byte, senderReportSize)
	hdr := rtcpHeader{Fmt: 0, Type: TypeSenderReport, Length: wordLength(senderReportSize)}
	if err := hdr.marshalTo(buf); err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(buf[4:], sr.SSRC)
	secs := uint64(sr.NTPTime / time.Second)
	frac := uint64(sr.NTPTime%time.Second) << 32 / uint64(time.Second)
	binary.BigEndian.PutUint32(buf[8:], uint32(secs))
	binary.BigEndian.PutUint32(buf[12:], uint32(frac))
	binary.BigEndian.PutUint32(buf[16:], sr.RTPTime)
	binary.BigEndian.PutUint32(buf[20:], sr.PacketCount)
	binary.BigEndian.PutUint32(buf[24:], sr.OctetCount)
	return buf, nil
}

// Unmarshal parses a sender report.
func (sr *SenderReport) Unmarshal(buf []byte) error {
	var hdr rtcpHeader
	if err := hdr.unmarshal(buf); err != nil {
		return err
	}
	if hdr.Type != TypeSenderReport {
		return fmt.Errorf("rtp: not a sender report (pt=%d)", hdr.Type)
	}
	if len(buf) < senderReportSize {
		return ErrShortPacket
	}
	sr.SSRC = binary.BigEndian.Uint32(buf[4:])
	secs := time.Duration(binary.BigEndian.Uint32(buf[8:])) * time.Second
	frac := time.Duration(uint64(binary.BigEndian.Uint32(buf[12:])) * uint64(time.Second) >> 32)
	sr.NTPTime = secs + frac
	sr.RTPTime = binary.BigEndian.Uint32(buf[16:])
	sr.PacketCount = binary.BigEndian.Uint32(buf[20:])
	sr.OctetCount = binary.BigEndian.Uint32(buf[24:])
	return nil
}

// ReportBlock is one RFC 3550 reception report block.
type ReportBlock struct {
	SSRC uint32
	// FractionLost is the loss fraction since the previous report, in
	// 1/256 units.
	FractionLost uint8
	// CumulativeLost is the total packets lost (24-bit on the wire).
	CumulativeLost uint32
	// HighestSeq is the extended highest sequence number received.
	HighestSeq uint32
	// Jitter is the RFC 3550 §A.8 interarrival jitter estimate in RTP
	// timestamp units.
	Jitter uint32
	// LastSR and DelaySinceLastSR support sender-side RTT computation
	// (middle-32 NTP format and 1/65536 s units respectively).
	LastSR           uint32
	DelaySinceLastSR uint32
}

// ReceiverReport is an RFC 3550 receiver report with one block per source.
type ReceiverReport struct {
	SSRC   uint32
	Blocks []ReportBlock
}

// Marshal serializes the report.
func (rr *ReceiverReport) Marshal() ([]byte, error) {
	if len(rr.Blocks) > 31 {
		return nil, fmt.Errorf("rtp: %d report blocks exceeds the 5-bit count", len(rr.Blocks))
	}
	size := rtcpHeaderSize + 4 + 24*len(rr.Blocks)
	buf := make([]byte, size)
	hdr := rtcpHeader{Fmt: uint8(len(rr.Blocks)), Type: TypeReceiverReport, Length: wordLength(size)}
	if err := hdr.marshalTo(buf); err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(buf[4:], rr.SSRC)
	off := 8
	for _, b := range rr.Blocks {
		binary.BigEndian.PutUint32(buf[off:], b.SSRC)
		buf[off+4] = b.FractionLost
		buf[off+5] = byte(b.CumulativeLost >> 16)
		buf[off+6] = byte(b.CumulativeLost >> 8)
		buf[off+7] = byte(b.CumulativeLost)
		binary.BigEndian.PutUint32(buf[off+8:], b.HighestSeq)
		binary.BigEndian.PutUint32(buf[off+12:], b.Jitter)
		binary.BigEndian.PutUint32(buf[off+16:], b.LastSR)
		binary.BigEndian.PutUint32(buf[off+20:], b.DelaySinceLastSR)
		off += 24
	}
	return buf, nil
}

// Unmarshal parses a receiver report.
func (rr *ReceiverReport) Unmarshal(buf []byte) error {
	var hdr rtcpHeader
	if err := hdr.unmarshal(buf); err != nil {
		return err
	}
	if hdr.Type != TypeReceiverReport {
		return fmt.Errorf("rtp: not a receiver report (pt=%d)", hdr.Type)
	}
	count := int(hdr.Fmt)
	want := rtcpHeaderSize + 4 + 24*count
	if len(buf) < want {
		return ErrShortPacket
	}
	rr.SSRC = binary.BigEndian.Uint32(buf[4:])
	rr.Blocks = rr.Blocks[:0]
	off := 8
	for i := 0; i < count; i++ {
		b := ReportBlock{
			SSRC:             binary.BigEndian.Uint32(buf[off:]),
			FractionLost:     buf[off+4],
			CumulativeLost:   uint32(buf[off+5])<<16 | uint32(buf[off+6])<<8 | uint32(buf[off+7]),
			HighestSeq:       binary.BigEndian.Uint32(buf[off+8:]),
			Jitter:           binary.BigEndian.Uint32(buf[off+12:]),
			LastSR:           binary.BigEndian.Uint32(buf[off+16:]),
			DelaySinceLastSR: binary.BigEndian.Uint32(buf[off+20:]),
		}
		rr.Blocks = append(rr.Blocks, b)
		off += 24
	}
	return nil
}

// ReceptionStats maintains the receiver-side statistics behind receiver
// reports: extended highest sequence, cumulative/interval loss and the
// RFC 3550 §A.8 interarrival jitter estimator.
type ReceptionStats struct {
	SSRC      uint32
	ClockRate int

	started     bool
	baseSeq     uint16
	cycles      uint32
	maxSeq      uint16
	received    uint64
	expectedPre uint64 // at the previous report
	receivedPre uint64

	jitter   float64 // RTP timestamp units
	lastRTP  uint32
	lastRecv time.Duration
	hasPrev  bool
}

// NewReceptionStats returns statistics for one media source.
func NewReceptionStats(ssrc uint32, clockRate int) *ReceptionStats {
	if clockRate <= 0 {
		clockRate = VideoClockRate
	}
	return &ReceptionStats{SSRC: ssrc, ClockRate: clockRate}
}

// Record ingests one media packet.
func (rs *ReceptionStats) Record(seq uint16, rtpTime uint32, at time.Duration) {
	if !rs.started {
		rs.started = true
		rs.baseSeq = seq
		rs.maxSeq = seq
	} else if seqLess(rs.maxSeq, seq) {
		if seq < rs.maxSeq { // wrapped
			rs.cycles += 1 << 16
		}
		rs.maxSeq = seq
	}
	rs.received++

	// Interarrival jitter (RFC 3550 §A.8): J += (|D| − J) / 16, where D is
	// the difference of relative transit times in timestamp units.
	if rs.hasPrev {
		arrivalTicks := float64(at) / float64(time.Second) * float64(rs.ClockRate)
		prevTicks := float64(rs.lastRecv) / float64(time.Second) * float64(rs.ClockRate)
		d := (arrivalTicks - prevTicks) - (float64(rtpTime) - float64(rs.lastRTP))
		if d < 0 {
			d = -d
		}
		rs.jitter += (d - rs.jitter) / 16
	}
	rs.hasPrev = true
	rs.lastRTP = rtpTime
	rs.lastRecv = at
}

// ExtendedHighest returns the extended highest sequence number received.
func (rs *ReceptionStats) ExtendedHighest() uint32 {
	return rs.cycles | uint32(rs.maxSeq)
}

// expected returns the number of packets expected so far.
func (rs *ReceptionStats) expected() uint64 {
	if !rs.started {
		return 0
	}
	return uint64(rs.ExtendedHighest()) - uint64(rs.baseSeq) + 1
}

// Jitter returns the current interarrival jitter as a duration.
func (rs *ReceptionStats) Jitter() time.Duration {
	return time.Duration(rs.jitter / float64(rs.ClockRate) * float64(time.Second))
}

// Block produces the reception report block for the next receiver report
// and rolls the interval counters.
func (rs *ReceptionStats) Block() ReportBlock {
	expected := rs.expected()
	lost := int64(expected) - int64(rs.received)
	if lost < 0 {
		lost = 0
	}
	expInt := expected - rs.expectedPre
	recvInt := rs.received - rs.receivedPre
	var fraction uint8
	if expInt > 0 && expInt > recvInt {
		fraction = uint8((expInt - recvInt) * 256 / expInt)
	}
	rs.expectedPre = expected
	rs.receivedPre = rs.received
	return ReportBlock{
		SSRC:           rs.SSRC,
		FractionLost:   fraction,
		CumulativeLost: uint32(lost) & 0xFFFFFF,
		HighestSeq:     rs.ExtendedHighest(),
		Jitter:         uint32(rs.jitter),
	}
}
