package rtp

import (
	"encoding/binary"
	"fmt"
	"time"
)

// RTCP packet types used by this pipeline.
const (
	// TypeTransportFeedback is the RTPFB packet type (205).
	TypeTransportFeedback = 205
	// FmtTWCC is the transport-wide congestion control feedback message
	// type (draft-holmer-rmcat-transport-wide-cc-extensions-01).
	FmtTWCC = 15
	// FmtCCFB is the RFC 8888 congestion control feedback message type.
	FmtCCFB = 11
)

// rtcpHeader is the common RTCP packet header (RFC 3550 §6.4.1 layout with
// the feedback-message-type in the count field, per RFC 4585).
type rtcpHeader struct {
	Fmt    uint8 // feedback message type (5 bits)
	Type   uint8 // packet type
	Length uint16
}

const rtcpHeaderSize = 4

func (h rtcpHeader) marshalTo(buf []byte) error {
	if len(buf) < rtcpHeaderSize {
		return ErrShortPacket
	}
	if h.Fmt > 31 {
		return fmt.Errorf("rtp: rtcp fmt %d exceeds 5 bits", h.Fmt)
	}
	buf[0] = Version<<6 | h.Fmt
	buf[1] = h.Type
	binary.BigEndian.PutUint16(buf[2:], h.Length)
	return nil
}

func (h *rtcpHeader) unmarshal(buf []byte) error {
	if len(buf) < rtcpHeaderSize {
		return ErrShortPacket
	}
	if buf[0]>>6 != Version {
		return ErrBadVersion
	}
	h.Fmt = buf[0] & 0x1F
	h.Type = buf[1]
	h.Length = binary.BigEndian.Uint16(buf[2:])
	return nil
}

// wordLength converts a byte length (which must be a multiple of 4 and
// include the header) into the RTCP length field value.
func wordLength(bytes int) uint16 {
	return uint16(bytes/4 - 1)
}

// ntp32 encodes a duration since the stream epoch into the middle 32 bits of
// an NTP timestamp (16-bit seconds, 16-bit fraction), as RFC 8888 requires
// for the report timestamp. It wraps every 65536 s.
func ntp32(t time.Duration) uint32 {
	secs := uint64(t / time.Second)
	frac := uint64(t%time.Second) * 65536 / uint64(time.Second)
	return uint32(secs<<16 | frac)
}

// fromNTP32 decodes an ntp32 value back into a duration (modulo 65536 s).
func fromNTP32(v uint32) time.Duration {
	secs := time.Duration(v>>16) * time.Second
	frac := time.Duration(v&0xFFFF) * time.Second / 65536
	return secs + frac
}
