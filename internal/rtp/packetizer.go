package rtp

import (
	"encoding/binary"
	"errors"
	"time"
)

// VideoClockRate is the RTP clock rate for video (RFC 3551).
const VideoClockRate = 90000

// payloadMetaSize is the size of the per-packet payload header that carries
// the frame identification the paper embeds visually in each frame (the QR
// frame number and the barcode encode timestamp).
const payloadMetaSize = 20

// frame payload header flags.
const flagKeyframe = 1 << 0

// FrameInfo describes one encoded video frame handed to the packetizer.
type FrameInfo struct {
	// Num is the monotonically increasing frame number (the paper's QR
	// code).
	Num uint32
	// EncodeTime is when encoding of the frame started (the paper's
	// barcode), relative to the sender's epoch.
	EncodeTime time.Duration
	// Keyframe marks an intra-coded (I) frame.
	Keyframe bool
	// Size is the encoded frame size in bytes.
	Size int
	// RTPTime is the frame's RTP media timestamp (90 kHz).
	RTPTime uint32
}

// Packetizer splits encoded frames into RTP packets no larger than MTU,
// attaching the transport-wide sequence number extension to each.
type Packetizer struct {
	SSRC        uint32
	PayloadType uint8
	MTU         int

	seq  uint16
	tseq uint16
}

// NewPacketizer returns a packetizer. The initial sequence numbers start at
// zero for reproducibility.
func NewPacketizer(ssrc uint32, payloadType uint8, mtu int) *Packetizer {
	if mtu < HeaderSize+16+payloadMetaSize {
		panic("rtp: MTU too small for packetization")
	}
	return &Packetizer{SSRC: ssrc, PayloadType: payloadType, MTU: mtu}
}

// NextTransportSeq returns the transport-wide sequence number the next
// produced packet will carry.
func (p *Packetizer) NextTransportSeq() uint16 { return p.tseq }

// Packetize converts one encoded frame into RTP packets. The marker bit is
// set on the final packet of the frame.
func (p *Packetizer) Packetize(f FrameInfo) []*Packet {
	// Account for the worst-case header: fixed header plus the one-byte
	// extension block carrying the 2-byte transport sequence (4 header + 3
	// element + 1 pad = 8).
	maxPayload := p.MTU - (HeaderSize + 8)
	size := f.Size
	if size < payloadMetaSize {
		size = payloadMetaSize
	}
	total := (size + maxPayload - 1) / maxPayload
	if total > 0xFFFF {
		total = 0xFFFF
	}
	// Arena allocation: one backing array each for the packets, the
	// pointer slice, the extension descriptors and the payload/extension
	// bytes, instead of ~5 small allocations per packet. The packets stay
	// independently usable — slices only share backing storage, and the
	// per-packet Extensions slice is capacity-clamped so appending an
	// extension later copies out instead of clobbering a neighbor.
	pkts := make([]*Packet, total)
	backing := make([]Packet, total)
	exts := make([]Extension, total)
	const perPkt = payloadMetaSize + 2 // frame meta + transport-seq payload
	buf := make([]byte, total*perPkt)
	remaining := size
	for i := 0; i < total; i++ {
		chunk := remaining / (total - i) // even split, deterministic
		if i == total-1 {
			chunk = remaining
		}
		remaining -= chunk
		if chunk < payloadMetaSize {
			chunk = payloadMetaSize
		}
		meta := buf[i*perPkt : i*perPkt+payloadMetaSize : i*perPkt+payloadMetaSize]
		binary.BigEndian.PutUint32(meta[0:], f.Num)
		binary.BigEndian.PutUint16(meta[4:], uint16(i))
		binary.BigEndian.PutUint16(meta[6:], uint16(total))
		if f.Keyframe {
			meta[8] = flagKeyframe
		}
		binary.BigEndian.PutUint64(meta[12:], uint64(f.EncodeTime))
		tseqPayload := buf[i*perPkt+payloadMetaSize : (i+1)*perPkt : (i+1)*perPkt]
		binary.BigEndian.PutUint16(tseqPayload, p.tseq)
		exts[i] = Extension{ID: ExtensionIDTransportSeq, Payload: tseqPayload}
		pkt := &backing[i]
		*pkt = Packet{
			Header: Header{
				Marker:         i == total-1,
				PayloadType:    p.PayloadType,
				SequenceNumber: p.seq,
				Timestamp:      f.RTPTime,
				SSRC:           p.SSRC,
				Extensions:     exts[i : i+1 : i+1],
			},
			Payload:           meta,
			VirtualPayloadLen: chunk - payloadMetaSize,
		}
		p.seq++
		p.tseq++
		pkts[i] = pkt
	}
	return pkts
}

// PacketMeta is the decoded payload header of a media packet.
type PacketMeta struct {
	FrameNum   uint32
	Index      uint16
	Total      uint16
	Keyframe   bool
	EncodeTime time.Duration
}

// ErrNotMedia reports a payload too short to carry the frame meta header.
var ErrNotMedia = errors.New("rtp: payload too short for frame meta header")

// ParsePacketMeta decodes the payload header from a media packet payload.
func ParsePacketMeta(payload []byte) (PacketMeta, error) {
	if len(payload) < payloadMetaSize {
		return PacketMeta{}, ErrNotMedia
	}
	return PacketMeta{
		FrameNum:   binary.BigEndian.Uint32(payload[0:]),
		Index:      binary.BigEndian.Uint16(payload[4:]),
		Total:      binary.BigEndian.Uint16(payload[6:]),
		Keyframe:   payload[8]&flagKeyframe != 0,
		EncodeTime: time.Duration(binary.BigEndian.Uint64(payload[12:])),
	}, nil
}

// FrameState is the reassembly state of one frame at the receiver.
type FrameState struct {
	Num        uint32
	EncodeTime time.Duration
	Keyframe   bool
	Total      int // packets in the frame
	Received   int // packets received so far
	Bytes      int // wire bytes received so far
	// FirstArrival and LastArrival bracket the packet arrivals seen so far.
	FirstArrival time.Duration
	LastArrival  time.Duration
	// Repaired marks a frame at least one of whose packets arrived via
	// retransmission (set by the player when it ingests an RTX repair).
	Repaired bool

	// got tracks which packet indices have arrived (a bitset sized from
	// Total, grown only for malformed indices), so retransmissions
	// answering a spurious NACK cannot double-count toward Complete.
	got []uint64
}

// seen reports whether index i has arrived.
func (f *FrameState) seen(i uint16) bool {
	w := int(i) / 64
	return w < len(f.got) && f.got[w]&(1<<(uint(i)%64)) != 0
}

// mark records the arrival of index i, growing the bitset if a malformed
// packet carries an index beyond the frame's advertised Total.
func (f *FrameState) mark(i uint16) {
	w := int(i) / 64
	for w >= len(f.got) {
		f.got = append(f.got, 0)
	}
	f.got[w] |= 1 << (uint(i) % 64)
}

// Complete reports whether every packet of the frame has arrived.
func (f *FrameState) Complete() bool { return f.Total > 0 && f.Received >= f.Total }

// LossFraction returns the fraction of the frame's packets still missing.
func (f *FrameState) LossFraction() float64 {
	if f.Total == 0 {
		return 1
	}
	miss := f.Total - f.Received
	if miss < 0 {
		miss = 0
	}
	return float64(miss) / float64(f.Total)
}

// Depacketizer reassembles frames from incoming media packets. It performs
// no timing decisions; the jitter buffer above it decides when to release or
// abandon frames.
type Depacketizer struct {
	frames map[uint32]*FrameState
}

// NewDepacketizer returns an empty reassembler.
func NewDepacketizer() *Depacketizer {
	return &Depacketizer{frames: make(map[uint32]*FrameState)}
}

// ErrDuplicate reports a packet whose (frame, index) slot has already been
// filled — a retransmission answering a spurious NACK, or a repair racing
// the late original. Duplicates are counted nowhere.
var ErrDuplicate = errors.New("rtp: duplicate packet within frame")

// Push records an arrived media packet and returns the (possibly updated)
// state of its frame. A packet whose (frame, index) slot is already filled
// returns ErrDuplicate and changes nothing.
func (d *Depacketizer) Push(pkt *Packet, at time.Duration) (*FrameState, error) {
	meta, err := ParsePacketMeta(pkt.Payload)
	if err != nil {
		return nil, err
	}
	fs, ok := d.frames[meta.FrameNum]
	if !ok {
		fs = &FrameState{
			Num:          meta.FrameNum,
			EncodeTime:   meta.EncodeTime,
			Keyframe:     meta.Keyframe,
			Total:        int(meta.Total),
			FirstArrival: at,
			got:          make([]uint64, (int(meta.Total)+63)/64),
		}
		d.frames[meta.FrameNum] = fs
	}
	if fs.seen(meta.Index) {
		return fs, ErrDuplicate
	}
	fs.mark(meta.Index)
	fs.Received++
	fs.Bytes += pkt.MarshalSize()
	if at > fs.LastArrival {
		fs.LastArrival = at
	}
	return fs, nil
}

// Frame returns the reassembly state for a frame number, or nil.
func (d *Depacketizer) Frame(num uint32) *FrameState { return d.frames[num] }

// Delete discards the reassembly state of a frame (played or abandoned).
func (d *Depacketizer) Delete(num uint32) { delete(d.frames, num) }

// Pending returns the number of frames with reassembly state.
func (d *Depacketizer) Pending() int { return len(d.frames) }
