package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// deltaUnit is the resolution of TWCC receive deltas (250 µs).
const deltaUnit = 250 * time.Microsecond

// refTimeUnit is the resolution of the 24-bit TWCC reference time (64 ms).
const refTimeUnit = 64 * time.Millisecond

// Arrival describes the receive status of one transport-wide sequence
// number, used both to build and to interpret TWCC feedback.
type Arrival struct {
	Received bool
	// At is the arrival time relative to the receiver's epoch. It is
	// meaningful only when Received is true. Round-trips through the wire
	// format quantize it to 250 µs.
	At time.Duration
}

// TWCC is a transport-wide congestion control feedback packet
// (draft-holmer-rmcat-transport-wide-cc-extensions-01). Packets describes
// consecutive transport sequence numbers starting at BaseSeq.
type TWCC struct {
	SenderSSRC uint32
	MediaSSRC  uint32
	BaseSeq    uint16
	FbPktCount uint8
	Packets    []Arrival
}

// Packet status symbols.
const (
	symNotReceived = 0
	symSmallDelta  = 1
	symLargeDelta  = 2
)

var errDeltaOverflow = errors.New("rtp: twcc receive delta exceeds 16-bit range; send feedback more often")

// symbols computes the per-packet status symbols and receive deltas (in
// 250 µs ticks) for the feedback, together with the reference time.
func (f *TWCC) symbols() (refTime time.Duration, syms []uint8, deltas []int32, err error) {
	syms = make([]uint8, len(f.Packets))
	prev := time.Duration(-1)
	for i, p := range f.Packets {
		if !p.Received {
			syms[i] = symNotReceived
			continue
		}
		if prev < 0 {
			// Reference time: first received arrival rounded down to 64 ms.
			refTime = p.At / refTimeUnit * refTimeUnit
			prev = refTime
		}
		delta := (p.At - prev) / deltaUnit
		prev += delta * deltaUnit
		if delta >= 0 && delta <= 255 {
			syms[i] = symSmallDelta
		} else if delta >= -32768 && delta <= 32767 {
			syms[i] = symLargeDelta
		} else {
			return 0, nil, nil, errDeltaOverflow
		}
		deltas = append(deltas, int32(delta))
	}
	return refTime, syms, deltas, nil
}

// encodeChunks packs status symbols into 16-bit packet status chunks using
// run-length chunks for uniform runs and two-bit status-vector chunks
// otherwise.
func encodeChunks(syms []uint8) []uint16 {
	var chunks []uint16
	for i := 0; i < len(syms); {
		run := 1
		for i+run < len(syms) && syms[i+run] == syms[i] && run < 8191 {
			run++
		}
		if run >= 7 || i+run == len(syms) {
			// Run-length chunk: 0 | S(2) | run(13).
			chunks = append(chunks, uint16(syms[i])<<13|uint16(run))
			i += run
			continue
		}
		// Two-bit status vector chunk: 1 | 1 | 7 × S(2). Trailing positions
		// beyond the symbol list encode as not-received; the decoder stops
		// at the packet status count.
		var c uint16 = 1<<15 | 1<<14
		for j := 0; j < 7; j++ {
			var s uint16
			if i+j < len(syms) {
				s = uint16(syms[i+j])
			}
			c |= s << (12 - 2*j)
		}
		chunks = append(chunks, c)
		i += 7
	}
	return chunks
}

// Marshal serializes the feedback packet.
func (f *TWCC) Marshal() ([]byte, error) {
	if len(f.Packets) == 0 {
		return nil, errors.New("rtp: twcc feedback with no packets")
	}
	if len(f.Packets) > 0xFFFF {
		return nil, fmt.Errorf("rtp: twcc feedback covers %d packets, max 65535", len(f.Packets))
	}
	refTime, syms, deltas, err := f.symbols()
	if err != nil {
		return nil, err
	}
	chunks := encodeChunks(syms)

	deltaBytes := 0
	di := 0
	for _, s := range syms {
		switch s {
		case symSmallDelta:
			deltaBytes++
			di++
		case symLargeDelta:
			deltaBytes += 2
			di++
		}
	}
	size := rtcpHeaderSize + 8 + 8 + 2*len(chunks) + deltaBytes
	pad := 0
	if rem := size % 4; rem != 0 {
		pad = 4 - rem
		size += pad
	}
	buf := make([]byte, size)
	hdr := rtcpHeader{Fmt: FmtTWCC, Type: TypeTransportFeedback, Length: wordLength(size)}
	if err := hdr.marshalTo(buf); err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(buf[4:], f.SenderSSRC)
	binary.BigEndian.PutUint32(buf[8:], f.MediaSSRC)
	binary.BigEndian.PutUint16(buf[12:], f.BaseSeq)
	binary.BigEndian.PutUint16(buf[14:], uint16(len(f.Packets)))
	ref24 := uint32(refTime/refTimeUnit) & 0xFFFFFF
	buf[16] = byte(ref24 >> 16)
	buf[17] = byte(ref24 >> 8)
	buf[18] = byte(ref24)
	buf[19] = f.FbPktCount
	off := 20
	for _, c := range chunks {
		binary.BigEndian.PutUint16(buf[off:], c)
		off += 2
	}
	di = 0
	for _, s := range syms {
		switch s {
		case symSmallDelta:
			buf[off] = byte(deltas[di])
			off++
			di++
		case symLargeDelta:
			binary.BigEndian.PutUint16(buf[off:], uint16(int16(deltas[di])))
			off += 2
			di++
		}
	}
	return buf, nil
}

// Unmarshal parses a TWCC feedback packet, reconstructing per-packet arrival
// times relative to the receiver epoch (quantized to 250 µs).
func (f *TWCC) Unmarshal(buf []byte) error {
	var hdr rtcpHeader
	if err := hdr.unmarshal(buf); err != nil {
		return err
	}
	if hdr.Type != TypeTransportFeedback || hdr.Fmt != FmtTWCC {
		return fmt.Errorf("rtp: not a twcc packet (pt=%d fmt=%d)", hdr.Type, hdr.Fmt)
	}
	want := (int(hdr.Length) + 1) * 4
	if len(buf) < want {
		return ErrShortPacket
	}
	buf = buf[:want]
	if len(buf) < 20 {
		return ErrShortPacket
	}
	f.SenderSSRC = binary.BigEndian.Uint32(buf[4:])
	f.MediaSSRC = binary.BigEndian.Uint32(buf[8:])
	f.BaseSeq = binary.BigEndian.Uint16(buf[12:])
	count := int(binary.BigEndian.Uint16(buf[14:]))
	ref24 := uint32(buf[16])<<16 | uint32(buf[17])<<8 | uint32(buf[18])
	refTime := time.Duration(ref24) * refTimeUnit
	f.FbPktCount = buf[19]

	// Decode status chunks.
	syms := make([]uint8, 0, count)
	off := 20
	for len(syms) < count {
		if off+2 > len(buf) {
			return ErrShortPacket
		}
		c := binary.BigEndian.Uint16(buf[off:])
		off += 2
		if c>>15 == 0 { // run length
			sym := uint8(c >> 13 & 0x3)
			run := int(c & 0x1FFF)
			for i := 0; i < run && len(syms) < count; i++ {
				syms = append(syms, sym)
			}
		} else if c>>14&1 == 0 { // one-bit vector: 14 symbols
			for i := 0; i < 14 && len(syms) < count; i++ {
				syms = append(syms, uint8(c>>(13-i)&1))
			}
		} else { // two-bit vector: 7 symbols
			for i := 0; i < 7 && len(syms) < count; i++ {
				syms = append(syms, uint8(c>>(12-2*i)&0x3))
			}
		}
	}

	// Decode deltas and reconstruct arrival times.
	if cap(f.Packets) < count {
		f.Packets = make([]Arrival, 0, count)
	} else {
		f.Packets = f.Packets[:0]
	}
	at := refTime
	for _, s := range syms {
		switch s {
		case symNotReceived:
			f.Packets = append(f.Packets, Arrival{})
		case symSmallDelta:
			if off+1 > len(buf) {
				return ErrShortPacket
			}
			at += time.Duration(buf[off]) * deltaUnit
			off++
			f.Packets = append(f.Packets, Arrival{Received: true, At: at})
		case symLargeDelta:
			if off+2 > len(buf) {
				return ErrShortPacket
			}
			at += time.Duration(int16(binary.BigEndian.Uint16(buf[off:]))) * deltaUnit
			off += 2
			f.Packets = append(f.Packets, Arrival{Received: true, At: at})
		default:
			return fmt.Errorf("rtp: reserved twcc status symbol %d", s)
		}
	}
	return nil
}

// TWCCRecorder runs at the receiver: it records the arrival (and observes
// the loss) of transport-wide sequence numbers and periodically flushes them
// into feedback packets covering the contiguous range since the last flush.
type TWCCRecorder struct {
	SenderSSRC uint32
	MediaSSRC  uint32

	started bool
	nextSeq uint16 // first sequence number of the next feedback range
	lastSeq uint16 // highest sequence number seen (unwrapped ordering)
	fbCount uint8

	// arrivals is a direct-indexed table over the full 16-bit sequence
	// space with an occupancy bitset, replacing a map on the per-packet
	// path. Slots are cleared as ranges flush, so a sequence number reused
	// after wrap always lands on an empty slot. pending counts set bits.
	arrivals [1 << 16]time.Duration
	have     [1 << 16 / 64]uint64
	pending  int
}

// NewTWCCRecorder returns a recorder producing feedback with the given SSRCs.
func NewTWCCRecorder(senderSSRC, mediaSSRC uint32) *TWCCRecorder {
	return &TWCCRecorder{
		SenderSSRC: senderSSRC,
		MediaSSRC:  mediaSSRC,
	}
}

// seqLess reports whether a precedes b in RFC 1982 serial-number order.
func seqLess(a, b uint16) bool {
	return a != b && b-a < 0x8000
}

// Record notes the arrival of transport sequence number seq at time at.
func (r *TWCCRecorder) Record(seq uint16, at time.Duration) {
	if !r.started {
		r.started = true
		r.nextSeq = seq
		r.lastSeq = seq
	} else if seqLess(seq, r.nextSeq) {
		// Arrived after its range was already flushed; it was reported as
		// lost and is not re-reported.
		return
	} else if seqLess(r.lastSeq, seq) {
		r.lastSeq = seq
	}
	if w, b := seq/64, uint64(1)<<(seq%64); r.have[w]&b == 0 {
		r.have[w] |= b
		r.arrivals[seq] = at
		r.pending++
	}
}

// Flush builds a feedback packet covering [nextSeq, lastSeq] and resets the
// range. It returns nil when there is nothing to report.
func (r *TWCCRecorder) Flush() *TWCC {
	if !r.started {
		return nil
	}
	n := int(r.lastSeq-r.nextSeq) + 1
	if n <= 0 || r.pending == 0 {
		return nil
	}
	fb := &TWCC{
		SenderSSRC: r.SenderSSRC,
		MediaSSRC:  r.MediaSSRC,
		BaseSeq:    r.nextSeq,
		FbPktCount: r.fbCount,
	}
	r.fbCount++
	fb.Packets = make([]Arrival, 0, n)
	seq := r.nextSeq
	for i := 0; i < n; i++ {
		if w, b := seq/64, uint64(1)<<(seq%64); r.have[w]&b != 0 {
			fb.Packets = append(fb.Packets, Arrival{Received: true, At: r.arrivals[seq]})
			r.have[w] &^= b
			r.pending--
		} else {
			fb.Packets = append(fb.Packets, Arrival{})
		}
		seq++
	}
	r.nextSeq = seq
	return fb
}
