package rtp

import (
	"testing"
	"time"
)

func BenchmarkHeaderMarshal(b *testing.B) {
	h := Header{Marker: true, PayloadType: 96, SequenceNumber: 1, Timestamp: 2, SSRC: 3}
	h.SetTransportSeq(7)
	buf := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.MarshalTo(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeaderUnmarshal(b *testing.B) {
	h := Header{Marker: true, PayloadType: 96, SequenceNumber: 1, Timestamp: 2, SSRC: 3}
	h.SetTransportSeq(7)
	buf, err := h.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	var g Header
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTWCCMarshal(b *testing.B) {
	fb := &TWCC{BaseSeq: 100}
	at := time.Second
	for i := 0; i < 100; i++ {
		received := i%11 != 0
		a := Arrival{Received: received}
		if received {
			at += 500 * time.Microsecond
			a.At = at
		}
		fb.Packets = append(fb.Packets, a)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fb.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTWCCUnmarshal(b *testing.B) {
	fb := &TWCC{BaseSeq: 100}
	at := time.Second
	for i := 0; i < 100; i++ {
		at += 500 * time.Microsecond
		fb.Packets = append(fb.Packets, Arrival{Received: true, At: at})
	}
	buf, err := fb.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	var g TWCC
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCCFBRoundTrip(b *testing.B) {
	g := NewCCFBGenerator(1, 2, 256)
	for i := 0; i < 300; i++ {
		g.Record(uint16(i), time.Duration(i)*400*time.Microsecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fb := g.Report(time.Second)
		buf, err := fb.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		var parsed CCFB
		if err := parsed.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketize(b *testing.B) {
	p := NewPacketizer(1, 96, 1200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Packetize(FrameInfo{Num: uint32(i), Size: 100_000})
	}
}
