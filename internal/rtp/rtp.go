// Package rtp implements the wire formats the measurement pipeline uses:
// RFC 3550 RTP packets with RFC 8285 one-byte header extensions (carrying
// the transport-wide sequence number GCC needs), the transport-wide
// congestion-control RTCP feedback format consumed by GCC
// (draft-holmer-rmcat-transport-wide-cc-extensions-01), the RFC 8888
// congestion-control feedback format consumed by SCReAM, and a
// packetizer/depacketizer for the video frame workload.
//
// All formats marshal to and parse from real wire bytes; the simulator only
// needs sizes, but byte-level fidelity keeps the live UDP mode and the
// simulated mode on one code path.
package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the RTP protocol version.
const Version = 2

// HeaderSize is the size of a fixed RTP header without CSRCs or extensions.
const HeaderSize = 12

// ExtensionIDTransportSeq is the RFC 8285 extension ID under which the
// transport-wide sequence number travels in this pipeline.
const ExtensionIDTransportSeq = 5

var (
	// ErrShortPacket reports a buffer too small to contain the claimed
	// structure.
	ErrShortPacket = errors.New("rtp: short packet")
	// ErrBadVersion reports a packet whose version field is not 2.
	ErrBadVersion = errors.New("rtp: bad version")
)

// Extension is one RFC 8285 one-byte-header extension element.
type Extension struct {
	ID      uint8 // 1..14
	Payload []byte
}

// Header is an RTP packet header.
type Header struct {
	Padding        bool
	Marker         bool
	PayloadType    uint8
	SequenceNumber uint16
	Timestamp      uint32
	SSRC           uint32
	CSRC           []uint32
	Extensions     []Extension
}

// onebyteProfile is the "defined by profile" value for RFC 8285 one-byte
// header extensions.
const onebyteProfile = 0xBEDE

// extensionWireLen returns the byte length of the extension block, including
// the 4-byte extension header and padding to a 32-bit boundary, or 0 when
// there are no extensions.
func (h *Header) extensionWireLen() int {
	if len(h.Extensions) == 0 {
		return 0
	}
	n := 0
	for _, e := range h.Extensions {
		n += 1 + len(e.Payload)
	}
	// Pad element data to a multiple of 4.
	if rem := n % 4; rem != 0 {
		n += 4 - rem
	}
	return 4 + n
}

// MarshalSize returns the number of bytes Marshal will produce.
func (h *Header) MarshalSize() int {
	return HeaderSize + 4*len(h.CSRC) + h.extensionWireLen()
}

// Marshal serializes the header.
func (h *Header) Marshal() ([]byte, error) {
	buf := make([]byte, h.MarshalSize())
	if _, err := h.MarshalTo(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// MarshalTo serializes the header into buf, returning the bytes written.
func (h *Header) MarshalTo(buf []byte) (int, error) {
	size := h.MarshalSize()
	if len(buf) < size {
		return 0, ErrShortPacket
	}
	if len(h.CSRC) > 15 {
		return 0, fmt.Errorf("rtp: %d CSRCs exceeds the maximum of 15", len(h.CSRC))
	}
	buf[0] = Version << 6
	if h.Padding {
		buf[0] |= 1 << 5
	}
	if len(h.Extensions) > 0 {
		buf[0] |= 1 << 4
	}
	buf[0] |= uint8(len(h.CSRC))
	buf[1] = h.PayloadType & 0x7F
	if h.Marker {
		buf[1] |= 1 << 7
	}
	binary.BigEndian.PutUint16(buf[2:], h.SequenceNumber)
	binary.BigEndian.PutUint32(buf[4:], h.Timestamp)
	binary.BigEndian.PutUint32(buf[8:], h.SSRC)
	off := HeaderSize
	for _, c := range h.CSRC {
		binary.BigEndian.PutUint32(buf[off:], c)
		off += 4
	}
	if len(h.Extensions) > 0 {
		binary.BigEndian.PutUint16(buf[off:], onebyteProfile)
		words := (h.extensionWireLen() - 4) / 4
		binary.BigEndian.PutUint16(buf[off+2:], uint16(words))
		off += 4
		start := off
		for _, e := range h.Extensions {
			if e.ID < 1 || e.ID > 14 {
				return 0, fmt.Errorf("rtp: extension id %d out of one-byte range 1..14", e.ID)
			}
			if len(e.Payload) < 1 || len(e.Payload) > 16 {
				return 0, fmt.Errorf("rtp: extension payload length %d out of range 1..16", len(e.Payload))
			}
			buf[off] = e.ID<<4 | uint8(len(e.Payload)-1)
			off++
			off += copy(buf[off:], e.Payload)
		}
		for (off-start)%4 != 0 {
			buf[off] = 0 // RFC 8285 padding
			off++
		}
	}
	return off, nil
}

// Unmarshal parses an RTP header, returning the number of header bytes
// consumed.
func (h *Header) Unmarshal(buf []byte) (int, error) {
	if len(buf) < HeaderSize {
		return 0, ErrShortPacket
	}
	if buf[0]>>6 != Version {
		return 0, ErrBadVersion
	}
	h.Padding = buf[0]&(1<<5) != 0
	hasExt := buf[0]&(1<<4) != 0
	cc := int(buf[0] & 0x0F)
	h.Marker = buf[1]&(1<<7) != 0
	h.PayloadType = buf[1] & 0x7F
	h.SequenceNumber = binary.BigEndian.Uint16(buf[2:])
	h.Timestamp = binary.BigEndian.Uint32(buf[4:])
	h.SSRC = binary.BigEndian.Uint32(buf[8:])
	off := HeaderSize
	if len(buf) < off+4*cc {
		return 0, ErrShortPacket
	}
	h.CSRC = h.CSRC[:0]
	for i := 0; i < cc; i++ {
		h.CSRC = append(h.CSRC, binary.BigEndian.Uint32(buf[off:]))
		off += 4
	}
	h.Extensions = h.Extensions[:0]
	if hasExt {
		if len(buf) < off+4 {
			return 0, ErrShortPacket
		}
		profile := binary.BigEndian.Uint16(buf[off:])
		words := int(binary.BigEndian.Uint16(buf[off+2:]))
		off += 4
		if len(buf) < off+4*words {
			return 0, ErrShortPacket
		}
		ext := buf[off : off+4*words]
		off += 4 * words
		if profile == onebyteProfile {
			for i := 0; i < len(ext); {
				if ext[i] == 0 { // padding
					i++
					continue
				}
				id := ext[i] >> 4
				length := int(ext[i]&0x0F) + 1
				i++
				if id == 15 { // reserved: stop processing
					break
				}
				if i+length > len(ext) {
					return 0, ErrShortPacket
				}
				h.Extensions = append(h.Extensions, Extension{ID: id, Payload: append([]byte(nil), ext[i:i+length]...)})
				i += length
			}
		}
		// Unknown profiles: extension data skipped but header remains valid.
	}
	return off, nil
}

// SetTransportSeq attaches (or replaces) the transport-wide sequence number
// extension.
func (h *Header) SetTransportSeq(seq uint16) {
	var payload [2]byte
	binary.BigEndian.PutUint16(payload[:], seq)
	for i := range h.Extensions {
		if h.Extensions[i].ID == ExtensionIDTransportSeq {
			h.Extensions[i].Payload = payload[:]
			return
		}
	}
	h.Extensions = append(h.Extensions, Extension{ID: ExtensionIDTransportSeq, Payload: payload[:]})
}

// TransportSeq extracts the transport-wide sequence number extension.
func (h *Header) TransportSeq() (uint16, bool) {
	for _, e := range h.Extensions {
		if e.ID == ExtensionIDTransportSeq && len(e.Payload) == 2 {
			return binary.BigEndian.Uint16(e.Payload), true
		}
	}
	return 0, false
}

// Packet is an RTP packet.
//
// PadLen models RFC 3550 padding (≤ 255 bytes, materialized by Marshal with
// the padding bit set). VirtualPayloadLen models synthetic media payload
// bytes that count toward the wire size but are not held in memory: the
// simulator moves multi-megabit video without materializing it, while
// Marshal writes that many zero filler bytes for the live UDP mode. After
// Unmarshal, former virtual bytes appear as real payload bytes.
type Packet struct {
	Header            Header
	Payload           []byte
	VirtualPayloadLen int
	PadLen            int
}

// MarshalSize returns the wire size of the packet.
func (p *Packet) MarshalSize() int {
	return p.Header.MarshalSize() + len(p.Payload) + p.VirtualPayloadLen + p.PadLen
}

// Marshal serializes the packet, materializing PadLen zero bytes (with the
// RTP padding bit and trailing pad count per RFC 3550 when PadLen > 0).
func (p *Packet) Marshal() ([]byte, error) {
	h := p.Header
	if p.PadLen > 0 {
		if p.PadLen > 255 {
			return nil, fmt.Errorf("rtp: pad length %d exceeds RFC 3550 maximum 255", p.PadLen)
		}
		h.Padding = true
	}
	buf := make([]byte, p.MarshalSize())
	n, err := h.MarshalTo(buf)
	if err != nil {
		return nil, err
	}
	n += copy(buf[n:], p.Payload)
	n += p.VirtualPayloadLen // zero filler
	if p.PadLen > 0 {
		buf[len(buf)-1] = byte(p.PadLen)
	}
	return buf[:n+p.PadLen], nil
}

// Unmarshal parses an RTP packet, stripping padding into PadLen.
func (p *Packet) Unmarshal(buf []byte) error {
	n, err := p.Header.Unmarshal(buf)
	if err != nil {
		return err
	}
	body := buf[n:]
	p.PadLen = 0
	if p.Header.Padding {
		if len(body) == 0 {
			return ErrShortPacket
		}
		pad := int(body[len(body)-1])
		if pad == 0 || pad > len(body) {
			return fmt.Errorf("rtp: invalid pad count %d", pad)
		}
		p.PadLen = pad
		body = body[:len(body)-pad]
		p.Header.Padding = false
	}
	p.Payload = append(p.Payload[:0], body...)
	return nil
}
