package rtp

import (
	"reflect"
	"testing"
)

func TestNackPairsPackAndExpand(t *testing.T) {
	cases := [][]uint16{
		{5},
		{5, 6, 7},
		{5, 21}, // exactly at the BLP edge: one pair
		{5, 22}, // one past the edge: two pairs
		{100, 101, 120, 200},
		{65534, 65535, 0, 1}, // wraparound run
	}
	for _, seqs := range cases {
		pairs := NackPairs(seqs)
		var got []uint16
		for _, p := range pairs {
			got = append(got, p.Seqs()...)
		}
		if !reflect.DeepEqual(got, seqs) {
			t.Errorf("NackPairs(%v) expanded to %v", seqs, got)
		}
	}
	if pairs := NackPairs([]uint16{5, 21}); len(pairs) != 1 {
		t.Errorf("seqs 16 apart should pack into one pair, got %d", len(pairs))
	}
	if pairs := NackPairs([]uint16{5, 22}); len(pairs) != 2 {
		t.Errorf("seqs 17 apart need two pairs, got %d", len(pairs))
	}
}

func TestNACKRoundTrip(t *testing.T) {
	n := &NACK{
		SenderSSRC: 0x11223344,
		MediaSSRC:  0x1234,
		Pairs:      NackPairs([]uint16{10, 11, 13, 40}),
	}
	buf, err := n.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != n.MarshalSize() {
		t.Fatalf("marshal produced %d bytes, MarshalSize says %d", len(buf), n.MarshalSize())
	}
	var got NACK
	if err := got.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if got.SenderSSRC != n.SenderSSRC || got.MediaSSRC != n.MediaSSRC {
		t.Fatalf("SSRCs changed: %+v vs %+v", got, n)
	}
	if !reflect.DeepEqual(got.Seqs(), []uint16{10, 11, 13, 40}) {
		t.Fatalf("seqs after roundtrip: %v", got.Seqs())
	}
}

func TestNACKRejectsOtherFeedback(t *testing.T) {
	tw := &TWCC{SenderSSRC: 1, MediaSSRC: 2, BaseSeq: 1,
		Packets: []Arrival{{Received: true}}}
	buf, err := tw.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var n NACK
	if err := n.Unmarshal(buf); err == nil {
		t.Fatal("NACK parser accepted a TWCC packet")
	}
	if err := n.Unmarshal([]byte{0x81, 205, 0}); err == nil {
		t.Fatal("NACK parser accepted a truncated header")
	}
}

func TestRTXWrapUnwrapRoundTrip(t *testing.T) {
	pk := NewPacketizer(0x1234, 96, 1200)
	orig := pk.Packetize(FrameInfo{Num: 7, Keyframe: true, Size: 3000, RTPTime: 21000})[1]
	rtx := WrapRTX(orig, 0x5243, 97, 400)
	if rtx.Header.SSRC != 0x5243 || rtx.Header.PayloadType != 97 || rtx.Header.SequenceNumber != 400 {
		t.Fatalf("rtx stream identity wrong: %+v", rtx.Header)
	}
	if got, want := rtx.MarshalSize(), orig.MarshalSize()+RTXOverhead-orig.Header.extensionWireLen(); got != want {
		t.Fatalf("rtx wire size %d, want %d", got, want)
	}
	back, osn, err := UnwrapRTX(rtx, 0x1234, 96)
	if err != nil {
		t.Fatal(err)
	}
	if osn != orig.Header.SequenceNumber {
		t.Fatalf("osn %d, want %d", osn, orig.Header.SequenceNumber)
	}
	if back.Header.SequenceNumber != orig.Header.SequenceNumber ||
		back.Header.Timestamp != orig.Header.Timestamp ||
		back.Header.SSRC != 0x1234 || back.Header.PayloadType != 96 {
		t.Fatalf("unwrapped header %+v vs original %+v", back.Header, orig.Header)
	}
	if !reflect.DeepEqual(back.Payload, orig.Payload) || back.VirtualPayloadLen != orig.VirtualPayloadLen {
		t.Fatal("unwrapped payload differs from original")
	}
	meta, err := ParsePacketMeta(back.Payload)
	if err != nil || meta.FrameNum != 7 || !meta.Keyframe {
		t.Fatalf("unwrapped payload meta %+v err %v", meta, err)
	}
}

func TestRTXUnwrapShortPayload(t *testing.T) {
	if _, _, err := UnwrapRTX(&Packet{Payload: []byte{1}}, 1, 96); err == nil {
		t.Fatal("UnwrapRTX accepted a 1-byte payload")
	}
}

func TestDepacketizerDeduplicates(t *testing.T) {
	pk := NewPacketizer(1, 96, 1200)
	pkts := pk.Packetize(FrameInfo{Num: 1, Size: 3000})
	d := NewDepacketizer()
	for _, p := range pkts {
		if _, err := d.Push(p, 10); err != nil {
			t.Fatal(err)
		}
	}
	fs := d.Frame(1)
	if !fs.Complete() {
		t.Fatalf("frame incomplete after all %d packets", len(pkts))
	}
	recv, bytes := fs.Received, fs.Bytes
	if _, err := d.Push(pkts[0], 20); err != ErrDuplicate {
		t.Fatalf("duplicate push returned %v, want ErrDuplicate", err)
	}
	if fs.Received != recv || fs.Bytes != bytes {
		t.Fatal("duplicate push mutated frame state")
	}
}
