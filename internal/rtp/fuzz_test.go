package rtp

import (
	"testing"
	"time"
)

// fuzzSeed adds buf plus a few truncations of it to the corpus.
func fuzzSeed(f *testing.F, buf []byte) {
	f.Helper()
	f.Add(buf)
	for _, n := range []int{0, 1, len(buf) / 2, len(buf) - 1} {
		if n >= 0 && n < len(buf) {
			f.Add(buf[:n])
		}
	}
}

// FuzzTWCCUnmarshal feeds arbitrary bytes to the TWCC parser: it must never
// panic, and whatever it accepts must survive a marshal→unmarshal roundtrip.
func FuzzTWCCUnmarshal(f *testing.F) {
	valid := &TWCC{
		SenderSSRC: 0x1234, MediaSSRC: 0x5678, BaseSeq: 100, FbPktCount: 3,
		Packets: []Arrival{
			{Received: true, At: 640 * time.Millisecond},
			{Received: false},
			{Received: true, At: 645 * time.Millisecond},
			{Received: true, At: 900 * time.Millisecond},
		},
	}
	if buf, err := valid.Marshal(); err == nil {
		fuzzSeed(f, buf)
	}
	long := &TWCC{SenderSSRC: 1, MediaSSRC: 2, BaseSeq: 65530, Packets: make([]Arrival, 100)}
	for i := range long.Packets {
		if i%3 != 0 {
			long.Packets[i] = Arrival{Received: true, At: 64*time.Millisecond + time.Duration(i)*deltaUnit}
		}
	}
	if buf, err := long.Marshal(); err == nil {
		fuzzSeed(f, buf)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var fb TWCC
		if err := fb.Unmarshal(data); err != nil {
			return
		}
		// Accepted input: the parsed packet must re-marshal and parse back
		// to the same reception pattern.
		out, err := fb.Marshal()
		if err != nil {
			// Some accepted packets are unmarshalable only because of delta
			// overflow limits; that is fine as long as parsing didn't panic.
			return
		}
		var fb2 TWCC
		if err := fb2.Unmarshal(out); err != nil {
			t.Fatalf("re-marshaled packet rejected: %v", err)
		}
		if fb2.BaseSeq != fb.BaseSeq || len(fb2.Packets) != len(fb.Packets) {
			t.Fatalf("roundtrip changed shape: base %d→%d, %d→%d packets",
				fb.BaseSeq, fb2.BaseSeq, len(fb.Packets), len(fb2.Packets))
		}
		for i := range fb.Packets {
			if fb.Packets[i].Received != fb2.Packets[i].Received {
				t.Fatalf("roundtrip changed reception of packet %d", i)
			}
		}
	})
}

// FuzzCCFBUnmarshal feeds arbitrary bytes to the RFC 8888 parser.
func FuzzCCFBUnmarshal(f *testing.F) {
	valid := &CCFB{
		SenderSSRC: 0xABCD,
		Timestamp:  2 * time.Second,
		Reports: []CCFBReport{{
			SSRC: 0x1234, BeginSeq: 500,
			Metrics: []CCFBMetric{
				{Received: true, ArrivalOffset: 30 * time.Millisecond},
				{Received: false},
				{Received: true, ECN: 1, ArrivalOffset: 10 * time.Millisecond},
			},
		}},
	}
	if buf, err := valid.Marshal(); err == nil {
		fuzzSeed(f, buf)
	}
	two := &CCFB{SenderSSRC: 7, Timestamp: time.Second, Reports: []CCFBReport{
		{SSRC: 1, BeginSeq: 65535, Metrics: []CCFBMetric{{Received: true}}},
		{SSRC: 2, BeginSeq: 0, Metrics: []CCFBMetric{{Received: true, ArrivalOffset: time.Second}, {}}},
	}}
	if buf, err := two.Marshal(); err == nil {
		fuzzSeed(f, buf)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var fb CCFB
		if err := fb.Unmarshal(data); err != nil {
			return
		}
		out, err := fb.Marshal()
		if err != nil {
			return
		}
		var fb2 CCFB
		if err := fb2.Unmarshal(out); err != nil {
			t.Fatalf("re-marshaled packet rejected: %v", err)
		}
		if len(fb2.Reports) != len(fb.Reports) {
			t.Fatalf("roundtrip changed report count %d→%d", len(fb.Reports), len(fb2.Reports))
		}
		for i := range fb.Reports {
			if fb2.Reports[i].BeginSeq != fb.Reports[i].BeginSeq ||
				len(fb2.Reports[i].Metrics) != len(fb.Reports[i].Metrics) {
				t.Fatalf("roundtrip changed report %d shape", i)
			}
		}
	})
}

// FuzzNACKUnmarshal feeds arbitrary bytes to the RFC 4585 Generic NACK
// parser: no panics, and accepted packets must roundtrip.
func FuzzNACKUnmarshal(f *testing.F) {
	one := &NACK{SenderSSRC: 1, MediaSSRC: 0x1234, Pairs: NackPairs([]uint16{7})}
	if buf, err := one.Marshal(); err == nil {
		fuzzSeed(f, buf)
	}
	many := &NACK{SenderSSRC: 0xABCD, MediaSSRC: 2,
		Pairs: NackPairs([]uint16{100, 101, 105, 116, 400, 65535, 0})}
	if buf, err := many.Marshal(); err == nil {
		fuzzSeed(f, buf)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var n NACK
		if err := n.Unmarshal(data); err != nil {
			return
		}
		out, err := n.Marshal()
		if err != nil {
			t.Fatalf("accepted NACK fails to marshal: %v", err)
		}
		var n2 NACK
		if err := n2.Unmarshal(out); err != nil {
			t.Fatalf("re-marshaled NACK rejected: %v", err)
		}
		if n2.SenderSSRC != n.SenderSSRC || n2.MediaSSRC != n.MediaSSRC ||
			len(n2.Pairs) != len(n.Pairs) {
			t.Fatalf("roundtrip changed shape: %+v vs %+v", n2, n)
		}
		for i := range n.Pairs {
			if n.Pairs[i] != n2.Pairs[i] {
				t.Fatalf("roundtrip changed pair %d", i)
			}
		}
	})
}

// FuzzRTXUnwrap feeds arbitrary bytes through the RTP parser into the
// RFC 4588 unwrapper: no panics, and whatever unwraps must rewrap to the
// same original sequence number and payload.
func FuzzRTXUnwrap(f *testing.F) {
	pk := NewPacketizer(0x1234, 96, 1200)
	for _, p := range pk.Packetize(FrameInfo{Num: 3, Size: 2600, Keyframe: true}) {
		rtx := WrapRTX(p, 0x5243, 97, 11)
		if buf, err := rtx.Marshal(); err == nil {
			fuzzSeed(f, buf)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := p.Unmarshal(data); err != nil {
			return
		}
		orig, osn, err := UnwrapRTX(&p, 0x1234, 96)
		if err != nil {
			return
		}
		if orig.Header.SequenceNumber != osn {
			t.Fatalf("unwrapped seq %d != osn %d", orig.Header.SequenceNumber, osn)
		}
		re := WrapRTX(orig, p.Header.SSRC, p.Header.PayloadType, p.Header.SequenceNumber)
		back, osn2, err := UnwrapRTX(re, 0x1234, 96)
		if err != nil {
			t.Fatalf("rewrap not unwrappable: %v", err)
		}
		if osn2 != osn || string(back.Payload) != string(orig.Payload) {
			t.Fatal("wrap/unwrap changed osn or payload")
		}
	})
}

// FuzzRTCPReports feeds arbitrary bytes to the SR and RR parsers.
func FuzzRTCPReports(f *testing.F) {
	sr := &SenderReport{SSRC: 0x1234, NTPTime: 90 * time.Second, RTPTime: 81000,
		PacketCount: 1000, OctetCount: 1_200_000}
	if buf, err := sr.Marshal(); err == nil {
		fuzzSeed(f, buf)
	}
	rr := &ReceiverReport{SSRC: 0x5678, Blocks: []ReportBlock{{
		SSRC: 0x1234, FractionLost: 12, CumulativeLost: 345,
		HighestSeq: 7000, Jitter: 90, LastSR: 0x11223344, DelaySinceLastSR: 0x100,
	}}}
	if buf, err := rr.Marshal(); err == nil {
		fuzzSeed(f, buf)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var s SenderReport
		if err := s.Unmarshal(data); err == nil {
			out, err := s.Marshal()
			if err != nil {
				t.Fatalf("accepted SR fails to marshal: %v", err)
			}
			var s2 SenderReport
			if err := s2.Unmarshal(out); err != nil {
				t.Fatalf("re-marshaled SR rejected: %v", err)
			}
			if s2.SSRC != s.SSRC || s2.RTPTime != s.RTPTime ||
				s2.PacketCount != s.PacketCount || s2.OctetCount != s.OctetCount {
				t.Fatal("SR roundtrip changed fields")
			}
		}
		var r ReceiverReport
		if err := r.Unmarshal(data); err == nil {
			out, err := r.Marshal()
			if err != nil {
				t.Fatalf("accepted RR fails to marshal: %v", err)
			}
			var r2 ReceiverReport
			if err := r2.Unmarshal(out); err != nil {
				t.Fatalf("re-marshaled RR rejected: %v", err)
			}
			if r2.SSRC != r.SSRC || len(r2.Blocks) != len(r.Blocks) {
				t.Fatal("RR roundtrip changed shape")
			}
		}
	})
}
