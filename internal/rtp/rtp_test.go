package rtp

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Marker:         true,
		PayloadType:    96,
		SequenceNumber: 12345,
		Timestamp:      0xDEADBEEF,
		SSRC:           0xCAFEBABE,
		CSRC:           []uint32{1, 2, 3},
	}
	h.SetTransportSeq(777)
	buf, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var g Header
	n, err := g.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if g.Marker != h.Marker || g.PayloadType != h.PayloadType ||
		g.SequenceNumber != h.SequenceNumber || g.Timestamp != h.Timestamp ||
		g.SSRC != h.SSRC || len(g.CSRC) != 3 {
		t.Errorf("round trip mismatch: %+v vs %+v", g, h)
	}
	seq, ok := g.TransportSeq()
	if !ok || seq != 777 {
		t.Errorf("TransportSeq = %d, %v", seq, ok)
	}
}

func TestHeaderNoExtensions(t *testing.T) {
	h := Header{PayloadType: 96, SequenceNumber: 1, SSRC: 9}
	buf, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderSize {
		t.Errorf("size = %d, want %d", len(buf), HeaderSize)
	}
	var g Header
	if _, err := g.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.TransportSeq(); ok {
		t.Error("found transport seq on header without one")
	}
}

func TestSetTransportSeqReplaces(t *testing.T) {
	var h Header
	h.SetTransportSeq(1)
	h.SetTransportSeq(2)
	if len(h.Extensions) != 1 {
		t.Fatalf("got %d extensions, want 1", len(h.Extensions))
	}
	if seq, _ := h.TransportSeq(); seq != 2 {
		t.Errorf("seq = %d, want 2", seq)
	}
}

func TestHeaderBadVersion(t *testing.T) {
	buf := make([]byte, HeaderSize)
	buf[0] = 1 << 6
	var h Header
	if _, err := h.Unmarshal(buf); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestHeaderShort(t *testing.T) {
	var h Header
	if _, err := h.Unmarshal(make([]byte, 5)); err != ErrShortPacket {
		t.Errorf("err = %v, want ErrShortPacket", err)
	}
}

func TestHeaderTruncatedExtension(t *testing.T) {
	h := Header{PayloadType: 96}
	h.SetTransportSeq(1)
	buf, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var g Header
	if _, err := g.Unmarshal(buf[:len(buf)-1]); err != ErrShortPacket {
		t.Errorf("err = %v, want ErrShortPacket", err)
	}
}

func TestExtensionValidation(t *testing.T) {
	h := Header{Extensions: []Extension{{ID: 15, Payload: []byte{1}}}}
	if _, err := h.Marshal(); err == nil {
		t.Error("extension id 15 should be rejected")
	}
	h = Header{Extensions: []Extension{{ID: 1, Payload: nil}}}
	if _, err := h.Marshal(); err == nil {
		t.Error("empty extension payload should be rejected")
	}
	h = Header{Extensions: []Extension{{ID: 1, Payload: make([]byte, 17)}}}
	if _, err := h.Marshal(); err == nil {
		t.Error("17-byte extension payload should be rejected")
	}
}

func TestTooManyCSRCs(t *testing.T) {
	h := Header{CSRC: make([]uint32, 16)}
	if _, err := h.Marshal(); err == nil {
		t.Error("16 CSRCs should be rejected")
	}
}

func TestPacketRoundTripWithPadding(t *testing.T) {
	p := Packet{
		Header:  Header{PayloadType: 96, SequenceNumber: 7, SSRC: 1},
		Payload: []byte{1, 2, 3, 4},
		PadLen:  5,
	}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.MarshalSize() {
		t.Errorf("wire size %d != MarshalSize %d", len(buf), p.MarshalSize())
	}
	var g Packet
	if err := g.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g.Payload, p.Payload) {
		t.Errorf("payload = %v, want %v", g.Payload, p.Payload)
	}
	if g.PadLen != 5 {
		t.Errorf("PadLen = %d, want 5", g.PadLen)
	}
}

func TestPacketVirtualPayload(t *testing.T) {
	p := Packet{
		Header:            Header{PayloadType: 96, SSRC: 1},
		Payload:           []byte{9, 9},
		VirtualPayloadLen: 1000,
	}
	if p.MarshalSize() != HeaderSize+2+1000 {
		t.Errorf("MarshalSize = %d", p.MarshalSize())
	}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.MarshalSize() {
		t.Errorf("wire length %d != %d", len(buf), p.MarshalSize())
	}
	var g Packet
	if err := g.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	// Virtual bytes materialize as real payload on the other side.
	if len(g.Payload) != 1002 {
		t.Errorf("payload length = %d, want 1002", len(g.Payload))
	}
}

func TestPacketPadTooLarge(t *testing.T) {
	p := Packet{PadLen: 256}
	if _, err := p.Marshal(); err == nil {
		t.Error("PadLen 256 should be rejected")
	}
}

func TestPacketInvalidPadCount(t *testing.T) {
	h := Header{Padding: true, PayloadType: 96}
	buf, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0) // pad count 0 is invalid
	var p Packet
	if err := p.Unmarshal(buf); err == nil {
		t.Error("pad count 0 should be rejected")
	}
}

// Property: header marshal/unmarshal round-trips for arbitrary field values.
func TestPropertyHeaderRoundTrip(t *testing.T) {
	f := func(marker bool, pt uint8, seq uint16, ts, ssrc uint32, tseq uint16) bool {
		h := Header{
			Marker:         marker,
			PayloadType:    pt & 0x7F,
			SequenceNumber: seq,
			Timestamp:      ts,
			SSRC:           ssrc,
		}
		h.SetTransportSeq(tseq)
		buf, err := h.Marshal()
		if err != nil {
			return false
		}
		var g Header
		if _, err := g.Unmarshal(buf); err != nil {
			return false
		}
		got, ok := g.TransportSeq()
		return ok && got == tseq &&
			g.Marker == h.Marker && g.PayloadType == h.PayloadType &&
			g.SequenceNumber == seq && g.Timestamp == ts && g.SSRC == ssrc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: unmarshalling arbitrary bytes never panics.
func TestPropertyUnmarshalNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		var h Header
		_, _ = h.Unmarshal(data)
		var p Packet
		_ = p.Unmarshal(data)
		var tw TWCC
		_ = tw.Unmarshal(data)
		var cc CCFB
		_ = cc.Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPacketizeSingleSmallFrame(t *testing.T) {
	p := NewPacketizer(1, 96, 1200)
	pkts := p.Packetize(FrameInfo{Num: 1, EncodeTime: time.Second, Keyframe: true, Size: 100, RTPTime: 90000})
	if len(pkts) != 1 {
		t.Fatalf("got %d packets, want 1", len(pkts))
	}
	if !pkts[0].Header.Marker {
		t.Error("single packet should carry the marker")
	}
	meta, err := ParsePacketMeta(pkts[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if meta.FrameNum != 1 || !meta.Keyframe || meta.EncodeTime != time.Second || meta.Total != 1 {
		t.Errorf("meta = %+v", meta)
	}
}

func TestPacketizeLargeFrame(t *testing.T) {
	p := NewPacketizer(1, 96, 1200)
	const frameSize = 100_000
	pkts := p.Packetize(FrameInfo{Num: 7, Size: frameSize})
	if len(pkts) < 80 {
		t.Fatalf("got %d packets for a 100 KB frame at MTU 1200", len(pkts))
	}
	totalWire := 0
	for i, pkt := range pkts {
		if pkt.MarshalSize() > 1200 {
			t.Errorf("packet %d exceeds MTU: %d", i, pkt.MarshalSize())
		}
		if got := pkt.Header.Marker; got != (i == len(pkts)-1) {
			t.Errorf("packet %d marker = %v", i, got)
		}
		if _, ok := pkt.Header.TransportSeq(); !ok {
			t.Errorf("packet %d missing transport seq", i)
		}
		meta, err := ParsePacketMeta(pkt.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if int(meta.Index) != i || int(meta.Total) != len(pkts) {
			t.Errorf("packet %d meta index/total = %d/%d", i, meta.Index, meta.Total)
		}
		totalWire += len(pkt.Payload) + pkt.VirtualPayloadLen
	}
	if totalWire != frameSize {
		t.Errorf("sum of payloads = %d, want %d", totalWire, frameSize)
	}
}

func TestPacketizerSequencesIncrease(t *testing.T) {
	p := NewPacketizer(1, 96, 1200)
	a := p.Packetize(FrameInfo{Num: 1, Size: 5000})
	b := p.Packetize(FrameInfo{Num: 2, Size: 5000})
	lastSeq := a[len(a)-1].Header.SequenceNumber
	if b[0].Header.SequenceNumber != lastSeq+1 {
		t.Errorf("sequence not continuous across frames: %d then %d", lastSeq, b[0].Header.SequenceNumber)
	}
	at, _ := a[len(a)-1].Header.TransportSeq()
	bt, _ := b[0].Header.TransportSeq()
	if bt != at+1 {
		t.Errorf("transport seq not continuous: %d then %d", at, bt)
	}
}

// Property: packetizer conserves frame size and stays under MTU for any size.
func TestPropertyPacketizeConservation(t *testing.T) {
	f := func(size uint32) bool {
		sz := int(size % 2_000_000)
		p := NewPacketizer(1, 96, 1200)
		pkts := p.Packetize(FrameInfo{Num: 1, Size: sz})
		sum := 0
		for _, pkt := range pkts {
			if pkt.MarshalSize() > 1200 {
				return false
			}
			sum += len(pkt.Payload) + pkt.VirtualPayloadLen
		}
		want := sz
		if want < payloadMetaSize {
			want = payloadMetaSize
		}
		return sum >= want && sum <= want+len(pkts)*payloadMetaSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDepacketizerReassembly(t *testing.T) {
	p := NewPacketizer(1, 96, 1200)
	pkts := p.Packetize(FrameInfo{Num: 3, EncodeTime: 5 * time.Second, Size: 4000})
	d := NewDepacketizer()
	var fs *FrameState
	for i, pkt := range pkts {
		var err error
		fs, err = d.Push(pkt, time.Duration(i)*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !fs.Complete() {
		t.Error("frame should be complete")
	}
	if fs.EncodeTime != 5*time.Second || fs.Num != 3 {
		t.Errorf("frame meta = %+v", fs)
	}
	if fs.FirstArrival != 0 || fs.LastArrival != time.Duration(len(pkts)-1)*time.Millisecond {
		t.Errorf("arrival bracket = %v..%v", fs.FirstArrival, fs.LastArrival)
	}
	if fs.LossFraction() != 0 {
		t.Errorf("LossFraction = %v", fs.LossFraction())
	}
	d.Delete(3)
	if d.Pending() != 0 {
		t.Errorf("Pending = %d after Delete", d.Pending())
	}
}

func TestDepacketizerPartialFrame(t *testing.T) {
	p := NewPacketizer(1, 96, 1200)
	pkts := p.Packetize(FrameInfo{Num: 9, Size: 4000})
	d := NewDepacketizer()
	// Drop the middle packet.
	for i, pkt := range pkts {
		if i == 1 {
			continue
		}
		if _, err := d.Push(pkt, 0); err != nil {
			t.Fatal(err)
		}
	}
	fs := d.Frame(9)
	if fs == nil || fs.Complete() {
		t.Fatal("frame with a missing packet must not be complete")
	}
	want := 1.0 / float64(len(pkts))
	if got := fs.LossFraction(); got != want {
		t.Errorf("LossFraction = %v, want %v", got, want)
	}
}

func TestDepacketizerRejectsNonMedia(t *testing.T) {
	d := NewDepacketizer()
	pkt := &Packet{Payload: []byte{1, 2, 3}}
	if _, err := d.Push(pkt, 0); err != ErrNotMedia {
		t.Errorf("err = %v, want ErrNotMedia", err)
	}
}
