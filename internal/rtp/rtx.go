package rtp

import "encoding/binary"

// RTXOverhead is the extra wire cost of retransmitting a packet per
// RFC 4588: the two-byte original sequence number (OSN) prepended to the
// payload. (The RTX stream carries no header extensions, which roughly
// offsets the transport-seq extension of the original.)
const RTXOverhead = 2

// WrapRTX builds the RFC 4588 retransmission of a media packet: a packet on
// the RTX stream (own SSRC, payload type and sequence space) whose payload
// is the original sequence number followed by the original payload bytes.
// Virtual payload bytes carry over so the wire size stays faithful.
func WrapRTX(orig *Packet, ssrc uint32, payloadType uint8, seq uint16) *Packet {
	payload := make([]byte, 2+len(orig.Payload))
	binary.BigEndian.PutUint16(payload, orig.Header.SequenceNumber)
	copy(payload[2:], orig.Payload)
	return &Packet{
		Header: Header{
			Marker:         orig.Header.Marker,
			PayloadType:    payloadType,
			SequenceNumber: seq,
			Timestamp:      orig.Header.Timestamp,
			SSRC:           ssrc,
		},
		Payload:           payload,
		VirtualPayloadLen: orig.VirtualPayloadLen,
	}
}

// UnwrapRTX recovers the original media packet from an RTX packet: the OSN
// becomes the sequence number and the remaining payload bytes the media
// payload, restored onto the media stream identity. It returns the OSN so
// the repair layer can match the retransmission to its loss record.
func UnwrapRTX(rtx *Packet, mediaSSRC uint32, mediaPayloadType uint8) (*Packet, uint16, error) {
	if len(rtx.Payload) < 2 {
		return nil, 0, ErrShortPacket
	}
	osn := binary.BigEndian.Uint16(rtx.Payload)
	return &Packet{
		Header: Header{
			Marker:         rtx.Header.Marker,
			PayloadType:    mediaPayloadType,
			SequenceNumber: osn,
			Timestamp:      rtx.Header.Timestamp,
			SSRC:           mediaSSRC,
		},
		Payload:           append([]byte(nil), rtx.Payload[2:]...),
		VirtualPayloadLen: rtx.VirtualPayloadLen,
	}, osn, nil
}
