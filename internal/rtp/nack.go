package rtp

import (
	"encoding/binary"
	"fmt"
)

// FmtNACK is the RFC 4585 Generic NACK transport-layer feedback message
// type (PT=205, FMT=1).
const FmtNACK = 1

// NackPair is one RFC 4585 §6.2.1 FCI entry: a packet ID plus a bitmask of
// the 16 following sequence numbers, so one pair reports up to 17 losses.
type NackPair struct {
	// PID is the RTP sequence number of the first lost packet.
	PID uint16
	// BLP is the bitmask of following lost packets: bit i (LSB first) set
	// means PID+i+1 is also lost.
	BLP uint16
}

// Seqs expands the pair into the sequence numbers it reports.
func (p NackPair) Seqs() []uint16 {
	out := []uint16{p.PID}
	for i := 0; i < 16; i++ {
		if p.BLP&(1<<i) != 0 {
			out = append(out, p.PID+uint16(i)+1)
		}
	}
	return out
}

// NackPairs packs an ascending run of lost sequence numbers into the
// minimal set of FCI pairs. The input must be in (wrapping) ascending
// order, as the loss detector produces it.
func NackPairs(seqs []uint16) []NackPair {
	var out []NackPair
	for i := 0; i < len(seqs); {
		pair := NackPair{PID: seqs[i]}
		i++
		for i < len(seqs) {
			d := seqs[i] - pair.PID
			if d == 0 || d > 16 {
				break
			}
			pair.BLP |= 1 << (d - 1)
			i++
		}
		out = append(out, pair)
	}
	return out
}

// NACK is an RFC 4585 Generic NACK feedback packet.
type NACK struct {
	SenderSSRC uint32
	MediaSSRC  uint32
	Pairs      []NackPair
}

// Seqs expands every FCI pair into the full list of NACKed sequence numbers.
func (n *NACK) Seqs() []uint16 {
	var out []uint16
	for _, p := range n.Pairs {
		out = append(out, p.Seqs()...)
	}
	return out
}

// MarshalSize returns the wire size of the packet.
func (n *NACK) MarshalSize() int {
	return rtcpHeaderSize + 8 + 4*len(n.Pairs)
}

// Marshal serializes the packet.
func (n *NACK) Marshal() ([]byte, error) {
	size := n.MarshalSize()
	if len(n.Pairs) > 0xFFFF-2 {
		return nil, fmt.Errorf("rtp: %d nack pairs exceed the RTCP length field", len(n.Pairs))
	}
	buf := make([]byte, size)
	h := rtcpHeader{Fmt: FmtNACK, Type: TypeTransportFeedback, Length: wordLength(size)}
	if err := h.marshalTo(buf); err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(buf[4:], n.SenderSSRC)
	binary.BigEndian.PutUint32(buf[8:], n.MediaSSRC)
	for i, p := range n.Pairs {
		binary.BigEndian.PutUint16(buf[12+4*i:], p.PID)
		binary.BigEndian.PutUint16(buf[14+4*i:], p.BLP)
	}
	return buf, nil
}

// Unmarshal parses a Generic NACK feedback packet.
func (n *NACK) Unmarshal(buf []byte) error {
	var h rtcpHeader
	if err := h.unmarshal(buf); err != nil {
		return err
	}
	if h.Type != TypeTransportFeedback || h.Fmt != FmtNACK {
		return fmt.Errorf("rtp: not a generic nack (pt %d fmt %d)", h.Type, h.Fmt)
	}
	size := 4 * (int(h.Length) + 1)
	if size < rtcpHeaderSize+8 || len(buf) < size {
		return ErrShortPacket
	}
	n.SenderSSRC = binary.BigEndian.Uint32(buf[4:])
	n.MediaSSRC = binary.BigEndian.Uint32(buf[8:])
	n.Pairs = n.Pairs[:0]
	for off := 12; off+4 <= size; off += 4 {
		n.Pairs = append(n.Pairs, NackPair{
			PID: binary.BigEndian.Uint16(buf[off:]),
			BLP: binary.BigEndian.Uint16(buf[off+2:]),
		})
	}
	return nil
}
