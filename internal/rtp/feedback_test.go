package rtp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func twccRoundTrip(t *testing.T, f *TWCC) *TWCC {
	t.Helper()
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf)%4 != 0 {
		t.Fatalf("twcc wire length %d not 32-bit aligned", len(buf))
	}
	var g TWCC
	if err := g.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	return &g
}

func TestTWCCRoundTripAllReceived(t *testing.T) {
	f := &TWCC{
		SenderSSRC: 1, MediaSSRC: 2, BaseSeq: 100, FbPktCount: 3,
		Packets: []Arrival{
			{Received: true, At: 1000 * time.Millisecond},
			{Received: true, At: 1002 * time.Millisecond},
			{Received: true, At: 1009 * time.Millisecond},
		},
	}
	g := twccRoundTrip(t, f)
	if g.SenderSSRC != 1 || g.MediaSSRC != 2 || g.BaseSeq != 100 || g.FbPktCount != 3 {
		t.Errorf("fields = %+v", g)
	}
	if len(g.Packets) != 3 {
		t.Fatalf("got %d packets", len(g.Packets))
	}
	for i, p := range g.Packets {
		if !p.Received {
			t.Errorf("packet %d lost after round trip", i)
		}
		if d := p.At - f.Packets[i].At; d < -deltaUnit || d > deltaUnit {
			t.Errorf("packet %d arrival %v, want ≈%v", i, p.At, f.Packets[i].At)
		}
	}
}

func TestTWCCRoundTripWithLosses(t *testing.T) {
	f := &TWCC{
		SenderSSRC: 1, MediaSSRC: 2, BaseSeq: 65530, // wraps
		Packets: []Arrival{
			{Received: true, At: 500 * time.Millisecond},
			{},
			{},
			{Received: true, At: 540 * time.Millisecond},
			{},
			{Received: true, At: 541 * time.Millisecond},
		},
	}
	g := twccRoundTrip(t, f)
	for i, p := range g.Packets {
		if p.Received != f.Packets[i].Received {
			t.Errorf("packet %d received = %v, want %v", i, p.Received, f.Packets[i].Received)
		}
	}
}

func TestTWCCReordering(t *testing.T) {
	// Second packet arrived before the first: negative delta, needs the
	// large-delta symbol.
	f := &TWCC{
		BaseSeq: 0,
		Packets: []Arrival{
			{Received: true, At: 700 * time.Millisecond},
			{Received: true, At: 650 * time.Millisecond},
		},
	}
	g := twccRoundTrip(t, f)
	if d := g.Packets[1].At - 650*time.Millisecond; d < -deltaUnit || d > deltaUnit {
		t.Errorf("reordered arrival = %v", g.Packets[1].At)
	}
}

func TestTWCCLongLossRun(t *testing.T) {
	// >7 identical symbols triggers the run-length encoder.
	pkts := []Arrival{{Received: true, At: time.Second}}
	for i := 0; i < 100; i++ {
		pkts = append(pkts, Arrival{})
	}
	pkts = append(pkts, Arrival{Received: true, At: time.Second + 50*time.Millisecond})
	f := &TWCC{Packets: pkts}
	g := twccRoundTrip(t, f)
	if len(g.Packets) != len(pkts) {
		t.Fatalf("got %d packets, want %d", len(g.Packets), len(pkts))
	}
	for i := 1; i <= 100; i++ {
		if g.Packets[i].Received {
			t.Fatalf("packet %d should be lost", i)
		}
	}
	if !g.Packets[101].Received {
		t.Error("final packet should be received")
	}
}

func TestTWCCEmptyRejected(t *testing.T) {
	f := &TWCC{}
	if _, err := f.Marshal(); err == nil {
		t.Error("empty feedback should be rejected")
	}
}

func TestTWCCDeltaOverflow(t *testing.T) {
	f := &TWCC{Packets: []Arrival{
		{Received: true, At: 0},
		{Received: true, At: 20 * time.Second},
	}}
	if _, err := f.Marshal(); err == nil {
		t.Error("a 20 s delta should overflow the 16-bit delta field")
	}
}

func TestTWCCRejectsWrongType(t *testing.T) {
	c := &CCFB{SenderSSRC: 1, Reports: []CCFBReport{{SSRC: 2, Metrics: []CCFBMetric{{}}}}}
	buf, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var g TWCC
	if err := g.Unmarshal(buf); err == nil {
		t.Error("TWCC parser accepted a CCFB packet")
	}
}

// Property: TWCC round-trips received flags exactly and arrival times to
// within the 250 µs quantum for arbitrary loss patterns.
func TestPropertyTWCCRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%300 + 1
		at := time.Duration(rng.Intn(1000)) * time.Millisecond
		pkts := make([]Arrival, count)
		anyReceived := false
		for i := range pkts {
			if rng.Float64() < 0.7 {
				at += time.Duration(rng.Intn(30)) * time.Millisecond
				pkts[i] = Arrival{Received: true, At: at}
				anyReceived = true
			}
		}
		if !anyReceived {
			pkts[0] = Arrival{Received: true, At: at}
		}
		fb := &TWCC{BaseSeq: uint16(rng.Intn(1 << 16)), Packets: pkts}
		buf, err := fb.Marshal()
		if err != nil {
			return false
		}
		var g TWCC
		if err := g.Unmarshal(buf); err != nil {
			return false
		}
		if len(g.Packets) != count || g.BaseSeq != fb.BaseSeq {
			return false
		}
		for i := range pkts {
			if g.Packets[i].Received != pkts[i].Received {
				return false
			}
			if pkts[i].Received {
				d := g.Packets[i].At - pkts[i].At
				if d < -deltaUnit || d > deltaUnit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTWCCRecorderBasic(t *testing.T) {
	r := NewTWCCRecorder(10, 20)
	r.Record(100, 1*time.Millisecond)
	r.Record(101, 2*time.Millisecond)
	r.Record(103, 4*time.Millisecond) // 102 lost
	fb := r.Flush()
	if fb == nil {
		t.Fatal("Flush returned nil")
	}
	if fb.BaseSeq != 100 || len(fb.Packets) != 4 {
		t.Fatalf("base=%d n=%d", fb.BaseSeq, len(fb.Packets))
	}
	if !fb.Packets[0].Received || !fb.Packets[1].Received || fb.Packets[2].Received || !fb.Packets[3].Received {
		t.Errorf("status = %+v", fb.Packets)
	}
	if fb.SenderSSRC != 10 || fb.MediaSSRC != 20 {
		t.Errorf("ssrcs = %d/%d", fb.SenderSSRC, fb.MediaSSRC)
	}
}

func TestTWCCRecorderConsecutiveFlushes(t *testing.T) {
	r := NewTWCCRecorder(1, 2)
	r.Record(0, time.Millisecond)
	fb1 := r.Flush()
	if fb1.FbPktCount != 0 {
		t.Errorf("first FbPktCount = %d", fb1.FbPktCount)
	}
	if fb := r.Flush(); fb != nil {
		t.Error("second flush with no new packets should return nil")
	}
	r.Record(1, 2*time.Millisecond)
	fb2 := r.Flush()
	if fb2 == nil || fb2.BaseSeq != 1 || fb2.FbPktCount != 1 {
		t.Errorf("fb2 = %+v", fb2)
	}
}

func TestTWCCRecorderIgnoresAlreadyFlushed(t *testing.T) {
	r := NewTWCCRecorder(1, 2)
	r.Record(5, time.Millisecond)
	r.Flush()
	r.Record(3, 2*time.Millisecond) // before the flushed range
	if fb := r.Flush(); fb != nil {
		t.Errorf("stale packet produced feedback: %+v", fb)
	}
}

func TestTWCCRecorderSeqWrap(t *testing.T) {
	r := NewTWCCRecorder(1, 2)
	r.Record(65535, 1*time.Millisecond)
	r.Record(0, 2*time.Millisecond)
	r.Record(1, 3*time.Millisecond)
	fb := r.Flush()
	if fb == nil || fb.BaseSeq != 65535 || len(fb.Packets) != 3 {
		t.Fatalf("fb = %+v", fb)
	}
	for i, p := range fb.Packets {
		if !p.Received {
			t.Errorf("packet %d lost across wrap", i)
		}
	}
}

func TestCCFBRoundTrip(t *testing.T) {
	f := &CCFB{
		SenderSSRC: 7,
		Timestamp:  1234 * time.Millisecond,
		Reports: []CCFBReport{{
			SSRC:     9,
			BeginSeq: 500,
			Metrics: []CCFBMetric{
				{Received: true, ArrivalOffset: 30 * time.Millisecond},
				{},
				{Received: true, ECN: 2, ArrivalOffset: 5 * time.Millisecond},
			},
		}},
	}
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf)%4 != 0 {
		t.Fatalf("ccfb wire length %d not aligned", len(buf))
	}
	var g CCFB
	if err := g.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if g.SenderSSRC != 7 || len(g.Reports) != 1 {
		t.Fatalf("parsed = %+v", g)
	}
	if d := g.Timestamp - f.Timestamp; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("timestamp = %v, want ≈%v", g.Timestamp, f.Timestamp)
	}
	r := g.Reports[0]
	if r.SSRC != 9 || r.BeginSeq != 500 || len(r.Metrics) != 3 {
		t.Fatalf("report = %+v", r)
	}
	if !r.Metrics[0].Received || r.Metrics[1].Received || !r.Metrics[2].Received {
		t.Errorf("received flags = %+v", r.Metrics)
	}
	if r.Metrics[2].ECN != 2 {
		t.Errorf("ECN = %d", r.Metrics[2].ECN)
	}
	if d := r.Metrics[0].ArrivalOffset - 30*time.Millisecond; d < -atoUnit || d > atoUnit {
		t.Errorf("ATO = %v", r.Metrics[0].ArrivalOffset)
	}
}

func TestCCFBATOSaturates(t *testing.T) {
	f := &CCFB{Reports: []CCFBReport{{
		Metrics: []CCFBMetric{{Received: true, ArrivalOffset: time.Minute}},
	}}}
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var g CCFB
	if err := g.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(atoMax) * atoUnit
	if got := g.Reports[0].Metrics[0].ArrivalOffset; got != want {
		t.Errorf("saturated ATO = %v, want %v", got, want)
	}
}

func TestCCFBEmptyReportRejected(t *testing.T) {
	f := &CCFB{Reports: []CCFBReport{{}}}
	if _, err := f.Marshal(); err == nil {
		t.Error("report without metric blocks should be rejected")
	}
}

func TestCCFBOddMetricsPadding(t *testing.T) {
	f := &CCFB{Reports: []CCFBReport{{
		BeginSeq: 1,
		Metrics:  []CCFBMetric{{Received: true}},
	}}}
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var g CCFB
	if err := g.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if len(g.Reports[0].Metrics) != 1 {
		t.Errorf("metrics = %d, want 1 (padding must not add a block)", len(g.Reports[0].Metrics))
	}
}

// Property: CCFB round-trips received flags, ECN, and offsets (within one
// 1/1024 s unit) for arbitrary reports.
func TestPropertyCCFBRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%200 + 1
		rep := CCFBReport{SSRC: rng.Uint32(), BeginSeq: uint16(rng.Intn(1 << 16))}
		for i := 0; i < count; i++ {
			m := CCFBMetric{}
			if rng.Float64() < 0.8 {
				m.Received = true
				m.ECN = uint8(rng.Intn(4))
				m.ArrivalOffset = time.Duration(rng.Intn(8000)) * time.Millisecond
			}
			rep.Metrics = append(rep.Metrics, m)
		}
		fb := &CCFB{SenderSSRC: rng.Uint32(), Reports: []CCFBReport{rep}, Timestamp: time.Duration(rng.Intn(60000)) * time.Millisecond}
		buf, err := fb.Marshal()
		if err != nil {
			return false
		}
		var g CCFB
		if err := g.Unmarshal(buf); err != nil {
			return false
		}
		if len(g.Reports) != 1 || len(g.Reports[0].Metrics) != count {
			return false
		}
		for i, m := range g.Reports[0].Metrics {
			want := rep.Metrics[i]
			if m.Received != want.Received {
				return false
			}
			if m.Received {
				if m.ECN != want.ECN {
					return false
				}
				d := m.ArrivalOffset - want.ArrivalOffset
				if d < -atoUnit || d > atoUnit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCCFBGeneratorCoversWindow(t *testing.T) {
	g := NewCCFBGenerator(1, 2, 8)
	for i := 0; i < 20; i++ {
		g.Record(uint16(i), time.Duration(i)*time.Millisecond)
	}
	fb := g.Report(100 * time.Millisecond)
	if fb == nil {
		t.Fatal("nil report")
	}
	rep := fb.Reports[0]
	if rep.BeginSeq != 12 || len(rep.Metrics) != 8 {
		t.Fatalf("begin=%d n=%d, want 12 and 8", rep.BeginSeq, len(rep.Metrics))
	}
	for i, m := range rep.Metrics {
		if !m.Received {
			t.Errorf("metric %d not received", i)
		}
	}
}

// TestCCFBGeneratorAckWindowDefect reproduces the §4.2.1 finding: with the
// library's 64-packet window and 10 ms reports, packets that arrive faster
// than 6.4 packets/ms fall out of the window before ever being acknowledged.
func TestCCFBGeneratorAckWindowDefect(t *testing.T) {
	g := NewCCFBGenerator(1, 2, 64)
	// 100 packets arrive between two reports (≈ a 12 Mbps burst).
	for i := 0; i < 100; i++ {
		g.Record(uint16(i), time.Duration(i)*100*time.Microsecond)
	}
	fb := g.Report(10 * time.Millisecond)
	rep := fb.Reports[0]
	if rep.BeginSeq != 36 {
		t.Errorf("BeginSeq = %d, want 36: packets 0..35 are never acknowledged", rep.BeginSeq)
	}
	// The widened 256-packet window covers everything.
	g2 := NewCCFBGenerator(1, 2, 256)
	for i := 0; i < 100; i++ {
		g2.Record(uint16(i), time.Duration(i)*100*time.Microsecond)
	}
	fb2 := g2.Report(10 * time.Millisecond)
	rep2 := fb2.Reports[0]
	received := 0
	for _, m := range rep2.Metrics {
		if m.Received {
			received++
		}
	}
	if received != 100 {
		t.Errorf("256-window report acknowledges %d packets, want all 100", received)
	}
}

func TestCCFBGeneratorNilBeforeFirstPacket(t *testing.T) {
	g := NewCCFBGenerator(1, 2, 64)
	if fb := g.Report(time.Second); fb != nil {
		t.Error("report before any packet should be nil")
	}
}

func TestCCFBGeneratorTrimsHistory(t *testing.T) {
	g := NewCCFBGenerator(1, 2, 16)
	for i := 0; i < 1000; i++ {
		g.Record(uint16(i), time.Duration(i)*time.Millisecond)
	}
	if len(g.arrivals) > 4*16 {
		t.Errorf("arrivals grew to %d, want bounded by %d", len(g.arrivals), 4*16)
	}
}

func TestNTP32RoundTrip(t *testing.T) {
	for _, d := range []time.Duration{0, time.Millisecond, time.Second, 90 * time.Minute} {
		got := fromNTP32(ntp32(d))
		if diff := got - d; diff < -time.Millisecond || diff > time.Millisecond {
			t.Errorf("ntp32 round trip of %v = %v", d, got)
		}
	}
}
