package rtp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSenderReportRoundTrip(t *testing.T) {
	sr := &SenderReport{
		SSRC:        0xAA,
		NTPTime:     90*time.Second + 123456*time.Microsecond,
		RTPTime:     90 * VideoClockRate,
		PacketCount: 1000,
		OctetCount:  1_000_000,
	}
	buf, err := sr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf)%4 != 0 {
		t.Errorf("SR length %d not aligned", len(buf))
	}
	var g SenderReport
	if err := g.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if g.SSRC != sr.SSRC || g.RTPTime != sr.RTPTime || g.PacketCount != 1000 || g.OctetCount != 1_000_000 {
		t.Errorf("round trip: %+v", g)
	}
	if d := g.NTPTime - sr.NTPTime; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("NTP time %v, want ≈%v", g.NTPTime, sr.NTPTime)
	}
}

func TestSenderReportRejectsWrongType(t *testing.T) {
	rr := &ReceiverReport{SSRC: 1}
	buf, err := rr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var sr SenderReport
	if err := sr.Unmarshal(buf); err == nil {
		t.Error("SR parser accepted an RR")
	}
}

func TestReceiverReportRoundTrip(t *testing.T) {
	rr := &ReceiverReport{
		SSRC: 7,
		Blocks: []ReportBlock{{
			SSRC:             9,
			FractionLost:     25,
			CumulativeLost:   321,
			HighestSeq:       1<<16 | 55,
			Jitter:           450,
			LastSR:           0xABCD1234,
			DelaySinceLastSR: 6553,
		}},
	}
	buf, err := rr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var g ReceiverReport
	if err := g.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 1 || g.Blocks[0] != rr.Blocks[0] || g.SSRC != 7 {
		t.Errorf("round trip: %+v", g)
	}
}

func TestReceiverReportBlockLimit(t *testing.T) {
	rr := &ReceiverReport{Blocks: make([]ReportBlock, 32)}
	if _, err := rr.Marshal(); err == nil {
		t.Error("32 blocks should be rejected")
	}
}

func TestReceptionStatsLossAccounting(t *testing.T) {
	rs := NewReceptionStats(9, VideoClockRate)
	// 100 packets, drop every 10th.
	at := time.Duration(0)
	for i := 0; i < 100; i++ {
		if i%10 == 9 {
			continue
		}
		at += time.Millisecond
		rs.Record(uint16(1000+i), uint32(i*3000), at)
	}
	b := rs.Block()
	// Packet 1099's loss is not yet knowable (nothing higher arrived): 9
	// of the 10 drops are visible in this interval.
	if b.CumulativeLost != 9 {
		t.Errorf("CumulativeLost = %d, want 9", b.CumulativeLost)
	}
	wantFrac := uint8(9 * 256 / 99)
	if b.FractionLost < wantFrac-3 || b.FractionLost > wantFrac+3 {
		t.Errorf("FractionLost = %d, want ≈%d", b.FractionLost, wantFrac)
	}
	if b.HighestSeq != 1000+98 {
		t.Errorf("HighestSeq = %d", b.HighestSeq)
	}
	// A second loss-free interval: the trailing drop becomes visible
	// (cumulative 10) and the interval fraction returns near zero.
	for i := 100; i < 200; i++ {
		at += time.Millisecond
		rs.Record(uint16(1000+i), uint32(i*3000), at)
	}
	b2 := rs.Block()
	if b2.FractionLost > 3 {
		t.Errorf("interval FractionLost = %d, want ≈0", b2.FractionLost)
	}
	if b2.CumulativeLost != 10 {
		t.Errorf("CumulativeLost = %d, want 10", b2.CumulativeLost)
	}
}

func TestReceptionStatsSequenceWrap(t *testing.T) {
	rs := NewReceptionStats(9, VideoClockRate)
	rs.Record(65534, 0, time.Millisecond)
	rs.Record(65535, 3000, 2*time.Millisecond)
	rs.Record(0, 6000, 3*time.Millisecond)
	rs.Record(1, 9000, 4*time.Millisecond)
	if got := rs.ExtendedHighest(); got != 1<<16|1 {
		t.Errorf("ExtendedHighest = %#x, want %#x", got, 1<<16|1)
	}
	if b := rs.Block(); b.CumulativeLost != 0 {
		t.Errorf("loss across wrap = %d", b.CumulativeLost)
	}
}

func TestJitterZeroForPerfectTiming(t *testing.T) {
	rs := NewReceptionStats(9, VideoClockRate)
	// Packets arriving exactly in sync with their media clock.
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 33333 * time.Microsecond
		rtpTime := uint32(float64(at) / float64(time.Second) * VideoClockRate)
		rs.Record(uint16(i), rtpTime, at)
	}
	if j := rs.Jitter(); j > time.Millisecond {
		t.Errorf("jitter = %v for perfect timing, want ≈0", j)
	}
}

func TestJitterGrowsWithVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs := NewReceptionStats(9, VideoClockRate)
	for i := 0; i < 500; i++ {
		ideal := time.Duration(i) * 33333 * time.Microsecond
		at := ideal + time.Duration(rng.Intn(20))*time.Millisecond
		rtpTime := uint32(float64(ideal) / float64(time.Second) * VideoClockRate)
		rs.Record(uint16(i), rtpTime, at)
	}
	j := rs.Jitter()
	if j < 2*time.Millisecond || j > 30*time.Millisecond {
		t.Errorf("jitter = %v under ±20 ms arrival noise", j)
	}
}

// Property: receiver reports round-trip for arbitrary block values.
func TestPropertyReceiverReportRoundTrip(t *testing.T) {
	f := func(ssrc uint32, frac uint8, lost uint32, highest, jitter, lastSR, dlsr uint32, n uint8) bool {
		blocks := int(n % 31)
		rr := &ReceiverReport{SSRC: ssrc}
		for i := 0; i < blocks; i++ {
			rr.Blocks = append(rr.Blocks, ReportBlock{
				SSRC:             ssrc + uint32(i),
				FractionLost:     frac,
				CumulativeLost:   lost & 0xFFFFFF,
				HighestSeq:       highest,
				Jitter:           jitter,
				LastSR:           lastSR,
				DelaySinceLastSR: dlsr,
			})
		}
		buf, err := rr.Marshal()
		if err != nil {
			return false
		}
		var g ReceiverReport
		if err := g.Unmarshal(buf); err != nil {
			return false
		}
		if g.SSRC != rr.SSRC || len(g.Blocks) != blocks {
			return false
		}
		for i := range rr.Blocks {
			if g.Blocks[i] != rr.Blocks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
