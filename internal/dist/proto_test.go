package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestProtoRoundTrip(t *testing.T) {
	msgs := []*Msg{
		{T: MsgHello, Proto: ProtoVersion, Spec: json.RawMessage(`{"scenario":"urban-gcc"}`)},
		{T: MsgReady, Proto: ProtoVersion},
		{T: MsgGrant, Chunk: 3, Start: 12, Count: 4},
		{T: MsgBeat, Chunk: 3, Done: 2},
		{T: MsgShard, Chunk: 3, Run: 13, Payload: json.RawMessage(`{"v":1.5}`)},
		{T: MsgShard, Chunk: 3, Run: 14, Err: "run 14 panicked: boom"},
		{T: MsgChunkDone, Chunk: 3},
		{T: MsgShutdown},
	}
	var buf bytes.Buffer
	enc := newEncoder(&buf)
	for _, m := range msgs {
		if err := enc.send(m); err != nil {
			t.Fatalf("send %s: %v", m.T, err)
		}
	}
	dec := newDecoder(&buf)
	for i, want := range msgs {
		got, err := dec.next()
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		w, _ := json.Marshal(want)
		g, _ := json.Marshal(got)
		if !bytes.Equal(w, g) {
			t.Fatalf("message %d: got %s, want %s", i, g, w)
		}
	}
	if _, err := dec.next(); err != io.EOF {
		t.Fatalf("expected io.EOF after the last message, got %v", err)
	}
}

func TestProtoLargePayload(t *testing.T) {
	// Trace payloads can run to megabytes; the decoder must not impose a
	// token-size ceiling.
	big := json.RawMessage(`"` + strings.Repeat("x", 4<<20) + `"`)
	var buf bytes.Buffer
	if err := newEncoder(&buf).send(&Msg{T: MsgShard, Run: 1, Payload: big}); err != nil {
		t.Fatalf("send: %v", err)
	}
	m, err := newDecoder(&buf).next()
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	if len(m.Payload) != len(big) {
		t.Fatalf("payload length %d, want %d", len(m.Payload), len(big))
	}
}

func TestProtoDecodeErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"truncated", `{"t":"beat"`, "truncated"},
		{"malformed", "not json at all\n", "malformed"},
		{"untyped", `{"chunk":1}` + "\n", "without a type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := newDecoder(strings.NewReader(tc.in)).next()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// driveWorker runs Serve over in-memory pipes and returns the
// coordinator-side encoder/decoder plus the Serve exit channel.
func driveWorker(t *testing.T, runner Runner) (*encoder, *decoder, chan error) {
	t.Helper()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := Serve(inR, outW, runner)
		outW.Close()
		done <- err
	}()
	t.Cleanup(func() {
		inW.Close()
		outR.Close()
	})
	return newEncoder(inW), newDecoder(outR), done
}

func TestServeExecutesGrant(t *testing.T) {
	runner := RunnerFunc(func(spec json.RawMessage, run int) ([]byte, error) {
		if run == 6 {
			return nil, fmt.Errorf("run %d refused", run)
		}
		if run == 7 {
			panic("kaboom")
		}
		return []byte(fmt.Sprintf(`{"spec":%s,"run":%d}`, spec, run)), nil
	})
	enc, dec, done := driveWorker(t, runner)

	if err := enc.send(&Msg{T: MsgHello, Proto: ProtoVersion, Spec: json.RawMessage(`"s"`)}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if m, err := dec.next(); err != nil || m.T != MsgReady {
		t.Fatalf("expected ready, got %v / %v", m, err)
	}
	if err := enc.send(&Msg{T: MsgGrant, Chunk: 2, Start: 5, Count: 3}); err != nil {
		t.Fatalf("grant: %v", err)
	}

	var shards []*Msg
	beats := 0
	for {
		m, err := dec.next()
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if m.T == MsgChunkDone {
			if m.Chunk != 2 {
				t.Fatalf("chunk_done for %d, want 2", m.Chunk)
			}
			break
		}
		switch m.T {
		case MsgBeat:
			beats++
		case MsgShard:
			shards = append(shards, m)
		}
	}
	if len(shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(shards))
	}
	if beats != 4 { // lease ack + one per run
		t.Fatalf("got %d beats, want 4", beats)
	}
	if string(shards[0].Payload) != `{"spec":"s","run":5}` {
		t.Fatalf("run 5 payload: %s", shards[0].Payload)
	}
	if shards[1].Err == "" || !strings.Contains(shards[1].Err, "refused") {
		t.Fatalf("run 6 should be an error shard, got %+v", shards[1])
	}
	if shards[2].Err == "" || !strings.Contains(shards[2].Err, "panicked: kaboom") {
		t.Fatalf("run 7 panic should be an error shard, got %+v", shards[2])
	}

	if err := enc.send(&Msg{T: MsgShutdown}); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

func TestServeRejectsVersionMismatch(t *testing.T) {
	enc, _, done := driveWorker(t, RunnerFunc(func(json.RawMessage, int) ([]byte, error) { return nil, nil }))
	if err := enc.send(&Msg{T: MsgHello, Proto: ProtoVersion + 1}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("got %v, want version mismatch", err)
	}
}
