package dist

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"rpivideo/internal/obs"
)

// captureSink records every published snapshot, standing in for the
// telemetry hub without the HTTP layer.
type captureSink struct {
	mu    sync.Mutex
	snaps []obs.StatusSnapshot
	regs  int
}

func (c *captureSink) PublishStatus(s obs.StatusSnapshot) {
	c.mu.Lock()
	c.snaps = append(c.snaps, s)
	c.mu.Unlock()
}

func (c *captureSink) ObserveRun(*obs.Registry) {
	c.mu.Lock()
	c.regs++
	c.mu.Unlock()
}

// TestCoordinatorStatusSink: the coordinator publishes progress snapshots
// from the first loop iteration through a terminal Done snapshot, with the
// worker table tracking the lease state machine.
func TestCoordinatorStatusSink(t *testing.T) {
	spec := json.RawMessage(`"status"`)
	const runs, workers = 8, 3
	peers := make([]Peer, workers)
	for i := range peers {
		peers[i] = StartPipe(fmt.Sprintf("w%d", i), okRunner())
	}
	sink := &captureSink{}
	out, err := Run(spec, Config{Runs: runs, ChunkSize: 2, Status: sink}, peers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	requireSerialEquivalence(t, spec, runs, out)

	sink.mu.Lock()
	snaps := sink.snaps
	sink.mu.Unlock()
	if len(snaps) < 2 {
		t.Fatalf("published %d snapshots, want at least an initial and a terminal one", len(snaps))
	}
	first, last := snaps[0], snaps[len(snaps)-1]
	if first.Done {
		t.Error("initial snapshot already Done")
	}
	if !last.Done {
		t.Errorf("terminal snapshot not Done: %+v", last)
	}
	if last.RunsDone != runs || last.RunsTotal != runs {
		t.Errorf("terminal progress %d/%d, want %d/%d", last.RunsDone, last.RunsTotal, runs, runs)
	}
	if last.RunErrors != 0 {
		t.Errorf("terminal run errors %d, want 0", last.RunErrors)
	}
	validStates := map[string]bool{"starting": true, "idle": true, "busy": true, "straggler": true, "dead": true}
	for _, s := range snaps {
		if s.Mode != "dist" {
			t.Fatalf("snapshot mode %q, want dist", s.Mode)
		}
		if s.SimRate != 0 {
			t.Fatalf("dist snapshot claims a sim rate (%g); shard payloads are opaque", s.SimRate)
		}
		if len(s.Workers) != workers {
			t.Fatalf("snapshot has %d workers, want %d", len(s.Workers), workers)
		}
		for _, w := range s.Workers {
			if !validStates[w.State] {
				t.Fatalf("worker %d in unknown state %q", w.Worker, w.State)
			}
		}
		if s.RunsDone < 0 || s.RunsDone > runs {
			t.Fatalf("runs done %d outside [0, %d]", s.RunsDone, runs)
		}
	}
}

// TestCoordinatorStatusRunErrors: failed runs surface in the terminal
// snapshot's run_errors count.
func TestCoordinatorStatusRunErrors(t *testing.T) {
	spec := json.RawMessage(`"status-err"`)
	const runs = 4
	runner := RunnerFunc(func(spec json.RawMessage, run int) ([]byte, error) {
		if run == 2 {
			return nil, fmt.Errorf("boom on run %d", run)
		}
		return testPayload(spec, run), nil
	})
	sink := &captureSink{}
	out, err := Run(spec, Config{Runs: runs, ChunkSize: 1, Status: sink}, []Peer{StartPipe("w0", runner)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.RunErrs[2] == nil {
		t.Fatal("run 2 should have errored")
	}
	sink.mu.Lock()
	last := sink.snaps[len(sink.snaps)-1]
	sink.mu.Unlock()
	if last.RunErrors != 1 {
		t.Errorf("terminal run_errors = %d, want 1", last.RunErrors)
	}
	if !last.Done || last.RunsDone != runs {
		t.Errorf("terminal snapshot %+v, want done %d/%d (errored runs still complete)", last, runs, runs)
	}
}
