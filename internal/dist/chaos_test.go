package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"testing"
	"time"

	"rpivideo/internal/obs"
)

// chaosWorkerEnv gates the re-exec: when set, the test binary is a worker
// process, not a test runner.
const chaosWorkerEnv = "RPIVIDEO_DIST_TEST_WORKER"

// chaosSpec is the campaign spec the chaos worker interprets.
type chaosSpec struct {
	Seed uint64 `json:"seed"`
}

// chaosMix is a splitmix64 step: a cheap deterministic payload function
// whose output depends on every bit of (seed, run).
func chaosMix(seed uint64, run int) uint64 {
	z := seed + uint64(run)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chaosRunner is the worker-side Runner for the chaos tests.
var chaosRunner = RunnerFunc(func(spec json.RawMessage, run int) ([]byte, error) {
	var s chaosSpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return nil, fmt.Errorf("bad spec: %w", err)
	}
	// A touch of real work so a campaign spans long enough for the chaos
	// goroutine to land its kills mid-flight.
	time.Sleep(2 * time.Millisecond)
	return []byte(fmt.Sprintf(`{"run":%d,"v":"%016x"}`, run, chaosMix(s.Seed, run))), nil
})

// TestMain re-execs the test binary as a protocol worker when the gate
// variable is set; otherwise it runs the tests normally.
func TestMain(m *testing.M) {
	if os.Getenv(chaosWorkerEnv) == "1" {
		if err := Serve(os.Stdin, os.Stdout, chaosRunner); err != nil {
			fmt.Fprintln(os.Stderr, "dist test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startChaosWorkers launches n re-exec'd worker subprocesses and returns
// the peers plus their pids (for out-of-band SIGKILL).
func startChaosWorkers(t *testing.T, n int) ([]Peer, []int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	peers, err := StartProcs(n, func(i int) *exec.Cmd {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), chaosWorkerEnv+"=1")
		return cmd
	})
	if err != nil {
		t.Fatalf("StartProcs: %v", err)
	}
	pids := make([]int, n)
	for i, p := range peers {
		pids[i] = p.(*ProcPeer).cmd.Process.Pid
	}
	t.Cleanup(func() {
		for _, p := range peers {
			p.Kill()
			p.Close()
		}
	})
	return peers, pids
}

// expectedShards computes the serial reference output in-process.
func expectedShards(seed uint64, runs int) [][]byte {
	out := make([][]byte, runs)
	for run := 0; run < runs; run++ {
		out[run] = []byte(fmt.Sprintf(`{"run":%d,"v":"%016x"}`, run, chaosMix(seed, run)))
	}
	return out
}

func requireByteIdentical(t *testing.T, want [][]byte, out *Outcome) {
	t.Helper()
	if err := out.Err(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	for run := range want {
		if out.RunErrs[run] != nil {
			t.Fatalf("run %d errored: %v", run, out.RunErrs[run])
		}
		if !bytes.Equal(out.Shards[run], want[run]) {
			t.Fatalf("run %d diverged:\n got %s\nwant %s", run, out.Shards[run], want[run])
		}
	}
}

// runChaosCampaign executes a subprocess campaign, SIGKILLing the worker
// processes listed in kills as chunk completions land, and returns the
// outcome and metrics.
func runChaosCampaign(t *testing.T, workers, runs, chunk int, seed uint64, kills []int) (*Outcome, *obs.Registry) {
	t.Helper()
	peers, pids := startChaosWorkers(t, workers)

	// The chaos injector: each configured kill fires after one more chunk
	// has been committed, so workers die mid-campaign with work in flight —
	// SIGKILL straight to the pid, not through the coordinator's Peer.
	var mu sync.Mutex
	next := 0
	events := func(e Event) {
		if e.Kind != EvChunkDone {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if next < len(kills) {
			syscall.Kill(pids[kills[next]], syscall.SIGKILL)
			next++
		}
	}

	reg := obs.NewRegistry()
	spec, _ := json.Marshal(chaosSpec{Seed: seed})
	out, err := Run(spec, Config{
		Runs: runs, ChunkSize: chunk,
		Lease: 5 * time.Second, Backoff: 2 * time.Millisecond, BackoffMax: 10 * time.Millisecond,
		RetryCap: 6, Metrics: reg, Events: events,
	}, peers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	fired := next
	mu.Unlock()
	if fired != len(kills) {
		t.Fatalf("only %d of %d chaos kills fired — campaign too short for the injection plan", fired, len(kills))
	}
	return out, reg
}

// TestChaosSIGKILLByteIdentical is the headline robustness proof: random
// worker processes are SIGKILLed mid-campaign and the report bundle must
// still be byte-identical to the serial reference — at two different
// (worker count, chunk size) topologies.
func TestChaosSIGKILLByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short mode")
	}
	cases := []struct {
		name                 string
		workers, runs, chunk int
		seed                 uint64
		kills                []int
	}{
		{name: "w4_c2_kill2", workers: 4, runs: 24, chunk: 2, seed: 0xc0ffee, kills: []int{1, 3}},
		{name: "w3_c1_kill1", workers: 3, runs: 18, chunk: 1, seed: 0xdecade, kills: []int{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, reg := runChaosCampaign(t, tc.workers, tc.runs, tc.chunk, tc.seed, tc.kills)
			requireByteIdentical(t, expectedShards(tc.seed, tc.runs), out)
			if lost := reg.Counter("dist_workers_lost"); lost != int64(len(tc.kills)) {
				t.Fatalf("dist_workers_lost = %d, want %d", lost, len(tc.kills))
			}
			if n := reg.Counter("dist_leases_reissued"); n < 1 {
				t.Fatalf("dist_leases_reissued = %d, want >= 1 after SIGKILLs", n)
			}
			if done := reg.Counter("dist_chunks_completed"); done != reg.Counter("dist_chunks") {
				t.Fatalf("completed %d of %d chunks", done, reg.Counter("dist_chunks"))
			}
		})
	}
}

// TestChaosCleanRunReissuesNothing pins the control: with no chaos, the
// same subprocess topology completes with zero reissues and zero losses.
func TestChaosCleanRunReissuesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	out, reg := runChaosCampaign(t, 3, 12, 2, 0xfeed, nil)
	requireByteIdentical(t, expectedShards(0xfeed, 12), out)
	for _, zero := range []string{"dist_leases_reissued", "dist_workers_lost", "dist_lease_expiries", "dist_stragglers_killed", "dist_chunks_failed"} {
		if n := reg.Counter(zero); n != 0 {
			t.Fatalf("%s = %d, want 0 in a clean run", zero, n)
		}
	}
}
