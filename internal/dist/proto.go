package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// ProtoVersion is the wire protocol version. The hello/ready handshake
// pins it on both sides; a mismatch is a hard error, never a silent
// reinterpretation of run indices.
const ProtoVersion = 1

// Message types. The protocol is deliberately tiny: JSON objects, one per
// line, over any ordered byte stream — subprocess pipes here, TCP later.
const (
	// MsgHello (coordinator → worker) opens a session: Proto pins the
	// protocol version and Spec carries the opaque campaign spec the
	// worker's Runner interprets.
	MsgHello = "hello"
	// MsgReady (worker → coordinator) acknowledges the hello.
	MsgReady = "ready"
	// MsgGrant (coordinator → worker) leases one chunk: runs
	// [Start, Start+Count) under chunk id Chunk.
	MsgGrant = "grant"
	// MsgBeat (worker → coordinator) is a heartbeat for Chunk with Done
	// runs completed so far. Only beats that advance Done extend the
	// lease — a wedged worker's idle heartbeats do not keep its chunk.
	MsgBeat = "beat"
	// MsgShard (worker → coordinator) carries one run's result: Payload
	// on success, Err on a per-run failure. A shard is also progress and
	// extends the lease.
	MsgShard = "shard"
	// MsgChunkDone (worker → coordinator) closes a chunk: every run in it
	// has been shipped as a shard.
	MsgChunkDone = "chunk_done"
	// MsgShutdown (coordinator → worker) ends the session; the worker's
	// Serve loop returns cleanly.
	MsgShutdown = "shutdown"
)

// Msg is one protocol message. A single struct covers every type; unused
// fields stay at their zero values and are omitted from the wire.
type Msg struct {
	T string `json:"t"`

	// Hello/ready.
	Proto int             `json:"proto,omitempty"`
	Spec  json.RawMessage `json:"spec,omitempty"`

	// Chunk identification (grant, beat, shard, chunk_done).
	Chunk int `json:"chunk,omitempty"`
	Start int `json:"start,omitempty"`
	Count int `json:"count,omitempty"`

	// Beat progress.
	Done int `json:"done,omitempty"`

	// Shard body.
	Run     int             `json:"run,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Err     string          `json:"err,omitempty"`
}

// encoder writes newline-delimited JSON messages. Writes are mutex-guarded
// so lifecycle paths (shutdown) may race the grant path safely.
type encoder struct {
	mu sync.Mutex
	w  *bufio.Writer
}

func newEncoder(w io.Writer) *encoder {
	return &encoder{w: bufio.NewWriter(w)}
}

// send marshals one message and flushes it.
func (e *encoder) send(m *Msg) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: encoding %s: %w", m.T, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.w.Write(data); err != nil {
		return err
	}
	if err := e.w.WriteByte('\n'); err != nil {
		return err
	}
	return e.w.Flush()
}

// decoder reads newline-delimited JSON messages. bufio.Reader.ReadBytes
// has no token-size ceiling, so shard payloads (a traced run's JSONL can
// run to megabytes) need no tuning.
type decoder struct {
	r *bufio.Reader
}

func newDecoder(r io.Reader) *decoder {
	return &decoder{r: bufio.NewReader(r)}
}

// next reads one message. io.EOF reports a cleanly closed stream; a
// truncated final line or malformed JSON is an error.
func (d *decoder) next() (*Msg, error) {
	line, err := d.r.ReadBytes('\n')
	if err != nil {
		if err == io.EOF && len(line) == 0 {
			return nil, io.EOF
		}
		if err == io.EOF {
			return nil, fmt.Errorf("dist: stream truncated mid-message")
		}
		return nil, err
	}
	m := new(Msg)
	if err := json.Unmarshal(line, m); err != nil {
		return nil, fmt.Errorf("dist: malformed message: %w", err)
	}
	if m.T == "" {
		return nil, fmt.Errorf("dist: message without a type")
	}
	return m, nil
}
