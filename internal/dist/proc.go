package dist

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// procGrace bounds how long Close waits for a worker process to exit after
// its stdin closes before escalating to SIGKILL. A healthy worker exits as
// soon as its Serve loop sees EOF; a wedged one must not hang the
// coordinator's shutdown.
const procGrace = 5 * time.Second

// ProcPeer is a worker subprocess speaking the protocol over its
// stdin/stdout pipes. Stderr passes through to the coordinator's stderr so
// worker diagnostics stay human-visible without touching the protocol
// stream.
type ProcPeer struct {
	name  string
	cmd   *exec.Cmd
	stdin io.WriteCloser
	enc   *encoder
	dec   *decoder

	waitOnce  sync.Once
	waitErr   error
	closeOnce sync.Once
	killOnce  sync.Once
}

// StartProc launches cmd as a worker: stdin/stdout are claimed for the
// protocol (the command must not be pre-wired), stderr is inherited unless
// the caller set it. The command is started before returning.
func StartProc(name string, cmd *exec.Cmd) (*ProcPeer, error) {
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s stdin: %w", name, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s stdout: %w", name, err)
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: starting worker %s: %w", name, err)
	}
	return &ProcPeer{
		name:  name,
		cmd:   cmd,
		stdin: stdin,
		enc:   newEncoder(stdin),
		dec:   newDecoder(stdout),
	}, nil
}

// StartProcs launches n workers built by the factory (called with the
// worker index). On any start failure the already-started workers are
// killed and the error returned.
func StartProcs(n int, build func(i int) *exec.Cmd) ([]Peer, error) {
	peers := make([]Peer, n)
	for i := 0; i < n; i++ {
		p, err := StartProc(fmt.Sprintf("worker-%d", i), build(i))
		if err != nil {
			for _, q := range peers[:i] {
				q.Kill()
				q.Close()
			}
			return nil, err
		}
		peers[i] = p
	}
	return peers, nil
}

// Pid returns the worker process id (for out-of-band fault injection in
// chaos tests).
func (p *ProcPeer) Pid() int {
	if p.cmd.Process == nil {
		return -1
	}
	return p.cmd.Process.Pid
}

// Send implements Peer.
func (p *ProcPeer) Send(m *Msg) error { return p.enc.send(m) }

// Recv implements Peer. It unblocks with an error once the process exits
// (its stdout pipe reaches EOF).
func (p *ProcPeer) Recv() (*Msg, error) { return p.dec.next() }

// Kill implements Peer: SIGKILL. The dying process closes its stdout,
// which unblocks a pending Recv; the zombie is reaped by Close.
func (p *ProcPeer) Kill() error {
	var err error
	p.killOnce.Do(func() {
		if p.cmd.Process != nil {
			err = p.cmd.Process.Kill()
		}
	})
	return err
}

// Close implements Peer: stdin is closed so a healthy worker's Serve loop
// returns on EOF and the process exits; after procGrace a survivor is
// killed. The process is always reaped before Close returns.
func (p *ProcPeer) Close() error {
	p.closeOnce.Do(func() {
		p.stdin.Close()
		escalate := time.AfterFunc(procGrace, func() { p.Kill() })
		p.waitOnce.Do(func() { p.waitErr = p.cmd.Wait() })
		escalate.Stop()
	})
	return p.waitErr
}

// String implements Peer.
func (p *ProcPeer) String() string {
	pid := -1
	if p.cmd.Process != nil {
		pid = p.cmd.Process.Pid
	}
	return fmt.Sprintf("proc:%s(pid %d)", p.name, pid)
}
