package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"rpivideo/internal/obs"
)

// testPayload is the deterministic shard a well-behaved test runner
// produces for one run.
func testPayload(spec json.RawMessage, run int) []byte {
	return []byte(fmt.Sprintf(`{"spec":%s,"run":%d,"v":%d}`, spec, run, run*run+7))
}

func okRunner() Runner {
	return RunnerFunc(func(spec json.RawMessage, run int) ([]byte, error) {
		return testPayload(spec, run), nil
	})
}

// requireSerialEquivalence asserts the outcome matches a serial execution
// of the runner byte for byte.
func requireSerialEquivalence(t *testing.T, spec json.RawMessage, runs int, out *Outcome) {
	t.Helper()
	if len(out.Shards) != runs || len(out.RunErrs) != runs {
		t.Fatalf("outcome sized %d/%d, want %d", len(out.Shards), len(out.RunErrs), runs)
	}
	for run := 0; run < runs; run++ {
		if out.RunErrs[run] != nil {
			t.Fatalf("run %d errored: %v", run, out.RunErrs[run])
		}
		if want := testPayload(spec, run); !bytes.Equal(out.Shards[run], want) {
			t.Fatalf("run %d: got %s, want %s", run, out.Shards[run], want)
		}
	}
}

func TestMergeEquivalenceAcrossTopologies(t *testing.T) {
	spec := json.RawMessage(`"eqv"`)
	const runs = 10
	cases := []struct{ workers, chunk int }{
		{1, runs}, // degenerate: one worker, one chunk
		{3, 2},
		{5, 1},
		{4, 3}, // ragged tail chunk
		{2, 0}, // default chunk sizing
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("w%d_c%d", tc.workers, tc.chunk), func(t *testing.T) {
			peers := make([]Peer, tc.workers)
			for i := range peers {
				peers[i] = StartPipe(fmt.Sprintf("w%d", i), okRunner())
			}
			reg := obs.NewRegistry()
			out, err := Run(spec, Config{Runs: runs, ChunkSize: tc.chunk, Metrics: reg}, peers)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			requireSerialEquivalence(t, spec, runs, out)
			if n := reg.Counter("dist_leases_reissued"); n != 0 {
				t.Fatalf("clean campaign reissued %d leases, want 0", n)
			}
			if n := reg.Counter("dist_workers_lost"); n != 0 {
				t.Fatalf("clean campaign lost %d workers, want 0", n)
			}
			if got := reg.Counter("dist_shards_received"); got != runs {
				t.Fatalf("received %d shards, want %d", got, runs)
			}
		})
	}
}

func TestPerRunErrorsLandAtTheirIndices(t *testing.T) {
	spec := json.RawMessage(`"errs"`)
	bad := map[int]bool{2: true, 5: true}
	runner := RunnerFunc(func(spec json.RawMessage, run int) ([]byte, error) {
		if bad[run] {
			return nil, fmt.Errorf("run %d exploded", run)
		}
		if run == 6 {
			panic(fmt.Sprintf("run %d panicked hard", run))
		}
		return testPayload(spec, run), nil
	})
	peers := []Peer{StartPipe("w0", runner), StartPipe("w1", runner)}
	reg := obs.NewRegistry()
	out, err := Run(spec, Config{Runs: 8, ChunkSize: 2, Metrics: reg}, peers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for run := 0; run < 8; run++ {
		switch {
		case bad[run]:
			if out.RunErrs[run] == nil || !strings.Contains(out.RunErrs[run].Error(), "exploded") {
				t.Fatalf("run %d: want exploded error, got %v", run, out.RunErrs[run])
			}
		case run == 6:
			if out.RunErrs[run] == nil || !strings.Contains(out.RunErrs[run].Error(), "panicked") {
				t.Fatalf("run %d: want panic error, got %v", run, out.RunErrs[run])
			}
		default:
			if out.RunErrs[run] != nil || !bytes.Equal(out.Shards[run], testPayload(spec, run)) {
				t.Fatalf("run %d: unexpected %v / %s", run, out.RunErrs[run], out.Shards[run])
			}
		}
	}
	if n := reg.Counter("dist_run_errors"); n != 3 {
		t.Fatalf("dist_run_errors = %d, want 3", n)
	}
}

// crashRunner kills its own peer on its first run — the in-process
// analogue of a worker crashing mid-chunk — and signals the crash so the
// test can hold other workers back until it has happened.
type crashRunner struct {
	mu      sync.Mutex
	kill    func() error
	crashed chan struct{}
}

func (c *crashRunner) Run(spec json.RawMessage, run int) ([]byte, error) {
	c.mu.Lock()
	kill := c.kill
	var boom bool
	select {
	case <-c.crashed:
	default:
		boom = true
		close(c.crashed)
	}
	c.mu.Unlock()
	if boom {
		kill()
		return nil, errors.New("crashing")
	}
	return testPayload(spec, run), nil
}

func TestWorkerCrashReissuesChunk(t *testing.T) {
	spec := json.RawMessage(`"crash"`)
	const runs = 8
	cr := &crashRunner{crashed: make(chan struct{})}
	cr.mu.Lock()
	crashPeer := StartPipe("crasher", cr)
	cr.kill = crashPeer.Kill
	cr.mu.Unlock()
	// The steady worker refuses to produce anything until the crash has
	// happened, so the crasher is guaranteed a grant (and the campaign is
	// guaranteed to need a reissue) whatever order the workers come up in.
	steady := RunnerFunc(func(spec json.RawMessage, run int) ([]byte, error) {
		<-cr.crashed
		return testPayload(spec, run), nil
	})
	peers := []Peer{StartPipe("steady", steady), crashPeer}

	reg := obs.NewRegistry()
	out, err := Run(spec, Config{
		Runs: runs, ChunkSize: 2,
		Lease: 2 * time.Second, Backoff: time.Millisecond, BackoffMax: 5 * time.Millisecond,
		Metrics: reg,
	}, peers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	requireSerialEquivalence(t, spec, runs, out)
	if n := reg.Counter("dist_workers_lost"); n != 1 {
		t.Fatalf("dist_workers_lost = %d, want 1", n)
	}
	if n := reg.Counter("dist_leases_reissued"); n < 1 {
		t.Fatalf("dist_leases_reissued = %d, want >= 1", n)
	}
	if n := reg.Counter("dist_chunks_retried"); n < 1 {
		t.Fatalf("dist_chunks_retried = %d, want >= 1", n)
	}
}

// hangRunner blocks forever on the first execution of targetRun (until the
// test releases it); retries sail through.
type hangRunner struct {
	mu        sync.Mutex
	targetRun int
	hung      bool
	release   chan struct{}
}

func (h *hangRunner) Run(spec json.RawMessage, run int) ([]byte, error) {
	h.mu.Lock()
	hang := run == h.targetRun && !h.hung
	if hang {
		h.hung = true
	}
	h.mu.Unlock()
	if hang {
		<-h.release
		return nil, errors.New("was hung")
	}
	return testPayload(spec, run), nil
}

func TestHungWorkerLosesLeaseAndIsKilled(t *testing.T) {
	spec := json.RawMessage(`"hang"`)
	const runs = 6
	hr := &hangRunner{targetRun: 1, release: make(chan struct{})}
	defer close(hr.release)
	peers := []Peer{StartPipe("w0", hr), StartPipe("w1", hr)}

	var mu sync.Mutex
	var kinds []EventKind
	reg := obs.NewRegistry()
	out, err := Run(spec, Config{
		Runs: runs, ChunkSize: 2,
		Lease: 80 * time.Millisecond, Backoff: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		Metrics: reg,
		Events: func(e Event) {
			mu.Lock()
			kinds = append(kinds, e.Kind)
			mu.Unlock()
		},
	}, peers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	requireSerialEquivalence(t, spec, runs, out)
	if n := reg.Counter("dist_lease_expiries"); n != 1 {
		t.Fatalf("dist_lease_expiries = %d, want 1", n)
	}
	if n := reg.Counter("dist_stragglers_killed"); n != 1 {
		t.Fatalf("dist_stragglers_killed = %d, want 1", n)
	}
	mu.Lock()
	defer mu.Unlock()
	seen := map[EventKind]bool{}
	for _, k := range kinds {
		seen[k] = true
	}
	for _, want := range []EventKind{EvLeaseExpired, EvStragglerKilled, EvGrant, EvChunkDone} {
		if !seen[want] {
			t.Fatalf("event %v never fired (saw %v)", want, kinds)
		}
	}
}

// fakePeer is a hand-scripted worker for coordinator unit tests: the test
// plays the worker side directly over channels.
type fakePeer struct {
	name string
	in   chan *Msg // coordinator → worker script
	out  chan *Msg // worker script → coordinator
	dead chan struct{}
	once sync.Once
}

func newFakePeer(name string) *fakePeer {
	return &fakePeer{name: name, in: make(chan *Msg, 64), out: make(chan *Msg, 64), dead: make(chan struct{})}
}

func (p *fakePeer) Send(m *Msg) error {
	select {
	case p.in <- m:
		return nil
	case <-p.dead:
		return io.ErrClosedPipe
	}
}

func (p *fakePeer) Recv() (*Msg, error) {
	select {
	case m := <-p.out:
		return m, nil
	default:
	}
	select {
	case m := <-p.out:
		return m, nil
	case <-p.dead:
		return nil, io.EOF
	}
}

func (p *fakePeer) Kill() error  { p.once.Do(func() { close(p.dead) }); return nil }
func (p *fakePeer) Close() error { p.once.Do(func() { close(p.dead) }); return nil }
func (p *fakePeer) String() string {
	return "fake:" + p.name
}

// silentWorker acks the handshake then swallows every grant without
// progress — the canonical wedged worker.
func silentWorker(p *fakePeer) {
	go func() {
		for {
			select {
			case m := <-p.in:
				switch m.T {
				case MsgHello:
					p.out <- &Msg{T: MsgReady, Proto: ProtoVersion}
				case MsgShutdown:
					p.Close()
					return
				}
			case <-p.dead:
				return
			}
		}
	}()
}

func TestRetryBudgetExhaustionFailsChunk(t *testing.T) {
	// Six wedged workers, a 1-run campaign, RetryCap 2: grants go out to
	// three workers (attempts 1..3), each lease expires, and the fourth
	// forfeit exhausts the budget.
	var peers []Peer
	for i := 0; i < 6; i++ {
		p := newFakePeer(fmt.Sprintf("silent-%d", i))
		silentWorker(p)
		peers = append(peers, p)
	}
	reg := obs.NewRegistry()
	out, err := Run(json.RawMessage(`"doom"`), Config{
		Runs: 1, ChunkSize: 1,
		Lease: 20 * time.Millisecond, Backoff: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		RetryCap: 2, Metrics: reg,
	}, peers)
	if err == nil {
		t.Fatal("expected a campaign error")
	}
	if len(out.Failed) != 1 {
		t.Fatalf("Failed = %v, want exactly one chunk", out.Failed)
	}
	ce := out.Failed[0]
	if ce.Attempts != 3 { // 1 initial + RetryCap re-issues
		t.Fatalf("attempts = %d, want 3", ce.Attempts)
	}
	if !strings.Contains(ce.Reason, "retry budget exhausted") {
		t.Fatalf("reason = %q", ce.Reason)
	}
	var chunkErr ChunkError
	if !errors.As(out.RunErrs[0], &chunkErr) {
		t.Fatalf("RunErrs[0] = %v, want a ChunkError", out.RunErrs[0])
	}
	if n := reg.Counter("dist_chunks_failed"); n != 1 {
		t.Fatalf("dist_chunks_failed = %d, want 1", n)
	}
	if n := reg.Counter("dist_stragglers_killed"); n != 3 {
		t.Fatalf("dist_stragglers_killed = %d, want 3", n)
	}
}

func TestAllWorkersDeadFailsRemainingChunks(t *testing.T) {
	// Every worker dies on its first grant; once the last one is gone the
	// remaining chunks fail immediately instead of spinning on backoff.
	var peers []Peer
	for i := 0; i < 2; i++ {
		p := newFakePeer(fmt.Sprintf("fragile-%d", i))
		go func() {
			for {
				select {
				case m := <-p.in:
					switch m.T {
					case MsgHello:
						p.out <- &Msg{T: MsgReady, Proto: ProtoVersion}
					case MsgGrant:
						p.Kill() // crash on contact with work
						return
					}
				case <-p.dead:
					return
				}
			}
		}()
		peers = append(peers, p)
	}
	reg := obs.NewRegistry()
	out, err := Run(json.RawMessage(`"mortal"`), Config{
		Runs: 4, ChunkSize: 1,
		Lease: time.Second, Backoff: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		Metrics: reg,
	}, peers)
	if err == nil {
		t.Fatal("expected a campaign error")
	}
	if len(out.Failed) != 4 {
		t.Fatalf("Failed = %d chunks, want all 4", len(out.Failed))
	}
	for run := 0; run < 4; run++ {
		if out.RunErrs[run] == nil {
			t.Fatalf("run %d has no error", run)
		}
	}
	if n := reg.Counter("dist_workers_lost"); n != 2 {
		t.Fatalf("dist_workers_lost = %d, want 2", n)
	}
}

func TestDegradesToSingleSurvivor(t *testing.T) {
	// Two of three workers die on their first grant; the campaign still
	// completes, carried by the survivor.
	spec := json.RawMessage(`"survivor"`)
	const runs = 9
	peers := []Peer{StartPipe("steady", okRunner())}
	for i := 0; i < 2; i++ {
		p := newFakePeer(fmt.Sprintf("fragile-%d", i))
		go func() {
			for {
				select {
				case m := <-p.in:
					switch m.T {
					case MsgHello:
						p.out <- &Msg{T: MsgReady, Proto: ProtoVersion}
					case MsgGrant:
						p.Kill()
						return
					case MsgShutdown:
						p.Close()
						return
					}
				case <-p.dead:
					return
				}
			}
		}()
		peers = append(peers, p)
	}
	reg := obs.NewRegistry()
	out, err := Run(spec, Config{
		Runs: runs, ChunkSize: 2,
		Lease: 2 * time.Second, Backoff: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		Metrics: reg,
	}, peers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	requireSerialEquivalence(t, spec, runs, out)
	if n := reg.Counter("dist_workers_lost"); n != 2 {
		t.Fatalf("dist_workers_lost = %d, want 2", n)
	}
	if n := reg.Counter("dist_leases_reissued"); n < 2 {
		t.Fatalf("dist_leases_reissued = %d, want >= 2", n)
	}
}

// reconcileHarness builds a coordinator mid-flight for white-box tests of
// the duplicate reconciliation rules.
func reconcileHarness(workers int) (*coord, *obs.Registry) {
	reg := obs.NewRegistry()
	c := &coord{
		cfg: Config{Runs: 2, Metrics: reg}.withDefaults(),
		now: time.Now,
	}
	c.chunks = []*chunk{{id: 0, start: 0, count: 2, worker: -1}}
	for i := 0; i < workers; i++ {
		c.workers = append(c.workers, &wstate{peer: newFakePeer(fmt.Sprintf("w%d", i)), phase: wBusy, chunk: 0})
	}
	return c, reg
}

func deliver(c *coord, worker int, payloads map[int]string) {
	for run, body := range payloads {
		c.shard(worker, &Msg{T: MsgShard, Chunk: 0, Run: run, Payload: json.RawMessage(body)})
	}
}

func TestDuplicateChunkReconcilesIdempotently(t *testing.T) {
	c, reg := reconcileHarness(2)
	c.chunks[0].phase = chunkLeased
	c.chunks[0].worker = 0

	set := map[int]string{0: `{"v":1}`, 1: `{"v":2}`}
	deliver(c, 0, set)
	if err := c.chunkDone(0, 0); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	if c.chunks[0].phase != chunkDone || c.chunks[0].worker != 0 {
		t.Fatalf("chunk not committed to worker 0: %+v", c.chunks[0])
	}

	deliver(c, 1, set) // byte-identical duplicate
	if err := c.chunkDone(1, 0); err != nil {
		t.Fatalf("duplicate must reconcile cleanly: %v", err)
	}
	if c.chunks[0].worker != 0 {
		t.Fatal("duplicate must not displace the committed set")
	}
	if n := reg.Counter("dist_duplicate_chunks"); n != 1 {
		t.Fatalf("dist_duplicate_chunks = %d, want 1", n)
	}
}

func TestDivergentDuplicateIsAHardError(t *testing.T) {
	c, _ := reconcileHarness(2)
	c.chunks[0].phase = chunkLeased
	c.chunks[0].worker = 0

	deliver(c, 0, map[int]string{0: `{"v":1}`, 1: `{"v":2}`})
	if err := c.chunkDone(0, 0); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	deliver(c, 1, map[int]string{0: `{"v":1}`, 1: `{"v":666}`})
	err := c.chunkDone(1, 0)
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("divergent duplicate returned %v, want ErrDivergence", err)
	}
}

func TestLateStragglerRescuesFailedChunk(t *testing.T) {
	c, reg := reconcileHarness(1)
	c.fail(c.chunks[0], "retry budget exhausted")
	if n := reg.Counter("dist_chunks_failed"); n != 1 {
		t.Fatalf("dist_chunks_failed = %d, want 1", n)
	}
	deliver(c, 0, map[int]string{0: `{"v":1}`, 1: `{"v":2}`})
	if err := c.chunkDone(0, 0); err != nil {
		t.Fatalf("rescue commit: %v", err)
	}
	if c.chunks[0].phase != chunkDone {
		t.Fatalf("chunk phase = %v, want done", c.chunks[0].phase)
	}
	if n := reg.Counter("dist_chunks_failed"); n != 0 {
		t.Fatalf("dist_chunks_failed = %d after rescue, want 0", n)
	}
	out := c.outcome()
	if out.Err() != nil || len(out.Failed) != 0 {
		t.Fatalf("rescued campaign still failing: %v", out.Err())
	}
}

func TestPrematureChunkDoneIsAProtocolFault(t *testing.T) {
	c, reg := reconcileHarness(2)
	c.chunks[0].phase = chunkLeased
	c.chunks[0].worker = 0
	c.chunks[0].attempts = 1
	deliver(c, 0, map[int]string{0: `{"v":1}`}) // one of two shards
	if err := c.chunkDone(0, 0); err != nil {
		t.Fatalf("premature chunk_done must not abort the campaign: %v", err)
	}
	if c.workers[0].phase != wDead {
		t.Fatal("lying worker must be cut off")
	}
	if c.chunks[0].phase != chunkPending {
		t.Fatalf("chunk must return to pending, got %v", c.chunks[0].phase)
	}
	if n := reg.Counter("dist_workers_lost"); n != 1 {
		t.Fatalf("dist_workers_lost = %d, want 1", n)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Runs: 100}.withDefaults()
	if c.Lease != 15*time.Second || c.Backoff != 100*time.Millisecond ||
		c.BackoffMax != 2*time.Second || c.RetryCap != 4 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if got := c.chunkSize(4); got != 6 { // 100/(4*4)
		t.Fatalf("chunkSize(4) = %d, want 6", got)
	}
	if got := (Config{Runs: 3}.withDefaults()).chunkSize(8); got != 1 {
		t.Fatalf("small campaign chunkSize = %d, want 1", got)
	}
	if got := (Config{Runs: 5, ChunkSize: 99}.withDefaults()).chunkSize(2); got != 5 {
		t.Fatalf("oversized chunk must clamp to runs, got %d", got)
	}
}
