package dist

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// errKilled is the stream error a killed pipe worker's Recv reports.
var errKilled = errors.New("dist: peer killed")

// PipePeer runs a worker in-process over io.Pipe pairs: the same Serve
// loop and wire protocol as a subprocess worker, without the process. It
// exists for tests and for single-process embedding; fault injection works
// by cutting the pipes, which is exactly what a crashed process looks like
// from the coordinator's side.
type PipePeer struct {
	name string
	enc  *encoder
	dec  *decoder

	toWorker   *io.PipeWriter // coordinator → worker
	workerIn   *io.PipeReader
	fromWorker *io.PipeReader // worker → coordinator
	workerOut  *io.PipeWriter

	closeOnce sync.Once
	killOnce  sync.Once
}

// StartPipe starts an in-process worker serving the given Runner and
// returns the coordinator's peer handle.
func StartPipe(name string, runner Runner) *PipePeer {
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	p := &PipePeer{
		name:       name,
		enc:        newEncoder(inW),
		dec:        newDecoder(outR),
		toWorker:   inW,
		workerIn:   inR,
		fromWorker: outR,
		workerOut:  outW,
	}
	go func() {
		err := Serve(inR, outW, runner)
		if err != nil {
			outW.CloseWithError(err)
		} else {
			outW.Close()
		}
	}()
	return p
}

// Send implements Peer.
func (p *PipePeer) Send(m *Msg) error { return p.enc.send(m) }

// Recv implements Peer.
func (p *PipePeer) Recv() (*Msg, error) { return p.dec.next() }

// Kill implements Peer: both pipes are severed, so the worker's next read
// or write fails and the coordinator's Recv unblocks — the in-process
// equivalent of SIGKILL.
func (p *PipePeer) Kill() error {
	p.killOnce.Do(func() {
		p.workerIn.CloseWithError(errKilled)
		p.fromWorker.CloseWithError(errKilled)
		p.workerOut.CloseWithError(errKilled)
	})
	return nil
}

// Close implements Peer: worker input is closed so Serve returns on EOF.
func (p *PipePeer) Close() error {
	p.closeOnce.Do(func() {
		p.toWorker.Close()
		p.fromWorker.Close()
	})
	return nil
}

// String implements Peer.
func (p *PipePeer) String() string { return fmt.Sprintf("pipe:%s", p.name) }
