package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"rpivideo/internal/obs"
)

// chunkPhase is a chunk's position in the lease state machine.
type chunkPhase int

const (
	chunkPending chunkPhase = iota // waiting for a worker (possibly backoff-gated)
	chunkLeased                    // granted, progress deadline armed
	chunkDone                      // first complete shard set committed
	chunkFailed                    // retry budget exhausted
)

// shardRec is one received run result.
type shardRec struct {
	payload []byte
	err     string
}

// chunk is one leased unit of work: the contiguous run range
// [start, start+count).
type chunk struct {
	id, start, count int
	phase            chunkPhase
	worker           int // leaseholder (leased) or committing worker (done); -1 otherwise
	attempts         int // grants issued
	deadline         time.Time
	notBefore        time.Time // backoff gate for the next grant
	progress         int       // shards received under the current lease
	// got buffers shard sets per worker: reconciliation needs the losing
	// attempt's bytes to verify a duplicate is byte-identical.
	got        map[int]map[int]shardRec
	failReason string
}

// recs returns (creating) the shard buffer for one worker.
func (c *chunk) recs(w int) map[int]shardRec {
	if c.got == nil {
		c.got = make(map[int]map[int]shardRec)
	}
	m := c.got[w]
	if m == nil {
		m = make(map[int]shardRec, c.count)
		c.got[w] = m
	}
	return m
}

// workerPhase is a worker's position in the coordinator's view.
type workerPhase int

const (
	wStarting workerPhase = iota // hello sent, ready not yet seen
	wIdle                        // grantable
	wBusy                        // holds a live lease
	wRevoked                     // lease expired but kept alive (KeepStragglers)
	wDead                        // stream gone or killed
)

// wstate is the coordinator's bookkeeping for one worker.
type wstate struct {
	peer     Peer
	phase    workerPhase
	chunk    int       // chunk being executed (busy/revoked); -1 otherwise
	deadline time.Time // revoked: second-strike deadline
	progress int       // revoked: shards seen, to extend the second strike
}

// envelope tags a received message (or terminal stream error) with its
// worker index.
type envelope struct {
	worker int
	msg    *Msg
	err    error
}

// coord is the in-flight coordinator state.
type coord struct {
	cfg     Config
	spec    json.RawMessage
	chunks  []*chunk
	workers []*wstate
	ch      chan envelope
	stop    chan struct{}
	now     func() time.Time
	// start anchors the status snapshots' wall clock; runErrors counts
	// worker-reported per-run error shards for the same surface.
	start     time.Time
	runErrors int
}

// ErrDivergence is wrapped into the hard error returned when duplicate
// executions of one chunk produce different bytes: deterministic runs make
// that corruption, never a benign race.
var ErrDivergence = errors.New("dist: divergent duplicate shard set")

// Run executes a distributed campaign over the given worker peers and
// returns the folded outcome. The outcome's shard slots are filled in
// run-index order from each chunk's first committed shard set; the
// returned error is non-nil when any chunk failed permanently (see
// Outcome.Failed for the per-chunk report) or on a divergence hard error.
// Run always releases the peers before returning (graceful shutdown for
// survivors, kill for the divergence abort).
func Run(spec json.RawMessage, cfg Config, peers []Peer) (*Outcome, error) {
	cfg = cfg.withDefaults()
	if cfg.Runs <= 0 {
		return &Outcome{}, nil
	}
	if len(peers) == 0 {
		return nil, errors.New("dist: no workers")
	}

	c := &coord{
		cfg:   cfg,
		spec:  spec,
		ch:    make(chan envelope),
		stop:  make(chan struct{}),
		now:   time.Now,
		start: time.Now(),
	}
	size := cfg.chunkSize(len(peers))
	for start := 0; start < cfg.Runs; start += size {
		n := size
		if start+n > cfg.Runs {
			n = cfg.Runs - start
		}
		c.chunks = append(c.chunks, &chunk{id: len(c.chunks), start: start, count: n, worker: -1})
	}
	c.count("dist_chunks", int64(len(c.chunks)))
	c.count("dist_workers_started", int64(len(peers)))

	for i, p := range peers {
		w := &wstate{peer: p, phase: wStarting, chunk: -1}
		c.workers = append(c.workers, w)
		if err := p.Send(&Msg{T: MsgHello, Proto: ProtoVersion, Spec: spec}); err != nil {
			c.markDead(i, fmt.Sprintf("hello failed: %v", err))
			continue
		}
		go c.reader(i, p)
	}
	defer close(c.stop)
	defer c.release()

	if c.live() == 0 {
		return nil, errors.New("dist: every worker failed the handshake")
	}

	c.publishStatus(false)
	for !c.finished() {
		now := c.now()
		c.expire(now)
		c.grant(now)
		c.reap(now)
		if c.finished() {
			break
		}
		timer := time.NewTimer(c.wake(now))
		select {
		case env := <-c.ch:
			timer.Stop()
			if err := c.handle(env); err != nil {
				c.killAll()
				c.publishStatus(true)
				return c.outcome(), err
			}
		case <-timer.C:
		}
		c.publishStatus(false)
	}
	c.publishStatus(true)
	out := c.outcome()
	return out, out.Err()
}

// reader pumps one peer's messages into the coordinator channel until the
// stream dies or the coordinator stops.
func (c *coord) reader(i int, p Peer) {
	for {
		m, err := p.Recv()
		select {
		case c.ch <- envelope{worker: i, msg: m, err: err}:
		case <-c.stop:
			return
		}
		if err != nil {
			return
		}
	}
}

// count adds to a dist_* counter when a metrics registry is configured.
func (c *coord) count(name string, delta int64) {
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Add(name, delta)
	}
}

// event emits a coordinator event.
func (c *coord) event(e Event) {
	if c.cfg.Events != nil {
		c.cfg.Events(e)
	}
}

// live counts workers that are not dead.
func (c *coord) live() int {
	n := 0
	for _, w := range c.workers {
		if w.phase != wDead {
			n++
		}
	}
	return n
}

// finished reports whether every chunk reached a terminal phase.
func (c *coord) finished() bool {
	for _, ck := range c.chunks {
		if ck.phase != chunkDone && ck.phase != chunkFailed {
			return false
		}
	}
	return true
}

// wake computes how long the loop may sleep: the earliest lease deadline,
// straggler second strike, or backoff gate. The 500 ms ceiling is a safety
// net — a missed bookkeeping wake costs one tick, never a hang.
func (c *coord) wake(now time.Time) time.Duration {
	const ceiling = 500 * time.Millisecond
	d := ceiling
	consider := func(t time.Time) {
		if t.IsZero() {
			return
		}
		if until := t.Sub(now); until < d {
			d = until
		}
	}
	for _, ck := range c.chunks {
		switch ck.phase {
		case chunkLeased:
			consider(ck.deadline)
		case chunkPending:
			consider(ck.notBefore)
		}
	}
	for _, w := range c.workers {
		if w.phase == wRevoked {
			consider(w.deadline)
		}
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// expire forfeits the chunks of leaseholders that made no progress within
// the lease window.
func (c *coord) expire(now time.Time) {
	for _, ck := range c.chunks {
		if ck.phase != chunkLeased || now.Before(ck.deadline) {
			continue
		}
		wi := ck.worker
		w := c.workers[wi]
		c.count("dist_lease_expiries", 1)
		c.event(Event{Kind: EvLeaseExpired, Worker: wi, Chunk: ck.id, Start: ck.start, Count: ck.count, Attempt: ck.attempts, Run: -1})
		c.forfeit(ck, now, fmt.Sprintf("lease expired on worker %d", wi))
		if w.phase != wBusy { // lost the race with a death notification
			continue
		}
		if c.cfg.KeepStragglers {
			// First strike: keep the straggler — its late result can still
			// win the chunk or reconcile as a duplicate — but arm a second
			// strike: another silent lease interval kills it.
			w.phase = wRevoked
			w.deadline = now.Add(c.cfg.Lease)
			w.progress = ck.progress
		} else {
			c.killStraggler(wi)
		}
	}
}

// reap kills revoked stragglers whose second-strike deadline passed.
func (c *coord) reap(now time.Time) {
	for wi, w := range c.workers {
		if w.phase == wRevoked && !now.Before(w.deadline) {
			c.killStraggler(wi)
		}
	}
}

// killStraggler hard-stops a worker that outstayed its lease.
func (c *coord) killStraggler(wi int) {
	w := c.workers[wi]
	if w.phase == wDead {
		return
	}
	c.count("dist_stragglers_killed", 1)
	c.event(Event{Kind: EvStragglerKilled, Worker: wi, Chunk: w.chunk, Run: -1})
	w.peer.Kill()
	c.markDead(wi, "straggler killed")
}

// forfeit returns a leased chunk to the pending pool (or fails it when the
// retry budget is spent) with exponential backoff before the next grant.
func (c *coord) forfeit(ck *chunk, now time.Time, reason string) {
	ck.phase = chunkPending
	ck.worker = -1
	ck.progress = 0
	if ck.attempts > c.cfg.RetryCap {
		c.fail(ck, fmt.Sprintf("retry budget exhausted (%d attempts); last: %s", ck.attempts, reason))
		return
	}
	backoff := c.cfg.Backoff << (ck.attempts - 1)
	if backoff > c.cfg.BackoffMax || backoff <= 0 {
		backoff = c.cfg.BackoffMax
	}
	ck.notBefore = now.Add(backoff)
}

// fail marks a chunk permanently failed.
func (c *coord) fail(ck *chunk, reason string) {
	ck.phase = chunkFailed
	ck.failReason = reason
	c.count("dist_chunks_failed", 1)
	c.event(Event{Kind: EvChunkFailed, Worker: -1, Chunk: ck.id, Start: ck.start, Count: ck.count, Attempt: ck.attempts, Run: -1, Err: reason})
}

// grant leases pending chunks (in id order, respecting backoff gates) to
// idle workers.
func (c *coord) grant(now time.Time) {
	for _, ck := range c.chunks {
		if ck.phase != chunkPending || now.Before(ck.notBefore) {
			continue
		}
		for {
			wi := c.firstIdle()
			if wi < 0 {
				return // no capacity; the wake timer revisits
			}
			w := c.workers[wi]
			if err := w.peer.Send(&Msg{T: MsgGrant, Chunk: ck.id, Start: ck.start, Count: ck.count}); err != nil {
				c.markDead(wi, fmt.Sprintf("grant failed: %v", err))
				continue // try the next idle worker
			}
			ck.phase = chunkLeased
			ck.worker = wi
			ck.attempts++
			ck.deadline = now.Add(c.cfg.Lease)
			ck.progress = 0
			w.phase = wBusy
			w.chunk = ck.id
			c.count("dist_leases_granted", 1)
			if ck.attempts > 1 {
				c.count("dist_leases_reissued", 1)
				if ck.attempts == 2 {
					c.count("dist_chunks_retried", 1)
				}
			}
			c.event(Event{Kind: EvGrant, Worker: wi, Chunk: ck.id, Start: ck.start, Count: ck.count, Attempt: ck.attempts, Run: -1})
			break
		}
	}
}

// firstIdle returns the lowest-index grantable worker, or -1.
func (c *coord) firstIdle() int {
	for i, w := range c.workers {
		if w.phase == wIdle {
			return i
		}
	}
	return -1
}

// markDead transitions a worker to dead, releasing any lease it held, and
// fails the remaining work when the last worker is gone.
func (c *coord) markDead(wi int, reason string) {
	w := c.workers[wi]
	if w.phase == wDead {
		return
	}
	held := w.chunk
	w.phase = wDead
	w.chunk = -1
	c.count("dist_workers_lost", 1)
	c.event(Event{Kind: EvWorkerLost, Worker: wi, Chunk: held, Run: -1, Err: reason})
	if held >= 0 {
		ck := c.chunks[held]
		if ck.phase == chunkLeased && ck.worker == wi {
			c.forfeit(ck, c.now(), fmt.Sprintf("worker %d lost (%s)", wi, reason))
		}
		delete(ck.got, wi) // a dead worker's partial set can never complete
	}
	if c.live() == 0 {
		for _, ck := range c.chunks {
			if ck.phase == chunkPending || ck.phase == chunkLeased {
				c.fail(ck, "no live workers left")
			}
		}
	}
}

// handle processes one incoming envelope. A non-nil return aborts the
// campaign (divergence hard error).
func (c *coord) handle(env envelope) error {
	w := c.workers[env.worker]
	if env.err != nil {
		if w.phase != wDead {
			reason := env.err.Error()
			if env.err == io.EOF {
				reason = "stream closed"
			}
			c.markDead(env.worker, reason)
		}
		return nil
	}
	if w.phase == wDead {
		return nil // late message from a worker already written off
	}
	m := env.msg
	switch m.T {
	case MsgReady:
		if w.phase == wStarting {
			w.phase = wIdle
			c.count("dist_workers_ready", 1)
			c.event(Event{Kind: EvWorkerReady, Worker: env.worker, Chunk: -1, Run: -1})
		}
	case MsgBeat:
		c.progressed(env.worker, m.Chunk, m.Done)
	case MsgShard:
		c.shard(env.worker, m)
	case MsgChunkDone:
		return c.chunkDone(env.worker, m.Chunk)
	}
	return nil
}

// progressed extends deadlines when a worker advances through its chunk.
// Idle heartbeats (done not advancing) extend nothing: a wedged worker
// that still beats loses its lease exactly like a silent one.
func (c *coord) progressed(wi, chunkID, done int) {
	if chunkID < 0 || chunkID >= len(c.chunks) {
		return
	}
	ck := c.chunks[chunkID]
	w := c.workers[wi]
	switch {
	case ck.phase == chunkLeased && ck.worker == wi:
		if done > ck.progress {
			ck.progress = done
			ck.deadline = c.now().Add(c.cfg.Lease)
		}
	case w.phase == wRevoked && w.chunk == chunkID:
		if done > w.progress {
			w.progress = done
			w.deadline = c.now().Add(c.cfg.Lease)
		}
	}
}

// shard buffers one run result and treats it as progress.
func (c *coord) shard(wi int, m *Msg) {
	if m.Chunk < 0 || m.Chunk >= len(c.chunks) {
		return
	}
	ck := c.chunks[m.Chunk]
	if m.Run < ck.start || m.Run >= ck.start+ck.count {
		// A worker shipping runs outside its chunk is broken; cut it off
		// before it can corrupt the fold.
		c.workers[wi].peer.Kill()
		c.markDead(wi, fmt.Sprintf("shard for run %d outside chunk %d [%d,%d)", m.Run, ck.id, ck.start, ck.start+ck.count))
		return
	}
	rec := shardRec{err: m.Err}
	if m.Err == "" {
		rec.payload = append([]byte(nil), m.Payload...)
	}
	ck.recs(wi)[m.Run] = rec
	c.count("dist_shards_received", 1)
	if m.Err != "" {
		c.runErrors++
		c.count("dist_run_errors", 1)
		c.event(Event{Kind: EvRunError, Worker: wi, Chunk: ck.id, Run: m.Run, Err: m.Err})
	}
	c.progressed(wi, m.Chunk, len(ck.got[wi]))
}

// chunkDone commits or reconciles a completed shard set. First complete
// set per chunk wins; a byte-identical duplicate is dropped; a divergent
// duplicate aborts the campaign.
func (c *coord) chunkDone(wi, chunkID int) error {
	if chunkID < 0 || chunkID >= len(c.chunks) {
		return nil
	}
	ck := c.chunks[chunkID]
	w := c.workers[wi]
	set := ck.got[wi]
	if len(set) != ck.count {
		// A premature chunk_done is a protocol fault; markDead releases
		// the lease this worker still holds.
		w.peer.Kill()
		c.markDead(wi, fmt.Sprintf("chunk %d closed with %d/%d shards", chunkID, len(set), ck.count))
		return nil
	}
	// The worker is free again whichever way reconciliation goes.
	if w.chunk == chunkID && (w.phase == wBusy || w.phase == wRevoked) {
		w.phase = wIdle
		w.chunk = -1
	}
	if ck.phase == chunkDone {
		// Reconcile the duplicate against the committed set.
		committed := ck.got[ck.worker]
		for run, rec := range set {
			want := committed[run]
			if want.err != rec.err || !bytes.Equal(want.payload, rec.payload) {
				return fmt.Errorf("%w: chunk %d run %d from workers %d and %d differ — deterministic runs make this corruption",
					ErrDivergence, chunkID, run, ck.worker, wi)
			}
		}
		c.count("dist_duplicate_chunks", 1)
		c.event(Event{Kind: EvChunkDuplicate, Worker: wi, Chunk: chunkID, Start: ck.start, Count: ck.count, Run: -1})
		delete(ck.got, wi)
		return nil
	}
	// First complete set wins — even for a chunk already written off as
	// failed (a straggler limping home is still a correct result).
	if ck.phase == chunkLeased && ck.worker != wi {
		// A revoked straggler beat the current leaseholder to the commit.
		// The leaseholder leaves the expiry scan with its chunk, so demote
		// it to revoked: finishing frees it (duplicate path), wedging gets
		// it reaped at the second-strike deadline.
		v := c.workers[ck.worker]
		if v.phase == wBusy && v.chunk == chunkID {
			v.phase = wRevoked
			v.deadline = c.now().Add(c.cfg.Lease)
			v.progress = ck.progress
		}
	}
	if ck.phase == chunkFailed {
		ck.failReason = ""
		c.count("dist_chunks_failed", -1)
	}
	ck.phase = chunkDone
	ck.worker = wi
	c.count("dist_chunks_completed", 1)
	c.event(Event{Kind: EvChunkDone, Worker: wi, Chunk: chunkID, Start: ck.start, Count: ck.count, Attempt: ck.attempts, Run: -1})
	return nil
}

// publishStatus emits the coordinator's live view to the status sink:
// runs done (committed chunks plus the current leases' streamed shards),
// per-worker lease phase, and the held chunk's attempt count. Progress can
// regress transiently when a lease is forfeited — the re-issued chunk's
// shards start over — which is the honest view of fault-tolerant work.
func (c *coord) publishStatus(done bool) {
	if c.cfg.Status == nil {
		return
	}
	s := obs.StatusSnapshot{
		Mode:        "dist",
		RunsTotal:   c.cfg.Runs,
		RunErrors:   c.runErrors,
		WallSeconds: c.now().Sub(c.start).Seconds(),
		Done:        done,
	}
	for _, ck := range c.chunks {
		switch ck.phase {
		case chunkDone:
			s.RunsDone += ck.count
		case chunkLeased:
			s.RunsDone += ck.progress
		}
	}
	if s.RunsDone > 0 && s.RunsDone < s.RunsTotal {
		s.ETASeconds = s.WallSeconds / float64(s.RunsDone) * float64(s.RunsTotal-s.RunsDone)
	}
	s.Workers = make([]obs.WorkerStatus, len(c.workers))
	for i, w := range c.workers {
		ws := obs.WorkerStatus{Worker: i, State: w.phase.String(), Chunk: w.chunk}
		if w.chunk >= 0 {
			ck := c.chunks[w.chunk]
			ws.Attempt = ck.attempts
			if w.phase == wRevoked {
				ws.Progress = w.progress
			} else {
				ws.Progress = ck.progress
			}
		}
		s.Workers[i] = ws
	}
	c.cfg.Status.PublishStatus(s)
}

// String names the worker phase for the status surface ("straggler" for
// revoked: the operator-facing word for a worker running past its lease).
func (p workerPhase) String() string {
	switch p {
	case wStarting:
		return "starting"
	case wIdle:
		return "idle"
	case wBusy:
		return "busy"
	case wRevoked:
		return "straggler"
	case wDead:
		return "dead"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// outcome folds the committed shard sets into run-index order.
func (c *coord) outcome() *Outcome {
	out := &Outcome{
		Shards:  make([][]byte, c.cfg.Runs),
		RunErrs: make([]error, c.cfg.Runs),
	}
	for _, ck := range c.chunks {
		switch ck.phase {
		case chunkDone:
			set := ck.got[ck.worker]
			for run, rec := range set {
				if rec.err != "" {
					out.RunErrs[run] = errors.New(rec.err)
				} else {
					out.Shards[run] = rec.payload
				}
			}
		case chunkFailed:
			ce := ChunkError{Chunk: ck.id, Start: ck.start, Count: ck.count, Attempts: ck.attempts, Reason: ck.failReason}
			out.Failed = append(out.Failed, ce)
			for run := ck.start; run < ck.start+ck.count; run++ {
				out.RunErrs[run] = ce
			}
		default:
			// Aborted mid-flight (divergence): leave the slots nil.
			for run := ck.start; run < ck.start+ck.count; run++ {
				if out.RunErrs[run] == nil {
					out.RunErrs[run] = fmt.Errorf("chunk %d incomplete at campaign abort", ck.id)
				}
			}
		}
	}
	return out
}

// release shuts every surviving worker down gracefully.
func (c *coord) release() {
	for _, w := range c.workers {
		if w.phase == wDead {
			w.peer.Close()
			continue
		}
		w.peer.Send(&Msg{T: MsgShutdown})
		w.peer.Close()
	}
}

// killAll hard-stops everything (divergence abort path).
func (c *coord) killAll() {
	for _, w := range c.workers {
		if w.phase != wDead {
			w.peer.Kill()
			w.phase = wDead
		}
	}
}
