package dist

import (
	"encoding/json"
	"fmt"
	"io"
)

// Serve runs the worker side of the protocol over a byte stream: handshake,
// then a grant-execute-stream loop until shutdown or EOF. Each granted run
// executes through the Runner with panic recovery — a failing run becomes
// an error shard, not a dead worker — and every completed run is streamed
// immediately, so the coordinator sees progress (and can extend the lease)
// run by run, not chunk by chunk.
//
// Serve returns nil on a clean shutdown (MsgShutdown or EOF) and an error
// on a protocol violation or a broken stream. It never writes anything to
// the stream except protocol messages: a subprocess worker must keep its
// stdout clean and send human-readable noise to stderr.
func Serve(r io.Reader, w io.Writer, runner Runner) error {
	dec := newDecoder(r)
	enc := newEncoder(w)

	hello, err := dec.next()
	if err != nil {
		if err == io.EOF {
			return nil // coordinator went away before the handshake
		}
		return err
	}
	if hello.T != MsgHello {
		return fmt.Errorf("dist: worker expected %s, got %s", MsgHello, hello.T)
	}
	if hello.Proto != ProtoVersion {
		return fmt.Errorf("dist: protocol version mismatch: coordinator %d, worker %d", hello.Proto, ProtoVersion)
	}
	spec := hello.Spec
	if err := enc.send(&Msg{T: MsgReady, Proto: ProtoVersion}); err != nil {
		return err
	}

	for {
		m, err := dec.next()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch m.T {
		case MsgGrant:
			if m.Count <= 0 {
				return fmt.Errorf("dist: grant for chunk %d with count %d", m.Chunk, m.Count)
			}
			// Acknowledge the lease before the first (possibly long) run.
			if err := enc.send(&Msg{T: MsgBeat, Chunk: m.Chunk}); err != nil {
				return err
			}
			for i := 0; i < m.Count; i++ {
				run := m.Start + i
				payload, runErr := runOne(runner, spec, run)
				shard := &Msg{T: MsgShard, Chunk: m.Chunk, Run: run, Payload: payload}
				if runErr != nil {
					shard.Payload = nil
					shard.Err = runErr.Error()
				}
				if err := enc.send(shard); err != nil {
					return err
				}
				if err := enc.send(&Msg{T: MsgBeat, Chunk: m.Chunk, Done: i + 1}); err != nil {
					return err
				}
			}
			if err := enc.send(&Msg{T: MsgChunkDone, Chunk: m.Chunk}); err != nil {
				return err
			}
		case MsgShutdown:
			return nil
		default:
			// Unknown types are ignored for forward compatibility; the
			// coordinator never depends on a worker rejecting them.
		}
	}
}

// runOne executes a single run with panic recovery.
func runOne(runner Runner, spec json.RawMessage, run int) (payload []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			payload, err = nil, fmt.Errorf("run %d panicked: %v", run, r)
		}
	}()
	return runner.Run(spec, run)
}
