// Package dist is the fault-tolerant distributed campaign engine: a
// coordinator hands out leased run-index chunks to workers, workers execute
// runs and stream result shards back over a JSON-lines protocol, and the
// coordinator folds the committed shards in run-index order — so a sharded
// campaign reproduces the serial one byte for byte at any worker count and
// chunk size.
//
// Robustness is the point of the layer. Runs are pure functions of
// (spec, run index), which buys three properties cheaply:
//
//   - A worker that crashes, hangs past its lease, or straggles simply
//     loses its chunk: the chunk is re-issued to another worker with
//     exponential backoff and a retry cap, and the campaign degrades
//     gracefully down to a single surviving worker.
//   - Duplicate results (a straggler finishing after its lease was
//     re-issued) reconcile idempotently: the first completed shard set per
//     chunk wins, a byte-identical duplicate is dropped, and a divergent
//     duplicate is a hard error — determinism means divergence can only be
//     corruption.
//   - Progress, not liveness, extends a lease: a wedged worker that still
//     heartbeats but completes no runs is indistinguishable from a hung
//     one and loses its chunk the same way.
//
// The package is workload- and transport-agnostic: the campaign spec is
// opaque bytes a Runner interprets, and a worker is anything that speaks
// the message protocol over a byte stream (subprocess stdin/stdout pipes
// and in-process pipes ship here; a TCP dialer satisfies the same Peer
// interface). The coordinator reports dist_* metrics through an
// internal/obs registry kept separate from the campaign's own metrics, so
// distribution accounting never perturbs the byte-stable campaign exports.
package dist

import (
	"encoding/json"
	"fmt"
	"time"

	"rpivideo/internal/obs"
)

// Runner executes one run of a campaign on the worker side. Implementations
// must be deterministic: the returned payload must be a pure function of
// (spec, run) — the coordinator treats payload divergence between duplicate
// executions of the same run as corruption. An error return becomes the
// run's recorded error (a per-run failure, not a worker failure).
type Runner interface {
	Run(spec json.RawMessage, run int) ([]byte, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(spec json.RawMessage, run int) ([]byte, error)

// Run implements Runner.
func (f RunnerFunc) Run(spec json.RawMessage, run int) ([]byte, error) { return f(spec, run) }

// Peer is the coordinator's handle on one worker: a bidirectional message
// stream plus lifecycle control. Send and Recv are each called from a
// single goroutine (the coordinator's loop and its per-peer reader); Kill
// and Close may race with both and must unblock a pending Recv.
type Peer interface {
	// Send delivers one message to the worker.
	Send(*Msg) error
	// Recv blocks for the worker's next message; it returns an error
	// (io.EOF included) once the worker is gone.
	Recv() (*Msg, error)
	// Kill hard-stops the worker (SIGKILL for subprocesses). Idempotent.
	Kill() error
	// Close releases the peer gracefully after the campaign: input is
	// closed so the worker's Serve loop returns, then the worker is
	// reaped. Idempotent.
	Close() error
	// String names the peer for events and errors.
	String() string
}

// Config tunes the coordinator. The zero value takes the documented
// defaults.
type Config struct {
	// Runs is the campaign size (required, > 0).
	Runs int
	// ChunkSize is the runs per leased chunk. Zero or negative selects
	// runs/(4·workers), clamped to [1, runs] — small enough that losing a
	// worker forfeits little work, large enough to amortize the protocol.
	ChunkSize int
	// Lease is the progress deadline: a leaseholder that completes no run
	// for this long loses the chunk. Completed shards and progress
	// heartbeats extend it; idle heartbeats do not (a wedged worker must
	// not keep its lease alive). Default 15 s.
	Lease time.Duration
	// Backoff is the base delay before a forfeited chunk is re-issued; it
	// doubles per attempt up to BackoffMax. Defaults 100 ms and 2 s.
	Backoff    time.Duration
	BackoffMax time.Duration
	// RetryCap bounds re-issues per chunk: a chunk granted 1+RetryCap
	// times without completing is failed permanently and reported in the
	// campaign error. Default 4.
	RetryCap int
	// KeepStragglers leaves an expired leaseholder alive (its late result
	// can still win or reconcile as a duplicate); a second silent lease
	// interval kills it anyway. The default (false) kills stragglers at
	// first expiry — a worker that stopped making progress is suspect.
	KeepStragglers bool
	// Metrics, when non-nil, receives the dist_* counters (leases
	// re-issued, stragglers killed, workers lost, …). Keep this registry
	// separate from the campaign's own: distribution accounting is
	// nondeterministic by nature and must not touch byte-stable exports.
	Metrics *obs.Registry
	// Events, when non-nil, observes the coordinator state machine. Called
	// synchronously from the coordinator loop; do not block.
	Events func(Event)
	// Status, when non-nil, receives live progress snapshots: runs done
	// (committed chunks plus live-lease progress), per-worker lease state,
	// and retry/straggler detail. SimRate stays zero — shard payloads are
	// opaque bytes, so the coordinator cannot know simulated time. Called
	// synchronously from the coordinator loop; do not block.
	Status obs.StatusSink
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Lease <= 0 {
		c.Lease = 15 * time.Second
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 4
	}
	return c
}

// chunkSize resolves the effective chunk size for a worker count.
func (c Config) chunkSize(workers int) int {
	size := c.ChunkSize
	if size <= 0 {
		size = c.Runs / (4 * workers)
	}
	if size < 1 {
		size = 1
	}
	if size > c.Runs {
		size = c.Runs
	}
	return size
}

// EventKind classifies coordinator events.
type EventKind int

// Coordinator event kinds.
const (
	// EvWorkerReady: a worker completed the hello handshake.
	EvWorkerReady EventKind = iota
	// EvWorkerLost: a worker's stream ended (crash, kill, or protocol
	// fault). Chunk identifies the lease it held, -1 for none.
	EvWorkerLost
	// EvGrant: a chunk was leased to a worker. Attempt counts grants of
	// this chunk, starting at 1.
	EvGrant
	// EvLeaseExpired: a leaseholder made no progress within the lease and
	// forfeited the chunk.
	EvLeaseExpired
	// EvStragglerKilled: an expired leaseholder was hard-stopped.
	EvStragglerKilled
	// EvChunkDone: a chunk's first complete shard set was committed.
	EvChunkDone
	// EvChunkDuplicate: a straggler delivered a byte-identical duplicate
	// of an already-committed chunk; it was dropped idempotently.
	EvChunkDuplicate
	// EvChunkFailed: a chunk exhausted its retry budget (or lost all
	// workers) and was failed permanently.
	EvChunkFailed
	// EvRunError: a worker reported a per-run error shard.
	EvRunError
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvWorkerReady:
		return "worker-ready"
	case EvWorkerLost:
		return "worker-lost"
	case EvGrant:
		return "grant"
	case EvLeaseExpired:
		return "lease-expired"
	case EvStragglerKilled:
		return "straggler-killed"
	case EvChunkDone:
		return "chunk-done"
	case EvChunkDuplicate:
		return "chunk-duplicate"
	case EvChunkFailed:
		return "chunk-failed"
	case EvRunError:
		return "run-error"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one coordinator state transition.
type Event struct {
	Kind   EventKind
	Worker int // worker index, -1 when not applicable
	Chunk  int // chunk id, -1 when not applicable
	// Start and Count locate the chunk's run range.
	Start, Count int
	// Attempt counts grants of the chunk so far (EvGrant, EvChunkFailed).
	Attempt int
	// Run is the failing run index (EvRunError), -1 otherwise.
	Run int
	// Err carries failure detail (EvWorkerLost, EvChunkFailed, EvRunError).
	Err string
}

// String renders the event for logs.
func (e Event) String() string {
	s := fmt.Sprintf("%v worker=%d chunk=%d", e.Kind, e.Worker, e.Chunk)
	if e.Count > 0 {
		s += fmt.Sprintf(" runs=[%d,%d)", e.Start, e.Start+e.Count)
	}
	if e.Attempt > 0 {
		s += fmt.Sprintf(" attempt=%d", e.Attempt)
	}
	if e.Run >= 0 {
		s += fmt.Sprintf(" run=%d", e.Run)
	}
	if e.Err != "" {
		s += " err=" + e.Err
	}
	return s
}

// ChunkError reports one permanently failed chunk.
type ChunkError struct {
	Chunk, Start, Count, Attempts int
	Reason                        string
}

// Error implements error.
func (c ChunkError) Error() string {
	return fmt.Sprintf("chunk %d (runs [%d,%d)) failed after %d attempt(s): %s",
		c.Chunk, c.Start, c.Start+c.Count, c.Attempts, c.Reason)
}

// Outcome is a campaign's collected result: one payload slot per run, in
// run-index order — exactly what a serial execution of the Runner would
// have produced, whatever crashed along the way.
type Outcome struct {
	// Shards holds each run's payload; nil where the run errored or its
	// chunk failed.
	Shards [][]byte
	// RunErrs holds each run's error; nil where Shards[i] is valid.
	RunErrs []error
	// Failed lists chunks that exhausted their retry budget.
	Failed []ChunkError
}

// Err summarizes the outcome: nil when every run has a shard or a
// worker-reported per-run error, otherwise the chunk failures.
func (o *Outcome) Err() error {
	if len(o.Failed) == 0 {
		return nil
	}
	return fmt.Errorf("dist: %d chunk(s) failed permanently; first: %w", len(o.Failed), o.Failed[0])
}
