package cc

import "time"

// Watchdog detects feedback starvation for a congestion controller: when
// no feedback (TWCC, CCFB, RTCP) has arrived for Timeout, the path is
// presumed dead and the controller should freeze its rate at the floor and
// stop probing — blind probing into an outage only deepens the bottleneck
// backlog the re-established link must drain. When feedback returns the
// watchdog reports a recovery and opens an exponential-backoff window
// during which the controller holds the floor before probing again; the
// window doubles with consecutive starvation episodes (a flapping link
// earns longer holds) and resets after a sustained healthy period.
//
// All methods are nil-receiver safe: a nil *Watchdog is never starved and
// never in backoff, so controllers embed it unconditionally and only
// construct it when the fault layer arms graceful degradation.
type Watchdog struct {
	// Timeout is the feedback silence that declares starvation.
	Timeout time.Duration
	// BackoffBase is the first post-recovery hold (500 ms if zero);
	// BackoffMax caps the doubling (8 s if zero).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HealthyReset forgets past episodes after this much time without a
	// new starvation (30 s if zero).
	HealthyReset time.Duration

	haveFB       bool
	lastFB       time.Duration
	starved      bool
	episodes     int
	lastStarve   time.Duration
	backoffUntil time.Duration
}

// NewWatchdog returns a watchdog with the given starvation timeout and
// default backoff parameters.
func NewWatchdog(timeout time.Duration) *Watchdog {
	return &Watchdog{Timeout: timeout}
}

// Starved reports whether the feedback path is starved at now. The first
// transition into starvation is latched here, so callers should consult it
// on every rate query.
func (w *Watchdog) Starved(now time.Duration) bool {
	if w == nil || !w.haveFB {
		// Before the first feedback there is nothing to starve: startup is
		// governed by the controller's own slow start, not the watchdog.
		return false
	}
	if !w.starved && now-w.lastFB > w.Timeout {
		w.starved = true
		if w.episodes > 0 {
			reset := w.HealthyReset
			if reset == 0 {
				reset = 30 * time.Second
			}
			if now-w.lastStarve > reset {
				w.episodes = 0
			}
		}
		w.episodes++
		w.lastStarve = now
	}
	return w.starved
}

// OnFeedback records a feedback arrival at now and reports whether it ends
// a starvation episode. On recovery the backoff window opens:
// BackoffBase·2^(episodes−1), capped at BackoffMax.
func (w *Watchdog) OnFeedback(now time.Duration) (recovered bool) {
	if w == nil {
		return false
	}
	w.Starved(now) // latch a starvation that elapsed since the last feedback
	w.haveFB = true
	w.lastFB = now
	if !w.starved {
		return false
	}
	w.starved = false
	base := w.BackoffBase
	if base == 0 {
		base = 500 * time.Millisecond
	}
	maxHold := w.BackoffMax
	if maxHold == 0 {
		maxHold = 8 * time.Second
	}
	hold := base << uint(min(w.episodes-1, 10))
	if hold > maxHold {
		hold = maxHold
	}
	w.backoffUntil = now + hold
	return true
}

// InBackoff reports whether the post-recovery probe hold is active at now.
func (w *Watchdog) InBackoff(now time.Duration) bool {
	return w != nil && now < w.backoffUntil
}

// Episodes returns how many starvation episodes have been declared.
func (w *Watchdog) Episodes() int {
	if w == nil {
		return 0
	}
	return w.episodes
}
