package cc

import (
	"testing"
	"time"
)

func TestWatchdogNilSafe(t *testing.T) {
	var w *Watchdog
	if w.Starved(time.Second) {
		t.Error("nil watchdog starved")
	}
	if w.OnFeedback(time.Second) {
		t.Error("nil watchdog recovered")
	}
	if w.InBackoff(time.Second) {
		t.Error("nil watchdog in backoff")
	}
	if w.Episodes() != 0 {
		t.Error("nil watchdog has episodes")
	}
}

func TestWatchdogNotStarvedBeforeFirstFeedback(t *testing.T) {
	w := NewWatchdog(750 * time.Millisecond)
	if w.Starved(time.Hour) {
		t.Error("starved before any feedback — startup must be governed by slow start, not the watchdog")
	}
}

func TestWatchdogStarvationAndRecovery(t *testing.T) {
	w := NewWatchdog(750 * time.Millisecond)
	w.OnFeedback(0)
	if w.Starved(700 * time.Millisecond) {
		t.Error("starved within the timeout")
	}
	if !w.Starved(800 * time.Millisecond) {
		t.Error("not starved past the timeout")
	}
	if w.Episodes() != 1 {
		t.Errorf("episodes = %d, want 1", w.Episodes())
	}
	// Staying starved is not a new episode.
	w.Starved(2 * time.Second)
	if w.Episodes() != 1 {
		t.Errorf("episodes = %d after repeated queries, want 1", w.Episodes())
	}
	if !w.OnFeedback(3 * time.Second) {
		t.Error("feedback after starvation did not report recovery")
	}
	if w.Starved(3 * time.Second) {
		t.Error("still starved after recovery")
	}
	// First recovery: 500 ms hold.
	if !w.InBackoff(3*time.Second + 400*time.Millisecond) {
		t.Error("not in backoff right after recovery")
	}
	if w.InBackoff(3*time.Second + 600*time.Millisecond) {
		t.Error("still in backoff past the first 500 ms hold")
	}
}

func TestWatchdogExponentialBackoff(t *testing.T) {
	w := NewWatchdog(750 * time.Millisecond)
	now := time.Duration(0)
	w.OnFeedback(now)
	wantHolds := []time.Duration{
		500 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second,
		8 * time.Second, 8 * time.Second, // capped
	}
	for i, want := range wantHolds {
		now += 2 * time.Second // starve (>750 ms silence)
		if !w.Starved(now) {
			t.Fatalf("episode %d: not starved", i)
		}
		if !w.OnFeedback(now) {
			t.Fatalf("episode %d: no recovery", i)
		}
		if !w.InBackoff(now + want - time.Millisecond) {
			t.Errorf("episode %d: hold shorter than %v", i, want)
		}
		if w.InBackoff(now + want) {
			t.Errorf("episode %d: hold longer than %v", i, want)
		}
	}
}

func TestWatchdogHealthyReset(t *testing.T) {
	w := NewWatchdog(750 * time.Millisecond)
	w.OnFeedback(0)
	w.Starved(time.Second)
	w.OnFeedback(2 * time.Second) // episode 1 over
	// 40 s of healthy feedback (> the 30 s reset window).
	for now := 2 * time.Second; now < 42*time.Second; now += 100 * time.Millisecond {
		w.OnFeedback(now)
	}
	w.Starved(43 * time.Second)
	if !w.OnFeedback(44 * time.Second) {
		t.Fatal("no recovery")
	}
	// Episode count was reset, so the hold is back to the 500 ms base.
	if w.InBackoff(44*time.Second + 600*time.Millisecond) {
		t.Error("hold not reset to base after a sustained healthy period")
	}
}

// TestWatchdogStarvationLatchedByFeedback: a starvation that elapsed
// entirely between two feedback arrivals (no Starved query in between)
// still counts as an episode and yields a recovery.
func TestWatchdogStarvationLatchedByFeedback(t *testing.T) {
	w := NewWatchdog(750 * time.Millisecond)
	w.OnFeedback(0)
	if !w.OnFeedback(5 * time.Second) {
		t.Error("silent 5 s gap not latched as a starvation episode")
	}
	if w.Episodes() != 1 {
		t.Errorf("episodes = %d, want 1", w.Episodes())
	}
}
