package cc

import "time"

// Item is one packet waiting in the send queue.
type Item struct {
	// Data is the opaque packet (the sender stores *rtp.Packet here).
	Data any
	// Size is the wire size in bytes.
	Size int
	// Enqueued is when the packet entered the queue.
	Enqueued time.Duration
	// FrameNum groups packets of the same video frame so discards can drop
	// whole frames.
	FrameNum uint32
}

// SendQueue is the RTP send queue between the encoder and the pacer. SCReAM
// inspects its delay to steer the media rate and discards it when it grows
// beyond its age limit (§4.2.1); GCC and static senders drain it by pacing
// alone.
type SendQueue struct {
	items []Item
	head  int
	bytes int
}

// Push appends a packet to the tail.
func (q *SendQueue) Push(it Item) {
	q.items = append(q.items, it)
	q.bytes += it.Size
}

// Len returns the number of queued packets.
func (q *SendQueue) Len() int { return len(q.items) - q.head }

// Bytes returns the queued wire bytes.
func (q *SendQueue) Bytes() int { return q.bytes }

// Peek returns the head item without removing it; ok is false when empty.
func (q *SendQueue) Peek() (Item, bool) {
	if q.head >= len(q.items) {
		return Item{}, false
	}
	return q.items[q.head], true
}

// Pop removes and returns the head item; ok is false when empty.
func (q *SendQueue) Pop() (Item, bool) {
	it, ok := q.Peek()
	if !ok {
		return Item{}, false
	}
	q.items[q.head] = Item{} // release for GC
	q.head++
	q.bytes -= it.Size
	if q.head > 256 && q.head*2 >= len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return it, true
}

// Delay returns how long the head packet has been queued, or 0 when empty.
func (q *SendQueue) Delay(now time.Duration) time.Duration {
	it, ok := q.Peek()
	if !ok {
		return 0
	}
	d := now - it.Enqueued
	if d < 0 {
		return 0
	}
	return d
}

// DiscardOlderThan drops every queued packet enqueued before cutoff,
// returning the number of packets dropped. This is SCReAM's queue-reset
// behaviour, which the paper notes causes large jumps in the highest RTP
// sequence number seen by the feedback generator.
func (q *SendQueue) DiscardOlderThan(cutoff time.Duration) int {
	n := 0
	for {
		it, ok := q.Peek()
		if !ok || it.Enqueued >= cutoff {
			return n
		}
		q.Pop()
		n++
	}
}

// Clear empties the queue, returning the number of packets dropped.
func (q *SendQueue) Clear() int {
	n := q.Len()
	q.items = q.items[:0]
	q.head = 0
	q.bytes = 0
	return n
}

// QueueAware is implemented by controllers that steer on send-queue state
// (SCReAM). The sender calls SetQueue once during wiring.
type QueueAware interface {
	SetQueue(q *SendQueue)
}
