package cc

import "time"

// Bonded caps a controller's rates to the bond manager's aggregated path
// budget, so the encoder target honors both congestion control and what
// the bonded paths can actually carry under the active policy (the weakest
// live path for duplicate, the active path for failover/cheapest, the sum
// for spray). It wraps only the rate queries: feedback, send accounting
// and the send gate pass straight through, and the run harness keeps its
// type assertions (Traceable, RepairAware, controller-specific finalizers)
// on the inner controller it constructed.
type Bonded struct {
	// Inner is the wrapped congestion controller.
	Inner Controller
	// Budget returns the bond manager's current aggregate budget in
	// bits/s; non-positive values leave the inner rate uncapped.
	Budget func() float64
	// PacingHeadroom multiplies the budget for the pacing cap (1.5 when
	// zero) so the pacer can drain bursts the encoder target admitted.
	PacingHeadroom float64
}

// NewBonded wraps inner with the bond budget cap.
func NewBonded(inner Controller, budget func() float64) *Bonded {
	return &Bonded{Inner: inner, Budget: budget, PacingHeadroom: 1.5}
}

// OnPacketSent implements Controller.
func (b *Bonded) OnPacketSent(p SentPacket) { b.Inner.OnPacketSent(p) }

// OnFeedback implements Controller.
func (b *Bonded) OnFeedback(now time.Duration, acks []Ack) { b.Inner.OnFeedback(now, acks) }

// TargetBitrate implements Controller: the inner target capped at the
// bonded budget.
func (b *Bonded) TargetBitrate(now time.Duration) float64 {
	t := b.Inner.TargetBitrate(now)
	if cap := b.Budget(); cap > 0 && t > cap {
		return cap
	}
	return t
}

// PacingRate implements Controller: the inner pacing rate capped at the
// bonded budget plus headroom.
func (b *Bonded) PacingRate(now time.Duration) float64 {
	r := b.Inner.PacingRate(now)
	h := b.PacingHeadroom
	if h <= 0 {
		h = 1.5
	}
	if cap := b.Budget(); cap > 0 && r > cap*h {
		return cap * h
	}
	return r
}

// CanSend implements Controller.
func (b *Bonded) CanSend(now time.Duration, size int) bool { return b.Inner.CanSend(now, size) }

// Name implements Controller.
func (b *Bonded) Name() string { return b.Inner.Name() + "+bond" }
