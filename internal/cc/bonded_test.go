package cc

import (
	"testing"
	"time"
)

// TestBondedCaps: the decorator caps target and pacing at the budget (with
// pacing headroom) and passes everything else through.
func TestBondedCaps(t *testing.T) {
	inner := NewStatic(10e6)
	budget := 4e6
	b := NewBonded(inner, func() float64 { return budget })
	if got := b.TargetBitrate(0); got != 4e6 {
		t.Errorf("capped target = %v, want 4e6", got)
	}
	if got := b.PacingRate(0); got != 6e6 {
		t.Errorf("capped pacing = %v, want budget*1.5 = 6e6", got)
	}
	budget = 50e6 // budget above the inner rate: no cap
	if got := b.TargetBitrate(0); got != 10e6 {
		t.Errorf("uncapped target = %v, want inner 10e6", got)
	}
	if got := b.PacingRate(0); got != inner.PacingRate(0) {
		t.Errorf("uncapped pacing = %v, want inner %v", got, inner.PacingRate(0))
	}
	budget = 0 // non-positive: uncapped
	if got := b.TargetBitrate(0); got != 10e6 {
		t.Errorf("zero-budget target = %v, want inner 10e6", got)
	}
	if !b.CanSend(0, 1200) {
		t.Error("CanSend must pass through")
	}
	if b.Name() != "static+bond" {
		t.Errorf("Name = %q", b.Name())
	}
	b.OnPacketSent(SentPacket{Size: 1200})
	b.OnFeedback(time.Second, nil)
}
