// Package cc defines the congestion-controller contract shared by the three
// rate-control regimes the paper compares — GCC, SCReAM and static bitrate —
// together with the sender-side machinery they plug into: the paced send
// queue and per-packet bookkeeping.
package cc

import (
	"time"

	"rpivideo/internal/obs"
)

// SentPacket describes one media packet entering the network.
type SentPacket struct {
	// TransportSeq is the transport-wide sequence number (GCC feedback key).
	TransportSeq uint16
	// Seq is the RTP sequence number (SCReAM feedback key).
	Seq uint16
	// Size is the wire size in bytes.
	Size int
	// SendTime is when the packet left the pacer, in sender time.
	SendTime time.Duration
}

// Ack is one normalized feedback item: the fate of one previously sent
// packet, as reported by the receiver. The transport layer matches feedback
// to SentPackets and fills in both clocks.
type Ack struct {
	TransportSeq uint16
	Seq          uint16
	Size         int
	// SendTime is the sender-clock departure time.
	SendTime time.Duration
	// Received reports whether the receiver saw the packet.
	Received bool
	// ArrivalTime is the receiver-clock arrival time (valid if Received).
	ArrivalTime time.Duration
}

// Controller adapts the media bitrate to network conditions.
//
// TargetBitrate drives the encoder; PacingRate drives the pacer; CanSend
// gates window-limited (self-clocked) controllers.
type Controller interface {
	// OnPacketSent informs the controller that a packet entered the network.
	OnPacketSent(p SentPacket)
	// OnFeedback delivers a feedback report. now is the sender-clock time
	// the report arrived; acks are in transport sequence order.
	OnFeedback(now time.Duration, acks []Ack)
	// TargetBitrate returns the bitrate (bits/s) the encoder should aim for.
	TargetBitrate(now time.Duration) float64
	// PacingRate returns the rate (bits/s) at which queued packets should be
	// clocked out.
	PacingRate(now time.Duration) float64
	// CanSend reports whether a packet of the given size may enter the
	// network now. Rate-based controllers always return true;
	// window-limited controllers enforce bytes-in-flight ≤ cwnd.
	CanSend(now time.Duration, size int) bool
	// Name identifies the controller in traces and experiment output.
	Name() string
}

// Traceable is implemented by controllers that can emit obs.KindCC events
// describing each rate decision. The run harness type-asserts against it so
// the Controller interface stays unchanged for controllers that do not
// trace (e.g. Static, whose target never moves).
type Traceable interface {
	// SetTracer attaches an event tracer; nil disables tracing.
	SetTracer(*obs.Tracer)
}

// RepairAware is implemented by controllers that account retransmission
// traffic against their media target. The repair layer's budget registers
// its spend-rate probe here (bits/s over a trailing window); the controller
// subtracts it from the encoder target so media plus repair together honor
// the congested rate, instead of RTX riding on top of it. The run harness
// type-asserts against it, so the Controller interface stays unchanged for
// regimes that never repair.
type RepairAware interface {
	// SetRepairSpend registers the repair spend-rate probe; nil detaches.
	SetRepairSpend(func(now time.Duration) float64)
}

// repairAdjust subtracts the repair spend from a media target, floored at
// min: even a busy repair path must not starve the encoder below its
// operating floor.
func repairAdjust(target float64, spend func(time.Duration) float64, now time.Duration, min float64) float64 {
	if spend == nil {
		return target
	}
	target -= spend(now)
	if target < min {
		return min
	}
	return target
}

// RepairAdjust is repairAdjust for controllers outside this package.
func RepairAdjust(target float64, spend func(time.Duration) float64, now time.Duration, min float64) float64 {
	return repairAdjust(target, spend, now, min)
}

// Static is the paper's baseline: a constant bitrate chosen per environment
// (25 Mbps urban, 8 Mbps rural) from trial runs.
type Static struct {
	// Rate is the constant target bitrate in bits/s.
	Rate float64
	// PacingFactor multiplies Rate for the pacer to absorb encoder
	// burstiness; 1.0 if zero.
	PacingFactor float64

	repairSpend func(time.Duration) float64
}

// NewStatic returns a constant-bitrate controller.
func NewStatic(bitsPerSecond float64) *Static {
	return &Static{Rate: bitsPerSecond, PacingFactor: 1.5}
}

// OnPacketSent implements Controller.
func (s *Static) OnPacketSent(SentPacket) {}

// OnFeedback implements Controller.
func (s *Static) OnFeedback(time.Duration, []Ack) {}

// TargetBitrate implements Controller. Repair spend comes out of the
// constant rate (floored at half, the static regime's de facto minimum) so
// the wire never carries more than the provisioned bitrate.
func (s *Static) TargetBitrate(now time.Duration) float64 {
	return repairAdjust(s.Rate, s.repairSpend, now, s.Rate/2)
}

// SetRepairSpend implements RepairAware.
func (s *Static) SetRepairSpend(f func(time.Duration) float64) { s.repairSpend = f }

// PacingRate implements Controller.
func (s *Static) PacingRate(time.Duration) float64 {
	f := s.PacingFactor
	if f <= 0 {
		f = 1
	}
	return s.Rate * f
}

// CanSend implements Controller.
func (s *Static) CanSend(time.Duration, int) bool { return true }

// Name implements Controller.
func (s *Static) Name() string { return "static" }

// Pacer spaces packet departures to a byte budget so the sender does not
// burst whole frames into the access link.
type Pacer struct {
	// nextFree is the earliest time the link budget admits another packet.
	nextFree time.Duration
}

// Next returns the departure time for a packet of size bytes when the
// pacing rate is rate bits/s, and advances the pacer state. A non-positive
// rate sends immediately.
func (p *Pacer) Next(now time.Duration, size int, rate float64) time.Duration {
	at := p.nextFree
	if at < now {
		at = now
	}
	if rate > 0 {
		p.nextFree = at + time.Duration(float64(size*8)/rate*float64(time.Second))
	} else {
		p.nextFree = at
	}
	return at
}

// Idle reports whether the pacer budget is free at time now.
func (p *Pacer) Idle(now time.Duration) bool { return p.nextFree <= now }

// FreeAt returns when the pacer budget next becomes free.
func (p *Pacer) FreeAt() time.Duration { return p.nextFree }
