package cc

import (
	"testing"
	"testing/quick"
	"time"
)

func TestStaticController(t *testing.T) {
	s := NewStatic(25e6)
	if got := s.TargetBitrate(0); got != 25e6 {
		t.Errorf("TargetBitrate = %v", got)
	}
	if got := s.PacingRate(0); got != 25e6*1.5 {
		t.Errorf("PacingRate = %v", got)
	}
	if !s.CanSend(0, 1e6) {
		t.Error("static controller must always allow sending")
	}
	if s.Name() != "static" {
		t.Errorf("Name = %q", s.Name())
	}
	s.OnPacketSent(SentPacket{})   // must not panic
	s.OnFeedback(time.Second, nil) // must not panic
	s.PacingFactor = 0             // zero factor falls back to 1
	if got := s.PacingRate(0); got != 25e6 {
		t.Errorf("PacingRate with zero factor = %v", got)
	}
}

func TestPacerSpacing(t *testing.T) {
	var p Pacer
	const rate = 8e6 // 1 MB/s → 1000-byte packet = 1 ms
	t0 := p.Next(0, 1000, rate)
	t1 := p.Next(0, 1000, rate)
	t2 := p.Next(0, 1000, rate)
	if t0 != 0 {
		t.Errorf("first send at %v, want 0", t0)
	}
	if t1 != time.Millisecond || t2 != 2*time.Millisecond {
		t.Errorf("spacing = %v, %v; want 1ms, 2ms", t1, t2)
	}
}

func TestPacerIdleAfterGap(t *testing.T) {
	var p Pacer
	p.Next(0, 1000, 8e6)
	if !p.Idle(10 * time.Millisecond) {
		t.Error("pacer should be idle after the budget elapses")
	}
	at := p.Next(10*time.Millisecond, 1000, 8e6)
	if at != 10*time.Millisecond {
		t.Errorf("send after idle gap at %v, want now", at)
	}
}

func TestPacerZeroRateSendsImmediately(t *testing.T) {
	var p Pacer
	if at := p.Next(5*time.Millisecond, 1e9, 0); at != 5*time.Millisecond {
		t.Errorf("zero-rate send at %v", at)
	}
	if at := p.Next(5*time.Millisecond, 1e9, 0); at != 5*time.Millisecond {
		t.Errorf("second zero-rate send at %v", at)
	}
}

// Property: pacer departure times are non-decreasing and never before now.
func TestPropertyPacerMonotone(t *testing.T) {
	f := func(sizes []uint16, rate uint32) bool {
		var p Pacer
		r := float64(rate%100_000_000) + 1
		last := time.Duration(-1)
		now := time.Duration(0)
		for i, s := range sizes {
			now = time.Duration(i) * 100 * time.Microsecond
			at := p.Next(now, int(s), r)
			if at < now || at < last {
				return false
			}
			last = at
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSendQueueFIFO(t *testing.T) {
	var q SendQueue
	for i := 0; i < 5; i++ {
		q.Push(Item{Data: i, Size: 100, Enqueued: time.Duration(i) * time.Millisecond})
	}
	if q.Len() != 5 || q.Bytes() != 500 {
		t.Fatalf("Len=%d Bytes=%d", q.Len(), q.Bytes())
	}
	for i := 0; i < 5; i++ {
		it, ok := q.Pop()
		if !ok || it.Data.(int) != i {
			t.Fatalf("pop %d = %v, %v", i, it.Data, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop from empty queue should fail")
	}
	if q.Bytes() != 0 {
		t.Errorf("Bytes = %d after drain", q.Bytes())
	}
}

func TestSendQueueDelay(t *testing.T) {
	var q SendQueue
	if q.Delay(time.Second) != 0 {
		t.Error("empty queue delay should be 0")
	}
	q.Push(Item{Size: 1, Enqueued: 100 * time.Millisecond})
	if got := q.Delay(350 * time.Millisecond); got != 250*time.Millisecond {
		t.Errorf("Delay = %v", got)
	}
	if got := q.Delay(50 * time.Millisecond); got != 0 {
		t.Errorf("Delay before enqueue = %v, want clamp to 0", got)
	}
}

func TestSendQueueDiscardOlderThan(t *testing.T) {
	var q SendQueue
	for i := 0; i < 10; i++ {
		q.Push(Item{Size: 10, Enqueued: time.Duration(i) * 10 * time.Millisecond})
	}
	n := q.DiscardOlderThan(45 * time.Millisecond)
	if n != 5 {
		t.Errorf("discarded %d, want 5", n)
	}
	it, _ := q.Peek()
	if it.Enqueued != 50*time.Millisecond {
		t.Errorf("head enqueued at %v, want 50ms", it.Enqueued)
	}
	if q.Bytes() != 50 {
		t.Errorf("Bytes = %d, want 50", q.Bytes())
	}
}

func TestSendQueueClear(t *testing.T) {
	var q SendQueue
	q.Push(Item{Size: 7})
	q.Push(Item{Size: 3})
	if n := q.Clear(); n != 2 {
		t.Errorf("Clear = %d, want 2", n)
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Errorf("after Clear: Len=%d Bytes=%d", q.Len(), q.Bytes())
	}
}

func TestSendQueueCompaction(t *testing.T) {
	var q SendQueue
	// Push and pop enough to trigger internal compaction, then verify
	// order is preserved.
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			q.Push(Item{Data: round*100 + i, Size: 1})
		}
		for i := 0; i < 100; i++ {
			it, ok := q.Pop()
			if !ok || it.Data.(int) != round*100+i {
				t.Fatalf("round %d item %d: got %v ok=%v", round, i, it.Data, ok)
			}
		}
	}
}

// Property: queue byte accounting is exact under any push/pop/discard mix.
func TestPropertySendQueueAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		var q SendQueue
		want := 0
		wantLen := 0
		now := time.Duration(0)
		for _, op := range ops {
			now += time.Millisecond
			switch op % 3 {
			case 0:
				size := int(op)%500 + 1
				q.Push(Item{Size: size, Enqueued: now})
				want += size
				wantLen++
			case 1:
				if it, ok := q.Pop(); ok {
					want -= it.Size
					wantLen--
				}
			case 2:
				cutoff := now - 5*time.Millisecond
				for {
					it, ok := q.Peek()
					if !ok || it.Enqueued >= cutoff {
						break
					}
					q.Pop()
					want -= it.Size
					wantLen--
				}
			}
			if q.Bytes() != want || q.Len() != wantLen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRepairAwareAdjustsTarget(t *testing.T) {
	s := NewStatic(25e6)
	if got := s.TargetBitrate(0); got != 25e6 {
		t.Fatalf("target before probe: %v", got)
	}
	s.SetRepairSpend(func(time.Duration) float64 { return 3e6 })
	if got := s.TargetBitrate(0); got != 22e6 {
		t.Fatalf("target with 3 Mbps repair spend: %v", got)
	}
	// The floor holds even under a pathological spend report.
	s.SetRepairSpend(func(time.Duration) float64 { return 40e6 })
	if got := s.TargetBitrate(0); got != 12.5e6 {
		t.Fatalf("floored target: %v", got)
	}
	s.SetRepairSpend(nil)
	if got := s.TargetBitrate(0); got != 25e6 {
		t.Fatalf("target after detach: %v", got)
	}
}
