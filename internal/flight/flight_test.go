package flight

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestStandardFlightShape(t *testing.T) {
	p := StandardFlight()
	d := p.Duration()
	if d < 4*time.Minute || d > 8*time.Minute {
		t.Errorf("flight duration = %v, want ≈6 min", d)
	}
	// Starts and ends on the ground at the takeoff point.
	s0 := p.At(0)
	if s0.Alt != 0 || s0.X != 0 {
		t.Errorf("start state = %+v", s0)
	}
	sEnd := p.At(d)
	if sEnd.Alt != 0 {
		t.Errorf("end altitude = %v, want 0", sEnd.Alt)
	}
	if sEnd.X != 0 {
		t.Errorf("end X = %v, want back at takeoff", sEnd.X)
	}
}

func TestStandardFlightReachesAllLevels(t *testing.T) {
	p := StandardFlight()
	levels := map[int]bool{}
	maxAlt := 0.0
	for ts := time.Duration(0); ts <= p.Duration(); ts += time.Second {
		s := p.At(ts)
		if s.Alt > maxAlt {
			maxAlt = s.Alt
		}
		for _, l := range []float64{40, 80, 120} {
			if s.Alt > l-0.5 && s.Alt < l+0.5 {
				levels[int(l)] = true
			}
		}
	}
	if maxAlt > 120.01 {
		t.Errorf("max altitude = %v, regulations cap at 120 m", maxAlt)
	}
	for _, l := range []int{40, 80, 120} {
		if !levels[l] {
			t.Errorf("flight never dwells at %d m", l)
		}
	}
}

func TestStandardFlightLeapDistance(t *testing.T) {
	p := StandardFlight()
	minX, maxX := 0.0, 0.0
	for ts := time.Duration(0); ts <= p.Duration(); ts += time.Second {
		s := p.At(ts)
		if s.X < minX {
			minX = s.X
		}
		if s.X > maxX {
			maxX = s.X
		}
	}
	if maxX-minX < 190 || maxX-minX > 210 {
		t.Errorf("horizontal span = %v m, want ≈200", maxX-minX)
	}
}

func TestStandardFlightSpeeds(t *testing.T) {
	p := StandardFlight()
	maxSpeed := 0.0
	for ts := time.Duration(0); ts <= p.Duration(); ts += 100 * time.Millisecond {
		s := p.At(ts)
		if s.Speed > maxSpeed {
			maxSpeed = s.Speed
		}
		if s.Phase == PhaseCruise && (s.Speed < 3 || s.Speed > 4.5) {
			t.Fatalf("cruise speed = %v m/s at %v, want ≈3.6", s.Speed, ts)
		}
	}
	if maxSpeed > 60.0/3.6 {
		t.Errorf("max speed = %v m/s, exceeds the 60 km/h the paper recorded", maxSpeed)
	}
}

func TestStandardFlightClampsOutsideRange(t *testing.T) {
	p := StandardFlight()
	before := p.At(-time.Second)
	after := p.At(p.Duration() + time.Hour)
	if before.Alt != 0 || after.Alt != 0 {
		t.Errorf("clamped states: %+v / %+v", before, after)
	}
}

func TestGroundProfileStaysOnGround(t *testing.T) {
	p := GroundProfile(6*time.Minute, rand.New(rand.NewSource(1)))
	if p.Duration() != 6*time.Minute {
		t.Errorf("duration = %v", p.Duration())
	}
	moved := false
	for ts := time.Duration(0); ts <= p.Duration(); ts += time.Second {
		s := p.At(ts)
		if s.Alt != 0 {
			t.Fatalf("ground profile at altitude %v", s.Alt)
		}
		if s.Speed > 0.1 {
			moved = true
		}
	}
	if !moved {
		t.Error("ground profile never moves")
	}
}

func TestGroundProfileHasIdlePeriods(t *testing.T) {
	p := GroundProfile(6*time.Minute, rand.New(rand.NewSource(2)))
	idle := 0
	total := 0
	for ts := time.Duration(0); ts <= p.Duration(); ts += time.Second {
		total++
		if p.At(ts).Speed < 0.1 {
			idle++
		}
	}
	if frac := float64(idle) / float64(total); frac < 0.2 {
		t.Errorf("idle fraction = %v, the ground dataset should include long stationary periods", frac)
	}
}

func TestGroundProfileDeterministic(t *testing.T) {
	a := GroundProfile(6*time.Minute, rand.New(rand.NewSource(7)))
	b := GroundProfile(6*time.Minute, rand.New(rand.NewSource(7)))
	for ts := time.Duration(0); ts <= a.Duration(); ts += 10 * time.Second {
		if a.At(ts) != b.At(ts) {
			t.Fatalf("same-seed profiles diverge at %v", ts)
		}
	}
}

// Property: states are continuous — no teleporting between close instants.
func TestPropertyFlightContinuity(t *testing.T) {
	p := StandardFlight()
	f := func(ms uint32) bool {
		ts := time.Duration(ms%uint32(p.Duration()/time.Millisecond)) * time.Millisecond
		a := p.At(ts)
		b := p.At(ts + 100*time.Millisecond)
		dx, dy, dz := b.X-a.X, b.Y-a.Y, b.Alt-a.Alt
		// ≤ max speed (60 km/h = 16.7 m/s) × 0.1 s, with slack.
		return dist3(dx, dy, dz) <= 2.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: altitude never negative, never above the 120 m cap.
func TestPropertyAltitudeBounds(t *testing.T) {
	p := StandardFlight()
	g := GroundProfile(6*time.Minute, rand.New(rand.NewSource(3)))
	f := func(ms uint32) bool {
		ts := time.Duration(ms) * time.Millisecond
		sa, sg := p.At(ts), g.At(ts)
		return sa.Alt >= 0 && sa.Alt <= 120.01 && sg.Alt == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
