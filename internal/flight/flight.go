// Package flight generates the mobility profiles of the measurement
// campaign: the published UAV trajectory (Appendix A.2, Fig. 11 — vertical
// climbs to 40/80/120 m interleaved with ≈200 m horizontal leaps, ≈6 min of
// air time) and the ground profile (a motorbike moving horizontally at
// similar speeds, with the longer stationary periods the paper notes for the
// ground dataset).
package flight

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Phase labels the flight state.
type Phase int

// Flight phases.
const (
	PhaseHover Phase = iota
	PhaseClimb
	PhaseCruise
	PhaseDescent
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseClimb:
		return "climb"
	case PhaseCruise:
		return "cruise"
	case PhaseDescent:
		return "descent"
	default:
		return "hover"
	}
}

// State is the vehicle state at one instant.
type State struct {
	// X, Y are ground coordinates in metres relative to the takeoff point.
	X, Y float64
	// Alt is the altitude above ground in metres.
	Alt float64
	// Speed is the total speed in m/s.
	Speed float64
	Phase Phase
}

// Profile yields the vehicle state over time.
type Profile interface {
	// At returns the state at elapsed time t, clamped to the profile end.
	At(t time.Duration) State
	// Duration returns the total profile length.
	Duration() time.Duration
}

// waypoint marks a position reached at a given elapsed time.
type waypoint struct {
	at    time.Duration
	x, y  float64
	alt   float64
	phase Phase // phase of the segment ending at this waypoint
}

// segment holds the per-segment constants of the piecewise-linear
// interpolation, precomputed once so the per-packet At call does no
// square roots. The values are exactly what the interpolation loop used
// to recompute each call, so State results are bit-identical.
type segment struct {
	dx, dy, dz float64
	speed      float64
}

// path is a piecewise-linear Profile.
type path struct {
	wps  []waypoint
	segs []segment // segs[i] describes the segment ending at wps[i]
	// hint caches the segment index found by the last At call. Queries are
	// near-monotonic (channel models sample the trajectory as simulated time
	// advances), so the hint almost always validates and At is O(1) instead
	// of a linear scan per packet. At stays a pure function of t — the hint
	// only short-circuits the search for the same segment.
	hint int
}

// newPath builds a path and precomputes its segment constants.
func newPath(wps []waypoint) *path {
	p := &path{wps: wps, segs: make([]segment, len(wps))}
	for i := 1; i < len(wps); i++ {
		a, b := wps[i-1], wps[i]
		dx, dy, dz := b.x-a.x, b.y-a.y, b.alt-a.alt
		speed := 0.0
		if span := b.at - a.at; span > 0 {
			speed = dist3(dx, dy, dz) / span.Seconds()
		}
		p.segs[i] = segment{dx: dx, dy: dy, dz: dz, speed: speed}
	}
	return p
}

func (p *path) Duration() time.Duration {
	if len(p.wps) == 0 {
		return 0
	}
	return p.wps[len(p.wps)-1].at
}

func (p *path) At(t time.Duration) State {
	if len(p.wps) == 0 {
		return State{}
	}
	if t <= p.wps[0].at {
		w := p.wps[0]
		return State{X: w.x, Y: w.y, Alt: w.alt, Phase: PhaseHover}
	}
	last := p.wps[len(p.wps)-1]
	if t >= last.at {
		return State{X: last.x, Y: last.y, Alt: last.alt, Phase: PhaseHover}
	}
	// Locate the segment (a, b] containing t: the cached hint if it still
	// matches, otherwise a binary search for the first waypoint at or after
	// t — the same segment the original linear scan selected.
	i := p.hint
	if i < 1 || i >= len(p.wps) || t <= p.wps[i-1].at || t > p.wps[i].at {
		i = sort.Search(len(p.wps), func(j int) bool { return p.wps[j].at >= t })
		p.hint = i
	}
	a, b := p.wps[i-1], p.wps[i]
	sg := p.segs[i]
	frac := 0.0
	if span := b.at - a.at; span > 0 {
		frac = float64(t-a.at) / float64(span)
	}
	return State{
		X:     a.x + frac*sg.dx,
		Y:     a.y + frac*sg.dy,
		Alt:   a.alt + frac*sg.dz,
		Speed: sg.speed,
		Phase: b.phase,
	}
}

func dist3(dx, dy, dz float64) float64 {
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// StandardFlight returns the campaign trajectory of Fig. 11: lift off,
// climb to 40 m, a ≈200 m horizontal leap, repeat at 80 m and 120 m, then a
// straight descent. The median speed is ≈3.6 m/s (13 km/h) and the total
// air time ≈6 min, matching the published numbers.
func StandardFlight() Profile {
	const (
		climbSpeed  = 2.0 // m/s
		cruiseSpeed = 3.6 // m/s, 13 km/h
		leap        = 200.0
		hoverPause  = 8 * time.Second
	)
	var wps []waypoint
	at := time.Duration(0)
	x, alt := 0.0, 0.0
	add := func(dur time.Duration, nx, nalt float64, ph Phase) {
		at += dur
		x, alt = nx, nalt
		wps = append(wps, waypoint{at: at, x: x, alt: alt, phase: ph})
	}
	secs := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

	wps = append(wps, waypoint{})
	dir := 1.0
	for _, level := range []float64{40, 80, 120} {
		add(secs((level-alt)/climbSpeed), x, level, PhaseClimb)
		add(hoverPause, x, level, PhaseHover)
		add(secs(leap/cruiseSpeed), x+dir*leap, level, PhaseCruise)
		add(hoverPause, x, level, PhaseHover)
		dir = -dir
	}
	// Return above the takeoff point, then descend straight down to it.
	if x != 0 {
		add(secs(leap/cruiseSpeed), 0, alt, PhaseCruise)
		add(hoverPause, x, alt, PhaseHover)
	}
	add(secs(alt/climbSpeed), x, 0, PhaseDescent)
	return newPath(wps)
}

// GroundProfile returns the ground-measurement mobility: horizontal runs at
// motorbike speeds along the same axis, separated by stationary periods
// (the paper notes the ground dataset likely contains longer durations
// without movement). The profile length matches the flight duration so
// air/ground campaigns are comparable; rng drives the idle-period placement.
func GroundProfile(total time.Duration, rng *rand.Rand) Profile {
	const speed = 5.0 // m/s ≈ 18 km/h
	var wps []waypoint
	wps = append(wps, waypoint{})
	at := time.Duration(0)
	x := 0.0
	dir := 1.0
	for at < total {
		// Idle period: 20–80 s.
		idle := time.Duration(20+rng.Intn(61)) * time.Second
		at += idle
		wps = append(wps, waypoint{at: at, x: x, phase: PhaseHover})
		if at >= total {
			break
		}
		// Run: 100–400 m.
		run := float64(100 + rng.Intn(301))
		dur := time.Duration(run / speed * float64(time.Second))
		at += dur
		x += dir * run
		wps = append(wps, waypoint{at: at, x: x, phase: PhaseCruise})
		if x > 600 || x < -600 {
			dir = -dir
		}
	}
	// Clamp the final waypoint to the requested duration.
	wps[len(wps)-1].at = total
	return newPath(wps)
}
