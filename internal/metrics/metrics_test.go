package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.N() != 0 || d.Mean() != 0 || d.Quantile(0.5) != 0 || d.FracBelow(1) != 0 {
		t.Error("empty Dist should return zeros")
	}
	if got := d.CDF([]float64{1, 2}); got[0] != 0 || got[1] != 0 {
		t.Error("empty Dist CDF should be zero")
	}
	// Regression: an empty distribution used to report FracAtOrAbove = 1,
	// letting shape checks like FPS.FracAtOrAbove(29) pass vacuously.
	if got := d.FracAtOrAbove(29); got != 0 {
		t.Errorf("empty Dist FracAtOrAbove = %v, want 0", got)
	}
}

func TestDistBasicStats(t *testing.T) {
	var d Dist
	for _, v := range []float64{4, 1, 3, 2, 5} {
		d.Add(v)
	}
	if d.N() != 5 {
		t.Errorf("N = %d", d.N())
	}
	if !almost(d.Mean(), 3) {
		t.Errorf("Mean = %v", d.Mean())
	}
	if !almost(d.Median(), 3) {
		t.Errorf("Median = %v", d.Median())
	}
	if !almost(d.Min(), 1) || !almost(d.Max(), 5) {
		t.Errorf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	if !almost(d.Stddev(), math.Sqrt(2)) {
		t.Errorf("Stddev = %v", d.Stddev())
	}
}

func TestQuantileInterpolation(t *testing.T) {
	var d Dist
	d.Add(0)
	d.Add(10)
	if got := d.Quantile(0.25); !almost(got, 2.5) {
		t.Errorf("Quantile(0.25) = %v, want 2.5", got)
	}
	if got := d.Quantile(-1); !almost(got, 0) {
		t.Errorf("Quantile(-1) = %v, want clamp to min", got)
	}
	if got := d.Quantile(2); !almost(got, 10) {
		t.Errorf("Quantile(2) = %v, want clamp to max", got)
	}
}

func TestFracBelow(t *testing.T) {
	var d Dist
	for _, v := range []float64{1, 2, 2, 3} {
		d.Add(v)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0}, {1.5, 0.25}, {2, 0.25}, {2.5, 0.75}, {4, 1},
	}
	for _, c := range cases {
		if got := d.FracBelow(c.x); !almost(got, c.want) {
			t.Errorf("FracBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := d.FracAtOrAbove(2); !almost(got, 0.75) {
		t.Errorf("FracAtOrAbove(2) = %v, want 0.75", got)
	}
}

func TestCDFIsInclusive(t *testing.T) {
	var d Dist
	for _, v := range []float64{1, 2, 3} {
		d.Add(v)
	}
	got := d.CDF([]float64{0, 1, 2, 3, 4})
	want := []float64{0, 1.0 / 3, 2.0 / 3, 1, 1}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Errorf("CDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAddAll(t *testing.T) {
	var a, b Dist
	a.Add(1)
	b.Add(3)
	a.AddAll(&b)
	if a.N() != 2 || !almost(a.Mean(), 2) {
		t.Errorf("AddAll: n=%d mean=%v", a.N(), a.Mean())
	}
}

func TestBoxSummary(t *testing.T) {
	var d Dist
	for i := 1; i <= 5; i++ {
		d.Add(float64(i))
	}
	b := d.Box()
	if b.N != 5 || !almost(b.Min, 1) || !almost(b.Q1, 2) || !almost(b.Median, 3) ||
		!almost(b.Q3, 4) || !almost(b.Max, 5) || !almost(b.Mean, 3) {
		t.Errorf("Box = %+v", b)
	}
	if b.String() == "" {
		t.Error("Box.String empty")
	}
}

func TestTimeSeriesWindow(t *testing.T) {
	var ts TimeSeries
	for i := 0; i < 10; i++ {
		ts.Add(time.Duration(i)*time.Second, float64(i))
	}
	pts := ts.Window(2*time.Second, 5*time.Second)
	if len(pts) != 3 || pts[0].V != 2 || pts[2].V != 4 {
		t.Errorf("Window = %v", pts)
	}
	if got := ts.Window(20*time.Second, 30*time.Second); len(got) != 0 {
		t.Errorf("out-of-range window = %v", got)
	}
}

func TestTimeSeriesOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-order Add")
		}
	}()
	var ts TimeSeries
	ts.Add(2*time.Second, 1)
	ts.Add(1*time.Second, 1)
}

func TestWindowMaxMinRatio(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 50)
	ts.Add(200*time.Millisecond, 400)
	ts.Add(800*time.Millisecond, 100)
	r, ok := ts.WindowMaxMinRatio(0, time.Second)
	if !ok || !almost(r, 8) {
		t.Errorf("ratio = %v ok=%v, want 8 true", r, ok)
	}
	if _, ok := ts.WindowMaxMinRatio(5*time.Second, 6*time.Second); ok {
		t.Error("empty window should report ok=false")
	}
	var zs TimeSeries
	zs.Add(0, 0)
	if _, ok := zs.WindowMaxMinRatio(0, time.Second); ok {
		t.Error("zero minimum should report ok=false")
	}
}

func TestTimeSeriesDist(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 1)
	ts.Add(time.Second, 3)
	d := ts.Dist()
	if d.N() != 2 || !almost(d.Mean(), 2) {
		t.Errorf("Dist: n=%d mean=%v", d.N(), d.Mean())
	}
}

func TestRateCounter(t *testing.T) {
	var rc RateCounter
	for i := 0; i < 6; i++ {
		rc.Mark(time.Duration(i) * 10 * time.Second)
	}
	if rc.Count() != 6 {
		t.Errorf("Count = %d", rc.Count())
	}
	if got := rc.PerSecond(60 * time.Second); !almost(got, 0.1) {
		t.Errorf("PerSecond = %v", got)
	}
	if got := rc.PerMinute(60 * time.Second); !almost(got, 6) {
		t.Errorf("PerMinute = %v", got)
	}
	if got := rc.PerSecond(0); got != 0 {
		t.Errorf("PerSecond(0) = %v", got)
	}
}

func TestRateCounterBinned(t *testing.T) {
	var rc RateCounter
	rc.Mark(1 * time.Second)
	rc.Mark(1500 * time.Millisecond)
	rc.Mark(2500 * time.Millisecond)
	rc.Mark(10 * time.Second) // outside span
	bins := rc.Binned(3*time.Second, time.Second)
	want := []int{0, 2, 1}
	if len(bins) != 3 {
		t.Fatalf("bins = %v", bins)
	}
	for i := range want {
		if bins[i] != want[i] {
			t.Errorf("bins = %v, want %v", bins, want)
		}
	}
	if rc.Binned(0, time.Second) != nil || rc.Binned(time.Second, 0) != nil {
		t.Error("degenerate Binned args should return nil")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		if len(vals) == 0 {
			return true
		}
		var d Dist
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			d.Add(v)
		}
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		qa, qb := d.Quantile(a), d.Quantile(b)
		return qa <= qb && qa >= d.Min() && qb <= d.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FracBelow is the empirical CDF left limit — consistent with a
// direct count.
func TestPropertyFracBelowCount(t *testing.T) {
	f := func(vals []float64, x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		var d Dist
		n := 0
		count := 0
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d.Add(v)
			n++
			if v < x {
				count++
			}
		}
		if n == 0 {
			return true
		}
		return almost(d.FracBelow(x), float64(count)/float64(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CDF output is monotone for sorted inputs.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(vals []float64, xs []float64) bool {
		var d Dist
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d.Add(v)
		}
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		sort.Float64s(clean)
		out := d.CDF(clean)
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1] {
				return false
			}
		}
		for _, p := range out {
			if p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSamplesNotAliased is the regression test for the Samples aliasing
// footgun: quantile queries sort the internal slice in place, which used to
// silently reorder a previously returned Samples() slice.
func TestSamplesNotAliased(t *testing.T) {
	var d Dist
	in := []float64{5, 1, 4, 2, 3}
	for _, v := range in {
		d.Add(v)
	}
	got := d.Samples()
	d.Quantile(0.5) // sorts internally
	for i, v := range in {
		if got[i] != v {
			t.Fatalf("Samples() slice reordered by Quantile: got %v, want %v", got, in)
		}
	}
	// Mutating the returned slice must not corrupt the distribution.
	got[0] = 1e9
	if d.Max() != 5 {
		t.Fatalf("mutating Samples() corrupted the Dist: max %g", d.Max())
	}
}
