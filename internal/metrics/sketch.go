package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// The sketch layout is a package-wide constant so every Sketch shares it:
// merges never need a layout negotiation and campaign aggregates are a pure
// function of the sample multiset.
const (
	// SketchAlpha is the relative accuracy of the log-bucketed path: a
	// bucket's representative value is within ±SketchAlpha of every sample
	// the bucket holds.
	SketchAlpha = 0.01
	// sketchExactCap is the exact small-N path: a sketch holding at most
	// this many samples answers queries from the raw samples, so
	// small-campaign results (and the experiment suite's per-run
	// distributions) lose nothing.
	sketchExactCap = 128
)

var (
	// sketchGamma is the log-bucket base: bucket i covers
	// (gamma^(i-1), gamma^i], giving the ±SketchAlpha guarantee.
	sketchGamma   = (1 + SketchAlpha) / (1 - SketchAlpha)
	sketchLnGamma = math.Log(sketchGamma)
	// sketchRepFactor maps a bucket's upper edge gamma^i to its
	// representative value 2·gamma^i/(gamma+1), the point with equal
	// relative error to both edges.
	sketchRepFactor = 2 / (1 + sketchGamma)
)

// sketchIndex maps a positive value to its log-bucket index.
func sketchIndex(v float64) int32 {
	return int32(math.Ceil(math.Log(v) / sketchLnGamma))
}

// BucketIndex exposes the package bucketing scheme: the log-bucket index of
// a positive value, where bucket i covers (gamma^(i-1), gamma^i] with
// gamma = (1+SketchAlpha)/(1-SketchAlpha). Consumers that want to share the
// Sketch layout (the obs LogHistogram) call this instead of re-deriving it.
func BucketIndex(v float64) int32 { return sketchIndex(v) }

// BucketUpper returns bucket idx's upper edge gamma^idx — the inverse of
// BucketIndex up to the bucket's width.
func BucketUpper(idx int32) float64 { return math.Pow(sketchGamma, float64(idx)) }

// sketchRep returns the representative value of a positive bucket.
func sketchRep(idx int32) float64 {
	return math.Pow(sketchGamma, float64(idx)) * sketchRepFactor
}

// Sketch is a mergeable, fixed-layout, log-bucketed distribution summary:
// the campaign-scale replacement for Dist. Adding a sample is O(1), memory
// is O(distinct buckets) — bounded by the value range, not the sample
// count — and quantile/CDF queries come back within SketchAlpha relative
// error. Up to sketchExactCap samples the sketch keeps the raw values and
// answers exactly, so small distributions behave like a Dist.
//
// Merge is deterministic: the merged sketch's query answers are a pure
// function of the combined sample multiset, independent of merge order or
// grouping (the float Sum accumulates in fold order, so Mean may differ in
// the last ulps across orders — bucket counts, N, Min, Max and quantiles
// do not). The zero value is ready to use.
type Sketch struct {
	// exact holds the raw samples while n ≤ sketchExactCap; nil once the
	// sketch has spilled into buckets.
	exact  []float64
	sorted bool
	// pos and neg are the log-bucket counts for positive and negative
	// samples (neg indexed by the bucket of -v); zero counts exact zeros.
	pos, neg map[int32]int64
	zero     int64

	n        int64
	sum      float64
	min, max float64
}

// spilled reports whether the sketch has left the exact path.
func (s *Sketch) spilled() bool { return s.pos != nil }

// spill folds the exact samples into log buckets and drops them.
func (s *Sketch) spill() {
	if s.spilled() {
		return
	}
	s.pos = make(map[int32]int64)
	s.neg = make(map[int32]int64)
	for _, v := range s.exact {
		s.bucketAdd(v, 1)
	}
	s.exact = nil
	s.sorted = false
}

// bucketAdd counts one value (with multiplicity) into the bucket maps.
func (s *Sketch) bucketAdd(v float64, count int64) {
	switch {
	case v > 0:
		s.pos[sketchIndex(v)] += count
	case v < 0:
		s.neg[sketchIndex(-v)] += count
	default:
		s.zero += count
	}
}

// Add records one sample. Non-finite samples are ignored (a NaN cannot be
// ranked, an infinity has no bucket, and one pathological sample must not
// poison a campaign aggregate).
func (s *Sketch) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	if !s.spilled() {
		if s.n <= sketchExactCap {
			s.exact = append(s.exact, v)
			s.sorted = false
			return
		}
		s.spill()
	}
	s.bucketAdd(v, 1)
}

// AddDist folds every sample of a Dist into the sketch.
func (s *Sketch) AddDist(d *Dist) {
	for _, v := range d.samples {
		s.Add(v)
	}
}

// Merge folds o into s. o is not modified. The result's bucket counts (and
// therefore its quantiles, CDF and fractions) depend only on the combined
// sample multiset, not on the order or grouping of merges.
func (s *Sketch) Merge(o *Sketch) {
	if o.n == 0 {
		return
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.n == 0 || o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
	if !s.spilled() && !o.spilled() && s.n <= sketchExactCap {
		s.exact = append(s.exact, o.exact...)
		s.sorted = false
		return
	}
	s.spill()
	if o.spilled() {
		for idx, c := range o.pos {
			s.pos[idx] += c
		}
		for idx, c := range o.neg {
			s.neg[idx] += c
		}
		s.zero += o.zero
		return
	}
	for _, v := range o.exact {
		s.bucketAdd(v, 1)
	}
}

// N returns the number of samples.
func (s *Sketch) N() int { return int(s.n) }

// Sum returns the sum of all samples.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the sample mean, or 0 when empty.
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest sample (exact), or 0 when empty.
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample (exact), or 0 when empty.
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// sortExact sorts the exact samples in place for rank queries.
func (s *Sketch) sortExact() {
	if !s.sorted {
		sort.Float64s(s.exact)
		s.sorted = true
	}
}

// atom is one value/count cell of the bucketed distribution, used for rank
// walks in ascending value order.
type atom struct {
	v float64
	c int64
}

// atoms returns the bucket cells in ascending value order.
func (s *Sketch) atoms() []atom {
	out := make([]atom, 0, len(s.neg)+len(s.pos)+1)
	negIdx := make([]int32, 0, len(s.neg))
	for idx := range s.neg {
		negIdx = append(negIdx, idx)
	}
	// Larger |v| first for negatives → ascending value order.
	sort.Slice(negIdx, func(i, j int) bool { return negIdx[i] > negIdx[j] })
	for _, idx := range negIdx {
		out = append(out, atom{v: -sketchRep(idx), c: s.neg[idx]})
	}
	if s.zero > 0 {
		out = append(out, atom{v: 0, c: s.zero})
	}
	posIdx := make([]int32, 0, len(s.pos))
	for idx := range s.pos {
		posIdx = append(posIdx, idx)
	}
	sort.Slice(posIdx, func(i, j int) bool { return posIdx[i] < posIdx[j] })
	for _, idx := range posIdx {
		out = append(out, atom{v: sketchRep(idx), c: s.pos[idx]})
	}
	return out
}

// orderStat returns the k-th smallest sample's representative (0-indexed)
// from the bucketed path.
func orderStat(atoms []atom, k int64) float64 {
	var cum int64
	for _, a := range atoms {
		cum += a.c
		if cum > k {
			return a.v
		}
	}
	if len(atoms) == 0 {
		return 0
	}
	return atoms[len(atoms)-1].v
}

// clamp bounds a representative by the exactly-tracked extremes.
func (s *Sketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation
// between closest ranks, mirroring Dist.Quantile. On the exact path the
// answer is exact; on the bucketed path it is within SketchAlpha relative
// error of the Dist answer. Empty sketches return 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	pos := q * float64(s.n-1)
	lo := int64(math.Floor(pos))
	hi := int64(math.Ceil(pos))
	if !s.spilled() {
		s.sortExact()
		if lo == hi {
			return s.exact[lo]
		}
		frac := pos - float64(lo)
		return s.exact[lo]*(1-frac) + s.exact[hi]*frac
	}
	atoms := s.atoms()
	vlo := s.clamp(orderStat(atoms, lo))
	if lo == hi {
		return vlo
	}
	vhi := s.clamp(orderStat(atoms, hi))
	frac := pos - float64(lo)
	return vlo*(1-frac) + vhi*frac
}

// Median returns the 0.5-quantile.
func (s *Sketch) Median() float64 { return s.Quantile(0.5) }

// FracBelow returns the fraction of samples strictly below x. On the
// bucketed path a bucket counts as below x iff its representative is, so
// the boundary error is at most one bucket (±SketchAlpha in value).
func (s *Sketch) FracBelow(x float64) float64 {
	if s.n == 0 {
		return 0
	}
	if !s.spilled() {
		s.sortExact()
		i := sort.SearchFloat64s(s.exact, x)
		return float64(i) / float64(s.n)
	}
	var below int64
	for _, a := range s.atoms() {
		if a.v < x {
			below += a.c
		}
	}
	return float64(below) / float64(s.n)
}

// FracAtOrAbove returns the fraction of samples ≥ x, or 0 when empty (so
// threshold checks cannot pass vacuously on empty results).
func (s *Sketch) FracAtOrAbove(x float64) float64 {
	if s.n == 0 {
		return 0
	}
	return 1 - s.FracBelow(x)
}

// CDF evaluates the empirical CDF at each of xs, returning P(X ≤ x) with
// the same boundary convention as FracBelow.
func (s *Sketch) CDF(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if s.n == 0 {
		return out
	}
	if !s.spilled() {
		s.sortExact()
		for i, x := range xs {
			j := sort.Search(len(s.exact), func(k int) bool { return s.exact[k] > x })
			out[i] = float64(j) / float64(s.n)
		}
		return out
	}
	atoms := s.atoms()
	for i, x := range xs {
		var le int64
		for _, a := range atoms {
			if a.v <= x {
				le += a.c
			}
		}
		out[i] = float64(le) / float64(s.n)
	}
	return out
}

// Box returns the box-plot summary of the sketch.
func (s *Sketch) Box() Box {
	return Box{
		N:      s.N(),
		Min:    s.Quantile(0),
		Q1:     s.Quantile(0.25),
		Median: s.Quantile(0.5),
		Q3:     s.Quantile(0.75),
		Max:    s.Quantile(1),
		Mean:   s.Mean(),
	}
}

// Buckets returns the number of occupied cells: raw samples on the exact
// path, distinct log buckets (plus the zero cell) once spilled. This is
// the sketch's memory footprint driver.
func (s *Sketch) Buckets() int {
	if !s.spilled() {
		return len(s.exact)
	}
	n := len(s.pos) + len(s.neg)
	if s.zero > 0 {
		n++
	}
	return n
}

// RetainedBytes estimates the sketch's retained payload: 8 bytes per exact
// sample, or 16 bytes (index + count) per occupied bucket. It deliberately
// ignores fixed struct overhead — the point is how the footprint scales
// with sample count.
func (s *Sketch) RetainedBytes() int {
	if !s.spilled() {
		return 8 * len(s.exact)
	}
	return 16 * s.Buckets()
}

// sketchJSON is the wire shape of a Sketch: the exact samples (in insertion
// order) while on the exact path, or the bucket maps once spilled. The
// layout is a package constant, so no gamma/alpha negotiation travels with
// the payload. encoding/json writes map keys sorted and formats floats with
// the shortest round-tripping representation, so marshaling is byte-stable
// and unmarshal reconstructs the identical sketch state.
type sketchJSON struct {
	Exact   []float64        `json:"exact,omitempty"`
	Spilled bool             `json:"spilled,omitempty"`
	Zero    int64            `json:"zero,omitempty"`
	Pos     map[string]int64 `json:"pos,omitempty"`
	Neg     map[string]int64 `json:"neg,omitempty"`
	N       int64            `json:"n"`
	Sum     float64          `json:"sum"`
	Min     float64          `json:"min"`
	Max     float64          `json:"max"`
}

// MarshalJSON renders the sketch for transport (the distributed-campaign
// shard stream). The wire form is canonical — a pure function of the
// sample multiset and the accumulated sum: exact samples serialize in
// ascending order (a sorted copy; rank queries sort the stored slice in
// place, so insertion order is not stable state) and bucket maps serialize
// with sorted keys. Two sketches holding the same samples with the same
// fold grouping therefore marshal to identical bytes.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	out := sketchJSON{N: s.n, Sum: s.sum, Min: s.min, Max: s.max}
	if s.spilled() {
		out.Spilled = true
		out.Zero = s.zero
		out.Pos = bucketKeys(s.pos)
		out.Neg = bucketKeys(s.neg)
	} else if len(s.exact) > 0 {
		sorted := make([]float64, len(s.exact))
		copy(sorted, s.exact)
		sort.Float64s(sorted)
		out.Exact = sorted
	}
	return json.Marshal(out)
}

// UnmarshalJSON reconstructs a sketch marshaled by MarshalJSON. The
// receiver is overwritten. Merging the result behaves exactly like merging
// the original: counts, extremes and sums survive the round trip bit-for-
// bit (JSON floats use the shortest round-tripping form).
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var in sketchJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*s = Sketch{n: in.N, sum: in.Sum, min: in.Min, max: in.Max}
	if !in.Spilled {
		if int64(len(in.Exact)) != in.N {
			return fmt.Errorf("metrics: sketch JSON holds %d exact samples for n=%d", len(in.Exact), in.N)
		}
		s.exact = in.Exact
		return nil
	}
	s.pos = make(map[int32]int64, len(in.Pos))
	s.neg = make(map[int32]int64, len(in.Neg))
	s.zero = in.Zero
	if err := bucketIndexes(s.pos, in.Pos); err != nil {
		return err
	}
	return bucketIndexes(s.neg, in.Neg)
}

// bucketKeys converts a bucket map to its string-keyed wire form.
func bucketKeys(m map[int32]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for idx, c := range m {
		out[strconv.FormatInt(int64(idx), 10)] = c
	}
	return out
}

// bucketIndexes parses a wire bucket map back into dst.
func bucketIndexes(dst map[int32]int64, m map[string]int64) error {
	for k, c := range m {
		idx, err := strconv.ParseInt(k, 10, 32)
		if err != nil {
			return fmt.Errorf("metrics: sketch JSON bucket key %q: %w", k, err)
		}
		dst[int32(idx)] = c
	}
	return nil
}
