package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewTimeSeriesFromPointsSorts(t *testing.T) {
	pts := []Point{
		{T: 3 * time.Second, V: 3},
		{T: 1 * time.Second, V: 1},
		{T: 2 * time.Second, V: 2},
	}
	ts := NewTimeSeriesFromPoints(pts)
	got := ts.Points()
	for i := 1; i < len(got); i++ {
		if got[i].T < got[i-1].T {
			t.Fatalf("not sorted: %v", got)
		}
	}
	// The input slice is not mutated.
	if pts[0].T != 3*time.Second {
		t.Error("input mutated")
	}
	// Windowed queries work on the result.
	if w := ts.Window(1500*time.Millisecond, 2500*time.Millisecond); len(w) != 1 || w[0].V != 2 {
		t.Errorf("window = %v", w)
	}
}

// Property: building from shuffled points equals building in order.
func TestPropertyFromPointsOrderInvariant(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%50 + 1
		ordered := make([]Point, count)
		for i := range ordered {
			ordered[i] = Point{T: time.Duration(i) * time.Second, V: rng.Float64()}
		}
		shuffled := append([]Point(nil), ordered...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a := NewTimeSeriesFromPoints(ordered).Points()
		b := NewTimeSeriesFromPoints(shuffled).Points()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
