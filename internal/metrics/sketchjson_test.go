package metrics

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// roundTrip marshals and unmarshals a sketch, failing the test on error.
func roundTrip(t *testing.T, s *Sketch) *Sketch {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Sketch
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return &out
}

func TestSketchJSONRoundTripExact(t *testing.T) {
	s := sketchOf([]float64{3, 1, 2, -5, 0, 7.25})
	got := roundTrip(t, s)
	if got.N() != s.N() || got.Sum() != s.Sum() || got.Min() != s.Min() || got.Max() != s.Max() {
		t.Fatalf("round trip lost scalars: got %v/%v/%v/%v", got.N(), got.Sum(), got.Min(), got.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if got.Quantile(q) != s.Quantile(q) {
			t.Errorf("quantile %g: got %g, want %g", q, got.Quantile(q), s.Quantile(q))
		}
	}
}

func TestSketchJSONRoundTripSpilled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Sketch
	for i := 0; i < 4*sketchExactCap; i++ {
		s.Add(rng.NormFloat64() * 50)
	}
	if !s.spilled() {
		t.Fatal("sketch should have spilled")
	}
	got := roundTrip(t, &s)
	if !got.spilled() {
		t.Fatal("round trip lost the spilled state")
	}
	if got.N() != s.N() || got.Sum() != s.Sum() || got.Min() != s.Min() || got.Max() != s.Max() {
		t.Fatal("round trip lost scalars")
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if got.Quantile(q) != s.Quantile(q) {
			t.Errorf("quantile %g: got %g, want %g", q, got.Quantile(q), s.Quantile(q))
		}
	}
	if got.zero != s.zero || len(got.pos) != len(s.pos) || len(got.neg) != len(s.neg) {
		t.Errorf("bucket state differs: zero %d/%d pos %d/%d neg %d/%d",
			got.zero, s.zero, len(got.pos), len(s.pos), len(got.neg), len(s.neg))
	}
}

func TestSketchJSONRoundTripEmpty(t *testing.T) {
	var s Sketch
	got := roundTrip(t, &s)
	if got.N() != 0 || got.spilled() {
		t.Fatalf("empty round trip: n=%d spilled=%v", got.N(), got.spilled())
	}
}

// The wire form must be canonical: independent of insertion order and of
// whether rank queries (which sort the exact slice in place) ran before
// marshaling. This is what makes distributed shard payloads byte-comparable.
func TestSketchJSONCanonical(t *testing.T) {
	a := sketchOf([]float64{5, 1, 4, 2, 3})
	b := sketchOf([]float64{1, 2, 3, 4, 5})
	b.Median() // force the in-place sort on one of them
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Errorf("same multiset marshaled differently:\n%s\n%s", ab, bb)
	}
}

// Merging a round-tripped sketch must behave exactly like merging the
// original: the distributed campaign fold depends on it.
func TestSketchJSONMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	runs := make([]*Sketch, 6)
	for i := range runs {
		var s Sketch
		for j := 0; j < 40+60*i; j++ { // straddle the exact/spilled boundary
			s.Add(rng.ExpFloat64() * 20)
		}
		runs[i] = &s
	}
	var direct, viaWire Sketch
	for _, r := range runs {
		direct.Merge(r)
		viaWire.Merge(roundTrip(t, r))
	}
	db, err := json.Marshal(&direct)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.Marshal(&viaWire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(db, wb) {
		t.Errorf("merge after round trip diverged:\n%s\n%s", db, wb)
	}
}

func TestSketchJSONRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{"exact":[1,2],"n":5,"sum":3,"min":1,"max":2}`,                // n mismatch
		`{"spilled":true,"pos":{"x":1},"n":1,"sum":1,"min":1,"max":1}`, // bad bucket key
		`{"exact":"nope"}`, // wrong type
	}
	for _, c := range cases {
		var s Sketch
		if err := json.Unmarshal([]byte(c), &s); err == nil {
			t.Errorf("corrupt payload %s unmarshaled without error", c)
		}
	}
}
