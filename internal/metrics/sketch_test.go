package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sketchOf builds a sketch from samples.
func sketchOf(samples []float64) *Sketch {
	var s Sketch
	for _, v := range samples {
		s.Add(v)
	}
	return &s
}

func TestSketchEmpty(t *testing.T) {
	var s Sketch
	if s.N() != 0 || s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Errorf("empty sketch not all-zero: %+v", s.Box())
	}
	if got := s.FracAtOrAbove(10); got != 0 {
		t.Errorf("empty FracAtOrAbove = %g, want 0 (no vacuous threshold passes)", got)
	}
	if got := s.CDF([]float64{1, 2}); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty CDF = %v, want zeros", got)
	}
}

// TestSketchExactPathMatchesDist pins the small-N contract: at or below the
// exact cap the sketch is a Dist, bit for bit.
func TestSketchExactPathMatchesDist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var d Dist
	var s Sketch
	for i := 0; i < sketchExactCap; i++ {
		v := rng.ExpFloat64() * 50
		d.Add(v)
		s.Add(v)
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 1} {
		if dq, sq := d.Quantile(q), s.Quantile(q); dq != sq {
			t.Errorf("exact path q=%g: sketch %g != dist %g", q, sq, dq)
		}
	}
	for _, x := range []float64{1, 10, 50, 200} {
		if df, sf := d.FracBelow(x), s.FracBelow(x); df != sf {
			t.Errorf("exact path FracBelow(%g): sketch %g != dist %g", x, sf, df)
		}
	}
	xs := []float64{5, 25, 100}
	dc, sc := d.CDF(xs), s.CDF(xs)
	for i := range xs {
		if dc[i] != sc[i] {
			t.Errorf("exact path CDF(%g): sketch %g != dist %g", xs[i], sc[i], dc[i])
		}
	}
}

// TestSketchQuantileAccuracy checks the bucketed path's relative-error
// guarantee against exact Dist quantiles on a large sample.
func TestSketchQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var d Dist
	var s Sketch
	for i := 0; i < 50000; i++ {
		// Log-uniform over ~6 decades, the OWD/goodput value range.
		v := math.Exp(rng.Float64()*14 - 4)
		d.Add(v)
		s.Add(v)
	}
	for _, q := range []float64{0, 0.001, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999, 1} {
		dq, sq := d.Quantile(q), s.Quantile(q)
		if rel := math.Abs(sq-dq) / dq; rel > SketchAlpha {
			t.Errorf("q=%g: sketch %g vs dist %g, rel err %.4f > %.4f", q, sq, dq, rel, SketchAlpha)
		}
	}
	if s.Min() != d.Min() || s.Max() != d.Max() {
		t.Errorf("extremes not exact: sketch [%g,%g] vs dist [%g,%g]", s.Min(), s.Max(), d.Min(), d.Max())
	}
	if math.Abs(s.Mean()-d.Mean()) > 1e-9*math.Abs(d.Mean()) {
		t.Errorf("mean drifted: sketch %g vs dist %g", s.Mean(), d.Mean())
	}
	if s.Buckets() >= s.N()/10 {
		t.Errorf("sketch kept %d buckets for %d samples — not sublinear", s.Buckets(), s.N())
	}
}

// TestSketchNegativeAndZero covers the mirrored and zero cells.
func TestSketchNegativeAndZero(t *testing.T) {
	var s Sketch
	vals := make([]float64, 0, 600)
	for i := 0; i < 200; i++ {
		vals = append(vals, float64(i+1), -float64(i+1), 0)
	}
	for _, v := range vals {
		s.Add(v)
	}
	if s.N() != 600 {
		t.Fatalf("N = %d, want 600", s.N())
	}
	if med := s.Median(); math.Abs(med) > 1e-9 {
		t.Errorf("median of symmetric distribution = %g, want 0", med)
	}
	if s.Min() != -200 || s.Max() != 200 {
		t.Errorf("extremes [%g,%g], want [-200,200]", s.Min(), s.Max())
	}
	if fb := s.FracBelow(0); math.Abs(fb-200.0/600) > 0.01 {
		t.Errorf("FracBelow(0) = %g, want ≈1/3", fb)
	}
}

// TestSketchMergeOrderInvariance is the associativity/commutativity
// property test (testing/quick): for random sample batches, (a⊕b)⊕c and
// a⊕(c⊕b) answer every quantile and threshold query identically, and both
// agree with the exact Dist within one bucket's relative error.
func TestSketchMergeOrderInvariance(t *testing.T) {
	prop := func(a, b, c []float64, scale uint8) bool {
		// Map raw quick floats into a plausible positive-heavy range and
		// drop non-finite inputs (Add ignores NaN by contract anyway).
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, v := range in {
				v *= float64(scale%7+1) / 1e300
				if math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				out = append(out, v)
			}
			return out
		}
		a, b, c = clean(a), clean(b), clean(c)

		sa, sb, sc := sketchOf(a), sketchOf(b), sketchOf(c)
		// (a⊕b)⊕c
		var left Sketch
		left.Merge(sa)
		left.Merge(sb)
		left.Merge(sc)
		// a⊕(c⊕b)
		var inner Sketch
		inner.Merge(sc)
		inner.Merge(sb)
		var right Sketch
		right.Merge(sa)
		right.Merge(&inner)

		var d Dist
		for _, v := range a {
			d.Add(v)
		}
		for _, v := range b {
			d.Add(v)
		}
		for _, v := range c {
			d.Add(v)
		}

		if left.N() != right.N() || left.N() != d.N() {
			t.Logf("N mismatch: left %d right %d dist %d", left.N(), right.N(), d.N())
			return false
		}
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
			lq, rq := left.Quantile(q), right.Quantile(q)
			if lq != rq {
				t.Logf("q=%g: grouping changed the answer: %g vs %g", q, lq, rq)
				return false
			}
			dq := d.Quantile(q)
			// One bucket's relative error, plus interpolation slack when
			// the two closest ranks straddle buckets.
			tol := SketchAlpha*math.Abs(dq) + 1e-12
			if d.N() > 0 && math.Abs(lq-dq) > tol+interpSlack(&d, q) {
				t.Logf("q=%g: sketch %g vs dist %g beyond tolerance", q, lq, dq)
				return false
			}
		}
		for _, x := range []float64{-1, 0, 0.5, 2, 10} {
			if left.FracBelow(x) != right.FracBelow(x) {
				t.Logf("FracBelow(%g): grouping changed the answer", x)
				return false
			}
		}
		if left.Min() != right.Min() || left.Max() != right.Max() {
			t.Logf("extremes differ across groupings")
			return false
		}
		if math.Abs(left.Sum()-right.Sum()) > 1e-6*(1+math.Abs(left.Sum())) {
			t.Logf("sums diverged beyond float reassociation slack")
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// interpSlack bounds the extra error Dist's closest-rank interpolation can
// introduce relative to bucket representatives: the gap between the two
// straddled order statistics.
func interpSlack(d *Dist, q float64) float64 {
	if d.N() < 2 {
		return 0
	}
	pos := q * float64(d.N()-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return 0
	}
	d.sort()
	return math.Abs(d.samples[hi]-d.samples[lo]) * (1 + SketchAlpha)
}

// TestSketchMergeSpillBoundary exercises merges that cross the exact cap.
func TestSketchMergeSpillBoundary(t *testing.T) {
	mk := func(n int, base float64) *Sketch {
		var s Sketch
		for i := 0; i < n; i++ {
			s.Add(base + float64(i))
		}
		return &s
	}
	small := mk(sketchExactCap/2, 1)
	if small.spilled() {
		t.Fatal("small sketch spilled early")
	}
	// Exact + exact staying under the cap stays exact.
	var a Sketch
	a.Merge(mk(10, 1))
	a.Merge(mk(10, 100))
	if a.spilled() {
		t.Error("20-sample merge spilled")
	}
	// Crossing the cap spills, and the source is untouched.
	var b Sketch
	b.Merge(small)
	b.Merge(mk(sketchExactCap, 1000))
	if !b.spilled() {
		t.Error("over-cap merge did not spill")
	}
	if small.spilled() {
		t.Error("Merge mutated its argument")
	}
	if b.N() != sketchExactCap/2+sketchExactCap {
		t.Errorf("merged N = %d", b.N())
	}
}

func TestSketchAddDist(t *testing.T) {
	var d Dist
	for i := 1; i <= 1000; i++ {
		d.Add(float64(i))
	}
	var s Sketch
	s.AddDist(&d)
	if s.N() != 1000 {
		t.Fatalf("N = %d", s.N())
	}
	med := s.Median()
	if rel := math.Abs(med-d.Median()) / d.Median(); rel > SketchAlpha {
		t.Errorf("median %g vs %g, rel %g", med, d.Median(), rel)
	}
}
