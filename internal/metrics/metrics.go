// Package metrics provides the statistical aggregates used throughout the
// reproduction: sample distributions with quantiles and CDFs (the paper's
// box plots and CDF figures), time series with windowed queries (the
// pre/post-handover latency-ratio analysis of Fig. 9), and per-interval rate
// counters (handovers/s, goodput/s, stalls/min).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Dist accumulates a sample distribution. The zero value is ready to use.
type Dist struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add appends one sample.
func (d *Dist) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
	d.sum += v
}

// AddAll appends every sample of o.
func (d *Dist) AddAll(o *Dist) {
	d.samples = append(d.samples, o.samples...)
	d.sorted = false
	d.sum += o.sum
}

// N returns the number of samples.
func (d *Dist) N() int { return len(d.samples) }

// Samples returns a copy of the raw samples in insertion order (sorted
// ascending if a quantile query has run). The copy is the caller's: later
// quantile queries — which sort the internal slice in place — cannot
// reorder it, and mutating it cannot corrupt the distribution.
func (d *Dist) Samples() []float64 {
	out := make([]float64, len(d.samples))
	copy(out, d.samples)
	return out
}

// Sum returns the sum of all samples.
func (d *Dist) Sum() float64 { return d.sum }

// Mean returns the sample mean, or 0 for an empty distribution.
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / float64(len(d.samples))
}

func (d *Dist) sort() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks. It returns 0 for an empty distribution.
func (d *Dist) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	if q <= 0 {
		return d.samples[0]
	}
	if q >= 1 {
		return d.samples[len(d.samples)-1]
	}
	pos := q * float64(len(d.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.samples[lo]
	}
	frac := pos - float64(lo)
	return d.samples[lo]*(1-frac) + d.samples[hi]*frac
}

// Min returns the smallest sample, or 0 when empty.
func (d *Dist) Min() float64 { return d.Quantile(0) }

// Max returns the largest sample, or 0 when empty.
func (d *Dist) Max() float64 { return d.Quantile(1) }

// Median returns the 0.5-quantile.
func (d *Dist) Median() float64 { return d.Quantile(0.5) }

// Stddev returns the population standard deviation.
func (d *Dist) Stddev() float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	mean := d.Mean()
	var ss float64
	for _, v := range d.samples {
		dv := v - mean
		ss += dv * dv
	}
	return math.Sqrt(ss / float64(n))
}

// FracBelow returns the fraction of samples strictly below x.
func (d *Dist) FracBelow(x float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	i := sort.SearchFloat64s(d.samples, x)
	return float64(i) / float64(len(d.samples))
}

// FracAtOrAbove returns the fraction of samples ≥ x, or 0 for an empty
// distribution (so threshold checks cannot pass vacuously on empty results).
func (d *Dist) FracAtOrAbove(x float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return 1 - d.FracBelow(x)
}

// CDF evaluates the empirical CDF at each of xs, returning P(X ≤ x).
func (d *Dist) CDF(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(d.samples) == 0 {
		return out
	}
	d.sort()
	for i, x := range xs {
		// Upper bound: first index with sample > x.
		j := sort.Search(len(d.samples), func(k int) bool { return d.samples[k] > x })
		out[i] = float64(j) / float64(len(d.samples))
	}
	return out
}

// Box summarizes a distribution the way the paper's box plots do.
type Box struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
}

// Box returns the box-plot summary of the distribution.
func (d *Dist) Box() Box {
	return Box{
		N:      d.N(),
		Min:    d.Quantile(0),
		Q1:     d.Quantile(0.25),
		Median: d.Quantile(0.5),
		Q3:     d.Quantile(0.75),
		Max:    d.Quantile(1),
		Mean:   d.Mean(),
	}
}

// String renders the box summary on one line.
func (b Box) String() string {
	return fmt.Sprintf("n=%d min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g mean=%.3g",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
}

// Point is one timestamped sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// TimeSeries is an append-only series of timestamped samples. Points must be
// appended in non-decreasing time order.
type TimeSeries struct {
	points []Point
}

// Add appends a point; it panics if time order is violated, since windowed
// queries rely on sortedness.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	if n := len(ts.points); n > 0 && t < ts.points[n-1].T {
		panic(fmt.Sprintf("metrics: TimeSeries.Add out of order: %v after %v", t, ts.points[n-1].T))
	}
	ts.points = append(ts.points, Point{t, v})
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Points returns the underlying points. The caller must not mutate them.
func (ts *TimeSeries) Points() []Point { return ts.points }

// NewTimeSeriesFromPoints builds a series from possibly-unordered points
// (e.g. packet arrivals reordered by jitter), sorting them by time.
func NewTimeSeriesFromPoints(pts []Point) *TimeSeries {
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })
	return &TimeSeries{points: sorted}
}

// Window returns the points with from ≤ T < to.
func (ts *TimeSeries) Window(from, to time.Duration) []Point {
	lo := sort.Search(len(ts.points), func(i int) bool { return ts.points[i].T >= from })
	hi := sort.Search(len(ts.points), func(i int) bool { return ts.points[i].T >= to })
	return ts.points[lo:hi]
}

// WindowMaxMinRatio returns max/min over the window [from, to) and true, or
// 0 and false when the window has no points or a non-positive minimum. This
// is the paper's Fig. 9 statistic (latency spike magnitude around handovers).
func (ts *TimeSeries) WindowMaxMinRatio(from, to time.Duration) (float64, bool) {
	pts := ts.Window(from, to)
	if len(pts) == 0 {
		return 0, false
	}
	min, max := pts[0].V, pts[0].V
	for _, p := range pts[1:] {
		if p.V < min {
			min = p.V
		}
		if p.V > max {
			max = p.V
		}
	}
	if min <= 0 {
		return 0, false
	}
	return max / min, true
}

// Dist converts the series values to a distribution (timestamps dropped).
func (ts *TimeSeries) Dist() *Dist {
	var d Dist
	for _, p := range ts.points {
		d.Add(p.V)
	}
	return &d
}

// RateCounter counts events and converts them into a per-interval rate.
type RateCounter struct {
	events []time.Duration
}

// Mark records one event at time t.
func (rc *RateCounter) Mark(t time.Duration) { rc.events = append(rc.events, t) }

// Count returns the total number of events.
func (rc *RateCounter) Count() int { return len(rc.events) }

// Events returns the recorded event times.
func (rc *RateCounter) Events() []time.Duration { return rc.events }

// PerSecond returns events/second over the observation span.
func (rc *RateCounter) PerSecond(span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(len(rc.events)) / span.Seconds()
}

// PerMinute returns events/minute over the observation span.
func (rc *RateCounter) PerMinute(span time.Duration) float64 {
	return rc.PerSecond(span) * 60
}

// Binned returns the per-bin event counts over [0, span) with the given bin
// width. Events outside the span are ignored.
func (rc *RateCounter) Binned(span, bin time.Duration) []int {
	if bin <= 0 || span <= 0 {
		return nil
	}
	n := int((span + bin - 1) / bin)
	out := make([]int, n)
	for _, e := range rc.events {
		if e < 0 || e >= span {
			continue
		}
		out[int(e/bin)]++
	}
	return out
}
