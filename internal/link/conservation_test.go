package link

import (
	"testing"
	"testing/quick"
	"time"

	"rpivideo/internal/sim"
)

// Property: every packet offered to the link is exactly one of delivered,
// radio-lost, overflowed, AQM-dropped, or still queued — never duplicated,
// never vanished.
func TestPropertyLinkConservation(t *testing.T) {
	f := func(seed int64, burstiness uint8, aqm bool) bool {
		s := sim.New(seed)
		p := ProfileFor(0, 0) // urban P1
		p.AQM = aqm
		p.BufferBytes = 200_000 // small buffer to exercise overflow
		l := New(s, p, nil, nil, s.Stream("link"))
		delivered := 0
		l.Deliver = func(any, int, time.Duration, time.Duration) { delivered++ }
		dropped := 0
		l.OnDrop = func(any, int, time.Duration, DropReason) { dropped++ }

		offered := 0
		burst := int(burstiness)%20 + 1
		for at := time.Duration(0); at < 5*time.Second; at += 2 * time.Millisecond {
			at := at
			s.At(at, func() {
				for i := 0; i < burst; i++ {
					l.Send(nil, 1250)
					offered++
				}
			})
		}
		s.RunUntil(20 * time.Second) // drain everything
		inQueue := 0
		if l.QueueBytes() > 0 {
			inQueue = l.QueueBytes() / 1250
		}
		return delivered+dropped+inQueue == offered &&
			l.Delivered == delivered &&
			l.Lost+l.Overflows+l.AQMDrops == dropped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAQMBoundsSojourn(t *testing.T) {
	s := sim.New(4)
	p := cleanProfile() // 10 Mbps deterministic
	p.AQM = true
	p.AQMTarget = 50 * time.Millisecond
	p.AQMInterval = 100 * time.Millisecond
	l := New(s, p, nil, nil, s.Stream("link"))
	got := collect(l)
	// Offer 13 Mbps (1.3×) for 20 s: without AQM the sojourn would grow to
	// ≈800 ms (buffer limit); with CoDel it must stay bounded near target.
	for at := time.Duration(0); at < 20*time.Second; at += 769 * time.Microsecond {
		at := at
		s.At(at, func() { l.Send(nil, 1250) })
	}
	s.Run()
	if l.AQMDrops == 0 {
		t.Fatal("CoDel never dropped under sustained 1.3× overload")
	}
	// Steady-state (the sqrt control law needs ≈10 s to ramp against a
	// step overload): the tail delay must sit far below the ≈800 ms the
	// unmanaged buffer would reach.
	var worstLate time.Duration
	for _, a := range (*got)[len(*got)*3/4:] {
		if a.owd > worstLate {
			worstLate = a.owd
		}
	}
	if worstLate > 250*time.Millisecond {
		t.Errorf("steady-state worst OWD %v under CoDel, want bounded near target", worstLate)
	}
}
