package link

import "testing"

// TestPktRingFIFO pushes and pops across several growth and wrap cycles,
// checking strict FIFO order and slot reuse.
func TestPktRingFIFO(t *testing.T) {
	var r pktRing
	next, want := 0, 0
	push := func(n int) {
		for i := 0; i < n; i++ {
			r.push(queued{size: next})
			next++
		}
	}
	pop := func(n int) {
		for i := 0; i < n; i++ {
			q := r.pop()
			if q.size != want {
				t.Fatalf("pop = %d, want %d", q.size, want)
			}
			want++
		}
	}
	// Interleave so head walks around the buffer while it grows.
	push(3)
	pop(2)
	push(20) // forces growth with a non-zero head
	pop(10)
	push(40) // second growth, head mid-buffer
	pop(r.len())
	if r.len() != 0 {
		t.Fatalf("len = %d after draining", r.len())
	}
	push(5)
	pop(5)
	if next != want {
		t.Fatalf("pushed %d, popped %d", next, want)
	}
}

// TestPktRingTruncateAndAt exercises the in-place compaction pattern
// dropStaleQueue uses: read via at(i), compact, truncate.
func TestPktRingTruncateAndAt(t *testing.T) {
	var r pktRing
	for i := 0; i < 10; i++ {
		r.push(queued{size: i})
	}
	r.pop()
	r.pop() // head offset of 2: at(i) must account for it
	for i := 0; i < r.len(); i++ {
		if r.at(i).size != i+2 {
			t.Fatalf("at(%d) = %d, want %d", i, r.at(i).size, i+2)
		}
	}
	// Keep only the even-sized entries, as dropStaleQueue compacts.
	w := 0
	for i := 0; i < r.len(); i++ {
		if q := *r.at(i); q.size%2 == 0 {
			*r.at(w) = q
			w++
		}
	}
	r.truncate(w)
	if r.len() != 4 {
		t.Fatalf("len = %d after truncate, want 4", r.len())
	}
	for i, wantSize := 0, []int{2, 4, 6, 8}; i < r.len(); i++ {
		if r.at(i).size != wantSize[i] {
			t.Fatalf("after truncate at(%d) = %d, want %d", i, r.at(i).size, wantSize[i])
		}
	}
}
