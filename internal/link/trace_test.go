package link

import (
	"testing"
	"time"

	"rpivideo/internal/fault"
	"rpivideo/internal/obs"
	"rpivideo/internal/sim"
)

// TestTraceSendRecvPairs checks that every delivered packet produces a
// send/recv event pair sharing one packet id, with the recv's V carrying
// the one-way delay in milliseconds.
func TestTraceSendRecvPairs(t *testing.T) {
	s := sim.New(1)
	l := New(s, cleanProfile(), nil, nil, s.Stream("link"))
	tr := obs.New(0)
	l.SetTracer(tr, obs.DirUp)
	collect(l)
	for i := 0; i < 5; i++ {
		s.At(time.Duration(i)*10*time.Millisecond, func() { l.Send(i, 1250) })
	}
	s.Run()

	sends := map[int64]obs.Event{}
	recvs := map[int64]obs.Event{}
	for _, e := range tr.Events() {
		if e.Dir != obs.DirUp {
			t.Fatalf("event with wrong direction: %+v", e)
		}
		switch e.Kind {
		case obs.KindSend:
			sends[e.Seq] = e
		case obs.KindRecv:
			recvs[e.Seq] = e
		default:
			t.Fatalf("unexpected event kind %v on a clean link", e.Kind)
		}
	}
	if len(sends) != 5 || len(recvs) != 5 {
		t.Fatalf("got %d sends / %d recvs, want 5/5", len(sends), len(recvs))
	}
	for id, snd := range sends {
		rcv, ok := recvs[id]
		if !ok {
			t.Fatalf("send id %d has no recv", id)
		}
		if snd.Aux != 1250 || rcv.Aux != 1250 {
			t.Errorf("id %d sizes: send %d recv %d, want 1250", id, snd.Aux, rcv.Aux)
		}
		owdMs := float64(rcv.T-snd.T) / float64(time.Millisecond)
		if rcv.V != owdMs {
			t.Errorf("id %d recv V = %g, want OWD %g ms", id, rcv.V, owdMs)
		}
		// 1250 bytes at 10 Mbps = 1 ms serialization + 20 ms OWD.
		if owdMs < 20 || owdMs > 23 {
			t.Errorf("id %d OWD %g ms, want ≈21", id, owdMs)
		}
	}
}

// TestTraceOutageEvents checks that a scripted fault window produces one
// outage-start/outage-end pair bracketing the window, and that stale-drop
// events name the flushed packets.
func TestTraceOutageEvents(t *testing.T) {
	s := sim.New(2)
	l := New(s, cleanProfile(), nil, nil, s.Stream("link"))
	tr := obs.New(0)
	l.SetTracer(tr, obs.DirUp)
	line := fault.NewLine([]fault.Window{{Start: 100 * time.Millisecond, Duration: 2 * time.Second, Dir: fault.Both}}, fault.Uplink)
	l.SetFaults(line, true, 600*time.Millisecond)
	collect(l)
	s.Every(0, 50*time.Millisecond, func() {
		if s.Now() < 3*time.Second {
			l.Send(int(s.Now()/time.Millisecond), 1250)
		}
	})
	s.RunUntil(4 * time.Second)

	var starts, ends, stales int
	var startAt, endAt time.Duration
	for _, e := range tr.Events() {
		switch e.Kind {
		case obs.KindOutageStart:
			starts++
			startAt = e.T
		case obs.KindOutageEnd:
			ends++
			endAt = e.T
			if wantMs := float64(e.T-startAt) / float64(time.Millisecond); e.V != wantMs {
				t.Errorf("outage-end V = %g, want %g", e.V, wantMs)
			}
		case obs.KindDrop:
			if DropReason(e.Aux) == DropStale {
				stales++
			}
		}
	}
	if starts != 1 || ends != 1 {
		t.Fatalf("outage events: %d starts / %d ends, want 1/1", starts, ends)
	}
	if startAt < 100*time.Millisecond || endAt < 2100*time.Millisecond {
		t.Errorf("outage window [%v, %v] does not bracket the scripted [100ms, 2.1s]", startAt, endAt)
	}
	if stales == 0 {
		t.Error("no stale-drop events despite a flushed backlog")
	}
	if stales != l.StaleDrops {
		t.Errorf("stale-drop events %d != StaleDrops counter %d", stales, l.StaleDrops)
	}
}

// TestSendPathZeroAllocTraceDisabled pins the hot-path contract from the
// observability design: with tracing disabled (nil tracer), the per-packet
// trace guard adds zero allocations. The overflow path is used because it
// is pure bookkeeping — no queue append, no simulator event — so any
// allocation measured here would come from the tracing seam itself.
func TestSendPathZeroAllocTraceDisabled(t *testing.T) {
	prof := cleanProfile()
	prof.BufferBytes = 1 // every media packet overflows
	s := sim.New(3)
	l := New(s, prof, nil, nil, s.Stream("link"))
	l.Deliver = func(any, int, time.Duration, time.Duration) {}
	if allocs := testing.AllocsPerRun(1000, func() {
		l.Send(nil, 1250)
	}); allocs != 0 {
		t.Errorf("untraced send path allocates %.1f/op, want 0", allocs)
	}

	// The same path with a warm ring tracer attached must not allocate
	// either: Emit writes into preallocated storage.
	l.SetTracer(obs.New(1024), obs.DirUp)
	if allocs := testing.AllocsPerRun(1000, func() {
		l.Send(nil, 1250)
	}); allocs != 0 {
		t.Errorf("ring-traced send path allocates %.1f/op, want 0", allocs)
	}
}
