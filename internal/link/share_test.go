package link

import (
	"testing"
	"time"

	"rpivideo/internal/sim"
)

// TestCapacityShareScalesServiceTime: a half share doubles the
// serialization time of every packet, exactly as a halved cell capacity
// would.
func TestCapacityShareScalesServiceTime(t *testing.T) {
	s := sim.New(1)
	l := New(s, cleanProfile(), nil, nil, s.Stream("link"))
	l.SetCapacityShare(func(time.Duration) float64 { return 0.5 })
	got := collect(l)
	s.At(0, func() { l.Send(0, 1250) })
	s.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d of 1", len(*got))
	}
	// 1250 bytes at 10 Mbps × share 0.5 = 2 ms serialization + 20 ms OWD.
	owd := (*got)[0].owd
	if owd < 22*time.Millisecond || owd > 23*time.Millisecond {
		t.Errorf("OWD = %v, want ≈22 ms (2 ms serialization at half share)", owd)
	}
}

// TestCapacityShareThroughput: offered load well above the shared rate
// drains at capacity × share.
func TestCapacityShareThroughput(t *testing.T) {
	s := sim.New(1)
	l := New(s, cleanProfile(), nil, nil, s.Stream("link"))
	l.SetCapacityShare(func(time.Duration) float64 { return 0.25 })
	got := collect(l)
	const pkt = 1250
	for at := time.Duration(0); at < 2*time.Second; at += 500 * time.Microsecond {
		at := at
		s.At(at, func() { l.Send(nil, pkt) })
	}
	s.RunUntil(2 * time.Second)
	rate := float64(len(*got)*pkt*8) / 2
	// 10 Mbps × 0.25 = 2.5 Mbps.
	if rate < 2.2e6 || rate > 2.8e6 {
		t.Errorf("delivered rate = %.2f Mbps, want ≈2.5", rate/1e6)
	}
}

// TestCapacityShareQueueDelayConsistent: the pure QueueDelay observation
// reflects the share exactly as the advancing sampler does, and a nil
// share restores sole tenancy.
func TestCapacityShareQueueDelay(t *testing.T) {
	s := sim.New(1)
	// A low MinCapacity so the drain-estimate floor sits far below the
	// shared rate (the floor exists for interruption windows, not shares).
	prof := cleanProfile()
	prof.MinCapacity = 1e5
	l := New(s, prof, nil, nil, s.Stream("link"))
	_ = collect(l)
	// Fill the queue behind a paused clock, then compare drain estimates
	// with and without the share installed.
	s.At(0, func() {
		for i := 0; i < 100; i++ {
			l.Send(i, 1250)
		}
		full := l.QueueDelay()
		l.SetCapacityShare(func(time.Duration) float64 { return 0.5 })
		halved := l.QueueDelay()
		if halved < full*19/10 || halved > full*21/10 {
			t.Errorf("QueueDelay at half share = %v, want ≈2× the full-rate %v", halved, full)
		}
		l.SetCapacityShare(nil)
		if got := l.QueueDelay(); got != full {
			t.Errorf("QueueDelay after clearing the share = %v, want %v", got, full)
		}
	})
	s.Run()
}
