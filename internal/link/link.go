// Package link emulates the cellular access link of the measurement
// campaign: a time-varying-capacity bottleneck with a deep (bufferbloated)
// queue, residual burst loss, handover service interruptions, and the
// pre/post-handover capacity degradations that produce the paper's latency
// spikes (§4.2.2). It replaces the live LTE uplink per the substitution
// rule in DESIGN.md.
package link

import (
	"math"
	"math/rand"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/fault"
	"rpivideo/internal/flight"
	"rpivideo/internal/obs"
	"rpivideo/internal/sim"
)

// DropReason explains why the link dropped a packet.
type DropReason int

// Drop reasons.
const (
	// DropLoss is a radio loss (residual after HARQ).
	DropLoss DropReason = iota
	// DropOverflow is a bottleneck buffer tail drop.
	DropOverflow
	// DropAQM is a CoDel head drop by the active queue manager.
	DropAQM
	// DropStale is a queued packet flushed at re-establishment after an
	// outage: RRC re-establishment discards the stale RLC/PDCP backlog
	// rather than replaying dead video.
	DropStale
)

// String implements fmt.Stringer.
func (r DropReason) String() string {
	switch r {
	case DropLoss:
		return "loss"
	case DropAQM:
		return "aqm"
	case DropStale:
		return "stale"
	default:
		return "overflow"
	}
}

// packetClass separates the three kinds of traffic sharing the bearer:
// media, control (RTCP) and RTX (RFC 4588 retransmissions). RTX rides the
// media bottleneck — it competes for the same buffer bytes and suffers the
// same loss, AQM, stale-flush and in-order delivery — but is tallied in its
// own counters so media-only statistics (the paper's §4.1 PER) stay clean.
type packetClass uint8

const (
	classMedia packetClass = iota
	classCtrl
	classRTX
)

// flags returns the trace flag bits for the class.
func (c packetClass) flags() uint8 {
	switch c {
	case classCtrl:
		return obs.FlagCtrl
	case classRTX:
		return obs.FlagRTX
	default:
		return 0
	}
}

// Link is one emulated direction of the access link.
type Link struct {
	sim  *sim.Simulator
	prof Profile
	rng  *rand.Rand

	// machine supplies handover interruptions and radio degradation; nil
	// for a static (no-mobility) link.
	machine *cell.Machine
	// shareFn, when non-nil, returns the fleet scheduler's capacity share
	// for this UE at a given time (1 = sole tenancy of the serving cell).
	// It multiplies into every capacity read, advancing and peeking alike.
	shareFn func(time.Duration) float64
	// faults is this direction's scripted outage line; nil means none.
	faults *fault.Line
	// flushStale drops queued packets older than staleAfter when an
	// interruption ends; pendingFlush remembers that an interruption was
	// observed so the flush runs exactly once at resume.
	flushStale   bool
	staleAfter   time.Duration
	pendingFlush bool
	// lastArrival enforces RLC in-order delivery: per-packet jitter never
	// reorders arrivals within the bearer.
	lastArrival time.Duration
	// state supplies the vehicle state for altitude effects; nil means
	// ground level.
	state func(time.Duration) flight.State

	// Deliver is invoked when a packet exits the link. Must be set before
	// the first Send.
	Deliver func(meta any, size int, sentAt, deliveredAt time.Duration)
	// OnDrop, if set, is invoked when the link drops a packet.
	OnDrop func(meta any, size int, sentAt time.Duration, reason DropReason)

	// Capacity fluctuation (Ornstein–Uhlenbeck around MeanCapacity).
	capDev  float64 // relative deviation
	capLast time.Duration
	capInit bool

	// Bottleneck queue (ring buffer: the hot path never reslices or
	// reallocates in steady state).
	queue      pktRing
	queueBytes int
	serving    bool

	// inflight holds packets that finished serialization and await their
	// arrival event. Arrivals are clamped monotonic per link (RLC in-order
	// delivery), so this is strictly FIFO and one preallocated arrival
	// callback can pop the head instead of a per-packet closure.
	inflight pktRing

	// Preallocated event callbacks: scheduling a method value through
	// sim.At allocates a closure per call, so the three packet-path
	// callbacks are materialized once per link.
	serveFn  func() // l.serveNext
	servedFn func() // head finished serialization
	arriveFn func() // head of inflight arrives

	// outlierMean caches the profile-derived mean stall spacing so the
	// resample path does no float division.
	outlierMean time.Duration

	// Burst-loss (Gilbert) state.
	inBurst bool

	// nextOutlierIn is the remaining at-altitude exposure until the next
	// HARQ stall (exponentially distributed); negative means unsampled.
	nextOutlierIn time.Duration
	lastOutlierAt time.Duration

	// CoDel state (when the profile enables AQM).
	codelFirstAbove time.Duration // when the sojourn first exceeded target (+interval)
	codelDropNext   time.Duration
	codelDropping   bool
	codelCount      int

	// AQMDrops counts CoDel head drops of media packets.
	AQMDrops int

	// StaleDrops counts media packets flushed at re-establishment (stale
	// control packets fold into CtrlLost).
	StaleDrops int

	// In-flight packets: serialized, propagation delay pending.
	inFlight     int
	ctrlInFlight int
	rtxInFlight  int

	// Media counters. Only packets offered via Send count here, so PER and
	// overflow statistics derived from them are media-only (the paper's
	// §4.1 PER excludes RTCP).
	Sent      int
	Delivered int
	Lost      int
	Overflows int

	// Control-plane counters for SendControl traffic (RTCP on the media
	// bearer). CtrlLost folds radio losses and the rare CoDel head drop of
	// a control packet together.
	CtrlSent      int
	CtrlDelivered int
	CtrlLost      int

	// Retransmission counters for SendRTX traffic. RTX occupies media
	// buffer space (it is media, re-sent) but is excluded from the media
	// counters so PER and overflow statistics stay media-only.
	RtxSent       int
	RtxDelivered  int
	RtxLost       int
	RtxOverflows  int
	RtxAQMDrops   int
	RtxStaleDrops int

	// ctrlQueueBytes tracks queued control bytes separately from the media
	// queueBytes so control packets do not occupy media buffer space in
	// the overflow admission check.
	ctrlQueueBytes int

	// Tracing (nil trace = disabled; the emit sites are nil-guarded so the
	// packet path costs one predictable branch and zero allocations when
	// tracing is off). Tracing is strictly observational: it never draws
	// randomness or schedules events, so traced and untraced runs produce
	// identical results.
	trace       *obs.Tracer
	traceDir    obs.Dir
	nextID      int64
	inOutage    bool
	outageStart time.Duration

	// queueHist, when non-nil, records each served packet's queueing delay
	// (enqueue to end of serialization) in milliseconds. Like tracing it is
	// strictly observational: one nil-check branch on the service path and
	// no allocation.
	queueHist *obs.LogHistogram
}

type queued struct {
	meta   any
	size   int
	sentAt time.Duration
	class  packetClass
	id     int64
}

func (q queued) ctrl() bool { return q.class == classCtrl }

// pktRing is a FIFO ring buffer of queued packets with power-of-two
// capacity. Push and pop are O(1) without reslicing, so the bottleneck
// queue stops shedding its backing array one packet at a time.
type pktRing struct {
	buf  []queued
	head int
	n    int
}

func (r *pktRing) len() int { return r.n }

// at returns the i-th element from the head (0 = head) for in-place
// iteration.
func (r *pktRing) at(i int) *queued { return &r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *pktRing) push(q queued) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = q
	r.n++
}

// pop removes and returns the head element, zeroing its slot so the ring
// does not retain packet metas.
func (r *pktRing) pop() queued {
	q := r.buf[r.head]
	r.buf[r.head] = queued{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return q
}

func (r *pktRing) grow() {
	cap := len(r.buf) * 2
	if cap == 0 {
		cap = 16
	}
	buf := make([]queued, cap)
	for i := 0; i < r.n; i++ {
		buf[i] = *r.at(i)
	}
	r.buf = buf
	r.head = 0
}

// truncate keeps the first n elements, zeroing the rest (used by the stale
// flush after in-place compaction).
func (r *pktRing) truncate(n int) {
	for i := n; i < r.n; i++ {
		*r.at(i) = queued{}
	}
	r.n = n
}

// New returns a link on the given simulator. machine and state may be nil.
func New(s *sim.Simulator, prof Profile, machine *cell.Machine, state func(time.Duration) flight.State, rng *rand.Rand) *Link {
	l := &Link{sim: s, prof: prof, rng: rng, machine: machine, state: state}
	l.serveFn = l.serveNext
	l.servedFn = l.served
	l.arriveFn = l.arrive
	if prof.AltOutlierRate > 0 {
		l.outlierMean = time.Duration(float64(time.Second) / prof.AltOutlierRate)
	}
	return l
}

// SetFaults attaches a scripted outage line (may be nil) and the
// re-establishment queue policy: when flush is true, packets that queued
// more than staleAfter ago are dropped the moment service resumes after
// any interruption — scripted, RLF or handover. staleAfter ≤ 0 selects
// 600 ms.
func (l *Link) SetFaults(line *fault.Line, flush bool, staleAfter time.Duration) {
	l.faults = line
	l.flushStale = flush
	if staleAfter <= 0 {
		staleAfter = 600 * time.Millisecond
	}
	l.staleAfter = staleAfter
}

// SetTracer attaches an event tracer to this link direction. A nil tracer
// disables tracing. dir labels every event this link emits (up, down, up2).
func (l *Link) SetTracer(tr *obs.Tracer, dir obs.Dir) {
	l.trace = tr
	l.traceDir = dir
}

// SetQueueDelayHist attaches a histogram that records each served packet's
// queueing delay in milliseconds. Nil disables recording.
func (l *Link) SetQueueDelayHist(h *obs.LogHistogram) { l.queueHist = h }

// Capacity returns the link capacity in bits/s as of the most recently
// advanced point of the fluctuation process (before handover degradation).
//
// Capacity is a pure observation: it never draws from the link RNG and
// never advances the Ornstein–Uhlenbeck state, so observing a link mid-run
// cannot perturb the capacity realization (the "observation never draws
// randomness" invariant). The process itself advances only on the packet
// path, via capacity(now).
func (l *Link) Capacity() float64 { return l.peekCapacity() }

// peekCapacity computes the capacity at the current OU deviation without
// mutating any state. Before the first packet has advanced the process it
// reports the profile mean.
func (l *Link) peekCapacity() float64 {
	c := l.prof.MeanCapacity
	if l.capInit {
		c *= 1 + l.capDev
	}
	if c < l.prof.MinCapacity {
		c = l.prof.MinCapacity
	}
	return c
}

// capacity advances the OU fluctuation to now and returns the raw capacity.
func (l *Link) capacity(now time.Duration) float64 {
	if !l.capInit {
		l.capInit = true
		l.capLast = now
		l.capDev = l.rng.NormFloat64() * l.prof.CapSigma
	}
	dt := (now - l.capLast).Seconds()
	if dt > 0 {
		l.capLast = now
		tau := l.prof.CapTau.Seconds()
		if tau <= 0 {
			tau = 1
		}
		rate := dt / tau
		if rate > 1 {
			rate = 1
		}
		l.capDev += -l.capDev*rate + l.prof.CapSigma*math.Sqrt(2*rate)*l.rng.NormFloat64()
	}
	c := l.prof.MeanCapacity * (1 + l.capDev)
	if c < l.prof.MinCapacity {
		c = l.prof.MinCapacity
	}
	return c
}

// SetCapacityShare installs a fleet capacity-share lookup: effective
// capacity is multiplied by fn(now) ∈ (0, 1], the fraction of the serving
// cell's PRBs the scheduler grants this UE. The lookup must be a pure
// function of time (no randomness) so observation stays side-effect free.
// nil restores sole tenancy.
func (l *Link) SetCapacityShare(fn func(time.Duration) float64) { l.shareFn = fn }

// effectiveCapacity folds in the handover radio degradation and the fleet
// capacity share; it returns 0 when the link is interrupted.
func (l *Link) effectiveCapacity(now time.Duration) float64 {
	c := l.capacity(now)
	if l.machine != nil {
		c *= l.machine.RadioDegradation(now)
	}
	if l.shareFn != nil {
		c *= l.shareFn(now)
	}
	return c
}

// vehicleState returns the current vehicle state (ground if no provider).
func (l *Link) vehicleState(now time.Duration) flight.State {
	if l.state == nil {
		return flight.State{}
	}
	return l.state(now)
}

// lose decides radio loss for one packet using the Gilbert burst model,
// with extra loss above the profile's altitude threshold. A scripted loss
// fade (fault.Window with Loss set) erases every packet deterministically,
// without consuming the Gilbert stream's randomness.
func (l *Link) lose(now time.Duration) bool {
	if l.faults.Lossy(now) {
		return true
	}
	if l.prof.PER <= 0 {
		return false
	}
	burst := l.prof.MeanBurstLen
	if burst < 1 {
		burst = 1
	}
	if l.inBurst {
		if l.rng.Float64() < 1/burst {
			l.inBurst = false // burst ends after this (still lost) packet
		}
		return true
	}
	enter := l.prof.PER / burst / (1 - l.prof.PER)
	if l.prof.AltLossAbove > 0 && l.vehicleState(now).Alt > l.prof.AltLossAbove {
		enter *= l.prof.AltLossFactor
	}
	if l.rng.Float64() < enter {
		l.inBurst = true
		return true
	}
	return false
}

// Send puts one media packet onto the link at the current simulation time.
func (l *Link) Send(meta any, size int) { l.send(meta, size, classMedia) }

// SendControl puts one control-plane packet (e.g. an RTCP sender report
// sharing the media bearer) onto the link. It traverses the same radio —
// loss model, queue and serialization — but is tallied in the Ctrl*
// counters, and its bytes do not count against the media buffer in the
// overflow check: RTCP's share of the bearer is bounded (RFC 3550 §6.2
// allots it 5% of session bandwidth; here it is one small report per
// second), so it is never tail-dropped.
func (l *Link) SendControl(meta any, size int) { l.send(meta, size, classCtrl) }

// SendRTX puts one retransmitted media packet onto the link. RTX is media
// for the bottleneck — it occupies media buffer bytes, competes in the
// overflow admission and suffers AQM, stale flush and in-order delivery —
// but is tallied in the Rtx* counters.
func (l *Link) SendRTX(meta any, size int) { l.send(meta, size, classRTX) }

func (l *Link) send(meta any, size int, class packetClass) {
	now := l.sim.Now()
	id := l.nextID
	l.nextID++
	flags := class.flags()
	switch class {
	case classCtrl:
		l.CtrlSent++
	case classRTX:
		l.RtxSent++
	default:
		l.Sent++
	}
	if l.trace != nil {
		l.trace.Emit(obs.Event{T: now, Kind: obs.KindSend, Dir: l.traceDir, Flags: flags, Seq: id, Aux: int64(size)})
	}
	if l.lose(now) {
		if l.trace != nil {
			l.trace.Emit(obs.Event{T: now, Kind: obs.KindDrop, Dir: l.traceDir, Flags: flags, Seq: id, Aux: int64(DropLoss)})
		}
		switch class {
		case classCtrl:
			l.CtrlLost++
		case classRTX:
			l.RtxLost++
		default:
			l.Lost++
			if l.OnDrop != nil {
				l.OnDrop(meta, size, now, DropLoss)
			}
		}
		return
	}
	if class != classCtrl && l.queueBytes+size > l.prof.BufferBytes {
		if class == classRTX {
			l.RtxOverflows++
		} else {
			l.Overflows++
		}
		if l.trace != nil {
			l.trace.Emit(obs.Event{T: now, Kind: obs.KindDrop, Dir: l.traceDir, Flags: flags, Seq: id, Aux: int64(DropOverflow)})
		}
		if class == classMedia && l.OnDrop != nil {
			l.OnDrop(meta, size, now, DropOverflow)
		}
		return
	}
	l.queue.push(queued{meta: meta, size: size, sentAt: now, class: class, id: id})
	if class == classCtrl {
		l.ctrlQueueBytes += size
	} else {
		l.queueBytes += size
	}
	if !l.serving {
		l.serveNext()
	}
}

// QueueBytes returns the bytes waiting in the bottleneck buffer (media and
// control).
func (l *Link) QueueBytes() int { return l.queueBytes + l.ctrlQueueBytes }

// QueuedPackets returns the packets waiting in the bottleneck queue,
// media and control planes separately (RTX is reported by RtxQueued).
func (l *Link) QueuedPackets() (media, ctrl int) {
	for i := 0; i < l.queue.len(); i++ {
		switch l.queue.at(i).class {
		case classCtrl:
			ctrl++
		case classMedia:
			media++
		}
	}
	return media, ctrl
}

// RtxQueued returns the retransmissions waiting in the bottleneck queue.
func (l *Link) RtxQueued() int {
	n := 0
	for i := 0; i < l.queue.len(); i++ {
		if l.queue.at(i).class == classRTX {
			n++
		}
	}
	return n
}

// InFlightPackets returns the packets that finished serialization but have
// not yet been delivered (propagation delay pending), per plane.
func (l *Link) InFlightPackets() (media, ctrl int) { return l.inFlight, l.ctrlInFlight }

// RtxInFlight returns the retransmissions serialized but not yet delivered.
func (l *Link) RtxInFlight() int { return l.rtxInFlight }

// QueueDelay estimates the buffer drain time at the current effective
// capacity, handover/degradation windows included. The capacity is floored
// (at the profile's MinCapacity, or 1% of MeanCapacity if unset) so an
// interrupted link reports a large-but-finite backlog instead of dividing
// by zero.
//
// Like Capacity, QueueDelay is a pure observation: it reads the capacity
// realization at its most recently advanced point without drawing
// randomness, so sampling it mid-run leaves the run byte-identical.
func (l *Link) QueueDelay() time.Duration {
	c := l.peekCapacity()
	if l.machine != nil {
		c *= l.machine.RadioDegradation(l.sim.Now())
	}
	if l.shareFn != nil {
		c *= l.shareFn(l.sim.Now())
	}
	return l.queueDelayAt(c)
}

// SampleQueueDelay is the advancing variant of QueueDelay: it steps the
// capacity fluctuation to now (drawing from the link RNG) before computing
// the drain time, exactly as every packet service does. It exists for
// in-run samplers that are part of the simulated system — core's fault
// recovery probe uses it so the capacity realization of fault campaigns
// (and their golden traces) is unchanged from when QueueDelay itself
// advanced the process. External observers must use QueueDelay.
func (l *Link) SampleQueueDelay() time.Duration {
	return l.queueDelayAt(l.effectiveCapacity(l.sim.Now()))
}

// queueDelayAt computes the floored drain-time estimate at capacity c.
func (l *Link) queueDelayAt(c float64) time.Duration {
	floor := l.prof.MinCapacity
	if floor <= 0 {
		floor = 0.01 * l.prof.MeanCapacity
	}
	if floor < 1 {
		floor = 1
	}
	if c < floor {
		c = floor
	}
	return time.Duration(float64(l.QueueBytes()*8) / c * float64(time.Second))
}

// dequeueHead removes the head packet and returns it, keeping the per-plane
// byte accounting straight.
func (l *Link) dequeueHead() queued {
	head := l.queue.pop()
	if head.ctrl() {
		l.ctrlQueueBytes -= head.size
	} else {
		l.queueBytes -= head.size
	}
	return head
}

// Interrupted reports whether the link's service is interrupted at now —
// handover execution, RLF re-establishment or a scripted fault window. It
// is a pure read (the bond health monitor's outage probe); the link's own
// service path uses interruption below.
func (l *Link) Interrupted(now time.Duration) bool {
	_, down := l.interruption(now)
	return down
}

// interruption reports whether the link is silenced at now — handover
// execution, RLF re-establishment (both via the machine's busy window) or
// a scripted fault window — and the earliest instant service can resume.
func (l *Link) interruption(now time.Duration) (resume time.Duration, down bool) {
	resume = now
	if l.machine != nil && l.machine.InHandover(now) {
		down = true
		if bu := l.machine.BusyUntil(); bu > resume {
			resume = bu
		}
	}
	if until, blocked := l.faults.Blocked(now); blocked {
		down = true
		if until > resume {
			resume = until
		}
	}
	if down && resume <= now {
		resume = now + time.Millisecond
	}
	return resume, down
}

// serveNext serves the head-of-line packet. Service is event-driven: the
// serialization time comes from the current effective capacity, and an
// interrupted link schedules exactly one resume event at the end of the
// interruption — no polling while the radio is dead.
func (l *Link) serveNext() {
	if l.queue.len() == 0 {
		l.serving = false
		return
	}
	l.serving = true
	now := l.sim.Now()

	if resume, down := l.interruption(now); down {
		if !l.inOutage {
			l.inOutage = true
			l.outageStart = now
			if l.trace != nil {
				l.trace.Emit(obs.Event{T: now, Kind: obs.KindOutageStart, Dir: l.traceDir})
			}
		}
		l.pendingFlush = l.flushStale
		l.sim.At(resume, l.serveFn)
		return
	}
	if l.inOutage {
		l.inOutage = false
		if l.trace != nil {
			l.trace.Emit(obs.Event{T: now, Kind: obs.KindOutageEnd, Dir: l.traceDir,
				V: float64(now-l.outageStart) / float64(time.Millisecond)})
		}
	}
	if l.pendingFlush {
		// Service resumed after an interruption: discard the stale backlog
		// before serving (see SetFaults).
		l.pendingFlush = false
		l.dropStaleQueue(now)
		if l.queue.len() == 0 {
			l.serving = false
			return
		}
	}

	c := l.effectiveCapacity(now)
	if c <= 0 {
		// Degraded to nothing outside any interruption window (only a
		// pathological profile gets here): retry shortly.
		l.sim.After(5*time.Millisecond, l.serveFn)
		return
	}
	l.codel(now)
	if l.queue.len() == 0 {
		l.serving = false
		return
	}
	pkt := l.queue.at(0)
	ser := time.Duration(float64(pkt.size*8) / c * float64(time.Second))
	// HARQ/RLC retransmission pile-up at altitude: the radio stalls for a
	// while, and RLC's in-order delivery stalls everything behind it too
	// (Fig. 13's high-RTT outliers above 100 m). A service-time stall
	// keeps delivery FIFO, as LTE does; events follow a Poisson process
	// in at-altitude time.
	if l.outlierStall(now) {
		ser += time.Duration(100+l.rng.Float64()*900) * time.Millisecond
	}
	l.sim.After(ser, l.servedFn)
}

// served runs when the head-of-line packet finishes serialization: it moves
// the packet to the propagation stage and serves the next one.
func (l *Link) served() {
	pkt := l.dequeueHead()
	if l.queueHist != nil {
		l.queueHist.Observe(float64(l.sim.Now()-pkt.sentAt) / float64(time.Millisecond))
	}
	l.deliver(pkt)
	l.serveNext()
}

// codel applies the CoDel control law at dequeue time: once the head-of-
// queue sojourn has exceeded the target for a whole interval, head packets
// are dropped at a rate that increases with the square root of the drop
// count until the sojourn falls back under the target.
func (l *Link) codel(now time.Duration) {
	if !l.prof.AQM {
		return
	}
	target := l.prof.AQMTarget
	if target == 0 {
		target = 50 * time.Millisecond
	}
	interval := l.prof.AQMInterval
	if interval == 0 {
		interval = 100 * time.Millisecond
	}
	sojourn := func() (time.Duration, bool) {
		if l.queue.len() == 0 {
			return 0, false
		}
		return now - l.queue.at(0).sentAt, true
	}
	s, ok := sojourn()
	if !ok || s < target {
		l.codelFirstAbove = 0
		l.codelDropping = false
		return
	}
	if l.codelFirstAbove == 0 {
		l.codelFirstAbove = now + interval
		return
	}
	if !l.codelDropping {
		if now < l.codelFirstAbove {
			return
		}
		// Enter the dropping state. Resume near the previous drop rate if
		// we were dropping recently (CoDel's hysteresis).
		l.codelDropping = true
		if l.codelCount > 2 && now-l.codelDropNext < 8*interval {
			l.codelCount -= 2
		} else {
			l.codelCount = 1
		}
		l.codelDropNext = now
	}
	for l.codelDropping && now >= l.codelDropNext {
		s, ok := sojourn()
		if !ok || s < target {
			l.codelDropping = false
			l.codelFirstAbove = 0
			return
		}
		head := l.dequeueHead()
		if l.trace != nil {
			l.trace.Emit(obs.Event{T: now, Kind: obs.KindDrop, Dir: l.traceDir, Flags: head.class.flags(), Seq: head.id, Aux: int64(DropAQM)})
		}
		switch head.class {
		case classCtrl:
			l.CtrlLost++
		case classRTX:
			l.RtxAQMDrops++
		default:
			l.AQMDrops++
			if l.OnDrop != nil {
				l.OnDrop(head.meta, head.size, head.sentAt, DropAQM)
			}
		}
		l.codelCount++
		l.codelDropNext = now + time.Duration(float64(interval)/math.Sqrt(float64(l.codelCount)))
	}
}

// outlierStall decides whether a HARQ stall begins now, advancing the
// Poisson exposure clock while the vehicle is above the altitude threshold.
func (l *Link) outlierStall(now time.Duration) bool {
	if l.prof.AltOutlierAbove <= 0 || l.prof.AltOutlierRate <= 0 {
		return false
	}
	if l.vehicleState(now).Alt <= l.prof.AltOutlierAbove {
		l.lastOutlierAt = now
		return false
	}
	if l.nextOutlierIn <= 0 {
		l.nextOutlierIn = time.Duration(l.rng.ExpFloat64() * float64(l.outlierMean))
	}
	l.nextOutlierIn -= now - l.lastOutlierAt
	l.lastOutlierAt = now
	if l.nextOutlierIn <= 0 {
		l.nextOutlierIn = 0 // resample on the next exposure
		return true
	}
	return false
}

// dropStaleQueue drops queued packets older than staleAfter. Stale media
// counts in StaleDrops (reported as DropStale); stale control folds into
// CtrlLost like other control-plane losses.
func (l *Link) dropStaleQueue(now time.Duration) {
	w := 0
	for i := 0; i < l.queue.len(); i++ {
		pkt := *l.queue.at(i)
		if now-pkt.sentAt > l.staleAfter {
			if l.trace != nil {
				l.trace.Emit(obs.Event{T: now, Kind: obs.KindDrop, Dir: l.traceDir, Flags: pkt.class.flags(), Seq: pkt.id, Aux: int64(DropStale)})
			}
			switch pkt.class {
			case classCtrl:
				l.ctrlQueueBytes -= pkt.size
				l.CtrlLost++
			case classRTX:
				// An RTX that outlived the outage is as dead as stale
				// media: same flush, own counter.
				l.queueBytes -= pkt.size
				l.RtxStaleDrops++
			default:
				l.queueBytes -= pkt.size
				l.StaleDrops++
				if l.OnDrop != nil {
					l.OnDrop(pkt.meta, pkt.size, pkt.sentAt, DropStale)
				}
			}
			continue
		}
		*l.queue.at(w) = pkt
		w++
	}
	l.queue.truncate(w) // releases dropped metas
}

// deliver schedules the packet's arrival after propagation delay and
// per-packet jitter. Arrivals are clamped monotonic per link: RLC delivers
// in order within the bearer, so jitter widens gaps but never reorders —
// which also means in-flight packets form a strict FIFO, and the single
// preallocated arrival callback can pop the inflight ring instead of every
// packet carrying its own closure.
func (l *Link) deliver(pkt queued) {
	delay := l.prof.BaseOWD
	if l.prof.JitterSigma > 0 {
		j := time.Duration(math.Abs(l.rng.NormFloat64()) * float64(l.prof.JitterSigma))
		delay += j
	}
	at := l.sim.Now() + delay
	if at < l.lastArrival {
		at = l.lastArrival
	}
	l.lastArrival = at
	switch pkt.class {
	case classCtrl:
		l.ctrlInFlight++
	case classRTX:
		l.rtxInFlight++
	default:
		l.inFlight++
	}
	l.inflight.push(pkt)
	l.sim.At(at, l.arriveFn)
}

// arrive completes delivery of the oldest in-flight packet.
func (l *Link) arrive() {
	pkt := l.inflight.pop()
	switch pkt.class {
	case classCtrl:
		l.ctrlInFlight--
		l.CtrlDelivered++
	case classRTX:
		l.rtxInFlight--
		l.RtxDelivered++
	default:
		l.inFlight--
		l.Delivered++
	}
	now := l.sim.Now()
	if l.trace != nil {
		l.trace.Emit(obs.Event{T: now, Kind: obs.KindRecv, Dir: l.traceDir, Flags: pkt.class.flags(),
			Seq: pkt.id, Aux: int64(pkt.size), V: float64(now-pkt.sentAt) / float64(time.Millisecond)})
	}
	l.Deliver(pkt.meta, pkt.size, pkt.sentAt, now)
}
