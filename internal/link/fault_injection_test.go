package link

import (
	"testing"
	"time"

	"rpivideo/internal/fault"
	"rpivideo/internal/sim"
)

// checkConservation asserts the packet-conservation invariant for both
// planes: every offered packet is exactly one of delivered, lost, overflowed,
// AQM-dropped, stale-flushed, still queued, or in flight.
func checkConservation(t *testing.T, l *Link, label string) {
	t.Helper()
	qm, qc := l.QueuedPackets()
	fm, fc := l.InFlightPackets()
	if got := l.Delivered + l.Lost + l.Overflows + l.AQMDrops + l.StaleDrops + qm + fm; got != l.Sent {
		t.Errorf("%s: media conservation broken: sent=%d but delivered=%d lost=%d overflow=%d aqm=%d stale=%d queued=%d inflight=%d (sum %d)",
			label, l.Sent, l.Delivered, l.Lost, l.Overflows, l.AQMDrops, l.StaleDrops, qm, fm, got)
	}
	if got := l.CtrlDelivered + l.CtrlLost + qc + fc; got != l.CtrlSent {
		t.Errorf("%s: control conservation broken: sent=%d but delivered=%d lost=%d queued=%d inflight=%d (sum %d)",
			label, l.CtrlSent, l.CtrlDelivered, l.CtrlLost, qc, fc, got)
	}
	if got := l.RtxDelivered + l.RtxLost + l.RtxOverflows + l.RtxAQMDrops + l.RtxStaleDrops + l.RtxQueued() + l.RtxInFlight(); got != l.RtxSent {
		t.Errorf("%s: rtx conservation broken: sent=%d but delivered=%d lost=%d overflow=%d aqm=%d stale=%d queued=%d inflight=%d (sum %d)",
			label, l.RtxSent, l.RtxDelivered, l.RtxLost, l.RtxOverflows, l.RtxAQMDrops, l.RtxStaleDrops, l.RtxQueued(), l.RtxInFlight(), got)
	}
}

// faultSchedules are the scripted outage shapes the conservation test sweeps.
var faultSchedules = map[string][]fault.Window{
	"none":      nil,
	"mid":       {{Start: 2 * time.Second, Duration: time.Second, Dir: fault.Both}},
	"from-zero": {{Start: 0, Duration: 1500 * time.Millisecond, Dir: fault.Both}},
	"double": {
		{Start: time.Second, Duration: 500 * time.Millisecond, Dir: fault.Both},
		{Start: 3 * time.Second, Duration: 800 * time.Millisecond, Dir: fault.Both},
	},
	// Outage still open when the run ends: packets stay queued.
	"unfinished": {{Start: 4 * time.Second, Duration: time.Hour, Dir: fault.Both}},
}

func TestConservationUnderFaults(t *testing.T) {
	for name, ws := range faultSchedules {
		for _, freeze := range []bool{false, true} {
			label := name + "/flush"
			if freeze {
				label = name + "/freeze"
			}
			s := sim.New(7)
			p := cleanProfile()
			p.PER = 0.01
			p.MeanBurstLen = 3
			p.JitterSigma = 2 * time.Millisecond
			p.BufferBytes = 100_000 // small: overflows during the outage
			l := New(s, p, nil, nil, s.Stream("link"))
			l.Deliver = func(any, int, time.Duration, time.Duration) {}
			l.SetFaults(fault.NewLine(ws, fault.Uplink), !freeze, 0)
			for at := time.Duration(0); at < 5*time.Second; at += 3 * time.Millisecond {
				at := at
				s.At(at, func() {
					l.Send(nil, 1200)
					if at%(50*time.Millisecond) == 0 {
						l.SendControl(nil, 80)
					}
					if at%(9*time.Millisecond) == 0 {
						l.SendRTX(nil, 1200)
					}
				})
			}
			// Terminate mid-run — possibly mid-outage — and check the books.
			s.RunUntil(5 * time.Second)
			checkConservation(t, l, label)
			if name == "unfinished" {
				if qm, _ := l.QueuedPackets(); qm == 0 {
					t.Errorf("%s: expected packets stranded in the queue at termination", label)
				}
			}
			// Then drain completely (the unfinished window never closes, so
			// only the finite schedules fully drain).
			if name != "unfinished" {
				s.Run()
				checkConservation(t, l, label+"/drained")
				if qm, qc := l.QueuedPackets(); qm != 0 || qc != 0 || l.RtxQueued() != 0 {
					t.Errorf("%s: queue not drained: media=%d ctrl=%d rtx=%d", label, qm, qc, l.RtxQueued())
				}
			}
		}
	}
}

// TestNoBusyPollDuringOutage is the no-busy-polling acceptance check: a link
// silenced by a scripted window schedules exactly one simulator event — the
// resume — between outage start and end, instead of a 5 ms retry loop.
func TestNoBusyPollDuringOutage(t *testing.T) {
	s := sim.New(1)
	l := New(s, cleanProfile(), nil, nil, s.Stream("link"))
	l.Deliver = func(any, int, time.Duration, time.Duration) {}
	l.SetFaults(fault.NewLine([]fault.Window{
		{Start: 0, Duration: 3 * time.Second, Dir: fault.Both},
	}, fault.Uplink), true, 0)

	s.At(500*time.Millisecond, func() { l.Send(nil, 1200) })
	pending := -1
	s.At(2*time.Second, func() { pending = s.Pending() })
	s.Run()
	// At t=2 s the send has fired and the probe event has been popped; the
	// only event left must be the single resume at t=3 s.
	if pending != 1 {
		t.Fatalf("pending events mid-outage = %d, want exactly 1 (the resume event)", pending)
	}
	if l.Delivered != 0 && l.StaleDrops != 1 {
		t.Fatalf("packet neither held nor flushed: delivered=%d stale=%d", l.Delivered, l.StaleDrops)
	}
}

// TestStaleFlushOnResume: with flushing on, packets that sat out the blackout
// are discarded at re-establishment; with freezing, they are delivered late.
func TestStaleFlushOnResume(t *testing.T) {
	run := func(flush bool) (delivered, stale int) {
		s := sim.New(3)
		l := New(s, cleanProfile(), nil, nil, s.Stream("link"))
		l.Deliver = func(any, int, time.Duration, time.Duration) {}
		l.SetFaults(fault.NewLine([]fault.Window{
			{Start: 100 * time.Millisecond, Duration: 2 * time.Second, Dir: fault.Both},
		}, fault.Uplink), flush, 600*time.Millisecond)
		for i := 0; i < 20; i++ {
			at := 150*time.Millisecond + time.Duration(i)*10*time.Millisecond
			s.At(at, func() { l.Send(nil, 1200) })
		}
		s.Run()
		return l.Delivered, l.StaleDrops
	}
	if delivered, stale := run(true); stale != 20 || delivered != 0 {
		t.Errorf("flush: delivered=%d stale=%d, want 0/20", delivered, stale)
	}
	if delivered, stale := run(false); stale != 0 || delivered != 20 {
		t.Errorf("freeze: delivered=%d stale=%d, want 20/0", delivered, stale)
	}
}

// TestMonotonicDelivery: jitter widens inter-arrival gaps but never reorders
// within the bearer (RLC in-order delivery).
func TestMonotonicDelivery(t *testing.T) {
	s := sim.New(11)
	p := cleanProfile()
	p.JitterSigma = 30 * time.Millisecond // far above the 1 ms serialization gap
	l := New(s, p, nil, nil, s.Stream("link"))
	var arrivals []time.Duration
	var order []int
	l.Deliver = func(meta any, size int, sentAt, at time.Duration) {
		arrivals = append(arrivals, at)
		order = append(order, meta.(int))
	}
	for i := 0; i < 200; i++ {
		i := i
		s.At(time.Duration(i)*2*time.Millisecond, func() { l.Send(i, 1200) })
	}
	s.Run()
	if len(arrivals) != 200 {
		t.Fatalf("delivered %d of 200", len(arrivals))
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Fatalf("arrival %d at %v precedes arrival %d at %v", i, arrivals[i], i-1, arrivals[i-1])
		}
		if order[i] != order[i-1]+1 {
			t.Fatalf("delivery reordered: %d after %d", order[i], order[i-1])
		}
	}
}

// TestRTXStaleFlushAndOrdering: retransmissions queued when an outage opens
// follow the same re-establishment policy as media — flushed when stale,
// and never delivered out of order with the media stream around them (the
// bearer's monotonic clamp spans all classes).
func TestRTXStaleFlushAndOrdering(t *testing.T) {
	s := sim.New(9)
	p := cleanProfile()
	p.JitterSigma = 20 * time.Millisecond
	l := New(s, p, nil, nil, s.Stream("link"))
	var arrivals []time.Duration
	l.Deliver = func(meta any, size int, sentAt, at time.Duration) {
		arrivals = append(arrivals, at)
	}
	l.SetFaults(fault.NewLine([]fault.Window{
		{Start: 100 * time.Millisecond, Duration: 2 * time.Second, Dir: fault.Both},
	}, fault.Uplink), true, 600*time.Millisecond)
	// RTX and media interleaved into the blackout: everything queued before
	// ≈1.5 s is older than 600 ms at the 2.1 s resume and must flush.
	for i := 0; i < 20; i++ {
		at := 150*time.Millisecond + time.Duration(i)*10*time.Millisecond
		s.At(at, func() {
			l.Send(nil, 1200)
			l.SendRTX(nil, 1200)
		})
	}
	// Fresh traffic near the end of the window survives the flush.
	for i := 0; i < 10; i++ {
		at := 1900*time.Millisecond + time.Duration(i)*10*time.Millisecond
		s.At(at, func() {
			l.Send(nil, 1200)
			l.SendRTX(nil, 1200)
		})
	}
	s.Run()
	if l.RtxStaleDrops != 20 || l.StaleDrops != 20 {
		t.Errorf("stale flush: rtx=%d media=%d, want 20/20", l.RtxStaleDrops, l.StaleDrops)
	}
	if l.RtxDelivered != 10 || l.Delivered != 10 {
		t.Errorf("survivors: rtx=%d media=%d, want 10/10", l.RtxDelivered, l.Delivered)
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Fatalf("arrival %d at %v precedes arrival %d at %v", i, arrivals[i], i-1, arrivals[i-1])
		}
	}
	checkConservation(t, l, "rtx-outage")
}

// TestDirectionalOutage: an uplink-only window leaves a downlink-filtered
// line untouched.
func TestDirectionalOutage(t *testing.T) {
	ws := []fault.Window{{Start: 0, Duration: time.Second, Dir: fault.Uplink}}
	s := sim.New(5)
	up := New(s, cleanProfile(), nil, nil, s.Stream("up"))
	down := New(s, cleanProfile(), nil, nil, s.Stream("down"))
	up.Deliver = func(any, int, time.Duration, time.Duration) {}
	down.Deliver = func(any, int, time.Duration, time.Duration) {}
	up.SetFaults(fault.NewLine(ws, fault.Uplink), false, 0)
	down.SetFaults(fault.NewLine(ws, fault.Downlink), false, 0)
	s.At(100*time.Millisecond, func() {
		up.Send(nil, 1200)
		down.Send(nil, 1200)
	})
	var upAt, downAt time.Duration
	up.Deliver = func(_ any, _ int, _, at time.Duration) { upAt = at }
	down.Deliver = func(_ any, _ int, _, at time.Duration) { downAt = at }
	s.Run()
	if downAt >= 200*time.Millisecond {
		t.Errorf("downlink delivery at %v, want unaffected (~121 ms)", downAt)
	}
	if upAt < time.Second {
		t.Errorf("uplink delivery at %v, want held until the window closes at 1 s", upAt)
	}
}
