package link

import (
	"testing"
	"time"

	"rpivideo/internal/sim"
)

// Control-plane packets must traverse the same bearer but never skew the
// media counters the paper's PER statistic is computed from.
func TestControlPacketsExcludedFromMediaCounters(t *testing.T) {
	s := sim.New(1)
	l := New(s, cleanProfile(), nil, nil, s.Stream("link"))
	collect(l)
	for i := 0; i < 100; i++ {
		i := i
		s.At(time.Duration(i)*10*time.Millisecond, func() {
			l.Send(nil, 1250)
			if i%10 == 0 {
				l.SendControl(nil, 28) // an RTCP SR
			}
		})
	}
	s.Run()
	if l.Sent != 100 || l.Delivered != 100 {
		t.Errorf("media counters: sent=%d delivered=%d, want 100/100", l.Sent, l.Delivered)
	}
	if l.CtrlSent != 10 || l.CtrlDelivered != 10 {
		t.Errorf("control counters: sent=%d delivered=%d, want 10/10", l.CtrlSent, l.CtrlDelivered)
	}
	if l.QueueBytes() != 0 {
		t.Errorf("queue not drained: %d bytes", l.QueueBytes())
	}
}

// Control losses land in CtrlLost, leaving the media PER untouched.
func TestControlLossesSeparatelyCounted(t *testing.T) {
	s := sim.New(7)
	p := cleanProfile()
	p.MeanCapacity, p.MinCapacity = 100e6, 100e6
	p.PER = 0.01
	p.MeanBurstLen = 2
	l := New(s, p, nil, nil, s.Stream("link"))
	collect(l)
	const n = 50_000
	s.At(0, func() {
		for i := 0; i < n; i++ {
			l.SendControl(nil, 28)
		}
	})
	s.Run()
	if l.CtrlLost == 0 {
		t.Fatal("lossy link never lost a control packet")
	}
	if l.Sent != 0 || l.Lost != 0 || l.Overflows != 0 {
		t.Errorf("control traffic leaked into media counters: sent=%d lost=%d overflows=%d",
			l.Sent, l.Lost, l.Overflows)
	}
	if l.CtrlSent != n || l.CtrlDelivered+l.CtrlLost != n {
		t.Errorf("control conservation: sent=%d delivered=%d lost=%d",
			l.CtrlSent, l.CtrlDelivered, l.CtrlLost)
	}
}

// A full media buffer neither tail-drops control packets (their share of the
// bearer is bounded) nor lets control bytes steal media admission space.
func TestControlBytesDoNotOccupyMediaBuffer(t *testing.T) {
	s := sim.New(1)
	p := cleanProfile()
	p.BufferBytes = 10_000
	l := New(s, p, nil, nil, s.Stream("link"))
	collect(l)
	s.At(0, func() {
		for i := 0; i < 8; i++ {
			l.Send(nil, 1250) // fill the 10 KB buffer exactly
		}
		l.SendControl(nil, 28) // must be admitted with the buffer full
		l.Send(nil, 1250)      // media tail drop, not caused by the SR
	})
	s.Run()
	if l.Overflows != 1 {
		t.Errorf("media overflows = %d, want exactly the burst's 9th packet", l.Overflows)
	}
	if l.CtrlDelivered != 1 || l.CtrlLost != 0 {
		t.Errorf("control packet not delivered: delivered=%d lost=%d", l.CtrlDelivered, l.CtrlLost)
	}
}
