package link

import (
	"testing"
	"time"

	"rpivideo/internal/flight"
	"rpivideo/internal/sim"
)

func TestQueueDelayEstimate(t *testing.T) {
	s := sim.New(1)
	l := New(s, cleanProfile(), nil, nil, s.Stream("link"))
	collect(l)
	s.At(0, func() {
		for i := 0; i < 100; i++ {
			l.Send(nil, 1250) // 125 KB into a 10 Mbps link = 100 ms backlog
		}
		if got := l.QueueDelay(); got < 80*time.Millisecond || got > 120*time.Millisecond {
			t.Errorf("QueueDelay = %v, want ≈100 ms", got)
		}
		if l.QueueBytes() != 125_000 {
			t.Errorf("QueueBytes = %d", l.QueueBytes())
		}
	})
	s.Run()
	if l.QueueBytes() != 0 {
		t.Errorf("queue not drained: %d bytes", l.QueueBytes())
	}
}

func TestCapacityFluctuatesWithinBounds(t *testing.T) {
	s := sim.New(9)
	p := ProfileFor(0, 0) // urban P1
	l := New(s, p, nil, nil, s.Stream("link"))
	min, max := p.MeanCapacity, p.MeanCapacity
	for i := 0; i < 10000; i++ {
		s.RunUntil(time.Duration(i) * 100 * time.Millisecond)
		// The exported Capacity is a pure peek now; step the fluctuation
		// explicitly, as packet service does, to exercise the OU process.
		c := l.capacity(s.Now())
		if peek := l.Capacity(); peek != c {
			t.Fatalf("Capacity() = %v right after advancing to %v", peek, c)
		}
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min < p.MinCapacity-1 {
		t.Errorf("capacity %v fell below the floor %v", min, p.MinCapacity)
	}
	if max <= p.MeanCapacity || min >= p.MeanCapacity {
		t.Errorf("capacity did not fluctuate around the mean: [%v, %v] vs %v", min, max, p.MeanCapacity)
	}
	// Stay within a plausible multiple of the mean.
	if max > 2*p.MeanCapacity {
		t.Errorf("capacity %v implausibly high", max)
	}
}

func TestOutlierStallOnlyAtAltitude(t *testing.T) {
	s := sim.New(3)
	p := cleanProfile()
	p.AltOutlierAbove = 100
	p.AltOutlierRate = 10 // very frequent, for the test
	alt := 0.0
	l := New(s, p, nil, func(time.Duration) flight.State { return flight.State{Alt: alt} }, s.Stream("link"))
	// At ground level the exposure clock must not advance.
	for i := 0; i < 1000; i++ {
		if l.outlierStall(time.Duration(i) * 10 * time.Millisecond) {
			t.Fatal("stall at ground level")
		}
	}
	// At altitude, stalls occur at roughly the configured rate.
	alt = 120
	stalls := 0
	for i := 0; i < 1000; i++ {
		if l.outlierStall(10*time.Second + time.Duration(i)*10*time.Millisecond) {
			stalls++
		}
	}
	// 10 s of exposure at 10/s ≈ 100 events.
	if stalls < 40 || stalls > 250 {
		t.Errorf("stalls = %d over 10 s at rate 10/s", stalls)
	}
}

func TestDropReasonStringer(t *testing.T) {
	if DropLoss.String() != "loss" || DropOverflow.String() != "overflow" {
		t.Error("DropReason stringer")
	}
}

func TestFeedbackLinkLowDelay(t *testing.T) {
	s := sim.New(2)
	l := New(s, FeedbackProfile(), nil, nil, s.Stream("link"))
	got := collect(l)
	for i := 0; i < 100; i++ {
		i := i
		s.At(time.Duration(i)*10*time.Millisecond, func() { l.Send(i, 100) })
	}
	s.Run()
	if len(*got) < 99 { // the tiny PER may drop at most a packet or two
		t.Fatalf("delivered %d of 100 feedback packets", len(*got))
	}
	for _, a := range *got {
		if a.owd > 30*time.Millisecond {
			t.Errorf("feedback OWD = %v, want well under 30 ms", a.owd)
		}
	}
}
