package link

import (
	"testing"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/flight"
	"rpivideo/internal/metrics"
	"rpivideo/internal/sim"
)

// cleanProfile returns a deterministic profile without loss or fluctuation.
func cleanProfile() Profile {
	return Profile{
		Name:         "test",
		MeanCapacity: 10e6,
		CapSigma:     0,
		CapTau:       time.Second,
		MinCapacity:  10e6,
		BaseOWD:      20 * time.Millisecond,
		JitterSigma:  0,
		BufferBytes:  1 << 20,
	}
}

type arrival struct {
	meta any
	owd  time.Duration
	at   time.Duration
}

func collect(l *Link) *[]arrival {
	var got []arrival
	l.Deliver = func(meta any, size int, sentAt, at time.Duration) {
		got = append(got, arrival{meta: meta, owd: at - sentAt, at: at})
	}
	return &got
}

func TestDeliveryOrderAndDelay(t *testing.T) {
	s := sim.New(1)
	l := New(s, cleanProfile(), nil, nil, s.Stream("link"))
	got := collect(l)
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Duration(i)*10*time.Millisecond, func() { l.Send(i, 1250) })
	}
	s.Run()
	if len(*got) != 10 {
		t.Fatalf("delivered %d of 10", len(*got))
	}
	for i, a := range *got {
		if a.meta.(int) != i {
			t.Fatalf("delivery order: %v", *got)
		}
		// 1250 bytes at 10 Mbps = 1 ms serialization + 20 ms OWD.
		if a.owd < 20*time.Millisecond || a.owd > 23*time.Millisecond {
			t.Errorf("packet %d OWD = %v, want ≈21 ms", i, a.owd)
		}
	}
}

func TestThroughputLimitedByCapacity(t *testing.T) {
	s := sim.New(1)
	l := New(s, cleanProfile(), nil, nil, s.Stream("link"))
	got := collect(l)
	// Offer 20 Mbps to a 10 Mbps link for 2 s.
	const pkt = 1250
	for at := time.Duration(0); at < 2*time.Second; at += 500 * time.Microsecond {
		at := at
		s.At(at, func() { l.Send(nil, pkt) })
	}
	s.RunUntil(2 * time.Second)
	gotBits := len(*got) * pkt * 8
	rate := float64(gotBits) / 2
	if rate < 9e6 || rate > 10.5e6 {
		t.Errorf("delivered rate = %.2f Mbps, want ≈10", rate/1e6)
	}
}

func TestBufferbloatDelayNotLoss(t *testing.T) {
	// Offering 1.3× capacity for one second must grow delay, not drop
	// packets (deep buffer).
	s := sim.New(1)
	p := cleanProfile() // 1 MB buffer = 800 ms at 10 Mbps
	l := New(s, p, nil, nil, s.Stream("link"))
	got := collect(l)
	for at := time.Duration(0); at < time.Second; at += 769 * time.Microsecond { // ≈13 Mbps
		at := at
		s.At(at, func() { l.Send(nil, 1250) })
	}
	s.Run()
	if l.Overflows != 0 || l.Lost != 0 {
		t.Errorf("drops under mild overload: %d overflow, %d loss", l.Overflows, l.Lost)
	}
	last := (*got)[len(*got)-1]
	if last.owd < 100*time.Millisecond {
		t.Errorf("tail OWD = %v, want visible bufferbloat", last.owd)
	}
}

func TestBufferOverflow(t *testing.T) {
	s := sim.New(1)
	p := cleanProfile()
	p.BufferBytes = 10_000
	l := New(s, p, nil, nil, s.Stream("link"))
	collect(l)
	drops := 0
	l.OnDrop = func(meta any, size int, sentAt time.Duration, r DropReason) {
		if r != DropOverflow {
			t.Errorf("drop reason = %v, want overflow", r)
		}
		drops++
	}
	s.At(0, func() {
		for i := 0; i < 20; i++ {
			l.Send(nil, 1250) // 25 KB burst into a 10 KB buffer
		}
	})
	s.Run()
	if drops == 0 {
		t.Error("no overflow drops for a burst exceeding the buffer")
	}
	if l.Delivered+drops != 20 {
		t.Errorf("conservation: delivered %d + dropped %d != 20", l.Delivered, drops)
	}
}

func TestResidualLossRate(t *testing.T) {
	s := sim.New(7)
	p := cleanProfile()
	p.MeanCapacity, p.MinCapacity = 100e6, 100e6
	p.PER = 0.0007
	p.MeanBurstLen = 3
	l := New(s, p, nil, nil, s.Stream("link"))
	collect(l)
	const n = 400_000
	s.At(0, func() {
		for i := 0; i < n; i++ {
			l.Send(nil, 100)
		}
	})
	s.Run()
	per := float64(l.Lost) / float64(n)
	if per < 0.0003 || per > 0.0012 {
		t.Errorf("PER = %.5f, want ≈0.0007 (paper: 0.06–0.07 %%)", per)
	}
}

func TestLossesAreBursty(t *testing.T) {
	s := sim.New(3)
	p := cleanProfile()
	p.PER = 0.01
	p.MeanBurstLen = 4
	l := New(s, p, nil, nil, s.Stream("link"))
	collect(l)
	lossIdx := []int{}
	idx := 0
	l.OnDrop = func(any, int, time.Duration, DropReason) { lossIdx = append(lossIdx, idx) }
	s.At(0, func() {
		for i := 0; i < 200_000; i++ {
			idx = i
			l.Send(nil, 100)
		}
	})
	s.Run()
	if len(lossIdx) < 100 {
		t.Fatalf("only %d losses", len(lossIdx))
	}
	consecutive := 0
	for i := 1; i < len(lossIdx); i++ {
		if lossIdx[i] == lossIdx[i-1]+1 {
			consecutive++
		}
	}
	frac := float64(consecutive) / float64(len(lossIdx))
	if frac < 0.5 {
		t.Errorf("only %.0f%% of losses consecutive; the paper observed bursty drops", frac*100)
	}
}

// flightLinkFixture wires a machine-driven link over the standard flight.
func flightLinkFixture(seed int64) (*sim.Simulator, *Link, *cell.Machine, flight.Profile) {
	s := sim.New(seed)
	rng := s.Stream("cell")
	bss := cell.Deployment(cell.Urban, cell.P1, rng)
	model := cell.NewSignalModel(cell.Urban, bss, cell.DefaultSignalConfigFor(cell.Urban), rng)
	machine := cell.NewMachine(model, cell.DefaultHandoverConfig(), true, rng)
	prof := flight.StandardFlight()
	stateAt := func(at time.Duration) flight.State { return prof.At(at) }
	l := New(s, ProfileFor(cell.Urban, cell.P1), machine, stateAt, s.Stream("link"))
	s.Every(0, 40*time.Millisecond, func() {
		machine.Step(s.Now(), prof.At(s.Now()))
	})
	return s, l, machine, prof
}

func TestHandoverCausesLatencySpikes(t *testing.T) {
	s, l, machine, prof := flightLinkFixture(5)
	var owds metrics.TimeSeries
	l.Deliver = func(meta any, size int, sentAt, at time.Duration) {
		owds.Add(at, float64(at-sentAt)/float64(time.Millisecond))
	}
	// Steady 25 Mbps stream (the urban static workload): pre-handover
	// degradation must back it up into the buffer.
	s.Every(0, 400*time.Microsecond, func() {
		l.Send(nil, 1250)
	})
	s.RunUntil(prof.Duration())

	evs := machine.Events()
	if len(evs) == 0 {
		t.Fatal("no handovers in an urban flight")
	}
	var ratios metrics.Dist
	for _, ev := range evs {
		if r, ok := owds.WindowMaxMinRatio(ev.At-time.Second, ev.At); ok {
			ratios.Add(r)
		}
	}
	if ratios.N() == 0 {
		t.Fatal("no OWD samples around handovers")
	}
	t.Logf("pre-HO max/min OWD ratio: %v", ratios.Box())
	if ratios.Mean() < 3 {
		t.Errorf("mean pre-HO latency ratio = %.1f, want clear spikes (paper ≈8)", ratios.Mean())
	}
	if ratios.Mean() > 20 {
		t.Errorf("mean pre-HO latency ratio = %.1f, implausibly deep", ratios.Mean())
	}
}

func TestNoDeliveriesDuringHandoverExecution(t *testing.T) {
	s, l, machine, prof := flightLinkFixture(8)
	var arrivals []time.Duration
	l.Deliver = func(meta any, size int, sentAt, at time.Duration) { arrivals = append(arrivals, at) }
	s.Every(0, time.Millisecond, func() { l.Send(nil, 1250) })
	s.RunUntil(prof.Duration())

	// Pick the longest handover; nothing should *depart* the bottleneck
	// during it, so arrivals inside (At+BaseOWD, At+HET) are at most a few
	// stragglers that were already past the queue.
	var longest cell.Event
	for _, ev := range machine.Events() {
		if ev.HET > longest.HET {
			longest = ev
		}
	}
	if longest.HET < 100*time.Millisecond {
		t.Skip("no long handover in this seed")
	}
	inWindow := 0
	lo := longest.At + 40*time.Millisecond
	hi := longest.At + longest.HET
	for _, at := range arrivals {
		if at > lo && at < hi {
			inWindow++
		}
	}
	if inWindow > 3 {
		t.Errorf("%d deliveries during a %v handover execution", inWindow, longest.HET)
	}
}

func TestAltitudeOutliers(t *testing.T) {
	s := sim.New(11)
	p := cleanProfile()
	p.AltOutlierAbove = 100
	p.AltOutlierRate = 0.5
	high := flight.State{Alt: 120}
	l := New(s, p, nil, func(time.Duration) flight.State { return high }, s.Stream("link"))
	got := collect(l)
	for at := time.Duration(0); at < 30*time.Second; at += time.Millisecond {
		at := at
		s.At(at, func() { l.Send(nil, 125) })
	}
	s.Run()
	outliers := 0
	for _, a := range *got {
		if a.owd > 100*time.Millisecond {
			outliers++
		}
	}
	if outliers == 0 {
		t.Error("no delay outliers at 120 m; Fig. 13 requires them above 100 m")
	}
	// And none at ground level.
	s2 := sim.New(11)
	l2 := New(s2, p, nil, nil, s2.Stream("link"))
	got2 := collect(l2)
	for at := time.Duration(0); at < 30*time.Second; at += time.Millisecond {
		at := at
		s2.At(at, func() { l2.Send(nil, 125) })
	}
	s2.Run()
	for _, a := range *got2 {
		if a.owd > 100*time.Millisecond {
			t.Fatal("delay outlier at ground level")
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []arrival {
		s, l, _, prof := flightLinkFixture(99)
		got := collect(l)
		s.Every(0, 2*time.Millisecond, func() { l.Send(nil, 1250) })
		s.RunUntil(prof.Duration() / 4)
		return *got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("same-seed runs delivered %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].at != b[i].at || a[i].owd != b[i].owd {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestProfileShapes(t *testing.T) {
	up1 := ProfileFor(cell.Urban, cell.P1)
	rp1 := ProfileFor(cell.Rural, cell.P1)
	rp2 := ProfileFor(cell.Rural, cell.P2)
	if up1.MeanCapacity <= 25e6 {
		t.Error("urban P1 must sustain a static 25 Mbps stream")
	}
	if rp1.MeanCapacity >= up1.MeanCapacity {
		t.Error("rural capacity must be below urban")
	}
	if rp2.MeanCapacity <= rp1.MeanCapacity {
		t.Error("rural P2 must offer more capacity than P1 (Fig. 10)")
	}
	if rp1.CapSigma <= up1.CapSigma {
		t.Error("rural capacity must fluctuate more than urban (Fig. 6)")
	}
	if rp1.BaseOWD <= up1.BaseOWD {
		t.Error("rural base latency sits above urban (Fig. 5)")
	}
	fb := FeedbackProfile()
	if fb.MeanCapacity < 50e6 {
		t.Error("feedback downlink must be over-provisioned")
	}
}
