package link

import (
	"fmt"
	"testing"
	"time"

	"rpivideo/internal/sim"
)

// runObserved drives a fluctuating link with deterministic traffic and
// returns a transcript of every delivery. When observe is true, a periodic
// task additionally calls the exported observers mid-run — which must not
// perturb the transcript by a single nanosecond, or a dashboard probe would
// change experiment results.
func runObserved(seed int64, observe bool) string {
	s := sim.New(seed)
	p := ProfileFor(0, 0) // urban P1: OU capacity fluctuation, jitter, PER
	l := New(s, p, nil, nil, s.Stream("link"))
	got := collect(l)
	for i := 0; i < 400; i++ {
		i := i
		s.At(time.Duration(i)*5*time.Millisecond, func() { l.Send(i, 1200) })
	}
	if observe {
		s.Every(0, time.Millisecond, func() {
			_ = l.Capacity()
			_ = l.QueueDelay()
			_ = l.QueueBytes()
		})
	}
	s.RunUntil(3 * time.Second)
	out := ""
	for _, a := range *got {
		out += fmt.Sprintf("%d %d %d\n", a.meta.(int), a.owd, a.at)
	}
	return out
}

// TestObserversDoNotPerturbRun pins the satellite fix for the
// capacity-observation bug: Capacity() and QueueDelay() used to advance the
// Ornstein–Uhlenbeck capacity process (drawing RNG), so merely *looking* at
// a link mid-run changed where packets landed. Both are pure peeks now.
func TestObserversDoNotPerturbRun(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		plain := runObserved(seed, false)
		watched := runObserved(seed, true)
		if plain != watched {
			t.Fatalf("seed %d: observing Capacity/QueueDelay mid-run changed the delivery transcript", seed)
		}
		if plain != runObserved(seed, false) {
			t.Fatalf("seed %d: identical runs diverged", seed)
		}
	}
}

// TestSampleQueueDelayAdvances covers the other half of the split API: the
// in-run fault sampler must keep stepping the capacity process (it models a
// probe that is part of the simulated system), so SampleQueueDelay advances
// the OU state where QueueDelay does not.
func TestSampleQueueDelayAdvances(t *testing.T) {
	s := sim.New(7)
	p := ProfileFor(0, 0)
	l := New(s, p, nil, nil, s.Stream("link"))
	s.RunUntil(100 * time.Millisecond)
	before := l.Capacity()
	_ = l.SampleQueueDelay()
	changedBySample := l.Capacity() != before

	mid := l.Capacity()
	for i := 0; i < 50; i++ {
		_ = l.QueueDelay()
		_ = l.Capacity()
	}
	if l.Capacity() != mid {
		t.Fatal("pure observers advanced the capacity process")
	}
	if !changedBySample {
		t.Fatal("SampleQueueDelay left the capacity process untouched (OU step expected at a fresh timestamp)")
	}
}
