package link

import (
	"time"

	"rpivideo/internal/cell"
)

// Profile holds the calibrated parameters of one emulated LTE uplink. Each
// field cites the paper statistic it targets (see DESIGN.md §4 and
// EXPERIMENTS.md for the paper-vs-measured record).
type Profile struct {
	Name string

	// MeanCapacity is the long-run average uplink capacity in bits/s.
	// Urban P1 sustains static 25 Mbps with headroom (≈40 Mbps uplink,
	// §4.2.1); rural P1 supports ≈8–10 Mbps (Fig. 6); rural P2 roughly
	// doubles P1 (Fig. 10a).
	MeanCapacity float64
	// CapSigma is the relative standard deviation of the
	// Ornstein–Uhlenbeck capacity fluctuation. The rural link is the
	// volatile one (Fig. 6: adaptive beats static only there).
	CapSigma float64
	// CapTau is the capacity-fluctuation correlation time.
	CapTau time.Duration
	// MinCapacity floors the fluctuation.
	MinCapacity float64

	// BaseOWD is the fixed propagation+core one-way delay. The lowest
	// recorded RTT UE↔AWS was ≈35 ms; rural latency sits above urban
	// (Fig. 5).
	BaseOWD time.Duration
	// JitterSigma is the per-packet delay jitter standard deviation.
	JitterSigma time.Duration

	// BufferBytes is the bottleneck buffer: cellular deep buffers mean
	// fluctuations show up as delay, not loss (§4.1, bufferbloat).
	BufferBytes int

	// PER is the residual packet error rate (paper: 0.06–0.07 %), applied
	// in bursts of MeanBurstLen consecutive packets ("most of the observed
	// packet drops occurred consecutively").
	PER          float64
	MeanBurstLen float64

	// AltLossAbove adds loss above this altitude (m): the paper observed
	// packet loss above 80 m in the urban environment (§4.2.1). Zero
	// disables.
	AltLossAbove  float64
	AltLossFactor float64 // multiplier on the burst-entry probability

	// AQM enables a CoDel-style active queue manager on the bottleneck
	// buffer — the §5 bufferbloat mitigation ("optimizing deep network
	// queues for video traffic"). AQMTarget is the acceptable standing
	// sojourn time (50 ms when zero), AQMInterval the CoDel interval
	// (100 ms when zero).
	AQM         bool
	AQMTarget   time.Duration
	AQMInterval time.Duration

	// AltOutlierAbove enables rare link stalls (HARQ/RLC retransmission
	// pile-ups) above this altitude (m): Fig. 13 shows the proportion of
	// high-RTT outliers grows above 100 m. AltOutlierRate is the stall
	// rate in events per second while at altitude.
	AltOutlierAbove float64
	AltOutlierRate  float64
}

// ProfileFor returns the uplink profile for an environment/operator pair.
func ProfileFor(env cell.Environment, op cell.Operator) Profile {
	switch {
	case env == cell.Urban:
		p := Profile{
			Name:            "urban-" + op.String(),
			MeanCapacity:    38e6,
			CapSigma:        0.10,
			CapTau:          8 * time.Second,
			MinCapacity:     16e6,
			BaseOWD:         22 * time.Millisecond,
			JitterSigma:     1500 * time.Microsecond,
			BufferBytes:     1200 << 10, // ≈260 ms at 38 Mbps
			PER:             0.0004,
			MeanBurstLen:    10,
			AltLossAbove:    80,
			AltLossFactor:   2,
			AltOutlierAbove: 100,
			AltOutlierRate:  0.04,
		}
		if op == cell.P2 {
			p.MeanCapacity = 40e6
		}
		return p
	case op == cell.P1:
		return Profile{
			Name:            "rural-P1",
			MeanCapacity:    11.5e6,
			CapSigma:        0.24,
			CapTau:          5 * time.Second,
			MinCapacity:     5.5e6,
			BaseOWD:         30 * time.Millisecond,
			JitterSigma:     2500 * time.Microsecond,
			BufferBytes:     1500 << 10, // ≈1 s at 12 Mbps
			PER:             0.0004,
			MeanBurstLen:    10,
			AltOutlierAbove: 100,
			AltOutlierRate:  0.05,
		}
	default:
		return Profile{
			Name:            "rural-P2",
			MeanCapacity:    24e6,
			CapSigma:        0.25,
			CapTau:          5 * time.Second,
			MinCapacity:     6e6,
			BaseOWD:         28 * time.Millisecond,
			JitterSigma:     2 * time.Millisecond,
			BufferBytes:     2 << 20,
			PER:             0.0004,
			MeanBurstLen:    10,
			AltOutlierAbove: 100,
			AltOutlierRate:  0.05,
		}
	}
}

// FeedbackProfile returns the downlink profile used for RTCP feedback: the
// downlink is provisioned far above the feedback rate (the plans allowed
// 300–500 Mbps down), so it contributes base delay and shares the radio
// interruptions but adds no congestion of its own.
func FeedbackProfile() Profile {
	return Profile{
		Name:         "downlink-feedback",
		MeanCapacity: 100e6,
		CapSigma:     0.05,
		CapTau:       10 * time.Second,
		MinCapacity:  50e6,
		BaseOWD:      13 * time.Millisecond,
		JitterSigma:  time.Millisecond,
		BufferBytes:  4 << 20,
		PER:          0.0002,
		MeanBurstLen: 2,
	}
}
