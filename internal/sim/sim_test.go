package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := New(1)
	var fired time.Duration
	s.At(10*time.Millisecond, func() {
		s.After(5*time.Millisecond, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 15*time.Millisecond {
		t.Errorf("After fired at %v, want 15ms", fired)
	}
}

func TestPastEventClampsToNow(t *testing.T) {
	s := New(1)
	var fired time.Duration
	s.At(10*time.Millisecond, func() {
		s.At(2*time.Millisecond, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 10*time.Millisecond {
		t.Errorf("past event fired at %v, want clamp to 10ms", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	timer := s.At(time.Millisecond, func() { fired = true })
	timer.Stop()
	s.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if !timer.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
}

func TestRunUntilLeavesLaterEventsPending(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		d := d * time.Millisecond
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(12 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 12*time.Millisecond {
		t.Errorf("Now() = %v, want 12ms", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 4 {
		t.Errorf("after Run, fired %d events, want 4", len(fired))
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	s := New(1)
	var times []time.Duration
	task := s.Every(10*time.Millisecond, 20*time.Millisecond, func() {
		times = append(times, s.Now())
		if len(times) == 3 {
			s.Stop()
		}
	})
	s.Run()
	task.Stop()
	want := []time.Duration{10 * time.Millisecond, 30 * time.Millisecond, 50 * time.Millisecond}
	if len(times) != len(want) {
		t.Fatalf("fired %d times, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("firing %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestTaskStopFromCallback(t *testing.T) {
	s := New(1)
	n := 0
	var task *Task
	task = s.Every(0, time.Millisecond, func() {
		n++
		if n == 2 {
			task.Stop()
		}
	})
	s.Run()
	if n != 2 {
		t.Errorf("task fired %d times, want 2", n)
	}
}

func TestStreamsAreDeterministic(t *testing.T) {
	a := New(42).Stream("loss")
	b := New(42).Stream("loss")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, name) streams diverged")
		}
	}
}

func TestStreamsAreIndependentByName(t *testing.T) {
	s := New(42)
	a, b := s.Stream("a"), s.Stream("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams %q and %q coincide on %d/100 draws", "a", "b", same)
	}
}

func TestStreamIsCached(t *testing.T) {
	s := New(7)
	if s.Stream("x") != s.Stream("x") {
		t.Error("Stream returned distinct generators for the same name")
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	n := 0
	s.Every(0, time.Millisecond, func() {
		n++
		if n == 5 {
			s.Stop()
		}
	})
	s.Run()
	if n != 5 {
		t.Errorf("ran %d events, want 5", n)
	}
}

// Property: for any set of non-negative offsets, events fire in sorted order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New(3)
		var fired []time.Duration
		for _, o := range offsets {
			d := time.Duration(o) * time.Microsecond
			s.At(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RunUntil(t) never executes an event scheduled after t, and always
// leaves Now() == t when t is beyond the last event executed.
func TestPropertyRunUntilBoundary(t *testing.T) {
	f := func(offsets []uint16, bound uint16) bool {
		s := New(9)
		limit := time.Duration(bound) * time.Microsecond
		late := false
		for _, o := range offsets {
			d := time.Duration(o) * time.Microsecond
			s.At(d, func() {
				if s.Now() > limit {
					late = true
				}
			})
		}
		s.RunUntil(limit)
		return !late && s.Now() == limit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
