package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestStoppedTimersLeaveHeap pins the satellite fix: Stop must remove a
// pending timer from the event heap immediately, so cancelled events neither
// linger in the pending set nor distort Pending(). The pre-fix
// implementation only flagged the timer and left it in the heap until its
// firing time came around.
func TestStoppedTimersLeaveHeap(t *testing.T) {
	s := New(1)
	var timers []*Timer
	for i := 0; i < 100; i++ {
		timers = append(timers, s.At(time.Duration(i+1)*time.Millisecond, func() {}))
	}
	if s.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", s.Pending())
	}
	// Stop every other timer, from both ends, to hit arbitrary heap slots.
	stopped := 0
	for i := 0; i < len(timers); i += 2 {
		timers[i].Stop()
		stopped++
		if !timers[i].Stopped() {
			t.Fatalf("timer %d not Stopped after Stop", i)
		}
	}
	if got := s.Pending(); got != 100-stopped {
		t.Fatalf("Pending = %d after stopping %d, want %d", got, stopped, 100-stopped)
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after Run", s.Pending())
	}
}

// TestStopRandomizedAgainstOracle drives a random schedule of At/Stop
// operations and checks the fired set and order against a straightforward
// oracle: fired events must be exactly the never-stopped ones, in (at, seq)
// order.
func TestStopRandomizedAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := New(int64(trial))
		type ev struct {
			id      int
			at      time.Duration
			stopped bool
		}
		var evs []*ev
		var timers []*Timer
		var fired []int
		n := 20 + rng.Intn(200)
		for i := 0; i < n; i++ {
			e := &ev{id: i, at: time.Duration(rng.Intn(50)) * time.Millisecond}
			evs = append(evs, e)
			id := e.id
			timers = append(timers, s.At(e.at, func() { fired = append(fired, id) }))
		}
		for i := range timers {
			if rng.Intn(3) == 0 {
				timers[i].Stop()
				evs[i].stopped = true
			}
		}
		live := 0
		for _, e := range evs {
			if !e.stopped {
				live++
			}
		}
		if s.Pending() != live {
			t.Fatalf("trial %d: Pending = %d, want %d live", trial, s.Pending(), live)
		}
		s.Run()
		// Oracle order: stable sort by at (seq order is insertion order,
		// which a stable sort preserves).
		var want []int
		for ms := time.Duration(0); ms <= 50*time.Millisecond; ms += time.Millisecond {
			for _, e := range evs {
				if !e.stopped && e.at == ms {
					want = append(want, e.id)
				}
			}
		}
		if len(fired) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: fired[%d] = %d, want %d", trial, i, fired[i], want[i])
			}
		}
	}
}

// TestTimerPoolReuse checks the free-list recycling contract: a fired
// timer's storage is reused by a later At, and a handle stays truthful
// about Stopped until that reuse.
func TestTimerPoolReuse(t *testing.T) {
	s := New(1)
	t1 := s.At(time.Millisecond, func() {})
	s.Run()
	if t1.Stopped() {
		t.Fatal("fired timer reads as stopped")
	}
	t2 := s.At(2*time.Millisecond, func() {})
	if t1 != t2 {
		t.Fatalf("expected the fired timer to be recycled (pool broken)")
	}
	t2.Stop()
	if !t2.Stopped() {
		t.Fatal("Stopped() = false after Stop on recycled timer")
	}
	// The stopped flag must be cleared again on the next reuse.
	t3 := s.At(3*time.Millisecond, func() {})
	if t3 != t2 {
		t.Fatal("expected the stopped timer to be recycled")
	}
	if t3.Stopped() {
		t.Fatal("recycled timer inherited the stopped flag")
	}
	s.Run()
}

// TestEventLoopAllocationFree verifies the tentpole claim that the
// steady-state event loop does not allocate: a ping-pong of self-
// rescheduling events runs with zero allocations per event once the pool
// and heap are warm.
func TestEventLoopAllocationFree(t *testing.T) {
	s := New(1)
	count := 0
	var fn func()
	fn = func() {
		count++
		if count < 10000 {
			s.After(time.Microsecond, fn)
		}
	}
	s.After(0, fn)
	s.RunUntil(time.Millisecond) // warm the pool
	allocs := testing.AllocsPerRun(5, func() {
		count = 0
		s.After(time.Microsecond, fn)
		s.Run()
	})
	if allocs > 1 { // one for the testing harness's own bookkeeping slack
		t.Errorf("steady-state event loop allocates %.1f objects per drain", allocs)
	}
}
