// Package sim provides a deterministic discrete-event simulator.
//
// All experiment code in this repository runs on virtual time owned by a
// Simulator: events are scheduled at absolute or relative virtual times and
// executed in order. Determinism is guaranteed by (a) a stable tie-break on
// the scheduling sequence number and (b) named random streams derived from a
// single master seed, so a run is a pure function of (Config, Seed).
//
// The event loop is the hot path of every campaign, so it avoids steady-state
// allocation: fired and stopped timers are recycled through a free list, and
// the pending set is a hand-rolled binary heap (no container/heap interface
// dispatch). Because (at, seq) is a total order over timers, the pop sequence
// is the sorted order regardless of heap internals — the pooling and the
// custom heap cannot change event ordering.
package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Timer index sentinels: a non-negative index means the timer sits in the
// event heap; timerFiring marks a popped timer whose callback is pending or
// running; timerFree marks a recycled timer waiting on the free list.
const (
	timerFiring = -1
	timerFree   = -2
)

// Timer is a handle to a scheduled event. Stopping a Timer prevents its
// callback from firing if it has not fired yet.
//
// A Timer handle is owned by its creator only until the callback has run (or
// Stop is called): after that the simulator recycles the Timer for a future
// event, and a retained handle goes stale. Calling Stop on a stale handle
// that has not yet been reused is a safe no-op; retaining a handle
// indefinitely and stopping it after the simulator has reused it is a logic
// error. No code in this repository retains fired timers (sim.Task replaces
// its handle on every firing).
type Timer struct {
	at      time.Duration
	seq     uint64
	fn      func()
	owner   *Simulator
	stopped bool
	index   int   // heap index; timerFiring once popped, timerFree once recycled
	id      int32 // slot in the owner's timer registry, fixed for life
}

// Stop cancels the timer. It is safe to call multiple times and after the
// timer has fired (as long as the handle has not been recycled, see the type
// comment). A pending timer is removed from the event heap immediately, so
// cancelled events neither occupy heap space nor count toward Pending.
func (t *Timer) Stop() {
	if t == nil {
		return
	}
	if t.index >= 0 {
		t.stopped = true
		t.owner.removeTimer(t)
		t.owner.release(t)
		return
	}
	if t.index == timerFiring {
		// Popped but not yet executed (or mid-callback): mark it so the
		// event loop discards it without firing.
		t.stopped = true
	}
}

// Stopped reports whether Stop was called.
func (t *Timer) Stopped() bool { return t != nil && t.stopped }

// When returns the virtual time the timer is scheduled for.
func (t *Timer) When() time.Duration { return t.at }

// heapEntry is one pending event in the heap. The ordering key (at, seq)
// is stored inline so comparisons touch only the contiguous heap slice —
// no pointer chase into the Timer — and the timer is referenced by its
// registry id rather than a pointer, so the heap slice is pointer-free:
// sifting moves entries without GC write barriers and the collector never
// scans the event set. Both matter on a loop that runs millions of
// push/pop cycles per wall second.
type heapEntry struct {
	at  time.Duration
	seq uint64
	id  int32
}

// entryLess orders events by firing time, tie-broken by scheduling
// sequence. seq is unique per event, so this is a total order — and a
// total order means any correct heap pops the identical sequence, so the
// heap layout below (4-ary, hole-based sifting) cannot affect determinism.
func entryLess(a, b *heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Simulator owns virtual time and the pending event set.
type Simulator struct {
	now     time.Duration
	events  []heapEntry // 4-ary min-heap ordered by entryLess
	timers  []*Timer    // registry: timer id → timer, grows with peak concurrency
	free    []*Timer    // recycled timers
	seq     uint64
	seed    int64
	streams map[string]*rand.Rand
	running bool
	stopped bool
}

// New returns a Simulator at virtual time zero whose random streams derive
// from seed.
func New(seed int64) *Simulator {
	return &Simulator{seed: seed, streams: make(map[string]*rand.Rand)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Seed returns the master seed the simulator was created with.
func (s *Simulator) Seed() int64 { return s.seed }

// Stream returns a deterministic random stream identified by name. The same
// (seed, name) pair always yields the same sequence, independent of the order
// in which streams are created or used relative to one another.
func (s *Simulator) Stream(name string) *rand.Rand {
	if r, ok := s.streams[name]; ok {
		return r
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", s.seed, name)
	r := rand.New(rand.NewSource(int64(h.Sum64())))
	s.streams[name] = r
	return r
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (or present) runs the event at the current time, after already-pending
// events for that time.
func (s *Simulator) At(at time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if at < s.now {
		at = s.now
	}
	var t *Timer
	if n := len(s.free); n > 0 {
		t = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		t.at, t.seq, t.fn = at, s.seq, fn
		t.stopped = false
	} else {
		t = &Timer{at: at, seq: s.seq, fn: fn, owner: s, id: int32(len(s.timers))}
		s.timers = append(s.timers, t)
	}
	s.seq++
	s.heapPush(t)
	return t
}

// After schedules fn to run d after the current virtual time.
func (s *Simulator) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// release returns a timer to the free list. The caller must have detached it
// from the heap already. The stopped flag survives until the handle is
// reused, so Stopped() keeps answering truthfully on a stale handle.
func (s *Simulator) release(t *Timer) {
	t.fn = nil
	t.index = timerFree
	s.free = append(s.free, t)
}

// The heap is 4-ary: children of i are 4i+1..4i+4. Half the depth of a
// binary heap, and the four children share cache lines, which wins for the
// pop-heavy workload of a discrete-event loop.
const heapArity = 4

// heapPush inserts t's entry into the event heap (sift-up with a hole).
func (s *Simulator) heapPush(t *Timer) {
	s.events = append(s.events, heapEntry{})
	s.siftUp(heapEntry{at: t.at, seq: t.seq, id: t.id}, len(s.events)-1)
}

// heapPop removes and returns the earliest timer.
func (s *Simulator) heapPop() *Timer {
	h := s.events
	top := s.timers[h[0].id]
	top.index = timerFiring
	n := len(h) - 1
	last := h[n]
	s.events = h[:n]
	if n > 0 {
		s.siftDown(last, 0)
	}
	return top
}

// removeTimer deletes a pending timer from an arbitrary heap position.
func (s *Simulator) removeTimer(t *Timer) {
	i := t.index
	t.index = timerFiring
	h := s.events
	n := len(h) - 1
	last := h[n]
	s.events = h[:n]
	if i == n {
		return
	}
	// Re-seat the displaced last element: it may need to move either way.
	s.siftDown(last, i)
	if s.timers[last.id].index == i {
		s.siftUp(last, i)
	}
}

// siftDown seats e at or below position i, maintaining the heap order.
func (s *Simulator) siftDown(e heapEntry, i int) {
	h := s.events
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		end := first + heapArity
		if end > n {
			end = n
		}
		c := first
		for j := first + 1; j < end; j++ {
			if entryLess(&h[j], &h[c]) {
				c = j
			}
		}
		if !entryLess(&h[c], &e) {
			break
		}
		h[i] = h[c]
		s.timers[h[i].id].index = i
		i = c
	}
	h[i] = e
	s.timers[e.id].index = i
}

// siftUp seats e at or above position i, maintaining the heap order.
func (s *Simulator) siftUp(e heapEntry, i int) {
	h := s.events
	for i > 0 {
		p := (i - 1) / heapArity
		if !entryLess(&e, &h[p]) {
			break
		}
		h[i] = h[p]
		s.timers[h[i].id].index = i
		i = p
	}
	h[i] = e
	s.timers[e.id].index = i
}

// Task is a handle to a periodic task.
type Task struct {
	sim      *Simulator
	interval time.Duration
	fn       func()
	fireFn   func() // preallocated t.fire closure, one per task
	timer    *Timer
	stopped  bool
}

// Stop cancels all future firings of the task.
func (t *Task) Stop() {
	if t == nil || t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

func (t *Task) fire() {
	if t.stopped {
		return
	}
	t.fn()
	if t.stopped { // fn may stop the task
		return
	}
	t.timer = t.sim.After(t.interval, t.fireFn)
}

// Every schedules fn to run first at start and then every interval until the
// returned Task is stopped.
func (s *Simulator) Every(start, interval time.Duration, fn func()) *Task {
	if interval <= 0 {
		panic("sim: Every requires a positive interval")
	}
	t := &Task{sim: s, interval: interval, fn: fn}
	t.fireFn = t.fire
	t.timer = s.At(start, t.fireFn)
	return t
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Pending returns the number of live scheduled events. Stopped timers leave
// the heap immediately, so they are never counted.
func (s *Simulator) Pending() int { return len(s.events) }

// step executes the next pending event; it reports false when none remain.
func (s *Simulator) step(limit time.Duration, bounded bool) bool {
	for len(s.events) > 0 {
		if bounded && s.events[0].at > limit {
			return false
		}
		next := s.heapPop()
		if next.stopped {
			// Stopped between pop and execution (only possible from within
			// the currently running callback chain).
			s.release(next)
			continue
		}
		s.now = next.at
		fn := next.fn
		fn()
		s.release(next)
		return true
	}
	return false
}

// Run executes events until none remain or Stop is called.
func (s *Simulator) Run() {
	if s.running {
		panic("sim: Run re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for !s.stopped && s.step(0, false) {
	}
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to
// t. Events scheduled after t remain pending.
func (s *Simulator) RunUntil(t time.Duration) {
	if s.running {
		panic("sim: RunUntil re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for !s.stopped && s.step(t, true) {
	}
	if t > s.now {
		s.now = t
	}
}
