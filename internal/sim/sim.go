// Package sim provides a deterministic discrete-event simulator.
//
// All experiment code in this repository runs on virtual time owned by a
// Simulator: events are scheduled at absolute or relative virtual times and
// executed in order. Determinism is guaranteed by (a) a stable tie-break on
// the scheduling sequence number and (b) named random streams derived from a
// single master seed, so a run is a pure function of (Config, Seed).
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Timer is a handle to a scheduled event. Stopping a Timer prevents its
// callback from firing if it has not fired yet.
type Timer struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
	index   int // heap index, -1 once popped
}

// Stop cancels the timer. It is safe to call multiple times and after the
// timer has fired.
func (t *Timer) Stop() {
	if t != nil {
		t.stopped = true
	}
}

// Stopped reports whether Stop was called.
func (t *Timer) Stopped() bool { return t != nil && t.stopped }

// When returns the virtual time the timer is scheduled for.
func (t *Timer) When() time.Duration { return t.at }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Simulator owns virtual time and the pending event set.
type Simulator struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	seed    int64
	streams map[string]*rand.Rand
	running bool
	stopped bool
}

// New returns a Simulator at virtual time zero whose random streams derive
// from seed.
func New(seed int64) *Simulator {
	return &Simulator{seed: seed, streams: make(map[string]*rand.Rand)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Seed returns the master seed the simulator was created with.
func (s *Simulator) Seed() int64 { return s.seed }

// Stream returns a deterministic random stream identified by name. The same
// (seed, name) pair always yields the same sequence, independent of the order
// in which streams are created or used relative to one another.
func (s *Simulator) Stream(name string) *rand.Rand {
	if r, ok := s.streams[name]; ok {
		return r
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", s.seed, name)
	r := rand.New(rand.NewSource(int64(h.Sum64())))
	s.streams[name] = r
	return r
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (or present) runs the event at the current time, after already-pending
// events for that time.
func (s *Simulator) At(at time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if at < s.now {
		at = s.now
	}
	t := &Timer{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, t)
	return t
}

// After schedules fn to run d after the current virtual time.
func (s *Simulator) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Task is a handle to a periodic task.
type Task struct {
	sim      *Simulator
	interval time.Duration
	fn       func()
	timer    *Timer
	stopped  bool
}

// Stop cancels all future firings of the task.
func (t *Task) Stop() {
	if t == nil || t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

func (t *Task) fire() {
	if t.stopped {
		return
	}
	t.fn()
	if t.stopped { // fn may stop the task
		return
	}
	t.timer = t.sim.After(t.interval, t.fire)
}

// Every schedules fn to run first at start and then every interval until the
// returned Task is stopped.
func (s *Simulator) Every(start, interval time.Duration, fn func()) *Task {
	if interval <= 0 {
		panic("sim: Every requires a positive interval")
	}
	t := &Task{sim: s, interval: interval, fn: fn}
	t.timer = s.At(start, t.fire)
	return t
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Pending returns the number of scheduled (possibly stopped) events.
func (s *Simulator) Pending() int { return len(s.events) }

// step executes the next pending event; it reports false when none remain.
func (s *Simulator) step(limit time.Duration, bounded bool) bool {
	for len(s.events) > 0 {
		next := s.events[0]
		if bounded && next.at > limit {
			return false
		}
		heap.Pop(&s.events)
		if next.stopped {
			continue
		}
		s.now = next.at
		next.fn()
		return true
	}
	return false
}

// Run executes events until none remain or Stop is called.
func (s *Simulator) Run() {
	if s.running {
		panic("sim: Run re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for !s.stopped && s.step(0, false) {
	}
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to
// t. Events scheduled after t remain pending.
func (s *Simulator) RunUntil(t time.Duration) {
	if s.running {
		panic("sim: RunUntil re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for !s.stopped && s.step(t, true) {
	}
	if t > s.now {
		s.now = t
	}
}
