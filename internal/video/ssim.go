package video

import "math"

// SSIMModel maps what the decoder sees to a structural-similarity score,
// substituting for the paper's frame-by-frame comparison of the received
// against the source video (§3.2). The paper's analysis uses SSIM only
// through two dependencies, which the model captures directly:
//
//   - the encoder bitrate bounds the achievable quality ("the SSIM is
//     closely correlated with the bitrate at which the encoder operates"),
//     and
//   - packet loss causes visual artifacts that persist through motion-
//     compensated prediction until an intra refresh ("the SSIM is also
//     sensitive to packet losses, which cause visual artifacts in the
//     output of the video decoder").
//
// A frame that is never played scores 0, as in the paper.
type SSIMModel struct {
	// RateScale is the exponential quality constant (bits/s). Calibrated
	// so full-HD at 25 Mbps scores ≈0.96–0.99, 8 Mbps ≈0.89 and the 2 Mbps
	// floor ≈0.74, consistent with Fig. 7b's urban/rural bands.
	RateScale float64
	// QualityFloor and QualityCeiling bound the loss-free score.
	QualityFloor   float64
	QualityCeiling float64
	// ArtifactGain scales how strongly intra-frame packet loss corrupts
	// the frame.
	ArtifactGain float64
	// ConcealmentDecay is the per-frame decay of propagated reference
	// damage (error concealment recovers slowly until a keyframe resets
	// it).
	ConcealmentDecay float64

	damage float64 // current propagated reference damage in [0, 1]
}

// DefaultSSIMModel returns the calibrated model.
func DefaultSSIMModel() *SSIMModel {
	return &SSIMModel{
		RateScale:        7e6,
		QualityFloor:     0.10,
		QualityCeiling:   0.999,
		ArtifactGain:     3.5,
		ConcealmentDecay: 0.97,
	}
}

// base returns the loss-free quality ceiling for a frame encoded at the
// given rate and complexity multiplier.
func (m *SSIMModel) base(rate, complexity float64) float64 {
	if complexity <= 0 {
		complexity = 1
	}
	q := m.QualityCeiling - 0.35*math.Exp(-rate/complexity/m.RateScale)
	if q < m.QualityFloor {
		q = m.QualityFloor
	}
	return q
}

// Score returns the SSIM of one played frame and advances the reference-
// damage state. lossFrac is the fraction of the frame's packets missing at
// decode time; keyframe frames reset propagated damage before decoding.
func (m *SSIMModel) Score(rate, complexity, lossFrac float64, keyframe bool) float64 {
	if keyframe {
		m.damage = 0
	} else {
		m.damage *= m.ConcealmentDecay
	}
	if lossFrac > 0 {
		d := m.ArtifactGain * lossFrac
		if d > 1 {
			d = 1
		}
		if d > m.damage {
			m.damage = d
		}
	}
	s := m.base(rate, complexity) * (1 - m.damage)
	if s < 0 {
		s = 0
	}
	return s
}

// Skip records a frame that was never played (SSIM 0 in the paper's
// methodology) and propagates reference damage: the decoder freezes and
// subsequent prediction references are broken until a keyframe.
func (m *SSIMModel) Skip() float64 {
	if m.damage < 0.5 {
		m.damage = 0.5
	}
	return 0
}

// Damage exposes the current propagated damage (for tests).
func (m *SSIMModel) Damage() float64 { return m.damage }
