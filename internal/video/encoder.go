// Package video models the paper's GStreamer/x264 pipeline: a
// rate-controlled H.264-style encoder producing 30 FPS full-HD frames with
// GOP structure, the sender that packetizes and paces them under a
// congestion controller, the receiving jitter buffer and player that
// produce the paper's video metrics (FPS, playback latency, stalls), and an
// SSIM model mapping encoder rate and loss artifacts to frame quality.
package video

import (
	"math"
	"math/rand"
	"time"
)

// EncoderConfig parameterizes the encoder model.
type EncoderConfig struct {
	// FPS is the source frame rate (30 in the campaign).
	FPS int
	// GOP is the keyframe interval in frames (one I-frame per second at 30).
	GOP int
	// IFrameRatio is the size of an I-frame relative to a P-frame.
	IFrameRatio float64
	// MinRate and MaxRate clamp the applied encoder target (2–25 Mbps).
	MinRate, MaxRate float64
	// ComplexitySigma is the log-normal frame-size noise from scene detail
	// and motion (the source video "contains considerable detail and
	// motion").
	ComplexitySigma float64
	// RateTau is how quickly the encoder's effective rate tracks the
	// requested target. The campaign's x264 wrapper applied rate changes
	// with noticeable latency — the mechanism behind §4.2.1's FPS dips:
	// frames already encoded (and still being encoded) at the old bitrate
	// must drain at the decreased send rate.
	RateTau time.Duration
}

// DefaultEncoderConfig returns the campaign encoder parameters.
func DefaultEncoderConfig() EncoderConfig {
	return EncoderConfig{
		FPS:             30,
		GOP:             30,
		IFrameRatio:     4,
		MinRate:         2e6,
		MaxRate:         25e6,
		ComplexitySigma: 0.18,
		RateTau:         500 * time.Millisecond,
	}
}

// Frame is one encoded video frame.
type Frame struct {
	Num        uint32
	Keyframe   bool
	Size       int // encoded bytes
	EncodeTime time.Duration
	// Rate is the effective encoder rate the frame was encoded at; the
	// SSIM model derives the quality ceiling from it.
	Rate float64
	// Complexity is the scene-complexity multiplier applied to this frame.
	Complexity float64
}

// Encoder produces frames at a requested target bitrate.
type Encoder struct {
	cfg EncoderConfig
	rng *rand.Rand

	target   float64 // requested rate
	rate     float64 // effective rate (lags the target)
	lastTick time.Duration
	num      uint32
	gopPos   int  // position within the current GOP (0 = keyframe)
	forceKey bool // a keyframe request restarts the GOP on the next frame
}

// NewEncoder returns an encoder starting at the given target rate.
func NewEncoder(cfg EncoderConfig, initialRate float64, rng *rand.Rand) *Encoder {
	e := &Encoder{cfg: cfg, rng: rng, target: initialRate, rate: initialRate}
	e.clamp()
	return e
}

func (e *Encoder) clamp() {
	if e.target < e.cfg.MinRate {
		e.target = e.cfg.MinRate
	} else if e.target > e.cfg.MaxRate {
		e.target = e.cfg.MaxRate
	}
}

// SetTarget requests a new encoder bitrate; the effective rate converges
// within RateTau.
func (e *Encoder) SetTarget(bitsPerSecond float64) {
	e.target = bitsPerSecond
	e.clamp()
}

// Target returns the currently requested rate.
func (e *Encoder) Target() float64 { return e.target }

// ForceKeyframe makes the next encoded frame an I-frame and restarts the
// GOP phase — the encoder's response to a PLI-style keyframe request after
// the receiver lost decodable continuity.
func (e *Encoder) ForceKeyframe() { e.forceKey = true }

// Rate returns the effective (lagged) encoder rate.
func (e *Encoder) Rate() float64 { return e.rate }

// NextFrame encodes the next frame at time now. Callers invoke it once per
// frame interval.
func (e *Encoder) NextFrame(now time.Duration) Frame {
	// Track the target with a first-order lag.
	dt := (now - e.lastTick).Seconds()
	e.lastTick = now
	tau := e.cfg.RateTau.Seconds()
	if tau <= 0 {
		e.rate = e.target
	} else {
		a := dt / tau
		if a > 1 {
			a = 1
		}
		e.rate += (e.target - e.rate) * a
	}

	if e.forceKey {
		e.forceKey = false
		e.gopPos = 0
	}
	key := e.gopPos == 0
	e.gopPos++
	if e.gopPos >= e.cfg.GOP {
		e.gopPos = 0
	}
	// Per-frame byte budget: the GOP average equals rate/FPS/8 bytes, with
	// I-frames IFrameRatio× the size of P-frames.
	gop := float64(e.cfg.GOP)
	avg := e.rate / float64(e.cfg.FPS) / 8
	pSize := avg * gop / (gop - 1 + e.cfg.IFrameRatio)
	size := pSize
	if key {
		size = pSize * e.cfg.IFrameRatio
	}
	complexity := math.Exp(e.rng.NormFloat64() * e.cfg.ComplexitySigma)
	size *= complexity

	f := Frame{
		Num:        e.num,
		Keyframe:   key,
		Size:       int(size),
		EncodeTime: now,
		Rate:       e.rate,
		Complexity: complexity,
	}
	if f.Size < 200 {
		f.Size = 200
	}
	e.num++
	return f
}
