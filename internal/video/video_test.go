package video

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rpivideo/internal/cc"
	"rpivideo/internal/rtp"
	"rpivideo/internal/sim"
)

func TestEncoderMeetsTargetBitrate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := NewEncoder(DefaultEncoderConfig(), 8e6, rng)
	total := 0
	const frames = 900 // 30 s
	for i := 0; i < frames; i++ {
		f := e.NextFrame(time.Duration(i) * 33333 * time.Microsecond)
		total += f.Size
	}
	rate := float64(total*8) / 30
	if rate < 7e6 || rate > 9e6 {
		t.Errorf("encoded rate = %.2f Mbps, want ≈8", rate/1e6)
	}
}

func TestEncoderGOPStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultEncoderConfig()
	cfg.ComplexitySigma = 0 // deterministic sizes
	e := NewEncoder(cfg, 8e6, rng)
	var iSizes, pSizes []int
	for i := 0; i < 120; i++ {
		f := e.NextFrame(time.Duration(i) * 33333 * time.Microsecond)
		if f.Keyframe != (i%30 == 0) {
			t.Fatalf("frame %d keyframe = %v", i, f.Keyframe)
		}
		if f.Keyframe {
			iSizes = append(iSizes, f.Size)
		} else {
			pSizes = append(pSizes, f.Size)
		}
	}
	meanI, meanP := mean(iSizes), mean(pSizes)
	if ratio := meanI / meanP; ratio < 3.5 || ratio > 4.5 {
		t.Errorf("I/P size ratio = %.2f, want ≈4", ratio)
	}
}

func mean(xs []int) float64 {
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

func TestEncoderRateLag(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := NewEncoder(DefaultEncoderConfig(), 2e6, rng)
	e.NextFrame(0)
	e.SetTarget(25e6)
	f := e.NextFrame(33 * time.Millisecond)
	if f.Rate > 15e6 {
		t.Errorf("effective rate jumped to %.1f Mbps one frame after a target change", f.Rate/1e6)
	}
	for i := 2; i < 40; i++ {
		f = e.NextFrame(time.Duration(i) * 33 * time.Millisecond)
	}
	if f.Rate < 20e6 {
		t.Errorf("effective rate = %.1f Mbps after 1.3 s, should have converged toward 25", f.Rate/1e6)
	}
}

func TestEncoderClampsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := NewEncoder(DefaultEncoderConfig(), 8e6, rng)
	e.SetTarget(100e6)
	if e.Target() != 25e6 {
		t.Errorf("target clamped to %v, want 25e6", e.Target())
	}
	e.SetTarget(0)
	if e.Target() != 2e6 {
		t.Errorf("target clamped to %v, want 2e6", e.Target())
	}
}

func TestSSIMRateDependence(t *testing.T) {
	m := DefaultSSIMModel()
	at2 := m.Score(2e6, 1, 0, true)
	at8 := m.Score(8e6, 1, 0, true)
	at25 := m.Score(25e6, 1, 0, true)
	if !(at2 < at8 && at8 < at25) {
		t.Errorf("SSIM not monotone in rate: %v %v %v", at2, at8, at25)
	}
	// Calibration bands (Fig. 7b: urban ≥0.9 for 90 %, rural ≈0.8+).
	if at25 < 0.93 || at25 > 1 {
		t.Errorf("SSIM at 25 Mbps = %v, want ≈0.96+", at25)
	}
	if at8 < 0.85 || at8 > 0.95 {
		t.Errorf("SSIM at 8 Mbps = %v, want ≈0.89", at8)
	}
	if at2 < 0.6 || at2 > 0.85 {
		t.Errorf("SSIM at 2 Mbps = %v, want ≈0.74", at2)
	}
}

func TestSSIMLossArtifactsPropagate(t *testing.T) {
	m := DefaultSSIMModel()
	clean := m.Score(8e6, 1, 0, true)
	damaged := m.Score(8e6, 1, 0.3, false)
	if damaged >= clean {
		t.Errorf("loss did not reduce SSIM: %v vs %v", damaged, clean)
	}
	// Damage persists into the following loss-free P-frames...
	next := m.Score(8e6, 1, 0, false)
	if next >= clean-0.01 {
		t.Errorf("reference damage did not propagate: %v vs clean %v", next, clean)
	}
	// ...and a keyframe resets it.
	fresh := m.Score(8e6, 1, 0, true)
	if math.Abs(fresh-clean) > 1e-9 {
		t.Errorf("keyframe did not reset damage: %v vs %v", fresh, clean)
	}
}

func TestSSIMSkipScoresZero(t *testing.T) {
	m := DefaultSSIMModel()
	if got := m.Skip(); got != 0 {
		t.Errorf("Skip = %v, want 0", got)
	}
	if m.Damage() < 0.5 {
		t.Errorf("skip should damage the reference chain, damage = %v", m.Damage())
	}
}

// Property: SSIM stays in [0, 1] for arbitrary inputs.
func TestPropertySSIMBounds(t *testing.T) {
	f := func(rate uint32, loss, complexity float64, key bool) bool {
		m := DefaultSSIMModel()
		l := math.Mod(math.Abs(loss), 1)
		c := math.Mod(math.Abs(complexity), 3)
		s := m.Score(float64(rate%30_000_000), c, l, key)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// pipe wires a sender to a player over a constant-delay lossless path,
// optionally dropping packets via filter (return false to drop).
func pipe(s *sim.Simulator, ctrl cc.Controller, delay time.Duration, filter func(p *rtp.Packet) bool) (*Sender, *Player) {
	snd := NewSender(s, DefaultSenderConfig(), ctrl, s.Stream("enc"))
	pl := NewPlayer(s, DefaultPlayerConfig(), DefaultSSIMModel(), snd.FrameEncoding)
	snd.Transmit = func(p *rtp.Packet, size int) {
		if filter != nil && !filter(p) {
			return
		}
		s.After(delay, func() { pl.OnPacket(p, s.Now()) })
	}
	return snd, pl
}

func TestEndToEndCleanPath(t *testing.T) {
	s := sim.New(1)
	ctrl := cc.NewStatic(8e6)
	snd, pl := pipe(s, ctrl, 50*time.Millisecond, nil)
	snd.Start()
	const span = 30 * time.Second
	s.RunUntil(span)
	snd.Stop()
	pl.Stop()

	fps := pl.FPSDist(span)
	if fps.Median() < 29 || fps.Median() > 31 {
		t.Errorf("median FPS = %v, want 30", fps.Median())
	}
	lat := pl.LatencyDist()
	// 50 ms path + 150 ms jitter buffer + pacing slack.
	if lat.Median() < 180 || lat.Median() > 300 {
		t.Errorf("median playback latency = %.0f ms, want ≈200–250", lat.Median())
	}
	if got := pl.StallsPerMinute(span); got != 0 {
		t.Errorf("stall rate on a clean path = %v/min", got)
	}
	ssim := pl.SSIMDist()
	if ssim.Quantile(0.05) < 0.80 {
		t.Errorf("P5 SSIM = %v on a clean 8 Mbps path", ssim.Quantile(0.05))
	}
	// Packets sent in the final 50 ms are still in flight at the cutoff.
	if snd.PacketsSent == 0 || pl.PacketsReceived() < snd.PacketsSent-100 {
		t.Errorf("packets sent %d received %d", snd.PacketsSent, pl.PacketsReceived())
	}
}

func TestJitterBufferDelaysPlayback(t *testing.T) {
	s := sim.New(2)
	ctrl := cc.NewStatic(8e6)
	snd, pl := pipe(s, ctrl, 10*time.Millisecond, nil)
	snd.Start()
	s.RunUntil(5 * time.Second)
	if len(pl.Frames) == 0 {
		t.Fatal("no frames played")
	}
	for _, f := range pl.Frames[:10] {
		if f.Skipped {
			continue
		}
		if f.Latency < 150*time.Millisecond {
			t.Errorf("frame %d latency %v below the 150 ms jitter buffer", f.Num, f.Latency)
		}
	}
}

func TestPacketLossDamagesOrSkipsFrames(t *testing.T) {
	s := sim.New(3)
	ctrl := cc.NewStatic(8e6)
	rng := rand.New(rand.NewSource(7))
	drops := 0
	snd, pl := pipe(s, ctrl, 50*time.Millisecond, func(p *rtp.Packet) bool {
		if rng.Float64() < 0.03 { // 3 % loss
			drops++
			return false
		}
		return true
	})
	snd.Start()
	const span = 30 * time.Second
	s.RunUntil(span)
	if drops == 0 {
		t.Fatal("filter dropped nothing")
	}
	ssim := pl.SSIMDist()
	clean := DefaultSSIMModel().Score(8e6, 1, 0, true)
	if ssim.Quantile(0.25) >= clean {
		t.Errorf("Q1 SSIM %v shows no loss damage (clean = %v)", ssim.Quantile(0.25), clean)
	}
}

func TestBurstLossSkipsFrames(t *testing.T) {
	s := sim.New(13)
	ctrl := cc.NewStatic(8e6)
	// Periodically drop everything for 200 ms: whole frames go missing and
	// the player must skip them (SSIM 0).
	snd, pl := pipe(s, ctrl, 50*time.Millisecond, func(*rtp.Packet) bool {
		return s.Now()%(2*time.Second) > 200*time.Millisecond
	})
	snd.Start()
	s.RunUntil(20 * time.Second)
	skipped := 0
	for _, f := range pl.Frames {
		if f.Skipped {
			skipped++
		}
	}
	if skipped < 10 {
		t.Errorf("only %d frames skipped under periodic 200 ms outages", skipped)
	}
}

func TestOutageCausesStall(t *testing.T) {
	s := sim.New(4)
	ctrl := cc.NewStatic(8e6)
	blocked := false
	snd, pl := pipe(s, ctrl, 50*time.Millisecond, func(*rtp.Packet) bool { return !blocked })
	snd.Start()
	// Block the path entirely between t=10 s and t=11 s (a long handover).
	s.At(10*time.Second, func() { blocked = true })
	s.At(11*time.Second, func() { blocked = false })
	const span = 20 * time.Second
	s.RunUntil(span)
	if len(pl.Stalls) == 0 {
		t.Fatal("a 1 s outage must produce a stall")
	}
	found := false
	for _, st := range pl.Stalls {
		if st.At > 9*time.Second && st.At < 12*time.Second && st.Duration > 300*time.Millisecond {
			found = true
		}
	}
	if !found {
		t.Errorf("no stall recorded near the outage: %+v", pl.Stalls)
	}
}

func TestPlaybackRateAdaptation(t *testing.T) {
	// White-box: a starved buffer stretches the playback clock (the
	// proactive slowdown of §4.2.2/A.4); a comfortable buffer compresses
	// it.
	s := sim.New(5)
	cfg := DefaultPlayerConfig()
	pl := NewPlayer(s, cfg, DefaultSSIMModel(), nil)
	s.RunUntil(10 * time.Second)
	interval := time.Second / time.Duration(cfg.FPS)

	// Empty buffer: slowdown.
	pl.nextPlay = 100
	pl.highestSeen = 100
	pl.advance(s.Now())
	if got := pl.playClock - s.Now(); got != time.Duration(float64(interval)*cfg.SlowdownFactor) {
		t.Errorf("starved playback interval = %v, want %v × %v", got, interval, cfg.SlowdownFactor)
	}

	// Comfortable buffer (3 complete frames ahead): catch-up.
	pk := rtp.NewPacketizer(1, 96, 1200)
	for num := uint32(101); num <= 104; num++ {
		for _, p := range pk.Packetize(rtp.FrameInfo{Num: num, Size: 400}) {
			pl.OnPacket(p, s.Now())
		}
	}
	pl.nextPlay = 100
	pl.advance(s.Now())
	if got := pl.playClock - s.Now(); got != time.Duration(float64(interval)*cfg.CatchupFactor) {
		t.Errorf("comfortable playback interval = %v, want %v × %v", got, interval, cfg.CatchupFactor)
	}
}

func TestDropOnLatencySkipsStaleFrames(t *testing.T) {
	s := sim.New(6)
	ctrl := cc.NewStatic(8e6)
	snd := NewSender(s, DefaultSenderConfig(), ctrl, s.Stream("enc"))
	cfg := DefaultPlayerConfig()
	cfg.DropOnLatency = true
	cfg.DropThreshold = 200 * time.Millisecond
	pl := NewPlayer(s, cfg, DefaultSSIMModel(), snd.FrameEncoding)
	held := []*rtp.Packet{}
	holding := false
	snd.Transmit = func(p *rtp.Packet, size int) {
		if holding {
			held = append(held, p)
			return
		}
		s.After(30*time.Millisecond, func() { pl.OnPacket(p, s.Now()) })
	}
	snd.Start()
	// Hold 1.5 s of packets, then release them all at once: without
	// drop-on-latency they would all play late.
	s.At(5*time.Second, func() { holding = true })
	s.At(6500*time.Millisecond, func() {
		holding = false
		for _, p := range held {
			p := p
			pl.OnPacket(p, s.Now())
		}
	})
	s.RunUntil(12 * time.Second)
	skipped := 0
	for _, f := range pl.Frames {
		if f.Skipped && f.PlayedAt > 6*time.Second && f.PlayedAt < 8*time.Second {
			skipped++
		}
	}
	if skipped < 10 {
		t.Errorf("drop-on-latency skipped only %d stale frames after the release", skipped)
	}
}

func TestSenderRecordsLookup(t *testing.T) {
	s := sim.New(8)
	ctrl := cc.NewStatic(8e6)
	var sentPkts []*rtp.Packet
	snd := NewSender(s, DefaultSenderConfig(), ctrl, s.Stream("enc"))
	snd.Transmit = func(p *rtp.Packet, size int) { sentPkts = append(sentPkts, p) }
	snd.Start()
	s.RunUntil(time.Second)
	if len(sentPkts) == 0 {
		t.Fatal("nothing sent")
	}
	for _, p := range sentPkts {
		tseq, ok := p.Header.TransportSeq()
		if !ok {
			t.Fatal("packet without transport seq")
		}
		rec, ok := snd.LookupTransport(tseq)
		if !ok || rec.Seq != p.Header.SequenceNumber {
			t.Fatalf("transport lookup failed for %d", tseq)
		}
		if rec2, ok := snd.LookupSeq(p.Header.SequenceNumber); !ok || rec2.TransportSeq != tseq {
			t.Fatalf("seq lookup failed for %d", p.Header.SequenceNumber)
		}
	}
}

func TestSenderHonorsWindowLimit(t *testing.T) {
	// A controller that blocks sending keeps packets queued; a Kick after
	// opening the window drains them.
	s := sim.New(9)
	ctrl := &gate{open: false, rate: 8e6}
	snd := NewSender(s, DefaultSenderConfig(), ctrl, s.Stream("enc"))
	sent := 0
	snd.Transmit = func(p *rtp.Packet, size int) { sent++ }
	snd.Start()
	s.RunUntil(time.Second)
	if sent != 0 {
		t.Fatalf("%d packets sent through a closed window", sent)
	}
	ctrl.open = true
	snd.Kick()
	s.RunUntil(1100 * time.Millisecond)
	if sent == 0 {
		t.Error("no packets sent after the window opened")
	}
}

// gate is a test controller with a manual send gate.
type gate struct {
	open bool
	rate float64
}

func (g *gate) OnPacketSent(cc.SentPacket)               {}
func (g *gate) OnFeedback(time.Duration, []cc.Ack)       {}
func (g *gate) TargetBitrate(time.Duration) float64      { return g.rate }
func (g *gate) PacingRate(time.Duration) float64         { return g.rate * 2 }
func (g *gate) CanSend(now time.Duration, size int) bool { return g.open }
func (g *gate) Name() string                             { return "gate" }
