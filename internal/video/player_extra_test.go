package video

import (
	"math/rand"
	"testing"
	"time"

	"rpivideo/internal/cc"
	"rpivideo/internal/rtp"
	"rpivideo/internal/sim"
)

func TestPlayerFPSDistCountsPerSecond(t *testing.T) {
	s := sim.New(1)
	ctrl := cc.NewStatic(8e6)
	snd, pl := pipe(s, ctrl, 40*time.Millisecond, nil)
	snd.Start()
	s.RunUntil(10 * time.Second)
	d := pl.FPSDist(10 * time.Second)
	if d.N() != 10 {
		t.Fatalf("FPS samples = %d, want one per second", d.N())
	}
	// Steady state plays 30 FPS; the first second is short by the pipeline
	// warm-up.
	if d.Quantile(0.5) < 28 || d.Quantile(0.5) > 32 {
		t.Errorf("median FPS = %v", d.Quantile(0.5))
	}
}

func TestPlayerStallsPerMinuteZeroSpan(t *testing.T) {
	s := sim.New(2)
	pl := NewPlayer(s, DefaultPlayerConfig(), nil, nil)
	if got := pl.StallsPerMinute(0); got != 0 {
		t.Errorf("StallsPerMinute(0) = %v", got)
	}
}

func TestPlayerOutOfOrderPacketsWithinFrame(t *testing.T) {
	// Deliver each frame's packets in reverse order: reassembly must not
	// care, and playback must be intact.
	s := sim.New(3)
	ctrl := cc.NewStatic(8e6)
	snd := NewSender(s, DefaultSenderConfig(), ctrl, s.Stream("enc"))
	pl := NewPlayer(s, DefaultPlayerConfig(), DefaultSSIMModel(), snd.FrameEncoding)
	var batch []*rtp.Packet
	snd.Transmit = func(p *rtp.Packet, size int) {
		batch = append(batch, p)
		if p.Header.Marker { // end of frame: deliver reversed
			pkts := batch
			batch = nil
			s.After(30*time.Millisecond, func() {
				for i := len(pkts) - 1; i >= 0; i-- {
					pl.OnPacket(pkts[i], s.Now())
				}
			})
		}
	}
	snd.Start()
	s.RunUntil(5 * time.Second)
	skipped := 0
	for _, f := range pl.Frames {
		if f.Skipped {
			skipped++
		}
	}
	if len(pl.Frames) < 100 {
		t.Fatalf("only %d frames", len(pl.Frames))
	}
	if skipped > 0 {
		t.Errorf("%d frames skipped under in-frame reordering", skipped)
	}
}

func TestPlayerLatchQuirkRateGate(t *testing.T) {
	s := sim.New(4)
	cfg := DefaultPlayerConfig()
	cfg.LatchQuirk = true
	cfg.LatchRate = 12e6
	pl := NewPlayer(s, cfg, nil, nil)
	// Below the gate: not latched.
	pk := rtp.NewPacketizer(1, 96, 1200)
	feed := func(mbps float64, at time.Duration) {
		bytes := int(mbps * 1e6 / 8)
		sent := 0
		num := uint32(at / time.Second * 100)
		for sent < bytes {
			for _, p := range pk.Packetize(rtp.FrameInfo{Num: num, Size: 30000}) {
				pl.OnPacket(p, at)
				sent += p.MarshalSize()
			}
			num++
		}
	}
	for sec := 0; sec < 4; sec++ {
		feed(5, time.Duration(sec)*time.Second)
	}
	if pl.latched() {
		t.Error("latched at 5 Mbps, below the 12 Mbps gate")
	}
	pl2 := NewPlayer(s, cfg, nil, nil)
	for sec := 0; sec < 4; sec++ {
		feed2 := func(at time.Duration) {
			bytes := int(20e6 / 8)
			sent := 0
			num := uint32(at/time.Second*100) + 50000
			for sent < bytes {
				for _, p := range pk.Packetize(rtp.FrameInfo{Num: num, Size: 30000}) {
					pl2.OnPacket(p, at)
					sent += p.MarshalSize()
				}
				num++
			}
		}
		feed2(time.Duration(sec) * time.Second)
	}
	if !pl2.latched() {
		t.Error("not latched at 20 Mbps, above the gate")
	}
	// Disabled quirk never latches.
	cfg.LatchQuirk = false
	pl3 := NewPlayer(s, cfg, nil, nil)
	if pl3.latched() {
		t.Error("latched with the quirk disabled")
	}
}

func TestEncoderDeterministicPerSeed(t *testing.T) {
	a := NewEncoder(DefaultEncoderConfig(), 8e6, rand.New(rand.NewSource(42)))
	b := NewEncoder(DefaultEncoderConfig(), 8e6, rand.New(rand.NewSource(42)))
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 33 * time.Millisecond
		fa, fb := a.NextFrame(at), b.NextFrame(at)
		if fa != fb {
			t.Fatalf("frame %d differs between same-seed encoders", i)
		}
	}
}

func TestSenderFrameEncodingRegistry(t *testing.T) {
	s := sim.New(6)
	ctrl := cc.NewStatic(8e6)
	snd := NewSender(s, DefaultSenderConfig(), ctrl, s.Stream("enc"))
	snd.Transmit = func(*rtp.Packet, int) {}
	snd.Start()
	s.RunUntil(2 * time.Second)
	rate, complexity, ok := snd.FrameEncoding(10)
	if !ok {
		t.Fatal("frame 10 not in the registry")
	}
	if rate < 2e6 || rate > 25e6 || complexity <= 0 {
		t.Errorf("encoding = %v, %v", rate, complexity)
	}
	if _, _, ok := snd.FrameEncoding(999999); ok {
		t.Error("unknown frame reported as known")
	}
}

// TestOnRepairedPacketAccounting: a frame completed by a retransmission
// plays instead of skipping, and the repaired/lost distinction shows up in
// the player's books.
func TestOnRepairedPacketAccounting(t *testing.T) {
	s := sim.New(7)
	pl := NewPlayer(s, DefaultPlayerConfig(), nil, nil)
	pk := rtp.NewPacketizer(1, 96, 1200)
	for num := uint32(0); num < 10; num++ {
		num := num
		at := time.Duration(num) * 33 * time.Millisecond
		s.At(at, func() {
			pkts := pk.Packetize(rtp.FrameInfo{Num: num, Size: 6000, EncodeTime: at})
			for i, p := range pkts {
				if num == 4 && i == 1 {
					// Lost on the wire; the repair layer delivers it 60 ms
					// later, well inside the jitter buffer.
					p := p
					s.After(60*time.Millisecond, func() { pl.OnRepairedPacket(p, s.Now()) })
					// A duplicate repair (RTX racing a second NACK) must
					// not double-count.
					s.After(80*time.Millisecond, func() { pl.OnRepairedPacket(p, s.Now()) })
					continue
				}
				pl.OnPacket(p, s.Now())
			}
		})
	}
	s.RunUntil(2 * time.Second)
	if pl.PacketsRepaired != 1 {
		t.Errorf("PacketsRepaired = %d, want 1", pl.PacketsRepaired)
	}
	if pl.FramesRepaired != 1 {
		t.Errorf("FramesRepaired = %d, want 1", pl.FramesRepaired)
	}
	var frame4 *PlayedFrame
	for i := range pl.Frames {
		if pl.Frames[i].Num == 4 {
			frame4 = &pl.Frames[i]
		}
	}
	if frame4 == nil {
		t.Fatal("frame 4 never decided")
	}
	if frame4.Skipped || !frame4.Repaired {
		t.Errorf("frame 4 skipped=%v repaired=%v, want played and repaired", frame4.Skipped, frame4.Repaired)
	}
	if frame4.SSIM <= 0 {
		t.Errorf("repaired frame scored %v", frame4.SSIM)
	}
}

// TestKeyframeRequestLimiterResetsAfterBlackout: a PLI issued just before a
// blackout was flushed with the dead downlink; when the stream resumes
// after a silence longer than the limiter window, the first post-recovery
// skip must request a keyframe immediately instead of serving out the
// stale limiter.
func TestKeyframeRequestLimiterResetsAfterBlackout(t *testing.T) {
	s := sim.New(8)
	cfg := DefaultPlayerConfig()
	cfg.KeyframeRecovery = true // 500 ms request interval
	pl := NewPlayer(s, cfg, nil, nil)
	var requests []time.Duration
	pl.KeyframeRequest = func() { requests = append(requests, s.Now()) }
	pk := rtp.NewPacketizer(1, 96, 1200)
	feed := func(num uint32, at time.Duration) {
		s.At(at, func() {
			for _, p := range pk.Packetize(rtp.FrameInfo{Num: num, Size: 6000, EncodeTime: at}) {
				pl.OnPacket(p, s.Now())
			}
		})
	}
	feed(0, 0)
	feed(1, 33*time.Millisecond)
	feed(3, 66*time.Millisecond) // frame 2 lost → skip ≈216 ms → request #1
	// Blackout: nothing arrives until 700 ms (gap > the 500 ms limiter
	// window, but request #1 is still inside it).
	feed(10, 700*time.Millisecond) // resume: frames 4..9 gone → gap skip
	s.RunUntil(2 * time.Second)
	if len(requests) < 2 {
		t.Fatalf("requests = %v, want the pre-blackout one plus an immediate post-recovery one", requests)
	}
	if requests[0] > 300*time.Millisecond {
		t.Fatalf("first request at %v, want ≈216 ms", requests[0])
	}
	// Without the staleness reset the limiter (armed at ≈216 ms) suppresses
	// the ≈705 ms gap skip, deferring the request to the first played frame
	// at ≈850 ms.
	if requests[1] > 800*time.Millisecond {
		t.Errorf("post-recovery request at %v, want immediately after the 700 ms resume", requests[1])
	}
}
