package video

import (
	"time"

	"rpivideo/internal/metrics"
	"rpivideo/internal/obs"
	"rpivideo/internal/rtp"
	"rpivideo/internal/sim"
)

// PlayerConfig parameterizes the receiving pipeline: GStreamer's RTP jitter
// buffer plus the playback-rate adaptation the paper describes in §4.2.2
// and Appendix A.4.
type PlayerConfig struct {
	// FPS is the nominal playback rate (30).
	FPS int
	// JitterBuffer is the rtpjitterbuffer latency: a frame becomes due
	// this long after its first packet arrives (150 ms in the campaign).
	JitterBuffer time.Duration
	// StallThreshold classifies an inter-frame playback gap as a stall
	// (≈300 ms, the RP latency requirement).
	StallThreshold time.Duration
	// MaxFrameLoss is the largest fraction of a frame's packets the
	// decoder conceals; beyond it the frame is not decodable and is
	// skipped.
	MaxFrameLoss float64
	// SlowdownFactor stretches playback when the buffer runs low (the
	// proactive rate reduction of Appendix A.4); 1 disables.
	SlowdownFactor float64
	// CatchupFactor compresses playback when the buffer is comfortable
	// again, cutting elevated playback latency back down.
	CatchupFactor float64
	// DropOnLatency, when set, drops buffered frames older than
	// DropThreshold instead of playing them late (the rtpjitterbuffer
	// "drop-on-latency" property, Appendix A.4).
	DropOnLatency bool
	DropThreshold time.Duration
	// GiveUpAfter abandons a frame whose remaining packets have not
	// arrived this long after it became due.
	GiveUpAfter time.Duration
	// LatchQuirk reproduces the playback-latency plateaus the paper
	// observed with SCReAM in the well-provisioned urban cell (§4.2.2):
	// above LatchRate incoming bits/s the buffer's catch-up stops engaging
	// and elevated latency latches until frame skips cut it down. The
	// paper suspected the rtpjitterbuffer and could not isolate the root
	// cause; this reproduces the symptom under the same conditions
	// (SCReAM, high bitrate) and is off by default.
	LatchQuirk bool
	LatchRate  float64
	// KeyframeRecovery arms the §5 error-concealment recovery model:
	// skipped frames leave the decoder predicting from a stale reference,
	// so decoded frames score a reduced SSIM until the next keyframe
	// plays, and the player issues a rate-limited KeyframeRequest (PLI
	// semantics) so the sender can cut the propagation short. Off by
	// default to leave the calibrated campaign results untouched.
	KeyframeRecovery bool
	// KeyframeRequestInterval rate-limits KeyframeRequest (500 ms if
	// zero).
	KeyframeRequestInterval time.Duration
}

// errorPropagationSSIM scales decoded-frame SSIM while the decoder's
// reference is stale (after a skip, before the next keyframe).
const errorPropagationSSIM = 0.6

// DefaultPlayerConfig returns the campaign player parameters.
func DefaultPlayerConfig() PlayerConfig {
	return PlayerConfig{
		FPS:            30,
		JitterBuffer:   150 * time.Millisecond,
		StallThreshold: 300 * time.Millisecond,
		MaxFrameLoss:   0.5,
		SlowdownFactor: 1.25,
		CatchupFactor:  0.75,
		GiveUpAfter:    250 * time.Millisecond,
		LatchRate:      12e6,
	}
}

// PlayedFrame is one frame that reached the screen (or failed to).
type PlayedFrame struct {
	Num      uint32
	PlayedAt time.Duration
	// Latency is the playback latency: play time minus encode time. Zero
	// for skipped frames.
	Latency time.Duration
	// SSIM is the frame quality score (0 for skipped frames).
	SSIM float64
	// Skipped marks frames that were never decoded.
	Skipped bool
	// Repaired marks frames at least one of whose packets arrived as a
	// retransmission — played (or concealed) instead of lost.
	Repaired bool
}

// Stall is one playback interruption longer than the stall threshold.
type Stall struct {
	At       time.Duration
	Duration time.Duration
}

// Player is the receiving pipeline: depacketizer → jitter buffer → paced
// playback with quality scoring.
type Player struct {
	cfg  PlayerConfig
	sim  *sim.Simulator
	ssim *SSIMModel
	// encoding resolves a frame number to its encoder rate/complexity (fed
	// from the sender's registry; out-of-band in the simulator).
	encoding func(num uint32) (rate, complexity float64, ok bool)

	depkt *rtp.Depacketizer

	// KeyframeRequest, when set with cfg.KeyframeRecovery, is invoked
	// (rate-limited) whenever a frame is skipped while decodable
	// continuity is broken — the receiver's PLI.
	KeyframeRequest func()
	// KeyframeRequests counts issued requests.
	KeyframeRequests int
	needKeyframe     bool
	lastKFRequest    time.Duration
	haveKFRequest    bool

	started      bool
	nextPlay     uint32 // next frame number to play
	highestSeen  uint32 // highest frame number with any packet
	lastPlayedAt time.Duration
	everPlayed   bool
	playClock    time.Duration // earliest time the next frame may play

	// Outputs.
	Frames    []PlayedFrame
	Stalls    []Stall
	fpsBins   map[int]int
	arrivals  int
	bytesRecv int
	// PacketsRepaired counts retransmitted packets ingested into frames;
	// FramesRepaired counts played frames that needed at least one.
	PacketsRepaired int
	FramesRepaired  int
	// lastArrivalAt timestamps the most recent media ingest, so the PLI
	// rate limiter can tell a live stream from one resuming after a
	// blackout.
	lastArrivalAt time.Duration

	// rateWindow tracks received bytes over the trailing seconds for the
	// latch quirk's rate estimate.
	rateBins [4]int
	rateSec  int

	// trace emits frame-play/frame-skip/stall events (nil = disabled;
	// purely observational).
	trace *obs.Tracer

	// delayHist, when non-nil, records each played frame's glass-to-glass
	// latency in milliseconds.
	delayHist *obs.LogHistogram

	task *sim.Task
}

// NewPlayer returns a player. encoding resolves frame numbers to their
// encoder parameters for the SSIM model.
func NewPlayer(s *sim.Simulator, cfg PlayerConfig, ssim *SSIMModel, encoding func(uint32) (float64, float64, bool)) *Player {
	if ssim == nil {
		ssim = DefaultSSIMModel()
	}
	p := &Player{
		cfg:      cfg,
		sim:      s,
		ssim:     ssim,
		encoding: encoding,
		depkt:    rtp.NewDepacketizer(),
		fpsBins:  make(map[int]int),
	}
	p.task = s.Every(0, 5*time.Millisecond, p.pump)
	return p
}

// SetTracer attaches an event tracer (nil disables tracing).
func (p *Player) SetTracer(tr *obs.Tracer) { p.trace = tr }

// SetLatencyHist attaches a histogram that records each played frame's
// encode-to-play latency in milliseconds. Nil disables recording. Skipped
// frames are not recorded — they have no play time.
func (p *Player) SetLatencyHist(h *obs.LogHistogram) { p.delayHist = h }

// Stop halts the playback loop.
func (p *Player) Stop() {
	if p.task != nil {
		p.task.Stop()
	}
}

// BytesReceived returns the media bytes received so far.
func (p *Player) BytesReceived() int { return p.bytesRecv }

// PacketsReceived returns the media packets received so far.
func (p *Player) PacketsReceived() int { return p.arrivals }

// OnPacket ingests one media packet from the downstream of the link.
func (p *Player) OnPacket(pkt *rtp.Packet, at time.Duration) {
	p.ingest(pkt, at, false)
}

// OnRepairedPacket ingests a media packet recovered by the repair layer
// (an unwrapped RTX). The frame it lands in is marked repaired, so skip
// and stall accounting can distinguish "repaired" from "lost".
func (p *Player) OnRepairedPacket(pkt *rtp.Packet, at time.Duration) {
	p.ingest(pkt, at, true)
}

func (p *Player) ingest(pkt *rtp.Packet, at time.Duration, repaired bool) {
	fs, err := p.depkt.Push(pkt, at)
	if err != nil {
		return // not a media packet, or a duplicate slot
	}
	if p.cfg.KeyframeRecovery && p.haveKFRequest && at-p.lastArrivalAt > p.kfInterval() {
		// The stream is resuming after a dead span longer than the limiter
		// window. Any request issued into that blackout was flushed with
		// the downlink backlog, so a stale limiter must not delay the
		// first post-recovery keyframe request.
		p.haveKFRequest = false
	}
	p.lastArrivalAt = at
	if repaired {
		fs.Repaired = true
		p.PacketsRepaired++
	}
	p.arrivals++
	p.bytesRecv += pkt.MarshalSize()
	sec := int(at / time.Second)
	if sec != p.rateSec {
		for s := p.rateSec + 1; s <= sec && s-p.rateSec <= 4; s++ {
			p.rateBins[s%4] = 0
		}
		p.rateSec = sec
	}
	p.rateBins[sec%4] += pkt.MarshalSize()
	if !p.started {
		p.started = true
		p.nextPlay = fs.Num
		p.highestSeen = fs.Num
	} else if fs.Num > p.highestSeen {
		p.highestSeen = fs.Num
	}
}

// bufferedAhead counts complete frames buffered beyond the next one — the
// occupancy signal for the playback-rate adaptation.
func (p *Player) bufferedAhead() int {
	n := 0
	for num := p.nextPlay + 1; num <= p.highestSeen && num < p.nextPlay+10; num++ {
		if fs := p.depkt.Frame(num); fs != nil && fs.Complete() {
			n++
		}
	}
	return n
}

// pump advances playback.
func (p *Player) pump() {
	if !p.started {
		return
	}
	now := p.sim.Now()
	for {
		if now < p.playClock {
			return
		}
		fs := p.depkt.Frame(p.nextPlay)
		switch {
		case fs != nil && fs.Complete():
			due := fs.FirstArrival + p.cfg.JitterBuffer
			if now < due {
				return // buffered, waiting for its slot
			}
			if p.cfg.DropOnLatency && p.cfg.DropThreshold > 0 && now-fs.FirstArrival > p.cfg.DropThreshold {
				p.skip(now, "stale")
				continue
			}
			p.play(now, fs)
			continue
		case fs != nil:
			// Partial frame: wait until due + grace, then decode damaged
			// or skip.
			deadline := fs.FirstArrival + p.cfg.JitterBuffer + p.cfg.GiveUpAfter
			if now < deadline {
				if p.frameAbandoned(fs) {
					// A later frame is complete; this one's missing
					// packets were lost. Decide now.
					p.decodePartial(now, fs)
					continue
				}
				return
			}
			p.decodePartial(now, fs)
			continue
		default:
			// No packet of this frame at all. Skip once a later frame has
			// been waiting long enough that this one cannot appear.
			if p.highestSeen > p.nextPlay {
				later := p.depkt.Frame(p.nextPlay + 1)
				if later != nil && now >= later.FirstArrival+p.cfg.JitterBuffer {
					p.skip(now, "missing")
					continue
				}
				// Also bail out if a much later frame exists (whole-frame
				// gap from a queue discard at the sender).
				if p.highestSeen > p.nextPlay+3 {
					p.skip(now, "gap")
					continue
				}
			}
			return
		}
	}
}

// frameAbandoned reports whether a partial frame can be declared final
// early because newer frames already completed behind it.
func (p *Player) frameAbandoned(fs *rtp.FrameState) bool {
	later := p.depkt.Frame(fs.Num + 1)
	return later != nil && later.Complete() && p.sim.Now() > fs.LastArrival+50*time.Millisecond
}

// decodePartial plays a damaged frame if the decoder can conceal the loss,
// otherwise skips it.
func (p *Player) decodePartial(now time.Duration, fs *rtp.FrameState) {
	if fs.LossFraction() <= p.cfg.MaxFrameLoss {
		p.play(now, fs)
		return
	}
	p.skip(now, "undecodable")
}

// play emits one frame.
func (p *Player) play(now time.Duration, fs *rtp.FrameState) {
	rate, complexity, ok := float64(0), float64(1), false
	if p.encoding != nil {
		rate, complexity, ok = p.encoding(fs.Num)
	}
	if !ok {
		rate, complexity = 2e6, 1
	}
	score := p.ssim.Score(rate, complexity, fs.LossFraction(), fs.Keyframe)
	if p.cfg.KeyframeRecovery && p.needKeyframe {
		if fs.Keyframe {
			p.needKeyframe = false
		} else {
			// Decoder predicting from a stale reference: the error from the
			// skipped frame propagates through every inter frame until an
			// intra refresh arrives.
			score *= errorPropagationSSIM
			p.maybeRequestKeyframe(now)
		}
	}
	pf := PlayedFrame{
		Num:      fs.Num,
		PlayedAt: now,
		Latency:  now - fs.EncodeTime,
		SSIM:     score,
		Repaired: fs.Repaired,
	}
	if fs.Repaired {
		p.FramesRepaired++
	}
	p.record(pf, now)
	p.depkt.Delete(fs.Num)
	p.advance(now)
}

// skip abandons the current frame (never decoded, SSIM 0).
func (p *Player) skip(now time.Duration, _ string) {
	p.record(PlayedFrame{
		Num:      p.nextPlay,
		PlayedAt: now,
		SSIM:     p.ssim.Skip(),
		Skipped:  true,
	}, now)
	if p.cfg.KeyframeRecovery {
		p.needKeyframe = true
		p.maybeRequestKeyframe(now)
	}
	p.depkt.Delete(p.nextPlay)
	// Skipping does not consume a playback slot: the next frame may play
	// immediately (the §3.2 observation that playback latency can drop
	// without an FPS increase when frames are skipped).
	p.nextPlay++
}

// kfInterval returns the keyframe-request rate-limit interval.
func (p *Player) kfInterval() time.Duration {
	if p.cfg.KeyframeRequestInterval > 0 {
		return p.cfg.KeyframeRequestInterval
	}
	return 500 * time.Millisecond
}

// maybeRequestKeyframe fires the KeyframeRequest hook, rate-limited so a
// burst of skips (one outage) yields one request per interval.
func (p *Player) maybeRequestKeyframe(now time.Duration) {
	if p.KeyframeRequest == nil {
		return
	}
	if p.haveKFRequest && now-p.lastKFRequest < p.kfInterval() {
		return
	}
	p.haveKFRequest = true
	p.lastKFRequest = now
	p.KeyframeRequests++
	p.KeyframeRequest()
}

// record appends the frame sample and the stall/FPS bookkeeping.
func (p *Player) record(pf PlayedFrame, now time.Duration) {
	p.Frames = append(p.Frames, pf)
	if pf.Skipped {
		if p.trace != nil {
			p.trace.Emit(obs.Event{T: now, Kind: obs.KindFrameSkip, Seq: int64(pf.Num)})
		}
		return
	}
	if p.everPlayed {
		if gap := now - p.lastPlayedAt; gap > p.cfg.StallThreshold {
			p.Stalls = append(p.Stalls, Stall{At: p.lastPlayedAt, Duration: gap})
			if p.trace != nil {
				p.trace.Emit(obs.Event{T: now, Kind: obs.KindStall,
					V: float64(gap) / float64(time.Millisecond)})
			}
		}
	}
	p.everPlayed = true
	p.lastPlayedAt = now
	p.fpsBins[int(now/time.Second)]++
	if p.trace != nil {
		p.trace.Emit(obs.Event{T: now, Kind: obs.KindFramePlay, Seq: int64(pf.Num),
			Aux: int64(pf.Latency / time.Millisecond), V: pf.SSIM})
	}
	if p.delayHist != nil {
		p.delayHist.Observe(float64(pf.Latency) / float64(time.Millisecond))
	}
}

// advance moves the playback clock, applying the proactive slowdown when
// the buffer is starved and catching back up when it is comfortable.
func (p *Player) advance(now time.Duration) {
	p.nextPlay++
	interval := time.Second / time.Duration(p.cfg.FPS)
	ahead := p.bufferedAhead()
	factor := 1.0
	switch {
	case ahead == 0 && p.cfg.SlowdownFactor > 1:
		factor = p.cfg.SlowdownFactor
	case ahead >= 2 && p.cfg.CatchupFactor > 0 && p.cfg.CatchupFactor < 1:
		factor = p.cfg.CatchupFactor
		if p.latched() {
			// The latched buffer barely recovers: elevated latency decays
			// an order of magnitude slower than normal catch-up.
			factor = 1 - (1-p.cfg.CatchupFactor)/10
		}
	}
	p.playClock = now + time.Duration(float64(interval)*factor)
}

// latched reports whether the latch quirk suppresses catch-up: active only
// when enabled and the incoming rate exceeds the latch threshold.
func (p *Player) latched() bool {
	if !p.cfg.LatchQuirk || p.cfg.LatchRate <= 0 {
		return false
	}
	bytes := 0
	for _, b := range p.rateBins {
		bytes += b
	}
	return float64(bytes)*8/4 > p.cfg.LatchRate
}

// FPSDist returns the distribution of frames played per second over the
// given span (Fig. 7a's metric).
func (p *Player) FPSDist(span time.Duration) *metrics.Dist {
	var d metrics.Dist
	secs := int(span / time.Second)
	for s := 0; s < secs; s++ {
		d.Add(float64(p.fpsBins[s]))
	}
	return &d
}

// LatencyDist returns the playback-latency distribution over played frames
// in milliseconds (Fig. 7c's metric).
func (p *Player) LatencyDist() *metrics.Dist {
	var d metrics.Dist
	for _, f := range p.Frames {
		if !f.Skipped {
			d.Add(float64(f.Latency) / float64(time.Millisecond))
		}
	}
	return &d
}

// SSIMDist returns the SSIM distribution over all frames, skipped ones
// scoring 0 (Fig. 7b's metric).
func (p *Player) SSIMDist() *metrics.Dist {
	var d metrics.Dist
	for _, f := range p.Frames {
		d.Add(f.SSIM)
	}
	return &d
}

// StallsPerMinute returns the stall rate over the given span (§4.2.1).
func (p *Player) StallsPerMinute(span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(len(p.Stalls)) / span.Minutes()
}
