package video

import (
	"math/rand"
	"time"

	"rpivideo/internal/cc"
	"rpivideo/internal/rtp"
	"rpivideo/internal/sim"
)

// SenderConfig parameterizes the sending half of the pipeline.
type SenderConfig struct {
	Encoder EncoderConfig
	// SSRC and PayloadType identify the RTP stream.
	SSRC        uint32
	PayloadType uint8
	// MTU bounds RTP packet sizes (1200 by default).
	MTU int
}

// DefaultSenderConfig returns the campaign sender parameters.
func DefaultSenderConfig() SenderConfig {
	return SenderConfig{
		Encoder:     DefaultEncoderConfig(),
		SSRC:        0x1234,
		PayloadType: 96,
		MTU:         1200,
	}
}

// SentRecord remembers a sent packet so feedback can be translated into
// cc.Acks.
type SentRecord struct {
	Seq          uint16
	TransportSeq uint16
	Size         int
	SendTime     time.Duration
}

// Sender encodes, packetizes and paces the video stream under a congestion
// controller. Transmit is called for each departing packet.
type Sender struct {
	cfg  SenderConfig
	sim  *sim.Simulator
	ctrl cc.Controller
	enc  *Encoder
	pkt  *rtp.Packetizer

	queue cc.SendQueue
	pacer cc.Pacer

	// Transmit hands a packet to the uplink. Must be set before Start.
	Transmit func(p *rtp.Packet, size int)

	// sent records in-flight packets for feedback translation, keyed by
	// both sequence spaces. Each table is a direct-mapped window over the
	// last sentWindow sequence numbers: slot seq&sentMask holds the record
	// whose key matches, newer sequences overwrite slots one full window
	// later, and lookups validate the stored key. This keeps the
	// per-packet cost at two array stores (no map hashing, no amortized
	// trim scans) with the same effect as the old bounded maps: feedback
	// older than the window misses.
	byTransport sentTable
	bySeq       sentTable

	draining bool
	drainFn  func() // preallocated s.drain closure for pacer wakeups
	task     *sim.Task

	// frames carries encoder-side per-frame data (rate, complexity) to the
	// receiver-side SSIM computation. In the physical pipeline this is
	// implicit in the encoded bitstream; the simulator transfers it out of
	// band.
	frames frameRegistry

	// Counters for experiments.
	FramesEncoded int
	PacketsSent   int
	BytesSent     int
}

// NewSender wires an encoder and packetizer under the given controller.
func NewSender(s *sim.Simulator, cfg SenderConfig, ctrl cc.Controller, rng *rand.Rand) *Sender {
	if cfg.MTU == 0 {
		cfg.MTU = 1200
	}
	snd := &Sender{
		cfg:  cfg,
		sim:  s,
		ctrl: ctrl,
		enc:  NewEncoder(cfg.Encoder, ctrl.TargetBitrate(0), rng),
		pkt:  rtp.NewPacketizer(cfg.SSRC, cfg.PayloadType, cfg.MTU),
	}
	snd.drainFn = snd.drain
	if qa, ok := ctrl.(cc.QueueAware); ok {
		qa.SetQueue(&snd.queue)
	}
	return snd
}

// sentTable is a direct-mapped record window (see the Sender field comment).
// A zero Size marks an empty slot: every sent packet has Size > 0.
type sentTable struct {
	recs [sentWindow]SentRecord
}

// sentWindow bounds how far back feedback can reference a sent packet —
// two full windows of the old map implementation's prune threshold.
const (
	sentWindow = 1 << 14
	sentMask   = sentWindow - 1
)

func (t *sentTable) store(key uint16, rec SentRecord) {
	t.recs[key&sentMask] = rec
}

// Encoder exposes the encoder (for traces).
func (s *Sender) Encoder() *Encoder { return s.enc }

// ForceKeyframe asks the encoder to restart the GOP with an I-frame on the
// next tick — the sender's handling of a receiver keyframe request.
func (s *Sender) ForceKeyframe() { s.enc.ForceKeyframe() }

// QueueDelay returns the current send-queue head age.
func (s *Sender) QueueDelay() time.Duration { return s.queue.Delay(s.sim.Now()) }

// Start begins the frame clock. The sender runs until Stop.
func (s *Sender) Start() {
	interval := time.Second / time.Duration(s.cfg.Encoder.FPS)
	s.task = s.sim.Every(0, interval, s.tick)
}

// Stop halts the frame clock.
func (s *Sender) Stop() {
	if s.task != nil {
		s.task.Stop()
	}
}

// tick encodes one frame and enqueues its packets.
func (s *Sender) tick() {
	now := s.sim.Now()
	s.enc.SetTarget(s.ctrl.TargetBitrate(now))
	f := s.enc.NextFrame(now)
	s.FramesEncoded++
	pkts := s.pkt.Packetize(rtp.FrameInfo{
		Num:        f.Num,
		EncodeTime: f.EncodeTime,
		Keyframe:   f.Keyframe,
		Size:       f.Size,
		RTPTime:    uint32(uint64(f.Num) * rtp.VideoClockRate / uint64(s.cfg.Encoder.FPS)),
	})
	s.registerFrame(f)
	for _, p := range pkts {
		s.queue.Push(cc.Item{
			Data:     p,
			Size:     p.MarshalSize(),
			Enqueued: now,
			FrameNum: f.Num,
		})
	}
	s.Kick()
}

// frameInfo is one frame's encoder-side data needed by the SSIM model.
type frameInfo struct {
	rate       float64
	complexity float64
}

type frameRegistry map[uint32]frameInfo

func (s *Sender) registerFrame(f Frame) {
	if s.frames == nil {
		s.frames = make(frameRegistry)
	}
	s.frames[f.Num] = frameInfo{rate: f.Rate, complexity: f.Complexity}
	// Bound memory: drop entries older than ~40 s of video.
	if len(s.frames) > 1200 {
		cut := f.Num - 1200
		for n := range s.frames {
			if n < cut {
				delete(s.frames, n)
			}
		}
	}
}

// FrameEncoding returns the encoder rate and complexity of a frame, with
// ok=false when it is no longer tracked.
func (s *Sender) FrameEncoding(num uint32) (rate, complexity float64, ok bool) {
	fi, ok := s.frames[num]
	return fi.rate, fi.complexity, ok
}

// Kick restarts the drain loop; the session calls it when feedback arrives
// (a window-limited controller may have room again).
func (s *Sender) Kick() {
	if s.draining {
		return
	}
	s.draining = true
	s.drain()
}

// drain sends queued packets as the pacer and controller allow.
func (s *Sender) drain() {
	now := s.sim.Now()
	for {
		it, ok := s.queue.Peek()
		if !ok {
			s.draining = false
			return
		}
		if !s.ctrl.CanSend(now, it.Size) {
			// Self-clocked controller out of window: feedback will kick us.
			s.draining = false
			return
		}
		if !s.pacer.Idle(now) {
			s.sim.At(s.pacer.FreeAt(), s.drainFn)
			return
		}
		s.queue.Pop()
		s.pacer.Next(now, it.Size, s.ctrl.PacingRate(now))
		p := it.Data.(*rtp.Packet)
		tseq, _ := p.Header.TransportSeq()
		rec := SentRecord{
			Seq:          p.Header.SequenceNumber,
			TransportSeq: tseq,
			Size:         it.Size,
			SendTime:     now,
		}
		s.byTransport.store(tseq, rec)
		s.bySeq.store(rec.Seq, rec)
		s.ctrl.OnPacketSent(cc.SentPacket{
			TransportSeq: tseq,
			Seq:          rec.Seq,
			Size:         it.Size,
			SendTime:     now,
		})
		s.PacketsSent++
		s.BytesSent += it.Size
		s.Transmit(p, it.Size)
	}
}

// LookupTransport translates a transport sequence number into its sent
// record.
func (s *Sender) LookupTransport(tseq uint16) (SentRecord, bool) {
	rec := s.byTransport.recs[tseq&sentMask]
	if rec.Size == 0 || rec.TransportSeq != tseq {
		return SentRecord{}, false
	}
	return rec, true
}

// LookupSeq translates an RTP sequence number into its sent record.
func (s *Sender) LookupSeq(seq uint16) (SentRecord, bool) {
	rec := s.bySeq.recs[seq&sentMask]
	if rec.Size == 0 || rec.Seq != seq {
		return SentRecord{}, false
	}
	return rec, true
}
