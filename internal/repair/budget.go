package repair

import "time"

// spendBin is the width of the budget's trailing spend-rate bins; four of
// them make the one-second window reported to congestion controllers.
const spendBin = 250 * time.Millisecond

// Budget is the sender-side repair token bucket. It accrues BudgetFraction
// of the congestion controller's current target rate (capped at
// BudgetBurst) and every retransmitted byte draws from it, so repair
// traffic is bounded relative to the media rate by construction:
// Spent ≤ Accrued always holds, and Accrued grows no faster than
// fraction × target plus the initial burst.
type Budget struct {
	cfg     Config
	tokens  float64
	accrued float64
	last    time.Duration

	bins [4]int
	binQ int

	// Spent is the total bytes granted; Denied counts refused
	// retransmissions (bucket empty — the caller degrades to the PLI
	// path instead).
	Spent  int
	Denied int
}

// NewBudget returns a bucket holding one full burst; cfg should have
// passed WithDefaults.
func NewBudget(cfg Config) *Budget {
	burst := float64(cfg.BudgetBurst)
	return &Budget{cfg: cfg, tokens: burst, accrued: burst}
}

// Allow asks to spend size bytes of repair traffic at the given target
// media rate (bits/s). It refills from elapsed time first, then grants or
// denies atomically.
func (b *Budget) Allow(now time.Duration, size int, targetRate float64) bool {
	b.refill(now, targetRate)
	if float64(size) > b.tokens {
		b.Denied++
		return false
	}
	b.tokens -= float64(size)
	b.Spent += size
	b.note(now, size)
	return true
}

// Accrued returns the cumulative (uncapped) byte allowance granted so far,
// including the initial burst. Spent ≤ Accrued is the layer's hard
// invariant.
func (b *Budget) Accrued() float64 { return b.accrued }

// Tokens returns the bytes currently available.
func (b *Budget) Tokens() float64 { return b.tokens }

// SpendRate returns the repair send rate in bits/s over the trailing
// one-second window — the signal congestion controllers subtract from
// their media target.
func (b *Budget) SpendRate(now time.Duration) float64 {
	b.note(now, 0)
	bytes := 0
	for _, v := range b.bins {
		bytes += v
	}
	return float64(bytes) * 8
}

func (b *Budget) refill(now time.Duration, targetRate float64) {
	if now <= b.last {
		return
	}
	dt := now - b.last
	b.last = now
	add := b.cfg.BudgetFraction * targetRate / 8 * dt.Seconds()
	if add <= 0 {
		return
	}
	b.accrued += add
	b.tokens += add
	if burst := float64(b.cfg.BudgetBurst); b.tokens > burst {
		b.tokens = burst
	}
}

func (b *Budget) note(now time.Duration, size int) {
	q := int(now / spendBin)
	if q != b.binQ {
		for i := b.binQ + 1; i <= q && i-b.binQ <= len(b.bins); i++ {
			b.bins[i%len(b.bins)] = 0
		}
		b.binQ = q
	}
	b.bins[q%len(b.bins)] += size
}
