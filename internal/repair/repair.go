// Package repair is the packet-loss repair layer: RFC 4585 Generic NACK
// feedback from the receiver answered by RFC 4588 retransmissions from the
// sender, under an RTT-adaptive retry timer with exponential backoff and a
// bounded repair budget.
//
// The layer has three parts, deliberately decoupled so each is testable on
// its own and the transport wiring stays in internal/core:
//
//   - Detector (receiver side): watches the media sequence-number stream,
//     turns gaps into pending losses once a reorder tolerance is exceeded,
//     schedules NACKs with per-loss exponential backoff derived from a
//     smoothed repair RTT, and abandons a loss after a hard retry cap —
//     at which point recovery degrades to the player's existing
//     keyframe-request (PLI) path.
//   - Cache (sender side): a retransmission store bounded by bytes and by
//     age; packets older than the player's useful repair window are never
//     worth resending, so the cache forgets them.
//   - Budget (sender side): a token bucket accruing a configured fraction
//     of the congestion controller's target rate. Every RTX byte draws
//     from it; when empty the retransmission is denied rather than
//     stealing capacity from live media. The bucket also reports its
//     recent spend rate so controllers can subtract repair traffic from
//     the encoder target (see cc.RepairAware).
//
// Determinism contract: the package draws no randomness and schedules no
// simulator events itself; all timing flows in through the caller's clock,
// so seeded runs are byte-identical at any campaign worker count.
package repair

import "time"

// Config parameterizes the repair layer. The zero value is disabled; use
// DefaultConfig (or WithDefaults on a partially filled value) for the
// calibrated constants.
type Config struct {
	// Enabled arms the layer. Off by default so existing calibrated
	// campaigns are untouched.
	Enabled bool
	// RtxSSRC and RtxPayloadType identify the RFC 4588 retransmission
	// stream (own SSRC and sequence space, distinct payload type).
	RtxSSRC        uint32
	RtxPayloadType uint8
	// ReorderTolerance is how many later packets must arrive after a gap
	// before the missing packet is considered lost rather than reordered.
	ReorderTolerance int
	// NackDelay is the wait between declaring a loss and the first NACK,
	// absorbing short-scale jitter.
	NackDelay time.Duration
	// TickInterval is the receiver's NACK-scheduler cadence.
	TickInterval time.Duration
	// InitialRTT seeds the smoothed repair RTT before any NACK→RTX sample.
	InitialRTT time.Duration
	// MinRTO floors the retry timer.
	MinRTO time.Duration
	// RetryRTTFactor scales the smoothed RTT into the base retry timeout;
	// each further retry doubles it.
	RetryRTTFactor float64
	// MaxRetries is the hard cap on NACKs per lost packet; when the last
	// retry timer expires unanswered the loss is abandoned.
	MaxRetries int
	// MaxPending bounds tracked losses; beyond it the oldest are abandoned
	// (an outage long enough to overflow this is keyframe territory).
	MaxPending int
	// OutageGuard is the dead-span cutoff: a gap revealed after an arrival
	// silence longer than this is an outage, not a loss burst — the missing
	// packets predate the silence, their cache entries at the sender have
	// aged out, and the frames they belong to are past playout. Such gaps
	// are abandoned wholesale to the PLI path instead of NACK-chased.
	OutageGuard time.Duration
	// CacheBytes and CacheAge bound the sender's retransmission store.
	CacheBytes int
	CacheAge   time.Duration
	// BudgetFraction is the share of the congestion controller's target
	// rate the repair budget accrues; BudgetBurst caps the bucket (bytes).
	BudgetFraction float64
	BudgetBurst    int
}

// DefaultConfig returns the calibrated repair parameters, enabled.
func DefaultConfig() Config {
	return Config{Enabled: true}.WithDefaults()
}

// WithDefaults fills every zero field with its calibrated default and
// returns the result. Enabled is left as-is.
func (c Config) WithDefaults() Config {
	if c.RtxSSRC == 0 {
		c.RtxSSRC = 0x525458 // "RTX"
	}
	if c.RtxPayloadType == 0 {
		c.RtxPayloadType = 97
	}
	if c.ReorderTolerance == 0 {
		c.ReorderTolerance = 2
	}
	if c.NackDelay == 0 {
		c.NackDelay = 10 * time.Millisecond
	}
	if c.TickInterval == 0 {
		c.TickInterval = 10 * time.Millisecond
	}
	if c.InitialRTT == 0 {
		c.InitialRTT = 80 * time.Millisecond
	}
	if c.MinRTO == 0 {
		c.MinRTO = 20 * time.Millisecond
	}
	if c.RetryRTTFactor == 0 {
		c.RetryRTTFactor = 1.5
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxPending == 0 {
		c.MaxPending = 8192
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 4 << 20
	}
	if c.CacheAge == 0 {
		// The player's useful repair window: jitter buffer (150 ms) plus
		// frame give-up slack (250 ms). A packet older than that heals a
		// frame the player has already skipped, so resending it only taxes
		// the recovering link.
		c.CacheAge = 400 * time.Millisecond
	}
	if c.OutageGuard == 0 {
		// Match the cache age: if the link was dead longer than the sender
		// keeps packets, chasing the span can only waste NACK and RTX bytes
		// on the recovering link.
		c.OutageGuard = c.CacheAge
	}
	if c.BudgetFraction == 0 {
		c.BudgetFraction = 0.15
	}
	if c.BudgetBurst == 0 {
		// Sized to repair a full short fade in one burst: ≈80 ms of a
		// 25 Mbps stream. The OutageGuard keeps longer dead spans from ever
		// reaching the budget, so a generous burst cannot flood a
		// recovering link.
		c.BudgetBurst = 256 << 10
	}
	return c
}
