package repair

import (
	"testing"
	"time"

	"rpivideo/internal/rtp"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// tickUntil drives the scheduler at 1 ms granularity and returns the times
// (in ms) at which each NACK for the watched seq fired.
func tickUntil(d *Detector, seq uint16, until time.Duration) []int {
	var fired []int
	for now := time.Duration(0); now <= until; now += time.Millisecond {
		for _, s := range d.Tick(now) {
			if s == seq {
				fired = append(fired, int(now/time.Millisecond))
			}
		}
	}
	return fired
}

func TestDetectorIgnoresReorderBelowTolerance(t *testing.T) {
	d := NewDetector(DefaultConfig()) // tolerance 2
	d.OnPacket(0, 0)
	d.OnPacket(1, 0)
	d.OnPacket(3, 0) // gap: 2 missing, one arrival past it
	if got := d.Tick(time.Second); len(got) != 0 {
		t.Fatalf("NACK fired below reorder tolerance: %v", got)
	}
	d.OnPacket(2, ms(5)) // the reordered original shows up
	if d.Late != 1 || d.Pending() != 0 {
		t.Fatalf("late arrival not healed: late=%d pending=%d", d.Late, d.Pending())
	}
	if got := tickUntil(d, 2, time.Second); len(got) != 0 {
		t.Fatalf("spurious NACKs for a healed gap: %v", got)
	}
	if d.Repaired != 0 || d.Abandoned != 0 {
		t.Fatalf("counters polluted: %+v", d)
	}
}

func TestDetectorBackoffSequence(t *testing.T) {
	// Defaults: NackDelay 10ms, InitialRTT 80ms, factor 1.5, MaxRetries 3.
	// Expected NACKs: 10ms, then +120ms, then +240ms; abandon 480ms after
	// the last (850ms) when the final timer expires unanswered.
	d := NewDetector(DefaultConfig())
	d.OnPacket(0, 0)
	d.OnPacket(2, 0) // seq 1 missing
	d.OnPacket(3, 0) // tolerance met
	fired := tickUntil(d, 1, time.Second)
	want := []int{10, 130, 370}
	if len(fired) != len(want) {
		t.Fatalf("NACK times %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("NACK times %v, want %v", fired, want)
		}
	}
	if d.Abandoned != 1 || d.Pending() != 0 {
		t.Fatalf("retry cap did not abandon: abandoned=%d pending=%d",
			d.Abandoned, d.Pending())
	}
	// Abandonment is the hand-off to the PLI path: the loss is forgotten,
	// so even the real retransmission arriving now is spurious.
	if d.OnRepair(1, time.Second) {
		t.Fatal("abandoned loss accepted a repair")
	}
}

func TestDetectorRTTAdaptation(t *testing.T) {
	d := NewDetector(DefaultConfig())
	d.OnPacket(0, 0)
	d.OnPacket(2, 0)
	d.OnPacket(3, 0)
	if got := d.Tick(ms(10)); len(got) != 1 || got[0] != 1 {
		t.Fatalf("first NACK: %v", got)
	}
	if !d.OnRepair(1, ms(50)) { // 40ms after the NACK
		t.Fatal("repair rejected")
	}
	if d.RTT() != ms(40) {
		t.Fatalf("first RTT sample not adopted: %v", d.RTT())
	}
	if d.Repaired != 1 {
		t.Fatalf("Repaired=%d", d.Repaired)
	}
	// Second loss, second sample: EWMA 7/8 old + 1/8 new.
	d.OnPacket(5, ms(60))
	d.OnPacket(6, ms(60))
	if got := d.Tick(ms(70)); len(got) != 1 || got[0] != 4 {
		t.Fatalf("second NACK: %v", got)
	}
	if !d.OnRepair(4, ms(70+120)) {
		t.Fatal("second repair rejected")
	}
	if want := ms(40) + (ms(120)-ms(40))/8; d.RTT() != want {
		t.Fatalf("EWMA RTT %v, want %v", d.RTT(), want)
	}
	// A duplicate of an already-healed seq is spurious.
	if d.OnRepair(4, ms(200)) {
		t.Fatal("duplicate repair accepted")
	}
}

func TestDetectorWrapAroundGap(t *testing.T) {
	d := NewDetector(DefaultConfig())
	d.OnPacket(65534, 0)
	d.OnPacket(1, 0) // 65535 and 0 missing across the wrap
	d.OnPacket(2, 0)
	d.OnPacket(3, 0)
	got := d.Tick(ms(10))
	if len(got) != 2 || got[0] != 65535 || got[1] != 0 {
		t.Fatalf("wrap gap NACKs %v, want [65535 0]", got)
	}
}

func TestDetectorOutageGuardAbandonsDeadSpan(t *testing.T) {
	d := NewDetector(DefaultConfig()) // OutageGuard = CacheAge = 400ms
	d.OnPacket(0, 0)
	d.OnPacket(1, ms(10))
	// The link goes dead; the next arrival reveals a 100-packet span a
	// blackout later. The whole span must degrade to the PLI path.
	d.OnPacket(102, ms(10+2000))
	if d.Pending() != 0 || d.Abandoned != 100 {
		t.Fatalf("dead span chased: pending=%d abandoned=%d", d.Pending(), d.Abandoned)
	}
	if got := tickUntil(d, 50, ms(3000)); len(got) != 0 {
		t.Fatalf("NACKs fired for an abandoned span: %v", got)
	}
	// An ordinary burst inside a live stream is still chased.
	d.OnPacket(103, ms(2020))
	d.OnPacket(110, ms(2050)) // 6 missing, 30ms silence — well under guard
	if d.Pending() != 6 {
		t.Fatalf("live burst not tracked: pending=%d", d.Pending())
	}
}

func TestDetectorPendingBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPending = 4
	d := NewDetector(cfg)
	d.OnPacket(0, 0)
	d.OnPacket(11, 0) // seqs 1..10 missing
	if d.Pending() != 4 || d.Abandoned != 6 {
		t.Fatalf("pending=%d abandoned=%d, want 4/6", d.Pending(), d.Abandoned)
	}
	// The survivors are the newest losses.
	d.OnPacket(12, 0)
	got := d.Tick(ms(10))
	if len(got) != 4 || got[0] != 7 || got[3] != 10 {
		t.Fatalf("surviving NACKs %v, want [7 8 9 10]", got)
	}
}

func mkPackets(n int) []*rtp.Packet {
	pk := rtp.NewPacketizer(1, 96, 1200)
	var out []*rtp.Packet
	for f := 0; len(out) < n; f++ {
		out = append(out, pk.Packetize(rtp.FrameInfo{Num: uint32(f), Size: 3000})...)
	}
	return out[:n]
}

func TestCacheEvictionByBytes(t *testing.T) {
	pkts := mkPackets(6)
	cfg := DefaultConfig()
	cfg.CacheBytes = 3 * pkts[0].MarshalSize()
	c := NewCache(cfg)
	for _, p := range pkts {
		c.Store(p, 0)
	}
	if c.Bytes() > cfg.CacheBytes {
		t.Fatalf("cache holds %d bytes, bound %d", c.Bytes(), cfg.CacheBytes)
	}
	if c.Lookup(pkts[0].Header.SequenceNumber, 0) != nil {
		t.Fatal("oldest packet survived byte eviction")
	}
	if c.Lookup(pkts[5].Header.SequenceNumber, 0) == nil {
		t.Fatal("newest packet missing")
	}
	if c.Misses != 1 || c.Evicted == 0 {
		t.Fatalf("misses=%d evicted=%d", c.Misses, c.Evicted)
	}
}

func TestCacheEvictionByAge(t *testing.T) {
	pkts := mkPackets(3)
	cfg := DefaultConfig()
	cfg.CacheAge = time.Second
	c := NewCache(cfg)
	c.Store(pkts[0], 0)
	c.Store(pkts[1], ms(800))
	// Lookup past the age bound fails even before eviction runs.
	if c.Lookup(pkts[0].Header.SequenceNumber, ms(1200)) != nil {
		t.Fatal("aged packet resent")
	}
	if c.Lookup(pkts[1].Header.SequenceNumber, ms(1200)) == nil {
		t.Fatal("fresh packet missing")
	}
	// Storing later sweeps the aged entries out.
	c.Store(pkts[2], ms(2000))
	if c.Len() != 1 || c.Bytes() != pkts[2].MarshalSize() {
		t.Fatalf("after age sweep: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

func TestCacheResendCap(t *testing.T) {
	pkts := mkPackets(1)
	cfg := DefaultConfig() // MaxRetries 3
	c := NewCache(cfg)
	c.Store(pkts[0], 0)
	seq := pkts[0].Header.SequenceNumber
	for i := 0; i < cfg.MaxRetries; i++ {
		if c.Lookup(seq, 0) == nil {
			t.Fatalf("lookup %d denied below the cap", i+1)
		}
	}
	if c.Lookup(seq, 0) != nil {
		t.Fatal("resend cap not enforced")
	}
}

func TestBudgetExhaustionDeniesThenRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BudgetFraction = 0.1
	cfg.BudgetBurst = 10_000
	b := NewBudget(cfg)
	const rate = 8e6 // accrues 100 KB/s of repair allowance

	if !b.Allow(0, 8000, rate) {
		t.Fatal("burst denied")
	}
	if b.Allow(0, 8000, rate) {
		t.Fatal("empty bucket granted")
	}
	if b.Denied != 1 {
		t.Fatalf("Denied=%d", b.Denied)
	}
	// 100ms at 100KB/s refills 10KB (capped at burst).
	if !b.Allow(ms(100), 8000, rate) {
		t.Fatal("refilled bucket denied")
	}
	if b.Spent != 16000 {
		t.Fatalf("Spent=%d", b.Spent)
	}
	if float64(b.Spent) > b.Accrued() {
		t.Fatalf("invariant violated: spent %d > accrued %.0f", b.Spent, b.Accrued())
	}
	if got := b.SpendRate(ms(100)); got != 16000*8 {
		t.Fatalf("SpendRate=%v, want %v", got, 16000*8)
	}
	// The trailing window forgets old spend.
	if got := b.SpendRate(ms(1400)); got != 0 {
		t.Fatalf("stale SpendRate=%v", got)
	}
}

func TestBudgetInvariantUnderPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BudgetFraction = 0.05
	cfg.BudgetBurst = 4096
	b := NewBudget(cfg)
	granted := 0
	for i := 0; i < 10_000; i++ {
		now := time.Duration(i) * time.Millisecond
		if b.Allow(now, 1200, 2e6) {
			granted++
		}
		if float64(b.Spent) > b.Accrued() {
			t.Fatalf("at %v: spent %d > accrued %.0f", now, b.Spent, b.Accrued())
		}
	}
	if granted == 0 || b.Denied == 0 {
		t.Fatalf("pressure test degenerate: granted=%d denied=%d", granted, b.Denied)
	}
}
