package repair

import (
	"time"

	"rpivideo/internal/obs"
)

// pendingLoss is one missing media sequence number under repair.
type pendingLoss struct {
	seq uint16
	// missedAt is when the gap was first observed.
	missedAt time.Duration
	// arrivalsAtMiss snapshots the detector's arrival counter at creation;
	// the loss becomes NACK-eligible once ReorderTolerance further packets
	// have arrived.
	arrivalsAtMiss int
	// retries counts NACKs sent for this loss so far.
	retries int
	// nextNackAt gates the next NACK (first: missedAt+NackDelay, then the
	// backed-off retry timer).
	nextNackAt time.Duration
	// lastNackAt timestamps the most recent NACK, for RTT sampling.
	lastNackAt time.Duration
	done       bool
}

// Detector is the receiver-side loss detector and NACK scheduler. It is
// driven entirely by the caller: OnPacket/OnRepair at packet arrivals and
// Tick at the NACK cadence. It never schedules simulator events itself.
type Detector struct {
	cfg Config

	started     bool
	highest     uint16 // highest sequence number seen (mod 2^16 order)
	arrivals    int
	lastArrival time.Duration

	pending []*pendingLoss // NACK-eligibility order: ascending (wrapping) seq
	index   map[uint16]*pendingLoss

	srtt    time.Duration
	haveRTT bool

	trace *obs.Tracer

	// rttHist, when non-nil, records each retransmission heal's realized
	// loss-to-repair time in milliseconds (see SetNackRTTHist).
	rttHist *obs.LogHistogram

	// Repaired counts losses healed by a retransmission, Late those healed
	// by the original arriving after its gap was noticed, and Abandoned
	// those given up on (retry cap or pending bound) — the PLI path's
	// responsibility from then on.
	Repaired  int
	Late      int
	Abandoned int
}

// NewDetector returns a detector; cfg should have passed WithDefaults.
func NewDetector(cfg Config) *Detector {
	return &Detector{
		cfg:   cfg,
		index: make(map[uint16]*pendingLoss),
		srtt:  cfg.InitialRTT,
	}
}

// SetTracer attaches an event tracer (nil disables tracing).
func (d *Detector) SetTracer(tr *obs.Tracer) { d.trace = tr }

// SetNackRTTHist attaches a histogram that records each retransmission
// heal's loss-to-repair time in milliseconds (the realized NACK RTT). Nil
// disables recording. Late original arrivals are not recorded — they say
// nothing about the repair path.
func (d *Detector) SetNackRTTHist(h *obs.LogHistogram) { d.rttHist = h }

// RTT returns the smoothed NACK→repair round-trip estimate.
func (d *Detector) RTT() time.Duration { return d.srtt }

// Pending returns the number of losses currently tracked.
func (d *Detector) Pending() int { return len(d.index) }

// OnPacket records an in-stream media packet arrival. A forward jump opens
// pending losses for the skipped sequence numbers; an arrival that fills a
// tracked gap heals it (a late, reordered original).
func (d *Detector) OnPacket(seq uint16, at time.Duration) {
	d.arrivals++
	silence := at - d.lastArrival
	d.lastArrival = at
	if !d.started {
		d.started = true
		d.highest = seq
		return
	}
	delta := seq - d.highest
	switch {
	case delta == 0:
		// Duplicate of the newest packet; nothing to learn.
	case delta < 0x8000:
		if delta > 1 && d.cfg.OutageGuard > 0 && silence > d.cfg.OutageGuard {
			// Dead span: the gap was revealed across an arrival silence
			// longer than the useful repair window, so the missing packets
			// predate the outage and their frames are past playout.
			// Degrade the whole span to the PLI path instead of NACK-chasing
			// it on the recovering link.
			n := int(delta) - 1
			d.Abandoned += n
			if d.trace != nil {
				// One summary event for the span (Aux = span length), not
				// one per sequence number.
				d.trace.Emit(obs.Event{T: at, Kind: obs.KindRepairAbandoned,
					Seq: int64(d.highest + 1), Aux: int64(n)})
			}
			d.highest = seq
			break
		}
		for s := d.highest + 1; s != seq; s++ {
			d.add(s, at)
		}
		d.highest = seq
	default:
		// Reordered (old) packet: heal its gap if we were tracking one.
		if e := d.index[seq]; e != nil {
			d.heal(e, at, false)
		}
	}
}

// OnRepair records a retransmission arrival for the given original sequence
// number. It reports whether the repair filled a tracked gap; false means
// the RTX is spurious (the original already arrived, or the loss was
// abandoned) and the caller should discard it.
func (d *Detector) OnRepair(seq uint16, at time.Duration) bool {
	e := d.index[seq]
	if e == nil {
		return false
	}
	if e.retries > 0 {
		d.sampleRTT(at - e.lastNackAt)
	}
	d.heal(e, at, true)
	return true
}

// Tick runs the NACK scheduler: it returns the sequence numbers to NACK
// now (ascending wrapping order, ready for rtp.NackPairs) and abandons
// losses whose final retry timer expired unanswered.
func (d *Detector) Tick(now time.Duration) []uint16 {
	var out []uint16
	keep := d.pending[:0]
	for _, e := range d.pending {
		if e.done {
			continue
		}
		if d.arrivals-e.arrivalsAtMiss < d.cfg.ReorderTolerance || now < e.nextNackAt {
			keep = append(keep, e)
			continue
		}
		if e.retries >= d.cfg.MaxRetries {
			d.abandon(e, now)
			continue
		}
		e.retries++
		e.lastNackAt = now
		e.nextNackAt = now + d.rto(e.retries)
		out = append(out, e.seq)
		keep = append(keep, e)
	}
	for i := len(keep); i < len(d.pending); i++ {
		d.pending[i] = nil
	}
	d.pending = keep
	return out
}

// add opens a pending loss, abandoning the oldest if the bound is hit.
func (d *Detector) add(seq uint16, at time.Duration) {
	if _, ok := d.index[seq]; ok {
		return
	}
	for len(d.index) >= d.cfg.MaxPending && len(d.pending) > 0 {
		if e := d.pending[0]; !e.done {
			d.abandon(e, at)
		}
		d.pending[0] = nil
		d.pending = d.pending[1:]
	}
	e := &pendingLoss{
		seq:      seq,
		missedAt: at,
		// The packet revealing the gap is itself the first arrival past
		// the missing one, so it counts toward the reorder tolerance.
		arrivalsAtMiss: d.arrivals - 1,
		nextNackAt:     at + d.cfg.NackDelay,
	}
	d.pending = append(d.pending, e)
	d.index[seq] = e
}

// rto returns the wait after the k-th NACK (k ≥ 1): the smoothed RTT
// scaled by RetryRTTFactor and doubled per further retry, floored at
// MinRTO.
func (d *Detector) rto(k int) time.Duration {
	base := time.Duration(float64(d.srtt) * d.cfg.RetryRTTFactor)
	if base < d.cfg.MinRTO {
		base = d.cfg.MinRTO
	}
	return base << (k - 1)
}

func (d *Detector) sampleRTT(s time.Duration) {
	if s < 0 {
		return
	}
	if !d.haveRTT {
		d.srtt = s
		d.haveRTT = true
		return
	}
	d.srtt += (s - d.srtt) / 8
}

func (d *Detector) heal(e *pendingLoss, at time.Duration, rtx bool) {
	e.done = true
	delete(d.index, e.seq)
	aux := int64(0)
	if rtx {
		aux = 1
		d.Repaired++
		if d.rttHist != nil {
			d.rttHist.Observe(float64(at-e.missedAt) / float64(time.Millisecond))
		}
	} else {
		d.Late++
	}
	if d.trace != nil {
		d.trace.Emit(obs.Event{T: at, Kind: obs.KindRepairOK, Seq: int64(e.seq),
			Aux: aux, V: float64(at-e.missedAt) / float64(time.Millisecond)})
	}
}

func (d *Detector) abandon(e *pendingLoss, at time.Duration) {
	e.done = true
	delete(d.index, e.seq)
	d.Abandoned++
	if d.trace != nil {
		d.trace.Emit(obs.Event{T: at, Kind: obs.KindRepairAbandoned,
			Seq: int64(e.seq), Aux: int64(e.retries)})
	}
}
