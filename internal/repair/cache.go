package repair

import (
	"time"

	"rpivideo/internal/rtp"
)

type cacheEntry struct {
	pkt      *rtp.Packet
	size     int
	storedAt time.Duration
	resends  int
}

type fifoRef struct {
	seq      uint16
	storedAt time.Duration
}

// Cache is the sender-side retransmission store, bounded by total bytes
// and by entry age. Sequence numbers wrap every 65536 packets; the age
// bound keeps the live window far below that, and eviction double-checks
// the store timestamp so a reused number can never evict its successor.
type Cache struct {
	cfg     Config
	entries map[uint16]*cacheEntry
	fifo    []fifoRef
	head    int
	bytes   int

	// Stored and Evicted count packets in and out; Misses counts lookups
	// that found nothing fresh enough to resend.
	Stored  int
	Evicted int
	Misses  int
}

// NewCache returns an empty cache; cfg should have passed WithDefaults.
func NewCache(cfg Config) *Cache {
	return &Cache{cfg: cfg, entries: make(map[uint16]*cacheEntry)}
}

// Bytes returns the bytes currently held.
func (c *Cache) Bytes() int { return c.bytes }

// Len returns the number of packets currently held.
func (c *Cache) Len() int { return len(c.entries) }

// Store remembers a just-sent media packet for possible retransmission and
// evicts whatever the byte and age bounds no longer cover.
func (c *Cache) Store(pkt *rtp.Packet, now time.Duration) {
	seq := pkt.Header.SequenceNumber
	if old, ok := c.entries[seq]; ok {
		// Sequence number reuse (wrap): the old entry is long stale.
		c.bytes -= old.size
		c.Evicted++
	}
	size := pkt.MarshalSize()
	c.entries[seq] = &cacheEntry{pkt: pkt, size: size, storedAt: now}
	c.fifo = append(c.fifo, fifoRef{seq: seq, storedAt: now})
	c.bytes += size
	c.Stored++
	c.evict(now)
}

// Lookup returns the cached packet for a NACKed sequence number, or nil if
// it was never stored, already evicted, aged out, or resent to the retry
// cap. A hit counts one resend against the entry.
func (c *Cache) Lookup(seq uint16, now time.Duration) *rtp.Packet {
	e, ok := c.entries[seq]
	if !ok || now-e.storedAt > c.cfg.CacheAge || e.resends >= c.cfg.MaxRetries {
		c.Misses++
		return nil
	}
	e.resends++
	return e.pkt
}

func (c *Cache) evict(now time.Duration) {
	for c.head < len(c.fifo) {
		ref := c.fifo[c.head]
		e, ok := c.entries[ref.seq]
		if !ok || e.storedAt != ref.storedAt {
			c.head++ // entry already replaced or gone; ref is a husk
			continue
		}
		if c.bytes <= c.cfg.CacheBytes && now-e.storedAt <= c.cfg.CacheAge {
			break
		}
		c.bytes -= e.size
		delete(c.entries, ref.seq)
		c.Evicted++
		c.head++
	}
	if c.head > len(c.fifo)/2 && c.head > 64 {
		c.fifo = append([]fifoRef(nil), c.fifo[c.head:]...)
		c.head = 0
	}
}
