package gcc

import "math"

// Signal is the over-use detector output driving the rate controller FSM.
type Signal int

// Detector signals.
const (
	SignalNormal Signal = iota
	SignalOveruse
	SignalUnderuse
)

// String implements fmt.Stringer.
func (s Signal) String() string {
	switch s {
	case SignalOveruse:
		return "overuse"
	case SignalUnderuse:
		return "underuse"
	default:
		return "normal"
	}
}

// kalman estimates the one-way queuing-delay gradient m(t) from per-group
// delay-variation measurements, following Carlucci et al. §3.1 (the arrival
// filter of the paper's GCC implementation).
type kalman struct {
	m        float64 // estimated gradient (ms per group)
	variance float64 // estimate variance e(i)
	varNoise float64 // adaptive measurement-noise variance
	count    int
}

func newKalman() *kalman {
	return &kalman{variance: 0.1, varNoise: 50}
}

// update feeds one delay-variation measurement d (ms) and returns the new
// gradient estimate.
func (k *kalman) update(d float64) float64 {
	const q = 1e-3 // process noise
	// Residual w.r.t. the prediction.
	z := d - k.m
	// Adapt the measurement noise to the residual magnitude (exponential
	// average). The residual is clamped to 3σ as in the reference
	// implementation, so a genuine gradient step raises the gain instead of
	// being absorbed as noise.
	alpha := 0.95
	if k.count < 30 {
		alpha = 0.8 // learn faster during startup
	}
	k.count++
	limit := 3 * math.Sqrt(k.varNoise)
	zc := z
	if zc > limit {
		zc = limit
	} else if zc < -limit {
		zc = -limit
	}
	k.varNoise = alpha*k.varNoise + (1-alpha)*zc*zc
	if k.varNoise < 1 {
		k.varNoise = 1
	}
	gain := (k.variance + q) / (k.variance + q + k.varNoise)
	k.m += gain * z
	k.variance = (1 - gain) * (k.variance + q)
	return k.m
}

// detector is the adaptive-threshold over-use detector (Carlucci et al.
// §3.2). It compares the gradient estimate against a threshold γ(t) that
// adapts to the gradient magnitude, and requires over-use to persist before
// signalling.
type detector struct {
	gamma       float64 // adaptive threshold (ms)
	overuseFor  float64 // ms spent above threshold
	prevM       float64
	lastSignal  Signal
	lastUpdated float64 // ms timestamp of previous update
	started     bool
}

func newDetector() *detector {
	return &detector{gamma: 12.5}
}

// thresholds and adaptation gains from the reference implementation.
const (
	kUp          = 0.0087
	kDown        = 0.039
	gammaMin     = 6.0
	gammaMax     = 600.0
	overuseTime  = 10.0 // ms of sustained over-use before signalling
	maxAdaptStep = 100.0
)

// update consumes the accumulated offset T = min(numDeltas, 60)·m (ms), as
// in the reference detector, and returns the signal. nowMs is the
// measurement time in milliseconds.
func (d *detector) update(m, nowMs float64) Signal {
	dt := 0.0
	if d.started {
		dt = nowMs - d.lastUpdated
		if dt < 0 {
			dt = 0
		} else if dt > maxAdaptStep {
			dt = maxAdaptStep
		}
	}
	d.started = true
	d.lastUpdated = nowMs

	signal := SignalNormal
	switch {
	case m > d.gamma:
		d.overuseFor += dt
		if d.overuseFor >= overuseTime && m >= d.prevM {
			signal = SignalOveruse
		} else if d.lastSignal == SignalOveruse {
			signal = SignalOveruse
		}
	case m < -d.gamma:
		d.overuseFor = 0
		signal = SignalUnderuse
	default:
		d.overuseFor = 0
	}

	// Threshold adaptation: track |m| slowly downward, quickly upward, but
	// freeze when |m| is far outside the threshold (protects against route
	// changes).
	am := math.Abs(m)
	if am <= d.gamma+15 {
		k := kDown
		if am > d.gamma {
			k = kUp
		}
		d.gamma += dt * k * (am - d.gamma)
		if d.gamma < gammaMin {
			d.gamma = gammaMin
		} else if d.gamma > gammaMax {
			d.gamma = gammaMax
		}
	}

	d.prevM = m
	d.lastSignal = signal
	return signal
}
