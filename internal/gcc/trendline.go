package gcc

// trendline is the delay-gradient estimator modern WebRTC uses instead of
// the Kalman filter the paper-era GCC shipped: a least-squares slope of the
// smoothed accumulated delay over arrival time, across a sliding window of
// packet-group samples. The slope (dimensionless, ms of queue growth per ms
// of wall time) is scaled by the threshold gain and the accumulated-delta
// count before hitting the same adaptive-threshold over-use detector.
//
// Implementing both estimators lets the estimator ablation compare the 2016
// design the paper measured against today's default.
type trendline struct {
	window    int
	smoothing float64

	accumulated float64
	smoothed    float64
	firstSet    bool
	firstMs     float64

	// ring of (arrival-ms-since-first, smoothed-delay) samples
	times  []float64
	delays []float64
}

// trendlineGain scales the fitted slope before threshold comparison, as in
// the reference implementation.
const trendlineGain = 4.0

func newTrendline() *trendline {
	return &trendline{window: 20, smoothing: 0.9}
}

// update feeds one inter-group delay variation d (ms) observed at
// arrivalMs, returning the scaled trend estimate (comparable to the Kalman
// gradient in ms).
func (t *trendline) update(d, arrivalMs float64) float64 {
	if !t.firstSet {
		t.firstSet = true
		t.firstMs = arrivalMs
	}
	t.accumulated += d
	t.smoothed = t.smoothing*t.smoothed + (1-t.smoothing)*t.accumulated

	t.times = append(t.times, arrivalMs-t.firstMs)
	t.delays = append(t.delays, t.smoothed)
	if len(t.times) > t.window {
		t.times = t.times[1:]
		t.delays = t.delays[1:]
	}
	if len(t.times) < t.window {
		return 0
	}
	return t.slope() * trendlineGain
}

// slope returns the least-squares slope of delay over time.
func (t *trendline) slope() float64 {
	n := float64(len(t.times))
	var sumX, sumY float64
	for i := range t.times {
		sumX += t.times[i]
		sumY += t.delays[i]
	}
	meanX, meanY := sumX/n, sumY/n
	var num, den float64
	for i := range t.times {
		dx := t.times[i] - meanX
		num += dx * (t.delays[i] - meanY)
		den += dx * dx
	}
	if den == 0 {
		return 0
	}
	return num / den
}
