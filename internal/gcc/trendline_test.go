package gcc

import (
	"math/rand"
	"testing"
	"time"
)

func TestTrendlineZeroOnFlatDelay(t *testing.T) {
	tl := newTrendline()
	var out float64
	for i := 0; i < 100; i++ {
		out = tl.update(0, float64(i*5))
	}
	if out != 0 {
		t.Errorf("trend = %v on flat delay", out)
	}
}

func TestTrendlinePositiveOnBuildup(t *testing.T) {
	tl := newTrendline()
	var out float64
	for i := 0; i < 100; i++ {
		out = tl.update(0.5, float64(i*5)) // +0.5 ms per 5 ms group
	}
	if out <= 0 {
		t.Errorf("trend = %v under queue buildup, want positive", out)
	}
	// Slope ≈ 0.1 ms/ms × gain 4 ≈ 0.4.
	if out < 0.2 || out > 0.6 {
		t.Errorf("trend = %v, want ≈0.4", out)
	}
}

func TestTrendlineNegativeOnDrain(t *testing.T) {
	tl := newTrendline()
	for i := 0; i < 50; i++ {
		tl.update(1, float64(i*5))
	}
	var out float64
	for i := 50; i < 100; i++ {
		out = tl.update(-1, float64(i*5))
	}
	if out >= 0 {
		t.Errorf("trend = %v during queue drain, want negative", out)
	}
}

func TestTrendlineNeedsFullWindow(t *testing.T) {
	tl := newTrendline()
	for i := 0; i < 19; i++ {
		if got := tl.update(5, float64(i*5)); got != 0 {
			t.Fatalf("trend emitted %v before the window filled", got)
		}
	}
}

func TestTrendlineNoiseRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tl := newTrendline()
	worst := 0.0
	for i := 0; i < 1000; i++ {
		v := tl.update(rng.NormFloat64()*2, float64(i*5))
		if v > worst {
			worst = v
		}
	}
	// The accumulated delay is a random walk under zero-mean noise, so
	// transient slopes occur; the detector's persistence requirement and
	// adaptive threshold absorb them. The raw trend must stay moderate.
	if worst > 2.0 {
		t.Errorf("worst trend %v under zero-mean noise", worst)
	}
}

func TestGCCTrendlineVariantWorks(t *testing.T) {
	ctrl := New(Config{InitialRate: 2e6, MinRate: 2e6, MaxRate: 25e6, UseTrendline: true})
	rng := rand.New(rand.NewSource(2))
	owd := func(time.Duration) time.Duration { return 50 * time.Millisecond }
	ackStream(ctrl, 0, 30, owd, 0, rng)
	if got := ctrl.TargetBitrate(0); got < 20e6 {
		t.Errorf("trendline GCC reached only %.1f Mbps on a clean link", got/1e6)
	}
}

func TestGCCTrendlineBacksOff(t *testing.T) {
	ctrl := New(Config{InitialRate: 20e6, MinRate: 2e6, MaxRate: 25e6, UseTrendline: true})
	rng := rand.New(rand.NewSource(3))
	owd := func(at time.Duration) time.Duration {
		return 50*time.Millisecond + time.Duration(at.Seconds()*40)*time.Millisecond
	}
	sawOveruse := false
	at := time.Duration(0)
	for i := 0; i < 10; i++ {
		at = ackStream(ctrl, at, 0.5, owd, 0, rng)
		if ctrl.Signal() == SignalOveruse {
			sawOveruse = true
		}
	}
	if got := ctrl.TargetBitrate(0); got > 18e6 {
		t.Errorf("trendline GCC did not back off: %.1f Mbps", got/1e6)
	}
	if !sawOveruse {
		t.Error("trendline variant never signalled over-use under buildup")
	}
}
