package gcc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rpivideo/internal/cc"
)

func TestKalmanConvergesToConstantGradient(t *testing.T) {
	k := newKalman()
	for i := 0; i < 500; i++ {
		k.update(2.0) // constant 2 ms/group gradient
	}
	if math.Abs(k.m-2.0) > 0.2 {
		t.Errorf("gradient estimate = %v, want ≈2.0", k.m)
	}
}

func TestKalmanTracksZeroUnderNoise(t *testing.T) {
	k := newKalman()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		k.update(rng.NormFloat64() * 3)
	}
	if math.Abs(k.m) > 1.0 {
		t.Errorf("gradient under zero-mean noise = %v, want ≈0", k.m)
	}
}

func TestKalmanRespondsToStep(t *testing.T) {
	k := newKalman()
	for i := 0; i < 200; i++ {
		k.update(0)
	}
	for i := 0; i < 50; i++ {
		k.update(5)
	}
	if k.m < 1.0 {
		t.Errorf("gradient after step = %v, want clearly positive", k.m)
	}
}

func TestDetectorSignalsOveruse(t *testing.T) {
	d := newDetector()
	sig := SignalNormal
	// Sustained gradient far above the initial 12.5 ms threshold.
	for i := 0; i < 20; i++ {
		sig = d.update(25, float64(i*50))
	}
	if sig != SignalOveruse {
		t.Errorf("signal = %v, want overuse", sig)
	}
}

func TestDetectorSignalsUnderuse(t *testing.T) {
	d := newDetector()
	sig := d.update(-30, 0)
	if sig != SignalUnderuse {
		t.Errorf("signal = %v, want underuse", sig)
	}
}

func TestDetectorNormalInBand(t *testing.T) {
	d := newDetector()
	for i := 0; i < 50; i++ {
		if sig := d.update(1.0, float64(i*50)); sig != SignalNormal {
			t.Fatalf("signal = %v for in-band gradient", sig)
		}
	}
}

func TestDetectorThresholdAdapts(t *testing.T) {
	d := newDetector()
	g0 := d.gamma
	// Gradient persistently just above threshold pushes the threshold up.
	for i := 0; i < 200; i++ {
		d.update(d.gamma+2, float64(i*50))
	}
	if d.gamma <= g0 {
		t.Errorf("threshold did not adapt upward: %v → %v", g0, d.gamma)
	}
	if d.gamma > gammaMax {
		t.Errorf("threshold %v above clamp", d.gamma)
	}
}

func TestDetectorOveruseRequiresPersistence(t *testing.T) {
	d := newDetector()
	// A single instantaneous spike (no accumulated over-use time) must not
	// trigger.
	if sig := d.update(100, 0); sig == SignalOveruse {
		t.Error("single spike triggered overuse")
	}
}

func TestAIMDDecreaseOnOveruse(t *testing.T) {
	a := newAIMD(10e6, 2e6, 25e6)
	got := a.update(SignalOveruse, 8e6, time.Second)
	want := beta * 8e6
	if math.Abs(got-want) > 1 {
		t.Errorf("rate after overuse = %v, want %v", got, want)
	}
	if a.state != stateHold {
		t.Errorf("state after decrease = %v, want hold", a.state)
	}
}

func TestAIMDHoldOnUnderuse(t *testing.T) {
	a := newAIMD(10e6, 2e6, 25e6)
	got := a.update(SignalUnderuse, 12e6, time.Second)
	if got != 10e6 {
		t.Errorf("rate after underuse = %v, want unchanged", got)
	}
}

func TestAIMDIncreaseOnNormal(t *testing.T) {
	a := newAIMD(5e6, 2e6, 25e6)
	rate := a.rate
	now := time.Second
	for i := 0; i < 10; i++ {
		now += 100 * time.Millisecond
		rate = a.update(SignalNormal, 20e6, now)
	}
	if rate <= 5e6 {
		t.Errorf("rate did not increase: %v", rate)
	}
}

func TestAIMDCappedByReceiveRate(t *testing.T) {
	a := newAIMD(20e6, 2e6, 25e6)
	now := time.Second
	var rate float64
	for i := 0; i < 50; i++ {
		now += 100 * time.Millisecond
		rate = a.update(SignalNormal, 4e6, now)
	}
	if rate > 1.5*4e6+1 {
		t.Errorf("rate %v exceeds 1.5× receive rate", rate)
	}
}

func TestAIMDClamps(t *testing.T) {
	a := newAIMD(3e6, 2e6, 25e6)
	// Repeated overuse with tiny receive rate: clamp at min.
	for i := 0; i < 20; i++ {
		a.update(SignalOveruse, 0.1e6, time.Duration(i)*100*time.Millisecond)
		a.update(SignalNormal, 0.1e6, time.Duration(i)*100*time.Millisecond)
	}
	if a.rate < 2e6 {
		t.Errorf("rate %v below min clamp", a.rate)
	}
}

func TestLossControllerRules(t *testing.T) {
	l := newLossController(10e6, 2e6, 25e6)
	// Heavy loss decreases.
	r1 := l.update(0.2)
	if want := 10e6 * 0.9; math.Abs(r1-want) > 1 {
		t.Errorf("rate after 20%% loss = %v, want %v", r1, want)
	}
	// Moderate loss holds.
	r2 := l.update(0.05)
	if r2 != r1 {
		t.Errorf("rate after 5%% loss = %v, want hold at %v", r2, r1)
	}
	// Negligible loss increases.
	r3 := l.update(0.01)
	if want := r2 * 1.05; math.Abs(r3-want) > 1 {
		t.Errorf("rate after 1%% loss = %v, want %v", r3, want)
	}
}

// ackStream synthesizes feedback for a stream that paces 1200-byte packets
// at the controller's own target bitrate, with a given one-way delay
// function and loss probability — a closed loop without a real link.
func ackStream(ctrl *Controller, start time.Duration, seconds float64, owd func(t time.Duration) time.Duration, lossP float64, rng *rand.Rand) time.Duration {
	const fbEvery = 50 * time.Millisecond
	var batch []cc.Ack
	next := start
	lastFb := start
	seq := uint16(start / time.Millisecond) // continue roughly where we left off
	end := start + time.Duration(seconds*float64(time.Second))
	for next < end {
		a := cc.Ack{
			TransportSeq: seq,
			Size:         1200,
			SendTime:     next,
			Received:     rng.Float64() >= lossP,
		}
		if a.Received {
			a.ArrivalTime = next + owd(next)
		}
		batch = append(batch, a)
		seq++
		next += time.Duration(float64(1200*8) / ctrl.TargetBitrate(next) * float64(time.Second))
		if next-lastFb >= fbEvery {
			ctrl.OnFeedback(next+owd(next), batch)
			batch = nil
			lastFb = next
		}
	}
	return next
}

func TestGCCRampsUpOnCleanLink(t *testing.T) {
	ctrl := New(Config{InitialRate: 2e6, MinRate: 2e6, MaxRate: 25e6})
	rng := rand.New(rand.NewSource(1))
	owd := func(t time.Duration) time.Duration {
		return 50*time.Millisecond + time.Duration(rng.Intn(2))*time.Millisecond
	}
	ackStream(ctrl, 0, 30, owd, 0, rng)
	if got := ctrl.TargetBitrate(0); got < 20e6 {
		t.Errorf("target after 30 s on a clean link = %.1f Mbps, want ≥ 20", got/1e6)
	}
}

func TestGCCBacksOffOnQueueBuildup(t *testing.T) {
	ctrl := New(Config{InitialRate: 20e6, MinRate: 2e6, MaxRate: 25e6})
	rng := rand.New(rand.NewSource(2))
	// Steadily growing one-way delay: a filling bottleneck queue.
	owd := func(at time.Duration) time.Duration {
		return 50*time.Millisecond + time.Duration(at.Seconds()*40)*time.Millisecond
	}
	sawOveruse := false
	at := time.Duration(0)
	for i := 0; i < 10; i++ {
		at = ackStream(ctrl, at, 0.5, owd, 0, rng)
		if ctrl.Signal() == SignalOveruse {
			sawOveruse = true
		}
	}
	if got := ctrl.TargetBitrate(0); got > 18e6 {
		t.Errorf("target under queue buildup = %.1f Mbps, want a clear backoff", got/1e6)
	}
	// The adaptive threshold eventually accommodates a persistent drift, so
	// over-use need not be the final signal — but it must have fired.
	if !sawOveruse {
		t.Error("over-use was never signalled during queue buildup")
	}
}

func TestGCCReducesUnderHeavyLoss(t *testing.T) {
	ctrl := New(Config{InitialRate: 20e6, MinRate: 2e6, MaxRate: 25e6})
	rng := rand.New(rand.NewSource(3))
	owd := func(time.Duration) time.Duration { return 50 * time.Millisecond }
	ackStream(ctrl, 0, 5, owd, 0.25, rng)
	if got := ctrl.TargetBitrate(0); got > 10e6 {
		t.Errorf("target under 25%% loss = %.1f Mbps, want strong reduction", got/1e6)
	}
}

func TestGCCRampUpTimeMatchesPaper(t *testing.T) {
	// The paper reports ≈12 s for GCC to reach 25 Mbps in the urban cell.
	ctrl := New(Config{InitialRate: 2e6, MinRate: 2e6, MaxRate: 25e6})
	owd := func(time.Duration) time.Duration { return 50 * time.Millisecond }

	const fbEvery = 50 * time.Millisecond
	var batch []cc.Ack
	next, lastFb := time.Duration(0), time.Duration(0)
	seq := uint16(0)
	reached := time.Duration(0)
	for next < 60*time.Second {
		batch = append(batch, cc.Ack{TransportSeq: seq, Size: 1200, SendTime: next, Received: true, ArrivalTime: next + owd(next)})
		seq++
		next += time.Duration(float64(1200*8) / ctrl.TargetBitrate(next) * float64(time.Second))
		if next-lastFb >= fbEvery {
			ctrl.OnFeedback(next+owd(next), batch)
			batch = nil
			lastFb = next
			if reached == 0 && ctrl.TargetBitrate(0) >= 24.9e6 {
				reached = next
			}
		}
	}
	if reached == 0 {
		t.Fatal("never reached 25 Mbps")
	}
	if reached < 5*time.Second || reached > 25*time.Second {
		t.Errorf("ramp-up to 25 Mbps took %v, want within [5s, 25s] (paper ≈12 s)", reached)
	}
	t.Logf("GCC ramp-up: %v", reached)
}

func TestGCCInterface(t *testing.T) {
	ctrl := New(Config{})
	if ctrl.Name() != "gcc" {
		t.Errorf("Name = %q", ctrl.Name())
	}
	if !ctrl.CanSend(0, 1500) {
		t.Error("GCC must always allow sending")
	}
	if ctrl.PacingRate(0) <= ctrl.TargetBitrate(0) {
		t.Error("pacing rate should exceed the target")
	}
	ctrl.OnPacketSent(cc.SentPacket{}) // no-op, must not panic
	ctrl.OnFeedback(time.Second, nil)  // empty feedback, must not panic
}

func TestGCCDefaults(t *testing.T) {
	cfg := Config{}
	cfg.defaults()
	if cfg.MinRate != 2e6 || cfg.MaxRate != 25e6 || cfg.InitialRate != 2e6 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.BurstInterval != 5*time.Millisecond || cfg.PacingFactor != 1.15 {
		t.Errorf("defaults = %+v", cfg)
	}
}

// Property: target bitrate always stays within [MinRate, MaxRate] and is
// never NaN, for arbitrary feedback.
func TestPropertyTargetBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctrl := New(Config{MinRate: 2e6, MaxRate: 25e6})
		now := time.Duration(0)
		seq := uint16(0)
		for round := 0; round < 50; round++ {
			now += time.Duration(rng.Intn(100)+1) * time.Millisecond
			var acks []cc.Ack
			n := rng.Intn(40) + 1
			for i := 0; i < n; i++ {
				a := cc.Ack{
					TransportSeq: seq,
					Size:         rng.Intn(1400) + 100,
					SendTime:     now - time.Duration(rng.Intn(200))*time.Millisecond,
					Received:     rng.Float64() < 0.8,
				}
				if a.Received {
					a.ArrivalTime = a.SendTime + time.Duration(rng.Intn(500))*time.Millisecond
				}
				acks = append(acks, a)
				seq++
			}
			ctrl.OnFeedback(now, acks)
			tr := ctrl.TargetBitrate(now)
			if math.IsNaN(tr) || tr < 2e6-1 || tr > 25e6+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
