package gcc

import (
	"math"
	"time"
)

// rateState is the AIMD controller FSM state (Carlucci et al. Fig. 4).
type rateState int

const (
	stateIncrease rateState = iota
	stateHold
	stateDecrease
)

func (s rateState) String() string {
	switch s {
	case stateIncrease:
		return "increase"
	case stateHold:
		return "hold"
	default:
		return "decrease"
	}
}

// aimd is the delay-based remote-rate controller: multiplicative increase
// far from convergence, additive increase near it, and a decrease to
// β·R̂ (received rate) on over-use.
type aimd struct {
	state   rateState
	rate    float64 // current delay-based estimate A_hat (bits/s)
	minRate float64
	maxRate float64

	// Convergence tracking: exponential average and variance of the
	// incoming rate at the time of over-use, used to decide between
	// multiplicative and additive increase.
	avgMaxRate    float64 // bits/s
	varMaxRate    float64 // normalized
	avgMaxSet     bool
	lastUpdate    time.Duration
	lastDecrease  time.Duration
	responseTime  time.Duration
	avgPacketBits float64
}

const (
	beta = 0.85
	// etaPerResponse is the multiplicative increase factor applied once per
	// response time. Combined with the ~250 ms response time below this
	// yields the paper's ≈12 s ramp-up from 2 to 25 Mbps.
	etaPerResponse = 1.08
	// convergenceTTL is how long the near-convergence region stays valid
	// without fresh over-use evidence.
	convergenceTTL = 2500 * time.Millisecond
)

func newAIMD(initial, min, max float64) *aimd {
	return &aimd{
		state:         stateIncrease,
		rate:          initial,
		minRate:       min,
		maxRate:       max,
		responseTime:  250 * time.Millisecond,
		avgPacketBits: 9600, // 1200-byte packets
	}
}

// resetTo rebases the controller at rate with no convergence history — the
// post-outage restart: the pre-outage region says nothing about the
// re-established radio.
func (a *aimd) resetTo(rate float64, now time.Duration) {
	if rate < a.minRate {
		rate = a.minRate
	}
	a.rate = rate
	a.state = stateHold
	a.avgMaxSet = false
	a.lastUpdate = now
}

// setRTT updates the response time estimate (RTT plus the over-use
// detection latency).
func (a *aimd) setRTT(rtt time.Duration) {
	a.responseTime = rtt + 100*time.Millisecond
	if a.responseTime < 150*time.Millisecond {
		a.responseTime = 150 * time.Millisecond
	}
}

// update applies one detector signal. recvRate is the measured incoming
// rate R̂ in bits/s; now is the feedback arrival time.
func (a *aimd) update(signal Signal, recvRate float64, now time.Duration) float64 {
	// FSM transitions per Carlucci et al. Fig. 4.
	switch signal {
	case SignalOveruse:
		a.state = stateDecrease
	case SignalUnderuse:
		// The bottleneck queue is draining; hold to let it empty before
		// increasing again.
		a.state = stateHold
	default:
		if a.state != stateIncrease {
			a.state = stateIncrease
			a.lastUpdate = now
		}
	}

	dt := now - a.lastUpdate
	if dt < 0 || dt > time.Second {
		dt = time.Second
	}

	switch a.state {
	case stateIncrease:
		// The incoming rate escaping far above the remembered convergence
		// region means the link now carries more than it ever did at
		// over-use: forget the region and probe multiplicatively again.
		if a.avgMaxSet && recvRate > a.avgMaxRate+3*a.stdMaxRate() {
			a.avgMaxSet = false
		}
		// The region also goes stale: without fresh over-use evidence the
		// link may long since have recovered (transient handover spikes),
		// so fall back to multiplicative probing.
		if a.avgMaxSet && now-a.lastDecrease > convergenceTTL {
			a.avgMaxSet = false
		}
		if a.nearConvergence(recvRate) {
			// Additive: about one packet per response time.
			inc := a.avgPacketBits * (dt.Seconds() / a.responseTime.Seconds())
			if inc < 1000*dt.Seconds() {
				inc = 1000 * dt.Seconds()
			}
			a.rate += inc
		} else {
			factor := math.Pow(etaPerResponse, dt.Seconds()/a.responseTime.Seconds())
			if factor > 1.5 {
				factor = 1.5
			}
			a.rate *= factor
		}
		// Never run more than 1.5× ahead of what is actually getting
		// through.
		if recvRate > 0 && a.rate > 1.5*recvRate {
			a.rate = 1.5 * recvRate
		}
	case stateDecrease:
		if recvRate > 0 {
			a.rate = beta * recvRate
		} else {
			a.rate = beta * a.rate
		}
		// An incoming rate far below the convergence region is a transient
		// outage, not new information about capacity: reset the region
		// rather than poisoning it (as in the reference AimdRateControl).
		if a.avgMaxSet && recvRate < a.avgMaxRate-3*a.stdMaxRate() {
			a.avgMaxSet = false
		} else {
			a.updateMaxRate(recvRate)
		}
		a.lastDecrease = now
		// One decrease per over-use episode; fall back to hold.
		a.state = stateHold
	case stateHold:
		// Keep the rate.
	}

	if a.rate < a.minRate {
		a.rate = a.minRate
	} else if a.rate > a.maxRate {
		a.rate = a.maxRate
	}
	a.lastUpdate = now
	return a.rate
}

// stdMaxRate returns the standard deviation of the convergence-region
// estimate in bits/s.
func (a *aimd) stdMaxRate() float64 {
	return math.Sqrt(a.varMaxRate) * a.avgMaxRate
}

// nearConvergence reports whether the incoming rate is close to the average
// rate at which over-use historically sets in — the cue to switch from
// multiplicative to additive increase.
func (a *aimd) nearConvergence(recvRate float64) bool {
	if !a.avgMaxSet || a.avgMaxRate <= 0 {
		return false
	}
	std := a.stdMaxRate()
	return recvRate > a.avgMaxRate-3*std && recvRate < a.avgMaxRate+3*std
}

// updateMaxRate folds the incoming rate at decrease time into the
// convergence tracker.
func (a *aimd) updateMaxRate(recvRate float64) {
	if recvRate <= 0 {
		return
	}
	const alpha = 0.05
	if !a.avgMaxSet {
		a.avgMaxRate = recvRate
		a.varMaxRate = 0.02
		a.avgMaxSet = true
		return
	}
	norm := (recvRate - a.avgMaxRate) / a.avgMaxRate
	a.avgMaxRate += alpha * (recvRate - a.avgMaxRate)
	a.varMaxRate = (1-alpha)*a.varMaxRate + alpha*norm*norm
	if a.varMaxRate < 0.001 {
		a.varMaxRate = 0.001
	} else if a.varMaxRate > 2.5 {
		a.varMaxRate = 2.5
	}
}

// lossController is GCC's loss-based controller: it reduces the rate only
// under substantial loss (>10 %), increases it under negligible loss (<2 %)
// and holds in between (Carlucci et al. §3.4).
type lossController struct {
	rate    float64
	minRate float64
	maxRate float64
}

func newLossController(initial, min, max float64) *lossController {
	return &lossController{rate: initial, minRate: min, maxRate: max}
}

// update applies one feedback report's loss fraction.
func (l *lossController) update(lossFraction float64) float64 {
	switch {
	case lossFraction > 0.10:
		l.rate *= 1 - 0.5*lossFraction
	case lossFraction < 0.02:
		l.rate *= 1.05
	}
	if l.rate < l.minRate {
		l.rate = l.minRate
	} else if l.rate > l.maxRate {
		l.rate = l.maxRate
	}
	return l.rate
}
