// Package gcc implements send-side Google Congestion Control as described
// by Carlucci, De Cicco, Holmer and Mascolo, "Analysis and Design of the
// Google Congestion Control for Web Real-Time Communication" (MMSys '16) —
// the GCC variant the paper's pipeline uses, driven by transport-wide
// congestion control feedback.
//
// The controller combines a delay-based estimate (packet-group arrival
// filter → Kalman gradient estimator → adaptive-threshold over-use detector
// → AIMD remote-rate controller) with a loss-based controller; the target
// rate is the minimum of the two.
package gcc

import (
	"time"

	"rpivideo/internal/cc"
	"rpivideo/internal/obs"
)

// Config parameterizes the controller.
type Config struct {
	// InitialRate is the starting target in bits/s (the paper's encoder
	// floor of 2 Mbps if zero).
	InitialRate float64
	// MinRate and MaxRate clamp the target (2 and 25 Mbps if zero,
	// matching the paper's encoder range).
	MinRate float64
	MaxRate float64
	// BurstInterval groups packets sent within it into one arrival-filter
	// group (5 ms if zero).
	BurstInterval time.Duration
	// PacingFactor scales the target into the pacing rate (1.25 if zero).
	PacingFactor float64
	// UseTrendline selects the linear-regression trendline estimator
	// (modern WebRTC) instead of the Kalman filter of the paper-era GCC.
	UseTrendline bool
	// FeedbackTimeout arms the feedback-starvation watchdog: after this
	// long without TWCC the target freezes at MinRate and probing stops;
	// when feedback returns the controller restarts from the floor under
	// exponential probe backoff. Zero disables the watchdog (the
	// pre-fault-injection behaviour: probe blindly through an outage).
	FeedbackTimeout time.Duration
}

func (c *Config) defaults() {
	if c.MinRate == 0 {
		c.MinRate = 2e6
	}
	if c.MaxRate == 0 {
		c.MaxRate = 25e6
	}
	if c.InitialRate == 0 {
		c.InitialRate = c.MinRate
	}
	if c.BurstInterval == 0 {
		c.BurstInterval = 5 * time.Millisecond
	}
	if c.PacingFactor == 0 {
		// Near-target pacing, as in the paper's pipeline: after a sharp
		// target decrease, already-encoded frames drain at the reduced
		// rate and starve the player (§4.2.1's FPS-dip mechanism).
		c.PacingFactor = 1.15
	}
}

// group accumulates the packets of one send burst.
type group struct {
	firstSend   time.Duration
	lastSend    time.Duration
	lastArrival time.Duration
	bytes       int
	valid       bool
}

// recvSample is one acked packet used for the incoming-rate estimate.
type recvSample struct {
	arrival time.Duration
	bytes   int
}

// Controller implements cc.Controller with GCC.
type Controller struct {
	cfg    Config
	filter *kalman
	trend  *trendline // non-nil when cfg.UseTrendline
	det    *detector
	aimd   *aimd
	loss   *lossController

	prev, cur group

	recv      []recvSample // sliding 500 ms receive-rate window
	recvBytes int          // running byte sum over recv

	rtt    time.Duration
	target float64

	numDeltas  int
	lastSignal Signal

	// wd is the feedback-starvation watchdog; nil when disabled.
	wd *cc.Watchdog

	// repairSpend, when set, reports the repair layer's recent RTX rate
	// (bits/s), subtracted from the encoder target.
	repairSpend func(time.Duration) float64

	// trace emits one obs.KindCC event per feedback-driven rate decision
	// (nil = disabled; purely observational).
	trace *obs.Tracer
}

var (
	_ cc.Controller  = (*Controller)(nil)
	_ cc.Traceable   = (*Controller)(nil)
	_ cc.RepairAware = (*Controller)(nil)
)

// SetTracer implements cc.Traceable.
func (c *Controller) SetTracer(tr *obs.Tracer) { c.trace = tr }

// New returns a GCC controller.
func New(cfg Config) *Controller {
	cfg.defaults()
	c := &Controller{
		cfg:    cfg,
		filter: newKalman(),
		det:    newDetector(),
		aimd:   newAIMD(cfg.InitialRate, cfg.MinRate, cfg.MaxRate),
		loss:   newLossController(cfg.MaxRate, cfg.MinRate, cfg.MaxRate),
		target: cfg.InitialRate,
		rtt:    100 * time.Millisecond,
	}
	if cfg.UseTrendline {
		c.trend = newTrendline()
	}
	if cfg.FeedbackTimeout > 0 {
		c.wd = cc.NewWatchdog(cfg.FeedbackTimeout)
	}
	return c
}

// Name implements cc.Controller.
func (c *Controller) Name() string { return "gcc" }

// OnPacketSent implements cc.Controller. GCC keys all state off feedback,
// which already carries the send times.
func (c *Controller) OnPacketSent(cc.SentPacket) {}

// TargetBitrate implements cc.Controller. A starved feedback path (link
// outage) freezes the target at the floor: probing blindly into a dead
// link only deepens the backlog the re-established radio must drain.
// Repair spend is subtracted (floored at MinRate) so media plus RTX
// together honor the congested rate.
func (c *Controller) TargetBitrate(now time.Duration) float64 {
	if c.wd.Starved(now) {
		return c.cfg.MinRate
	}
	return cc.RepairAdjust(c.target, c.repairSpend, now, c.cfg.MinRate)
}

// SetRepairSpend implements cc.RepairAware.
func (c *Controller) SetRepairSpend(f func(time.Duration) float64) { c.repairSpend = f }

// PacingRate implements cc.Controller.
func (c *Controller) PacingRate(now time.Duration) float64 {
	return c.TargetBitrate(now) * c.cfg.PacingFactor
}

// CanSend implements cc.Controller: GCC is purely rate-based.
func (c *Controller) CanSend(time.Duration, int) bool { return true }

// RTT returns the smoothed feedback round-trip estimate.
func (c *Controller) RTT() time.Duration { return c.rtt }

// Signal returns the most recent over-use detector output (for traces and
// tests).
func (c *Controller) Signal() Signal { return c.lastSignal }

// DelayGradient returns the current delay-gradient estimate: the Kalman
// state in ms, or the scaled trendline slope when the trendline estimator
// is selected.
func (c *Controller) DelayGradient() float64 {
	if c.trend != nil {
		return c.trend.slope() * trendlineGain
	}
	return c.filter.m
}

// Threshold returns the current adaptive detector threshold in ms.
func (c *Controller) Threshold() float64 { return c.det.gamma }

// receiveRate returns R̂ in bits/s over the trailing 500 ms of receiver
// time, trimming the window as a side effect.
func (c *Controller) receiveRate(latestArrival time.Duration) float64 {
	const window = 500 * time.Millisecond
	cut := latestArrival - window
	i := 0
	for i < len(c.recv) && c.recv[i].arrival < cut {
		c.recvBytes -= c.recv[i].bytes
		i++
	}
	c.recv = c.recv[i:]
	if len(c.recv) < 2 {
		return 0
	}
	return float64(c.recvBytes*8) / window.Seconds()
}

// OnFeedback implements cc.Controller: it ingests one TWCC report.
func (c *Controller) OnFeedback(now time.Duration, acks []cc.Ack) {
	if c.wd.OnFeedback(now) {
		// Feedback returned after a starvation episode: whatever the
		// estimators believed about the pre-outage path is stale. Restart
		// from the floor; the backoff clamp below holds it there.
		c.aimd.resetTo(c.cfg.MinRate, now)
		c.loss.rate = c.cfg.MinRate
		c.target = c.cfg.MinRate
		c.prev, c.cur = group{}, group{}
		c.recv = c.recv[:0]
		c.recvBytes = 0
	}
	if len(acks) == 0 {
		return
	}
	lost, total := 0, 0
	signal := SignalNormal
	sawMeasurement := false
	var latestArrival time.Duration

	for _, a := range acks {
		total++
		if !a.Received {
			lost++
			continue
		}
		// RTT proxy: feedback arrival minus packet departure.
		if s := now - a.SendTime; s > 0 {
			if c.rtt == 0 {
				c.rtt = s
			} else {
				c.rtt = (c.rtt*7 + s) / 8
			}
		}
		c.recv = append(c.recv, recvSample{arrival: a.ArrivalTime, bytes: a.Size})
		c.recvBytes += a.Size
		if a.ArrivalTime > latestArrival {
			latestArrival = a.ArrivalTime
		}
		if sig, ok := c.addToGroup(a); ok {
			sawMeasurement = true
			signal = worst(signal, sig)
		}
	}

	c.aimd.setRTT(c.rtt)
	recvRate := c.receiveRate(latestArrival)

	if sawMeasurement {
		c.lastSignal = signal
	} else {
		signal = c.lastSignal
	}
	delayRate := c.aimd.update(signal, recvRate, now)

	lossRate := c.loss.rate
	if total > 0 {
		lossRate = c.loss.update(float64(lost) / float64(total))
	}

	c.target = min(delayRate, lossRate)
	if c.target < c.cfg.MinRate {
		c.target = c.cfg.MinRate
	} else if c.target > c.cfg.MaxRate {
		c.target = c.cfg.MaxRate
	}

	if c.wd.InBackoff(now) {
		// Post-recovery probe hold: pin both estimators to the floor until
		// the backoff window ends, then ramp normally.
		c.aimd.resetTo(c.cfg.MinRate, now)
		c.loss.rate = c.cfg.MinRate
		c.target = c.cfg.MinRate
	}
	if c.trace != nil {
		c.trace.Emit(obs.Event{T: now, Kind: obs.KindCC,
			Seq: int64(c.lastSignal), Aux: int64(len(acks)), V: c.target})
	}
}

// worst returns the more severe of two signals (overuse > underuse > normal).
func worst(a, b Signal) Signal {
	if a == SignalOveruse || b == SignalOveruse {
		return SignalOveruse
	}
	if a == SignalUnderuse || b == SignalUnderuse {
		return SignalUnderuse
	}
	return SignalNormal
}

// addToGroup feeds one received packet into the burst grouping. When the
// packet opens a new group, the completed previous pair yields one
// delay-variation measurement which is run through the filter and detector;
// the resulting signal is returned with ok=true.
func (c *Controller) addToGroup(a cc.Ack) (Signal, bool) {
	if !c.cur.valid {
		c.cur = group{firstSend: a.SendTime, lastSend: a.SendTime, lastArrival: a.ArrivalTime, bytes: a.Size, valid: true}
		return 0, false
	}
	// Out-of-order w.r.t. the current group: ignore for grouping.
	if a.SendTime < c.cur.firstSend {
		return 0, false
	}
	if a.SendTime-c.cur.firstSend <= c.cfg.BurstInterval {
		// Same burst.
		if a.SendTime > c.cur.lastSend {
			c.cur.lastSend = a.SendTime
		}
		if a.ArrivalTime > c.cur.lastArrival {
			c.cur.lastArrival = a.ArrivalTime
		}
		c.cur.bytes += a.Size
		return 0, false
	}
	// New group: measure against the previous one.
	var sig Signal
	ok := false
	if c.prev.valid {
		dSend := c.cur.lastSend - c.prev.lastSend
		dArr := c.cur.lastArrival - c.prev.lastArrival
		d := float64(dArr-dSend) / float64(time.Millisecond)
		var m float64
		if c.trend != nil {
			m = c.trend.update(d, float64(c.cur.lastArrival)/float64(time.Millisecond))
		} else {
			m = c.filter.update(d)
		}
		// The detector compares the accumulated offset, as in the
		// reference implementation: a small but persistent gradient must
		// eventually cross the threshold.
		c.numDeltas++
		scale := float64(min(c.numDeltas, 60))
		sig = c.det.update(m*scale, float64(c.cur.lastArrival)/float64(time.Millisecond))
		ok = true
	}
	c.prev = c.cur
	c.cur = group{firstSend: a.SendTime, lastSend: a.SendTime, lastArrival: a.ArrivalTime, bytes: a.Size, valid: true}
	return sig, ok
}
