package gcc

import (
	"testing"
	"time"

	"rpivideo/internal/cc"
)

func BenchmarkKalmanUpdate(b *testing.B) {
	k := newKalman()
	for i := 0; i < b.N; i++ {
		k.update(float64(i%7) - 3)
	}
}

func BenchmarkDetectorUpdate(b *testing.B) {
	d := newDetector()
	for i := 0; i < b.N; i++ {
		d.update(float64(i%30)-15, float64(i))
	}
}

func BenchmarkOnFeedback(b *testing.B) {
	ctrl := New(Config{})
	acks := make([]cc.Ack, 50)
	for i := range acks {
		acks[i] = cc.Ack{
			TransportSeq: uint16(i),
			Size:         1200,
			Received:     true,
		}
	}
	b.ReportAllocs()
	now := time.Duration(0)
	for i := 0; i < b.N; i++ {
		now += 50 * time.Millisecond
		for j := range acks {
			acks[j].TransportSeq = uint16(i*50 + j)
			acks[j].SendTime = now - 60*time.Millisecond + time.Duration(j)*time.Millisecond
			acks[j].ArrivalTime = acks[j].SendTime + 50*time.Millisecond
		}
		ctrl.OnFeedback(now, acks)
	}
}
