// Package trace implements the open-data workflow of the paper: measurement
// runs export their packet, handover and video events as JSON-lines records
// that can be written, re-read and summarized. cmd/tracegen emits synthetic
// flight traces in this format, mirroring the dataset release the authors
// describe in §3.2.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rpivideo/internal/core"
)

// Schema names and versions the flight-trace JSONL layout (the record
// kinds and fields below). Consumers should check it when the format is
// carried outside the repository; bump the suffix on any incompatible
// record change.
const Schema = "flight-trace/v1"

// Record kinds.
const (
	KindMeta     = "meta"     // run metadata (first record)
	KindPacket   = "packet"   // one delivered media packet
	KindDrop     = "drop"     // one lost media packet
	KindHandover = "handover" // one handover event
	KindTarget   = "target"   // congestion-controller target sample
	KindGoodput  = "goodput"  // per-second delivered rate
	KindStall    = "stall"    // playback stall
)

// Record is one trace line. Field presence depends on Kind.
type Record struct {
	// TUs is the event time in microseconds since run start.
	TUs  int64  `json:"t_us"`
	Kind string `json:"kind"`

	// Meta fields.
	Label      string `json:"label,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	DurationUs int64  `json:"duration_us,omitempty"`

	// Packet fields.
	OWDUs int64 `json:"owd_us,omitempty"`

	// Handover fields.
	From  int   `json:"from,omitempty"`
	To    int   `json:"to,omitempty"`
	HETUs int64 `json:"het_us,omitempty"`

	// Rate fields (target, goodput).
	Mbps float64 `json:"mbps,omitempty"`

	// Stall fields.
	GapUs int64 `json:"gap_us,omitempty"`
}

// FromResult converts a run result into trace records. The result must have
// been produced with Config.KeepSeries so the per-packet series exist.
func FromResult(r *core.Result) []Record {
	recs := []Record{{
		Kind:       KindMeta,
		Label:      r.Config.Label(),
		Seed:       r.Config.Seed,
		DurationUs: r.Duration.Microseconds(),
	}}
	if r.OWDSeries != nil {
		for _, p := range r.OWDSeries.Points() {
			recs = append(recs, Record{
				TUs:   p.T.Microseconds(),
				Kind:  KindPacket,
				OWDUs: int64(p.V * 1000), // ms → µs
			})
		}
	}
	for _, at := range r.LossTimes {
		recs = append(recs, Record{TUs: at.Microseconds(), Kind: KindDrop})
	}
	for _, ev := range r.Handovers {
		recs = append(recs, Record{
			TUs:   ev.At.Microseconds(),
			Kind:  KindHandover,
			From:  ev.From,
			To:    ev.To,
			HETUs: ev.HET.Microseconds(),
		})
	}
	if r.TargetSeries != nil {
		for _, p := range r.TargetSeries.Points() {
			recs = append(recs, Record{TUs: p.T.Microseconds(), Kind: KindTarget, Mbps: p.V})
		}
	}
	if r.GoodputSeries != nil {
		for _, p := range r.GoodputSeries.Points() {
			recs = append(recs, Record{TUs: p.T.Microseconds(), Kind: KindGoodput, Mbps: p.V})
		}
	}
	for _, st := range r.Stalls {
		recs = append(recs, Record{TUs: st.At.Microseconds(), Kind: KindStall, GapUs: st.Duration.Microseconds()})
	}
	return recs
}

// Writer emits records as JSON lines.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Write emits one record.
func (w *Writer) Write(r Record) error { return w.enc.Encode(r) }

// WriteAll emits all records.
func (w *Writer) WriteAll(recs []Record) error {
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Read parses all records from r, validating kinds.
func Read(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		switch rec.Kind {
		case KindMeta, KindPacket, KindDrop, KindHandover, KindTarget, KindGoodput, KindStall:
		default:
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, rec.Kind)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// Summary aggregates a trace the way the paper's parsing scripts do.
type Summary struct {
	Label     string
	Duration  time.Duration
	Packets   int
	Drops     int
	Handovers int
	Stalls    int
	// MeanOWD and P99OWD summarize packet delay.
	MeanOWD time.Duration
	MaxHET  time.Duration
	// MeanGoodputMbps averages the per-second goodput records.
	MeanGoodputMbps float64
}

// Summarize computes a Summary over records.
func Summarize(recs []Record) Summary {
	var s Summary
	var owdSum int64
	var gpSum float64
	gpN := 0
	for _, r := range recs {
		switch r.Kind {
		case KindMeta:
			s.Label = r.Label
			s.Duration = time.Duration(r.DurationUs) * time.Microsecond
		case KindPacket:
			s.Packets++
			owdSum += r.OWDUs
		case KindDrop:
			s.Drops++
		case KindHandover:
			s.Handovers++
			if het := time.Duration(r.HETUs) * time.Microsecond; het > s.MaxHET {
				s.MaxHET = het
			}
		case KindGoodput:
			gpSum += r.Mbps
			gpN++
		case KindStall:
			s.Stalls++
		}
	}
	if s.Packets > 0 {
		s.MeanOWD = time.Duration(owdSum/int64(s.Packets)) * time.Microsecond
	}
	if gpN > 0 {
		s.MeanGoodputMbps = gpSum / float64(gpN)
	}
	return s
}
