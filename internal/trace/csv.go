package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the column set of the CSV export; one row per record, with
// kind-specific columns left empty when not applicable — the layout the
// paper's parsing/visualization scripts consume.
var csvHeader = []string{
	"t_us", "kind", "label", "seed", "duration_us",
	"owd_us", "from", "to", "het_us", "mbps", "gap_us",
}

// WriteCSV exports records as CSV with a header row.
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range recs {
		row := []string{
			strconv.FormatInt(r.TUs, 10),
			r.Kind,
			r.Label,
			intField(r.Seed),
			intField(r.DurationUs),
			intField(r.OWDUs),
			intField(int64(r.From)),
			intField(int64(r.To)),
			intField(r.HETUs),
			floatField(r.Mbps),
			intField(r.GapUs),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV export back into records.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	if len(rows[0]) != len(csvHeader) {
		return nil, fmt.Errorf("trace: csv header has %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	recs := make([]Record, 0, len(rows)-1)
	for i, row := range rows[1:] {
		rec, err := csvRecord(row)
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %w", i+2, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

func csvRecord(row []string) (Record, error) {
	var rec Record
	var err error
	get := func(i int) int64 {
		if err != nil || row[i] == "" {
			return 0
		}
		var v int64
		v, err = strconv.ParseInt(row[i], 10, 64)
		return v
	}
	rec.TUs = get(0)
	rec.Kind = row[1]
	rec.Label = row[2]
	rec.Seed = get(3)
	rec.DurationUs = get(4)
	rec.OWDUs = get(5)
	rec.From = int(get(6))
	rec.To = int(get(7))
	rec.HETUs = get(8)
	if row[9] != "" {
		var f float64
		f, err = strconv.ParseFloat(row[9], 64)
		rec.Mbps = f
	}
	rec.GapUs = get(10)
	return rec, err
}

func intField(v int64) string {
	if v == 0 {
		return ""
	}
	return strconv.FormatInt(v, 10)
}

func floatField(v float64) string {
	if v == 0 {
		return ""
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
