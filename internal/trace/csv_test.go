package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	recs := FromResult(sampleResult(t))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], recs[i])
		}
	}
	// The CSV and JSONL views summarize identically.
	if Summarize(got) != Summarize(recs) {
		t.Error("summaries diverge across formats")
	}
}

func TestCSVHeaderOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("recs=%v err=%v", got, err)
	}
}

func TestCSVRejectsWrongColumnCount(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("short header accepted")
	}
}

func TestCSVRejectsBadNumbers(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Record{{TUs: 5, Kind: KindDrop}}); err != nil {
		t.Fatal(err)
	}
	broken := strings.Replace(buf.String(), "5,drop", "x,drop", 1)
	if _, err := ReadCSV(strings.NewReader(broken)); err == nil {
		t.Error("non-numeric t_us accepted")
	}
}
