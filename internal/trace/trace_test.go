package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/core"
)

func sampleResult(t *testing.T) *core.Result {
	t.Helper()
	return core.Run(core.Config{
		Env: cell.Urban, Air: true, CC: core.CCGCC,
		Seed: 1, Duration: 20 * time.Second, KeepSeries: true,
	})
}

func TestFromResultStructure(t *testing.T) {
	recs := FromResult(sampleResult(t))
	if len(recs) == 0 || recs[0].Kind != KindMeta {
		t.Fatal("trace must start with a meta record")
	}
	if recs[0].Label != "urban-P1-air-gcc" {
		t.Errorf("meta label = %q", recs[0].Label)
	}
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Kind]++
	}
	if counts[KindPacket] == 0 || counts[KindTarget] == 0 || counts[KindGoodput] == 0 {
		t.Errorf("record counts = %v", counts)
	}
}

func TestRoundTrip(t *testing.T) {
	recs := FromResult(sampleResult(t))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteAll(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReadRejectsUnknownKind(t *testing.T) {
	_, err := Read(strings.NewReader(`{"t_us":1,"kind":"bogus"}` + "\n"))
	if err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	_, err := Read(strings.NewReader("not json\n"))
	if err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	recs, err := Read(strings.NewReader("\n" + `{"t_us":1,"kind":"drop"}` + "\n\n"))
	if err != nil || len(recs) != 1 {
		t.Errorf("recs=%v err=%v", recs, err)
	}
}

func TestSummarize(t *testing.T) {
	r := sampleResult(t)
	recs := FromResult(r)
	s := Summarize(recs)
	if s.Label != r.Config.Label() {
		t.Errorf("label = %q", s.Label)
	}
	if s.Duration != r.Duration {
		t.Errorf("duration = %v", s.Duration)
	}
	if s.Packets != r.OWDSeries.Len() {
		t.Errorf("packets = %d, want %d", s.Packets, r.OWDSeries.Len())
	}
	if s.Handovers != len(r.Handovers) {
		t.Errorf("handovers = %d, want %d", s.Handovers, len(r.Handovers))
	}
	if s.MeanOWD <= 0 || s.MeanOWD > time.Second {
		t.Errorf("mean OWD = %v", s.MeanOWD)
	}
	if s.MeanGoodputMbps <= 0 {
		t.Errorf("mean goodput = %v", s.MeanGoodputMbps)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Packets != 0 || s.MeanOWD != 0 || s.MeanGoodputMbps != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}
