package cell

import (
	"time"

	"rpivideo/internal/obs"
)

// RLFConfig parameterizes the radio-link-failure model (3GPP TS 36.331
// §5.3.11): when the serving-cell quality stays below Qout for T310 the UE
// declares RLF, searches for a suitable cell (bounded by T311) and runs the
// RRC re-establishment exchange — a multi-second total blackout, unlike the
// tens-of-milliseconds gap of a clean handover. Botched handovers (the HET
// outliers of §4.1) can fail outright and take the same path.
type RLFConfig struct {
	// Enabled arms the model. Disabled machines consume no extra
	// randomness, so existing seeded runs are unchanged.
	Enabled bool
	// QoutDBm: serving RSRP below this starts (or keeps running) T310.
	QoutDBm float64
	// QinDBm: serving RSRP above this stops T310 (hysteresis between the
	// two avoids flapping on measurement noise).
	QinDBm float64
	// T310 is how long the out-of-sync condition must persist before the
	// UE declares RLF.
	T310 time.Duration
	// T311 bounds the post-RLF cell search; the sampled blackout below
	// never exceeds it.
	T311 time.Duration
	// ReestablishMin/Max bound the total service blackout (cell search
	// plus the RRC re-establishment exchange), sampled uniformly.
	// ReestablishMax should not exceed T311.
	ReestablishMin time.Duration
	ReestablishMax time.Duration
	// HOFailureHET is the execution time at or above which a handover
	// risks failing outright; HOFailureProb is that risk. Failed handovers
	// re-establish instead of completing (DAPS handovers never fail this
	// way — the source leg stays up).
	HOFailureHET  time.Duration
	HOFailureProb float64
}

// DefaultRLFConfig returns LTE-typical RLF parameters: Qout/Qin around the
// bottom of the usable RSRP range, T310 = 1 s, T311 = 3 s, and blackouts
// of 1.2–3 s matching the paper's multi-second outage discussion (§5).
func DefaultRLFConfig() RLFConfig {
	return RLFConfig{
		Enabled:        true,
		QoutDBm:        -120,
		QinDBm:         -116,
		T310:           time.Second,
		T311:           3 * time.Second,
		ReestablishMin: 1200 * time.Millisecond,
		ReestablishMax: 3 * time.Second,
		HOFailureHET:   500 * time.Millisecond,
		HOFailureProb:  0.5,
	}
}

// RLFCause classifies a radio-link failure.
type RLFCause int

// RLF causes.
const (
	// RLFQualityOut is a T310 expiry: serving quality below Qout too long.
	RLFQualityOut RLFCause = iota
	// RLFHandoverFailure is a handover that failed during execution.
	RLFHandoverFailure
)

// String implements fmt.Stringer.
func (c RLFCause) String() string {
	if c == RLFHandoverFailure {
		return "handover-failure"
	}
	return "quality-out"
}

// RLFEvent is one declared radio-link failure.
type RLFEvent struct {
	// At is when the failure was declared.
	At time.Duration
	// Cause is why.
	Cause RLFCause
	// Outage is the full service blackout: cell search plus the RRC
	// re-establishment exchange.
	Outage time.Duration
	// From is the serving cell at failure; To is the re-establishment
	// target (-1 until the UE re-attaches).
	From, To int
}

// RLFEvents returns all radio-link failures declared so far.
func (m *Machine) RLFEvents() []RLFEvent { return m.rlfs }

// monitorRLF runs the T310 supervision on the serving-cell RSRP at one
// measurement instant, declaring RLF on expiry. It reports whether a
// failure was declared now.
func (m *Machine) monitorRLF(now time.Duration) bool {
	cfg := m.cfg.RLF
	rsrp := m.rsrps[m.serving]
	switch {
	case rsrp < cfg.QoutDBm:
		if !m.t310Running {
			m.t310Running = true
			m.t310Since = now
			return false
		}
		if now-m.t310Since >= cfg.T310 {
			m.declareRLF(now, RLFQualityOut)
			return true
		}
	case rsrp > cfg.QinDBm:
		m.t310Running = false
	}
	return false
}

// declareRLF starts the re-establishment blackout: the radio goes silent
// (busyUntil, which the link layer already honours) for the sampled cell-
// search-plus-re-establishment time, after which Step re-attaches to the
// strongest cell without emitting a handover event.
func (m *Machine) declareRLF(now time.Duration, cause RLFCause) {
	cfg := m.cfg.RLF
	out := cfg.ReestablishMin
	if span := cfg.ReestablishMax - cfg.ReestablishMin; span > 0 {
		out += time.Duration(m.rng.Float64() * float64(span))
	}
	if cfg.T311 > 0 && out > cfg.T311 {
		out = cfg.T311
	}
	m.busyUntil = now + out
	m.reestablishing = true
	m.t310Running = false
	m.haveCandidate = false
	// The target cell settles after re-establishment just as it does after
	// a handover: reuse the post-HO degradation window.
	m.haveLastHO = true
	from := m.model.CellID(m.serving)
	m.rlfs = append(m.rlfs, RLFEvent{At: now, Cause: cause, Outage: out, From: from, To: -1})
	if m.trace != nil {
		m.trace.Emit(obs.Event{T: now, Kind: obs.KindRLF, Dir: m.traceDir,
			Seq: int64(from), Aux: int64(cause), V: float64(out) / float64(time.Millisecond)})
	}
}
