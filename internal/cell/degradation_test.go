package cell

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rpivideo/internal/flight"
)

// driveToHandover steps a machine until its first handover and returns the
// machine and the event.
func driveToHandover(t *testing.T, seed int64) (*Machine, Event) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bss := Deployment(Urban, P1, rng)
	model := NewSignalModel(Urban, bss, DefaultSignalConfigFor(Urban), rng)
	m := NewMachine(model, DefaultHandoverConfigFor(Urban), true, rng)
	prof := flight.StandardFlight()
	for now := time.Duration(0); now < prof.Duration(); now += 40 * time.Millisecond {
		if ev := m.Step(now, prof.At(now)); ev != nil {
			return m, *ev
		}
	}
	t.Fatal("no handover in a full urban flight")
	return nil, Event{}
}

func TestRadioDegradationStates(t *testing.T) {
	m, ev := driveToHandover(t, 21)
	// During execution: zero capacity.
	if got := m.RadioDegradation(ev.At + ev.HET/2); got != 0 {
		t.Errorf("degradation during HET = %v, want 0", got)
	}
	// Just after execution: the post-HO settling factor.
	cfg := DefaultHandoverConfigFor(Urban)
	post := m.RadioDegradation(ev.At + ev.HET + cfg.PostHOWindow/2)
	if post != cfg.PostHOFactor {
		t.Errorf("post-HO degradation = %v, want %v", post, cfg.PostHOFactor)
	}
	// Long after: full capacity (no candidate pending in this instant is
	// not guaranteed, so only check the window bound).
	if m.RadioDegradation(ev.At+ev.HET+cfg.PostHOWindow+time.Minute) == cfg.PostHOFactor {
		t.Error("post-HO factor persisted beyond its window")
	}
}

func TestEnvDegradationDefaults(t *testing.T) {
	u := DefaultHandoverConfigFor(Urban)
	r := DefaultHandoverConfigFor(Rural)
	if u.PreHOFactor >= r.PreHOFactor {
		t.Errorf("urban pre-HO degradation (%v) must be deeper than rural (%v)", u.PreHOFactor, r.PreHOFactor)
	}
	if u.PostHOFactor >= r.PostHOFactor {
		t.Errorf("urban post-HO degradation (%v) must be deeper than rural (%v)", u.PostHOFactor, r.PostHOFactor)
	}
	if DefaultHandoverConfig() != u {
		t.Error("DefaultHandoverConfig should be the urban calibration")
	}
}

func TestServingRSRP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bss := Deployment(Urban, P1, rng)
	model := NewSignalModel(Urban, bss, DefaultSignalConfigFor(Urban), rng)
	m := NewMachine(model, DefaultHandoverConfigFor(Urban), true, rng)
	if !math.IsInf(m.ServingRSRP(), -1) {
		t.Error("RSRP before first measurement should be -inf")
	}
	m.Step(0, flight.State{})
	got := m.ServingRSRP()
	if got > 0 || got < -160 {
		t.Errorf("serving RSRP = %v dBm, implausible", got)
	}
}

func TestEventStringers(t *testing.T) {
	if Urban.String() != "urban" || Rural.String() != "rural" {
		t.Error("environment stringer")
	}
	if P1.String() != "P1" || P2.String() != "P2" {
		t.Error("operator stringer")
	}
}
