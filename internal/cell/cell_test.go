package cell

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rpivideo/internal/flight"
	"rpivideo/internal/metrics"
)

// runMobility drives a handover machine over a mobility profile and returns
// the machine.
func runMobility(t *testing.T, env Environment, op Operator, air bool, seed int64) *Machine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bss := Deployment(env, op, rng)
	model := NewSignalModel(env, bss, DefaultSignalConfigFor(env), rng)
	m := NewMachine(model, DefaultHandoverConfig(), air, rng)
	var prof flight.Profile
	if air {
		prof = flight.StandardFlight()
	} else {
		prof = flight.GroundProfile(6*time.Minute, rng)
	}
	step := DefaultHandoverConfig().MeasurementInterval
	for now := time.Duration(0); now < prof.Duration(); now += step {
		m.Step(now, prof.At(now))
	}
	return m
}

// hoRate returns handovers per second over n seeded runs.
func hoRate(t *testing.T, env Environment, op Operator, air bool, runs int) float64 {
	t.Helper()
	total := 0
	var dur time.Duration
	for s := 0; s < runs; s++ {
		m := runMobility(t, env, op, air, int64(1000+s))
		total += len(m.Events())
		if air {
			dur += flight.StandardFlight().Duration()
		} else {
			dur += 6 * time.Minute
		}
	}
	return float64(total) / dur.Seconds()
}

func TestDeploymentShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	urban := Deployment(Urban, P1, rng)
	if len(urban) != 32 {
		t.Errorf("urban cells = %d, want 32 (paper connected to 32)", len(urban))
	}
	ruralP1 := Deployment(Rural, P1, rng)
	if len(ruralP1) != 18 {
		t.Errorf("rural P1 cells = %d, want 18", len(ruralP1))
	}
	ruralP2 := Deployment(Rural, P2, rng)
	if len(ruralP2) <= len(ruralP1) {
		t.Errorf("rural P2 should be denser than P1: %d vs %d", len(ruralP2), len(ruralP1))
	}
	// Urban sites concentrated, rural sites spread far.
	maxUrban, maxRural := 0.0, 0.0
	for _, b := range urban {
		if d := hyp(b.X, b.Y); d > maxUrban {
			maxUrban = d
		}
	}
	for _, b := range ruralP1 {
		if d := hyp(b.X, b.Y); d > maxRural {
			maxRural = d
		}
	}
	if maxRural < 2*maxUrban {
		t.Errorf("rural spread (%v) should far exceed urban (%v)", maxRural, maxUrban)
	}
}

func hyp(x, y float64) float64 {
	return math.Hypot(x, y)
}

func TestSignalDistanceMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bss := []BS{{ID: 0, X: 0, Y: 0, Height: 30}}
	cfg := DefaultSignalConfig()
	cfg.ShadowSigmaGroundDB = 0
	cfg.ShadowSigmaAirDB = 0
	m := NewSignalModel(Urban, bss, cfg, rng)
	near := m.RSRPAll(0, flight.State{X: 200, Alt: 1.5}, nil)[0]
	far := m.RSRPAll(time.Second, flight.State{X: 2000, Alt: 1.5}, nil)[0]
	if near <= far {
		t.Errorf("RSRP near (%v) should exceed far (%v)", near, far)
	}
}

func TestAltitudeEntersSideLobe(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bss := []BS{{ID: 0, X: 0, Y: 0, Height: 30}}
	cfg := DefaultSignalConfig()
	cfg.ShadowSigmaGroundDB = 0
	cfg.ShadowSigmaAirDB = 0
	m := NewSignalModel(Urban, bss, cfg, rng)
	// Directly overhead at altitude the UE is far above boresight: the
	// pattern attenuation must cap at the side-lobe floor, not below it.
	v := m.RSRPAll(0, flight.State{X: 50, Alt: 120}, nil)[0]
	vGround := m.RSRPAll(time.Second, flight.State{X: 300, Alt: 1.5}, nil)[0]
	if v < vGround-25 {
		t.Errorf("overhead RSRP %v vs ground %v: side-lobe floor should bound the loss", v, vGround)
	}
}

func TestHOFrequencyAirVsGround(t *testing.T) {
	const runs = 6
	airUrban := hoRate(t, Urban, P1, true, runs)
	grdUrban := hoRate(t, Urban, P1, false, runs)
	airRural := hoRate(t, Rural, P1, true, runs)
	grdRural := hoRate(t, Rural, P1, false, runs)
	t.Logf("HO/s: air urban %.3f, grd urban %.3f, air rural %.3f, grd rural %.3f",
		airUrban, grdUrban, airRural, grdRural)

	if airUrban < 5*grdUrban {
		t.Errorf("air urban (%.3f) should be ≈an order of magnitude above ground (%.3f)", airUrban, grdUrban)
	}
	if airRural < 4*grdRural {
		t.Errorf("air rural (%.3f) should be far above ground (%.3f)", airRural, grdRural)
	}
	if airUrban <= airRural {
		t.Errorf("urban air HO rate (%.3f) should exceed rural (%.3f)", airUrban, airRural)
	}
	if airUrban < 0.08 || airUrban > 0.5 {
		t.Errorf("air urban rate %.3f outside the paper's plausible band [0.08, 0.5]", airUrban)
	}
	if grdUrban > 0.06 {
		t.Errorf("ground urban rate %.3f too high", grdUrban)
	}
}

func TestHETDistribution(t *testing.T) {
	var air, grd metrics.Dist
	for s := 0; s < 8; s++ {
		for _, ev := range runMobility(t, Urban, P1, true, int64(100+s)).Events() {
			air.Add(ev.HET.Seconds() * 1000)
		}
		for _, ev := range runMobility(t, Urban, P1, false, int64(100+s)).Events() {
			grd.Add(ev.HET.Seconds() * 1000)
		}
	}
	if air.N() < 30 {
		t.Fatalf("only %d air handovers sampled", air.N())
	}
	t.Logf("HET air: %v", air.Box())
	t.Logf("HET grd: %v", grd.Box())
	// Majority below the 49.5 ms 3GPP success threshold.
	if air.FracBelow(49.5) < 0.6 {
		t.Errorf("only %.0f%% of air HETs below 49.5 ms, want a clear majority", 100*air.FracBelow(49.5))
	}
	// Air must show outliers above 500 ms; the maximum stays ≤ 4 s.
	if air.Max() < 500 {
		t.Errorf("air HET max = %.0f ms, want long outliers (paper: up to 4 s)", air.Max())
	}
	if air.Max() > 4000+1 {
		t.Errorf("air HET max = %.0f ms, exceeds the 4 s cap", air.Max())
	}
	if grd.N() > 0 && grd.Max() > 1000 {
		t.Errorf("ground HET max = %.0f ms, the excessive outliers belong to the air", grd.Max())
	}
}

func TestRuralPingPongs(t *testing.T) {
	pp := 0
	for s := 0; s < 10; s++ {
		for _, ev := range runMobility(t, Rural, P1, true, int64(500+s)).Events() {
			if ev.PingPong {
				pp++
			}
		}
	}
	if pp == 0 {
		t.Error("no ping-pong handovers in rural flights; the paper observed them")
	}
}

func TestP2MoreRuralHandovers(t *testing.T) {
	const runs = 6
	p1 := hoRate(t, Rural, P1, true, runs)
	p2 := hoRate(t, Rural, P2, true, runs)
	t.Logf("rural air HO/s: P1 %.3f, P2 %.3f", p1, p2)
	if p2 <= p1 {
		t.Errorf("P2 (denser rural deployment) should hand over more: P2 %.3f vs P1 %.3f", p2, p1)
	}
}

func TestMachineBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bss := Deployment(Urban, P1, rng)
	model := NewSignalModel(Urban, bss, DefaultSignalConfig(), rng)
	m := NewMachine(model, DefaultHandoverConfig(), true, rng)
	if m.Serving() != -1 {
		t.Errorf("serving before first step = %d", m.Serving())
	}
	m.Step(0, flight.State{})
	if m.Serving() < 0 {
		t.Error("no serving cell after first measurement")
	}
	if m.InHandover(0) {
		t.Error("in handover before any event")
	}
}

func TestHandoverInterruptsLink(t *testing.T) {
	// Drive until a handover happens, then verify the busy window.
	rng := rand.New(rand.NewSource(11))
	bss := Deployment(Urban, P1, rng)
	model := NewSignalModel(Urban, bss, DefaultSignalConfig(), rng)
	m := NewMachine(model, DefaultHandoverConfig(), true, rng)
	prof := flight.StandardFlight()
	step := 40 * time.Millisecond
	for now := time.Duration(0); now < prof.Duration(); now += step {
		if ev := m.Step(now, prof.At(now)); ev != nil {
			if !m.InHandover(ev.At + ev.HET/2) {
				t.Error("link not interrupted during HET")
			}
			if m.InHandover(ev.At + ev.HET + time.Millisecond) {
				t.Error("link still interrupted after HET")
			}
			return
		}
	}
	t.Fatal("no handover occurred in a full urban flight")
}

func TestDeterminism(t *testing.T) {
	a := runMobility(t, Urban, P1, true, 42)
	b := runMobility(t, Urban, P1, true, 42)
	if len(a.Events()) != len(b.Events()) {
		t.Fatalf("same seed produced %d vs %d handovers", len(a.Events()), len(b.Events()))
	}
	for i := range a.Events() {
		if a.Events()[i] != b.Events()[i] {
			t.Fatalf("event %d differs between same-seed runs", i)
		}
	}
}
