package cell

import (
	"math"
	"math/rand"
)

// Deployment returns the base-station layout for an environment/operator
// pair. Positions are relative to the flight takeoff point at the origin.
//
// The layouts reproduce the campaign's structure (Fig. 3): the urban zone is
// densely surrounded by sites (the paper connected to 32 cells there), the
// rural zone has sparse coverage for P1 (18 cells, most of them far away)
// and noticeably denser coverage for the competing operator P2
// (Appendix A.3 attributes P2's higher rural bandwidth and handover
// frequency to its deployment density).
func Deployment(env Environment, op Operator, rng *rand.Rand) []BS {
	switch {
	case env == Urban:
		// Both operators deploy similarly densely in the urban test area.
		return jitteredGrid(rng, 32, 1500, 250, 30)
	case op == P1:
		// Sparse rural: sites 1.5–8 km out.
		return ring(rng, 18, 1500, 8000, 35)
	default:
		// P2 rural: more sites, much closer.
		return ring(rng, 30, 600, 4000, 35)
	}
}

// jitteredGrid scatters n sites over a span×span box centred on the origin,
// on a jittered grid with the given cell pitch jitter.
func jitteredGrid(rng *rand.Rand, n int, span, jitter, height float64) []BS {
	cols := 1
	for cols*cols < n {
		cols++
	}
	pitch := span / float64(cols)
	bss := make([]BS, 0, n)
	id := 0
	for r := 0; r < cols && id < n; r++ {
		for c := 0; c < cols && id < n; c++ {
			x := -span/2 + (float64(c)+0.5)*pitch + (rng.Float64()-0.5)*jitter
			y := -span/2 + (float64(r)+0.5)*pitch + (rng.Float64()-0.5)*jitter
			bss = append(bss, BS{ID: id, X: x, Y: y, Height: height})
			id++
		}
	}
	return bss
}

// ring places n sites at uniformly random bearings with distances between
// minR and maxR from the origin, biased toward the far edge (sparse rural
// coverage).
func ring(rng *rand.Rand, n int, minR, maxR, height float64) []BS {
	bss := make([]BS, 0, n)
	for i := 0; i < n; i++ {
		// Square-root bias: more area (and thus more sites) at larger radii.
		u := rng.Float64()
		r := minR + (maxR-minR)*u*u
		if i < 3 {
			// Guarantee a few close-in sites so there is always coverage.
			r = minR + rng.Float64()*minR
		}
		theta := rng.Float64() * 2 * math.Pi
		bss = append(bss, BS{
			ID:     i,
			X:      r * math.Cos(theta),
			Y:      r * math.Sin(theta),
			Height: height,
		})
	}
	return bss
}
