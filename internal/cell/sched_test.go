package cell

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseScheduler(t *testing.T) {
	cases := []struct {
		in   string
		want SchedulerKind
		ok   bool
	}{
		{"rr", SchedRR, true},
		{"round-robin", SchedRR, true},
		{"pf", SchedPF, true},
		{"proportional-fair", SchedPF, true},
		{"", SchedRR, false},
		{"fair", SchedRR, false},
		{"RR", SchedRR, false},
	}
	for _, tc := range cases {
		got, err := ParseScheduler(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseScheduler(%q) = (%v, %v), want (%v, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for _, k := range []SchedulerKind{SchedRR, SchedPF} {
		got, err := ParseScheduler(k.String())
		if err != nil || got != k {
			t.Errorf("scheduler %v does not round-trip through its name", k)
		}
	}
}

// TestCellSharesConservation is the PRB-conservation property: for random
// member sets under both schedulers, every share is positive, no share
// exceeds 1, the cell-wide sum never exceeds 1 (beyond float tolerance),
// and a lone UE gets exactly the full single-user rate.
func TestCellSharesConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shares := make([]float64, 64)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(32)
		rsrps := make([]float64, n)
		for i := range rsrps {
			switch rng.Intn(8) {
			case 0:
				rsrps[i] = math.Inf(-1) // unattached sample leaked in
			case 1:
				rsrps[i] = -140 + rng.Float64()*10 // below the noise floor
			default:
				rsrps[i] = -120 + rng.Float64()*80
			}
		}
		for _, kind := range []SchedulerKind{SchedRR, SchedPF} {
			cellShares(kind, rsrps, shares)
			sum := 0.0
			for i := 0; i < n; i++ {
				if shares[i] <= 0 || shares[i] > 1 {
					t.Fatalf("trial %d %v: share[%d] = %v outside (0, 1]", trial, kind, i, shares[i])
				}
				sum += shares[i]
			}
			if sum > 1+1e-9 {
				t.Fatalf("trial %d %v: shares sum to %v > 1 (n=%d)", trial, kind, sum, n)
			}
			if n == 1 && shares[0] != 1 {
				t.Fatalf("trial %d %v: lone UE got share %v, want exactly 1", trial, kind, shares[0])
			}
		}
	}
}

// TestSchedulerSkew pins the schedulers' defining behaviours: round-robin
// splits equally regardless of channel quality, proportional-fair gives the
// stronger UE strictly more.
func TestSchedulerSkew(t *testing.T) {
	rsrps := []float64{-60, -90} // 30 dB apart
	shares := make([]float64, 2)
	cellShares(SchedRR, rsrps, shares)
	if shares[0] != shares[1] {
		t.Errorf("RR shares %v, want equal", shares[:2])
	}
	cellShares(SchedPF, rsrps, shares)
	if !(shares[0] > shares[1]) {
		t.Errorf("PF shares %v, want strong UE strictly larger", shares[:2])
	}
	if shares[1] <= 0 {
		t.Errorf("PF starved the weak UE: share %v", shares[1])
	}
}
