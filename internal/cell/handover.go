package cell

import (
	"math"
	"math/rand"
	"time"

	"rpivideo/internal/flight"
	"rpivideo/internal/obs"
)

// HandoverConfig parameterizes the A3-event handover machine.
type HandoverConfig struct {
	// HysteresisDB is the A3 offset a neighbour must exceed.
	HysteresisDB float64
	// TimeToTrigger is how long the A3 condition must hold.
	TimeToTrigger time.Duration
	// MeasurementInterval is the RRC measurement cadence.
	MeasurementInterval time.Duration
	// PingPongWindow classifies a return to the previous cell within this
	// window as a ping-pong handover.
	PingPongWindow time.Duration
	// PreHOFactor and PostHOFactor are the capacity multipliers applied
	// while a handover is pending and while the target cell settles — the
	// §4.2.2 latency-spike mechanism. PostHOWindow bounds the latter.
	PreHOFactor  float64
	PostHOFactor float64
	PostHOWindow time.Duration
	// DAPS enables the Dual Active Protocol Stack handover of 3GPP
	// Release 16 that §5 discusses: make-before-break link establishment.
	// The UE keeps the source cell active until the target is up, so the
	// execution gap disappears and the degradation around handovers is
	// largely masked by the second leg.
	DAPS bool
	// RLF arms the radio-link-failure model (rlf.go). The zero value
	// disables it.
	RLF RLFConfig
}

// DefaultHandoverConfig returns LTE-typical parameters (urban calibration).
func DefaultHandoverConfig() HandoverConfig { return DefaultHandoverConfigFor(Urban) }

// DefaultHandoverConfigFor returns the calibrated parameters for an
// environment. The urban radio deteriorates more sharply around handovers
// (dense interference); the open rural environment degrades more mildly.
func DefaultHandoverConfigFor(env Environment) HandoverConfig {
	cfg := HandoverConfig{
		HysteresisDB:        3,
		TimeToTrigger:       256 * time.Millisecond,
		MeasurementInterval: 40 * time.Millisecond,
		PingPongWindow:      5 * time.Second,
		PreHOFactor:         0.40,
		PostHOFactor:        0.60,
		PostHOWindow:        600 * time.Millisecond,
	}
	if env == Rural {
		cfg.PreHOFactor = 0.50
		cfg.PostHOFactor = 0.70
	}
	return cfg
}

// Machine is the handover state machine of one UE.
type Machine struct {
	cfg    HandoverConfig
	model  *SignalModel
	rng    *rand.Rand
	midair bool // whether this run is an aerial one (HET tail selection)

	serving     int
	prevServing int
	lastHOAt    time.Duration
	haveLastHO  bool

	candidate      int
	candidateSince time.Duration
	haveCandidate  bool

	busyUntil time.Duration // in-progress handover or re-establishment window

	// Radio-link-failure supervision (rlf.go).
	t310Running    bool
	t310Since      time.Duration
	reestablishing bool
	rlfs           []RLFEvent

	events []Event
	rsrps  []float64

	// Tracing (nil = disabled). Purely observational — see internal/obs.
	trace    *obs.Tracer
	traceDir obs.Dir

	// hetHist, when non-nil, records each committed handover's execution
	// time (interruption) in milliseconds.
	hetHist *obs.LogHistogram
}

// NewMachine returns a handover machine attached to a signal model. air
// selects the aerial HET outlier distribution (§4.1: the excessive outliers
// up to 4 s occur almost exclusively in the air).
func NewMachine(model *SignalModel, cfg HandoverConfig, air bool, rng *rand.Rand) *Machine {
	return &Machine{cfg: cfg, model: model, rng: rng, midair: air, serving: -1, prevServing: -1}
}

// SetTracer attaches an event tracer (nil disables tracing). dir labels the
// link direction this machine serves.
func (m *Machine) SetTracer(tr *obs.Tracer, dir obs.Dir) {
	m.trace = tr
	m.traceDir = dir
}

// SetInterruptionHist attaches a histogram that records each committed
// handover's execution time in milliseconds. Nil disables recording.
// Handover failures that degrade into RLF never commit, so they are not
// recorded here — they surface through the RLF counters instead.
func (m *Machine) SetInterruptionHist(h *obs.LogHistogram) { m.hetHist = h }

// Serving returns the current serving cell's *deployment index* (-1 before
// the first measurement) — the position in the SignalModel's cell slice,
// which is what fleet contention keys on. For the externally meaningful
// identifier use ServingCellID.
func (m *Machine) Serving() int { return m.serving }

// ServingCellID returns the current serving cell's base-station ID (-1
// before the first measurement). Index and ID coincide for generated
// deployments but not necessarily for injected shared maps.
func (m *Machine) ServingCellID() int { return m.model.CellID(m.serving) }

// Events returns all completed handover events so far.
func (m *Machine) Events() []Event { return m.events }

// InHandover reports whether the link is interrupted by an in-progress
// handover execution at time now.
func (m *Machine) InHandover(now time.Duration) bool { return now < m.busyUntil }

// BusyUntil returns the end of the current handover execution window (zero
// when none has occurred).
func (m *Machine) BusyUntil() time.Duration { return m.busyUntil }

// RadioDegradation returns the capacity multiplier the radio imposes at
// time now: 0 during handover execution, a deep degradation while a
// handover is pending (the §4.2.2 pre-HO latency spike), a partial one
// while the target cell settles, and 1 otherwise. With DAPS the second
// active leg masks most of the degradation.
func (m *Machine) RadioDegradation(now time.Duration) float64 {
	if m.cfg.DAPS {
		switch {
		case m.haveCandidate &&
			now-m.candidateSince >= m.cfg.TimeToTrigger/2 &&
			now-m.candidateSince < 4*m.cfg.TimeToTrigger:
			return 0.85
		case m.haveLastHO && now < m.busyUntil+m.cfg.PostHOWindow:
			return 0.9
		default:
			return 1
		}
	}
	switch {
	case m.InHandover(now):
		return 0
	case m.haveCandidate &&
		now-m.candidateSince >= m.cfg.TimeToTrigger/2 &&
		now-m.candidateSince < 4*m.cfg.TimeToTrigger:
		// Only established-but-fresh candidates degrade the link deeply:
		// momentary flickers (age < TTT/2) are measurement noise, and
		// candidates that linger without triggering are marginal-signal
		// conditions, not imminent handovers. The paper's spikes start
		// ≈0.5 s before handovers and last ≈1 s (§4.2.2).
		return m.cfg.PreHOFactor
	case m.haveLastHO && now < m.busyUntil+m.cfg.PostHOWindow:
		return m.cfg.PostHOFactor
	default:
		return 1
	}
}

// ServingRSRP returns the most recent serving-cell received power.
func (m *Machine) ServingRSRP() float64 {
	if m.serving < 0 || m.serving >= len(m.rsrps) {
		return math.Inf(-1)
	}
	return m.rsrps[m.serving]
}

// Step performs one RRC measurement at time now and UE state st, returning
// a non-nil Event when a handover triggers.
func (m *Machine) Step(now time.Duration, st flight.State) *Event {
	m.rsrps = m.model.RSRPAll(now, st, m.rsrps)
	if len(m.rsrps) == 0 {
		return nil
	}
	best := 0
	for i, v := range m.rsrps {
		if v > m.rsrps[best] {
			best = i
		}
	}
	if m.serving < 0 {
		m.serving = best
		return nil
	}
	if m.reestablishing {
		if m.InHandover(now) {
			m.haveCandidate = false
			return nil
		}
		// Re-establishment blackout over: attach to the strongest cell.
		// RRC re-establishment is not a handover, so no Event is emitted
		// and HET statistics stay clean-handover-only.
		m.reestablishing = false
		m.prevServing = m.serving
		m.serving = best
		m.lastHOAt = now
		m.rlfs[len(m.rlfs)-1].To = m.model.CellID(best)
	}
	// No measurements act while the previous handover is executing.
	if m.InHandover(now) {
		m.haveCandidate = false
		return nil
	}
	if m.cfg.RLF.Enabled && m.monitorRLF(now) {
		return nil
	}
	if best == m.serving || m.rsrps[best] <= m.rsrps[m.serving]+m.cfg.HysteresisDB {
		m.haveCandidate = false
		return nil
	}
	if !m.haveCandidate || m.candidate != best {
		m.candidate = best
		m.candidateSince = now
		m.haveCandidate = true
		return nil
	}
	if now-m.candidateSince < m.cfg.TimeToTrigger {
		return nil
	}
	// A3 condition held for TTT: execute the handover. With DAPS the
	// source link stays active while the target comes up: no execution
	// gap interrupts the data path.
	het := m.sampleHET(st)
	if m.cfg.DAPS {
		het = 0
	}
	// A pathological execution time risks losing both cells mid-handover:
	// the UE then declares RLF and re-establishes instead of completing
	// the handover (§4.1's worst HET outliers; never under DAPS, whose
	// source leg stays up).
	if m.cfg.RLF.Enabled && !m.cfg.DAPS && m.cfg.RLF.HOFailureProb > 0 &&
		het >= m.cfg.RLF.HOFailureHET && m.rng.Float64() < m.cfg.RLF.HOFailureProb {
		m.declareRLF(now, RLFHandoverFailure)
		return nil
	}
	// Events report base-station IDs; the machine's own bookkeeping stays
	// in deployment indices (ping-pong detection compares indices).
	ev := Event{
		At:       now,
		From:     m.model.CellID(m.serving),
		To:       m.model.CellID(best),
		HET:      het,
		PingPong: best == m.prevServing && m.haveLastHO && now-m.lastHOAt < m.cfg.PingPongWindow,
	}
	m.prevServing = m.serving
	m.serving = best
	m.lastHOAt = now
	m.haveLastHO = true
	m.busyUntil = now + het
	m.haveCandidate = false
	m.events = append(m.events, ev)
	if m.trace != nil {
		m.trace.Emit(obs.Event{T: now, Kind: obs.KindHandover, Dir: m.traceDir,
			Seq: int64(ev.From), Aux: int64(ev.To), V: float64(het) / float64(time.Millisecond)})
	}
	if m.hetHist != nil {
		m.hetHist.Observe(float64(het) / float64(time.Millisecond))
	}
	return &m.events[len(m.events)-1]
}

// sampleHET draws one Handover Execution Time. The bulk is log-normal with
// a median near 30 ms so the majority stays below the 49.5 ms 3GPP success
// threshold (§4.1); outliers are rare and bounded on the ground but heavy-
// tailed in the air, reaching ≈4 s (Fig. 4b).
func (m *Machine) sampleHET(st flight.State) time.Duration {
	inAir := m.midair && st.Alt > 5
	outlierP := 0.03
	if inAir {
		outlierP = 0.08
	}
	if m.rng.Float64() >= outlierP {
		// Bulk: log-normal, median 30 ms, σ≈0.35 → P95 ≈ 53 ms.
		het := 30e-3 * math.Exp(m.rng.NormFloat64()*0.35)
		return time.Duration(het * float64(time.Second))
	}
	if !inAir {
		// Ground outliers: 60–600 ms.
		return time.Duration(60+m.rng.Float64()*540) * time.Millisecond
	}
	// Air outliers: Pareto tail from 60 ms, capped at 4 s.
	u := m.rng.Float64()
	het := 0.06 * math.Pow(1-u, -1/1.1)
	if het > 4 {
		het = 4
	}
	return time.Duration(het * float64(time.Second))
}
