package cell

import (
	"fmt"
	"math"
)

// SchedulerKind selects the per-cell PRB (physical resource block)
// scheduler a shared deployment uses to split a cell's capacity across the
// UEs camped on it. The split is expressed as a per-UE share of the cell's
// single-user rate: a lone UE always gets share 1, and the shares of the
// UEs on one cell sum to at most 1 (the PRB-conservation invariant).
type SchedulerKind int

// Schedulers.
const (
	// SchedRR is the round-robin split: every attached UE gets an equal
	// 1/n share of the cell regardless of its channel quality.
	SchedRR SchedulerKind = iota
	// SchedPF is the proportional-fair split: shares are proportional to
	// each UE's spectral-efficiency proxy (log2(1+SNR) from its serving
	// RSRP), so UEs with a good channel get more PRBs and cell-edge UEs
	// are squeezed — the scheduling real eNodeBs approximate.
	SchedPF
)

// String implements fmt.Stringer; the strings are the -fleet spec and
// metrics values.
func (k SchedulerKind) String() string {
	if k == SchedPF {
		return "pf"
	}
	return "rr"
}

// ParseScheduler parses a scheduler name ("rr" or "pf").
func ParseScheduler(s string) (SchedulerKind, error) {
	switch s {
	case "rr", "round-robin":
		return SchedRR, nil
	case "pf", "proportional-fair":
		return SchedPF, nil
	default:
		return SchedRR, fmt.Errorf("unknown scheduler %q (want rr or pf)", s)
	}
}

// noiseFloorDBm is the thermal noise floor the PF weight measures SNR
// against; the RLF model's Qout (-120 dBm) sits just above it.
const noiseFloorDBm = -121.0

// minSpectralEff floors the PF weight: even a drowned UE keeps a sliver of
// PRBs, so no share is ever exactly zero (which would zero its link
// capacity for whole epochs).
const minSpectralEff = 0.05

// spectralEff maps a serving RSRP to the Shannon log2(1+SNR) proxy the PF
// scheduler weighs by. The weight is deliberately unclamped above: PF
// shares are relative, so only the *differences* between co-cell UEs
// matter, and the log keeps a 10 dB signal advantage worth the same
// ~3.3 weight points whether the cell is strong or weak.
func spectralEff(rsrpDBm float64) float64 {
	if math.IsInf(rsrpDBm, -1) || math.IsNaN(rsrpDBm) {
		return minSpectralEff
	}
	snr := math.Pow(10, (rsrpDBm-noiseFloorDBm)/10)
	eff := math.Log2(1 + snr)
	if eff < minSpectralEff {
		return minSpectralEff
	}
	return eff
}

// cellShares fills shares[i] with the capacity share of the i-th member of
// one cell under the given scheduler. members carries each UE's serving
// RSRP (only PF reads it). The shares are positive and sum to at most 1:
// after the proportional split a defensive renormalization caps the
// floating-point sum at exactly the cell's capacity.
func cellShares(kind SchedulerKind, rsrps []float64, shares []float64) {
	n := len(rsrps)
	if n == 0 {
		return
	}
	if n == 1 {
		// A lone UE gets the full single-user rate, exactly.
		shares[0] = 1
		return
	}
	switch kind {
	case SchedPF:
		total := 0.0
		for _, r := range rsrps {
			total += spectralEff(r)
		}
		for i, r := range rsrps {
			shares[i] = spectralEff(r) / total
		}
	default:
		eq := 1 / float64(n)
		for i := range shares[:n] {
			shares[i] = eq
		}
	}
	sum := 0.0
	for _, s := range shares[:n] {
		sum += s
	}
	if sum > 1 {
		inv := 1 / sum
		for i := range shares[:n] {
			shares[i] *= inv
		}
	}
}
