// Package cell models the LTE radio-access side of the measurement
// campaign: base-station deployments for the two test environments and two
// operators, a received-power model (path loss, antenna down-tilt pattern,
// correlated shadowing, altitude-dependent line-of-sight), and an A3-event
// handover state machine that produces the handover frequency and Handover
// Execution Time (HET) statistics of §4.1.
//
// The model is a calibrated synthetic substitute for the paper's live LTE
// networks (see DESIGN.md): its free parameters are chosen so the published
// first-order statistics hold — handover frequency an order of magnitude
// higher in the air than on the ground (up to ≈0.7 HO/s), more handovers in
// the urban area, HET bulk below the 49.5 ms 3GPP threshold with heavy air
// outliers up to ≈4 s, and ping-pong handovers in the rural zone.
package cell

import "time"

// Environment selects the measurement area.
type Environment int

// Environments of the campaign.
const (
	Urban Environment = iota
	Rural
)

// String implements fmt.Stringer.
func (e Environment) String() string {
	if e == Urban {
		return "urban"
	}
	return "rural"
}

// Operator selects the mobile network operator profile.
type Operator int

// Operators of the campaign: P1 is the default throughout the study, P2 the
// competing operator of Appendix A.3.
const (
	P1 Operator = iota
	P2
)

// String implements fmt.Stringer.
func (o Operator) String() string {
	if o == P1 {
		return "P1"
	}
	return "P2"
}

// BS is one base station (cell site).
type BS struct {
	ID     int
	X, Y   float64 // metres, same frame as flight coordinates
	Height float64 // antenna height in metres
}

// Event is one completed handover.
type Event struct {
	// At is when the handover was triggered (reception of the
	// RRCConnectionReconfiguration in the paper's terms).
	At time.Duration
	// From and To are the serving cell IDs.
	From, To int
	// HET is the execution time: the window during which the link is
	// interrupted.
	HET time.Duration
	// PingPong marks a bounce back to the previous cell within a short
	// interval.
	PingPong bool
}
