package cell

import (
	"time"

	"rpivideo/internal/obs"
)

// AttachSample is one scheduling epoch of one UE's attachment timeline: the
// serving-cell *index* in the shared deployment at the epoch start (-1
// before the UE first attaches) and the serving RSRP in dBm (the PF
// scheduler's weight input; -Inf while unattached). A UE that is
// re-establishing after an RLF still reports its old serving index — it
// holds the cell's UE context (and therefore PRBs) until re-establishment
// completes elsewhere, which is the conservative LTE-ish reading.
type AttachSample struct {
	Cell int
	RSRP float64
}

// CellStats aggregates one cell's life under fleet contention.
type CellStats struct {
	// Cell is the base station's ID (not its deployment index).
	Cell int
	// Attaches counts UE arrivals onto the cell (epoch-transition edges).
	Attaches int
	// PeakUsers is the largest number of simultaneously attached UEs seen
	// in any single epoch.
	PeakUsers int
	// UserEpochs is the total attached user-epochs (Σ users over epochs).
	UserEpochs int64
	// OverloadEpochs counts epochs where the cell had at least two users
	// and some user's share fell below the overload floor.
	OverloadEpochs int
	// ShareSum is the sum of per-user shares over all user-epochs;
	// ShareSum/UserEpochs is the cell's mean granted share.
	ShareSum float64
}

// MeanShare is the average capacity share a user of this cell received.
func (cs CellStats) MeanShare() float64 {
	if cs.UserEpochs == 0 {
		return 1
	}
	return cs.ShareSum / float64(cs.UserEpochs)
}

// Contention is the output of one shared-map scheduling fold.
type Contention struct {
	Sched SchedulerKind
	Epoch time.Duration
	// Shares[u][k] is UAV u's capacity share during epoch k. Epochs where
	// the UAV is unattached carry share 1 (its link is already silenced by
	// the radio model; the scheduler grants it nothing and charges it
	// nothing).
	Shares [][]float64
	// Cells holds per-cell statistics in deployment order.
	Cells []CellStats
	// Attaches and Detaches count UE/cell association edges fleet-wide
	// (the first camp of each UE counts as an attach; a handover is one
	// detach plus one attach).
	Attaches, Detaches int
	// OverloadEpochs is the fleet-wide total of overloaded cell-epochs.
	OverloadEpochs int
	// PeakUsers is the largest per-cell user count seen anywhere.
	PeakUsers int
	// MinShare is the smallest share granted to any attached UE in any
	// epoch (1 when no cell ever had two users).
	MinShare float64
	// ShareHist is the distribution of granted shares over user-epochs.
	ShareHist *obs.Histogram
	// Events is the per-cell observability timeline (attach/detach per UE,
	// overload start/end per cell), populated only when requested.
	Events []obs.Event
}

// Contend folds a fleet's attachment timelines into per-UAV-per-epoch
// capacity shares under the given scheduler, plus per-cell statistics and
// (optionally) an attach/detach/overload event timeline. timelines[u][k]
// is UAV u's attachment at epoch k; cells is the shared deployment the
// timeline indices refer to (only its IDs are read — stats and events
// report BS IDs, not slice indices). overloadShare is the per-user share
// floor below which a multi-user cell-epoch counts as overloaded.
//
// The fold is a pure serial function of its inputs, so a fleet's shares
// are deterministic regardless of how the timelines were computed.
func Contend(timelines [][]AttachSample, cells []BS, kind SchedulerKind, overloadShare float64, epoch time.Duration, record bool) *Contention {
	nUE := len(timelines)
	nEpochs := 0
	for _, tl := range timelines {
		if len(tl) > nEpochs {
			nEpochs = len(tl)
		}
	}
	ct := &Contention{
		Sched:    kind,
		Epoch:    epoch,
		Shares:   make([][]float64, nUE),
		Cells:    make([]CellStats, len(cells)),
		MinShare: 1,
		ShareHist: &obs.Histogram{
			Buckets: obs.ShareBuckets,
			Counts:  make([]int64, len(obs.ShareBuckets)),
		},
	}
	for i := range ct.Cells {
		ct.Cells[i].Cell = cells[i].ID
	}
	flat := make([]float64, nUE*nEpochs)
	for u := range ct.Shares {
		ct.Shares[u] = flat[u*nEpochs : (u+1)*nEpochs]
		for k := range ct.Shares[u] {
			ct.Shares[u][k] = 1
		}
	}

	// Scratch: per-cell member lists rebuilt each epoch, in UAV order so
	// event emission and share assignment are stable.
	members := make([][]int, len(cells))
	rsrps := make([]float64, 0, nUE)
	shares := make([]float64, nUE)
	overloaded := make([]bool, len(cells))

	cellAt := func(u, k int) int {
		if k < 0 || k >= len(timelines[u]) {
			return -1
		}
		c := timelines[u][k].Cell
		if c < 0 || c >= len(cells) {
			return -1
		}
		return c
	}

	for k := 0; k < nEpochs; k++ {
		at := epoch * time.Duration(k)
		for c := range members {
			members[c] = members[c][:0]
		}
		for u := 0; u < nUE; u++ {
			prev := cellAt(u, k-1)
			cur := cellAt(u, k)
			if cur != prev {
				if prev >= 0 {
					ct.Detaches++
					if record {
						ct.Events = append(ct.Events, obs.Event{
							T: at, Kind: obs.KindCellDetach,
							Seq: int64(u), Aux: int64(cells[prev].ID),
						})
					}
				}
				if cur >= 0 {
					ct.Attaches++
					ct.Cells[cur].Attaches++
					if record {
						ct.Events = append(ct.Events, obs.Event{
							T: at, Kind: obs.KindCellAttach,
							Seq: int64(u), Aux: int64(cells[cur].ID),
							V: timelines[u][k].RSRP,
						})
					}
				}
			}
			if cur >= 0 {
				members[cur] = append(members[cur], u)
			}
		}
		for c := range members {
			n := len(members[c])
			if n == 0 {
				if overloaded[c] {
					overloaded[c] = false
					if record {
						ct.Events = append(ct.Events, obs.Event{
							T: at, Kind: obs.KindCellOverloadEnd,
							Seq: int64(cells[c].ID),
						})
					}
				}
				continue
			}
			cs := &ct.Cells[c]
			cs.UserEpochs += int64(n)
			if n > cs.PeakUsers {
				cs.PeakUsers = n
			}
			if n > ct.PeakUsers {
				ct.PeakUsers = n
			}
			rsrps = rsrps[:0]
			for _, u := range members[c] {
				rsrps = append(rsrps, timelines[u][k].RSRP)
			}
			cellShares(kind, rsrps, shares)
			minShare := 1.0
			for i, u := range members[c] {
				sh := shares[i]
				ct.Shares[u][k] = sh
				cs.ShareSum += sh
				ct.ShareHist.Observe(sh)
				if sh < minShare {
					minShare = sh
				}
				if sh < ct.MinShare {
					ct.MinShare = sh
				}
			}
			over := n >= 2 && minShare < overloadShare
			if over {
				cs.OverloadEpochs++
				ct.OverloadEpochs++
			}
			if over != overloaded[c] {
				overloaded[c] = over
				if record {
					kind := obs.KindCellOverloadEnd
					if over {
						kind = obs.KindCellOverloadStart
					}
					ct.Events = append(ct.Events, obs.Event{
						T: at, Kind: kind,
						Seq: int64(cells[c].ID), Aux: int64(n), V: minShare,
					})
				}
			}
		}
	}
	return ct
}
