package cell

import (
	"math/rand"
	"testing"
	"time"

	"rpivideo/internal/flight"
)

// rlfMachine builds an urban ground machine with the given RLF config.
func rlfMachine(seed int64, rlf RLFConfig) *Machine {
	rng := rand.New(rand.NewSource(seed))
	bss := Deployment(Urban, 0, rng)
	model := NewSignalModel(Urban, bss, DefaultSignalConfigFor(Urban), rng)
	cfg := DefaultHandoverConfig()
	cfg.RLF = rlf
	return NewMachine(model, cfg, false, rng)
}

// driveMachine steps a machine over a ground profile for dur.
func driveMachine(m *Machine, dur time.Duration, seed int64) {
	prof := flight.GroundProfile(dur, rand.New(rand.NewSource(seed)))
	step := m.cfg.MeasurementInterval
	for now := time.Duration(0); now < dur; now += step {
		m.Step(now, prof.At(now))
	}
}

// TestRLFForcedQualityOut sets Qout above any achievable RSRP so T310 starts
// on the first post-attach measurement and must expire exactly T310 later.
func TestRLFForcedQualityOut(t *testing.T) {
	rlf := DefaultRLFConfig()
	rlf.QoutDBm = 200 // always out-of-sync
	rlf.QinDBm = 201
	m := rlfMachine(42, rlf)
	driveMachine(m, 30*time.Second, 42)

	rlfs := m.RLFEvents()
	if len(rlfs) == 0 {
		t.Fatal("no RLF declared despite permanent out-of-sync")
	}
	first := rlfs[0]
	if first.Cause != RLFQualityOut {
		t.Errorf("first RLF cause = %v, want quality-out", first.Cause)
	}
	// Attach happens at the first step, T310 starts at the second (one
	// measurement interval in), expiry T310 later.
	wantAt := m.cfg.MeasurementInterval*2 + rlf.T310
	if first.At < rlf.T310 || first.At > wantAt+m.cfg.MeasurementInterval {
		t.Errorf("first RLF at %v, want ≈%v", first.At, wantAt)
	}
	for i, ev := range rlfs {
		if ev.Outage < rlf.ReestablishMin || ev.Outage > rlf.ReestablishMax {
			t.Errorf("RLF %d outage %v outside [%v, %v]", i, ev.Outage, rlf.ReestablishMin, rlf.ReestablishMax)
		}
		if ev.Outage > rlf.T311 {
			t.Errorf("RLF %d outage %v exceeds T311 %v", i, ev.Outage, rlf.T311)
		}
		// Only failures whose blackout ended within the drive can have
		// re-attached.
		if ev.At+ev.Outage < 30*time.Second-m.cfg.MeasurementInterval && ev.To < 0 {
			t.Errorf("RLF %d never re-attached (To=%d)", i, ev.To)
		}
	}
	// Re-establishment is not a handover: the clean-handover statistics
	// must not have absorbed the failures.
	for _, ev := range m.Events() {
		for _, r := range rlfs {
			if ev.At == r.At {
				t.Errorf("handover event emitted at RLF instant %v", ev.At)
			}
		}
	}
}

// TestRLFBlackoutHonoured: during the re-establishment window the machine
// reports InHandover (the link layer's interruption signal) and zero radio
// capacity.
func TestRLFBlackoutHonoured(t *testing.T) {
	rlf := DefaultRLFConfig()
	rlf.QoutDBm = 200
	rlf.QinDBm = 201
	m := rlfMachine(7, rlf)
	prof := flight.GroundProfile(30*time.Second, rand.New(rand.NewSource(7)))
	step := m.cfg.MeasurementInterval
	declared := false
	for now := time.Duration(0); now < 30*time.Second; now += step {
		m.Step(now, prof.At(now))
		if len(m.RLFEvents()) > 0 && !declared {
			declared = true
			ev := m.RLFEvents()[0]
			mid := ev.At + ev.Outage/2
			if !m.InHandover(mid) {
				t.Errorf("InHandover(%v) false mid-blackout", mid)
			}
			if got := m.RadioDegradation(mid); got != 0 {
				t.Errorf("RadioDegradation mid-blackout = %v, want 0", got)
			}
			if m.BusyUntil() != ev.At+ev.Outage {
				t.Errorf("BusyUntil = %v, want %v", m.BusyUntil(), ev.At+ev.Outage)
			}
		}
	}
	if !declared {
		t.Fatal("no RLF declared")
	}
}

// TestRLFHandoverFailure forces every handover with any HET to fail and
// checks the failures re-establish instead of completing.
func TestRLFHandoverFailure(t *testing.T) {
	rlf := DefaultRLFConfig()
	rlf.HOFailureHET = 0 // every handover qualifies
	rlf.HOFailureProb = 1
	m := rlfMachine(3, rlf)
	driveMachine(m, 3*time.Minute, 3)

	if len(m.Events()) != 0 {
		t.Errorf("%d handovers completed despite certain failure", len(m.Events()))
	}
	failures := 0
	for _, ev := range m.RLFEvents() {
		if ev.Cause == RLFHandoverFailure {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("no handover failures despite probability 1 (and no handover attempts either)")
	}
}

// TestRLFDisabledIsInert: with RLF disabled the machine must behave — and
// consume randomness — exactly as the seed build did, so calibrated runs
// stay byte-identical.
func TestRLFDisabledIsInert(t *testing.T) {
	run := func(rlf RLFConfig) ([]Event, []RLFEvent) {
		m := rlfMachine(99, rlf)
		driveMachine(m, 3*time.Minute, 99)
		return m.Events(), m.RLFEvents()
	}
	evDisabled, rlfsDisabled := run(RLFConfig{})
	if len(rlfsDisabled) != 0 {
		t.Fatalf("disabled RLF declared %d failures", len(rlfsDisabled))
	}
	evBaseline, _ := run(RLFConfig{})
	if len(evDisabled) != len(evBaseline) {
		t.Fatalf("disabled runs disagree: %d vs %d handovers", len(evDisabled), len(evBaseline))
	}
	for i := range evDisabled {
		if evDisabled[i] != evBaseline[i] {
			t.Fatalf("disabled runs diverge at handover %d: %+v vs %+v", i, evDisabled[i], evBaseline[i])
		}
	}
}

// TestRLFDeterministic: same seed, same RLF timeline.
func TestRLFDeterministic(t *testing.T) {
	run := func() []RLFEvent {
		rlf := DefaultRLFConfig()
		rlf.QoutDBm = 200
		rlf.QinDBm = 201
		m := rlfMachine(1234, rlf)
		driveMachine(m, time.Minute, 1234)
		return m.RLFEvents()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("rlf counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rlf %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
