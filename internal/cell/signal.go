package cell

import (
	"math"
	"math/rand"
	"time"

	"rpivideo/internal/flight"
)

// SignalConfig holds the radio-model parameters. The shadowing parameters
// are the main calibration knobs for the handover statistics of §4.1 (see
// DESIGN.md).
type SignalConfig struct {
	// TxPowerDBm is the site transmit power.
	TxPowerDBm float64
	// DownTiltDeg is the antenna electrical down-tilt.
	DownTiltDeg float64
	// VerticalHPBWDeg is the vertical half-power beamwidth.
	VerticalHPBWDeg float64
	// SideLobeFloorDB caps the vertical pattern attenuation: above the main
	// lobe the UE is served by side lobes.
	SideLobeFloorDB float64
	// ShadowSigmaGroundDB is the shadow-fading standard deviation on the
	// ground.
	ShadowSigmaGroundDB float64
	// ShadowSigmaAirDB is the shadow/fluctuation standard deviation in the
	// air at the reference altitude (120 m); it interpolates linearly with
	// altitude. The air value is larger: line-of-sight to many cells plus
	// side-lobe service makes the serving-cell ranking volatile, which is
	// what drives the order-of-magnitude handover increase.
	ShadowSigmaAirDB float64
	// ShadowTauGround and ShadowTauAir are the shadowing correlation times.
	ShadowTauGround time.Duration
	ShadowTauAir    time.Duration
	// DecorrDistanceM is the shadowing decorrelation distance: movement
	// decorrelates fading in addition to time.
	DecorrDistanceM float64
}

// DefaultSignalConfig returns the calibrated urban model parameters.
func DefaultSignalConfig() SignalConfig { return DefaultSignalConfigFor(Urban) }

// DefaultSignalConfigFor returns the calibrated model parameters for an
// environment. The aerial fluctuation is strongest in the urban area (many
// line-of-sight cells, reflections and interference around tall buildings),
// which is what makes urban air handovers the most frequent (Fig. 4a); the
// open rural sky is calmer.
func DefaultSignalConfigFor(env Environment) SignalConfig {
	cfg := SignalConfig{
		TxPowerDBm:          43,
		DownTiltDeg:         6,
		VerticalHPBWDeg:     10,
		SideLobeFloorDB:     20,
		ShadowSigmaGroundDB: 2.0,
		ShadowSigmaAirDB:    7.0,
		ShadowTauGround:     30 * time.Second,
		ShadowTauAir:        4 * time.Second,
		DecorrDistanceM:     150,
	}
	if env == Rural {
		cfg.ShadowSigmaAirDB = 4.5
		cfg.ShadowTauAir = 9 * time.Second
	}
	return cfg
}

// SignalModel computes per-cell received power for a moving UE.
type SignalModel struct {
	cfg SignalConfig
	env Environment
	bss []BS

	shadow []float64 // per-cell OU shadowing state (dB)
	rng    *rand.Rand
	last   time.Duration
	init   bool
}

// NewSignalModel returns a model over the given deployment.
func NewSignalModel(env Environment, bss []BS, cfg SignalConfig, rng *rand.Rand) *SignalModel {
	m := &SignalModel{cfg: cfg, env: env, bss: bss, rng: rng, shadow: make([]float64, len(bss))}
	for i := range m.shadow {
		m.shadow[i] = rng.NormFloat64() * cfg.ShadowSigmaGroundDB
	}
	return m
}

// Cells returns the deployment.
func (m *SignalModel) Cells() []BS { return m.bss }

// CellID maps a deployment index — what Machine tracks internally and what
// RSRPAll's slice positions mean — to the base station's ID. The two
// coincide for Deployment-generated maps, but injected shared maps may
// carry arbitrary IDs, so anything user-facing (handover and RLF events,
// traces) must go through this mapping rather than reporting raw indices.
func (m *SignalModel) CellID(i int) int {
	if i < 0 || i >= len(m.bss) {
		return -1
	}
	return m.bss[i].ID
}

// advance evolves the per-cell shadowing as an Ornstein–Uhlenbeck process
// whose variance and correlation time depend on altitude.
func (m *SignalModel) advance(now time.Duration, st flight.State) {
	if !m.init {
		m.init = true
		m.last = now
		return
	}
	dt := (now - m.last).Seconds()
	if dt <= 0 {
		return
	}
	m.last = now
	airness := st.Alt / 120
	if airness > 1 {
		airness = 1
	}
	sigma := m.cfg.ShadowSigmaGroundDB + (m.cfg.ShadowSigmaAirDB-m.cfg.ShadowSigmaGroundDB)*airness
	tau := m.cfg.ShadowTauGround.Seconds() + (m.cfg.ShadowTauAir.Seconds()-m.cfg.ShadowTauGround.Seconds())*airness
	if tau < 0.5 {
		tau = 0.5
	}
	// Movement decorrelates shadowing too: scale the effective rate with
	// speed over the decorrelation distance.
	rate := dt/tau + dt*st.Speed/m.cfg.DecorrDistanceM
	if rate > 1 {
		rate = 1
	}
	for i := range m.shadow {
		m.shadow[i] += -m.shadow[i]*rate + sigma*math.Sqrt(2*rate)*m.rng.NormFloat64()
	}
}

// RSRPAll advances the fading state to now and returns the received power
// (dBm) from every cell at the given UE state. The returned slice is reused
// across calls.
func (m *SignalModel) RSRPAll(now time.Duration, st flight.State, out []float64) []float64 {
	m.advance(now, st)
	out = out[:0]
	for i, bs := range m.bss {
		out = append(out, m.rsrp(i, bs, st))
	}
	return out
}

// rsrp computes one cell's received power.
func (m *SignalModel) rsrp(i int, bs BS, st flight.State) float64 {
	dx, dy := st.X-bs.X, st.Y-bs.Y
	d2 := math.Hypot(dx, dy)
	if d2 < 10 {
		d2 = 10
	}
	dz := st.Alt - bs.Height
	d3 := math.Hypot(d2, dz)
	dKm := d3 / 1000

	// Line-of-sight probability rises with altitude; the urban ground is
	// mostly obstructed, the rural ground often open.
	pLoS := 0.15
	if m.env == Rural {
		pLoS = 0.5
	}
	airness := st.Alt / 120
	if airness > 1 {
		airness = 1
	}
	pLoS += (0.95 - pLoS) * airness

	plLoS := 103.4 + 24.2*math.Log10(math.Max(dKm, 0.01))
	plNLoS := 131.1 + 42.8*math.Log10(math.Max(dKm, 0.01))
	pl := pLoS*plLoS + (1-pLoS)*plNLoS

	// Vertical antenna pattern: boresight is DownTiltDeg below the horizon.
	elev := math.Atan2(dz, d2) * 180 / math.Pi
	off := (elev + m.cfg.DownTiltDeg) / m.cfg.VerticalHPBWDeg
	att := 12 * off * off
	if att > m.cfg.SideLobeFloorDB {
		att = m.cfg.SideLobeFloorDB
	}

	return m.cfg.TxPowerDBm - pl - att + m.shadow[i]
}
