package cell

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rpivideo/internal/flight"
	"rpivideo/internal/obs"
)

const testEpoch = 100 * time.Millisecond

// twoCells is a shared map with deliberately non-index IDs, so any place
// that leaks a deployment index instead of a BS ID fails loudly.
func twoCells() []BS {
	return []BS{
		{ID: 7, X: 0, Y: 0, Height: 30},
		{ID: 42, X: 10000, Y: 0, Height: 30},
	}
}

func TestContendLoneUAVFullRate(t *testing.T) {
	tl := make([]AttachSample, 20)
	for k := range tl {
		tl[k] = AttachSample{Cell: 0, RSRP: -70}
	}
	ct := Contend([][]AttachSample{tl}, twoCells(), SchedRR, 0.25, testEpoch, true)
	for k, sh := range ct.Shares[0] {
		if sh != 1 {
			t.Fatalf("lone UAV share at epoch %d = %v, want exactly 1", k, sh)
		}
	}
	if ct.MinShare != 1 || ct.OverloadEpochs != 0 || ct.PeakUsers != 1 {
		t.Errorf("lone UAV contention = min %v, overload %d, peak %d; want 1, 0, 1", ct.MinShare, ct.OverloadEpochs, ct.PeakUsers)
	}
	if ct.Attaches != 1 || ct.Detaches != 0 {
		t.Errorf("attaches/detaches = %d/%d, want 1/0", ct.Attaches, ct.Detaches)
	}
	if len(ct.Events) != 1 || ct.Events[0].Kind != obs.KindCellAttach || ct.Events[0].Aux != 7 {
		t.Errorf("events = %+v, want one attach to cell ID 7", ct.Events)
	}
}

// TestContendStatsAndEvents hand-drives two UEs through a shared pair of
// cells and checks shares, stats and the event timeline report BS IDs.
func TestContendStatsAndEvents(t *testing.T) {
	// UE0: cell 0 for all 4 epochs. UE1: unattached, cell 0, cell 0, cell 1.
	tls := [][]AttachSample{
		{{0, -70}, {0, -70}, {0, -70}, {0, -70}},
		{{-1, math.Inf(-1)}, {0, -70}, {0, -70}, {1, -80}},
	}
	ct := Contend(tls, twoCells(), SchedRR, 0.25, testEpoch, true)

	wantShares := [][]float64{
		{1, 0.5, 0.5, 1},
		{1, 0.5, 0.5, 1}, // epoch 0 unattached → neutral share 1; epoch 3 lone on cell 1
	}
	for u := range wantShares {
		for k, want := range wantShares[u] {
			if got := ct.Shares[u][k]; got != want {
				t.Errorf("share[%d][%d] = %v, want %v", u, k, got, want)
			}
		}
	}
	if ct.Attaches != 3 || ct.Detaches != 1 {
		t.Errorf("attaches/detaches = %d/%d, want 3/1", ct.Attaches, ct.Detaches)
	}
	if ct.Cells[0].Cell != 7 || ct.Cells[1].Cell != 42 {
		t.Fatalf("cell stats carry %d/%d, want BS IDs 7/42", ct.Cells[0].Cell, ct.Cells[1].Cell)
	}
	if ct.Cells[0].PeakUsers != 2 || ct.Cells[0].UserEpochs != 6 || ct.Cells[1].UserEpochs != 1 {
		t.Errorf("cell stats = %+v", ct.Cells)
	}
	if got := ct.Cells[0].MeanShare(); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Errorf("cell 0 mean share = %v, want 2/3", got)
	}

	// Event timeline: attach(UE0→7)@0, attach(UE1→7)@e1, detach(UE1,7) and
	// attach(UE1→42)@e3, all reporting BS IDs.
	type edge struct {
		kind obs.Kind
		seq  int64
		aux  int64
		at   time.Duration
	}
	want := []edge{
		{obs.KindCellAttach, 0, 7, 0},
		{obs.KindCellAttach, 1, 7, testEpoch},
		{obs.KindCellDetach, 1, 7, 3 * testEpoch},
		{obs.KindCellAttach, 1, 42, 3 * testEpoch},
	}
	if len(ct.Events) != len(want) {
		t.Fatalf("got %d events %+v, want %d", len(ct.Events), ct.Events, len(want))
	}
	for i, w := range want {
		ev := ct.Events[i]
		if ev.Kind != w.kind || ev.Seq != w.seq || ev.Aux != w.aux || ev.T != w.at {
			t.Errorf("event %d = %+v, want %+v", i, ev, w)
		}
	}
	if ct.ShareHist.Count != 7 { // 7 attached user-epochs
		t.Errorf("share hist count = %d, want 7", ct.ShareHist.Count)
	}
}

func TestContendOverload(t *testing.T) {
	// Five UEs camp on cell 0 for 3 epochs; all but UE0 leave afterwards.
	// RR share 0.2 < 0.25 ⇒ the first 3 epochs are overloaded.
	tls := make([][]AttachSample, 5)
	for u := range tls {
		tls[u] = make([]AttachSample, 5)
		for k := range tls[u] {
			if k >= 3 && u != 0 {
				tls[u][k] = AttachSample{Cell: -1, RSRP: math.Inf(-1)}
			} else {
				tls[u][k] = AttachSample{Cell: 0, RSRP: -70}
			}
		}
	}
	ct := Contend(tls, twoCells(), SchedRR, 0.25, testEpoch, true)
	if ct.OverloadEpochs != 3 || ct.Cells[0].OverloadEpochs != 3 {
		t.Errorf("overload epochs = %d (cell: %d), want 3", ct.OverloadEpochs, ct.Cells[0].OverloadEpochs)
	}
	if ct.PeakUsers != 5 || ct.MinShare != 0.2 {
		t.Errorf("peak %d min-share %v, want 5 and 0.2", ct.PeakUsers, ct.MinShare)
	}
	var start, end int
	for _, ev := range ct.Events {
		switch ev.Kind {
		case obs.KindCellOverloadStart:
			start++
			if ev.Seq != 7 || ev.Aux != 5 || ev.V != 0.2 {
				t.Errorf("overload-start = %+v, want cell 7, 5 users, min share 0.2", ev)
			}
		case obs.KindCellOverloadEnd:
			end++
			if ev.Seq != 7 {
				t.Errorf("overload-end on cell %d, want 7", ev.Seq)
			}
			if ev.T != 3*testEpoch {
				t.Errorf("overload-end at %v, want %v", ev.T, 3*testEpoch)
			}
		}
	}
	if start != 1 || end != 1 {
		t.Errorf("overload transitions = %d starts, %d ends, want 1/1", start, end)
	}
}

// TestContendConservationRandomized is the invariant battery over random
// fleets: regroup the emitted shares per cell per epoch and check the PRB
// conservation sum, the lone-UE identity and the neutral unattached share.
func TestContendConservationRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cells := []BS{{ID: 3}, {ID: 11}, {ID: 29}, {ID: 31}}
	for trial := 0; trial < 50; trial++ {
		nUE := 1 + rng.Intn(24)
		nEp := 1 + rng.Intn(30)
		tls := make([][]AttachSample, nUE)
		for u := range tls {
			tls[u] = make([]AttachSample, nEp)
			cur := rng.Intn(len(cells)+1) - 1 // -1 = starts unattached
			for k := range tls[u] {
				if rng.Float64() < 0.1 {
					cur = rng.Intn(len(cells)+1) - 1
				}
				if cur < 0 {
					tls[u][k] = AttachSample{Cell: -1, RSRP: math.Inf(-1)}
				} else {
					tls[u][k] = AttachSample{Cell: cur, RSRP: -110 + rng.Float64()*60}
				}
			}
		}
		for _, kind := range []SchedulerKind{SchedRR, SchedPF} {
			ct := Contend(tls, cells, kind, 0.25, testEpoch, false)
			for k := 0; k < nEp; k++ {
				sums := make([]float64, len(cells))
				users := make([]int, len(cells))
				for u := 0; u < nUE; u++ {
					c := tls[u][k].Cell
					sh := ct.Shares[u][k]
					if c < 0 {
						if sh != 1 {
							t.Fatalf("trial %d %v: unattached UE %d epoch %d share %v, want 1", trial, kind, u, k, sh)
						}
						continue
					}
					if sh <= 0 || sh > 1 {
						t.Fatalf("trial %d %v: share[%d][%d] = %v outside (0,1]", trial, kind, u, k, sh)
					}
					sums[c] += sh
					users[c]++
				}
				for c := range sums {
					if sums[c] > 1+1e-9 {
						t.Fatalf("trial %d %v: cell %d epoch %d shares sum to %v > 1", trial, kind, c, k, sums[c])
					}
					if users[c] == 1 && sums[c] != 1 {
						t.Fatalf("trial %d %v: lone UE on cell %d epoch %d got %v, want exactly 1", trial, kind, c, k, sums[c])
					}
				}
			}
		}
	}
}

// zeroShadowConfig strips all randomness from the signal model so handover
// geometry is exactly the path-loss geometry.
func zeroShadowConfig() SignalConfig {
	cfg := DefaultSignalConfig()
	cfg.ShadowSigmaGroundDB = 0
	cfg.ShadowSigmaAirDB = 0
	return cfg
}

// TestHandoverEventsReportCellIDs is the regression test for the latent
// single-user assumption the fleet refactor fixed: handover events used to
// report rsrps slice indices, which only coincide with cell IDs for
// privately drawn deployments. With an injected shared map whose IDs are
// not 0..n-1, From/To must still be the BS IDs.
func TestHandoverEventsReportCellIDs(t *testing.T) {
	bss := twoCells()
	rng := rand.New(rand.NewSource(5))
	model := NewSignalModel(Urban, bss, zeroShadowConfig(), rng)
	m := NewMachine(model, DefaultHandoverConfig(), false, rng)

	// Teleport the UE from on top of cell index 0 (ID 7) to on top of cell
	// index 1 (ID 42): the A3 condition holds immediately and fires after
	// the time-to-trigger.
	pos := func(now time.Duration) flight.State {
		if now < time.Second {
			return flight.State{X: 0, Y: 50}
		}
		return flight.State{X: 10000, Y: 50}
	}
	for now := time.Duration(0); now < 5*time.Second; now += m.cfg.MeasurementInterval {
		m.Step(now, pos(now))
	}
	evs := m.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d handover events, want 1", len(evs))
	}
	if evs[0].From != 7 || evs[0].To != 42 {
		t.Errorf("handover From/To = %d/%d, want BS IDs 7/42", evs[0].From, evs[0].To)
	}
	if m.Serving() != 1 {
		t.Errorf("Serving() = %d, want deployment index 1", m.Serving())
	}
	if m.ServingCellID() != 42 {
		t.Errorf("ServingCellID() = %d, want 42", m.ServingCellID())
	}
}

// TestRLFEventsReportCellIDs: same regression for the RLF path — From and
// the re-establishment To must be BS IDs, not indices.
func TestRLFEventsReportCellIDs(t *testing.T) {
	bss := twoCells()
	rng := rand.New(rand.NewSource(5))
	model := NewSignalModel(Urban, bss, zeroShadowConfig(), rng)
	cfg := DefaultHandoverConfig()
	cfg.RLF = DefaultRLFConfig()
	cfg.RLF.QoutDBm = 200 // always out-of-sync
	cfg.RLF.QinDBm = 201
	m := NewMachine(model, cfg, false, rng)

	for now := time.Duration(0); now < 30*time.Second; now += cfg.MeasurementInterval {
		m.Step(now, flight.State{X: 0, Y: 50})
	}
	rlfs := m.RLFEvents()
	if len(rlfs) == 0 {
		t.Fatal("no RLF declared despite permanent out-of-sync")
	}
	for i, ev := range rlfs {
		if ev.From != 7 {
			t.Errorf("RLF %d From = %d, want BS ID 7", i, ev.From)
		}
		if ev.To != -1 && ev.To != 7 && ev.To != 42 {
			t.Errorf("RLF %d To = %d, want -1 or a BS ID", i, ev.To)
		}
	}
	// The UE stays camped next to cell ID 7, so at least one completed
	// re-establishment must have re-attached there.
	reattached := false
	for _, ev := range rlfs {
		if ev.To == 7 {
			reattached = true
		}
	}
	if !reattached {
		t.Error("no re-establishment reported BS ID 7 as its target")
	}
}
