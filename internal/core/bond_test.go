package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rpivideo/internal/bond"
	"rpivideo/internal/cell"
	"rpivideo/internal/fault"
)

// bondFingerprint extends faultFingerprint with every bonding field so
// bonded runs can be compared byte-for-byte across worker counts.
func bondFingerprint(r *Result) string {
	var sb strings.Builder
	sb.WriteString(faultFingerprint(r))
	fmt.Fprintf(&sb, "bond=%s switches=%d down=%d up=%d late=%d forced=%d dups=%d\n",
		r.BondPolicy, r.BondSwitches, r.BondPathDownEvents, r.BondPathUpEvents,
		r.BondReorderLate, r.BondReorderForced, r.MultipathDuplicates)
	for i, p := range r.BondPaths {
		fmt.Fprintf(&sb, "path%d=%+v\n", i, p)
	}
	return sb.String()
}

// bondedConfig scripts a primary-path blackout with RLF so the health
// monitor has something to fail over from.
func bondedConfig(p bond.Policy) Config {
	return Config{
		Env: cell.Urban, Air: true, CC: CCGCC, Seed: 42, Duration: 30 * time.Second,
		Bond: bond.Config{Policy: p},
		Faults: fault.Config{
			Windows: []fault.Window{
				{Start: 10 * time.Second, Duration: 2 * time.Second, Dir: fault.Both, Path: fault.PathPrimary},
			},
			RLF:              true,
			Watchdog:         true,
			KeyframeRecovery: true,
		},
	}
}

// TestBondDeterministicAcrossWorkers: every scheduler policy must reproduce
// byte-identically — health events, failovers, reorder releases and per-path
// counters included — serially and at any campaign worker count.
func TestBondDeterministicAcrossWorkers(t *testing.T) {
	for _, p := range bond.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			cfg := bondedConfig(p)
			const runs = 2
			serial, serr := RunCampaignWithOptions(cfg, runs, CampaignOptions{Workers: 1})
			par, perr := RunCampaignWithOptions(cfg, runs, CampaignOptions{Workers: 4})
			for i := 0; i < runs; i++ {
				if serr[i] != nil || perr[i] != nil {
					t.Fatalf("run %d errored: serial %v, parallel %v", i, serr[i], perr[i])
				}
				a, b := bondFingerprint(serial[i]), bondFingerprint(par[i])
				if a != b {
					t.Errorf("bonded run %d differs between serial and parallel:\n--- serial ---\n%s--- parallel ---\n%s", i, a, b)
				}
			}
			if a, b := bondFingerprint(Run(cfg)), bondFingerprint(Run(cfg)); a != b {
				t.Errorf("bonded run not reproducible:\n--- first ---\n%s--- second ---\n%s", a, b)
			}
		})
	}
}

// TestBondFailoverReacts: a failover run through a primary blackout must
// actually switch paths, record the health events, and keep both path
// stat rows populated.
func TestBondFailoverReacts(t *testing.T) {
	r := Run(bondedConfig(bond.PolicyFailover))
	if r.BondPolicy != "failover" {
		t.Fatalf("BondPolicy = %q, want failover", r.BondPolicy)
	}
	if r.BondSwitches < 1 {
		t.Errorf("no failover switches through a 2 s primary blackout")
	}
	if r.BondPathDownEvents < 1 || r.BondPathUpEvents < 1 {
		t.Errorf("health events not recorded: down=%d up=%d", r.BondPathDownEvents, r.BondPathUpEvents)
	}
	if len(r.BondPaths) != bond.NumPaths {
		t.Fatalf("BondPaths has %d rows, want %d", len(r.BondPaths), bond.NumPaths)
	}
	for i, p := range r.BondPaths {
		if p.Sent == 0 {
			t.Errorf("path %d sent nothing (probing should keep idle paths warm): %+v", i, p)
		}
	}
	if r.BondPaths[0].DownMs <= 0 {
		t.Errorf("primary path recorded no downtime through its blackout: %+v", r.BondPaths[0])
	}
}

// TestBondDuplicateMatchesLegacyMultipath: Multipath:true is a compat alias
// for the duplicate policy — the two spellings must be byte-identical.
func TestBondDuplicateMatchesLegacyMultipath(t *testing.T) {
	legacy := bondedConfig(bond.PolicyNone)
	legacy.Multipath = true
	alias := bondedConfig(bond.PolicyDuplicate)
	a, b := bondFingerprint(Run(legacy)), bondFingerprint(Run(alias))
	if a != b {
		t.Errorf("legacy Multipath differs from Bond duplicate:\n--- legacy ---\n%s--- duplicate ---\n%s", a, b)
	}
	r := Run(alias)
	if r.MultipathDuplicates == 0 {
		t.Error("duplicate policy suppressed no copies")
	}
	var suppressed int64
	for _, p := range r.BondPaths {
		suppressed += p.Suppressed
	}
	if int(suppressed) != r.MultipathDuplicates {
		t.Errorf("MultipathDuplicates = %d, per-path Suppressed sums to %d", r.MultipathDuplicates, suppressed)
	}
}
