// Package core assembles the complete measurement pipeline of the paper —
// mobility, radio access, link emulation, RTP transport with congestion
// control, and the video pipeline — into runnable flight experiments, and
// aggregates the metrics every figure and table of the evaluation needs.
package core

import (
	"fmt"
	"time"

	"rpivideo/internal/bond"
	"rpivideo/internal/cell"
	"rpivideo/internal/fault"
	"rpivideo/internal/repair"
)

// CCKind selects the rate-control regime (§3.2: static, GCC or SCReAM).
type CCKind int

// Rate-control regimes.
const (
	CCStatic CCKind = iota
	CCGCC
	CCSCReAM
)

// String implements fmt.Stringer.
func (k CCKind) String() string {
	switch k {
	case CCGCC:
		return "gcc"
	case CCSCReAM:
		return "scream"
	default:
		return "static"
	}
}

// Workload selects the traffic the experiment carries.
type Workload int

// Workloads.
const (
	// WorkloadVideo is the RTP video stream (the main campaign).
	WorkloadVideo Workload = iota
	// WorkloadPing is the ICMP-like probe stream of Fig. 13 (no cross
	// traffic).
	WorkloadPing
)

// Config describes one measurement run.
type Config struct {
	// Env and Op pick the environment and operator (§3.1).
	Env cell.Environment
	Op  cell.Operator
	// Air selects the aerial campaign (UAV trajectory) versus the ground
	// one (motorbike profile).
	Air bool
	// CC is the rate-control regime for video workloads.
	CC CCKind
	// StaticRate is the constant bitrate for CCStatic; zero selects the
	// paper's per-environment choice (25 Mbps urban, 8 Mbps rural).
	StaticRate float64
	// Workload defaults to WorkloadVideo.
	Workload Workload
	// Seed drives all randomness; a (Config, Seed) pair reproduces
	// bit-identically.
	Seed int64
	// Duration overrides the mobility profile duration when non-zero.
	Duration time.Duration

	// ScreamAckWindow overrides the RFC 8888 feedback window (§4.2.1
	// ablation); zero keeps the library default of 64.
	ScreamAckWindow int
	// ScreamFeedbackInterval overrides the RFC 8888 report cadence (10 ms
	// when zero). The §4.2.1 defect arithmetic — more packets arriving
	// between two consecutive reports than the ack window covers — is a
	// function of this cadence, the packet size and the bitrate.
	ScreamFeedbackInterval time.Duration
	// GCCTrendline selects the trendline delay estimator (modern WebRTC)
	// instead of the paper-era Kalman filter (estimator ablation).
	GCCTrendline bool
	// JitterBuffer overrides the player jitter buffer (150 ms when zero).
	JitterBuffer time.Duration
	// DropOnLatency enables the rtpjitterbuffer drop-on-latency behaviour
	// (Appendix A.4 ablation) with the given threshold.
	DropOnLatency bool
	DropThreshold time.Duration

	// KeepSeries retains full per-packet time series in the result (needed
	// for Fig. 8/9-style window analyses; memory-heavy for campaigns).
	KeepSeries bool

	// Trace enables per-run event tracing (internal/obs): every packet
	// send/receive/drop, outage window, handover, RLF, congestion-control
	// decision and frame-play lands in Result.Trace. Tracing is strictly
	// observational — it draws no randomness and schedules no events — so a
	// traced run's Result is identical to the untraced one. Off by default;
	// the disabled path costs one nil check per event site.
	Trace bool
	// TraceCap bounds the trace ring buffer in events; the ring keeps the
	// newest events and counts the overwritten ones. Zero or negative keeps
	// every event (unbounded).
	TraceCap int

	// The §5 "what could fix this" extensions, off by default:

	// DAPS switches handovers to the Dual Active Protocol Stack
	// make-before-break procedure (3GPP Rel-16): no execution gap, masked
	// pre/post-handover degradation.
	DAPS bool
	// AQM enables a CoDel queue manager on the bottleneck buffer instead
	// of the operator's deep FIFO (the bufferbloat mitigation).
	AQM bool
	// Multipath duplicates the stream over both operators' access links
	// (the multipath-transport reliability idea); the receiver plays the
	// first copy of each packet. It is the compat alias for
	// Bond.Policy = bond.PolicyDuplicate.
	Multipath bool

	// Bond arms dual-operator link bonding (internal/bond): a second radio
	// chain over the competing operator, a per-path health monitor with
	// hysteresis, the selected scheduling policy (duplicate, failover,
	// cheapest or spray) and, for striping policies, a receiver-side
	// bounded reorder buffer. The zero value disables bonding. Video
	// workloads only.
	Bond bond.Config

	// Faults arms deterministic fault injection — scripted coverage
	// outages, radio-link failures and the graceful-degradation machinery
	// they exercise (see internal/fault). The zero value disables
	// everything and leaves the calibrated campaign results untouched.
	Faults fault.Config

	// Repair arms the NACK/RTX packet-loss repair layer (internal/repair).
	// The zero value disables it and leaves the calibrated campaign
	// results untouched; set Enabled (zero fields then take the
	// calibrated defaults via WithDefaults).
	Repair repair.Config

	// Fleet-scale shared-cell fields (RunFleet, fleet.go). All zero for
	// solo runs, which keeps every calibrated result unchanged:

	// Cells injects a pre-built shared base-station map instead of drawing
	// a private per-run deployment from the "cell" stream. The fleet
	// runner gives every UAV the same slice so they contend for the same
	// cells.
	Cells []cell.BS
	// OffsetX and OffsetY translate the mobility profile's origin
	// (metres), scattering a fleet's UAVs over the shared deployment
	// instead of flying the identical track.
	OffsetX, OffsetY float64
	// CapacityShare, when non-nil, scales the media uplink's effective
	// capacity by the fleet scheduler's share for this UAV at a given sim
	// time (internal/cell.Contend). It must be a pure function of time.
	CapacityShare func(time.Duration) float64
}

// bondConfig resolves the effective bonding configuration: Bond wins when
// armed, otherwise the legacy Multipath flag maps to the duplicate policy.
func (c Config) bondConfig() bond.Config {
	if c.Bond.Enabled() {
		return c.Bond
	}
	if c.Multipath {
		return bond.Config{Policy: bond.PolicyDuplicate}
	}
	return bond.Config{}
}

// watchdogTimeout resolves the feedback-starvation threshold when the
// fault layer arms the watchdog.
func (c Config) watchdogTimeout() time.Duration {
	if c.Faults.WatchdogTimeout > 0 {
		return c.Faults.WatchdogTimeout
	}
	return 750 * time.Millisecond
}

// staticRate resolves the constant bitrate for this config.
func (c Config) staticRate() float64 {
	if c.StaticRate > 0 {
		return c.StaticRate
	}
	if c.Env == cell.Urban {
		return 25e6
	}
	return 8e6
}

// Label names the run for tables and traces.
func (c Config) Label() string {
	mode := "grd"
	if c.Air {
		mode = "air"
	}
	return fmt.Sprintf("%s-%s-%s-%s", c.Env, c.Op, mode, c.CC)
}
