package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rpivideo/internal/fault"
	"rpivideo/internal/metrics"
)

// Summary is the campaign-level aggregate of many runs' Results, built on
// metrics.Sketch instead of raw-sample concatenation: folding a run is
// O(samples of that run), but the retained state is O(buckets) — the
// footprint no longer grows with the run count, which is what lets a
// million-run campaign aggregate in constant memory (ROADMAP north star).
// Scalar counters sum, watermarks take the maximum, and the distributions
// answer the same quantile/CDF/fraction queries a merged Dist did, within
// metrics.SketchAlpha relative error (exactly, below the small-N cap).
//
// The zero value is ready to use; fold runs with AddResult in run-index
// order (Summarize and RunCampaignSummary do) so float accumulation order
// — and therefore every exported byte — is independent of scheduling.
type Summary struct {
	Config   Config // first folded run's config
	Runs     int
	Duration time.Duration

	// Distribution aggregates, mirroring Result's Dist fields.
	OWDms      metrics.Sketch
	OWDByAlt   [altBuckets]metrics.Sketch
	Goodput    metrics.Sketch
	FPS        metrics.Sketch
	PlaybackMs metrics.Sketch
	SSIM       metrics.Sketch
	RTTms      metrics.Sketch
	RTTByAlt   [altBuckets]metrics.Sketch
	JitterMs   metrics.Sketch
	RTCPRTTms  metrics.Sketch
	OutageMs   metrics.Sketch
	RecoveryMs metrics.Sketch

	// Packet accounting.
	PER                                                   float64
	PacketsSent, PacketsDelivered, PacketsLost, Overflows int
	CtrlPacketsSent, CtrlPacketsDelivered                 int
	CtrlPacketsLost                                       int

	// Radio events (counts; per-event detail stays in the per-run Results).
	Handovers        int
	RLFs             int
	HandoverFailures int

	// Video.
	Stalls        int
	StallsPerMin  float64
	FramesPlayed  int
	FramesSkipped int

	// Extensions.
	MultipathDuplicates int
	AQMDrops            int

	// Bonding (sums across runs; per-path detail collapses to totals so
	// the summary footprint stays O(1) in the run count).
	BondSwitches       int
	BondPathDownEvents int
	BondPathUpEvents   int
	BondReorderLate    int
	BondReorderForced  int
	// Per-path counters summed over runs AND paths: the campaign-level
	// overhead ratio is BondPathSent / (BondPathDelivered - BondPathSuppressed).
	BondPathSent, BondPathDelivered, BondPathLost, BondPathSuppressed int64
	BondPathDownMs                                                    float64

	// SCReAM internals.
	ScreamLosses       int
	ScreamLossesInBand int
	ScreamLossesWindow int
	ScreamDiscards     int

	// Faults.
	Outages           int
	OutageTotal       time.Duration
	StaleDrops        int
	KeyframeRequests  int
	PostOutageQueueMs float64
	FaultEpisodes     []fault.Episode

	// Repair.
	NacksSent                                                   int
	PacketsRepaired                                             int
	FramesRepaired                                              int
	RepairLate                                                  int
	RepairAbandoned                                             int
	RepairDenied                                                int
	RepairCacheMisses                                           int
	RtxBytes                                                    int
	RepairBudgetAccrued                                         float64
	RtxSent, RtxDelivered, RtxLost, RtxStaleDrops, RtxOverflows int

	// samplesFolded counts the raw distribution samples folded in — the
	// memory a Dist-based merge would have retained (×8 bytes).
	samplesFolded int64
}

// AddResult folds one run into the summary. Call in run-index order for
// byte-stable downstream output.
func (s *Summary) AddResult(r *Result) {
	if r == nil {
		return
	}
	if s.Runs == 0 {
		s.Config = r.Config
	}
	s.Runs++
	s.Duration += r.Duration

	fold := func(sk *metrics.Sketch, d *metrics.Dist) {
		sk.AddDist(d)
		s.samplesFolded += int64(d.N())
	}
	fold(&s.OWDms, &r.OWDms)
	for b := range r.OWDByAlt {
		fold(&s.OWDByAlt[b], &r.OWDByAlt[b])
	}
	fold(&s.Goodput, &r.Goodput)
	fold(&s.FPS, &r.FPS)
	fold(&s.PlaybackMs, &r.PlaybackMs)
	fold(&s.SSIM, &r.SSIM)
	fold(&s.RTTms, &r.RTTms)
	for b := range r.RTTByAlt {
		fold(&s.RTTByAlt[b], &r.RTTByAlt[b])
	}
	fold(&s.JitterMs, &r.JitterMs)
	fold(&s.RTCPRTTms, &r.RTCPRTTms)
	fold(&s.OutageMs, &r.OutageMs)
	fold(&s.RecoveryMs, &r.RecoveryMs)

	s.PacketsSent += r.PacketsSent
	s.PacketsDelivered += r.PacketsDelivered
	s.PacketsLost += r.PacketsLost
	s.Overflows += r.Overflows
	s.CtrlPacketsSent += r.CtrlPacketsSent
	s.CtrlPacketsDelivered += r.CtrlPacketsDelivered
	s.CtrlPacketsLost += r.CtrlPacketsLost
	if s.PacketsSent > 0 {
		s.PER = float64(s.PacketsLost) / float64(s.PacketsSent)
	}

	s.Handovers += len(r.Handovers)
	s.RLFs += r.RLFs
	s.HandoverFailures += r.HandoverFailures

	s.Stalls += len(r.Stalls)
	s.FramesPlayed += r.FramesPlayed
	s.FramesSkipped += r.FramesSkipped
	if s.Duration > 0 {
		s.StallsPerMin = float64(s.Stalls) / s.Duration.Minutes()
	}

	s.MultipathDuplicates += r.MultipathDuplicates
	s.AQMDrops += r.AQMDrops

	s.BondSwitches += r.BondSwitches
	s.BondPathDownEvents += r.BondPathDownEvents
	s.BondPathUpEvents += r.BondPathUpEvents
	s.BondReorderLate += r.BondReorderLate
	s.BondReorderForced += r.BondReorderForced
	for _, p := range r.BondPaths {
		s.BondPathSent += p.Sent
		s.BondPathDelivered += p.Delivered
		s.BondPathLost += p.Lost
		s.BondPathSuppressed += p.Suppressed
		s.BondPathDownMs += p.DownMs
	}

	s.ScreamLosses += r.ScreamLosses
	s.ScreamLossesInBand += r.ScreamLossesInBand
	s.ScreamLossesWindow += r.ScreamLossesWindow
	s.ScreamDiscards += r.ScreamDiscards

	s.Outages += r.Outages
	s.OutageTotal += r.OutageTotal
	s.StaleDrops += r.StaleDrops
	s.KeyframeRequests += r.KeyframeRequests
	if r.PostOutageQueueMs > s.PostOutageQueueMs {
		s.PostOutageQueueMs = r.PostOutageQueueMs
	}
	s.FaultEpisodes = append(s.FaultEpisodes, r.FaultEpisodes...)

	s.NacksSent += r.NacksSent
	s.PacketsRepaired += r.PacketsRepaired
	s.FramesRepaired += r.FramesRepaired
	s.RepairLate += r.RepairLate
	s.RepairAbandoned += r.RepairAbandoned
	s.RepairDenied += r.RepairDenied
	s.RepairCacheMisses += r.RepairCacheMisses
	s.RtxBytes += r.RtxBytes
	s.RepairBudgetAccrued += r.RepairBudgetAccrued
	s.RtxSent += r.RtxSent
	s.RtxDelivered += r.RtxDelivered
	s.RtxLost += r.RtxLost
	s.RtxStaleDrops += r.RtxStaleDrops
	s.RtxOverflows += r.RtxOverflows

	recordAggregation(s)
}

// Merge folds another summary into s — the distributed-campaign
// counterpart of AddResult. Counters and durations sum, sketches merge,
// watermarks take the maximum, and the derived ratios (PER, StallsPerMin)
// are recomputed from the merged totals. Called in run-index order over
// single-run summaries it reproduces, integer-for-integer and — because
// the float folds group per run on both sides — byte-for-byte, the
// summary a serial merge of the same shards would build. s.Config keeps
// the receiver's (first non-empty) config.
func (s *Summary) Merge(o *Summary) {
	if o == nil || o.Runs == 0 {
		return
	}
	if s.Runs == 0 {
		s.Config = o.Config
	}
	s.Runs += o.Runs
	s.Duration += o.Duration

	s.OWDms.Merge(&o.OWDms)
	for b := range o.OWDByAlt {
		s.OWDByAlt[b].Merge(&o.OWDByAlt[b])
	}
	s.Goodput.Merge(&o.Goodput)
	s.FPS.Merge(&o.FPS)
	s.PlaybackMs.Merge(&o.PlaybackMs)
	s.SSIM.Merge(&o.SSIM)
	s.RTTms.Merge(&o.RTTms)
	for b := range o.RTTByAlt {
		s.RTTByAlt[b].Merge(&o.RTTByAlt[b])
	}
	s.JitterMs.Merge(&o.JitterMs)
	s.RTCPRTTms.Merge(&o.RTCPRTTms)
	s.OutageMs.Merge(&o.OutageMs)
	s.RecoveryMs.Merge(&o.RecoveryMs)

	s.PacketsSent += o.PacketsSent
	s.PacketsDelivered += o.PacketsDelivered
	s.PacketsLost += o.PacketsLost
	s.Overflows += o.Overflows
	s.CtrlPacketsSent += o.CtrlPacketsSent
	s.CtrlPacketsDelivered += o.CtrlPacketsDelivered
	s.CtrlPacketsLost += o.CtrlPacketsLost
	if s.PacketsSent > 0 {
		s.PER = float64(s.PacketsLost) / float64(s.PacketsSent)
	}

	s.Handovers += o.Handovers
	s.RLFs += o.RLFs
	s.HandoverFailures += o.HandoverFailures

	s.Stalls += o.Stalls
	s.FramesPlayed += o.FramesPlayed
	s.FramesSkipped += o.FramesSkipped
	if s.Duration > 0 {
		s.StallsPerMin = float64(s.Stalls) / s.Duration.Minutes()
	}

	s.MultipathDuplicates += o.MultipathDuplicates
	s.AQMDrops += o.AQMDrops

	s.BondSwitches += o.BondSwitches
	s.BondPathDownEvents += o.BondPathDownEvents
	s.BondPathUpEvents += o.BondPathUpEvents
	s.BondReorderLate += o.BondReorderLate
	s.BondReorderForced += o.BondReorderForced
	s.BondPathSent += o.BondPathSent
	s.BondPathDelivered += o.BondPathDelivered
	s.BondPathLost += o.BondPathLost
	s.BondPathSuppressed += o.BondPathSuppressed
	s.BondPathDownMs += o.BondPathDownMs

	s.ScreamLosses += o.ScreamLosses
	s.ScreamLossesInBand += o.ScreamLossesInBand
	s.ScreamLossesWindow += o.ScreamLossesWindow
	s.ScreamDiscards += o.ScreamDiscards

	s.Outages += o.Outages
	s.OutageTotal += o.OutageTotal
	s.StaleDrops += o.StaleDrops
	s.KeyframeRequests += o.KeyframeRequests
	if o.PostOutageQueueMs > s.PostOutageQueueMs {
		s.PostOutageQueueMs = o.PostOutageQueueMs
	}
	s.FaultEpisodes = append(s.FaultEpisodes, o.FaultEpisodes...)

	s.NacksSent += o.NacksSent
	s.PacketsRepaired += o.PacketsRepaired
	s.FramesRepaired += o.FramesRepaired
	s.RepairLate += o.RepairLate
	s.RepairAbandoned += o.RepairAbandoned
	s.RepairDenied += o.RepairDenied
	s.RepairCacheMisses += o.RepairCacheMisses
	s.RtxBytes += o.RtxBytes
	s.RepairBudgetAccrued += o.RepairBudgetAccrued
	s.RtxSent += o.RtxSent
	s.RtxDelivered += o.RtxDelivered
	s.RtxLost += o.RtxLost
	s.RtxStaleDrops += o.RtxStaleDrops
	s.RtxOverflows += o.RtxOverflows

	s.samplesFolded += o.samplesFolded
	recordAggregation(s)
}

// GoodputMean returns the mean per-second goodput in Mbps.
func (s *Summary) GoodputMean() float64 { return s.Goodput.Mean() }

// HandoverRate returns handovers per second of aggregated flight time.
func (s *Summary) HandoverRate() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Handovers) / s.Duration.Seconds()
}

// SamplesFolded returns how many raw distribution samples have been folded
// into the summary — the count a Dist-based merge would retain.
func (s *Summary) SamplesFolded() int64 { return s.samplesFolded }

// RetainedBytes estimates the summary's distribution payload: the sum of
// its sketches' retained bytes.
func (s *Summary) RetainedBytes() int {
	total := s.OWDms.RetainedBytes() + s.Goodput.RetainedBytes() +
		s.FPS.RetainedBytes() + s.PlaybackMs.RetainedBytes() +
		s.SSIM.RetainedBytes() + s.RTTms.RetainedBytes() +
		s.JitterMs.RetainedBytes() + s.RTCPRTTms.RetainedBytes() +
		s.OutageMs.RetainedBytes() + s.RecoveryMs.RetainedBytes()
	for b := range s.OWDByAlt {
		total += s.OWDByAlt[b].RetainedBytes() + s.RTTByAlt[b].RetainedBytes()
	}
	return total
}

// Summarize folds per-run results (in slice order, which campaign engines
// produce in run-index order) into a Summary. Nil results — failed runs —
// are skipped.
func Summarize(results []*Result) *Summary {
	s := &Summary{}
	for _, r := range results {
		s.AddResult(r)
	}
	return s
}

// RunCampaignSummary executes a campaign like RunCampaignWithOptions but
// folds each run into a Summary as soon as its turn in run-index order
// comes, discarding the per-run Result immediately: peak memory holds the
// summary, the in-flight runs, and whatever completed out of order — not
// the whole campaign. The fold order is the run index regardless of worker
// count, so the summary (and anything exported from it) is byte-identical
// at any parallelism. Per-run panics land in the error slice, indexed by
// run, with that run simply missing from the aggregate.
func RunCampaignSummary(cfg Config, runs int, opts CampaignOptions) (*Summary, []error) {
	if runs <= 0 {
		return &Summary{}, nil
	}
	sum := &Summary{}
	errs := make([]error, runs)
	start := time.Now()
	var (
		mu        sync.Mutex
		pending   = make(map[int]*Result)
		next      int
		completed int
		simSecs   float64
	)
	done := func(i int, r *Result) {
		mu.Lock()
		defer mu.Unlock()
		pending[i] = r // nil marks a failed run so index order can advance
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			sum.AddResult(r)
			next++
		}
		completed++
		if r != nil {
			simSecs += r.Duration.Seconds()
		}
		if opts.Progress != nil {
			p := CampaignProgress{Completed: completed, Total: runs, RunIndex: i, Err: errs[i], Wall: time.Since(start)}
			if w := p.Wall.Seconds(); w > 0 {
				p.SimRate = simSecs / w
			}
			opts.Progress(p)
		}
	}
	runOne := func(i int) {
		c := cfg
		c.Seed = opts.runSeed(cfg.Seed, i)
		res, err := runGuarded(fmt.Sprintf("campaign run %d", i), opts.RunTimeout, func() *Result { return Run(c) })
		errs[i] = err
		done(i, res)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers == 1 {
		for i := 0; i < runs; i++ {
			runOne(i)
		}
		return sum, errs
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := 0; i < runs; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return sum, errs
}

// AggregationStats snapshots the process-wide campaign-aggregation
// accounting: how many runs have executed, the largest single summary's
// folded-sample count (what a Dist merge would have retained, ×8 bytes)
// and its sketch footprint. rpbench surfaces these in BENCH_campaign.json.
type AggregationStats struct {
	RunsExecuted       int64 `json:"runs_executed"`
	MaxCampaignSamples int64 `json:"max_campaign_samples"`
	MaxSketchBytes     int64 `json:"max_sketch_bytes"`
}

var (
	runsExecuted       atomic.Int64
	maxCampaignSamples atomic.Int64
	maxSketchBytes     atomic.Int64
)

// recordAggregation updates the process-wide watermarks after a fold.
func recordAggregation(s *Summary) {
	storeMax(&maxCampaignSamples, s.samplesFolded)
	storeMax(&maxSketchBytes, int64(s.RetainedBytes()))
}

func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Stats returns the process-wide aggregation statistics.
func Stats() AggregationStats {
	return AggregationStats{
		RunsExecuted:       runsExecuted.Load(),
		MaxCampaignSamples: maxCampaignSamples.Load(),
		MaxSketchBytes:     maxSketchBytes.Load(),
	}
}

// ResetStats zeroes the process-wide aggregation statistics (benchmarks and
// tests that want per-section numbers).
func ResetStats() {
	runsExecuted.Store(0)
	maxCampaignSamples.Store(0)
	maxSketchBytes.Store(0)
}
