package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/fault"
)

// faultFingerprint extends resultFingerprint with every fault-injection
// field so faulted runs can be compared byte-for-byte too.
func faultFingerprint(r *Result) string {
	var sb strings.Builder
	sb.WriteString(resultFingerprint(r))
	fmt.Fprintf(&sb, "outages=%d total=%v dist=%v\n", r.Outages, r.OutageTotal, r.OutageMs.Box())
	fmt.Fprintf(&sb, "rlfs=%d hofail=%d stale=%d kfreq=%d\n",
		r.RLFs, r.HandoverFailures, r.StaleDrops, r.KeyframeRequests)
	fmt.Fprintf(&sb, "recovery=%v postq=%.6f\n", r.RecoveryMs.Box(), r.PostOutageQueueMs)
	for _, ep := range r.FaultEpisodes {
		fmt.Fprintf(&sb, "ep=%+v\n", ep)
	}
	return sb.String()
}

func faultedConfig(cc CCKind) Config {
	return Config{
		Env: cell.Urban, Air: true, CC: cc, Seed: 77, Duration: 40 * time.Second,
		Faults: fault.Config{
			Windows: []fault.Window{
				{Start: 12 * time.Second, Duration: 2 * time.Second, Dir: fault.Both},
				{Start: 28 * time.Second, Duration: 800 * time.Millisecond, Dir: fault.Uplink},
			},
			RLF:              true,
			Watchdog:         true,
			KeyframeRecovery: true,
		},
	}
}

// TestFaultsDeterministicAcrossWorkers is the faulted twin of the campaign
// determinism lock: with scripted windows, RLF, watchdog and keyframe
// recovery all armed, a fixed seed must reproduce byte-identically — every
// fault episode included — serially and at any worker count.
func TestFaultsDeterministicAcrossWorkers(t *testing.T) {
	cfg := faultedConfig(CCGCC)
	const runs = 4
	serial, serr := RunCampaignWithOptions(cfg, runs, CampaignOptions{Workers: 1})
	par, perr := RunCampaignWithOptions(cfg, runs, CampaignOptions{Workers: 4})
	for i := 0; i < runs; i++ {
		if serr[i] != nil || perr[i] != nil {
			t.Fatalf("run %d errored: serial %v, parallel %v", i, serr[i], perr[i])
		}
		a, b := faultFingerprint(serial[i]), faultFingerprint(par[i])
		if a != b {
			t.Errorf("faulted run %d differs between serial and parallel:\n--- serial ---\n%s--- parallel ---\n%s", i, a, b)
		}
	}
	// And a direct run must be reproducible (campaigns derive per-run
	// seeds, so compare two direct runs rather than a campaign slot).
	if a, b := faultFingerprint(Run(cfg)), faultFingerprint(Run(cfg)); a != b {
		t.Errorf("faulted run not reproducible:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestScriptedOutagesRealized: the scripted windows must surface as episodes
// with the configured timing, and the degradation metrics must be populated.
func TestScriptedOutagesRealized(t *testing.T) {
	for _, cc := range []CCKind{CCStatic, CCGCC, CCSCReAM} {
		r := Run(faultedConfig(cc))
		if r.Outages < 2 {
			t.Errorf("%v: %d outages, want ≥2 (the scripted windows)", cc, r.Outages)
			continue
		}
		if r.OutageMs.N() != r.Outages {
			t.Errorf("%v: OutageMs has %d samples for %d outages", cc, r.OutageMs.N(), r.Outages)
		}
		scripted := 0
		for _, ep := range r.FaultEpisodes {
			if ep.Kind == fault.KindScripted {
				scripted++
			}
		}
		if scripted != 2 {
			t.Errorf("%v: %d scripted episodes, want 2", cc, scripted)
		}
		for i := 1; i < len(r.FaultEpisodes); i++ {
			if r.FaultEpisodes[i].Start < r.FaultEpisodes[i-1].Start {
				t.Errorf("%v: episodes not sorted: %v after %v", cc,
					r.FaultEpisodes[i].Start, r.FaultEpisodes[i-1].Start)
			}
		}
		if r.OutageTotal < 2800*time.Millisecond {
			t.Errorf("%v: OutageTotal = %v, want ≥ the 2.8 s of scripted blackout", cc, r.OutageTotal)
		}
	}
}

// TestFaultsZeroValueInert: a zero fault.Config must leave the run exactly
// as the calibrated baseline — same fingerprint, no fault metrics.
func TestFaultsZeroValueInert(t *testing.T) {
	base := Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 5, Duration: 25 * time.Second}
	r1 := Run(base)
	r2 := Run(base) // Faults is already the zero value; re-run for determinism
	if a, b := faultFingerprint(r1), faultFingerprint(r2); a != b {
		t.Errorf("baseline not reproducible:\n%s\nvs\n%s", a, b)
	}
	if r1.Outages != 0 || r1.RLFs != 0 || r1.StaleDrops != 0 ||
		r1.KeyframeRequests != 0 || len(r1.FaultEpisodes) != 0 {
		t.Errorf("zero fault config produced fault metrics: %+v", r1.FaultEpisodes)
	}
}
