package core

import (
	"io"

	"rpivideo/internal/obs"
)

// WriteCampaignTrace renders every traced run of a campaign as JSONL, in
// run-index order: one meta line per run followed by its events. Untraced
// or failed (nil) runs are skipped. Because runs are pure functions of
// (Config, Seed) and the export order is the run index, the output is
// byte-identical at any campaign worker count.
func WriteCampaignTrace(w io.Writer, results []*Result) error {
	for i, r := range results {
		if r == nil || r.Trace == nil {
			continue
		}
		if err := obs.WriteJSONL(w, TraceRunMeta(r, i), r.Trace.Events()); err != nil {
			return err
		}
	}
	return nil
}

// TraceRunMeta builds the JSONL meta header for one traced run — the same
// header WriteCampaignTrace emits, exposed so live trace consumers (the
// analyzer in particular) see exactly the metadata an offline JSONL replay
// would.
func TraceRunMeta(r *Result, runIndex int) obs.RunMeta {
	return obs.RunMeta{
		Label:    r.Config.Label(),
		Run:      runIndex,
		Seed:     r.Config.Seed,
		Duration: r.Duration,
		Events:   r.Trace.Emitted(),
		Dropped:  r.Trace.Dropped(),
	}
}

// WriteCampaignMetrics merges the per-run registries in run-index order and
// renders the campaign registry as indented JSON.
func WriteCampaignMetrics(w io.Writer, results []*Result) error {
	return CampaignMetrics(results).WriteJSON(w)
}
