package core

import (
	"time"

	"rpivideo/internal/bond"
	"rpivideo/internal/cell"
	"rpivideo/internal/fault"
	"rpivideo/internal/flight"
	"rpivideo/internal/link"
	"rpivideo/internal/obs"
	"rpivideo/internal/sim"
)

// bondTick is the bond health monitor's (and reorder buffer's) cadence.
const bondTick = 50 * time.Millisecond

// bondPaths is a bonded run's view of its radio chains: the bond manager,
// the per-path uplinks (path 0 is the primary chain Run built) and the
// receiver-side reorder buffer for striping policies (set by runVideo once
// the player exists).
type bondPaths struct {
	mgr     *bond.Manager
	uplinks [bond.NumPaths]*link.Link
	reorder *bond.Reorder
}

// setupBond builds the second radio chain over the competing operator and
// the bond manager driving both, or returns nil when the run is not
// bonded. The chain mirrors the primary's construction — same deployment,
// signal model and handover config family, its own named rng streams
// ("cell2", "uplink2") — so a bonded run stays a pure function of
// (Config, Seed). Scripted faults scope per chain: @p1 windows silence
// only the primary, @p2 only the secondary, unscoped windows (the vehicle
// sitting in a coverage hole) silence both.
func setupBond(s *sim.Simulator, cfg Config, res *Result, uplink *link.Link, hoCfg cell.HandoverConfig, stateAt func(time.Duration) flight.State, flushStale bool) *bondPaths {
	bcfg := cfg.bondConfig()
	if !bcfg.Enabled() || cfg.Workload != WorkloadVideo {
		return nil
	}
	op2 := cell.P2
	if cfg.Op == cell.P2 {
		op2 = cell.P1
	}
	rng2 := s.Stream("cell2")
	bss2 := cell.Deployment(cfg.Env, op2, rng2)
	model2 := cell.NewSignalModel(cfg.Env, bss2, cell.DefaultSignalConfigFor(cfg.Env), rng2)
	hoCfg2 := cell.DefaultHandoverConfigFor(cfg.Env)
	hoCfg2.DAPS = cfg.DAPS
	hoCfg2.RLF = hoCfg.RLF
	machine2 := cell.NewMachine(model2, hoCfg2, cfg.Air, rng2)
	s.Every(0, hoCfg2.MeasurementInterval, func() {
		machine2.Step(s.Now(), stateAt(s.Now()))
	})
	prof2 := link.ProfileFor(cfg.Env, op2)
	prof2.AQM = cfg.AQM
	uplink2 := link.New(s, prof2, machine2, stateAt, s.Stream("uplink2"))
	if res.Trace != nil {
		machine2.SetTracer(res.Trace, obs.DirUp2)
		uplink2.SetTracer(res.Trace, obs.DirUp2)
	}
	if cfg.Faults.Enabled() {
		uplink2.SetFaults(fault.NewPathLine(cfg.Faults.Windows, fault.Uplink, fault.PathSecondary), flushStale, cfg.Faults.StaleAfter)
	}

	bp := &bondPaths{mgr: bond.NewManager(bcfg), uplinks: [bond.NumPaths]*link.Link{uplink, uplink2}}
	for i := range bp.uplinks {
		l := bp.uplinks[i]
		bp.mgr.SetOutageProbe(i, l.Interrupted)
	}
	bp.mgr.OnEvent = func(ev bond.Event) {
		switch ev.Kind {
		case bond.EventPathDown:
			res.BondPathDownEvents++
			if res.Trace != nil {
				res.Trace.Emit(obs.Event{T: ev.At, Kind: obs.KindPathDown, Seq: int64(ev.Path), Aux: int64(ev.Cause)})
			}
		case bond.EventPathUp:
			res.BondPathUpEvents++
			if res.Trace != nil {
				res.Trace.Emit(obs.Event{T: ev.At, Kind: obs.KindPathUp, Seq: int64(ev.Path),
					V: float64(ev.DownFor) / float64(time.Millisecond)})
			}
		case bond.EventFailover:
			if res.Trace != nil {
				res.Trace.Emit(obs.Event{T: ev.At, Kind: obs.KindFailover, Seq: int64(ev.From), Aux: int64(ev.To)})
			}
		}
	}
	s.Every(bondTick, bondTick, func() {
		bp.mgr.Tick(s.Now())
		if bp.reorder != nil {
			bp.reorder.Tick(s.Now())
		}
	})
	return bp
}
