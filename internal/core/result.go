package core

import (
	"fmt"
	"sort"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/fault"
	"rpivideo/internal/metrics"
	"rpivideo/internal/obs"
	"rpivideo/internal/video"
)

// AltBucket labels the altitude buckets of Fig. 13.
type AltBucket int

// Altitude buckets (metres above ground).
const (
	Alt0to20 AltBucket = iota
	Alt21to60
	Alt61to100
	Alt101to140
	altBuckets
)

// String implements fmt.Stringer.
func (b AltBucket) String() string {
	switch b {
	case Alt0to20:
		return "0-20m"
	case Alt21to60:
		return "21-60m"
	case Alt61to100:
		return "61-100m"
	default:
		return "101-140m"
	}
}

// BucketFor returns the altitude bucket for a height in metres.
func BucketFor(alt float64) AltBucket {
	switch {
	case alt <= 20:
		return Alt0to20
	case alt <= 60:
		return Alt21to60
	case alt <= 100:
		return Alt61to100
	default:
		return Alt101to140
	}
}

// Telemetry log-histogram names. These live in Result.Telemetry, not in
// MetricsRegistry(), and surface on the live /metrics endpoint as
// rpivideo_<name>_bucket series.
const (
	// TelemetryFrameDelay is each played frame's encode-to-play latency (ms).
	TelemetryFrameDelay = "frame_delay_ms"
	// TelemetryQueueDelay is each served uplink packet's queueing delay (ms).
	TelemetryQueueDelay = "queue_delay_ms"
	// TelemetryNackRTT is each retransmission heal's loss-to-repair time (ms).
	TelemetryNackRTT = "nack_rtt_ms"
	// TelemetryHandoverInterruption is each committed handover's execution
	// time (ms).
	TelemetryHandoverInterruption = "handover_interruption_ms"
)

// Result aggregates one run's measurements.
type Result struct {
	Config   Config
	Duration time.Duration

	// Network-level metrics.
	OWDms                                                 metrics.Dist // one-way delay of delivered media packets (ms)
	OWDByAlt                                              [altBuckets]metrics.Dist
	Goodput                                               metrics.Dist // per-second delivered Mbps
	PER                                                   float64      // radio loss fraction
	Handovers                                             []cell.Event
	PacketsSent, PacketsDelivered, PacketsLost, Overflows int

	// Control-plane (RTCP sender report) counters on the media uplink,
	// kept apart from the media counters so PER stays media-only.
	CtrlPacketsSent, CtrlPacketsDelivered, CtrlPacketsLost int

	// Full series, populated when Config.KeepSeries is set.
	OWDSeries     *metrics.TimeSeries // (arrival time, OWD ms)
	TargetSeries  *metrics.TimeSeries // (time, target Mbps)
	GoodputSeries *metrics.TimeSeries // (second, Mbps)
	LossTimes     []time.Duration     // radio-loss instants

	// Video metrics (video workloads only).
	FPS           metrics.Dist // frames played per second samples
	PlaybackMs    metrics.Dist // playback latency per played frame (ms)
	SSIM          metrics.Dist // per-frame SSIM incl. zeros for skipped
	Stalls        []video.Stall
	StallsPerMin  float64
	FramesPlayed  int
	FramesSkipped int

	// Ping metrics (ping workloads only): RTT in ms bucketed by altitude.
	RTTByAlt [altBuckets]metrics.Dist
	RTTms    metrics.Dist

	// RTCP-derived metrics (video workloads): RFC 3550 interarrival jitter
	// sampled at each receiver report, and the sender-side RTT computed
	// from the LSR/DLSR fields.
	JitterMs  metrics.Dist
	RTCPRTTms metrics.Dist

	// MultipathDuplicates counts packets whose duplicate copy arrived after
	// the first (bonded runs only). It is derived: the sum of the per-path
	// Suppressed counters in BondPaths.
	MultipathDuplicates int

	// Bonding metrics (bonded runs only; see internal/bond).
	BondPolicy   string          // scheduling policy name
	BondPaths    []BondPathStats // per-path accounting, path 0 = primary
	BondSwitches int             // active-path changes (failover/cheapest)
	// Health-monitor transitions past the hysteresis.
	BondPathDownEvents, BondPathUpEvents int
	// Reorder-buffer outcomes (striping policies only): packets dropped as
	// too late, and forced releases (deadline or cap) past a gap.
	BondReorderLate   int
	BondReorderForced int
	// AQMDrops counts CoDel head drops on the uplink (AQM runs only).
	AQMDrops int

	// SCReAM-internal counters (zero for other controllers).
	ScreamLosses       int
	ScreamLossesInBand int
	ScreamLossesWindow int
	ScreamDiscards     int

	// Ramp-up: first time the controller target reached 99% of MaxRate
	// (zero if never).
	RampUpTo25 time.Duration

	// Trace holds the run's event trace when Config.Trace is set; nil
	// otherwise. Runs are single-goroutine, so the trace is complete and
	// time-ordered when Run returns.
	Trace *obs.Tracer

	// Telemetry holds the run's live-ops log histograms (frame delay, queue
	// delay, NACK RTT, handover interruption). It is kept separate from
	// MetricsRegistry(): the campaign surface is pinned by checked-in
	// baselines and the regression gate flags any new metric as drift, while
	// this registry feeds only the live /metrics exposition. It never rides
	// the dist wire (shards serialize MetricsRegistry only), so adding it
	// cannot perturb distributed byte-identity.
	Telemetry *obs.Registry

	// Fault-injection metrics (video workloads with Config.Faults armed).
	Outages           int             // realized outage episodes
	OutageTotal       time.Duration   // summed episode length
	OutageMs          metrics.Dist    // per-episode length (ms)
	RLFs              int             // T310-expiry radio-link failures
	HandoverFailures  int             // handovers failed into re-establishment
	StaleDrops        int             // media packets flushed at re-establishment
	KeyframeRequests  int             // PLI-style requests the player issued
	RecoveryMs        metrics.Dist    // per-episode time for the target rate to return to ≥80% of its pre-outage value (ms)
	PostOutageQueueMs float64         // worst uplink queue delay within 5 s after an episode (ms)
	FaultEpisodes     []fault.Episode // the run's outage timeline

	// Repair-layer metrics (video workloads with Config.Repair enabled).
	NacksSent         int // NACK feedback packets the receiver emitted
	PacketsRepaired   int // media packets recovered by RTX before playout
	FramesRepaired    int // played frames completed by at least one RTX
	RepairLate        int // losses healed by the original arriving late
	RepairAbandoned   int // losses given up after the retry cap
	RepairDenied      int // retransmissions refused by the budget
	RepairCacheMisses int // NACKed packets the sender no longer held
	RtxBytes          int // retransmission bytes offered to the uplink
	// RepairBudgetAccrued is the cumulative byte allowance the budget
	// granted; RtxBytes ≤ RepairBudgetAccrued is the layer's hard bound.
	RepairBudgetAccrued float64
	// RTX plane counters from the uplink (conservation-checked in
	// internal/link; surfaced here for experiment shape checks).
	RtxSent, RtxDelivered, RtxLost, RtxStaleDrops, RtxOverflows int
}

// BondPathStats is one bonded path's accounting: copies routed to it,
// delivered over it (probe duplicates included), lost by its links,
// suppressed at the receiver as duplicates, and how long its health
// monitor held it down.
type BondPathStats struct {
	Sent, Delivered, Lost int64
	Suppressed            int64
	DownMs                float64
	// Up is the path's health state at run end.
	Up bool
}

// GoodputMean returns the mean per-second goodput in Mbps.
func (r *Result) GoodputMean() float64 { return r.Goodput.Mean() }

// observeSorted folds a distribution's samples into a registry histogram in
// ascending order. Sorting first makes the histogram's float Sum a pure
// function of the sample multiset, so per-run registries are byte-identical
// however the run was scheduled. Samples() hands back a fresh copy, so the
// in-place sort is safe.
func observeSorted(h *obs.Histogram, d *metrics.Dist) {
	sorted := d.Samples()
	sort.Float64s(sorted)
	for _, v := range sorted {
		h.Observe(v)
	}
}

// MetricsRegistry renders the run's aggregates as an obs.Registry: counters
// for packet/frame/fault tallies, gauges for worst-case watermarks, and
// fixed-layout histograms for every distribution. Registries from the runs
// of one campaign merge with (*obs.Registry).Merge in run-index order.
func (r *Result) MetricsRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Add("packets_sent", int64(r.PacketsSent))
	reg.Add("packets_delivered", int64(r.PacketsDelivered))
	reg.Add("packets_lost", int64(r.PacketsLost))
	reg.Add("packets_overflow", int64(r.Overflows))
	reg.Add("aqm_drops", int64(r.AQMDrops))
	reg.Add("stale_drops", int64(r.StaleDrops))
	reg.Add("ctrl_packets_sent", int64(r.CtrlPacketsSent))
	reg.Add("ctrl_packets_delivered", int64(r.CtrlPacketsDelivered))
	reg.Add("ctrl_packets_lost", int64(r.CtrlPacketsLost))
	reg.Add("handovers", int64(len(r.Handovers)))
	reg.Add("rlfs", int64(r.RLFs))
	reg.Add("handover_failures", int64(r.HandoverFailures))
	reg.Add("outages", int64(r.Outages))
	reg.Add("frames_played", int64(r.FramesPlayed))
	reg.Add("frames_skipped", int64(r.FramesSkipped))
	reg.Add("stalls", int64(len(r.Stalls)))
	reg.Add("keyframe_requests", int64(r.KeyframeRequests))
	reg.Add("multipath_duplicates", int64(r.MultipathDuplicates))
	reg.Add("nacks_sent", int64(r.NacksSent))
	reg.Add("packets_repaired", int64(r.PacketsRepaired))
	reg.Add("frames_repaired", int64(r.FramesRepaired))
	reg.Add("repair_late", int64(r.RepairLate))
	reg.Add("repair_abandoned", int64(r.RepairAbandoned))
	reg.Add("repair_denied", int64(r.RepairDenied))
	reg.Add("repair_cache_misses", int64(r.RepairCacheMisses))
	reg.Add("rtx_bytes", int64(r.RtxBytes))
	reg.Add("rtx_sent", int64(r.RtxSent))
	reg.Add("rtx_delivered", int64(r.RtxDelivered))
	reg.Add("rtx_lost", int64(r.RtxLost))
	reg.Add("rtx_stale_drops", int64(r.RtxStaleDrops))
	reg.Add("rtx_overflows", int64(r.RtxOverflows))
	if len(r.BondPaths) > 0 {
		// Bond keys exist only for bonded runs so single-path campaign
		// metrics exports stay byte-identical to the calibrated baselines.
		reg.Add("bond_switches", int64(r.BondSwitches))
		reg.Add("bond_path_down_events", int64(r.BondPathDownEvents))
		reg.Add("bond_path_up_events", int64(r.BondPathUpEvents))
		reg.Add("bond_reorder_late", int64(r.BondReorderLate))
		reg.Add("bond_reorder_forced", int64(r.BondReorderForced))
		for i, p := range r.BondPaths {
			prefix := fmt.Sprintf("bond_path%d_", i)
			reg.Add(prefix+"sent", p.Sent)
			reg.Add(prefix+"delivered", p.Delivered)
			reg.Add(prefix+"lost", p.Lost)
			reg.Add(prefix+"suppressed", p.Suppressed)
			reg.SetGauge(prefix+"down_ms", p.DownMs)
		}
	}

	reg.SetGauge("post_outage_queue_ms_max", r.PostOutageQueueMs)
	reg.SetGauge("ramp_up_ms_max", float64(r.RampUpTo25)/float64(time.Millisecond))

	observeSorted(reg.Histogram("owd_ms", obs.LatencyMsBuckets), &r.OWDms)
	observeSorted(reg.Histogram("playback_ms", obs.LatencyMsBuckets), &r.PlaybackMs)
	observeSorted(reg.Histogram("jitter_ms", obs.LatencyMsBuckets), &r.JitterMs)
	observeSorted(reg.Histogram("rtcp_rtt_ms", obs.LatencyMsBuckets), &r.RTCPRTTms)
	observeSorted(reg.Histogram("rtt_ms", obs.LatencyMsBuckets), &r.RTTms)
	observeSorted(reg.Histogram("outage_ms", obs.LatencyMsBuckets), &r.OutageMs)
	observeSorted(reg.Histogram("recovery_ms", obs.LatencyMsBuckets), &r.RecoveryMs)
	observeSorted(reg.Histogram("goodput_mbps", obs.RateMbpsBuckets), &r.Goodput)
	observeSorted(reg.Histogram("ssim", obs.SSIMBuckets), &r.SSIM)
	observeSorted(reg.Histogram("fps", obs.FPSBuckets), &r.FPS)
	return reg
}

// CampaignMetrics merges the per-run registries of a campaign in run-index
// order — the fixed fold order that makes the export byte-identical at any
// worker count.
func CampaignMetrics(results []*Result) *obs.Registry {
	out := obs.NewRegistry()
	for _, r := range results {
		if r == nil {
			continue
		}
		out.Merge(r.MetricsRegistry())
	}
	return out
}

// HandoverRate returns handovers per second.
func (r *Result) HandoverRate() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(len(r.Handovers)) / r.Duration.Seconds()
}

// Merge folds several results into combined distributions for campaign
// tables. Series are not merged.
func Merge(results []*Result) *Result {
	if len(results) == 0 {
		return &Result{}
	}
	out := &Result{Config: results[0].Config}
	var lostSum, sentSum int
	for _, r := range results {
		out.Duration += r.Duration
		out.OWDms.AddAll(&r.OWDms)
		for b := range r.OWDByAlt {
			out.OWDByAlt[b].AddAll(&r.OWDByAlt[b])
		}
		out.Goodput.AddAll(&r.Goodput)
		out.Handovers = append(out.Handovers, r.Handovers...)
		out.PacketsSent += r.PacketsSent
		out.PacketsDelivered += r.PacketsDelivered
		out.PacketsLost += r.PacketsLost
		out.Overflows += r.Overflows
		out.CtrlPacketsSent += r.CtrlPacketsSent
		out.CtrlPacketsDelivered += r.CtrlPacketsDelivered
		out.CtrlPacketsLost += r.CtrlPacketsLost
		lostSum += r.PacketsLost
		sentSum += r.PacketsSent
		out.FPS.AddAll(&r.FPS)
		out.PlaybackMs.AddAll(&r.PlaybackMs)
		out.SSIM.AddAll(&r.SSIM)
		out.Stalls = append(out.Stalls, r.Stalls...)
		out.FramesPlayed += r.FramesPlayed
		out.FramesSkipped += r.FramesSkipped
		out.RTTms.AddAll(&r.RTTms)
		for b := range r.RTTByAlt {
			out.RTTByAlt[b].AddAll(&r.RTTByAlt[b])
		}
		out.JitterMs.AddAll(&r.JitterMs)
		out.RTCPRTTms.AddAll(&r.RTCPRTTms)
		out.MultipathDuplicates += r.MultipathDuplicates
		if r.BondPolicy != "" {
			out.BondPolicy = r.BondPolicy
		}
		out.BondSwitches += r.BondSwitches
		out.BondPathDownEvents += r.BondPathDownEvents
		out.BondPathUpEvents += r.BondPathUpEvents
		out.BondReorderLate += r.BondReorderLate
		out.BondReorderForced += r.BondReorderForced
		for i, p := range r.BondPaths {
			for len(out.BondPaths) <= i {
				out.BondPaths = append(out.BondPaths, BondPathStats{})
			}
			o := &out.BondPaths[i]
			o.Sent += p.Sent
			o.Delivered += p.Delivered
			o.Lost += p.Lost
			o.Suppressed += p.Suppressed
			o.DownMs += p.DownMs
			o.Up = p.Up
		}
		out.AQMDrops += r.AQMDrops
		out.ScreamLosses += r.ScreamLosses
		out.ScreamLossesInBand += r.ScreamLossesInBand
		out.ScreamLossesWindow += r.ScreamLossesWindow
		out.ScreamDiscards += r.ScreamDiscards
		out.Outages += r.Outages
		out.OutageTotal += r.OutageTotal
		out.OutageMs.AddAll(&r.OutageMs)
		out.RLFs += r.RLFs
		out.HandoverFailures += r.HandoverFailures
		out.StaleDrops += r.StaleDrops
		out.KeyframeRequests += r.KeyframeRequests
		out.RecoveryMs.AddAll(&r.RecoveryMs)
		if r.PostOutageQueueMs > out.PostOutageQueueMs {
			out.PostOutageQueueMs = r.PostOutageQueueMs
		}
		out.FaultEpisodes = append(out.FaultEpisodes, r.FaultEpisodes...)
		out.NacksSent += r.NacksSent
		out.PacketsRepaired += r.PacketsRepaired
		out.FramesRepaired += r.FramesRepaired
		out.RepairLate += r.RepairLate
		out.RepairAbandoned += r.RepairAbandoned
		out.RepairDenied += r.RepairDenied
		out.RepairCacheMisses += r.RepairCacheMisses
		out.RtxBytes += r.RtxBytes
		out.RepairBudgetAccrued += r.RepairBudgetAccrued
		out.RtxSent += r.RtxSent
		out.RtxDelivered += r.RtxDelivered
		out.RtxLost += r.RtxLost
		out.RtxStaleDrops += r.RtxStaleDrops
		out.RtxOverflows += r.RtxOverflows
	}
	if sentSum > 0 {
		out.PER = float64(lostSum) / float64(sentSum)
	}
	if out.Duration > 0 {
		out.StallsPerMin = float64(len(out.Stalls)) / out.Duration.Minutes()
	}
	return out
}
