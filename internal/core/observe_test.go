package core

import (
	"bytes"
	"testing"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/fault"
	"rpivideo/internal/obs"
)

// traceTestConfig is a short urban GCC run with tracing on — long enough to
// exercise sends, drops, CC decisions and frame playback, short enough for
// the race detector.
func traceTestConfig() Config {
	return Config{
		Env:      cell.Urban,
		Op:       cell.P1,
		CC:       CCGCC,
		Seed:     42,
		Duration: 4 * time.Second,
		Trace:    true,
	}
}

// TestTraceSerialParallelByteIdentical is the acceptance criterion: the
// campaign trace export is byte-identical for 1 worker and 8 workers on the
// same seed.
func TestTraceSerialParallelByteIdentical(t *testing.T) {
	cfg := traceTestConfig()
	const runs = 4
	export := func(workers int) []byte {
		results, errs := RunCampaignWithOptions(cfg, runs, CampaignOptions{Workers: workers})
		for i, err := range errs {
			if err != nil {
				t.Fatalf("workers=%d run %d: %v", workers, i, err)
			}
		}
		var buf bytes.Buffer
		if err := WriteCampaignTrace(&buf, results); err != nil {
			t.Fatalf("workers=%d: WriteCampaignTrace: %v", workers, err)
		}
		return buf.Bytes()
	}
	serial := export(1)
	parallel := export(8)
	if len(serial) == 0 {
		t.Fatal("empty trace export")
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatal("trace export differs between -workers 1 and -workers 8")
	}
}

// TestCampaignMetricsWorkerInvariant is the metrics half of the same
// contract: the merged campaign registry is byte-identical at any worker
// count, because the engine folds per-run registries in run-index order.
func TestCampaignMetricsWorkerInvariant(t *testing.T) {
	cfg := traceTestConfig()
	cfg.Trace = false // metrics need no trace
	const runs = 4
	export := func(workers int) []byte {
		results, errs := RunCampaignWithOptions(cfg, runs, CampaignOptions{Workers: workers})
		for i, err := range errs {
			if err != nil {
				t.Fatalf("workers=%d run %d: %v", workers, i, err)
			}
		}
		var buf bytes.Buffer
		if err := WriteCampaignMetrics(&buf, results); err != nil {
			t.Fatalf("workers=%d: WriteCampaignMetrics: %v", workers, err)
		}
		return buf.Bytes()
	}
	serial := export(1)
	parallel := export(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("campaign metrics differ between -workers 1 and -workers 8")
	}
	if !bytes.Contains(serial, []byte(`"packets_sent"`)) || !bytes.Contains(serial, []byte(`"owd_ms"`)) {
		t.Fatalf("metrics export missing expected keys:\n%s", serial)
	}
}

// TestTracingDoesNotPerturbResults verifies the determinism contract of
// internal/obs: a traced run's measurements equal the untraced run's,
// event for event and sample for sample.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	cfg := traceTestConfig()
	traced := Run(cfg)
	cfg.Trace = false
	plain := Run(cfg)

	if traced.PacketsSent != plain.PacketsSent ||
		traced.PacketsDelivered != plain.PacketsDelivered ||
		traced.PacketsLost != plain.PacketsLost ||
		traced.Overflows != plain.Overflows {
		t.Fatalf("packet counters diverge: traced %d/%d/%d/%d plain %d/%d/%d/%d",
			traced.PacketsSent, traced.PacketsDelivered, traced.PacketsLost, traced.Overflows,
			plain.PacketsSent, plain.PacketsDelivered, plain.PacketsLost, plain.Overflows)
	}
	if traced.OWDms.N() != plain.OWDms.N() || traced.OWDms.Sum() != plain.OWDms.Sum() {
		t.Fatalf("OWD distribution diverges: traced n=%d sum=%g plain n=%d sum=%g",
			traced.OWDms.N(), traced.OWDms.Sum(), plain.OWDms.N(), plain.OWDms.Sum())
	}
	if traced.FramesPlayed != plain.FramesPlayed || traced.FramesSkipped != plain.FramesSkipped {
		t.Fatalf("frame counters diverge: traced %d/%d plain %d/%d",
			traced.FramesPlayed, traced.FramesSkipped, plain.FramesPlayed, plain.FramesSkipped)
	}
	if traced.Trace == nil || traced.Trace.Len() == 0 {
		t.Fatal("traced run produced no events")
	}
	if plain.Trace != nil {
		t.Fatal("untraced run carries a tracer")
	}
}

// TestTraceCoversSubsystems checks that one faulted run emits events from
// each instrumented layer: link sends/recvs, outage windows, CC decisions
// and frame playback.
func TestTraceCoversSubsystems(t *testing.T) {
	cfg := traceTestConfig()
	cfg.Duration = 8 * time.Second
	cfg.Faults = fault.Config{
		Windows: []fault.Window{{Start: 3 * time.Second, Duration: 1 * time.Second, Dir: fault.Both}},
	}
	res := Run(cfg)
	counts := map[obs.Kind]int{}
	lastT := time.Duration(-1)
	for _, e := range res.Trace.Events() {
		counts[e.Kind]++
		if e.T < lastT {
			t.Fatalf("trace not time-ordered: %v after %v", e.T, lastT)
		}
		lastT = e.T
	}
	for _, kind := range []obs.Kind{obs.KindSend, obs.KindRecv, obs.KindOutageStart, obs.KindOutageEnd, obs.KindCC, obs.KindFramePlay} {
		if counts[kind] == 0 {
			t.Errorf("no %v events in a faulted video run (counts: %v)", kind, counts)
		}
	}
}

// TestTraceCapRing checks that TraceCap bounds the trace to the newest
// events while the emitted/dropped accounting keeps the totals.
func TestTraceCapRing(t *testing.T) {
	cfg := traceTestConfig()
	cfg.TraceCap = 100
	res := Run(cfg)
	if res.Trace.Len() != 100 {
		t.Fatalf("ring kept %d events, want 100", res.Trace.Len())
	}
	if res.Trace.Emitted() <= 100 || res.Trace.Dropped() != res.Trace.Emitted()-100 {
		t.Fatalf("ring accounting: emitted %d dropped %d", res.Trace.Emitted(), res.Trace.Dropped())
	}
	evs := res.Trace.Events()
	if evs[0].T > evs[len(evs)-1].T {
		t.Fatal("ring events not chronological")
	}
}
