package core

import (
	"math/rand"
	"sort"
	"time"

	"rpivideo/internal/bond"
	"rpivideo/internal/cc"
	"rpivideo/internal/cell"
	"rpivideo/internal/fault"
	"rpivideo/internal/flight"
	"rpivideo/internal/gcc"
	"rpivideo/internal/link"
	"rpivideo/internal/metrics"
	"rpivideo/internal/obs"
	"rpivideo/internal/repair"
	"rpivideo/internal/rtp"
	"rpivideo/internal/scream"
	"rpivideo/internal/sim"
	"rpivideo/internal/video"
)

// feedback cadences of the two implementations the paper used.
const (
	twccInterval = 50 * time.Millisecond
	ccfbInterval = 10 * time.Millisecond
)

// Run executes one measurement run and returns its aggregated result.
func Run(cfg Config) *Result {
	runsExecuted.Add(1)
	s := sim.New(cfg.Seed)

	// Mobility.
	prof, stateAt := setupMobility(cfg, s)
	dur := cfg.Duration
	if dur == 0 {
		dur = prof.Duration()
	}

	// Radio access. A fleet run injects its shared deployment via
	// cfg.Cells; solo runs draw a private map from the "cell" stream.
	machine, hoCfg := setupRadio(cfg, s.Stream("cell"))

	res := &Result{Config: cfg, Duration: dur}
	// Live-telemetry histograms (internal/obs). These are deliberately a
	// separate registry from MetricsRegistry(): the regression gate treats a
	// metric present on only one side as drift, so folding new series into
	// the campaign surface would invalidate every checked-in baseline. All
	// four are created up front so a /metrics scrape always exposes the
	// series, even before the first observation.
	res.Telemetry = obs.NewRegistry()
	res.Telemetry.LogHistogram(TelemetryFrameDelay)
	res.Telemetry.LogHistogram(TelemetryNackRTT)
	res.Telemetry.LogHistogram(TelemetryQueueDelay)
	machine.SetInterruptionHist(res.Telemetry.LogHistogram(TelemetryHandoverInterruption))
	if cfg.Trace {
		res.Trace = obs.New(cfg.TraceCap)
		machine.SetTracer(res.Trace, obs.DirUp)
	}
	s.Every(0, hoCfg.MeasurementInterval, func() {
		if ev := machine.Step(s.Now(), stateAt(s.Now())); ev != nil {
			res.Handovers = append(res.Handovers, *ev)
		}
	})

	upProfile := link.ProfileFor(cfg.Env, cfg.Op)
	upProfile.AQM = cfg.AQM
	uplink := link.New(s, upProfile, machine, stateAt, s.Stream("uplink"))
	downlink := link.New(s, link.FeedbackProfile(), machine, stateAt, s.Stream("downlink"))
	uplink.SetQueueDelayHist(res.Telemetry.LogHistogram(TelemetryQueueDelay))
	if cfg.CapacityShare != nil {
		// The fleet scheduler's share scales the media uplink only: the
		// feedback downlink is tiny control traffic on an overprovisioned
		// bearer, so contention on it is negligible by design.
		uplink.SetCapacityShare(cfg.CapacityShare)
	}
	if res.Trace != nil {
		uplink.SetTracer(res.Trace, obs.DirUp)
		downlink.SetTracer(res.Trace, obs.DirDown)
	}
	flushStale := !cfg.Faults.FreezeQueue
	if cfg.Faults.Enabled() {
		// The primary chain takes PathAll and @p1-scoped windows; a bonded
		// run's secondary chain takes PathAll and @p2 (setupBond). With no
		// path-scoped windows this is exactly the old NewLine behaviour.
		uplink.SetFaults(fault.NewPathLine(cfg.Faults.Windows, fault.Uplink, fault.PathPrimary), flushStale, cfg.Faults.StaleAfter)
		downlink.SetFaults(fault.NewPathLine(cfg.Faults.Windows, fault.Downlink, fault.PathPrimary), flushStale, cfg.Faults.StaleAfter)
	}

	// Dual-operator bonding (internal/bond): an independent second radio
	// chain over the competing operator, a per-path health monitor and a
	// scheduling policy. nil for single-path runs.
	bp := setupBond(s, cfg, res, uplink, hoCfg, stateAt, flushStale)

	switch cfg.Workload {
	case WorkloadPing:
		runPing(s, cfg, res, uplink, downlink, stateAt, dur)
	default:
		runVideo(s, cfg, res, machine, uplink, bp, downlink, stateAt, dur)
	}

	res.PacketsSent = uplink.Sent
	res.PacketsDelivered = uplink.Delivered
	res.PacketsLost = uplink.Lost
	res.Overflows = uplink.Overflows
	res.AQMDrops = uplink.AQMDrops
	if bp != nil {
		// Bonded runs: the radio-level counters sum every path's link, so
		// sent/delivered/lost and PER describe all the copies on the air
		// (duplicate ≈ 2× the unique stream). The unique view is in
		// BondPaths: per-path Delivered − Suppressed. Feedback stays on the
		// primary chain, so the Ctrl counters below are primary-only.
		for i := 1; i < bond.NumPaths; i++ {
			l := bp.uplinks[i]
			res.PacketsSent += l.Sent
			res.PacketsDelivered += l.Delivered
			res.PacketsLost += l.Lost
			res.Overflows += l.Overflows
			res.AQMDrops += l.AQMDrops
		}
	}
	res.CtrlPacketsSent = uplink.CtrlSent
	res.CtrlPacketsDelivered = uplink.CtrlDelivered
	res.CtrlPacketsLost = uplink.CtrlLost
	if res.PacketsSent > 0 {
		res.PER = float64(res.PacketsLost) / float64(res.PacketsSent)
	}
	return res
}

// setupMobility builds the flight profile and the (possibly origin-shifted)
// state lookup. It consumes exactly the "ground" stream for ground runs and
// nothing for aerial ones; RunFleet's attachment precompute relies on that
// to replay a UAV's mobility byte-identically outside a full run.
func setupMobility(cfg Config, s *sim.Simulator) (flight.Profile, func(time.Duration) flight.State) {
	var prof flight.Profile
	if cfg.Air {
		prof = flight.StandardFlight()
	} else {
		prof = flight.GroundProfile(6*time.Minute, s.Stream("ground"))
	}
	stateAt := func(at time.Duration) flight.State { return prof.At(at) }
	if cfg.OffsetX != 0 || cfg.OffsetY != 0 {
		stateAt = func(at time.Duration) flight.State {
			st := prof.At(at)
			st.X += cfg.OffsetX
			st.Y += cfg.OffsetY
			return st
		}
	}
	return prof, stateAt
}

// setupRadio builds the deployment (unless cfg.Cells injects a shared one),
// signal model and handover machine, drawing only from cellRng. RunFleet's
// attachment precompute calls this with an identically derived stream so
// its offline handover replay consumes exactly the randomness the live run
// does — the basis of the fleet's share determinism.
func setupRadio(cfg Config, cellRng *rand.Rand) (*cell.Machine, cell.HandoverConfig) {
	bss := cfg.Cells
	if bss == nil {
		bss = cell.Deployment(cfg.Env, cfg.Op, cellRng)
	}
	model := cell.NewSignalModel(cfg.Env, bss, cell.DefaultSignalConfigFor(cfg.Env), cellRng)
	hoCfg := cell.DefaultHandoverConfigFor(cfg.Env)
	hoCfg.DAPS = cfg.DAPS
	if cfg.Faults.RLF {
		hoCfg.RLF = cell.DefaultRLFConfig()
	}
	return cell.NewMachine(model, hoCfg, cfg.Air, cellRng), hoCfg
}

// runVideo wires the RTP video pipeline and runs it to completion. bp is
// the optional bonding state (second access link, health monitor, policy).
func runVideo(s *sim.Simulator, cfg Config, res *Result, machine *cell.Machine, uplink *link.Link, bp *bondPaths, downlink *link.Link, stateAt func(time.Duration) flight.State, dur time.Duration) {
	faultsOn := cfg.Faults.Enabled()
	watchdog := faultsOn && cfg.Faults.Watchdog
	var ctrl cc.Controller
	switch cfg.CC {
	case CCGCC:
		gcfg := gcc.Config{UseTrendline: cfg.GCCTrendline}
		if watchdog {
			gcfg.FeedbackTimeout = cfg.watchdogTimeout()
		}
		ctrl = gcc.New(gcfg)
	case CCSCReAM:
		sccfg := scream.Config{}
		if watchdog {
			sccfg.FeedbackTimeout = cfg.watchdogTimeout()
		}
		ctrl = scream.New(sccfg)
	default:
		ctrl = cc.NewStatic(cfg.staticRate())
	}
	if res.Trace != nil {
		if tc, ok := ctrl.(cc.Traceable); ok {
			tc.SetTracer(res.Trace)
		}
	}
	// rawCtrl is the concrete controller for the type-asserted extensions
	// (RepairAware, the SCReAM counters); bonded runs wrap the rate queries
	// so the encoder target also honors the aggregate path budget.
	rawCtrl := ctrl
	if bp != nil {
		ctrl = cc.NewBonded(ctrl, bp.mgr.Budget)
	}

	scfg := video.DefaultSenderConfig()
	snd := video.NewSender(s, scfg, ctrl, s.Stream("encoder"))
	pcfg := video.DefaultPlayerConfig()
	if cfg.JitterBuffer > 0 {
		pcfg.JitterBuffer = cfg.JitterBuffer
	}
	if cfg.CC == CCSCReAM {
		// Reproduce the player pathology the paper observed with SCReAM at
		// high bitrates (§4.2.2).
		pcfg.LatchQuirk = true
	}
	if cfg.DropOnLatency {
		pcfg.DropOnLatency = true
		pcfg.DropThreshold = cfg.DropThreshold
		if pcfg.DropThreshold == 0 {
			pcfg.DropThreshold = pcfg.JitterBuffer + 100*time.Millisecond
		}
	}
	if faultsOn && cfg.Faults.KeyframeRecovery {
		pcfg.KeyframeRecovery = true
	}
	pl := video.NewPlayer(s, pcfg, video.DefaultSSIMModel(), snd.FrameEncoding)
	pl.SetLatencyHist(res.Telemetry.LogHistogram(TelemetryFrameDelay))
	if res.Trace != nil {
		pl.SetTracer(res.Trace)
	}
	if pcfg.KeyframeRecovery {
		// The receiver's PLI rides the feedback path: it reaches the sender
		// only if the downlink is alive, as a real keyframe request would.
		pl.KeyframeRequest = func() { downlink.Send(kfRequest{}, 40) }
	}

	// The NACK/RTX repair layer (internal/repair): receiver-side loss
	// detector, sender-side retransmission cache and repair budget. All
	// three are driven from this function's clock and callbacks; the
	// package schedules nothing itself, so the disabled path leaves the
	// calibrated runs untouched.
	var (
		det       *repair.Detector
		rtxCache  *repair.Cache
		rtxBudget *repair.Budget
		rcfg      repair.Config
		rtxSeq    uint16
	)
	if cfg.Repair.Enabled {
		rcfg = cfg.Repair.WithDefaults()
		det = repair.NewDetector(rcfg)
		rtxCache = repair.NewCache(rcfg)
		rtxBudget = repair.NewBudget(rcfg)
		det.SetNackRTTHist(res.Telemetry.LogHistogram(TelemetryNackRTT))
		if res.Trace != nil {
			det.SetTracer(res.Trace)
		}
		// Account repair spend against the media target so media plus RTX
		// together honor the congested rate (cc.RepairAware).
		if ra, ok := rawCtrl.(cc.RepairAware); ok {
			ra.SetRepairSpend(rtxBudget.SpendRate)
		}
	}

	snd.Transmit = func(p *rtp.Packet, size int) {
		if rtxCache != nil {
			rtxCache.Store(p, s.Now())
		}
		if bp == nil {
			uplink.Send(p, size)
			return
		}
		set := bp.mgr.Route(s.Now(), size)
		for i := 0; i < bond.NumPaths; i++ {
			if set.Has(i) {
				bp.uplinks[i].Send(p, size)
			}
		}
	}

	if det != nil {
		// Receiver-side NACK scheduler: losses past the reorder tolerance
		// whose (backed-off) retry timer has expired are batched into one
		// RFC 4585 Generic NACK on the feedback path.
		s.Every(rcfg.TickInterval, rcfg.TickInterval, func() {
			seqs := det.Tick(s.Now())
			if len(seqs) == 0 {
				return
			}
			n := &rtp.NACK{SenderSSRC: 1, MediaSSRC: scfg.SSRC, Pairs: rtp.NackPairs(seqs)}
			buf, err := n.Marshal()
			if err != nil {
				return
			}
			res.NacksSent++
			if res.Trace != nil {
				res.Trace.Emit(obs.Event{T: s.Now(), Kind: obs.KindNack, Dir: obs.DirDown,
					Flags: obs.FlagCtrl, Seq: int64(seqs[0]), Aux: int64(len(seqs))})
			}
			downlink.Send(nackBuf(buf), len(buf))
		})
	}

	// RFC 3550 sender/receiver reports, as the paper's pipeline logs them:
	// the sender emits an SR once per second on the media path; the
	// receiver answers with an RR carrying loss, extended-highest, the
	// §A.8 interarrival jitter and the LSR/DLSR pair the sender turns into
	// an RTT sample.
	recStats := rtp.NewReceptionStats(scfg.SSRC, rtp.VideoClockRate)
	var lastSRMid uint32
	var lastSRAt time.Duration
	s.Every(time.Second, time.Second, func() {
		sr := &rtp.SenderReport{
			SSRC:        scfg.SSRC,
			NTPTime:     s.Now(),
			RTPTime:     uint32(uint64(s.Now()) * rtp.VideoClockRate / uint64(time.Second)),
			PacketCount: uint32(snd.PacketsSent),
			OctetCount:  uint32(snd.BytesSent),
		}
		if buf, err := sr.Marshal(); err == nil {
			// Control-plane send: the SR shares the media bearer (loss,
			// queueing, serialization) but stays out of the media
			// Sent/Lost/Overflows so res.PER remains media-only, matching
			// the paper's §4.1 PER of 0.06–0.07%.
			uplink.SendControl(buf, len(buf))
		}
	})
	s.Every(1500*time.Millisecond, time.Second, func() {
		block := recStats.Block()
		if lastSRAt > 0 {
			block.LastSR = lastSRMid
			block.DelaySinceLastSR = uint32((s.Now() - lastSRAt) * 65536 / time.Second)
		}
		rr := &rtp.ReceiverReport{SSRC: 1, Blocks: []rtp.ReportBlock{block}}
		res.JitterMs.Add(float64(recStats.Jitter()) / float64(time.Millisecond))
		if buf, err := rr.Marshal(); err == nil {
			downlink.Send(rtcpBuf(buf), len(buf))
		}
	})

	// Receiver-side feedback generation.
	var twccRec *rtp.TWCCRecorder
	var ccfbGen *rtp.CCFBGenerator
	switch cfg.CC {
	case CCGCC:
		twccRec = rtp.NewTWCCRecorder(1, scfg.SSRC)
		s.Every(twccInterval, twccInterval, func() {
			fb := twccRec.Flush()
			if fb == nil {
				return
			}
			buf, err := fb.Marshal()
			if err != nil {
				return // e.g. delta overflow across a very long outage
			}
			downlink.Send(buf, len(buf))
		})
	case CCSCReAM:
		window := cfg.ScreamAckWindow
		if window == 0 {
			// The authors raised the Ericsson library's 64-packet window to
			// 256 for the campaign (§4.2.1); 64 remains available for the
			// ablation.
			window = 256
		}
		ccfbGen = rtp.NewCCFBGenerator(1, scfg.SSRC, window)
		interval := cfg.ScreamFeedbackInterval
		if interval == 0 {
			interval = ccfbInterval
		}
		s.Every(interval, interval, func() {
			fb := ccfbGen.Report(s.Now())
			if fb == nil {
				return
			}
			buf, err := fb.Marshal()
			if err != nil {
				return
			}
			downlink.Send(buf, len(buf))
		})
	}

	// Per-second goodput accounting and optional full series. The counter
	// is a slice indexed by arrival second (RunUntil guarantees at ≤ dur),
	// not a map: the packet path pays an add, not a hash. With multipath,
	// only the first copy of each packet counts; the duplicate is
	// discarded at the receiver.
	goodputBytes := make([]int, int(dur/time.Second)+1)
	addGoodput := func(at time.Duration, size int) {
		if sec := int(at / time.Second); sec >= 0 && sec < len(goodputBytes) {
			goodputBytes[sec] += size
		}
	}
	var owdPts []metrics.Point
	var seen *multipathDedup
	var reorder *bond.Reorder
	var suppressed [bond.NumPaths]int64
	if bp != nil {
		// Deduplication is always on for bonded runs: the duplicate policy
		// sends full copies, and every other policy still duplicates probe
		// packets onto idle paths.
		seen = newMultipathDedup()
		if bp.mgr.Policy() != bond.PolicyDuplicate {
			// Striping policies interleave paths of different latency; the
			// bounded reorder buffer re-serializes for the player. The
			// duplicate policy plays the first copy and needs none.
			bcfg := bp.mgr.Config()
			reorder = bond.NewReorder(bcfg.ReorderDeadline, bcfg.ReorderCap, func(meta interface{}, now time.Duration) {
				pl.OnPacket(meta.(*rtp.Packet), now)
			})
			reorder.OnLate = func(ext int64, now time.Duration) {
				if res.Trace != nil {
					res.Trace.Emit(obs.Event{T: now, Kind: obs.KindReorderDrop, Seq: ext})
				}
			}
			bp.reorder = reorder
		}
	}
	deliver := func(path int, meta any, size int, sentAt, at time.Duration) {
		if buf, ok := meta.([]byte); ok {
			// A sender report on the media path.
			var sr rtp.SenderReport
			if err := sr.Unmarshal(buf); err == nil {
				lastSRMid = uint32(sr.NTPTime * 65536 / time.Second)
				lastSRAt = at
			}
			return
		}
		p := meta.(*rtp.Packet)
		if det != nil && p.Header.PayloadType == rcfg.RtxPayloadType {
			// An RFC 4588 retransmission: restore the original packet and
			// hand it to the player iff its loss is still open. RTX stays
			// invisible to the congestion-control feedback (no TWCC/CCFB
			// recording) — the budget already charged it to the target.
			orig, osn, err := rtp.UnwrapRTX(p, scfg.SSRC, scfg.PayloadType)
			if err != nil || !det.OnRepair(osn, at) {
				return // malformed, duplicate, or already healed/abandoned
			}
			if seen != nil {
				seen.Mark(osn)
			}
			addGoodput(at, size)
			pl.OnRepairedPacket(orig, at)
			return
		}
		if bp != nil {
			// Per-path health observation (delivery RTT, loss decay, rate),
			// fed pre-dedup so probe duplicates keep an idle path's
			// estimate warm.
			bp.mgr.ObserveDelivery(path, at-sentAt, size)
		}
		var ext int64
		if seen != nil {
			var dup bool
			if ext, dup = seen.DuplicateExt(p.Header.SequenceNumber); dup {
				suppressed[path]++
				return
			}
		}
		owd := at - sentAt
		ms := float64(owd) / float64(time.Millisecond)
		res.OWDms.Add(ms)
		res.OWDByAlt[BucketFor(stateAt(sentAt).Alt)].Add(ms)
		if cfg.KeepSeries {
			owdPts = append(owdPts, metrics.Point{T: at, V: ms})
		}
		addGoodput(at, size)
		recStats.Record(p.Header.SequenceNumber, p.Header.Timestamp, at)
		if det != nil {
			det.OnPacket(p.Header.SequenceNumber, at)
		}
		if reorder != nil {
			// Striped paths interleave: the buffer re-serializes, releasing
			// to the player in extended-sequence order under its deadline.
			// Feedback and delay metrics above stay at first-arrival time.
			reorder.Insert(ext, p, at)
		} else {
			pl.OnPacket(p, at)
		}
		switch cfg.CC {
		case CCGCC:
			if tseq, ok := p.Header.TransportSeq(); ok {
				twccRec.Record(tseq, at)
			}
		case CCSCReAM:
			ccfbGen.Record(p.Header.SequenceNumber, at)
		}
	}
	uplink.Deliver = func(meta any, size int, sentAt, at time.Duration) {
		deliver(0, meta, size, sentAt, at)
	}
	if cfg.KeepSeries || bp != nil {
		uplink.OnDrop = func(meta any, size int, sentAt time.Duration, reason link.DropReason) {
			if cfg.KeepSeries {
				res.LossTimes = append(res.LossTimes, sentAt)
			}
			if bp != nil {
				bp.mgr.ObserveLoss(0)
			}
		}
	}
	if bp != nil {
		for i := 1; i < bond.NumPaths; i++ {
			i := i
			bp.uplinks[i].Deliver = func(meta any, size int, sentAt, at time.Duration) {
				deliver(i, meta, size, sentAt, at)
			}
			bp.uplinks[i].OnDrop = func(any, int, time.Duration, link.DropReason) {
				bp.mgr.ObserveLoss(i)
			}
		}
	}

	// Sender-side feedback consumption.
	downlink.Deliver = func(meta any, size int, sentAt, at time.Duration) {
		if _, ok := meta.(kfRequest); ok {
			snd.ForceKeyframe()
			return
		}
		if nb, ok := meta.(nackBuf); ok {
			if rtxCache == nil {
				return
			}
			var n rtp.NACK
			if err := n.Unmarshal([]byte(nb)); err != nil {
				return
			}
			for _, seq := range n.Seqs() {
				orig := rtxCache.Lookup(seq, at)
				if orig == nil {
					continue // evicted, aged out, or resent to the cap
				}
				rtxSeq++
				rtxPkt := rtp.WrapRTX(orig, rcfg.RtxSSRC, rcfg.RtxPayloadType, rtxSeq)
				size := rtxPkt.MarshalSize()
				if !rtxBudget.Allow(at, size, ctrl.TargetBitrate(at)) {
					continue // budget empty: degrade to the PLI path
				}
				res.RtxBytes += size
				if res.Trace != nil {
					res.Trace.Emit(obs.Event{T: at, Kind: obs.KindRTX, Dir: obs.DirUp,
						Flags: obs.FlagRTX, Seq: int64(seq), Aux: int64(size)})
				}
				uplink.SendRTX(rtxPkt, size)
			}
			return
		}
		if rb, ok := meta.(rtcpBuf); ok {
			var rr rtp.ReceiverReport
			if err := rr.Unmarshal([]byte(rb)); err == nil && len(rr.Blocks) == 1 {
				b := rr.Blocks[0]
				if b.LastSR != 0 {
					lsr := time.Duration(b.LastSR) * time.Second / 65536
					dlsr := time.Duration(b.DelaySinceLastSR) * time.Second / 65536
					if rtt := at - lsr - dlsr; rtt > 0 {
						res.RTCPRTTms.Add(float64(rtt) / float64(time.Millisecond))
					}
				}
			}
			return
		}
		buf := meta.([]byte)
		switch cfg.CC {
		case CCGCC:
			var fb rtp.TWCC
			if err := fb.Unmarshal(buf); err != nil {
				return
			}
			acks := make([]cc.Ack, 0, len(fb.Packets))
			for i, p := range fb.Packets {
				tseq := fb.BaseSeq + uint16(i)
				a := cc.Ack{TransportSeq: tseq, Received: p.Received, ArrivalTime: p.At}
				if rec, ok := snd.LookupTransport(tseq); ok {
					a.Seq, a.Size, a.SendTime = rec.Seq, rec.Size, rec.SendTime
				}
				acks = append(acks, a)
			}
			ctrl.OnFeedback(at, acks)
		case CCSCReAM:
			var fb rtp.CCFB
			if err := fb.Unmarshal(buf); err != nil {
				return
			}
			for _, rep := range fb.Reports {
				acks := make([]cc.Ack, 0, len(rep.Metrics))
				for i, m := range rep.Metrics {
					seq := rep.BeginSeq + uint16(i)
					a := cc.Ack{Seq: seq, Received: m.Received}
					if m.Received {
						a.ArrivalTime = fb.Timestamp - m.ArrivalOffset
					}
					if rec, ok := snd.LookupSeq(seq); ok {
						a.TransportSeq, a.Size, a.SendTime = rec.TransportSeq, rec.Size, rec.SendTime
					}
					acks = append(acks, a)
				}
				ctrl.OnFeedback(at, acks)
			}
		}
		snd.Kick()
	}

	// Target-rate sampling: ramp-up detection, optional series, and — with
	// faults armed — the per-episode recovery and post-outage queue metrics.
	// Everything fault-related is gated on faultsOn: sampling QueueDelay
	// advances the link's capacity process, so touching it here would
	// perturb the calibrated no-fault runs.
	var targetPts []metrics.Point
	type recoveryTrack struct {
		ep        fault.Episode
		preRate   float64
		recovered bool
	}
	var (
		episodes   []fault.Episode
		tracks     []*recoveryTrack
		scripted   []fault.Episode
		scriptIdx  int
		rlfSeen    int
		lastTarget float64
	)
	if faultsOn {
		for _, w := range cfg.Faults.Windows {
			if w.Start >= dur || w.Loss || w.Path == fault.PathSecondary {
				// Loss fades erase packets without interrupting service, so
				// they are not outage episodes and need no recovery
				// tracking. Secondary-path windows stay off the episode
				// timeline too: it is primary-centric, and a bonded run's
				// whole point is that the stream does not treat a standby
				// outage as its own.
				continue
			}
			end := w.End()
			if end > dur {
				end = dur
			}
			scripted = append(scripted, fault.Episode{Start: w.Start, End: end, Kind: fault.KindScripted, Dir: w.Dir})
		}
		episodes = append(episodes, scripted...)
	}
	// collectRLFs folds newly declared radio-link failures into the episode
	// timeline (and, while the run is live, into the recovery tracking).
	collectRLFs := func(track bool) {
		evs := machine.RLFEvents()
		for ; rlfSeen < len(evs); rlfSeen++ {
			ev := evs[rlfSeen]
			kind := fault.KindRLF
			if ev.Cause == cell.RLFHandoverFailure {
				kind = fault.KindHandoverFailure
			}
			end := ev.At + ev.Outage
			if end > dur {
				end = dur
			}
			ep := fault.Episode{Start: ev.At, End: end, Kind: kind}
			episodes = append(episodes, ep)
			if track {
				tracks = append(tracks, &recoveryTrack{ep: ep, preRate: lastTarget})
			}
		}
	}
	s.Every(0, 100*time.Millisecond, func() {
		now := s.Now()
		t := ctrl.TargetBitrate(now)
		if cfg.KeepSeries {
			targetPts = append(targetPts, metrics.Point{T: now, V: t / 1e6})
		}
		if res.RampUpTo25 == 0 && t >= 24.75e6 {
			res.RampUpTo25 = now
		}
		if !faultsOn {
			return
		}
		if lastTarget == 0 {
			lastTarget = t
		}
		collectRLFs(true)
		for scriptIdx < len(scripted) && now >= scripted[scriptIdx].Start {
			tracks = append(tracks, &recoveryTrack{ep: scripted[scriptIdx], preRate: lastTarget})
			scriptIdx++
		}
		var queueMs float64
		queueSampled := false
		for _, tr := range tracks {
			if now < tr.ep.End {
				continue
			}
			if now-tr.ep.End <= 5*time.Second {
				if !queueSampled {
					queueSampled = true
					// The advancing variant: this probe is part of the
					// simulated system, and sampling here has always stepped
					// the capacity process — switching to the pure QueueDelay
					// would change every fault campaign's realization (and
					// golden trace).
					queueMs = float64(uplink.SampleQueueDelay()) / float64(time.Millisecond)
				}
				if queueMs > res.PostOutageQueueMs {
					res.PostOutageQueueMs = queueMs
				}
			}
			if !tr.recovered && t >= 0.8*tr.preRate {
				tr.recovered = true
				res.RecoveryMs.Add(float64(now-tr.ep.End) / float64(time.Millisecond))
			}
		}
		lastTarget = t
	})

	snd.Start()
	s.RunUntil(dur)
	if reorder != nil {
		// Hand the player whatever the buffer still holds before the run's
		// accounting closes.
		reorder.Flush(dur)
	}
	snd.Stop()
	pl.Stop()

	// Fold the player's view into the result.
	res.FPS = *pl.FPSDist(dur)
	res.PlaybackMs = *pl.LatencyDist()
	res.SSIM = *pl.SSIMDist()
	res.Stalls = pl.Stalls
	res.StallsPerMin = pl.StallsPerMinute(dur)
	for _, f := range pl.Frames {
		if f.Skipped {
			res.FramesSkipped++
		} else {
			res.FramesPlayed++
		}
	}
	secs := int(dur / time.Second)
	var gpPts []metrics.Point
	for sec := 0; sec < secs; sec++ {
		mbps := float64(goodputBytes[sec]*8) / 1e6
		res.Goodput.Add(mbps)
		if cfg.KeepSeries {
			gpPts = append(gpPts, metrics.Point{T: time.Duration(sec) * time.Second, V: mbps})
		}
	}
	if cfg.KeepSeries {
		res.OWDSeries = metrics.NewTimeSeriesFromPoints(owdPts)
		res.TargetSeries = metrics.NewTimeSeriesFromPoints(targetPts)
		res.GoodputSeries = metrics.NewTimeSeriesFromPoints(gpPts)
	}
	if sc, ok := rawCtrl.(*scream.Controller); ok {
		res.ScreamLosses = sc.Losses
		res.ScreamLossesInBand = sc.LossesInBand
		res.ScreamLossesWindow = sc.LossesWindow
		res.ScreamDiscards = sc.QueueDiscards
	}
	if bp != nil {
		res.BondPolicy = bp.mgr.Policy().String()
		res.BondSwitches = bp.mgr.Switches
		if reorder != nil {
			res.BondReorderLate = int(reorder.Late)
			res.BondReorderForced = int(reorder.DeadlineReleases + reorder.CapReleases)
		}
		// Per-path accounting from the manager; MultipathDuplicates stays
		// as the derived compat view (total copies suppressed at the
		// receiver, the old field's meaning exactly).
		for i := 0; i < bond.NumPaths; i++ {
			st := bp.mgr.Stats(i, dur)
			res.BondPaths = append(res.BondPaths, BondPathStats{
				Sent:       st.Sent,
				Delivered:  st.Delivered,
				Lost:       st.Lost,
				Suppressed: suppressed[i],
				DownMs:     float64(st.DownFor) / float64(time.Millisecond),
				Up:         st.Up,
			})
			res.MultipathDuplicates += int(suppressed[i])
		}
	}
	if faultsOn {
		collectRLFs(false)
		sort.Slice(episodes, func(i, j int) bool {
			if episodes[i].Start != episodes[j].Start {
				return episodes[i].Start < episodes[j].Start
			}
			return episodes[i].Kind < episodes[j].Kind
		})
		res.FaultEpisodes = episodes
		res.Outages = len(episodes)
		for _, ep := range episodes {
			res.OutageTotal += ep.Length()
			res.OutageMs.Add(float64(ep.Length()) / float64(time.Millisecond))
		}
		for _, ev := range machine.RLFEvents() {
			if ev.Cause == cell.RLFHandoverFailure {
				res.HandoverFailures++
			} else {
				res.RLFs++
			}
		}
		res.StaleDrops = uplink.StaleDrops
		res.KeyframeRequests = pl.KeyframeRequests
	}
	if cfg.Repair.Enabled {
		res.PacketsRepaired = pl.PacketsRepaired
		res.FramesRepaired = pl.FramesRepaired
		res.RepairLate = det.Late
		res.RepairAbandoned = det.Abandoned
		res.RepairDenied = rtxBudget.Denied
		res.RepairCacheMisses = rtxCache.Misses
		res.RepairBudgetAccrued = rtxBudget.Accrued()
		res.RtxSent = uplink.RtxSent
		res.RtxDelivered = uplink.RtxDelivered
		res.RtxLost = uplink.RtxLost
		res.RtxStaleDrops = uplink.RtxStaleDrops
		res.RtxOverflows = uplink.RtxOverflows
	}
}

// rtcpBuf marks receiver-report bytes on the downlink so they are not
// mistaken for congestion-control feedback.
type rtcpBuf []byte

// kfRequest is the receiver's PLI-style keyframe request on the downlink.
type kfRequest struct{}

// nackBuf marks RFC 4585 Generic NACK bytes on the downlink so they are
// not mistaken for congestion-control feedback.
type nackBuf []byte

// pingProbe is the meta carried by Fig. 13 probe packets.
type pingProbe struct {
	sentAt time.Duration
	alt    float64
}

// runPing wires the no-cross-traffic probe workload of Fig. 13: small
// probes up the access link, echoed back over the downlink.
func runPing(s *sim.Simulator, cfg Config, res *Result, uplink, downlink *link.Link, stateAt func(time.Duration) flight.State, dur time.Duration) {
	const probeSize = 125 // ICMP-sized
	uplink.Deliver = func(meta any, size int, sentAt, at time.Duration) {
		downlink.Send(meta, size) // echo
	}
	downlink.Deliver = func(meta any, size int, sentAt, at time.Duration) {
		probe := meta.(pingProbe)
		rtt := at - probe.sentAt
		ms := float64(rtt) / float64(time.Millisecond)
		res.RTTms.Add(ms)
		res.RTTByAlt[BucketFor(probe.alt)].Add(ms)
	}
	s.Every(0, 50*time.Millisecond, func() {
		uplink.Send(pingProbe{sentAt: s.Now(), alt: stateAt(s.Now()).Alt}, probeSize)
	})
	s.RunUntil(dur)
}
