package core

import (
	"encoding/json"
	"time"

	"rpivideo/internal/fault"
	"rpivideo/internal/metrics"
)

// summaryJSON is the Summary wire shape for the distributed-campaign shard
// stream. Config deliberately does not travel with it: the campaign spec —
// which both sides already hold — identifies the configuration, and Config
// carries fields (the fleet CapacityShare hook in particular) that have no
// JSON form. Unmarshal therefore leaves Config zero; the coordinator
// restores it from its own resolved spec. samplesFolded is carried
// explicitly so the aggregation-stats watermarks survive the hop.
type summaryJSON struct {
	Runs     int           `json:"runs"`
	Duration time.Duration `json:"duration"`

	OWDms      *metrics.Sketch   `json:"owd_ms"`
	OWDByAlt   []*metrics.Sketch `json:"owd_by_alt"`
	Goodput    *metrics.Sketch   `json:"goodput"`
	FPS        *metrics.Sketch   `json:"fps"`
	PlaybackMs *metrics.Sketch   `json:"playback_ms"`
	SSIM       *metrics.Sketch   `json:"ssim"`
	RTTms      *metrics.Sketch   `json:"rtt_ms"`
	RTTByAlt   []*metrics.Sketch `json:"rtt_by_alt"`
	JitterMs   *metrics.Sketch   `json:"jitter_ms"`
	RTCPRTTms  *metrics.Sketch   `json:"rtcp_rtt_ms"`
	OutageMs   *metrics.Sketch   `json:"outage_ms"`
	RecoveryMs *metrics.Sketch   `json:"recovery_ms"`

	PER                  float64 `json:"per"`
	PacketsSent          int     `json:"packets_sent"`
	PacketsDelivered     int     `json:"packets_delivered"`
	PacketsLost          int     `json:"packets_lost"`
	Overflows            int     `json:"overflows"`
	CtrlPacketsSent      int     `json:"ctrl_packets_sent"`
	CtrlPacketsDelivered int     `json:"ctrl_packets_delivered"`
	CtrlPacketsLost      int     `json:"ctrl_packets_lost"`

	Handovers        int `json:"handovers"`
	RLFs             int `json:"rlfs"`
	HandoverFailures int `json:"handover_failures"`

	Stalls        int     `json:"stalls"`
	StallsPerMin  float64 `json:"stalls_per_min"`
	FramesPlayed  int     `json:"frames_played"`
	FramesSkipped int     `json:"frames_skipped"`

	MultipathDuplicates int `json:"multipath_duplicates"`
	AQMDrops            int `json:"aqm_drops"`

	BondSwitches       int     `json:"bond_switches"`
	BondPathDownEvents int     `json:"bond_path_down_events"`
	BondPathUpEvents   int     `json:"bond_path_up_events"`
	BondReorderLate    int     `json:"bond_reorder_late"`
	BondReorderForced  int     `json:"bond_reorder_forced"`
	BondPathSent       int64   `json:"bond_path_sent"`
	BondPathDelivered  int64   `json:"bond_path_delivered"`
	BondPathLost       int64   `json:"bond_path_lost"`
	BondPathSuppressed int64   `json:"bond_path_suppressed"`
	BondPathDownMs     float64 `json:"bond_path_down_ms"`

	ScreamLosses       int `json:"scream_losses"`
	ScreamLossesInBand int `json:"scream_losses_in_band"`
	ScreamLossesWindow int `json:"scream_losses_window"`
	ScreamDiscards     int `json:"scream_discards"`

	Outages           int             `json:"outages"`
	OutageTotal       time.Duration   `json:"outage_total"`
	StaleDrops        int             `json:"stale_drops"`
	KeyframeRequests  int             `json:"keyframe_requests"`
	PostOutageQueueMs float64         `json:"post_outage_queue_ms"`
	FaultEpisodes     []fault.Episode `json:"fault_episodes,omitempty"`

	NacksSent           int     `json:"nacks_sent"`
	PacketsRepaired     int     `json:"packets_repaired"`
	FramesRepaired      int     `json:"frames_repaired"`
	RepairLate          int     `json:"repair_late"`
	RepairAbandoned     int     `json:"repair_abandoned"`
	RepairDenied        int     `json:"repair_denied"`
	RepairCacheMisses   int     `json:"repair_cache_misses"`
	RtxBytes            int     `json:"rtx_bytes"`
	RepairBudgetAccrued float64 `json:"repair_budget_accrued"`
	RtxSent             int     `json:"rtx_sent"`
	RtxDelivered        int     `json:"rtx_delivered"`
	RtxLost             int     `json:"rtx_lost"`
	RtxStaleDrops       int     `json:"rtx_stale_drops"`
	RtxOverflows        int     `json:"rtx_overflows"`

	SamplesFolded int64 `json:"samples_folded"`
}

// MarshalJSON renders the summary for transport. The output is canonical —
// a pure function of the folded runs and their fold grouping — so two
// summaries built from the same shards in the same order marshal to
// identical bytes (the basis of the sharded == serial merge-equivalence
// guarantee). Config is not serialized; see summaryJSON.
func (s *Summary) MarshalJSON() ([]byte, error) {
	w := summaryJSON{
		Runs:     s.Runs,
		Duration: s.Duration,

		OWDms:      &s.OWDms,
		Goodput:    &s.Goodput,
		FPS:        &s.FPS,
		PlaybackMs: &s.PlaybackMs,
		SSIM:       &s.SSIM,
		RTTms:      &s.RTTms,
		JitterMs:   &s.JitterMs,
		RTCPRTTms:  &s.RTCPRTTms,
		OutageMs:   &s.OutageMs,
		RecoveryMs: &s.RecoveryMs,

		PER:                  s.PER,
		PacketsSent:          s.PacketsSent,
		PacketsDelivered:     s.PacketsDelivered,
		PacketsLost:          s.PacketsLost,
		Overflows:            s.Overflows,
		CtrlPacketsSent:      s.CtrlPacketsSent,
		CtrlPacketsDelivered: s.CtrlPacketsDelivered,
		CtrlPacketsLost:      s.CtrlPacketsLost,

		Handovers:        s.Handovers,
		RLFs:             s.RLFs,
		HandoverFailures: s.HandoverFailures,

		Stalls:        s.Stalls,
		StallsPerMin:  s.StallsPerMin,
		FramesPlayed:  s.FramesPlayed,
		FramesSkipped: s.FramesSkipped,

		MultipathDuplicates: s.MultipathDuplicates,
		AQMDrops:            s.AQMDrops,

		BondSwitches:       s.BondSwitches,
		BondPathDownEvents: s.BondPathDownEvents,
		BondPathUpEvents:   s.BondPathUpEvents,
		BondReorderLate:    s.BondReorderLate,
		BondReorderForced:  s.BondReorderForced,
		BondPathSent:       s.BondPathSent,
		BondPathDelivered:  s.BondPathDelivered,
		BondPathLost:       s.BondPathLost,
		BondPathSuppressed: s.BondPathSuppressed,
		BondPathDownMs:     s.BondPathDownMs,

		ScreamLosses:       s.ScreamLosses,
		ScreamLossesInBand: s.ScreamLossesInBand,
		ScreamLossesWindow: s.ScreamLossesWindow,
		ScreamDiscards:     s.ScreamDiscards,

		Outages:           s.Outages,
		OutageTotal:       s.OutageTotal,
		StaleDrops:        s.StaleDrops,
		KeyframeRequests:  s.KeyframeRequests,
		PostOutageQueueMs: s.PostOutageQueueMs,
		FaultEpisodes:     s.FaultEpisodes,

		NacksSent:           s.NacksSent,
		PacketsRepaired:     s.PacketsRepaired,
		FramesRepaired:      s.FramesRepaired,
		RepairLate:          s.RepairLate,
		RepairAbandoned:     s.RepairAbandoned,
		RepairDenied:        s.RepairDenied,
		RepairCacheMisses:   s.RepairCacheMisses,
		RtxBytes:            s.RtxBytes,
		RepairBudgetAccrued: s.RepairBudgetAccrued,
		RtxSent:             s.RtxSent,
		RtxDelivered:        s.RtxDelivered,
		RtxLost:             s.RtxLost,
		RtxStaleDrops:       s.RtxStaleDrops,
		RtxOverflows:        s.RtxOverflows,

		SamplesFolded: s.samplesFolded,
	}
	w.OWDByAlt = make([]*metrics.Sketch, altBuckets)
	w.RTTByAlt = make([]*metrics.Sketch, altBuckets)
	for b := 0; b < int(altBuckets); b++ {
		w.OWDByAlt[b] = &s.OWDByAlt[b]
		w.RTTByAlt[b] = &s.RTTByAlt[b]
	}
	return json.Marshal(w)
}

// UnmarshalJSON reconstructs a summary marshaled by MarshalJSON. Config
// comes back zero (it does not travel; the consumer restores it from the
// campaign spec). Merging the result behaves exactly like merging the
// original summary.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var w summaryJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*s = Summary{
		Runs:     w.Runs,
		Duration: w.Duration,

		PER:                  w.PER,
		PacketsSent:          w.PacketsSent,
		PacketsDelivered:     w.PacketsDelivered,
		PacketsLost:          w.PacketsLost,
		Overflows:            w.Overflows,
		CtrlPacketsSent:      w.CtrlPacketsSent,
		CtrlPacketsDelivered: w.CtrlPacketsDelivered,
		CtrlPacketsLost:      w.CtrlPacketsLost,

		Handovers:        w.Handovers,
		RLFs:             w.RLFs,
		HandoverFailures: w.HandoverFailures,

		Stalls:        w.Stalls,
		StallsPerMin:  w.StallsPerMin,
		FramesPlayed:  w.FramesPlayed,
		FramesSkipped: w.FramesSkipped,

		MultipathDuplicates: w.MultipathDuplicates,
		AQMDrops:            w.AQMDrops,

		BondSwitches:       w.BondSwitches,
		BondPathDownEvents: w.BondPathDownEvents,
		BondPathUpEvents:   w.BondPathUpEvents,
		BondReorderLate:    w.BondReorderLate,
		BondReorderForced:  w.BondReorderForced,
		BondPathSent:       w.BondPathSent,
		BondPathDelivered:  w.BondPathDelivered,
		BondPathLost:       w.BondPathLost,
		BondPathSuppressed: w.BondPathSuppressed,
		BondPathDownMs:     w.BondPathDownMs,

		ScreamLosses:       w.ScreamLosses,
		ScreamLossesInBand: w.ScreamLossesInBand,
		ScreamLossesWindow: w.ScreamLossesWindow,
		ScreamDiscards:     w.ScreamDiscards,

		Outages:           w.Outages,
		OutageTotal:       w.OutageTotal,
		StaleDrops:        w.StaleDrops,
		KeyframeRequests:  w.KeyframeRequests,
		PostOutageQueueMs: w.PostOutageQueueMs,
		FaultEpisodes:     w.FaultEpisodes,

		NacksSent:           w.NacksSent,
		PacketsRepaired:     w.PacketsRepaired,
		FramesRepaired:      w.FramesRepaired,
		RepairLate:          w.RepairLate,
		RepairAbandoned:     w.RepairAbandoned,
		RepairDenied:        w.RepairDenied,
		RepairCacheMisses:   w.RepairCacheMisses,
		RtxBytes:            w.RtxBytes,
		RepairBudgetAccrued: w.RepairBudgetAccrued,
		RtxSent:             w.RtxSent,
		RtxDelivered:        w.RtxDelivered,
		RtxLost:             w.RtxLost,
		RtxStaleDrops:       w.RtxStaleDrops,
		RtxOverflows:        w.RtxOverflows,

		samplesFolded: w.SamplesFolded,
	}
	assign := func(dst *metrics.Sketch, src *metrics.Sketch) {
		if src != nil {
			*dst = *src
		}
	}
	assign(&s.OWDms, w.OWDms)
	assign(&s.Goodput, w.Goodput)
	assign(&s.FPS, w.FPS)
	assign(&s.PlaybackMs, w.PlaybackMs)
	assign(&s.SSIM, w.SSIM)
	assign(&s.RTTms, w.RTTms)
	assign(&s.JitterMs, w.JitterMs)
	assign(&s.RTCPRTTms, w.RTCPRTTms)
	assign(&s.OutageMs, w.OutageMs)
	assign(&s.RecoveryMs, w.RecoveryMs)
	for b := 0; b < int(altBuckets) && b < len(w.OWDByAlt); b++ {
		assign(&s.OWDByAlt[b], w.OWDByAlt[b])
	}
	for b := 0; b < int(altBuckets) && b < len(w.RTTByAlt); b++ {
		assign(&s.RTTByAlt[b], w.RTTByAlt[b])
	}
	return nil
}
