package core

import (
	"testing"
	"time"

	"rpivideo/internal/cell"
)

func TestDAPSRemovesExecutionGaps(t *testing.T) {
	cfg := Config{Env: cell.Urban, Air: true, CC: CCStatic, Seed: 7, DAPS: true}
	r := Run(cfg)
	if len(r.Handovers) == 0 {
		t.Fatal("no handovers")
	}
	for _, ev := range r.Handovers {
		if ev.HET != 0 {
			t.Fatalf("DAPS handover with HET %v", ev.HET)
		}
	}
	// The latency tail should be clearly better than break-before-make.
	plain := Run(Config{Env: cell.Urban, Air: true, CC: CCStatic, Seed: 7})
	if r.OWDms.Quantile(0.99) >= plain.OWDms.Quantile(0.99) {
		t.Errorf("DAPS p99 %.0f ms not below baseline %.0f ms",
			r.OWDms.Quantile(0.99), plain.OWDms.Quantile(0.99))
	}
}

func TestMultipathDeduplicates(t *testing.T) {
	r := Run(Config{Env: cell.Rural, Air: true, CC: CCStatic, Seed: 5, Duration: 60 * time.Second, Multipath: true})
	if r.MultipathDuplicates == 0 {
		t.Fatal("no duplicate copies recorded on a dual-path run")
	}
	// The player must not see duplicates: frames played once each.
	if r.FramesPlayed+r.FramesSkipped > 60*30+40 {
		t.Errorf("frame count %d exceeds the source rate: duplicates leaked",
			r.FramesPlayed+r.FramesSkipped)
	}
	single := Run(Config{Env: cell.Rural, Air: true, CC: CCStatic, Seed: 5, Duration: 60 * time.Second})
	if r.FramesSkipped > single.FramesSkipped {
		t.Errorf("duplication increased frame loss: %d vs %d", r.FramesSkipped, single.FramesSkipped)
	}
}

func TestAQMDropsCounted(t *testing.T) {
	// Oversubscribed ground link: CoDel must act.
	r := Run(Config{Env: cell.Urban, Air: false, CC: CCStatic, StaticRate: 34e6, Seed: 3, AQM: true})
	if r.AQMDrops == 0 {
		t.Error("no CoDel drops on an oversubscribed link")
	}
	off := Run(Config{Env: cell.Urban, Air: false, CC: CCStatic, StaticRate: 34e6, Seed: 3})
	if off.AQMDrops != 0 {
		t.Errorf("AQM drops counted with AQM off: %d", off.AQMDrops)
	}
}

func TestExtensionsDeterministic(t *testing.T) {
	cfg := Config{Env: cell.Rural, Air: true, CC: CCStatic, Seed: 11, Duration: 40 * time.Second, Multipath: true, DAPS: true, AQM: true}
	a, b := Run(cfg), Run(cfg)
	if a.MultipathDuplicates != b.MultipathDuplicates || a.AQMDrops != b.AQMDrops ||
		a.PacketsDelivered != b.PacketsDelivered {
		t.Error("extension runs not deterministic")
	}
}
