package core

import (
	"strings"
	"testing"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/obs"
)

func telemetryTestConfig() Config {
	return Config{
		Env:      cell.Urban,
		Op:       cell.P1,
		CC:       CCGCC,
		Seed:     1,
		Duration: time.Second,
	}
}

// TestCampaignStatusSink: a campaign drives the sink to a terminal snapshot
// with runs_done == runs_total, and every run's latency histograms reach the
// merged registry.
func TestCampaignStatusSink(t *testing.T) {
	tel := obs.NewTelemetry()
	tel.SetLabels("campaign", "test")
	const runs = 3
	_, errs := RunCampaignWithOptions(telemetryTestConfig(), runs, CampaignOptions{StatusSink: tel})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st, ok := tel.Status()
	if !ok {
		t.Fatal("campaign published no status")
	}
	if st.RunsDone != runs || st.RunsTotal != runs || !st.Done {
		t.Errorf("terminal snapshot %+v, want %d/%d done", st, runs, runs)
	}
	if st.Mode != "campaign" {
		t.Errorf("mode %q, want campaign", st.Mode)
	}
	if st.RunErrors != 0 {
		t.Errorf("run errors %d, want 0", st.RunErrors)
	}
	if st.WallSeconds <= 0 || st.SimRate <= 0 {
		t.Errorf("timing fields not populated: wall=%g rate=%g", st.WallSeconds, st.SimRate)
	}

	reg := tel.SnapshotRegistry()
	if got := reg.Counter("packets_sent"); got <= 0 {
		t.Errorf("merged packets_sent counter = %d, want > 0", got)
	}
	for _, name := range []string{TelemetryFrameDelay, TelemetryQueueDelay} {
		if reg.LogHistogram(name).Count() == 0 {
			t.Errorf("log histogram %s is empty after %d runs", name, runs)
		}
	}
	// A clean urban run has handovers but no repair traffic, so the NACK
	// RTT histogram exists and stays empty — presence is the contract.
	if reg.LogHistogram(TelemetryNackRTT) == nil {
		t.Error("nack RTT histogram missing")
	}
}

// TestFleetStatusSink: a fleet run publishes the per-cell contention table
// on every snapshot and ends with uavs_done == fleet size.
func TestFleetStatusSink(t *testing.T) {
	tel := obs.NewTelemetry()
	cfg := telemetryTestConfig()
	cfg.CC = CCStatic
	cfg.Air = true
	const size = 3
	_, errs := RunFleet(FleetConfig{Config: cfg, Size: size, StatusSink: tel})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st, ok := tel.Status()
	if !ok {
		t.Fatal("fleet published no status")
	}
	if st.Mode != "fleet" {
		t.Errorf("mode %q, want fleet", st.Mode)
	}
	if st.RunsDone != size || st.RunsTotal != size || !st.Done {
		t.Errorf("terminal snapshot %+v, want %d/%d done", st, size, size)
	}
	if len(st.Cells) == 0 {
		t.Fatal("fleet snapshot carries no cell table")
	}
	attaches := 0
	for _, c := range st.Cells {
		attaches += c.Attaches
	}
	if attaches < size {
		t.Errorf("cell table shows %d attaches for a fleet of %d", attaches, size)
	}
	if reg := tel.SnapshotRegistry(); reg.LogHistogram(TelemetryFrameDelay).Count() == 0 {
		t.Error("fleet runs recorded no frame delays")
	}
}

// TestRunTelemetryHistograms: one run's Result carries the live-telemetry
// registry with the wired delay histograms, separate from the byte-stable
// MetricsRegistry surface.
func TestRunTelemetryHistograms(t *testing.T) {
	res := Run(telemetryTestConfig())
	if res.Telemetry == nil {
		t.Fatal("Result.Telemetry not populated")
	}
	fd := res.Telemetry.LogHistogram(TelemetryFrameDelay)
	if fd.Count() == 0 {
		t.Error("frame delay histogram empty")
	}
	if int(fd.Count()) != res.FramesPlayed {
		t.Errorf("frame delay count %d != frames played %d", fd.Count(), res.FramesPlayed)
	}
	if res.Telemetry.LogHistogram(TelemetryQueueDelay).Count() == 0 {
		t.Error("queue delay histogram empty")
	}
	// The live histograms must NOT leak into the baseline-compared
	// registry: checked-in baselines predate them.
	drifts := obs.CompareRegistries(obs.NewRegistry(), res.MetricsRegistry(), obs.Tolerance{})
	for _, d := range drifts {
		if strings.HasPrefix(d.Metric, "loghistogram") {
			t.Errorf("telemetry histogram leaked into MetricsRegistry: %s", d)
		}
	}
}
