package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rpivideo/internal/obs"
)

// CampaignOptions tunes how a campaign executes. The zero value gives the
// defaults: one worker per logical CPU and the splitmix seed derivation.
type CampaignOptions struct {
	// Workers is the number of runs executed concurrently. Zero (or
	// negative) selects runtime.GOMAXPROCS(0); 1 executes serially.
	// Results do not depend on this: runs are pure functions of
	// (Config, Seed) and are merged back in run-index order, so the
	// output is byte-identical regardless of scheduling.
	Workers int
	// LegacySeeds selects the pre-campaign-engine seed derivation
	// (cfg.Seed*1_000_003 + runIndex) so historical numbers — the
	// EXPERIMENTS.md record in particular — can be regenerated exactly.
	// The default is DeriveSeed.
	LegacySeeds bool
	// Progress, when non-nil, is invoked once per completed run. Calls
	// are serialized by the engine, so the callback needs no locking of
	// its own, but it must not block for long: it runs on the campaign's
	// critical path.
	Progress func(CampaignProgress)
	// RunTimeout, when positive, arms a per-run wall-clock watchdog: a
	// run that has not returned within the deadline is abandoned and
	// recorded as that run's error instead of stalling the whole
	// campaign. This is the same conversion the distributed coordinator
	// applies to a wedged worker — a hang becomes a bounded, reported
	// failure. The abandoned run's goroutine is left to finish (or hang)
	// on its own; its result, if it ever materializes, is discarded.
	// Zero disables the watchdog and runs jobs inline.
	RunTimeout time.Duration
	// StatusSink, when non-nil, receives live telemetry: a progress
	// snapshot after every completed run plus each run's merged metrics +
	// telemetry registry. It is called under the engine's progress lock
	// (serialized, like Progress) and feeds the -serve ops endpoints; it
	// has no effect on results.
	StatusSink obs.StatusSink
}

// CampaignProgress is one campaign status sample, emitted as each run
// completes (in completion order, which under parallelism is not run-index
// order).
type CampaignProgress struct {
	// Completed and Total count finished runs against the campaign size.
	Completed, Total int
	// RunIndex identifies the run that just finished.
	RunIndex int
	// Err is non-nil when that run panicked; its result slot is nil.
	Err error
	// Wall is the wall-clock time since the campaign started.
	Wall time.Duration
	// SimRate is the aggregate simulation speed so far, in simulated
	// seconds per wall-clock second across all completed runs.
	SimRate float64
}

// DeriveSeed mixes a campaign base seed and a run index into the run's
// seed using a splitmix64-style finalizer. Unlike the legacy affine scheme
// (base*1_000_003 + run), which collides trivially across campaigns
// (base+1 at run 0 equals base at run 1_000_003, and nearby bases yield
// overlapping arithmetic progressions), the multiply–xorshift finalizer
// decorrelates every (base, run) pair.
func DeriveSeed(base int64, run int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(run+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// legacySeed is the pre-campaign-engine derivation, kept behind
// CampaignOptions.LegacySeeds for reproducing historical results.
func legacySeed(base int64, run int) int64 {
	return base*1_000_003 + int64(run)
}

// runSeed resolves the seed for one run under the selected derivation.
func (o CampaignOptions) runSeed(base int64, run int) int64 {
	if o.LegacySeeds {
		return legacySeed(base, run)
	}
	return DeriveSeed(base, run)
}

// RunCampaign executes a campaign: the given number of independent
// repetitions of cfg, each seeded by DeriveSeed(cfg.Seed, runIndex) and
// fanned out across runtime.GOMAXPROCS(0) workers. The per-run results
// come back in run-index order. It re-panics the first per-run panic
// after all runs finish; use RunCampaignWithOptions to keep the surviving
// runs' results instead.
func RunCampaign(cfg Config, runs int) []*Result {
	out, errs := RunCampaignWithOptions(cfg, runs, CampaignOptions{})
	for _, err := range errs {
		if err != nil {
			panic(err)
		}
	}
	return out
}

// RunCampaignWithOptions executes a campaign of runs independent
// repetitions of cfg on a worker pool and returns per-run results and
// per-run errors, both indexed by run. A run that panics is recovered into
// its error slot (with its result slot nil) without disturbing the other
// runs. Results are merged back in run-index order, so for a given
// (cfg, runs, seed derivation) the output is byte-identical at any worker
// count.
func RunCampaignWithOptions(cfg Config, runs int, opts CampaignOptions) ([]*Result, []error) {
	return runJobs(runs, opts, func(i int) *Result {
		c := cfg
		c.Seed = opts.runSeed(cfg.Seed, i)
		return Run(c)
	})
}

// runJobs fans job(0..runs-1) out across the option's worker pool,
// recovering per-job panics into error slots and emitting progress samples.
func runJobs(runs int, opts CampaignOptions, job func(i int) *Result) ([]*Result, []error) {
	if runs <= 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}

	results := make([]*Result, runs)
	errs := make([]error, runs)
	start := time.Now()
	var (
		mu        sync.Mutex
		completed int
		failed    int
		simSecs   float64
	)
	finish := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		completed++
		if errs[i] != nil {
			failed++
		}
		if results[i] != nil {
			simSecs += results[i].Duration.Seconds()
		}
		if opts.Progress == nil && opts.StatusSink == nil {
			return
		}
		p := CampaignProgress{Completed: completed, Total: runs, RunIndex: i, Err: errs[i], Wall: time.Since(start)}
		if w := p.Wall.Seconds(); w > 0 {
			p.SimRate = simSecs / w
		}
		if opts.Progress != nil {
			opts.Progress(p)
		}
		if opts.StatusSink != nil {
			if res := results[i]; res != nil {
				reg := res.MetricsRegistry()
				if res.Telemetry != nil {
					reg.Merge(res.Telemetry)
				}
				opts.StatusSink.ObserveRun(reg)
			}
			opts.StatusSink.PublishStatus(campaignSnapshot(p, failed))
		}
	}
	runOne := func(i int) {
		results[i], errs[i] = runGuarded(fmt.Sprintf("campaign run %d", i), opts.RunTimeout, func() *Result { return job(i) })
		finish(i)
	}

	if workers == 1 {
		for i := 0; i < runs; i++ {
			runOne(i)
		}
		return results, errs
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := 0; i < runs; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, errs
}

// campaignSnapshot converts one progress sample into the live status shape.
// The ETA extrapolates linearly from runs completed so far; it is a
// heuristic for operators, not a promise. Mode is left empty for the sink
// to stamp (the Telemetry hub's SetLabels): the engine can't tell a plain
// campaign from one run on behalf of an experiment figure.
func campaignSnapshot(p CampaignProgress, failed int) obs.StatusSnapshot {
	s := obs.StatusSnapshot{
		RunsDone:    p.Completed,
		RunsTotal:   p.Total,
		RunErrors:   failed,
		WallSeconds: p.Wall.Seconds(),
		SimRate:     p.SimRate,
		Done:        p.Completed >= p.Total,
	}
	if p.Completed > 0 && p.Completed < p.Total {
		s.ETASeconds = p.Wall.Seconds() / float64(p.Completed) * float64(p.Total-p.Completed)
	}
	return s
}

// runGuarded executes one job with panic recovery and, when timeout is
// positive, the wall-clock watchdog: a job that neither returns nor panics
// within the deadline is abandoned and converted into an error. The
// abandoned goroutine keeps running detached — Run has no cancellation
// point, so the watchdog trades a leaked goroutine for a campaign that
// cannot be wedged by one hung run (the leak is bounded by the number of
// timed-out runs). name labels the error messages ("campaign run 3").
func runGuarded(name string, timeout time.Duration, job func() *Result) (*Result, error) {
	if timeout <= 0 {
		var res *Result
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("%s panicked: %v", name, r)
				}
			}()
			res = job()
			return nil
		}()
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1) // buffered: a late finisher must not block
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{nil, fmt.Errorf("%s panicked: %v", name, r)}
			}
		}()
		done <- outcome{job(), nil}
	}()
	watchdog := time.NewTimer(timeout)
	defer watchdog.Stop()
	select {
	case o := <-done:
		return o.res, o.err
	case <-watchdog.C:
		return nil, fmt.Errorf("%s exceeded the %v watchdog deadline and was abandoned", name, timeout)
	}
}

// RunWithTimeout executes one run under the per-run watchdog: panics are
// recovered into the error and a run that outlives the deadline is
// abandoned with a timeout error (see CampaignOptions.RunTimeout). A zero
// timeout disables the watchdog but keeps the panic recovery — the shape
// distributed workers need to turn any single-run failure into a reported
// shard error rather than a dead process.
func RunWithTimeout(cfg Config, timeout time.Duration) (*Result, error) {
	return runGuarded("run", timeout, func() *Result { return Run(cfg) })
}
