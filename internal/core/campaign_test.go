package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rpivideo/internal/cell"
)

// resultFingerprint renders every result field the experiments package
// consumes — distribution boxes, counters, handover lists — so two results
// can be compared byte-for-byte.
func resultFingerprint(r *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "dur=%v\n", r.Duration)
	fmt.Fprintf(&sb, "owd=%v\n", r.OWDms.Box())
	for b := range r.OWDByAlt {
		fmt.Fprintf(&sb, "owd[%v]=%v\n", AltBucket(b), r.OWDByAlt[b].Box())
	}
	fmt.Fprintf(&sb, "goodput=%v\n", r.Goodput.Box())
	fmt.Fprintf(&sb, "fps=%v playback=%v ssim=%v\n", r.FPS.Box(), r.PlaybackMs.Box(), r.SSIM.Box())
	fmt.Fprintf(&sb, "jitter=%v rtcprtt=%v\n", r.JitterMs.Box(), r.RTCPRTTms.Box())
	fmt.Fprintf(&sb, "pkts=%d/%d/%d/%d/%d ctrl=%d/%d/%d per=%.9f\n",
		r.PacketsSent, r.PacketsDelivered, r.PacketsLost, r.Overflows, r.AQMDrops,
		r.CtrlPacketsSent, r.CtrlPacketsDelivered, r.CtrlPacketsLost, r.PER)
	fmt.Fprintf(&sb, "frames=%d/%d stalls=%d/%.4f rampup=%v\n",
		r.FramesPlayed, r.FramesSkipped, len(r.Stalls), r.StallsPerMin, r.RampUpTo25)
	for _, ev := range r.Handovers {
		fmt.Fprintf(&sb, "ho=%+v\n", ev)
	}
	return sb.String()
}

// TestCampaignParallelMatchesSerial is the determinism lock the worker pool
// depends on: a parallel campaign must produce results identical to the
// serial path for the same (Config, Seed), field by field and in run-index
// order.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	cfg := Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 21, Duration: 30 * time.Second}
	const runs = 6
	serial, serr := RunCampaignWithOptions(cfg, runs, CampaignOptions{Workers: 1})
	par, perr := RunCampaignWithOptions(cfg, runs, CampaignOptions{Workers: 4})
	if len(serial) != runs || len(par) != runs {
		t.Fatalf("campaign sizes: serial %d, parallel %d", len(serial), len(par))
	}
	for i := 0; i < runs; i++ {
		if serr[i] != nil || perr[i] != nil {
			t.Fatalf("run %d errored: serial %v, parallel %v", i, serr[i], perr[i])
		}
		a, b := resultFingerprint(serial[i]), resultFingerprint(par[i])
		if a != b {
			t.Errorf("run %d differs between serial and parallel:\n--- serial ---\n%s--- parallel ---\n%s", i, a, b)
		}
	}
}

// TestCampaignPanicRecovered: one panicking run must surface as an error in
// its own slot without losing the other runs' results.
func TestCampaignPanicRecovered(t *testing.T) {
	results, errs := runJobs(5, CampaignOptions{Workers: 3}, func(i int) *Result {
		if i == 2 {
			panic("injected failure")
		}
		return &Result{Duration: time.Duration(i) * time.Second}
	})
	if errs[2] == nil || !strings.Contains(errs[2].Error(), "run 2") ||
		!strings.Contains(errs[2].Error(), "injected failure") {
		t.Fatalf("panic not captured: %v", errs[2])
	}
	if results[2] != nil {
		t.Error("panicked run left a result")
	}
	for _, i := range []int{0, 1, 3, 4} {
		if errs[i] != nil || results[i] == nil || results[i].Duration != time.Duration(i)*time.Second {
			t.Errorf("run %d lost: res=%v err=%v", i, results[i], errs[i])
		}
	}
}

// TestCampaignErrorAggregation: several runs failing at once under a
// parallel worker pool must land each error at its own run index — never at
// a neighbour's — and the surviving results must be the same set the serial
// pool produces, in the same order.
func TestCampaignErrorAggregation(t *testing.T) {
	const runs = 12
	bad := map[int]bool{1: true, 5: true, 10: true}
	job := func(i int) *Result {
		if bad[i] {
			panic(fmt.Sprintf("boom-%d", i))
		}
		return &Result{Duration: time.Duration(i) * time.Second}
	}
	for _, workers := range []int{1, 4} {
		results, errs := runJobs(runs, CampaignOptions{Workers: workers}, job)
		for i := 0; i < runs; i++ {
			if bad[i] {
				if results[i] != nil {
					t.Errorf("workers=%d: failed run %d left a result", workers, i)
				}
				if errs[i] == nil ||
					!strings.Contains(errs[i].Error(), fmt.Sprintf("run %d", i)) ||
					!strings.Contains(errs[i].Error(), fmt.Sprintf("boom-%d", i)) {
					t.Errorf("workers=%d: run %d error misrouted: %v", workers, i, errs[i])
				}
				continue
			}
			if errs[i] != nil {
				t.Errorf("workers=%d: healthy run %d errored: %v", workers, i, errs[i])
			}
			if results[i] == nil || results[i].Duration != time.Duration(i)*time.Second {
				t.Errorf("workers=%d: run %d result misrouted: %+v", workers, i, results[i])
			}
		}
	}
}

// TestCampaignWatchdogAbandonsHungRun: a run that neither returns nor
// panics is abandoned at the RunTimeout deadline with an error naming the
// run and the watchdog, while every other run completes normally.
func TestCampaignWatchdogAbandonsHungRun(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // unblock the abandoned goroutine on the way out
	results, errs := runJobs(5, CampaignOptions{Workers: 3, RunTimeout: 30 * time.Millisecond}, func(i int) *Result {
		if i == 2 {
			<-release
		}
		return &Result{Duration: time.Duration(i) * time.Second}
	})
	if errs[2] == nil || !strings.Contains(errs[2].Error(), "run 2") ||
		!strings.Contains(errs[2].Error(), "watchdog deadline") {
		t.Fatalf("hung run not abandoned: %v", errs[2])
	}
	if results[2] != nil {
		t.Error("abandoned run left a result")
	}
	for _, i := range []int{0, 1, 3, 4} {
		if errs[i] != nil || results[i] == nil || results[i].Duration != time.Duration(i)*time.Second {
			t.Errorf("run %d lost alongside the hung run: res=%v err=%v", i, results[i], errs[i])
		}
	}
}

// TestRunWithTimeoutKeepsPanicRecovery: a zero timeout disables only the
// watchdog — a panicking run still comes back as an error, not a crash.
func TestRunWithTimeoutKeepsPanicRecovery(t *testing.T) {
	_, err := RunWithTimeout(Config{Env: cell.Urban, CC: CCSCReAM, Seed: 1,
		Duration: time.Second, ScreamFeedbackInterval: -time.Millisecond}, 0)
	if err == nil {
		t.Fatal("panicking run returned no error")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic detail lost: %v", err)
	}
}

// TestRunCampaignRepanics: the compatibility wrapper keeps the historical
// contract that a failing run fails the campaign.
func TestRunCampaignRepanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RunCampaign swallowed a run panic")
		}
	}()
	// A negative SCReAM feedback interval makes sim.Every panic inside Run.
	RunCampaign(Config{Env: cell.Urban, CC: CCSCReAM, Seed: 1,
		Duration: time.Second, ScreamFeedbackInterval: -time.Millisecond}, 2)
}

// TestCampaignProgress: the hook sees every run exactly once and a
// monotonically complete campaign.
func TestCampaignProgress(t *testing.T) {
	seen := make(map[int]int)
	last := 0
	_, errs := runJobs(7, CampaignOptions{Workers: 4, Progress: func(p CampaignProgress) {
		seen[p.RunIndex]++
		if p.Total != 7 || p.Completed != last+1 {
			t.Errorf("progress out of order: %+v after completed=%d", p, last)
		}
		last = p.Completed
	}}, func(i int) *Result { return &Result{Duration: time.Second} })
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if last != 7 || len(seen) != 7 {
		t.Errorf("progress coverage: completed=%d distinct=%d", last, len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("run %d reported %d times", i, n)
		}
	}
}

// TestSeedDerivation pins both derivations: the splitmix default must
// decorrelate (base, run) pairs the legacy affine scheme collides on, and
// the legacy switch must reproduce the historical seeds exactly.
func TestSeedDerivation(t *testing.T) {
	if legacySeed(1, 1_000_003) != legacySeed(2, 0) {
		t.Error("legacy derivation changed; the compatibility switch no longer reproduces history")
	}
	if DeriveSeed(1, 1_000_003) == DeriveSeed(2, 0) {
		t.Error("splitmix derivation inherited the legacy cross-campaign collision")
	}
	seen := make(map[int64]bool)
	for base := int64(0); base < 32; base++ {
		for run := 0; run < 32; run++ {
			s := DeriveSeed(base, run)
			if seen[s] {
				t.Fatalf("DeriveSeed collision at base=%d run=%d", base, run)
			}
			seen[s] = true
		}
	}
	opts := CampaignOptions{LegacySeeds: true}
	if got, want := opts.runSeed(9, 1), int64(9*1_000_003+1); got != want {
		t.Errorf("legacy runSeed = %d, want %d", got, want)
	}
}

// TestSenderReportsAreControlPlane: RTCP SRs ride the media uplink but must
// not count toward the media counters PER is computed from.
func TestSenderReportsAreControlPlane(t *testing.T) {
	r := Run(Config{Env: cell.Urban, Air: true, CC: CCStatic, Seed: 3, Duration: 40 * time.Second})
	// One SR per second, starting at t=1 s.
	if r.CtrlPacketsSent < 35 || r.CtrlPacketsSent > 40 {
		t.Errorf("control packets sent = %d, want ≈ one SR per second", r.CtrlPacketsSent)
	}
	// Conservation up to packets still in flight when the run ends at dur.
	if inFlight := r.CtrlPacketsSent - r.CtrlPacketsDelivered - r.CtrlPacketsLost; inFlight < 0 || inFlight > 2 {
		t.Errorf("control conservation: %d delivered + %d lost vs %d sent",
			r.CtrlPacketsDelivered, r.CtrlPacketsLost, r.CtrlPacketsSent)
	}
	if r.PacketsSent == 0 {
		t.Fatal("no media packets")
	}
	if want := float64(r.PacketsLost) / float64(r.PacketsSent); r.PER != want {
		t.Errorf("PER = %v, want media-only %v", r.PER, want)
	}
}
