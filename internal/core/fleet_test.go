package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/fault"
)

func fleetTestConfig() Config {
	return Config{Env: cell.Urban, Op: cell.P1, Air: true, CC: CCStatic, Seed: 1, Duration: 4 * time.Second}
}

// TestFleetDeterministicAcrossWorkers is the fleet determinism battery:
// for both schedulers, with and without a fault schedule, the serial and
// parallel executions must agree byte-for-byte on the exported metrics and
// exactly on the summary, the per-UAV goodput and the cell event timeline.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name   string
		sched  cell.SchedulerKind
		faults fault.Config
	}{
		{"rr", cell.SchedRR, fault.Config{}},
		{"pf", cell.SchedPF, fault.Config{}},
		{"rr-faults", cell.SchedRR, fault.Config{
			RLF:     true,
			Windows: []fault.Window{{Start: time.Second, Duration: 500 * time.Millisecond, Dir: fault.Both}},
		}},
		{"pf-faults", cell.SchedPF, fault.Config{
			RLF:     true,
			Windows: []fault.Window{{Start: time.Second, Duration: 500 * time.Millisecond, Dir: fault.Both}},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := fleetTestConfig()
			cfg.Faults = tc.faults
			run := func(workers int) (*FleetResult, []byte) {
				fr, errs := RunFleet(FleetConfig{Config: cfg, Size: 16, Sched: tc.sched, Workers: workers, Events: true})
				for u, err := range errs {
					if err != nil {
						t.Fatalf("workers=%d uav %d: %v", workers, u, err)
					}
				}
				var buf bytes.Buffer
				if err := fr.WriteMetrics(&buf); err != nil {
					t.Fatalf("WriteMetrics: %v", err)
				}
				return fr, buf.Bytes()
			}
			serial, serialBytes := run(1)
			parallel, parallelBytes := run(8)
			if !bytes.Equal(serialBytes, parallelBytes) {
				t.Error("metrics JSON differs between serial and parallel execution")
			}
			if !reflect.DeepEqual(serial.Summary, parallel.Summary) {
				t.Error("summaries differ between serial and parallel execution")
			}
			if !reflect.DeepEqual(serial.CellEvents, parallel.CellEvents) {
				t.Error("cell event timelines differ between serial and parallel execution")
			}
			if !reflect.DeepEqual(serial.PerUAVGoodput.Samples(), parallel.PerUAVGoodput.Samples()) {
				t.Error("per-UAV goodput samples differ between serial and parallel execution")
			}
			var se, pe bytes.Buffer
			if err := serial.WriteCellEvents(&se); err != nil {
				t.Fatalf("WriteCellEvents: %v", err)
			}
			if err := parallel.WriteCellEvents(&pe); err != nil {
				t.Fatalf("WriteCellEvents: %v", err)
			}
			if !bytes.Equal(se.Bytes(), pe.Bytes()) {
				t.Error("cell event JSONL differs between serial and parallel execution")
			}
		})
	}
}

// TestFleetContentionMonotonic: on the fixed shared deployment, the median
// per-UAV goodput must not increase with fleet size (beyond a small float
// tolerance), and heavy contention must bite hard.
func TestFleetContentionMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet campaign in -short mode")
	}
	sizes := []int{1, 16, 64}
	meds := make([]float64, len(sizes))
	for i, size := range sizes {
		fr, errs := RunFleet(FleetConfig{Config: fleetTestConfig(), Size: size})
		for u, err := range errs {
			if err != nil {
				t.Fatalf("size %d uav %d: %v", size, u, err)
			}
		}
		meds[i] = fr.MedianUAVGoodput()
		if size == 1 {
			if fr.MinShare != 1 {
				t.Errorf("lone UAV min share = %v, want exactly 1", fr.MinShare)
			}
			if fr.OverloadEpochs != 0 {
				t.Errorf("lone UAV overload epochs = %d, want 0", fr.OverloadEpochs)
			}
		}
	}
	const eps = 0.02 // 2% relative tolerance for sampling noise
	for i := 1; i < len(meds); i++ {
		if meds[i] > meds[i-1]*(1+eps) {
			t.Errorf("median per-UAV goodput increased with fleet size: %v at sizes %v", meds, sizes)
		}
	}
	if meds[len(meds)-1] > 0.8*meds[0] {
		t.Errorf("64-UAV median %v vs solo %v: contention should cost more than 20%%", meds[len(meds)-1], meds[0])
	}
}

// TestFleetRejectsBondedConfigs: contention models the single-operator
// chain; a bonded fleet must fail loudly instead of silently ignoring the
// second path.
func TestFleetRejectsBondedConfigs(t *testing.T) {
	cfg := fleetTestConfig()
	cfg.Multipath = true
	fr, errs := RunFleet(FleetConfig{Config: cfg, Size: 2})
	if fr != nil || len(errs) != 1 || errs[0] == nil {
		t.Fatalf("bonded fleet: fr=%v errs=%v, want nil result and one error", fr, errs)
	}
}

func TestParseFleetSpec(t *testing.T) {
	cases := []struct {
		in    string
		size  int
		sched cell.SchedulerKind
		ok    bool
	}{
		{"1", 1, cell.SchedRR, true},
		{"500", 500, cell.SchedRR, true},
		{"50/rr", 50, cell.SchedRR, true},
		{"50/pf", 50, cell.SchedPF, true},
		{" 8/pf ", 8, cell.SchedPF, true}, // outer whitespace is trimmed
		{"8 /pf", 0, 0, false},            // inner whitespace is not
		{"0", 0, 0, false},
		{"-3", 0, 0, false},
		{"", 0, 0, false},
		{"/pf", 0, 0, false},
		{"12/", 0, 0, false},
		{"12/fair", 0, 0, false},
		{"9999999999", 0, 0, false},
	}
	for _, tc := range cases {
		size, sched, err := ParseFleetSpec(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseFleetSpec(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && (size != tc.size || sched != tc.sched) {
			t.Errorf("ParseFleetSpec(%q) = (%d, %v), want (%d, %v)", tc.in, size, sched, tc.size, tc.sched)
		}
	}
}

// FuzzParseFleetSpec: the parser must never panic, and every accepted spec
// must re-parse to the same (size, scheduler) through the canonical form.
func FuzzParseFleetSpec(f *testing.F) {
	for _, seed := range []string{"1", "500", "50/rr", "50/pf", "", "/", "0/pf", "1048577", "-9/rr", "x/y/z"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		size, sched, err := ParseFleetSpec(spec)
		if err != nil {
			return
		}
		if size < 1 || size > MaxFleetSize {
			t.Fatalf("accepted size %d outside [1, %d] from %q", size, MaxFleetSize, spec)
		}
		canon := fmt.Sprintf("%d/%s", size, sched)
		size2, sched2, err := ParseFleetSpec(canon)
		if err != nil || size2 != size || sched2 != sched {
			t.Fatalf("canonical %q does not round-trip: (%d, %v, %v)", canon, size2, sched2, err)
		}
	})
}
