package core

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/metrics"
)

// TestSummaryMatchesMerge: the sketch-based campaign aggregate must agree
// with the sample-retaining Merge on every field the experiments consume —
// counters exactly, distribution queries within the sketch's relative-error
// guarantee.
func TestSummaryMatchesMerge(t *testing.T) {
	cfg := Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 17, Duration: 25 * time.Second}
	const runs = 4
	results, errs := RunCampaignWithOptions(cfg, runs, CampaignOptions{})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	merged := Merge(results)
	sum := Summarize(results)

	if sum.Runs != runs || sum.Duration != merged.Duration {
		t.Fatalf("runs=%d dur=%v, want %d / %v", sum.Runs, sum.Duration, runs, merged.Duration)
	}
	// Counters must match exactly.
	counters := []struct {
		name      string
		got, want int
	}{
		{"PacketsSent", sum.PacketsSent, merged.PacketsSent},
		{"PacketsDelivered", sum.PacketsDelivered, merged.PacketsDelivered},
		{"PacketsLost", sum.PacketsLost, merged.PacketsLost},
		{"Overflows", sum.Overflows, merged.Overflows},
		{"CtrlPacketsSent", sum.CtrlPacketsSent, merged.CtrlPacketsSent},
		{"Handovers", sum.Handovers, len(merged.Handovers)},
		{"Stalls", sum.Stalls, len(merged.Stalls)},
		{"FramesPlayed", sum.FramesPlayed, merged.FramesPlayed},
		{"FramesSkipped", sum.FramesSkipped, merged.FramesSkipped},
		{"KeyframeRequests", sum.KeyframeRequests, merged.KeyframeRequests},
		{"Outages", sum.Outages, merged.Outages},
		{"NacksSent", sum.NacksSent, merged.NacksSent},
		{"PacketsRepaired", sum.PacketsRepaired, merged.PacketsRepaired},
	}
	for _, c := range counters {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if sum.PER != merged.PER {
		t.Errorf("PER = %v, want %v", sum.PER, merged.PER)
	}
	if sum.StallsPerMin != merged.StallsPerMin {
		t.Errorf("StallsPerMin = %v, want %v", sum.StallsPerMin, merged.StallsPerMin)
	}
	if sum.HandoverRate() != merged.HandoverRate() {
		t.Errorf("HandoverRate = %v, want %v", sum.HandoverRate(), merged.HandoverRate())
	}

	// Distribution queries within the sketch guarantee.
	dists := []struct {
		name string
		sk   *metrics.Sketch
		d    *metrics.Dist
	}{
		{"OWDms", &sum.OWDms, &merged.OWDms},
		{"Goodput", &sum.Goodput, &merged.Goodput},
		{"FPS", &sum.FPS, &merged.FPS},
		{"PlaybackMs", &sum.PlaybackMs, &merged.PlaybackMs},
		{"SSIM", &sum.SSIM, &merged.SSIM},
		{"JitterMs", &sum.JitterMs, &merged.JitterMs},
	}
	for _, dc := range dists {
		if dc.sk.N() != dc.d.N() {
			t.Errorf("%s: N %d vs %d", dc.name, dc.sk.N(), dc.d.N())
			continue
		}
		if dc.sk.Min() != dc.d.Min() || dc.sk.Max() != dc.d.Max() {
			t.Errorf("%s: extremes [%g,%g] vs [%g,%g]", dc.name,
				dc.sk.Min(), dc.sk.Max(), dc.d.Min(), dc.d.Max())
		}
		for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
			sq, dq := dc.sk.Quantile(q), dc.d.Quantile(q)
			// One bucket's relative error plus the gap Dist interpolation
			// can straddle between adjacent order statistics.
			tol := metrics.SketchAlpha*math.Abs(dq) + 1e-9
			if gap := interpGap(dc.d, q); gap > tol {
				tol = gap * (1 + metrics.SketchAlpha)
			}
			if math.Abs(sq-dq) > tol {
				t.Errorf("%s q=%g: sketch %g vs dist %g (tol %g)", dc.name, q, sq, dq, tol)
			}
		}
	}
}

// interpGap is the spread between the two order statistics Dist.Quantile
// interpolates between at q.
func interpGap(d *metrics.Dist, q float64) float64 {
	n := d.N()
	if n < 2 {
		return 0
	}
	pos := q * float64(n-1)
	lo, hi := int(math.Floor(pos)), int(math.Ceil(pos))
	if lo == hi {
		return 0
	}
	s := d.Samples()
	// Samples() preserves insertion order; quantile ranks need sorted order.
	// Sorting the copy is fine — it is ours.
	sort.Float64s(s)
	return math.Abs(s[hi] - s[lo])
}

// TestSummaryJSONRoundTrip locks the wire form the distributed campaign
// shards travel in: marshal → unmarshal → marshal must be byte-identical
// (canonical output), and a summary merged from round-tripped single-run
// summaries must serialize identically to one merged from the originals —
// the exact fold the dist coordinator performs.
func TestSummaryJSONRoundTrip(t *testing.T) {
	cfg := Config{Env: cell.Urban, CC: CCGCC, Seed: 11, Duration: 3 * time.Second}
	results, errs := RunCampaignWithOptions(cfg, 3, CampaignOptions{})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	direct := &Summary{}
	wired := &Summary{}
	for _, r := range results {
		one := Summarize([]*Result{r})
		direct.Merge(one)

		raw, err := one.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var rt Summary
		if err := rt.UnmarshalJSON(raw); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		again, err := rt.MarshalJSON()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if string(raw) != string(again) {
			t.Fatalf("round trip not canonical:\n first %s\nsecond %s", raw, again)
		}
		wired.Merge(&rt)
	}
	a, err := direct.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := wired.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("merge of round-tripped summaries diverged:\n direct %s\n  wired %s", a, b)
	}
	if wired.Runs != 3 || wired.PacketsSent == 0 {
		t.Fatalf("round-tripped merge lost data: %+v", wired)
	}
}

// TestRunCampaignSummaryDeterministic: the streaming fold must equal the
// batch fold, at any worker count, field for field — this is the byte-
// stability contract the report bundles build on.
func TestRunCampaignSummaryDeterministic(t *testing.T) {
	cfg := Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 21, Duration: 20 * time.Second}
	const runs = 5

	batchRes, berrs := RunCampaignWithOptions(cfg, runs, CampaignOptions{})
	for _, err := range berrs {
		if err != nil {
			t.Fatal(err)
		}
	}
	batch := Summarize(batchRes)

	serial, serrs := RunCampaignSummary(cfg, runs, CampaignOptions{Workers: 1})
	par, perrs := RunCampaignSummary(cfg, runs, CampaignOptions{Workers: 4})
	for i := 0; i < runs; i++ {
		if serrs[i] != nil || perrs[i] != nil {
			t.Fatalf("run %d errored: serial %v, parallel %v", i, serrs[i], perrs[i])
		}
	}
	if !reflect.DeepEqual(serial, par) {
		t.Error("streaming summary differs between serial and parallel execution")
	}
	if !reflect.DeepEqual(serial, batch) {
		t.Error("streaming summary differs from batch Summarize")
	}
}

// TestRunCampaignSummaryPanic: a panicking run lands in its error slot and
// is simply missing from the aggregate; the other runs still fold.
func TestRunCampaignSummaryPanic(t *testing.T) {
	// A negative SCReAM feedback interval makes sim.Every panic inside Run.
	cfg := Config{Env: cell.Urban, CC: CCSCReAM, Seed: 1,
		Duration: time.Second, ScreamFeedbackInterval: -time.Millisecond}
	sum, errs := RunCampaignSummary(cfg, 3, CampaignOptions{Workers: 2})
	for i, err := range errs {
		if err == nil {
			t.Errorf("run %d: expected panic error", i)
		}
	}
	if sum.Runs != 0 {
		t.Errorf("failed runs folded into the summary: Runs=%d", sum.Runs)
	}
}

// TestSummaryMemoryBounded is the tentpole's acceptance check: the retained
// distribution payload must stop growing with the run count once sketches
// spill, while the folded-sample counter keeps climbing.
func TestSummaryMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config campaign")
	}
	cfg := Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 5, Duration: 30 * time.Second}
	small, errs := RunCampaignSummary(cfg, 2, CampaignOptions{})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	large, errs := RunCampaignSummary(cfg, 8, CampaignOptions{})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if large.SamplesFolded() < 3*small.SamplesFolded() {
		t.Fatalf("sample counts did not scale: %d vs %d", large.SamplesFolded(), small.SamplesFolded())
	}
	// 4× the runs must cost well under 4× the retained bytes; in practice the
	// bucket set barely grows once the value range is covered.
	if got, limit := large.RetainedBytes(), 2*small.RetainedBytes(); got > limit {
		t.Errorf("retained bytes grew with run count: %d for 8 runs vs %d for 2 (limit %d)",
			got, small.RetainedBytes(), limit)
	}
	// And both are far below what the raw samples would occupy.
	if raw := 8 * large.SamplesFolded(); int64(large.RetainedBytes()) > raw/10 {
		t.Errorf("sketch payload %d B not ≪ raw payload %d B", large.RetainedBytes(), raw)
	}
}
