package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/repair"
)

// repairFingerprint extends faultFingerprint with every repair-layer field
// so repaired runs can be compared byte-for-byte too.
func repairFingerprint(r *Result) string {
	var sb strings.Builder
	sb.WriteString(faultFingerprint(r))
	fmt.Fprintf(&sb, "nacks=%d repaired=%d/%d late=%d abandoned=%d\n",
		r.NacksSent, r.PacketsRepaired, r.FramesRepaired, r.RepairLate, r.RepairAbandoned)
	fmt.Fprintf(&sb, "denied=%d misses=%d rtxbytes=%d accrued=%.6f\n",
		r.RepairDenied, r.RepairCacheMisses, r.RtxBytes, r.RepairBudgetAccrued)
	fmt.Fprintf(&sb, "rtx=%d/%d/%d/%d/%d\n",
		r.RtxSent, r.RtxDelivered, r.RtxLost, r.RtxStaleDrops, r.RtxOverflows)
	return sb.String()
}

// repairedConfig is faultedConfig with the NACK/RTX layer armed: scripted
// blackouts plus routine radio loss give the detector both abandonment and
// repair work.
func repairedConfig(cc CCKind) Config {
	cfg := faultedConfig(cc)
	cfg.Repair = repair.Config{Enabled: true}
	return cfg
}

// TestRepairDeterministicAcrossWorkers: with the repair layer armed on top
// of the full fault stack, a fixed seed must reproduce byte-identically —
// every NACK, retransmission and budget decision included — serially and at
// any worker count.
func TestRepairDeterministicAcrossWorkers(t *testing.T) {
	cfg := repairedConfig(CCGCC)
	const runs = 3
	serial, serr := RunCampaignWithOptions(cfg, runs, CampaignOptions{Workers: 1})
	par, perr := RunCampaignWithOptions(cfg, runs, CampaignOptions{Workers: 3})
	for i := 0; i < runs; i++ {
		if serr[i] != nil || perr[i] != nil {
			t.Fatalf("run %d errored: serial %v, parallel %v", i, serr[i], perr[i])
		}
		a, b := repairFingerprint(serial[i]), repairFingerprint(par[i])
		if a != b {
			t.Errorf("repaired run %d differs between serial and parallel:\n--- serial ---\n%s--- parallel ---\n%s", i, a, b)
		}
	}
	if a, b := repairFingerprint(Run(cfg)), repairFingerprint(Run(cfg)); a != b {
		t.Errorf("repaired run not reproducible:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestRepairActiveAndBudgetBounded: under the fault schedule the layer must
// actually work — NACKs sent, packets repaired — and the hard budget bound
// RtxBytes ≤ RepairBudgetAccrued must hold for every controller.
func TestRepairActiveAndBudgetBounded(t *testing.T) {
	// Per-controller seeds where the Gilbert model actually produces an
	// in-band loss burst within the 40 s run (at PER 4e-4 with mean burst
	// 10, some seeds see none).
	seeds := map[CCKind]int64{CCStatic: 77, CCGCC: 77, CCSCReAM: 1}
	for _, cc := range []CCKind{CCStatic, CCGCC, CCSCReAM} {
		cfg := repairedConfig(cc)
		cfg.Seed = seeds[cc]
		r := Run(cfg)
		if r.NacksSent == 0 {
			t.Errorf("%v: no NACKs sent under radio loss + blackouts", cc)
		}
		if r.PacketsRepaired == 0 {
			t.Errorf("%v: no packets repaired", cc)
		}
		if float64(r.RtxBytes) > r.RepairBudgetAccrued {
			t.Errorf("%v: repair bytes %d exceed accrued budget %.0f", cc,
				r.RtxBytes, r.RepairBudgetAccrued)
		}
		if r.RtxSent == 0 {
			t.Errorf("%v: no RTX packets entered the uplink", cc)
		}
		// The blackout spans (2 s and 800 ms) exceed the retry budget's
		// reach, so some losses must have been abandoned to the PLI path.
		if r.RepairAbandoned == 0 {
			t.Errorf("%v: no losses abandoned across a 2 s blackout", cc)
		}
	}
}

// TestRepairDisabledInert: a zero Repair config must leave the calibrated
// baseline untouched — identical fingerprint to a pre-repair run and no
// repair metrics.
func TestRepairDisabledInert(t *testing.T) {
	base := Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 5, Duration: 25 * time.Second}
	r := Run(base)
	if r.NacksSent != 0 || r.PacketsRepaired != 0 || r.RtxSent != 0 ||
		r.RtxBytes != 0 || r.RepairBudgetAccrued != 0 {
		t.Errorf("zero repair config produced repair metrics: nacks=%d repaired=%d rtx=%d",
			r.NacksSent, r.PacketsRepaired, r.RtxSent)
	}
}
