package core

import "testing"

// TestDedupSurvivesSeqWrap feeds two interleaved path copies of every
// sequence number through several full 16-bit wraps: every first copy must
// be accepted and every second copy suppressed. The pre-fix implementation
// keyed the seen-set by the raw uint16, so the first fresh packet after a
// wrap collided with its namesake from one wrap ago and was falsely flagged
// as a duplicate.
func TestDedupSurvivesSeqWrap(t *testing.T) {
	d := newMultipathDedup()
	const total = 3 * 65536 // three full wraps
	for i := 0; i < total; i++ {
		seq := uint16(i)
		if d.Duplicate(seq) {
			t.Fatalf("fresh packet %d (seq %d) flagged as duplicate", i, seq)
		}
		if !d.Duplicate(seq) {
			t.Fatalf("second path copy of packet %d (seq %d) not flagged", i, seq)
		}
	}
	if len(d.seen) > dedupHorizon+1 {
		t.Errorf("seen-set grew to %d entries, hard bound is %d", len(d.seen), dedupHorizon+1)
	}
}

// TestDedupMemoryHardBound: the eviction cursor keeps the seen-set at the
// horizon after *every* insert — the bound is a watermark-free invariant,
// not a prune threshold the map idles at.
func TestDedupMemoryHardBound(t *testing.T) {
	d := newMultipathDedup()
	for i := 0; i < 200_000; i++ {
		d.Duplicate(uint16(i))
		if len(d.seen) > dedupHorizon+1 {
			t.Fatalf("after %d inserts the seen-set holds %d entries, bound is %d",
				i+1, len(d.seen), dedupHorizon+1)
		}
	}
	if d.evict != d.highest-dedupHorizon {
		t.Errorf("eviction cursor at %d, want highest-horizon = %d", d.evict, d.highest-dedupHorizon)
	}
}

// TestDedupBelowHorizon: a copy older than the horizon reports as a
// duplicate (its slot is gone either way) and must not resurrect state.
func TestDedupBelowHorizon(t *testing.T) {
	d := newMultipathDedup()
	for i := 0; i < dedupHorizon+1000; i++ {
		d.Duplicate(uint16(i))
	}
	size := len(d.seen)
	// Sequence 100 is far below the cursor now.
	if !d.Duplicate(100) {
		t.Error("a below-horizon copy must report duplicate")
	}
	d.Mark(101)
	if len(d.seen) != size {
		t.Errorf("below-horizon traffic grew the seen-set: %d -> %d", size, len(d.seen))
	}
}

// TestDedupReorderAcrossWrap checks the extended-sequence unwrapping on the
// slower path: a copy arriving shortly *behind* the wrap boundary must still
// map to its pre-wrap key and be recognized as a duplicate, while a fresh
// sequence just after the boundary must not.
func TestDedupReorderAcrossWrap(t *testing.T) {
	d := newMultipathDedup()
	// Walk up to just before the boundary.
	for i := 65530; i < 65536; i++ {
		if d.Duplicate(uint16(i)) {
			t.Fatalf("seq %d duplicate on first sight", i)
		}
	}
	// Cross it.
	if d.Duplicate(0) || d.Duplicate(1) {
		t.Fatal("post-wrap sequences flagged as duplicates")
	}
	// The second path's copy of the post-wrap packet.
	if !d.Duplicate(0) {
		t.Fatal("second copy of post-wrap seq 0 not flagged")
	}
	if !d.Duplicate(uint16(65531)) {
		t.Fatal("late pre-wrap copy of seq 65531 not recognized as duplicate")
	}
	// Mark (the RTX path) must land in the same key space.
	d.Mark(5)
	if !d.Duplicate(5) {
		t.Fatal("sequence Marked via the repair path not recognized as duplicate")
	}
}
