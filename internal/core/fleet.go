package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/flight"
	"rpivideo/internal/metrics"
	"rpivideo/internal/obs"
	"rpivideo/internal/sim"
)

// MaxFleetSize bounds -fleet so a typo cannot ask for a trillion UAVs.
const MaxFleetSize = 1 << 20

// FleetConfig describes a fleet run: N UAVs flying concurrently against
// one shared base-station map, with per-cell PRB schedulers splitting each
// cell's capacity across the UAVs camped on it.
type FleetConfig struct {
	// Config is the per-UAV template. Its Seed is the fleet base seed:
	// the shared deployment is drawn from it, and UAV u flies with
	// DeriveSeed(Seed, u) — the same derivation campaigns use — so fleet
	// results are pure functions of (Config, Size, Sched) and independent
	// of Workers. Bonded configs are rejected: contention is modeled for
	// the single-operator chain.
	Config Config
	// Size is the number of UAVs (values below 1 mean 1).
	Size int
	// Sched selects the per-cell PRB scheduler (round-robin by default).
	Sched cell.SchedulerKind
	// Epoch is the scheduling epoch: attachment is sampled and shares
	// recomputed at this cadence. Default 100 ms.
	Epoch time.Duration
	// OverloadShare is the per-user share floor below which a multi-user
	// cell-epoch counts as overloaded. Default 0.25.
	OverloadShare float64
	// Spread is the radius in metres of the uniform disc over which UAV
	// origins scatter around the deployment centre. Zero selects a
	// per-environment default that keeps the fleet inside the map.
	Spread float64
	// Workers caps parallelism for the per-UAV phases (0 = GOMAXPROCS).
	// The result is byte-identical at any setting.
	Workers int
	// Events retains the per-cell attach/detach/overload event timeline in
	// the result. Off by default: a 500-UAV urban fleet generates tens of
	// thousands of events.
	Events bool
	// Progress, when non-nil, is invoked once per completed UAV run
	// (phase 3), serialized by the engine.
	Progress func(CampaignProgress)
	// StatusSink, when non-nil, receives live telemetry: a per-cell
	// snapshot after the phase-2 scheduling fold, then a progress snapshot
	// (with the cell table attached) after every completed UAV run. Purely
	// observational.
	StatusSink obs.StatusSink
}

// FleetResult is the aggregate of one fleet run.
type FleetResult struct {
	Size  int
	Sched cell.SchedulerKind
	Epoch time.Duration
	// Seed is the fleet base seed; Duration the per-UAV run length.
	Seed     int64
	Duration time.Duration
	// Deployment is the shared base-station map the fleet contended for.
	Deployment []cell.BS
	// Summary folds every UAV's Result in UAV-index order — the same
	// streaming fold campaigns use, so memory stays O(1) in fleet size.
	Summary *Summary
	// PerUAVGoodput holds one sample per UAV: its mean goodput in Mbps.
	// The median of this distribution is the contention-monotonicity
	// metric (non-increasing in fleet size).
	PerUAVGoodput metrics.Dist
	// Cells, Attaches, Detaches, OverloadEpochs, PeakCellUsers, MinShare
	// and ShareHist summarize the scheduling fold (see cell.Contention).
	Cells          []cell.CellStats
	Attaches       int
	Detaches       int
	OverloadEpochs int
	PeakCellUsers  int
	MinShare       float64
	ShareHist      *obs.Histogram
	// CellEvents is the attach/detach/overload timeline (Events=true).
	CellEvents []obs.Event

	metrics *obs.Registry
}

// ParseFleetSpec parses the rpbench -fleet argument: "N" or "N/sched",
// where sched names a scheduler ("rr" or "pf"). The bare form selects
// round-robin.
func ParseFleetSpec(spec string) (int, cell.SchedulerKind, error) {
	s := strings.TrimSpace(spec)
	kind := cell.SchedRR
	if i := strings.IndexByte(s, '/'); i >= 0 {
		k, err := cell.ParseScheduler(s[i+1:])
		if err != nil {
			return 0, 0, fmt.Errorf("fleet spec %q: %w", spec, err)
		}
		kind = k
		s = s[:i]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, 0, fmt.Errorf("fleet spec %q: size must be an integer", spec)
	}
	if n < 1 {
		return 0, 0, fmt.Errorf("fleet spec %q: size must be at least 1", spec)
	}
	if n > MaxFleetSize {
		return 0, 0, fmt.Errorf("fleet spec %q: size exceeds the %d-UAV cap", spec, MaxFleetSize)
	}
	return n, kind, nil
}

// defaultSpread picks an origin-scatter radius that keeps the fleet over
// the deployment: half the urban grid span, or the rural ring radius scale.
func defaultSpread(env cell.Environment, op cell.Operator) float64 {
	if env == cell.Urban {
		return 750
	}
	if op == cell.P2 {
		return 600
	}
	return 1500
}

// fleetDuration resolves the per-UAV run length without consuming any
// UAV-private randomness (the ground profile's length is fixed; only its
// waypoints are random).
func fleetDuration(cfg Config) time.Duration {
	if cfg.Duration > 0 {
		return cfg.Duration
	}
	if cfg.Air {
		return flight.StandardFlight().Duration()
	}
	return 6 * time.Minute
}

// attachTimeline replays one UAV's radio setup offline — same seed, same
// streams, same handover config as its live run — stepping the handover
// machine at the RRC measurement cadence and sampling the serving cell at
// every scheduling-epoch start. Because the live run (with cfg.Cells
// injected) consumes the "ground" and "cell" streams identically, the
// timeline recorded here is exactly the attachment sequence phase 3
// realizes. Attachment is RSRP-driven (load-independent), which is what
// makes this precompute legal: contention changes a UAV's capacity, never
// its serving cell.
func attachTimeline(cfg Config, dur, epoch time.Duration, nEpochs int) []cell.AttachSample {
	s := sim.New(cfg.Seed)
	_, stateAt := setupMobility(cfg, s)
	machine, hoCfg := setupRadio(cfg, s.Stream("cell"))
	samples := make([]cell.AttachSample, 0, nEpochs)
	measT := time.Duration(0)
	for k := 0; k < nEpochs; k++ {
		at := epoch * time.Duration(k)
		// The live run steps the machine at every measurement instant
		// ≤ now; an epoch's attachment is the machine state after the
		// measurement on (or straddling) its start.
		for measT <= at && measT <= dur {
			machine.Step(measT, stateAt(measT))
			measT += hoCfg.MeasurementInterval
		}
		samples = append(samples, cell.AttachSample{Cell: machine.Serving(), RSRP: machine.ServingRSRP()})
	}
	return samples
}

// shareLookup adapts one UAV's per-epoch share row into the pure
// time-indexed lookup Config.CapacityShare wants.
func shareLookup(shares []float64, epoch time.Duration) func(time.Duration) float64 {
	return func(now time.Duration) float64 {
		k := int(now / epoch)
		if k < 0 {
			k = 0
		}
		if k >= len(shares) {
			k = len(shares) - 1
		}
		return shares[k]
	}
}

// fleetFan runs fn(0..n-1) across a bounded worker pool, recovering each
// index's panic into errs[i]. Indexed slice writes need no locking.
func fleetFan(workers, n int, errs []error, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	runOne := func(i int) {
		defer func() {
			if rec := recover(); rec != nil {
				errs[i] = fmt.Errorf("fleet uav %d panicked: %v", i, rec)
			}
		}()
		fn(i)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			runOne(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// RunFleet executes N concurrent flights against one shared base-station
// map in a single process, in three phases:
//
//  1. Per UAV (parallel): replay the radio setup offline and record the
//     attachment timeline at scheduling-epoch granularity.
//  2. Fold (serial): cell.Contend turns the timelines into per-UAV
//     per-epoch capacity shares under the selected PRB scheduler, plus
//     per-cell stats and the attach/detach/overload event stream.
//  3. Per UAV (parallel): the full run with the shared map and its share
//     row injected, folded into the Summary in UAV-index order.
//
// Every phase is a pure function of (Config, Size, Sched, ...), so the
// result — down to exported bytes — is identical at any Workers count.
// The errs slice is indexed by UAV; a failed UAV is simply missing from
// the aggregate.
func RunFleet(fc FleetConfig) (*FleetResult, []error) {
	if fc.Size < 1 {
		fc.Size = 1
	}
	if fc.Epoch <= 0 {
		fc.Epoch = 100 * time.Millisecond
	}
	if fc.OverloadShare <= 0 {
		fc.OverloadShare = 0.25
	}
	base := fc.Config
	if base.bondConfig().Enabled() {
		return nil, []error{errors.New("fleet: bonded configs are not supported (contention models the single-operator chain)")}
	}
	cells := cell.Deployment(base.Env, base.Op, sim.New(base.Seed).Stream("fleet-deploy"))
	dur := fleetDuration(base)
	nEpochs := int((dur + fc.Epoch - 1) / fc.Epoch)
	if nEpochs < 1 {
		nEpochs = 1
	}
	spread := fc.Spread
	if spread <= 0 {
		spread = defaultSpread(base.Env, base.Op)
	}

	// Derive each UAV's private config: own seed, own origin offset
	// (uniform over a disc — its own "fleet-origin" stream, so neither
	// the flight nor the radio streams shift), shared cells.
	cfgs := make([]Config, fc.Size)
	for u := range cfgs {
		c := base
		c.Seed = DeriveSeed(base.Seed, u)
		c.Duration = dur
		c.Cells = cells
		// Per-UAV traces stay off in fleets: the fleet-level surface is
		// the cell event timeline plus the folded summary.
		c.Trace = false
		org := sim.New(c.Seed).Stream("fleet-origin")
		r := spread * math.Sqrt(org.Float64())
		theta := 2 * math.Pi * org.Float64()
		c.OffsetX += r * math.Cos(theta)
		c.OffsetY += r * math.Sin(theta)
		cfgs[u] = c
	}

	errs := make([]error, fc.Size)

	// Phase 1: attachment timelines.
	timelines := make([][]cell.AttachSample, fc.Size)
	fleetFan(fc.Workers, fc.Size, errs, func(u int) {
		timelines[u] = attachTimeline(cfgs[u], dur, fc.Epoch, nEpochs)
	})
	for u, tl := range timelines {
		if tl == nil {
			timelines[u] = []cell.AttachSample{} // failed UAV: never attached
		}
	}

	// Phase 2: the scheduling fold.
	ct := cell.Contend(timelines, cells, fc.Sched, fc.OverloadShare, fc.Epoch, fc.Events)

	fr := &FleetResult{
		Size:           fc.Size,
		Sched:          fc.Sched,
		Epoch:          fc.Epoch,
		Seed:           base.Seed,
		Duration:       dur,
		Deployment:     cells,
		Summary:        &Summary{},
		Cells:          ct.Cells,
		Attaches:       ct.Attaches,
		Detaches:       ct.Detaches,
		OverloadEpochs: ct.OverloadEpochs,
		PeakCellUsers:  ct.PeakUsers,
		MinShare:       ct.MinShare,
		ShareHist:      ct.ShareHist,
		CellEvents:     ct.Events,
		metrics:        obs.NewRegistry(),
	}

	// The live status view of the shared cells is available as soon as the
	// scheduling fold completes — before any UAV has finished its full run.
	cellStatuses := cellStatusTable(ct.Cells)
	if fc.StatusSink != nil {
		fc.StatusSink.PublishStatus(obs.StatusSnapshot{
			Mode: "fleet", RunsTotal: fc.Size, Cells: cellStatuses,
		})
	}

	// Phase 3: full runs with the shares installed, folded in UAV-index
	// order through the same pending-map the campaign engine uses.
	var (
		mu        sync.Mutex
		pending   = make(map[int]*Result)
		next      int
		completed int
		failed    int
		simSecs   float64
	)
	start := time.Now()
	fold := func(u int, res *Result) {
		mu.Lock()
		defer mu.Unlock()
		pending[u] = res // nil marks a failed UAV so index order advances
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if r != nil {
				fr.Summary.AddResult(r)
				fr.metrics.Merge(r.MetricsRegistry())
				fr.PerUAVGoodput.Add(r.Goodput.Mean())
			}
			next++
		}
		completed++
		if errs[u] != nil {
			failed++
		}
		if res != nil {
			simSecs += res.Duration.Seconds()
		}
		if fc.Progress == nil && fc.StatusSink == nil {
			return
		}
		p := CampaignProgress{Completed: completed, Total: fc.Size, RunIndex: u, Err: errs[u], Wall: time.Since(start)}
		if w := p.Wall.Seconds(); w > 0 {
			p.SimRate = simSecs / w
		}
		if fc.Progress != nil {
			fc.Progress(p)
		}
		if fc.StatusSink != nil {
			if res != nil {
				reg := res.MetricsRegistry()
				if res.Telemetry != nil {
					reg.Merge(res.Telemetry)
				}
				fc.StatusSink.ObserveRun(reg)
			}
			s := campaignSnapshot(p, failed)
			s.Mode = "fleet"
			s.Cells = cellStatuses
			fc.StatusSink.PublishStatus(s)
		}
	}
	fleetFan(fc.Workers, fc.Size, errs, func(u int) {
		var res *Result
		defer func() { fold(u, res) }()
		if errs[u] != nil {
			return // phase 1 already failed this UAV
		}
		c := cfgs[u]
		c.CapacityShare = shareLookup(ct.Shares[u], fc.Epoch)
		r := Run(c)
		// Scrub the injected fields before folding: the summary's Config
		// must stay comparable (func fields defeat DeepEqual) and free of
		// the 500-way-shared deployment slice.
		r.Config.CapacityShare = nil
		r.Config.Cells = nil
		res = r
	})

	fr.finishMetrics()
	return fr, errs
}

// cellStatusTable converts the scheduling fold's per-cell stats into the
// live status shape. Built once per fleet run; the same slice is attached
// to every snapshot (StatusSink takes ownership and must not mutate it,
// which the Telemetry hub honors).
func cellStatusTable(cells []cell.CellStats) []obs.CellStatus {
	if len(cells) == 0 {
		return nil
	}
	out := make([]obs.CellStatus, len(cells))
	for i, cs := range cells {
		out[i] = obs.CellStatus{
			Cell:           cs.Cell,
			Attaches:       cs.Attaches,
			PeakUsers:      cs.PeakUsers,
			OverloadEpochs: cs.OverloadEpochs,
		}
	}
	return out
}

// finishMetrics layers the fleet-level keys over the merged per-UAV
// registry. Fleet keys are namespaced fleet_* so a fleet export can never
// be mistaken for (or pollute) a solo campaign baseline.
func (fr *FleetResult) finishMetrics() {
	reg := fr.metrics
	reg.Add("fleet_size", int64(fr.Size))
	reg.Add("fleet_cells", int64(len(fr.Deployment)))
	reg.Add("fleet_attaches", int64(fr.Attaches))
	reg.Add("fleet_detaches", int64(fr.Detaches))
	reg.Add("fleet_overload_epochs", int64(fr.OverloadEpochs))
	reg.Add("fleet_cell_events", int64(len(fr.CellEvents)))
	reg.SetGauge("fleet_peak_cell_users", float64(fr.PeakCellUsers))
	// A single watermark write, so the max-merge semantics of gauges
	// cannot invert this minimum.
	reg.SetGauge("fleet_min_share", fr.MinShare)
	reg.SetGauge("fleet_median_uav_goodput_mbps", fr.PerUAVGoodput.Median())
	reg.Histogram("fleet_share", obs.ShareBuckets).Merge(fr.ShareHist)
	observeSorted(reg.Histogram("fleet_uav_goodput_mbps", obs.RateMbpsBuckets), &fr.PerUAVGoodput)
}

// MetricsRegistry returns the fleet's metrics: every UAV's run registry
// merged in UAV-index order plus the fleet_* contention keys. Byte-stable
// at any worker count.
func (fr *FleetResult) MetricsRegistry() *obs.Registry { return fr.metrics }

// WriteMetrics writes the fleet metrics registry as canonical JSON.
func (fr *FleetResult) WriteMetrics(w io.Writer) error { return fr.metrics.WriteJSON(w) }

// WriteCellEvents writes the fleet's cell event timeline (attach, detach,
// overload transitions) in the standard JSONL trace format, under a single
// fleet meta line.
func (fr *FleetResult) WriteCellEvents(w io.Writer) error {
	meta := obs.RunMeta{
		Label:    fmt.Sprintf("fleet-%d-%s-%s", fr.Size, fr.Sched, fr.Summary.Config.Label()),
		Seed:     fr.Seed,
		Duration: fr.Duration,
		Events:   int64(len(fr.CellEvents)),
	}
	return obs.WriteJSONL(w, meta, fr.CellEvents)
}

// MedianUAVGoodput returns the median over UAVs of each UAV's mean goodput
// (Mbps) — the fleet's headline contention metric.
func (fr *FleetResult) MedianUAVGoodput() float64 { return fr.PerUAVGoodput.Median() }
