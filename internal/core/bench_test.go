package core

import (
	"testing"
	"time"

	"rpivideo/internal/cell"
)

// benchResults runs one short campaign once and hands the per-run results
// to both aggregation paths, so the benchmarks measure folding, not
// simulation.
func benchResults(b *testing.B) []*Result {
	b.Helper()
	cfg := Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 5, Duration: 20 * time.Second}
	results, errs := RunCampaignWithOptions(cfg, 4, CampaignOptions{})
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	return results
}

// BenchmarkAggregateSketch folds a campaign into the O(buckets) Summary —
// the path rpbench's BENCH_campaign.json numbers come from.
func BenchmarkAggregateSketch(b *testing.B) {
	results := benchResults(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := Summarize(results)
		b.SetBytes(int64(sum.RetainedBytes()))
	}
}

// BenchmarkAggregateMerge folds the same campaign through the
// sample-retaining Merge for comparison; its footprint grows with every
// per-run sample where the sketch's stays fixed.
func BenchmarkAggregateMerge(b *testing.B) {
	results := benchResults(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := Merge(results)
		b.SetBytes(8 * int64(len(m.OWDms.Samples())))
	}
}
