package core

import (
	"testing"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/fault"
)

// benchResults runs one short campaign once and hands the per-run results
// to both aggregation paths, so the benchmarks measure folding, not
// simulation.
func benchResults(b *testing.B) []*Result {
	b.Helper()
	cfg := Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 5, Duration: 20 * time.Second}
	results, errs := RunCampaignWithOptions(cfg, 4, CampaignOptions{})
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	return results
}

// BenchmarkAggregateSketch folds a campaign into the O(buckets) Summary —
// the path rpbench's BENCH_campaign.json numbers come from.
func BenchmarkAggregateSketch(b *testing.B) {
	results := benchResults(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := Summarize(results)
		b.SetBytes(int64(sum.RetainedBytes()))
	}
}

// BenchmarkAggregateMerge folds the same campaign through the
// sample-retaining Merge for comparison; its footprint grows with every
// per-run sample where the sketch's stays fixed.
func BenchmarkAggregateMerge(b *testing.B) {
	results := benchResults(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := Merge(results)
		b.SetBytes(8 * int64(len(m.OWDms.Samples())))
	}
}

// benchRun benchmarks one untraced run configuration and reports simulated
// seconds per wall second as a custom metric — the number that bounds
// campaign turnaround (rpbench -benchout gates the same metric in CI).
func benchRun(b *testing.B, cfg Config) {
	b.ReportAllocs()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		Run(cfg)
	}
	wall := time.Since(start).Seconds()
	if wall > 0 {
		b.ReportMetric(cfg.Duration.Seconds()*float64(b.N)/wall, "sim-s/wall-s")
	}
}

// BenchmarkRunUrbanGCC is the headline packet-path benchmark: a 30 s urban
// GCC run at steady state, the same horizon BENCH_run.json records.
func BenchmarkRunUrbanGCC(b *testing.B) {
	benchRun(b, Config{Env: cell.Urban, Op: cell.P1, CC: CCGCC, Seed: 1, Duration: 30 * time.Second})
}

// BenchmarkRunUrbanGCCFaults covers the fault path — outage windows, queue
// flushing, repair timers and their cancellation — which stresses the
// timer-pool Stop/remove machinery the heap rework changed.
func BenchmarkRunUrbanGCCFaults(b *testing.B) {
	benchRun(b, Config{
		Env: cell.Urban, Op: cell.P1, CC: CCGCC, Seed: 1, Duration: 30 * time.Second,
		Faults: fault.Config{
			Windows:          []fault.Window{{Start: 10 * time.Second, Duration: 2 * time.Second, Dir: fault.Both}},
			Watchdog:         true,
			KeyframeRecovery: true,
		},
	})
}

// BenchmarkRunRuralSCReAM covers the second controller and environment.
func BenchmarkRunRuralSCReAM(b *testing.B) {
	benchRun(b, Config{Env: cell.Rural, Op: cell.P1, CC: CCSCReAM, Seed: 1, Duration: 30 * time.Second})
}
