package core

import (
	"testing"
	"time"

	"rpivideo/internal/cell"
)

// short runs a truncated flight for fast structural tests.
func short(cfg Config) *Result {
	if cfg.Duration == 0 {
		cfg.Duration = 60 * time.Second
	}
	return Run(cfg)
}

func TestRunProducesAllMetrics(t *testing.T) {
	r := short(Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 1})
	if r.OWDms.N() == 0 {
		t.Error("no one-way delay samples")
	}
	if r.Goodput.N() == 0 {
		t.Error("no goodput samples")
	}
	if r.FPS.N() == 0 || r.PlaybackMs.N() == 0 || r.SSIM.N() == 0 {
		t.Error("missing video distributions")
	}
	if r.PacketsSent == 0 || r.PacketsDelivered == 0 {
		t.Errorf("packet counters: sent=%d delivered=%d", r.PacketsSent, r.PacketsDelivered)
	}
	if r.FramesPlayed == 0 {
		t.Error("no frames played")
	}
	if r.Duration != 60*time.Second {
		t.Errorf("duration = %v", r.Duration)
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := Config{Env: cell.Urban, Air: true, CC: CCSCReAM, Seed: 42, Duration: 45 * time.Second}
	a, b := Run(cfg), Run(cfg)
	if a.PacketsSent != b.PacketsSent || a.PacketsDelivered != b.PacketsDelivered ||
		a.FramesPlayed != b.FramesPlayed || a.ScreamLosses != b.ScreamLosses ||
		len(a.Handovers) != len(b.Handovers) {
		t.Errorf("same-seed runs differ: %+v vs %+v",
			[]int{a.PacketsSent, a.FramesPlayed, a.ScreamLosses},
			[]int{b.PacketsSent, b.FramesPlayed, b.ScreamLosses})
	}
	if a.GoodputMean() != b.GoodputMean() {
		t.Errorf("goodput differs: %v vs %v", a.GoodputMean(), b.GoodputMean())
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := short(Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 1})
	b := short(Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 2})
	if a.PacketsSent == b.PacketsSent && a.OWDms.Mean() == b.OWDms.Mean() {
		t.Error("different seeds produced identical runs")
	}
}

func TestKeepSeries(t *testing.T) {
	r := Run(Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 3, Duration: 30 * time.Second, KeepSeries: true})
	if r.OWDSeries == nil || r.OWDSeries.Len() == 0 {
		t.Fatal("KeepSeries did not populate OWDSeries")
	}
	if r.TargetSeries == nil || r.TargetSeries.Len() == 0 {
		t.Fatal("KeepSeries did not populate TargetSeries")
	}
	if r.GoodputSeries == nil || r.GoodputSeries.Len() == 0 {
		t.Fatal("KeepSeries did not populate GoodputSeries")
	}
	// Series must be time-ordered for window queries.
	pts := r.OWDSeries.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].T < pts[i-1].T {
			t.Fatal("OWDSeries not sorted")
		}
	}
	// Without KeepSeries the series stay nil.
	r2 := Run(Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 3, Duration: 30 * time.Second})
	if r2.OWDSeries != nil {
		t.Error("OWDSeries populated without KeepSeries")
	}
}

func TestPingWorkload(t *testing.T) {
	r := Run(Config{Env: cell.Urban, Air: true, Workload: WorkloadPing, Seed: 5})
	if r.RTTms.N() == 0 {
		t.Fatal("no RTT samples")
	}
	if r.RTTms.Median() < 30 || r.RTTms.Median() > 120 {
		t.Errorf("median RTT = %.0f ms, want ≈35–70", r.RTTms.Median())
	}
	// The flight dwells at all altitudes, so every bucket gets samples.
	for b := 0; b < int(altBuckets); b++ {
		if r.RTTByAlt[b].N() == 0 {
			t.Errorf("altitude bucket %v has no samples", AltBucket(b))
		}
	}
	// No video metrics for ping runs.
	if r.FPS.N() != 0 {
		t.Error("ping run produced FPS samples")
	}
}

func TestAltitudeBuckets(t *testing.T) {
	cases := []struct {
		alt  float64
		want AltBucket
	}{{0, Alt0to20}, {20, Alt0to20}, {21, Alt21to60}, {60, Alt21to60}, {100, Alt61to100}, {120, Alt101to140}}
	for _, c := range cases {
		if got := BucketFor(c.alt); got != c.want {
			t.Errorf("BucketFor(%v) = %v, want %v", c.alt, got, c.want)
		}
	}
}

func TestConfigLabelsAndDefaults(t *testing.T) {
	c := Config{Env: cell.Rural, Op: cell.P2, Air: true, CC: CCSCReAM}
	if got := c.Label(); got != "rural-P2-air-scream" {
		t.Errorf("Label = %q", got)
	}
	if got := (Config{Env: cell.Urban}).staticRate(); got != 25e6 {
		t.Errorf("urban static rate = %v", got)
	}
	if got := (Config{Env: cell.Rural}).staticRate(); got != 8e6 {
		t.Errorf("rural static rate = %v", got)
	}
	if got := (Config{StaticRate: 5e6}).staticRate(); got != 5e6 {
		t.Errorf("explicit static rate = %v", got)
	}
}

func TestMergeAggregates(t *testing.T) {
	cfg := Config{Env: cell.Urban, Air: true, CC: CCStatic, Seed: 7, Duration: 30 * time.Second}
	rs := RunCampaign(cfg, 3)
	if len(rs) != 3 {
		t.Fatalf("campaign returned %d results", len(rs))
	}
	m := Merge(rs)
	wantN := rs[0].OWDms.N() + rs[1].OWDms.N() + rs[2].OWDms.N()
	if m.OWDms.N() != wantN {
		t.Errorf("merged OWD samples = %d, want %d", m.OWDms.N(), wantN)
	}
	if m.Duration != 90*time.Second {
		t.Errorf("merged duration = %v", m.Duration)
	}
	wantHO := len(rs[0].Handovers) + len(rs[1].Handovers) + len(rs[2].Handovers)
	if len(m.Handovers) != wantHO {
		t.Errorf("merged handovers = %d, want %d", len(m.Handovers), wantHO)
	}
	if Merge(nil).OWDms.N() != 0 {
		t.Error("empty merge should be empty")
	}
}

func TestCampaignSeedsDistinct(t *testing.T) {
	cfg := Config{Env: cell.Rural, Air: true, CC: CCStatic, Seed: 9, Duration: 20 * time.Second}
	rs := RunCampaign(cfg, 2)
	if rs[0].PacketsSent == rs[1].PacketsSent && rs[0].OWDms.Mean() == rs[1].OWDms.Mean() {
		t.Error("campaign runs look identical; seeds not derived")
	}
}

// --- Calibration: the headline shapes of the paper's evaluation. These use
// full-length flights with a handful of seeds; see EXPERIMENTS.md for the
// full paper-vs-measured record.

func merged(t *testing.T, cfg Config, runs int) *Result {
	t.Helper()
	return Merge(RunCampaign(cfg, runs))
}

func TestShapeFig6UrbanGoodputOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full flights")
	}
	static := merged(t, Config{Env: cell.Urban, Air: true, CC: CCStatic, Seed: 11}, 3)
	gcc := merged(t, Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 11}, 3)
	scream := merged(t, Config{Env: cell.Urban, Air: true, CC: CCSCReAM, Seed: 11}, 3)
	t.Logf("urban goodput: static %.1f, scream %.1f, gcc %.1f (paper: 25, 21, 19)",
		static.GoodputMean(), scream.GoodputMean(), gcc.GoodputMean())
	if !(static.GoodputMean() > scream.GoodputMean() && scream.GoodputMean() > gcc.GoodputMean()) {
		t.Errorf("urban ordering violated: static %.1f, scream %.1f, gcc %.1f",
			static.GoodputMean(), scream.GoodputMean(), gcc.GoodputMean())
	}
	if static.GoodputMean() < 23 || static.GoodputMean() > 27 {
		t.Errorf("urban static goodput %.1f, want ≈25", static.GoodputMean())
	}
	if gcc.GoodputMean() < 14 {
		t.Errorf("urban GCC goodput %.1f, want near the paper's 19", gcc.GoodputMean())
	}
}

func TestShapeFig6RuralScreamBest(t *testing.T) {
	if testing.Short() {
		t.Skip("full flights")
	}
	static := merged(t, Config{Env: cell.Rural, Air: true, CC: CCStatic, Seed: 13}, 3)
	scream := merged(t, Config{Env: cell.Rural, Air: true, CC: CCSCReAM, Seed: 13}, 3)
	t.Logf("rural goodput: scream %.1f, static %.1f (paper: 10.5 vs 8)",
		scream.GoodputMean(), static.GoodputMean())
	if scream.GoodputMean() <= static.GoodputMean() {
		t.Errorf("rural: SCReAM (%.1f) should out-utilize static (%.1f) under fluctuating capacity",
			scream.GoodputMean(), static.GoodputMean())
	}
	if static.GoodputMean() < 7 || static.GoodputMean() > 9 {
		t.Errorf("rural static goodput %.1f, want ≈8", static.GoodputMean())
	}
}

func TestShapeFig7cScreamUrbanLatencyCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("full flights")
	}
	gcc := merged(t, Config{Env: cell.Urban, Air: true, CC: CCGCC, Seed: 17}, 2)
	scream := merged(t, Config{Env: cell.Urban, Air: true, CC: CCSCReAM, Seed: 17}, 2)
	gccOK := gcc.PlaybackMs.FracBelow(300)
	scrOK := scream.PlaybackMs.FracBelow(300)
	t.Logf("urban playback<300ms: gcc %.0f%%, scream %.0f%% (paper: ≈90%% vs ≈38%%)", 100*gccOK, 100*scrOK)
	if gccOK < 0.65 {
		t.Errorf("urban GCC playback<300ms = %.0f%%, want high", 100*gccOK)
	}
	if scrOK > gccOK-0.2 {
		t.Errorf("urban SCReAM (%.0f%%) must be far below GCC (%.0f%%)", 100*scrOK, 100*gccOK)
	}
}

func TestShapePERBand(t *testing.T) {
	if testing.Short() {
		t.Skip("full flights")
	}
	r := merged(t, Config{Env: cell.Urban, Air: true, CC: CCStatic, Seed: 19}, 3)
	t.Logf("PER = %.4f%% (paper: 0.06–0.07%%)", 100*r.PER)
	if r.PER < 0.0002 || r.PER > 0.0015 {
		t.Errorf("PER %.5f outside the paper's band", r.PER)
	}
}

func TestShapeRampUp(t *testing.T) {
	if testing.Short() {
		t.Skip("full flights")
	}
	// Measured on the ground in the urban cell (stable, abundant capacity).
	gcc := Run(Config{Env: cell.Urban, Air: false, CC: CCGCC, Seed: 23, Duration: 60 * time.Second})
	scream := Run(Config{Env: cell.Urban, Air: false, CC: CCSCReAM, Seed: 23, Duration: 60 * time.Second})
	t.Logf("ramp-up to 25 Mbps: gcc %v, scream %v (paper: ≈12 s vs ≈25 s)", gcc.RampUpTo25, scream.RampUpTo25)
	if gcc.RampUpTo25 == 0 {
		t.Error("GCC never ramped to 25 Mbps on the ground")
	}
	if scream.RampUpTo25 == 0 {
		t.Error("SCReAM never ramped to 25 Mbps on the ground")
	}
	if gcc.RampUpTo25 != 0 && scream.RampUpTo25 != 0 && scream.RampUpTo25 <= gcc.RampUpTo25 {
		t.Errorf("SCReAM ramp (%v) should be slower than GCC (%v)", scream.RampUpTo25, gcc.RampUpTo25)
	}
}

func TestShapeHandoverRateAirVsGround(t *testing.T) {
	if testing.Short() {
		t.Skip("full flights")
	}
	air := merged(t, Config{Env: cell.Urban, Air: true, CC: CCStatic, Seed: 29}, 3)
	grd := merged(t, Config{Env: cell.Urban, Air: false, CC: CCStatic, Seed: 29}, 3)
	t.Logf("HO/s: air %.3f, ground %.3f", air.HandoverRate(), grd.HandoverRate())
	if air.HandoverRate() < 4*grd.HandoverRate() {
		t.Errorf("air HO rate (%.3f) should be far above ground (%.3f)", air.HandoverRate(), grd.HandoverRate())
	}
}

func TestRTCPReportsProduceMetrics(t *testing.T) {
	r := short(Config{Env: cell.Urban, Air: true, CC: CCStatic, Seed: 13})
	if r.JitterMs.N() < 30 {
		t.Errorf("jitter samples = %d, want ≈ one per second", r.JitterMs.N())
	}
	if r.JitterMs.Median() <= 0 || r.JitterMs.Median() > 100 {
		t.Errorf("median interarrival jitter = %.2f ms, implausible", r.JitterMs.Median())
	}
	if r.RTCPRTTms.N() < 30 {
		t.Errorf("RTCP RTT samples = %d", r.RTCPRTTms.N())
	}
	// RTT ≈ uplink base (22) + downlink base (13) plus queueing: the
	// median should sit in the few-tens-of-ms band the paper reports
	// (lowest RTT ≈ 35 ms).
	if med := r.RTCPRTTms.Median(); med < 30 || med > 150 {
		t.Errorf("median RTCP RTT = %.0f ms, want ≈35–100", med)
	}
}
