package core

// multipathDedup suppresses the second copy of each packet on a bonded
// run. RTP sequence numbers are 16-bit and a six-minute flight at campaign
// bitrates wraps them many times, so deduplication is keyed by the
// *extended* (unwrapped, 64-bit) sequence: after a wrap, a fresh packet
// whose 16-bit sequence collides with one from exactly one wrap ago is a
// new key, not a false duplicate.
//
// Memory is bounded eagerly: an eviction cursor trails the highest
// extended sequence by dedupHorizon, and every note advances it, deleting
// the aged keys as it goes. The seen-set therefore never holds more than
// dedupHorizon+1 entries — a hard bound, amortized O(1) per packet —
// where the previous implementation only pruned when the map topped a
// threshold and rescanned all of it (an O(n) stall on the packet path,
// and a map that stayed at the threshold watermark forever). A copy
// arriving from *below* the cursor is beyond any plausible reorder window
// and reports as a duplicate: the player would discard it anyway, and
// answering fresh would double-count its slot.
type multipathDedup struct {
	started bool
	highest int64 // extended sequence of the newest packet seen
	evict   int64 // every key < evict has been evicted
	seen    map[int64]bool
}

// dedupHorizon is the reorder window, in sequences, that deduplication
// remembers below the highest sequence seen. At campaign packet rates
// (~2-3k pkt/s) 1<<13 sequences is several seconds — far beyond any path
// skew the bonded chains can produce.
const dedupHorizon = 1 << 13

func newMultipathDedup() *multipathDedup {
	return &multipathDedup{seen: make(map[int64]bool, 1024)}
}

// extend unwraps a 16-bit sequence to the extended sequence nearest the
// highest one seen (RFC 1982 serial-number arithmetic, like RTP's extended
// highest sequence number but without the jump limit).
func (d *multipathDedup) extend(seq uint16) int64 {
	if !d.started {
		return int64(seq)
	}
	return d.highest + int64(int16(seq-uint16(d.highest)))
}

// note records ext as seen and advances the eviction cursor to the horizon.
func (d *multipathDedup) note(ext int64) {
	d.seen[ext] = true
	if !d.started {
		d.started = true
		d.highest = ext
		d.evict = ext - dedupHorizon
	} else if ext > d.highest {
		d.highest = ext
	}
	for lo := d.highest - dedupHorizon; d.evict < lo; d.evict++ {
		delete(d.seen, d.evict)
	}
}

// DuplicateExt records seq, reporting its extended sequence and whether a
// copy was already delivered (or its slot already aged past the horizon).
func (d *multipathDedup) DuplicateExt(seq uint16) (ext int64, dup bool) {
	ext = d.extend(seq)
	if d.started && ext < d.evict {
		return ext, true
	}
	if d.seen[ext] {
		return ext, true
	}
	d.note(ext)
	return ext, false
}

// Duplicate records seq and reports whether a copy was already delivered.
func (d *multipathDedup) Duplicate(seq uint16) bool {
	_, dup := d.DuplicateExt(seq)
	return dup
}

// Mark records a sequence delivered through another channel (an RTX repair)
// so a late path copy is still recognized as a duplicate.
func (d *multipathDedup) Mark(seq uint16) {
	ext := d.extend(seq)
	if d.started && ext < d.evict {
		return
	}
	d.note(ext)
}
