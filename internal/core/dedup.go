package core

// multipathDedup suppresses the second copy of each packet on a multipath
// run. RTP sequence numbers are 16-bit and a six-minute flight at campaign
// bitrates wraps them many times, so deduplication is keyed by the
// *extended* (unwrapped, 64-bit) sequence: after a wrap, a fresh packet
// whose 16-bit sequence collides with one from exactly one wrap ago is a
// new key, not a false duplicate.
//
// (The previous implementation keyed the seen-set by the raw uint16 and
// pruned by uint16 distance from the highest sequence; entries exactly one
// wrap old sat at distance ≡ 0 and were never evicted, so the first fresh
// copy after a wrap was discarded as a MultipathDuplicate and the map grew
// without bound.)
type multipathDedup struct {
	started bool
	highest int64 // extended sequence of the newest packet seen
	seen    map[int64]bool
}

// dedup window sizing: prune when the seen-set tops pruneAbove entries,
// evicting everything more than pruneKeep sequences behind the highest.
const (
	dedupPruneAbove = 1 << 14
	dedupPruneKeep  = 1 << 13
)

func newMultipathDedup() *multipathDedup {
	return &multipathDedup{seen: make(map[int64]bool, 1024)}
}

// extend unwraps a 16-bit sequence to the extended sequence nearest the
// highest one seen (RFC 1982 serial-number arithmetic, like RTP's extended
// highest sequence number but without the jump limit).
func (d *multipathDedup) extend(seq uint16) int64 {
	if !d.started {
		return int64(seq)
	}
	return d.highest + int64(int16(seq-uint16(d.highest)))
}

// note records ext as seen and keeps highest and the window current.
func (d *multipathDedup) note(ext int64) {
	d.seen[ext] = true
	if !d.started || ext > d.highest {
		d.highest = ext
		d.started = true
	}
	if len(d.seen) > dedupPruneAbove {
		for k := range d.seen {
			if d.highest-k > dedupPruneKeep {
				delete(d.seen, k)
			}
		}
	}
}

// Duplicate records seq and reports whether a copy was already delivered.
func (d *multipathDedup) Duplicate(seq uint16) bool {
	ext := d.extend(seq)
	if d.seen[ext] {
		return true
	}
	d.note(ext)
	return false
}

// Mark records a sequence delivered through another channel (an RTX repair)
// so a late path copy is still recognized as a duplicate.
func (d *multipathDedup) Mark(seq uint16) {
	d.note(d.extend(seq))
}
