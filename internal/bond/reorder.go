package bond

import (
	"sort"
	"time"
)

// pending is one buffered packet awaiting release.
type pending struct {
	ext  int64 // extended (unwrapped 64-bit) media sequence number
	at   time.Duration
	meta interface{}
}

// Reorder is the receiver-side bounded reorder buffer: packets striped
// across paths of different latency arrive interleaved, and the buffer
// re-serializes them in extended-sequence order for the player. It is
// bounded two ways — a deadline (no packet waits longer than Deadline for
// a gap to fill; real-time video would rather skip than stall) and a
// capacity cap (overflow force-releases the oldest run). Packets arriving
// after their slot was released are dropped as late.
type Reorder struct {
	// Deadline bounds how long the head-of-line packet waits for a gap.
	Deadline time.Duration
	// Cap bounds the buffer in packets.
	Cap int
	// Emit releases one packet to the player, in strictly increasing
	// extended-sequence order.
	Emit func(meta interface{}, now time.Duration)
	// OnLate observes each late drop (for tracing).
	OnLate func(ext int64, now time.Duration)

	next    int64
	started bool
	buf     []pending // sorted by ext, unique, all ≥ next

	// Late counts packets dropped because their slot had already been
	// released; Dups counts duplicates of a buffered packet.
	Late, Dups int64
	// DeadlineReleases and CapReleases count forced advances past a gap;
	// GapSkipped counts the sequence slots abandoned by those advances.
	DeadlineReleases, CapReleases int64
	GapSkipped                    int64
}

// NewReorder builds a buffer; deadline and cap fall back to the package
// defaults when zero.
func NewReorder(deadline time.Duration, capacity int, emit func(meta interface{}, now time.Duration)) *Reorder {
	d := Config{ReorderDeadline: deadline, ReorderCap: capacity}.WithDefaults()
	return &Reorder{Deadline: d.ReorderDeadline, Cap: d.ReorderCap, Emit: emit}
}

// Len returns the number of buffered packets.
func (r *Reorder) Len() int { return len(r.buf) }

// Next returns the next extended sequence number the buffer will release.
func (r *Reorder) Next() int64 { return r.next }

// Insert offers one arrived packet. In-order packets (and any run they
// complete) release immediately; out-of-order packets buffer until the gap
// fills, the deadline passes or the cap forces them out.
func (r *Reorder) Insert(ext int64, meta interface{}, now time.Duration) {
	if !r.started {
		r.started, r.next = true, ext
	}
	if ext < r.next {
		r.Late++
		if r.OnLate != nil {
			r.OnLate(ext, now)
		}
		return
	}
	i := sort.Search(len(r.buf), func(i int) bool { return r.buf[i].ext >= ext })
	if i < len(r.buf) && r.buf[i].ext == ext {
		r.Dups++
		return
	}
	r.buf = append(r.buf, pending{})
	copy(r.buf[i+1:], r.buf[i:])
	r.buf[i] = pending{ext: ext, at: now, meta: meta}
	r.release(now)
	for len(r.buf) > r.Cap {
		r.CapReleases++
		r.advance(now)
	}
}

// Tick releases every buffered run whose head has waited past the
// deadline. The harness calls it on the monitor cadence.
func (r *Reorder) Tick(now time.Duration) {
	for len(r.buf) > 0 && now-r.buf[0].at >= r.Deadline {
		r.DeadlineReleases++
		r.advance(now)
	}
}

// Flush releases everything still buffered (end of run).
func (r *Reorder) Flush(now time.Duration) {
	for len(r.buf) > 0 {
		r.advance(now)
	}
}

// release emits the in-order run at the head of the buffer.
func (r *Reorder) release(now time.Duration) {
	n := 0
	for n < len(r.buf) && r.buf[n].ext == r.next {
		r.Emit(r.buf[n].meta, now)
		r.next++
		n++
	}
	if n > 0 {
		r.buf = r.buf[:copy(r.buf, r.buf[n:])]
	}
}

// advance abandons the gap before the oldest buffered packet and releases
// the run it heads. The skipped slots are packets that never arrived
// (already accounted as link losses) or will now count as late.
func (r *Reorder) advance(now time.Duration) {
	r.GapSkipped += r.buf[0].ext - r.next
	r.next = r.buf[0].ext
	r.release(now)
}
