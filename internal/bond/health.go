package bond

import "time"

// pathState is the monitor's view of one bonded radio chain.
type pathState struct {
	up bool
	// rttEwma is the delivery-RTT EWMA in milliseconds (send → delivered,
	// TWCC-style), valid once haveRTT.
	rttEwma float64
	haveRTT bool
	// lossEwma is the per-packet delivery-loss EWMA: each delivery pushes
	// it toward 0, each loss toward 1.
	lossEwma float64
	// rateEwma is the delivered-rate EWMA in bits/s, sampled per tick.
	rateEwma float64
	// bytesAcc accumulates delivered bytes since the last tick.
	bytesAcc int
	// breach counts consecutive unhealthy ticks while up; healthy counts
	// consecutive clean ticks while down (the probation streak).
	breach, healthy int
	downSince       time.Duration
	// sprayCredit is the smooth-weighted-striping accumulator (spray only).
	sprayCredit float64
	// Accounting, exported through Stats.
	sent, delivered, lost int64
	downFor               time.Duration
}

// PathStats is one path's accounting snapshot.
type PathStats struct {
	// Sent and Delivered count media packets routed to and delivered over
	// the path (probe duplicates included).
	Sent, Delivered int64
	// Lost counts media packets the path's links dropped.
	Lost int64
	// DownFor is the total time the monitor held the path down.
	DownFor time.Duration
	// Up is the path's health state at snapshot time.
	Up bool
}

// Manager is the bonding brain on the sender: it owns the per-path health
// monitor and the scheduling policy, and the core harness consults it for
// every media packet. It draws no randomness and keeps no map state, so
// bonded runs stay deterministic.
type Manager struct {
	cfg   Config
	sched Scheduler
	paths [NumPaths]pathState
	// outage probes report whether each path's radio chain is currently in
	// a service interruption (handover execution, RLF re-establishment or
	// a scripted window). Installed by the harness.
	outage [NumPaths]func(now time.Duration) bool
	// active is the path the failover/cheapest schedulers currently send
	// on; duplicate and spray ignore it.
	active int
	// pktCount numbers the media packets routed, driving the probe cadence.
	pktCount int64
	// Switches counts active-path changes (failover/cheapest).
	Switches int
	// OnEvent, when set, receives every path-down/path-up/failover
	// decision as it is made.
	OnEvent func(Event)

	lastTick time.Duration
	haveTick bool
}

// NewManager builds a Manager for cfg (zero fields resolved to defaults).
// Paths start up, path 0 active.
func NewManager(cfg Config) *Manager {
	m := &Manager{cfg: cfg.WithDefaults()}
	m.sched = newScheduler(m.cfg.Policy)
	for i := range m.paths {
		m.paths[i].up = true
	}
	return m
}

// Policy returns the active scheduling policy.
func (m *Manager) Policy() Policy { return m.cfg.Policy }

// Config returns the resolved configuration.
func (m *Manager) Config() Config { return m.cfg }

// SetOutageProbe installs path's service-interruption probe.
func (m *Manager) SetOutageProbe(path int, probe func(now time.Duration) bool) {
	m.outage[path] = probe
}

// Active returns the path the failover/cheapest schedulers currently use.
func (m *Manager) Active() int { return m.active }

// PathUp reports path's health state.
func (m *Manager) PathUp(path int) bool { return m.paths[path].up }

// Stats snapshots path's accounting. now closes the open down interval so
// a path still down at run end is fully accounted.
func (m *Manager) Stats(path int, now time.Duration) PathStats {
	p := &m.paths[path]
	s := PathStats{Sent: p.sent, Delivered: p.delivered, Lost: p.lost, DownFor: p.downFor, Up: p.up}
	if !p.up {
		s.DownFor += now - p.downSince
	}
	return s
}

// ObserveDelivery feeds one delivered media packet on path: rtt is the
// send-to-delivery delay, size the wire size in bytes.
func (m *Manager) ObserveDelivery(path int, rtt time.Duration, size int) {
	p := &m.paths[path]
	a := m.cfg.Health.Alpha
	ms := float64(rtt) / float64(time.Millisecond)
	if !p.haveRTT {
		p.rttEwma, p.haveRTT = ms, true
	} else {
		p.rttEwma += a * (ms - p.rttEwma)
	}
	p.lossEwma += a * (0 - p.lossEwma)
	p.bytesAcc += size
	p.delivered++
}

// ObserveLoss feeds one media packet dropped by path's links.
func (m *Manager) ObserveLoss(path int) {
	p := &m.paths[path]
	p.lossEwma += m.cfg.Health.Alpha * (1 - p.lossEwma)
	p.lost++
}

// observeSent records a routed copy (called by Route).
func (m *Manager) observeSent(set PathSet) {
	for i := 0; i < NumPaths; i++ {
		if set.Has(i) {
			m.paths[i].sent++
		}
	}
}

// Tick advances the health state machine: it folds the tick's delivered
// bytes into the rate EWMA, evaluates each path against the outage probe
// and loss threshold under the up/down hysteresis, and lets the scheduler
// react to the resulting transitions. The harness calls it on a fixed
// cadence (50 ms).
func (m *Manager) Tick(now time.Duration) {
	h := m.cfg.Health
	dt := now - m.lastTick
	for i := range m.paths {
		p := &m.paths[i]
		if m.haveTick && dt > 0 {
			inst := float64(p.bytesAcc*8) / dt.Seconds()
			p.rateEwma += h.RateAlpha * (inst - p.rateEwma)
		}
		p.bytesAcc = 0
		inOutage := m.outage[i] != nil && m.outage[i](now)
		unhealthy := inOutage || p.lossEwma > h.LossDown
		if p.up {
			if unhealthy {
				p.breach++
			} else {
				p.breach = 0
			}
			if p.breach >= h.DownAfterTicks {
				p.up, p.breach, p.healthy = false, 0, 0
				p.downSince = now
				cause := CauseLoss
				if inOutage {
					cause = CauseOutage
				}
				m.emit(Event{At: now, Kind: EventPathDown, Path: i, Cause: cause})
			}
		} else {
			if !inOutage && p.lossEwma < h.LossUp {
				p.healthy++
			} else {
				p.healthy = 0
			}
			if p.healthy >= h.ProbationTicks {
				p.up, p.breach, p.healthy = true, 0, 0
				p.downFor += now - p.downSince
				m.emit(Event{At: now, Kind: EventPathUp, Path: i, DownFor: now - p.downSince})
			}
		}
	}
	m.lastTick, m.haveTick = now, true
	m.sched.Tick(m, now)
}

// Route picks the path set carrying the next media packet of size bytes.
// It never returns the empty set: with every path down the scheduler still
// nominates one (packets queue behind the interruption, which is how the
// monitor later observes recovery).
func (m *Manager) Route(now time.Duration, size int) PathSet {
	m.pktCount++
	set := m.sched.Route(m, now, size)
	if set == 0 {
		set = set.with(m.active)
	}
	m.observeSent(set)
	return set
}

// Budget aggregates the per-path send budgets under the active policy into
// the bonded rate the congestion controller's target is capped to, in
// bits/s: duplicate takes the weakest live path (every copy must fit),
// failover and cheapest the active path, spray the sum of live paths.
func (m *Manager) Budget() float64 { return m.sched.Budget(m) }

// pathBudget is one path's send budget: the delivered-rate EWMA with
// headroom, floored so an idle path still admits a restart, and zero while
// the path is down.
func (m *Manager) pathBudget(i int) float64 {
	p := &m.paths[i]
	if !p.up {
		return 0
	}
	b := p.rateEwma * m.cfg.Health.RateHeadroom
	if b < m.cfg.Health.MinPathBudget {
		b = m.cfg.Health.MinPathBudget
	}
	return b
}

// switchActive moves the failover/cheapest active path with an event.
func (m *Manager) switchActive(now time.Duration, to int) {
	if to == m.active {
		return
	}
	m.emit(Event{At: now, Kind: EventFailover, From: m.active, To: to})
	m.active = to
	m.Switches++
}

func (m *Manager) emit(ev Event) {
	if m.OnEvent != nil {
		m.OnEvent(ev)
	}
}

// probeDue reports whether the current packet is a probe slot: every
// ProbeEvery-th packet is duplicated onto the paths the scheduler is not
// using so their health estimates stay warm.
func (m *Manager) probeDue() bool {
	return m.pktCount%int64(m.cfg.ProbeEvery) == 0
}
