package bond

import (
	"testing"
	"time"
)

// TestParsePolicyRoundTrip pins the CLI names as inverses of String.
func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range append(Policies(), PolicyNone) {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy must reject unknown names")
	}
}

// TestWithDefaults: the zero config resolves to the documented defaults
// and explicit values survive.
func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.ProbeEvery != 16 || c.ReorderDeadline != 60*time.Millisecond || c.ReorderCap != 256 {
		t.Errorf("schedule defaults wrong: %+v", c)
	}
	h := c.Health
	if h.Alpha != 0.05 || h.LossDown != 0.12 || h.LossUp != 0.05 ||
		h.DownAfterTicks != 2 || h.ProbationTicks != 10 ||
		h.RateAlpha != 0.3 || h.RateHeadroom != 1.25 || h.MinPathBudget != 1.5e6 {
		t.Errorf("health defaults wrong: %+v", h)
	}
	c2 := Config{ProbeEvery: 4, Health: HealthConfig{ProbationTicks: 3}}.WithDefaults()
	if c2.ProbeEvery != 4 || c2.Health.ProbationTicks != 3 {
		t.Errorf("explicit values clobbered: %+v", c2)
	}
	if (Config{}).Enabled() || !(Config{Policy: PolicySpray}).Enabled() {
		t.Error("Enabled must key on Policy")
	}
}

// TestPathSet: bitmask basics.
func TestPathSet(t *testing.T) {
	var s PathSet
	if s.Count() != 0 || s.Has(0) {
		t.Error("empty set not empty")
	}
	s = s.with(1)
	if !s.Has(1) || s.Has(0) || s.Count() != 1 {
		t.Errorf("with(1) wrong: %b", s)
	}
	if allSet().Count() != NumPaths {
		t.Errorf("allSet = %b", allSet())
	}
}

// tick advances the manager through n monitor ticks at the standard 50 ms
// cadence, starting after *now.
func tick(m *Manager, now *time.Duration, n int) {
	for i := 0; i < n; i++ {
		*now += 50 * time.Millisecond
		m.Tick(*now)
	}
}

// TestFailoverHysteresis walks the failover scheduler through the full
// breach → switch → probation → switch-back arc and checks every event.
func TestFailoverHysteresis(t *testing.T) {
	m := NewManager(Config{Policy: PolicyFailover})
	var events []Event
	m.OnEvent = func(ev Event) { events = append(events, ev) }
	outage := false
	m.SetOutageProbe(0, func(time.Duration) bool { return outage })

	var now time.Duration
	tick(m, &now, 5)
	if !m.PathUp(0) || !m.PathUp(1) || m.Active() != 0 || len(events) != 0 {
		t.Fatalf("healthy steady state wrong: active=%d events=%v", m.Active(), events)
	}

	// Outage on the primary: one breach tick is not enough (hysteresis) …
	outage = true
	tick(m, &now, 1)
	if !m.PathUp(0) || m.Active() != 0 {
		t.Fatal("path 0 must survive a single breach tick")
	}
	// … the second declares it down and the scheduler fails over.
	tick(m, &now, 1)
	if m.PathUp(0) || m.Active() != 1 || m.Switches != 1 {
		t.Fatalf("expected failover: up0=%v active=%d switches=%d", m.PathUp(0), m.Active(), m.Switches)
	}
	if len(events) != 2 || events[0].Kind != EventPathDown || events[0].Cause != CauseOutage ||
		events[1].Kind != EventFailover || events[1].From != 0 || events[1].To != 1 {
		t.Fatalf("events wrong: %+v", events)
	}

	// Outage clears: probation must hold for ProbationTicks before the
	// path is readmitted and the stream switches back.
	outage = false
	tick(m, &now, 9)
	if m.PathUp(0) || m.Active() != 1 {
		t.Fatal("probation must not clear early")
	}
	tick(m, &now, 1)
	if !m.PathUp(0) || m.Active() != 0 || m.Switches != 2 {
		t.Fatalf("expected switch-back: up0=%v active=%d switches=%d", m.PathUp(0), m.Active(), m.Switches)
	}
	last := events[len(events)-1]
	if last.Kind != EventFailover || last.To != 0 {
		t.Fatalf("missing switch-back event: %+v", events)
	}
	up := events[len(events)-2]
	if up.Kind != EventPathUp || up.Path != 0 || up.DownFor <= 0 {
		t.Fatalf("missing path-up event: %+v", up)
	}
}

// TestLossBreach: a sustained loss EWMA above LossDown takes a path down
// with CauseLoss, and clean deliveries bring it back.
func TestLossBreach(t *testing.T) {
	m := NewManager(Config{Policy: PolicyFailover})
	var events []Event
	m.OnEvent = func(ev Event) { events = append(events, ev) }
	var now time.Duration
	// Hammer path 0 with losses until its EWMA breaches.
	for i := 0; i < 60; i++ {
		m.ObserveLoss(0)
	}
	tick(m, &now, 2)
	if m.PathUp(0) || m.Active() != 1 {
		t.Fatalf("loss breach must fail over: up0=%v active=%d", m.PathUp(0), m.Active())
	}
	if events[0].Cause != CauseLoss {
		t.Fatalf("cause = %v, want loss", events[0].Cause)
	}
	// Clean deliveries decay the EWMA below LossUp; probation then clears.
	for i := 0; i < 200; i++ {
		m.ObserveDelivery(0, 40*time.Millisecond, 1200)
	}
	tick(m, &now, 10)
	if !m.PathUp(0) || m.Active() != 0 {
		t.Fatalf("recovery failed: up0=%v active=%d", m.PathUp(0), m.Active())
	}
}

// TestRouteDuplicate: every live path carries every packet; with all paths
// down the copies still go somewhere.
func TestRouteDuplicate(t *testing.T) {
	m := NewManager(Config{Policy: PolicyDuplicate})
	if set := m.Route(0, 1200); set != allSet() {
		t.Fatalf("both up: set = %b, want all", set)
	}
	down := false
	m.SetOutageProbe(0, func(time.Duration) bool { return down })
	down = true
	var now time.Duration
	tick(m, &now, 2)
	if set := m.Route(now, 1200); !set.Has(1) || set.Has(0) {
		t.Fatalf("path 0 down: set = %b, want path 1 only", set)
	}
	st := m.Stats(0, now)
	if !st.Up == false && st.DownFor <= 0 {
		t.Fatalf("stats must account the open down interval: %+v", st)
	}
}

// TestRouteFailoverProbes: the standby sees exactly the probe cadence.
func TestRouteFailoverProbes(t *testing.T) {
	m := NewManager(Config{Policy: PolicyFailover, ProbeEvery: 8})
	onStandby := 0
	for i := 0; i < 64; i++ {
		set := m.Route(0, 1200)
		if !set.Has(0) {
			t.Fatal("active path must carry every packet")
		}
		if set.Has(1) {
			onStandby++
		}
	}
	if onStandby != 8 {
		t.Fatalf("standby carried %d of 64, want 8 (ProbeEvery=8)", onStandby)
	}
	if st := m.Stats(1, 0); st.Sent != 8 {
		t.Fatalf("standby Sent = %d, want 8", st.Sent)
	}
}

// TestRouteSprayWeights: striping follows the delivered-rate weights and
// interleaves smoothly rather than in bursts.
func TestRouteSprayWeights(t *testing.T) {
	m := NewManager(Config{Policy: PolicySpray, ProbeEvery: 1 << 30})
	var now time.Duration
	// Feed path 0 three times the delivered bytes of path 1 over a few
	// ticks so the rate EWMAs settle near a 3:1 ratio.
	for i := 0; i < 20; i++ {
		for j := 0; j < 30; j++ {
			m.ObserveDelivery(0, 40*time.Millisecond, 1200)
		}
		for j := 0; j < 10; j++ {
			m.ObserveDelivery(1, 40*time.Millisecond, 1200)
		}
		tick(m, &now, 1)
	}
	counts := [NumPaths]int{}
	longestRun, run, last := 0, 0, -1
	for i := 0; i < 400; i++ {
		set := m.Route(now, 1200)
		if set.Count() != 1 {
			t.Fatalf("spray must pick exactly one path, got %b", set)
		}
		for p := 0; p < NumPaths; p++ {
			if set.Has(p) {
				counts[p]++
				if p == last {
					run++
				} else {
					run, last = 1, p
				}
				if run > longestRun {
					longestRun = run
				}
			}
		}
	}
	frac := float64(counts[0]) / 400
	if frac < 0.65 || frac > 0.85 {
		t.Fatalf("path 0 carried %.2f of packets, want ≈0.75 (counts %v)", frac, counts)
	}
	if longestRun > 5 {
		t.Fatalf("striping too bursty: longest same-path run %d", longestRun)
	}
}

// TestRouteCheapest: the active path follows the health score with a
// switch margin.
func TestRouteCheapest(t *testing.T) {
	m := NewManager(Config{Policy: PolicyCheapest})
	var now time.Duration
	// Near-equal paths: no switch off the initial active.
	for i := 0; i < 50; i++ {
		m.ObserveDelivery(0, 42*time.Millisecond, 1200)
		m.ObserveDelivery(1, 40*time.Millisecond, 1200)
	}
	tick(m, &now, 3)
	if m.Active() != 0 || m.Switches != 0 {
		t.Fatalf("margin must suppress a near-equal switch: active=%d", m.Active())
	}
	// Path 1 becomes decisively better.
	for i := 0; i < 200; i++ {
		m.ObserveDelivery(0, 150*time.Millisecond, 1200)
		m.ObserveDelivery(1, 30*time.Millisecond, 1200)
	}
	tick(m, &now, 1)
	if m.Active() != 1 || m.Switches != 1 {
		t.Fatalf("cheapest must follow the score: active=%d switches=%d", m.Active(), m.Switches)
	}
}

// TestBudgets: the aggregation rule per policy.
func TestBudgets(t *testing.T) {
	prime := func(p Policy) (*Manager, *time.Duration) {
		m := NewManager(Config{Policy: p})
		now := new(time.Duration)
		// Settle rate EWMAs near 4.8 Mb/s on path 0 and 9.6 Mb/s on path 1
		// (25 and 50 pkts of 1200 B per 50 ms tick).
		for i := 0; i < 40; i++ {
			for j := 0; j < 25; j++ {
				m.ObserveDelivery(0, 40*time.Millisecond, 1200)
			}
			for j := 0; j < 50; j++ {
				m.ObserveDelivery(1, 40*time.Millisecond, 1200)
			}
			tick(m, now, 1)
		}
		return m, now
	}
	approx := func(got, want float64) bool { return got > 0.8*want && got < 1.25*want }

	m, _ := prime(PolicyDuplicate)
	if b := m.Budget(); !approx(b, 1.25*4.8e6) {
		t.Errorf("duplicate budget = %.0f, want ≈ weakest path (6e6)", b)
	}
	m, _ = prime(PolicySpray)
	if b := m.Budget(); !approx(b, 1.25*(4.8e6+9.6e6)) {
		t.Errorf("spray budget = %.0f, want ≈ sum (18e6)", b)
	}
	m, now := prime(PolicyFailover)
	if b := m.Budget(); !approx(b, 1.25*4.8e6) {
		t.Errorf("failover budget = %.0f, want ≈ active path (6e6)", b)
	}
	// Fail the active path over (path 1 keeps carrying traffic): the
	// budget follows to path 1.
	down := true
	m.SetOutageProbe(0, func(time.Duration) bool { return down })
	for i := 0; i < 2; i++ {
		for j := 0; j < 50; j++ {
			m.ObserveDelivery(1, 40*time.Millisecond, 1200)
		}
		tick(m, now, 1)
	}
	if m.Active() != 1 {
		t.Fatal("failover did not switch")
	}
	if b := m.Budget(); !approx(b, 1.25*9.6e6) {
		t.Errorf("post-failover budget = %.0f, want ≈ path 1 (12e6)", b)
	}
	// All paths down: the floor keeps a restart admissible.
	m2 := NewManager(Config{Policy: PolicyDuplicate})
	m2.SetOutageProbe(0, func(time.Duration) bool { return true })
	m2.SetOutageProbe(1, func(time.Duration) bool { return true })
	var n2 time.Duration
	tick(m2, &n2, 3)
	if b := m2.Budget(); b != m2.Config().Health.MinPathBudget {
		t.Errorf("all-down budget = %.0f, want the floor", b)
	}
}
