package bond

import (
	"math/rand"
	"testing"
	"time"
)

// oracle is an independent re-statement of the failover hysteresis state
// machine, written directly from the spec in the package doc: per-path
// loss EWMA, outage-or-loss breach counting, DownAfterTicks to go down, a
// ProbationTicks clean streak to come back, active = first live path with
// switch-back to the lowest live index. The randomized test drives the
// real Manager and this oracle with the same observation stream and
// requires them to agree at every tick.
type oracle struct {
	h        HealthConfig
	loss     [NumPaths]float64
	up       [NumPaths]bool
	breach   [NumPaths]int
	healthy  [NumPaths]int
	active   int
	switches int
}

func newOracle(h HealthConfig) *oracle {
	o := &oracle{h: h}
	for i := range o.up {
		o.up[i] = true
	}
	return o
}

func (o *oracle) observeDelivery(path int) { o.loss[path] += o.h.Alpha * (0 - o.loss[path]) }
func (o *oracle) observeLoss(path int)     { o.loss[path] += o.h.Alpha * (1 - o.loss[path]) }

func (o *oracle) tick(outage [NumPaths]bool) {
	for i := 0; i < NumPaths; i++ {
		unhealthy := outage[i] || o.loss[i] > o.h.LossDown
		if o.up[i] {
			if unhealthy {
				o.breach[i]++
			} else {
				o.breach[i] = 0
			}
			if o.breach[i] >= o.h.DownAfterTicks {
				o.up[i], o.breach[i], o.healthy[i] = false, 0, 0
			}
		} else {
			if !outage[i] && o.loss[i] < o.h.LossUp {
				o.healthy[i]++
			} else {
				o.healthy[i] = 0
			}
			if o.healthy[i] >= o.h.ProbationTicks {
				o.up[i], o.breach[i], o.healthy[i] = true, 0, 0
			}
		}
	}
	// Failover policy: if the active path is down, take the first live
	// path; otherwise prefer the lowest live index.
	if !o.up[o.active] {
		for i := 0; i < NumPaths; i++ {
			if o.up[i] {
				o.active, o.switches = i, o.switches+1
				break
			}
		}
	} else {
		for i := 0; i < o.active; i++ {
			if o.up[i] {
				o.active, o.switches = i, o.switches+1
				break
			}
		}
	}
}

// TestFailoverMatchesOracle fuzzes the hysteresis state machine against
// the oracle: random outage flips and random delivery/loss mixes per path
// per tick, across several seeds, checking up/active/switches after every
// tick.
func TestFailoverMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := NewManager(Config{Policy: PolicyFailover})
		o := newOracle(m.Config().Health)
		var outage [NumPaths]bool
		for i := 0; i < NumPaths; i++ {
			i := i
			m.SetOutageProbe(i, func(time.Duration) bool { return outage[i] })
		}
		now := time.Duration(0)
		for step := 0; step < 2000; step++ {
			for i := 0; i < NumPaths; i++ {
				// Outages persist: flip state rarely so both long and
				// short episodes occur.
				if rng.Float64() < 0.05 {
					outage[i] = !outage[i]
				}
				// A random mix of deliveries and losses; lossy phases
				// (p=0.2) push the EWMA over the breach threshold.
				lossy := rng.Float64() < 0.2
				for k, n := 0, rng.Intn(8); k < n; k++ {
					if lossy && rng.Float64() < 0.5 {
						m.ObserveLoss(i)
						o.observeLoss(i)
					} else {
						m.ObserveDelivery(i, 40*time.Millisecond, 1200)
						o.observeDelivery(i)
					}
				}
			}
			now += 50 * time.Millisecond
			m.Tick(now)
			o.tick(outage)
			for i := 0; i < NumPaths; i++ {
				if m.PathUp(i) != o.up[i] {
					t.Fatalf("seed %d step %d: path %d up=%v, oracle %v", seed, step, i, m.PathUp(i), o.up[i])
				}
			}
			if m.Active() != o.active || m.Switches != o.switches {
				t.Fatalf("seed %d step %d: active=%d switches=%d, oracle %d/%d",
					seed, step, m.Active(), m.Switches, o.active, o.switches)
			}
		}
	}
}
