package bond

import "time"

// Scheduler is the bonding routing policy. Implementations must be
// deterministic — no randomness, no map iteration — and keep any state of
// their own inside the Manager or in plain fields.
type Scheduler interface {
	// Name is the policy's CLI name.
	Name() string
	// Tick runs after the Manager's health pass each monitor tick, letting
	// the policy react to up/down transitions (e.g. switch the active path).
	Tick(m *Manager, now time.Duration)
	// Route picks the path set carrying one media packet of size bytes.
	// Returning the empty set defers to the Manager's fallback (the active
	// path).
	Route(m *Manager, now time.Duration, size int) PathSet
	// Budget aggregates the per-path budgets into the bonded send budget
	// in bits/s.
	Budget(m *Manager) float64
}

// newScheduler maps a policy to its scheduler.
func newScheduler(p Policy) Scheduler {
	switch p {
	case PolicyFailover:
		return &failoverSched{}
	case PolicyCheapest:
		return &cheapestSched{}
	case PolicySpray:
		return &spraySched{}
	default:
		return duplicateSched{}
	}
}

// upSet returns the live paths.
func upSet(m *Manager) PathSet {
	var s PathSet
	for i := 0; i < NumPaths; i++ {
		if m.paths[i].up {
			s = s.with(i)
		}
	}
	return s
}

// allSet returns every path.
func allSet() PathSet {
	var s PathSet
	for i := 0; i < NumPaths; i++ {
		s = s.with(i)
	}
	return s
}

// duplicateSched sends every packet on every live path (all paths when none
// are live — the copies queue behind the interruptions, which is how the
// monitor sees recovery). This is the legacy Multipath behaviour. Down paths
// still get the probe duplicates: a loss-caused down only clears when fresh
// deliveries decay the loss EWMA, and probes are the only traffic a down
// path sees.
type duplicateSched struct{}

func (duplicateSched) Name() string                 { return PolicyDuplicate.String() }
func (duplicateSched) Tick(*Manager, time.Duration) {}
func (duplicateSched) Route(m *Manager, _ time.Duration, _ int) PathSet {
	set := upSet(m)
	if set == 0 {
		return allSet()
	}
	if m.probeDue() {
		set |= allSet()
	}
	return set
}

// Budget: every copy must fit the weakest live path.
func (duplicateSched) Budget(m *Manager) float64 {
	min, any := 0.0, false
	for i := 0; i < NumPaths; i++ {
		if b := m.pathBudget(i); b > 0 && (!any || b < min) {
			min, any = b, true
		}
	}
	if !any {
		return m.cfg.Health.MinPathBudget
	}
	return min
}

// failoverSched keeps the stream on a primary path with the other as a hot
// standby: a health breach on the active path switches over, and the
// stream switches back to the preferred (lowest-index) path only once its
// probation has cleared — the hysteresis that stops flapping.
type failoverSched struct{}

func (failoverSched) Name() string { return PolicyFailover.String() }

func (failoverSched) Tick(m *Manager, now time.Duration) {
	if !m.paths[m.active].up {
		// Active breached: take the first live path, in index order so the
		// choice is deterministic.
		for i := 0; i < NumPaths; i++ {
			if m.paths[i].up {
				m.switchActive(now, i)
				return
			}
		}
		return // every path down: hold position, packets queue
	}
	// Switch back once a preferred (lower-index) path has cleared its
	// probation; the ProbationTicks streak is the switch-back damper.
	for i := 0; i < m.active; i++ {
		if m.paths[i].up {
			m.switchActive(now, i)
			return
		}
	}
}

func (failoverSched) Route(m *Manager, _ time.Duration, _ int) PathSet {
	set := PathSet(0).with(m.active)
	if m.probeDue() {
		// Keep the standby's health estimate warm; a down standby is
		// probed too — delivery of those probes is what ends probation
		// after a loss-caused breach.
		set |= allSet()
	}
	return set
}

func (failoverSched) Budget(m *Manager) float64 {
	if b := m.pathBudget(m.active); b > 0 {
		return b
	}
	return m.cfg.Health.MinPathBudget
}

// cheapestSched sends on the currently best live path by health score and
// probes the rest at the probe cadence. A switch needs a clear margin so
// near-equal paths do not flap.
type cheapestSched struct{}

func (cheapestSched) Name() string { return PolicyCheapest.String() }

// score is the path's cost: delivery RTT plus a steep loss penalty (one
// EWMA loss point ≈ 800 ms of RTT).
func pathScore(m *Manager, i int) float64 {
	p := &m.paths[i]
	rtt := p.rttEwma
	if !p.haveRTT {
		rtt = 100 // unmeasured: assume mediocre, not perfect
	}
	return rtt + 800*p.lossEwma
}

func (cheapestSched) Tick(m *Manager, now time.Duration) {
	best, bestScore := -1, 0.0
	for i := 0; i < NumPaths; i++ {
		if !m.paths[i].up {
			continue
		}
		if s := pathScore(m, i); best < 0 || s < bestScore {
			best, bestScore = i, s
		}
	}
	if best < 0 || best == m.active {
		return
	}
	if !m.paths[m.active].up || bestScore < 0.8*pathScore(m, m.active) {
		m.switchActive(now, best)
	}
}

func (cheapestSched) Route(m *Manager, _ time.Duration, _ int) PathSet {
	set := PathSet(0).with(m.active)
	if m.probeDue() {
		set |= allSet()
	}
	return set
}

func (cheapestSched) Budget(m *Manager) float64 {
	if b := m.pathBudget(m.active); b > 0 {
		return b
	}
	return m.cfg.Health.MinPathBudget
}

// spraySched stripes packets across the live paths, weighted by each
// path's budget, with smooth weighted round-robin credits so the
// interleave is even rather than bursty.
type spraySched struct{}

func (spraySched) Name() string                 { return PolicySpray.String() }
func (spraySched) Tick(*Manager, time.Duration) {}

func (spraySched) Route(m *Manager, _ time.Duration, _ int) PathSet {
	up := upSet(m)
	if up == 0 {
		return allSet() // all down: duplicate into the interruptions
	}
	total := 0.0
	for i := 0; i < NumPaths; i++ {
		if up.Has(i) {
			total += m.pathBudget(i)
		}
	}
	// Accrue each live path's weight share, send on the largest credit
	// (ties break to the lower index), spend one credit there.
	best := -1
	for i := 0; i < NumPaths; i++ {
		p := &m.paths[i]
		if !up.Has(i) {
			p.sprayCredit = 0
			continue
		}
		if total > 0 {
			p.sprayCredit += m.pathBudget(i) / total
		} else {
			p.sprayCredit += 1.0 / float64(up.Count())
		}
		if best < 0 || p.sprayCredit > m.paths[best].sprayCredit {
			best = i
		}
	}
	m.paths[best].sprayCredit--
	set := PathSet(0).with(best)
	if m.probeDue() {
		set |= allSet()
	}
	return set
}

// Budget: striping aggregates capacity, so the bonded budget is the sum of
// the live paths'.
func (spraySched) Budget(m *Manager) float64 {
	sum := 0.0
	for i := 0; i < NumPaths; i++ {
		sum += m.pathBudget(i)
	}
	if sum <= 0 {
		return m.cfg.Health.MinPathBudget
	}
	return sum
}
