// Package bond implements dual-operator link bonding: one flight attached
// to both operator networks at once, with a per-path health monitor, a
// pluggable packet scheduler, and a receiver-side reorder buffer.
//
// The paper measured two operators (P1/P2) but only ever streamed over one;
// its §5 reliability argument — and the AQUILA line of work on resilient
// long-range UAV links — is that the robustness win comes from *bonding*
// both, so an RLF or coverage outage on one operator degrades the stream
// gracefully while the other carries it. The package supplies the three
// pieces the core harness wires together:
//
//   - Monitor state inside Manager: per-path EWMAs of delivery RTT and
//     loss (fed TWCC-style from per-packet delivery/loss outcomes), outage
//     detection fed by the radio chain's RLF/handover/scripted-fault
//     signals, and an up/down hysteresis state machine so paths do not
//     flap (DownAfterTicks consecutive unhealthy ticks to go down, a
//     ProbationTicks clean streak to come back).
//
//   - Scheduler: the routing policy. Four are provided — duplicate (every
//     packet on every live path; the legacy Multipath behaviour), failover
//     (primary plus hot standby, switch on health breach, switch back
//     after the primary's probation), cheapest (send on the currently best
//     path, probe the other at low rate) and spray (weighted packet
//     striping across live paths).
//
//   - Reorder: a bounded receiver-side reorder buffer with a deadline, so
//     packets striped across paths of different latency re-serialize
//     without unbounded latency (reorder.go).
//
// Everything in the package is deterministic: no randomness is drawn, all
// state advances from explicit observations and clock ticks, so a bonded
// run remains a pure function of (Config, Seed) and campaigns stay
// byte-identical at any worker count.
package bond

import (
	"fmt"
	"time"
)

// NumPaths is the number of bonded radio chains (the paper's two
// operators).
const NumPaths = 2

// Policy selects the bonding scheduler.
type Policy int

// Policies.
const (
	// PolicyNone disables bonding (single-path run).
	PolicyNone Policy = iota
	// PolicyDuplicate sends every media packet on every live path; the
	// receiver keeps the first copy. Maximum robustness, ~2x overhead.
	PolicyDuplicate
	// PolicyFailover sends on the primary path with the secondary as a hot
	// standby: a health breach switches the stream over, and the primary
	// is switched back only after its probation clears.
	PolicyFailover
	// PolicyCheapest sends on the currently healthiest (lowest-score)
	// path and probes the other at low rate.
	PolicyCheapest
	// PolicySpray stripes packets across live paths, weighted by each
	// path's delivered-rate estimate; the receiver re-serializes through
	// the reorder buffer.
	PolicySpray
)

// String implements fmt.Stringer; the strings are the CLI policy names.
func (p Policy) String() string {
	switch p {
	case PolicyDuplicate:
		return "duplicate"
	case PolicyFailover:
		return "failover"
	case PolicyCheapest:
		return "cheapest"
	case PolicySpray:
		return "spray"
	default:
		return "none"
	}
}

// ParsePolicy maps a CLI policy name to its Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range []Policy{PolicyNone, PolicyDuplicate, PolicyFailover, PolicyCheapest, PolicySpray} {
		if p.String() == s {
			return p, nil
		}
	}
	return PolicyNone, fmt.Errorf("bond: unknown policy %q (want duplicate, failover, cheapest or spray)", s)
}

// Policies lists the four active scheduling policies in comparison order.
func Policies() []Policy {
	return []Policy{PolicyDuplicate, PolicyFailover, PolicyCheapest, PolicySpray}
}

// HealthConfig tunes the per-path health monitor. The zero value selects
// the defaults noted per field (WithDefaults resolves them).
type HealthConfig struct {
	// Alpha is the EWMA weight of each new delivery-RTT/loss observation
	// (0.05 when zero).
	Alpha float64
	// LossDown is the loss-EWMA fraction above which a path counts as
	// unhealthy (0.12 when zero).
	LossDown float64
	// LossUp is the loss-EWMA fraction below which a down path counts as
	// healthy again — lower than LossDown so the state machine has
	// hysteresis (0.05 when zero).
	LossUp float64
	// DownAfterTicks is how many consecutive unhealthy ticks declare the
	// path down (2 when zero).
	DownAfterTicks int
	// ProbationTicks is the clean streak a down path must show before it
	// is readmitted (10 when zero; at the 50 ms tick that is 500 ms).
	ProbationTicks int
	// RateAlpha is the EWMA weight of each tick's delivered-rate sample
	// (0.3 when zero).
	RateAlpha float64
	// RateHeadroom multiplies the delivered-rate EWMA into the path's send
	// budget (1.25 when zero): the bonded target may exceed what the path
	// has recently proven by this factor, which is what lets the rate ramp.
	RateHeadroom float64
	// MinPathBudget floors a live path's budget in bits/s (1.5e6 when
	// zero) so an idle standby still admits a restart after failover.
	MinPathBudget float64
}

// Config arms link bonding. The zero value disables it.
type Config struct {
	// Policy selects the scheduler; PolicyNone disables bonding.
	Policy Policy
	// ProbeEvery duplicates every N-th media packet onto each path the
	// scheduler is not currently using, keeping the idle paths' health
	// estimates warm at bounded (1/N) overhead. 16 when zero; failover,
	// cheapest and spray use it, duplicate has no idle paths.
	ProbeEvery int
	// ReorderDeadline bounds how long the receiver's reorder buffer holds
	// a packet waiting for a gap to fill before releasing past it (60 ms
	// when zero). The duplicate policy delivers first-copy and skips the
	// buffer entirely.
	ReorderDeadline time.Duration
	// ReorderCap bounds the reorder buffer in packets (256 when zero);
	// overflow force-releases the oldest run.
	ReorderCap int
	// Health tunes the path-health monitor.
	Health HealthConfig
}

// Enabled reports whether bonding is armed.
func (c Config) Enabled() bool { return c.Policy != PolicyNone }

// WithDefaults resolves zero fields to the calibrated defaults.
func (c Config) WithDefaults() Config {
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 16
	}
	if c.ReorderDeadline <= 0 {
		c.ReorderDeadline = 60 * time.Millisecond
	}
	if c.ReorderCap <= 0 {
		c.ReorderCap = 256
	}
	h := &c.Health
	if h.Alpha <= 0 {
		h.Alpha = 0.05
	}
	if h.LossDown <= 0 {
		h.LossDown = 0.12
	}
	if h.LossUp <= 0 {
		h.LossUp = 0.05
	}
	if h.DownAfterTicks <= 0 {
		h.DownAfterTicks = 2
	}
	if h.ProbationTicks <= 0 {
		h.ProbationTicks = 10
	}
	if h.RateAlpha <= 0 {
		h.RateAlpha = 0.3
	}
	if h.RateHeadroom <= 0 {
		h.RateHeadroom = 1.25
	}
	if h.MinPathBudget <= 0 {
		h.MinPathBudget = 1.5e6
	}
	return c
}

// PathSet is a bitmask of path indices a packet is routed to.
type PathSet uint8

// Has reports whether path i is in the set.
func (s PathSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// with returns the set with path i added.
func (s PathSet) with(i int) PathSet { return s | 1<<uint(i) }

// Count returns the number of paths in the set.
func (s PathSet) Count() int {
	n := 0
	for i := 0; i < NumPaths; i++ {
		if s.Has(i) {
			n++
		}
	}
	return n
}

// DownCause explains a path-down declaration.
type DownCause int

// Down causes.
const (
	// CauseOutage is a service interruption reported by the radio chain
	// (RLF re-establishment, handover execution or a scripted window).
	CauseOutage DownCause = iota
	// CauseLoss is a delivery-loss EWMA breach with service nominally up.
	CauseLoss
)

// String implements fmt.Stringer.
func (c DownCause) String() string {
	if c == CauseLoss {
		return "loss"
	}
	return "outage"
}

// EventKind classifies a bonding event.
type EventKind int

// Event kinds.
const (
	// EventPathDown is a path declared unhealthy.
	EventPathDown EventKind = iota
	// EventPathUp is a path readmitted after probation.
	EventPathUp
	// EventFailover is the active path switching.
	EventFailover
)

// Event is one bonding decision, surfaced to the harness for tracing.
type Event struct {
	At   time.Duration
	Kind EventKind
	// Path is the path going down or up (EventPathDown/EventPathUp).
	Path int
	// Cause explains an EventPathDown.
	Cause DownCause
	// DownFor is how long the path was down (EventPathUp).
	DownFor time.Duration
	// From and To are the previous and new active path (EventFailover).
	From, To int
}
