package bond

import (
	"testing"
	"time"
)

// collect builds a reorder buffer that appends released ext values.
func collect(deadline time.Duration, capacity int) (*Reorder, *[]int64) {
	out := &[]int64{}
	r := NewReorder(deadline, capacity, func(meta interface{}, _ time.Duration) {
		*out = append(*out, meta.(int64))
	})
	return r, out
}

func insert(r *Reorder, now time.Duration, exts ...int64) {
	for _, e := range exts {
		r.Insert(e, e, now)
	}
}

// TestReorderInOrder: in-order arrivals pass straight through.
func TestReorderInOrder(t *testing.T) {
	r, out := collect(0, 0)
	insert(r, 0, 10, 11, 12, 13)
	if len(*out) != 4 || (*out)[0] != 10 || (*out)[3] != 13 || r.Len() != 0 {
		t.Fatalf("out=%v len=%d", *out, r.Len())
	}
}

// TestReorderGapFill: a gap buffers followers until the missing packet
// arrives, then the whole run releases in order.
func TestReorderGapFill(t *testing.T) {
	r, out := collect(0, 0)
	insert(r, 0, 0, 2, 3, 4)
	if len(*out) != 1 || r.Len() != 3 {
		t.Fatalf("gap must hold followers: out=%v buffered=%d", *out, r.Len())
	}
	insert(r, time.Millisecond, 1)
	want := []int64{0, 1, 2, 3, 4}
	if len(*out) != 5 {
		t.Fatalf("out=%v want %v", *out, want)
	}
	for i, v := range want {
		if (*out)[i] != v {
			t.Fatalf("out=%v want %v", *out, want)
		}
	}
}

// TestReorderDeadline: the head-of-line wait is bounded; Tick releases
// past the gap and the late original is dropped and counted.
func TestReorderDeadline(t *testing.T) {
	r, out := collect(60*time.Millisecond, 0)
	var late []int64
	r.OnLate = func(ext int64, _ time.Duration) { late = append(late, ext) }
	insert(r, 0, 0, 2, 3)
	r.Tick(50 * time.Millisecond)
	if len(*out) != 1 {
		t.Fatal("deadline must not fire early")
	}
	r.Tick(60 * time.Millisecond)
	if len(*out) != 3 || r.DeadlineReleases != 1 || r.GapSkipped != 1 {
		t.Fatalf("deadline release wrong: out=%v releases=%d skipped=%d", *out, r.DeadlineReleases, r.GapSkipped)
	}
	// Seq 1's slot is gone: arriving now is a late drop.
	insert(r, 70*time.Millisecond, 1)
	if r.Late != 1 || len(late) != 1 || late[0] != 1 || len(*out) != 3 {
		t.Fatalf("late drop wrong: Late=%d hook=%v", r.Late, late)
	}
}

// TestReorderCap: overflow force-releases the oldest run instead of
// growing without bound.
func TestReorderCap(t *testing.T) {
	r, out := collect(time.Hour, 4)
	insert(r, 0, 0) // next=1
	for ext := int64(2); ext < 8; ext++ {
		insert(r, 0, ext)
	}
	if r.Len() > 4 {
		t.Fatalf("cap breached: %d buffered", r.Len())
	}
	if r.CapReleases == 0 || len(*out) < 3 {
		t.Fatalf("cap must force releases: out=%v releases=%d", *out, r.CapReleases)
	}
	for i := 1; i < len(*out); i++ {
		if (*out)[i] <= (*out)[i-1] {
			t.Fatalf("release order broken: %v", *out)
		}
	}
}

// TestReorderDupAndFlush: duplicates of a buffered packet are absorbed;
// Flush drains everything at run end.
func TestReorderDupAndFlush(t *testing.T) {
	r, out := collect(time.Hour, 0)
	insert(r, 0, 0, 2, 2, 2)
	if r.Dups != 2 || r.Len() != 1 {
		t.Fatalf("dups=%d len=%d", r.Dups, r.Len())
	}
	r.Flush(time.Second)
	if len(*out) != 2 || r.Len() != 0 {
		t.Fatalf("flush wrong: out=%v", *out)
	}
}

// FuzzReorderInsert feeds arbitrary byte-derived sequences of inserts and
// ticks and checks the buffer's invariants: releases strictly increase,
// the cap holds, and nothing is both released and still buffered.
func FuzzReorderInsert(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{5, 4, 3, 2, 1, 0})
	f.Add([]byte{0, 200, 1, 200, 2, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		var released []int64
		r := NewReorder(60*time.Millisecond, 16, func(meta interface{}, _ time.Duration) {
			released = append(released, meta.(int64))
		})
		now := time.Duration(0)
		for i, b := range data {
			switch {
			case b >= 250: // occasional clock jump past the deadline
				now += 70 * time.Millisecond
				r.Tick(now)
			default:
				now += time.Millisecond
				// Small offsets exercise reordering, dups and lateness.
				ext := int64(i) + int64(b%32) - 16
				if ext < 0 {
					ext = -ext
				}
				r.Insert(ext, ext, now)
			}
			if r.Len() > 16 {
				t.Fatalf("cap breached: %d", r.Len())
			}
		}
		r.Flush(now)
		if r.Len() != 0 {
			t.Fatalf("flush left %d buffered", r.Len())
		}
		seen := make(map[int64]bool, len(released))
		for i, v := range released {
			if i > 0 && v <= released[i-1] {
				t.Fatalf("releases not strictly increasing at %d: %v", i, released)
			}
			if seen[v] {
				t.Fatalf("double release of %d", v)
			}
			seen[v] = true
		}
	})
}
