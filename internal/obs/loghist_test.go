package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"rpivideo/internal/metrics"
)

func TestLogHistogramObserve(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []float64{10, 10.05, 100, 0.5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
	if want := 10 + 10.05 + 100 + 0.5; h.Sum() != want {
		t.Errorf("Sum = %g, want %g", h.Sum(), want)
	}
	// 10 and 10.05 differ by less than the ~2% bucket width, so they share
	// a bucket; 100 and 0.5 are elsewhere.
	var total int64
	cells := 0
	h.each(func(idx int32, upper float64, count int64) {
		if upper < 0.5 || upper > 103 {
			t.Errorf("bucket upper %g outside the observed range", upper)
		}
		if got := metrics.BucketUpper(idx); got != upper {
			t.Errorf("upper edge mismatch for idx %d: %g vs %g", idx, got, upper)
		}
		total += count
		cells++
	})
	if cells != 3 {
		t.Errorf("occupied cells = %d, want 3 (10 and 10.05 share one)", cells)
	}
	if total != 4 {
		t.Errorf("bucket counts sum to %d, want 4", total)
	}
}

// TestLogHistogramEdgeValues: non-positive and NaN samples land in the zero
// cell without touching Sum; +Inf counts without poisoning Sum.
func TestLogHistogramEdgeValues(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(0)
	h.Observe(-3)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(2)
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.zero != 3 {
		t.Errorf("zero cell = %d, want 3 (0, -3, NaN)", h.zero)
	}
	if h.Sum() != 2 {
		t.Errorf("Sum = %g, want 2 (only the finite positive sample)", h.Sum())
	}
	// The +Inf observation clamps to the top cell.
	topSeen := false
	h.each(func(idx int32, _ float64, count int64) {
		if idx == logHistMaxIdx {
			topSeen = true
			if count != 1 {
				t.Errorf("top cell count = %d, want 1", count)
			}
		}
	})
	if !topSeen {
		t.Error("+Inf observation did not reach the top cell")
	}
	// Values beyond the index window clamp to the edges instead of panicking.
	h.Observe(1e300)
	h.Observe(1e-300)
}

func TestLogHistogramMergeAndClone(t *testing.T) {
	a, b := NewLogHistogram(), NewLogHistogram()
	for _, v := range []float64{1, 50, 0} {
		a.Observe(v)
	}
	for _, v := range []float64{50, 2000} {
		b.Observe(v)
	}
	c := a.Clone()
	c.Merge(b)
	if c.Count() != 5 || c.zero != 1 {
		t.Errorf("merged count/zero = %d/%d, want 5/1", c.Count(), c.zero)
	}
	if want := 1 + 50 + 50 + 2000.0; c.Sum() != want {
		t.Errorf("merged Sum = %g, want %g", c.Sum(), want)
	}
	// Merging into the clone left the source untouched.
	if a.Count() != 3 {
		t.Errorf("source histogram mutated by Clone+Merge: count %d", a.Count())
	}
	// An equivalent histogram built by direct observation matches.
	d := NewLogHistogram()
	for _, v := range []float64{1, 50, 0, 50, 2000} {
		d.Observe(v)
	}
	j1, _ := json.Marshal(c)
	j2, _ := json.Marshal(d)
	if !bytes.Equal(j1, j2) {
		t.Errorf("merge result differs from direct observation:\n%s\n%s", j1, j2)
	}
}

func TestLogHistogramJSONRoundTrip(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []float64{0.25, 33, 33.1, 900, -1, math.NaN()} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back LogHistogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("re-Marshal: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("round trip not byte-identical:\n%s\n%s", data, data2)
	}
	if back.Count() != h.Count() || back.Sum() != h.Sum() || back.zero != h.zero {
		t.Errorf("round trip lost totals: %d/%g/%d vs %d/%g/%d",
			back.Count(), back.Sum(), back.zero, h.Count(), h.Sum(), h.zero)
	}
	// Bad bucket keys are rejected, not silently dropped.
	for _, bad := range []string{
		`{"count":1,"sum":1,"buckets":{"x":1}}`,
		`{"count":1,"sum":1,"buckets":{"9999":1}}`,
	} {
		var lh LogHistogram
		if err := json.Unmarshal([]byte(bad), &lh); err == nil {
			t.Errorf("Unmarshal(%s) succeeded, want error", bad)
		}
	}
}

// TestLogHistogramBucketResolution: the layout inherits the sketch's ~1%
// relative accuracy — a bucket's upper edge is within alpha of the sample
// that landed there.
func TestLogHistogramBucketResolution(t *testing.T) {
	h := NewLogHistogram()
	samples := []float64{0.1, 1, 7.3, 42, 137, 5000}
	for _, v := range samples {
		h.Observe(v)
	}
	i := 0
	h.each(func(_ int32, upper float64, _ int64) {
		v := samples[i]
		if rel := math.Abs(upper-v) / v; rel > 2*metrics.SketchAlpha {
			t.Errorf("sample %g mapped to bucket edge %g (relative error %g)", v, upper, rel)
		}
		i++
	})
	if i != len(samples) {
		t.Errorf("walked %d buckets, want %d", i, len(samples))
	}
}
