package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// KindFromString maps a JSONL kind value back to its Kind. It is the
// inverse of Kind.String for every kind WriteJSONL emits.
func KindFromString(s string) (Kind, bool) {
	for k := KindSend; k <= KindCellOverloadEnd; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// DirFromString maps a JSONL dir value back to its Dir; the empty string is
// DirNone (the writer omits the key for it).
func DirFromString(s string) (Dir, bool) {
	switch s {
	case "":
		return DirNone, true
	case "up":
		return DirUp, true
	case "down":
		return DirDown, true
	case "up2":
		return DirUp2, true
	}
	return 0, false
}

// TraceRun is one run's section of a JSONL trace: its meta line and the
// events that followed it.
type TraceRun struct {
	Meta   RunMeta
	Events []Event
}

// jsonlLine is the union of the meta-line and event-line fields; kind
// discriminates. Unknown keys are ignored, so the reader tolerates schema
// additions.
type jsonlLine struct {
	Kind string `json:"kind"`

	// Meta fields.
	Label      string `json:"label"`
	Run        int    `json:"run"`
	Seed       int64  `json:"seed"`
	DurationUs int64  `json:"duration_us"`
	Events     int64  `json:"events"`
	Dropped    int64  `json:"dropped"`

	// Event fields.
	TUs  int64   `json:"t_us"`
	Dir  string  `json:"dir"`
	Ctrl bool    `json:"ctrl"`
	Rtx  bool    `json:"rtx"`
	Seq  int64   `json:"seq"`
	Aux  int64   `json:"aux"`
	V    float64 `json:"v"`
}

// ReadJSONL parses a trace written by WriteJSONL (one or more runs) back
// into per-run event slices. Event times come back at microsecond
// granularity — the writer's truncation — and V round-trips exactly
// (strconv 'g', -1). Events before the first meta line are an error, as is
// an unknown kind or dir.
func ReadJSONL(r io.Reader) ([]TraceRun, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var runs []TraceRun
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ln jsonlLine
		if err := json.Unmarshal(raw, &ln); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		if ln.Kind == "meta" {
			runs = append(runs, TraceRun{Meta: RunMeta{
				Label:    ln.Label,
				Run:      ln.Run,
				Seed:     ln.Seed,
				Duration: time.Duration(ln.DurationUs) * time.Microsecond,
				Events:   ln.Events,
				Dropped:  ln.Dropped,
			}})
			continue
		}
		if len(runs) == 0 {
			return nil, fmt.Errorf("obs: trace line %d: event before any meta line", lineNo)
		}
		kind, ok := KindFromString(ln.Kind)
		if !ok {
			return nil, fmt.Errorf("obs: trace line %d: unknown kind %q", lineNo, ln.Kind)
		}
		dir, ok := DirFromString(ln.Dir)
		if !ok {
			return nil, fmt.Errorf("obs: trace line %d: unknown dir %q", lineNo, ln.Dir)
		}
		var flags uint8
		if ln.Ctrl {
			flags |= FlagCtrl
		}
		if ln.Rtx {
			flags |= FlagRTX
		}
		cur := &runs[len(runs)-1]
		cur.Events = append(cur.Events, Event{
			T:     time.Duration(ln.TUs) * time.Microsecond,
			Kind:  kind,
			Dir:   dir,
			Flags: flags,
			Seq:   ln.Seq,
			Aux:   ln.Aux,
			V:     ln.V,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return runs, nil
}
