package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// ReadRegistryJSON parses a registry previously exported by WriteJSON. It
// is the read side of the regression gate: a checked-in baseline export is
// read back and compared against a freshly computed registry.
func ReadRegistryJSON(r io.Reader) (*Registry, error) {
	var in registryJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("obs: parsing registry JSON: %w", err)
	}
	reg := NewRegistry()
	for name, v := range in.Counters {
		reg.counters[name] = v
	}
	for name, v := range in.Gauges {
		reg.gauges[name] = v
	}
	for name, h := range in.Histograms {
		if h == nil {
			continue
		}
		if len(h.Counts) != len(h.Buckets) {
			return nil, fmt.Errorf("obs: registry histogram %q: %d counts for %d buckets", name, len(h.Counts), len(h.Buckets))
		}
		reg.hists[name] = h
	}
	for name, h := range in.LogHistograms {
		if h != nil {
			reg.logs[name] = h
		}
	}
	return reg, nil
}

// Tolerance configures the regression gate's per-metric drift allowance.
// Relative drift is |cur-base| / max(|base|, 1) — the max(…, 1) floor keeps
// near-zero baselines from turning one stray packet into infinite drift.
type Tolerance struct {
	// Default applies to every metric without a specific entry. Zero means
	// exact equality.
	Default float64
	// PerMetric overrides the default for specific metric names. Histogram
	// facets use the exported drift names ("histogram/<name>/count" etc.).
	PerMetric map[string]float64
}

// allowed returns the tolerance for one metric name.
func (t Tolerance) allowed(name string) float64 {
	if v, ok := t.PerMetric[name]; ok {
		return v
	}
	return t.Default
}

// Drift is one metric that moved beyond its tolerance, or appeared or
// disappeared between baseline and current.
type Drift struct {
	Metric  string  `json:"metric"`
	Base    float64 `json:"base"`
	Cur     float64 `json:"cur"`
	Rel     float64 `json:"rel"`
	Allowed float64 `json:"allowed"`
	// Missing marks a metric present on exactly one side; Base/Cur carry
	// the side that has it.
	Missing string `json:"missing,omitempty"`
}

func (d Drift) String() string {
	if d.Missing != "" {
		return fmt.Sprintf("%s: missing in %s", d.Metric, d.Missing)
	}
	return fmt.Sprintf("%s: base %g, cur %g (drift %.4f > allowed %.4f)", d.Metric, d.Base, d.Cur, d.Rel, d.Allowed)
}

// relDrift computes |cur-base| / max(|base|, 1).
func relDrift(base, cur float64) float64 {
	den := math.Abs(base)
	if den < 1 {
		den = 1
	}
	return math.Abs(cur-base) / den
}

// CompareRegistries diffs cur against base under the tolerance and returns
// every drifted metric, sorted by name. Counters and gauges compare by
// value; histograms compare their count, sum and overflow facets (bucket-by-
// bucket comparison would re-litigate the layout, which the baseline file
// already pins). An empty result means the gate passes.
func CompareRegistries(base, cur *Registry, tol Tolerance) []Drift {
	var out []Drift
	num := func(name string, b, c float64, bOK, cOK bool) {
		switch {
		case bOK && !cOK:
			out = append(out, Drift{Metric: name, Base: b, Missing: "cur"})
		case !bOK && cOK:
			out = append(out, Drift{Metric: name, Cur: c, Missing: "base"})
		case bOK && cOK:
			if rel := relDrift(b, c); rel > tol.allowed(name) {
				out = append(out, Drift{Metric: name, Base: b, Cur: c, Rel: rel, Allowed: tol.allowed(name)})
			}
		}
	}

	for _, name := range unionKeys(keysOf(base.counters), keysOf(cur.counters)) {
		b, bOK := base.counters[name]
		c, cOK := cur.counters[name]
		num("counter/"+name, float64(b), float64(c), bOK, cOK)
	}
	for _, name := range unionKeys(keysOf(base.gauges), keysOf(cur.gauges)) {
		b, bOK := base.gauges[name]
		c, cOK := cur.gauges[name]
		num("gauge/"+name, b, c, bOK, cOK)
	}
	for _, name := range unionKeys(keysOf(base.hists), keysOf(cur.hists)) {
		bh, bOK := base.hists[name]
		ch, cOK := cur.hists[name]
		if !bOK || !cOK {
			side := "cur"
			if !bOK {
				side = "base"
			}
			out = append(out, Drift{Metric: "histogram/" + name, Missing: side})
			continue
		}
		num("histogram/"+name+"/count", float64(bh.Count), float64(ch.Count), true, true)
		num("histogram/"+name+"/sum", bh.Sum, ch.Sum, true, true)
		num("histogram/"+name+"/overflow", float64(bh.Overflow), float64(ch.Overflow), true, true)
	}
	for _, name := range unionKeys(keysOf(base.logs), keysOf(cur.logs)) {
		bh, bOK := base.logs[name]
		ch, cOK := cur.logs[name]
		if !bOK || !cOK {
			side := "cur"
			if !bOK {
				side = "base"
			}
			out = append(out, Drift{Metric: "loghistogram/" + name, Missing: side})
			continue
		}
		num("loghistogram/"+name+"/count", float64(bh.Count()), float64(ch.Count()), true, true)
		num("loghistogram/"+name+"/sum", bh.Sum(), ch.Sum(), true, true)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Metric < out[j].Metric })
	return out
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func unionKeys(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, k := range append(a, b...) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
