package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestServePprofAndRuntimeMetrics(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	for _, path := range []string{"/debug/pprof/", "/debug/runtime-metrics"} {
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
		if path == "/debug/runtime-metrics" {
			var m map[string]any
			if err := json.Unmarshal(body, &m); err != nil {
				t.Errorf("runtime-metrics is not JSON: %v", err)
			} else if len(m) == 0 {
				t.Error("runtime-metrics snapshot is empty")
			}
		}
	}
}

func TestSnapshotRuntimeMetrics(t *testing.T) {
	m := SnapshotRuntimeMetrics()
	if len(m) == 0 {
		t.Fatal("no runtime metrics sampled")
	}
	if _, ok := m["/memory/classes/heap/objects:bytes"]; !ok {
		t.Error("expected heap objects metric in snapshot")
	}
}
