package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestServePprofAndRuntimeMetrics(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	for _, path := range []string{"/debug/pprof/", "/debug/runtime-metrics"} {
		resp, err := client.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
		if path == "/debug/runtime-metrics" {
			var m map[string]any
			if err := json.Unmarshal(body, &m); err != nil {
				t.Errorf("runtime-metrics is not JSON: %v", err)
			} else if len(m) == 0 {
				t.Error("runtime-metrics snapshot is empty")
			}
		}
	}
}

// TestServeBadAddress: an unparseable or unbindable address comes back as
// an error naming the address, with no server left behind.
func TestServeBadAddress(t *testing.T) {
	for _, addr := range []string{"not-an-address", "256.0.0.1:99999"} {
		srv, err := Serve(addr, nil)
		if err == nil {
			t.Errorf("Serve(%q) succeeded with addr %q, want error", addr, srv.Addr())
			srv.Close()
			continue
		}
		if !strings.Contains(err.Error(), addr) {
			t.Errorf("Serve(%q) error does not name the address: %v", addr, err)
		}
		if srv != nil {
			t.Errorf("Serve(%q) returned a server alongside the error", addr)
		}
	}
}

// TestServeAddressInUse: binding the same concrete port twice fails on the
// second call while the first server keeps serving.
func TestServeAddressInUse(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("first Serve: %v", err)
	}
	defer srv.Close()
	dup, err := Serve(srv.Addr(), nil)
	if err == nil {
		dup.Close()
		t.Fatalf("second Serve on %s succeeded, want address-in-use error", srv.Addr())
	}
	// The original endpoint is unaffected.
	resp, err := (&http.Client{Timeout: 5 * time.Second}).Get("http://" + srv.Addr() + "/debug/runtime-metrics")
	if err != nil {
		t.Fatalf("first server died after failed rebind: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("first server degraded after failed rebind: status %d", resp.StatusCode)
	}
}

// TestServeShutdownWhileServing: Close during active use terminates the
// listener; subsequent requests fail with a connection error, and a second
// Close is a no-op rather than a panic.
func TestServeShutdownWhileServing(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + srv.Addr() + "/debug/runtime-metrics")
	if err != nil {
		t.Fatalf("pre-shutdown request: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := client.Get("http://" + srv.Addr() + "/debug/runtime-metrics"); err == nil {
		t.Error("request succeeded after Close")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close errored: %v", err)
	}
}

// TestServeGracefulShutdown: Shutdown drains and returns without error even
// with an /events stream open (CloseStreams unblocks the handler; a plain
// http.Server.Shutdown would wait on it forever).
func TestServeGracefulShutdown(t *testing.T) {
	tel := NewTelemetry()
	srv, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if srv.Telemetry() != tel {
		t.Error("Telemetry() does not return the hub passed to Serve")
	}
	tel.PublishStatus(StatusSnapshot{Mode: "campaign", RunsTotal: 1})

	// Hold an SSE stream open across the shutdown.
	resp, err := (&http.Client{Timeout: 5 * time.Second}).Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	// Read the initial frame so the handler is known to be inside its loop.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading initial SSE line: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := (&http.Client{Timeout: time.Second}).Get("http://" + srv.Addr() + "/status"); err == nil {
		t.Error("request succeeded after Shutdown")
	}
}

// serveTestHub starts a server around a hub pre-loaded with one run's
// registry and a terminal status snapshot.
func serveTestHub(t *testing.T) (*Server, *Telemetry) {
	t.Helper()
	tel := NewTelemetry()
	reg := NewRegistry()
	reg.Add("packets_sent", 42)
	reg.SetGauge("goodput_mbps", 17.5)
	h := reg.LogHistogram("frame_delay_ms")
	for _, v := range []float64{0, 1.5, 33, 33.1, 250, -2} {
		h.Observe(v)
	}
	tel.ObserveRun(reg)
	tel.PublishStatus(StatusSnapshot{
		Mode: "campaign", Label: "urban-gcc",
		RunsDone: 1, RunsTotal: 1, WallSeconds: 0.25, SimRate: 12, Done: true,
	})
	srv, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, tel
}

// TestServeMetricsExposition: /metrics returns a valid Prometheus text
// exposition carrying the hub's registry plus the status-derived progress
// gauges.
func TestServeMetricsExposition(t *testing.T) {
	srv, _ := serveTestHub(t)
	resp, err := (&http.Client{Timeout: 5 * time.Second}).Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q is not the 0.0.4 text exposition", ct)
	}
	if err := checkPromExposition(string(body)); err != nil {
		t.Fatalf("exposition format: %v\n%s", err, body)
	}
	for _, want := range []string{
		"rpivideo_packets_sent_total 42",
		"rpivideo_goodput_mbps 17.5",
		`rpivideo_frame_delay_ms_bucket{le="+Inf"} 6`,
		"rpivideo_frame_delay_ms_count 6",
		"rpivideo_runs_done 1",
		"rpivideo_runs_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServeStatusJSON: /status is 404 before any snapshot and a JSON
// document matching the published snapshot after.
func TestServeStatusJSON(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + srv.Addr() + "/status")
	if err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/status before any publish: status %d, want 404", resp.StatusCode)
	}

	srv.Telemetry().PublishStatus(StatusSnapshot{
		Mode: "fleet", Label: "fleet-contention",
		RunsDone: 3, RunsTotal: 8, RunErrors: 1, WallSeconds: 1.5,
		Cells: []CellStatus{{Cell: 0, Attaches: 8, PeakUsers: 8, OverloadEpochs: 2}},
	})
	resp, err = client.Get("http://" + srv.Addr() + "/status")
	if err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /status: status %d", resp.StatusCode)
	}
	var st StatusSnapshot
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/status is not a StatusSnapshot: %v\n%s", err, body)
	}
	if st.Mode != "fleet" || st.RunsDone != 3 || st.RunsTotal != 8 || st.RunErrors != 1 {
		t.Errorf("round-tripped snapshot mismatch: %+v", st)
	}
	if len(st.Cells) != 1 || st.Cells[0].Attaches != 8 {
		t.Errorf("cells did not round-trip: %+v", st.Cells)
	}
	// The wire schema is snake_case.
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"mode", "runs_done", "runs_total", "run_errors", "wall_seconds", "sim_rate", "eta_seconds", "done"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/status missing %q field", key)
		}
	}
}

// TestServeEventsSSE: /events frames each published snapshot as an SSE
// "status" event, starting with the current one.
func TestServeEventsSSE(t *testing.T) {
	srv, tel := serveTestHub(t)
	req, _ := http.NewRequest("GET", "http://"+srv.Addr()+"/events", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type %q, want text/event-stream", ct)
	}

	br := bufio.NewReader(resp.Body)
	readEvent := func() StatusSnapshot {
		t.Helper()
		var event, data string
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("reading SSE stream: %v", err)
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "":
				if event != "status" {
					t.Fatalf("SSE event type %q, want status", event)
				}
				var st StatusSnapshot
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					t.Fatalf("SSE data is not a StatusSnapshot: %v\n%s", err, data)
				}
				return st
			default:
				t.Fatalf("unexpected SSE line %q", line)
			}
		}
	}

	// The initial frame replays the terminal snapshot serveTestHub published.
	if st := readEvent(); st.RunsDone != 1 || !st.Done {
		t.Errorf("initial SSE snapshot mismatch: %+v", st)
	}
	// A fresh publish streams a second frame.
	tel.PublishStatus(StatusSnapshot{Mode: "campaign", RunsDone: 2, RunsTotal: 2, Done: true})
	if st := readEvent(); st.RunsDone != 2 {
		t.Errorf("streamed SSE snapshot mismatch: %+v", st)
	}
}

// promLine matches one sample line: a metric name, an optional single-label
// set, and a float value.
var promLine = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)(\{[^}]*\})? (\S+)$`)

// checkPromExposition validates the Prometheus 0.0.4 text format closely
// enough for a regression gate without promtool: every line is a HELP/TYPE
// comment or a sample, every sample's family was declared by a TYPE line
// first, every value parses as a float, and histogram bucket series carry
// ascending le edges with cumulative counts ending at le="+Inf".
func checkPromExposition(text string) error {
	typed := map[string]string{}
	type bucketState struct {
		lastLe  float64
		lastCum float64
		started bool
	}
	buckets := map[string]*bucketState{}
	for n, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: malformed TYPE comment %q", n+1, line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: not a sample line: %q", n+1, line)
		}
		name, labels, value := m[1], m[2], m[3]
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("line %d: value %q: %v", n+1, value, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := typed[strings.TrimSuffix(name, suffix)]; ok && f == "histogram" {
				family = strings.TrimSuffix(name, suffix)
				break
			}
		}
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("line %d: sample %q precedes its TYPE declaration", n+1, name)
		}
		if strings.HasSuffix(name, "_bucket") && typed[family] == "histogram" {
			st := buckets[family]
			if st == nil {
				st = &bucketState{}
				buckets[family] = st
			}
			le := strings.TrimSuffix(strings.TrimPrefix(labels, `{le="`), `"}`)
			edge := math.Inf(1)
			if le != "+Inf" {
				if edge, err = strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("line %d: le edge %q: %v", n+1, le, err)
				}
			}
			if st.started && edge <= st.lastLe {
				return fmt.Errorf("line %d: le edges not ascending in %s", n+1, family)
			}
			if st.started && v < st.lastCum {
				return fmt.Errorf("line %d: bucket counts not cumulative in %s", n+1, family)
			}
			st.lastLe, st.lastCum, st.started = edge, v, true
		}
	}
	return nil
}
