package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServePprofAndRuntimeMetrics(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	for _, path := range []string{"/debug/pprof/", "/debug/runtime-metrics"} {
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
		if path == "/debug/runtime-metrics" {
			var m map[string]any
			if err := json.Unmarshal(body, &m); err != nil {
				t.Errorf("runtime-metrics is not JSON: %v", err)
			} else if len(m) == 0 {
				t.Error("runtime-metrics snapshot is empty")
			}
		}
	}
}

// TestServeBadAddress: an unparseable or unbindable address comes back as
// an error naming the address, with no server left behind.
func TestServeBadAddress(t *testing.T) {
	for _, addr := range []string{"not-an-address", "256.0.0.1:99999"} {
		srv, bound, err := Serve(addr)
		if err == nil {
			srv.Close()
			t.Errorf("Serve(%q) succeeded with addr %q, want error", addr, bound)
			continue
		}
		if !strings.Contains(err.Error(), addr) {
			t.Errorf("Serve(%q) error does not name the address: %v", addr, err)
		}
		if srv != nil {
			t.Errorf("Serve(%q) returned a server alongside the error", addr)
		}
	}
}

// TestServeAddressInUse: binding the same concrete port twice fails on the
// second call while the first server keeps serving.
func TestServeAddressInUse(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("first Serve: %v", err)
	}
	defer srv.Close()
	dup, _, err := Serve(addr)
	if err == nil {
		dup.Close()
		t.Fatalf("second Serve on %s succeeded, want address-in-use error", addr)
	}
	// The original endpoint is unaffected.
	resp, err := (&http.Client{Timeout: 5 * time.Second}).Get("http://" + addr + "/debug/runtime-metrics")
	if err != nil {
		t.Fatalf("first server died after failed rebind: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("first server degraded after failed rebind: status %d", resp.StatusCode)
	}
}

// TestServeShutdownWhileServing: Close during active use terminates the
// listener; subsequent requests fail with a connection error, and a second
// Close is a no-op rather than a panic.
func TestServeShutdownWhileServing(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/runtime-metrics")
	if err != nil {
		t.Fatalf("pre-shutdown request: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := client.Get("http://" + addr + "/debug/runtime-metrics"); err == nil {
		t.Error("request succeeded after Close")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close errored: %v", err)
	}
}

func TestSnapshotRuntimeMetrics(t *testing.T) {
	m := SnapshotRuntimeMetrics()
	if len(m) == 0 {
		t.Fatal("no runtime metrics sampled")
	}
	if _, ok := m["/memory/classes/heap/objects:bytes"]; !ok {
		t.Error("expected heap objects metric in snapshot")
	}
}
