package obs

import (
	"testing"
	"time"
)

func ev(i int) Event {
	return Event{T: time.Duration(i) * time.Millisecond, Kind: KindSend, Dir: DirUp, Seq: int64(i), Aux: 1200}
}

func TestTracerUnbounded(t *testing.T) {
	tr := New(0)
	for i := 0; i < 1000; i++ {
		tr.Emit(ev(i))
	}
	if tr.Len() != 1000 || tr.Emitted() != 1000 || tr.Dropped() != 0 {
		t.Fatalf("len=%d emitted=%d dropped=%d, want 1000/1000/0", tr.Len(), tr.Emitted(), tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestTracerRingKeepsNewest(t *testing.T) {
	tr := New(16)
	for i := 0; i < 100; i++ {
		tr.Emit(ev(i))
	}
	if tr.Len() != 16 {
		t.Fatalf("ring len %d, want 16", tr.Len())
	}
	if tr.Emitted() != 100 || tr.Dropped() != 84 {
		t.Fatalf("emitted %d dropped %d, want 100/84", tr.Emitted(), tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := int64(84 + i); e.Seq != want {
			t.Fatalf("ring event %d has seq %d, want %d (order broken across wrap)", i, e.Seq, want)
		}
	}
}

func TestTracerRingExactCapacity(t *testing.T) {
	tr := New(8)
	for i := 0; i < 8; i++ {
		tr.Emit(ev(i))
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d before the ring wrapped", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 8 || evs[0].Seq != 0 || evs[7].Seq != 7 {
		t.Fatalf("unexpected events %+v", evs)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(ev(1)) // must not panic
	if tr.Len() != 0 || tr.Emitted() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer should report empty state")
	}
}

// TestEmitZeroAlloc pins the hot-path contract: emitting into a nil
// (disabled) tracer and into a warm ring both allocate nothing.
func TestEmitZeroAlloc(t *testing.T) {
	var nilTr *Tracer
	if allocs := testing.AllocsPerRun(1000, func() {
		nilTr.Emit(Event{Kind: KindSend, Seq: 1, Aux: 1200})
	}); allocs != 0 {
		t.Errorf("nil tracer Emit allocates %.1f/op, want 0", allocs)
	}

	ring := New(256)
	if allocs := testing.AllocsPerRun(1000, func() {
		ring.Emit(Event{Kind: KindRecv, Seq: 2, Aux: 1200, V: 31.5})
	}); allocs != 0 {
		t.Errorf("ring tracer Emit allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: KindSend, Seq: int64(i), Aux: 1200})
	}
}

func BenchmarkEmitRing(b *testing.B) {
	tr := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: KindSend, Seq: int64(i), Aux: 1200})
	}
}
