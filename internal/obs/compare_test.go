package obs

import (
	"bytes"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Add("packets_sent", 1000)
	r.Add("packets_lost", 10)
	r.SetGauge("post_outage_queue_ms", 250)
	h := r.Histogram("owd_ms", LatencyMsBuckets)
	for _, v := range []float64{5, 12, 48, 130, 130, 700} {
		h.Observe(v)
	}
	return r
}

// TestRegistryJSONRoundTrip: WriteJSON → ReadRegistryJSON → WriteJSON must
// be byte-identical, so the checked-in baseline is a faithful registry.
func TestRegistryJSONRoundTrip(t *testing.T) {
	r := testRegistry()
	var a bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRegistryJSON(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := back.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("round trip not byte-identical:\n--- first ---\n%s--- second ---\n%s", a.String(), b.String())
	}
}

func TestReadRegistryJSONErrors(t *testing.T) {
	if _, err := ReadRegistryJSON(strings.NewReader("{broken")); err == nil {
		t.Error("malformed JSON accepted")
	}
	bad := `{"counters":{},"gauges":{},"histograms":{"h":{"buckets":[1,2],"counts":[1],"overflow":0,"count":1,"sum":1}}}`
	if _, err := ReadRegistryJSON(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "counts") {
		t.Errorf("count/bucket mismatch not rejected: %v", err)
	}
}

// TestCompareRegistriesGate covers the regression gate's verdicts: identical
// registries pass, drift beyond tolerance is reported with the offending
// metric, drift within tolerance passes, and missing metrics always fail.
func TestCompareRegistriesGate(t *testing.T) {
	base := testRegistry()

	if drifts := CompareRegistries(base, testRegistry(), Tolerance{}); len(drifts) != 0 {
		t.Fatalf("identical registries drifted: %v", drifts)
	}

	// Perturb a counter by 2%: caught at default 1%, passed at 5%.
	cur := testRegistry()
	cur.Add("packets_sent", 20)
	drifts := CompareRegistries(base, cur, Tolerance{Default: 0.01})
	if len(drifts) != 1 || drifts[0].Metric != "counter/packets_sent" {
		t.Fatalf("2%% counter drift at 1%% tolerance: %v", drifts)
	}
	if got := CompareRegistries(base, cur, Tolerance{Default: 0.05}); len(got) != 0 {
		t.Errorf("2%% drift failed a 5%% tolerance: %v", got)
	}
	if got := CompareRegistries(base, cur, Tolerance{Default: 0.01,
		PerMetric: map[string]float64{"counter/packets_sent": 0.05}}); len(got) != 0 {
		t.Errorf("per-metric override not honored: %v", got)
	}

	// Histogram sum drift.
	cur2 := testRegistry()
	cur2.Histogram("owd_ms", LatencyMsBuckets).Sum *= 1.1
	drifts = CompareRegistries(base, cur2, Tolerance{Default: 0.01})
	if len(drifts) != 1 || drifts[0].Metric != "histogram/owd_ms/sum" {
		t.Fatalf("histogram sum drift: %v", drifts)
	}

	// A metric missing on either side fails regardless of tolerance.
	cur3 := testRegistry()
	cur3.Add("new_counter", 1)
	drifts = CompareRegistries(base, cur3, Tolerance{Default: 100})
	if len(drifts) != 1 || drifts[0].Metric != "counter/new_counter" || drifts[0].Missing != "base" {
		t.Fatalf("appeared metric: %v", drifts)
	}
	drifts = CompareRegistries(cur3, base, Tolerance{Default: 100})
	if len(drifts) != 1 || drifts[0].Missing != "cur" {
		t.Fatalf("disappeared metric: %v", drifts)
	}

	// Near-zero baselines use the max(|base|,1) floor: 0 → 1 is 100% of the
	// floor, not infinite.
	a, b := NewRegistry(), NewRegistry()
	a.Add("rare", 0)
	b.Add("rare", 1)
	drifts = CompareRegistries(a, b, Tolerance{Default: 0.5})
	if len(drifts) != 1 || drifts[0].Rel != 1 {
		t.Fatalf("zero-baseline drift: %v", drifts)
	}
}
