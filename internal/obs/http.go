package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
	"time"
)

// Serve starts an observability HTTP server on addr exposing the standard
// net/http/pprof endpoints under /debug/pprof/ and a runtime/metrics
// snapshot under /debug/runtime-metrics. It returns the server (shut it
// down with Close) and the bound address — useful when addr requests an
// ephemeral port ("127.0.0.1:0").
//
// The handlers are registered on a private mux, not http.DefaultServeMux,
// so importing this package never changes the global handler set.
func Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime-metrics", runtimeMetricsHandler)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return srv, ln.Addr().String(), nil
}

// runtimeMetricsHandler writes a JSON snapshot of every runtime/metrics
// sample the Go runtime publishes (scheduler latencies, GC pause
// histograms, heap sizes), keyed by metric name.
func runtimeMetricsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(SnapshotRuntimeMetrics()) //nolint:errcheck // best-effort diagnostics endpoint
}

// RuntimeHistogram is the JSON shape of a runtime Float64Histogram sample.
type RuntimeHistogram struct {
	Buckets []float64 `json:"buckets"`
	Counts  []uint64  `json:"counts"`
}

// SnapshotRuntimeMetrics reads every supported runtime/metrics sample and
// returns it in a JSON-marshalable map: uint64/float64 values directly,
// histograms as bucket/count pairs. Runtime histogram bucket edges use
// ±Inf as open boundaries, which encoding/json rejects, so non-finite
// floats are clamped to ±MaxFloat64 before export.
func SnapshotRuntimeMetrics() map[string]any {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	out := make(map[string]any, len(samples))
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[s.Name] = s.Value.Uint64()
		case metrics.KindFloat64:
			out[s.Name] = jsonSafeFloat(s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			buckets := make([]float64, len(h.Buckets))
			for i, b := range h.Buckets {
				buckets[i] = jsonSafeFloat(b)
			}
			out[s.Name] = RuntimeHistogram{Buckets: buckets, Counts: h.Counts}
		}
	}
	return out
}

// jsonSafeFloat maps values encoding/json cannot marshal (±Inf, NaN) onto
// representable sentinels: infinities clamp to ±MaxFloat64, NaN to zero.
func jsonSafeFloat(v float64) float64 {
	switch {
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	case math.IsNaN(v):
		return 0
	default:
		return v
	}
}
