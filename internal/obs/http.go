package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
	"time"
)

// Server is a running observability HTTP server: pprof and runtime metrics
// under /debug/, the Prometheus exposition at /metrics, the live status
// snapshot at /status, and the status SSE stream at /events. Shut it down
// with Shutdown (drains in-flight scrapes) or Close (immediate).
type Server struct {
	srv  *http.Server
	addr string
	tel  *Telemetry
	// done closes when the serving goroutine returns, so Shutdown can
	// prove the listener is gone instead of abandoning the goroutine.
	done chan struct{}
}

// Serve starts an observability HTTP server on addr. tel feeds the
// /metrics, /status and /events endpoints; nil gets an empty private hub
// so every endpoint still answers. The returned server reports its bound
// address via Addr — useful when addr requests an ephemeral port
// ("127.0.0.1:0").
//
// The handlers are registered on a private mux, not http.DefaultServeMux,
// so importing this package never changes the global handler set.
func Serve(addr string, tel *Telemetry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	if tel == nil {
		tel = NewTelemetry()
	}
	s := &Server{addr: ln.Addr().String(), tel: tel, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime-metrics", runtimeMetricsHandler)
	mux.HandleFunc("/metrics", s.metricsHandler)
	mux.HandleFunc("/status", s.statusHandler)
	mux.HandleFunc("/events", s.eventsHandler)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Shutdown/Close
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.addr }

// Telemetry returns the hub feeding the live endpoints.
func (s *Server) Telemetry() *Telemetry { return s.tel }

// Shutdown gracefully stops the server: the SSE streams are closed (they
// would otherwise hold connections open forever), the listener stops, and
// in-flight scrapes drain until ctx expires. It then waits for the serving
// goroutine to exit, fixing the old Serve/Close lifecycle that abandoned
// it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.tel.CloseStreams()
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// Close stops the server immediately, dropping in-flight requests.
func (s *Server) Close() error {
	s.tel.CloseStreams()
	err := s.srv.Close()
	<-s.done
	return err
}

// metricsHandler serves the Prometheus text exposition: the hub's merged
// registry plus progress pseudo-gauges derived from the latest status
// snapshot (so a scraper sees campaign progress without parsing /status).
func (s *Server) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg := s.tel.SnapshotRegistry()
	if st, ok := s.tel.Status(); ok {
		reg.SetGauge("runs_done", float64(st.RunsDone))
		reg.SetGauge("runs_total", float64(st.RunsTotal))
		reg.SetGauge("run_errors", float64(st.RunErrors))
		reg.SetGauge("wall_seconds", st.WallSeconds)
		reg.SetGauge("sim_rate", st.SimRate)
	}
	reg.WritePrometheus(w) //nolint:errcheck // best-effort scrape endpoint
}

// statusHandler serves the latest status snapshot as JSON; 404 until a
// workload publishes one (a scraper can tell "no campaign yet" from
// "campaign at zero").
func (s *Server) statusHandler(w http.ResponseWriter, _ *http.Request) {
	st, ok := s.tel.Status()
	if !ok {
		http.Error(w, "no status published yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st) //nolint:errcheck // best-effort diagnostics endpoint
}

// eventsHandler streams status snapshots as server-sent events: one
// "status" event per published snapshot, starting with the current one.
// The stream ends when the client disconnects or the server shuts down.
func (s *Server) eventsHandler(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	ch, cancel := s.tel.Subscribe()
	defer cancel()
	if st, ok := s.tel.Status(); ok {
		if writeSSE(w, st) != nil {
			return
		}
		fl.Flush()
	}
	for {
		select {
		case st, ok := <-ch:
			if !ok {
				return // hub shut down
			}
			if writeSSE(w, st) != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE frames one snapshot as an SSE "status" event.
func writeSSE(w http.ResponseWriter, st StatusSnapshot) error {
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: status\ndata: %s\n\n", data)
	return err
}

// runtimeMetricsHandler writes a JSON snapshot of every runtime/metrics
// sample the Go runtime publishes (scheduler latencies, GC pause
// histograms, heap sizes), keyed by metric name.
func runtimeMetricsHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(SnapshotRuntimeMetrics()) //nolint:errcheck // best-effort diagnostics endpoint
}

// RuntimeHistogram is the JSON shape of a runtime Float64Histogram sample.
type RuntimeHistogram struct {
	Buckets []float64 `json:"buckets"`
	Counts  []uint64  `json:"counts"`
}

// SnapshotRuntimeMetrics reads every supported runtime/metrics sample and
// returns it in a JSON-marshalable map: uint64/float64 values directly,
// histograms as bucket/count pairs. Runtime histogram bucket edges use
// ±Inf as open boundaries, which encoding/json rejects, so non-finite
// floats are clamped to ±MaxFloat64 before export.
func SnapshotRuntimeMetrics() map[string]any {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	out := make(map[string]any, len(samples))
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[s.Name] = s.Value.Uint64()
		case metrics.KindFloat64:
			out[s.Name] = jsonSafeFloat(s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			buckets := make([]float64, len(h.Buckets))
			for i, b := range h.Buckets {
				buckets[i] = jsonSafeFloat(b)
			}
			out[s.Name] = RuntimeHistogram{Buckets: buckets, Counts: h.Counts}
		}
	}
	return out
}

// jsonSafeFloat maps values encoding/json cannot marshal (±Inf, NaN) onto
// representable sentinels: infinities clamp to ±MaxFloat64, NaN to zero.
func jsonSafeFloat(v float64) float64 {
	switch {
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	case math.IsNaN(v):
		return 0
	default:
		return v
	}
}
