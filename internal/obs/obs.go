// Package obs is the observability layer of the simulator: a
// zero-allocation-on-hot-path event tracer for per-run time-series
// observables (the per-packet and per-frame signals the paper's analysis
// rests on), a campaign-level metrics registry with fixed histogram bucket
// layouts, a byte-stable JSONL/JSON export format, and a pprof/runtime-
// metrics HTTP endpoint.
//
// Determinism contract: tracing never draws randomness, never schedules
// simulator events and never perturbs the run it observes — a run with
// tracing enabled produces the same Result as one without. Each run owns
// its tracer, and campaign exports serialize runs in run-index order, so
// trace and metrics output is byte-identical at any campaign worker count.
package obs

import "time"

// Kind classifies a trace event. Field semantics per kind are documented
// on the constants (and tabulated in DESIGN.md §6).
type Kind uint8

// Event kinds.
const (
	// KindSend is a packet offered to a link. Seq: link-local packet id;
	// Aux: wire size in bytes.
	KindSend Kind = iota
	// KindRecv is a packet delivered by a link. Seq: packet id; Aux: wire
	// size; V: one-way delay in milliseconds.
	KindRecv
	// KindDrop is a packet dropped by a link. Seq: packet id; Aux: the
	// drop reason (the link layer's DropReason numeric value).
	KindDrop
	// KindOutageStart marks the instant a link first observes its service
	// interrupted (handover execution, RLF re-establishment or a scripted
	// fault window).
	KindOutageStart
	// KindOutageEnd marks service resumption on that link.
	KindOutageEnd
	// KindHandover is a completed handover. Seq: source cell; Aux: target
	// cell; V: handover execution time in milliseconds.
	KindHandover
	// KindRLF is a declared radio-link failure. Seq: serving cell at
	// failure; Aux: cause (cell.RLFCause numeric value); V: blackout
	// length in milliseconds.
	KindRLF
	// KindCC is a congestion-controller rate decision. Seq: controller
	// detail (GCC: over-use signal; SCReAM: congestion window in bytes);
	// Aux: acks in the feedback report; V: target bitrate in bits/s.
	KindCC
	// KindFramePlay is a frame that reached the screen. Seq: frame
	// number; Aux: playback latency in microseconds; V: SSIM score.
	KindFramePlay
	// KindFrameSkip is a frame abandoned undecoded. Seq: frame number.
	KindFrameSkip
	// KindStall is a playback interruption, emitted when playback
	// resumes. Aux: gap length in microseconds.
	KindStall
	// KindNack is a Generic NACK feedback message leaving the receiver.
	// Seq: first sequence number requested; Aux: sequence count.
	KindNack
	// KindRTX is a retransmission leaving the sender in answer to a NACK.
	// Seq: original media sequence number; Aux: wire size in bytes.
	KindRTX
	// KindRepairOK is a missing packet healed at the receiver. Seq: media
	// sequence number; Aux: 1 if healed by an RTX, 0 by the late original;
	// V: loss-to-heal delay in milliseconds.
	KindRepairOK
	// KindRepairAbandoned is a missing packet the repair layer gave up on
	// (retry cap reached or pending bound hit); recovery falls back to the
	// player's keyframe-request path. Seq: media sequence number; Aux:
	// NACKs spent on it. The detector's outage guard emits one summary
	// event per dead span instead: Seq is the first missing sequence
	// number and Aux the span length.
	KindRepairAbandoned
	// KindPathDown is a bonded path declared unhealthy by the bond health
	// monitor (outage or loss breach past the hysteresis). Seq: path index;
	// Aux: cause (bond.DownCause numeric value).
	KindPathDown
	// KindPathUp is a bonded path readmitted after its probation. Seq:
	// path index; V: milliseconds the path spent down.
	KindPathUp
	// KindFailover is the failover scheduler switching its active path.
	// Seq: previous active path; Aux: new active path.
	KindFailover
	// KindReorderDrop is a packet the bonded reorder buffer discarded as
	// too late (its slot was already released to the player). Seq:
	// extended media sequence number.
	KindReorderDrop
	// KindCellAttach is a fleet UE camping on a cell (first attach or the
	// attach half of a handover), sampled at scheduling-epoch granularity.
	// Seq: UAV index; Aux: cell ID; V: serving RSRP (dBm).
	KindCellAttach
	// KindCellDetach is a fleet UE leaving a cell (the detach half of a
	// handover). Seq: UAV index; Aux: cell ID.
	KindCellDetach
	// KindCellOverloadStart is a shared cell entering overload: at least
	// two attached UEs and some UE's scheduled share below the overload
	// floor. Seq: cell ID; Aux: attached users; V: the epoch's min share.
	KindCellOverloadStart
	// KindCellOverloadEnd is the cell leaving overload (or emptying).
	// Seq: cell ID; Aux: attached users at the transition (0 if emptied).
	KindCellOverloadEnd
)

// String implements fmt.Stringer; the strings are the JSONL kind values.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindDrop:
		return "drop"
	case KindOutageStart:
		return "outage-start"
	case KindOutageEnd:
		return "outage-end"
	case KindHandover:
		return "handover"
	case KindRLF:
		return "rlf"
	case KindCC:
		return "cc"
	case KindFramePlay:
		return "frame-play"
	case KindFrameSkip:
		return "frame-skip"
	case KindStall:
		return "stall"
	case KindNack:
		return "nack-sent"
	case KindRTX:
		return "rtx-sent"
	case KindRepairOK:
		return "repair-ok"
	case KindRepairAbandoned:
		return "repair-abandoned"
	case KindPathDown:
		return "path-down"
	case KindPathUp:
		return "path-up"
	case KindFailover:
		return "failover"
	case KindReorderDrop:
		return "reorder-drop"
	case KindCellAttach:
		return "cell-attach"
	case KindCellDetach:
		return "cell-detach"
	case KindCellOverloadStart:
		return "cell-overload-start"
	case KindCellOverloadEnd:
		return "cell-overload-end"
	default:
		return "unknown"
	}
}

// Dir identifies which emulated link (or radio chain) an event belongs to.
type Dir uint8

// Directions.
const (
	// DirNone is for events not tied to one link direction (CC decisions,
	// player events, the primary radio chain's cell events).
	DirNone Dir = iota
	// DirUp is the media uplink (vehicle → operator).
	DirUp
	// DirDown is the feedback downlink.
	DirDown
	// DirUp2 is the second (multipath) uplink and its radio chain.
	DirUp2
)

// String implements fmt.Stringer; the strings are the JSONL dir values.
func (d Dir) String() string {
	switch d {
	case DirUp:
		return "up"
	case DirDown:
		return "down"
	case DirUp2:
		return "up2"
	default:
		return ""
	}
}

// Event flag bits.
const (
	// FlagCtrl marks control-plane packets (RTCP sharing the media
	// bearer) on send/recv/drop events.
	FlagCtrl uint8 = 1 << iota
	// FlagRTX marks retransmitted media packets (the RFC 4588 repair
	// stream sharing the media bottleneck) on send/recv/drop events.
	FlagRTX
)

// Event is one typed trace record. It is a flat value type — no pointers,
// no interfaces — so emitting one performs no allocation and a ring of
// them is a single contiguous block. Seq, Aux and V carry kind-specific
// payloads (see the Kind constants).
type Event struct {
	// T is the simulation time of the event. Components emit at their
	// current simulation time, so a run's trace is time-ordered.
	T     time.Duration
	Kind  Kind
	Dir   Dir
	Flags uint8
	Seq   int64
	Aux   int64
	V     float64
}
