package obs

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Add("packets_sent", 10)
	r.Add("packets_sent", 5)
	if r.Counter("packets_sent") != 15 {
		t.Fatalf("counter = %d, want 15", r.Counter("packets_sent"))
	}
	r.SetGauge("queue_ms", 10)
	r.SetGauge("queue_ms", 4) // gauges keep the watermark
	r.SetGauge("queue_ms", 25)
	if r.Gauge("queue_ms") != 25 {
		t.Fatalf("gauge = %g, want 25", r.Gauge("queue_ms"))
	}
	h := r.Histogram("owd_ms", LatencyMsBuckets)
	h.Observe(3)
	h.Observe(30)
	h.Observe(1e9) // overflow
	if h.Count != 3 || h.Overflow != 1 {
		t.Fatalf("count=%d overflow=%d, want 3/1", h.Count, h.Overflow)
	}
	if again := r.Histogram("owd_ms", LatencyMsBuckets); again != h {
		t.Fatal("re-registering the same layout must return the same histogram")
	}
}

func TestHistogramLayoutMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", LatencyMsBuckets)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on layout mismatch")
		}
	}()
	r.Histogram("h", RateMbpsBuckets)
}

// TestHistogramCountInvariant is the property test: for arbitrary
// observation streams (including infinities and NaN) across every fixed
// layout, the bucket counts plus overflow always sum to the observation
// count.
func TestHistogramCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layouts := [][]float64{LatencyMsBuckets, RateMbpsBuckets, SSIMBuckets, FPSBuckets}
	for trial := 0; trial < 200; trial++ {
		layout := layouts[trial%len(layouts)]
		h := &Histogram{Buckets: layout, Counts: make([]int64, len(layout))}
		n := rng.Intn(500)
		for i := 0; i < n; i++ {
			var v float64
			switch rng.Intn(10) {
			case 0:
				v = math.Inf(1)
			case 1:
				v = math.Inf(-1)
			case 2:
				v = math.NaN()
			default:
				v = (rng.Float64() - 0.2) * 3000
			}
			h.Observe(v)
		}
		var sum int64
		for _, c := range h.Counts {
			sum += c
		}
		sum += h.Overflow
		if sum != h.Count || h.Count != int64(n) {
			t.Fatalf("trial %d: bucket sum %d + overflow, count %d, observed %d", trial, sum, h.Count, n)
		}
		if math.IsNaN(h.Sum) {
			t.Fatalf("trial %d: NaN observation poisoned Sum", trial)
		}
	}
}

// TestMergePartitionInvariant is the second property: campaign metrics are
// independent of the worker count. The engine always folds per-run
// registries flat, in run-index order — workers only change which
// goroutine *computes* each run, never the merge order — so two flat
// merges of the same per-run registries are byte-identical. Chunked
// (group-then-merge) folds are additionally exact for every integer field
// and for gauges; only the float histogram Sum is order-sensitive, which
// is why the engine pins the flat order.
func TestMergePartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		runs := 1 + rng.Intn(12)
		perRun := make([]*Registry, runs)
		var wantSent int64
		for i := range perRun {
			r := NewRegistry()
			sent := int64(rng.Intn(1000))
			r.Add("packets_sent", sent)
			wantSent += sent
			r.SetGauge("queue_ms", rng.Float64()*100)
			h := r.Histogram("owd_ms", LatencyMsBuckets)
			for j := rng.Intn(200); j > 0; j-- {
				h.Observe(rng.Float64() * 4000)
			}
			perRun[i] = r
		}

		// Two independent flat merges in run-index order — what the engine
		// does at every worker count — must export identical bytes.
		flat := NewRegistry()
		flat2 := NewRegistry()
		for _, r := range perRun {
			flat.Merge(r)
		}
		for _, r := range perRun {
			flat2.Merge(r)
		}
		var a, b bytes.Buffer
		if err := flat.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := flat2.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("trial %d: two flat run-index-order merges export different bytes:\n%s\nvs\n%s", trial, a.String(), b.String())
		}

		// Chunked merge: contiguous groups merged first, then folded.
		chunked := NewRegistry()
		for lo := 0; lo < runs; {
			hi := lo + 1 + rng.Intn(runs-lo)
			group := NewRegistry()
			for _, r := range perRun[lo:hi] {
				group.Merge(r)
			}
			chunked.Merge(group)
			lo = hi
		}

		if flat.Counter("packets_sent") != wantSent || chunked.Counter("packets_sent") != wantSent {
			t.Fatalf("trial %d: counter sums diverge: flat %d chunked %d want %d",
				trial, flat.Counter("packets_sent"), chunked.Counter("packets_sent"), wantSent)
		}
		if flat.Gauge("queue_ms") != chunked.Gauge("queue_ms") {
			t.Fatalf("trial %d: gauge max diverges: flat %g chunked %g",
				trial, flat.Gauge("queue_ms"), chunked.Gauge("queue_ms"))
		}
		fh := flat.Histogram("owd_ms", LatencyMsBuckets)
		ch := chunked.Histogram("owd_ms", LatencyMsBuckets)
		if fh.Count != ch.Count || fh.Overflow != ch.Overflow {
			t.Fatalf("trial %d: histogram totals diverge: flat %d/%d chunked %d/%d",
				trial, fh.Count, fh.Overflow, ch.Count, ch.Overflow)
		}
		for i := range fh.Counts {
			if fh.Counts[i] != ch.Counts[i] {
				t.Fatalf("trial %d: bucket %d diverges: flat %d chunked %d", trial, i, fh.Counts[i], ch.Counts[i])
			}
		}
		// Float Sum is associative only up to rounding; it must still agree
		// to within a sliver of the magnitude involved.
		if diff := math.Abs(fh.Sum - ch.Sum); diff > 1e-6*math.Max(1, math.Abs(fh.Sum)) {
			t.Fatalf("trial %d: histogram Sum diverges beyond rounding: flat %g chunked %g", trial, fh.Sum, ch.Sum)
		}
	}
}

func TestWriteJSONStable(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Add("b_counter", 2)
		r.Add("a_counter", 1)
		r.SetGauge("g", 1.25)
		h := r.Histogram("owd_ms", LatencyMsBuckets)
		h.Observe(3.5)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two identical registries export different bytes:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !bytes.Contains(a.Bytes(), []byte(`"a_counter": 1`)) {
		t.Errorf("export missing counter: %s", a.String())
	}
}
