package obs

// Tracer collects the typed events of one run. A nil *Tracer is the
// disabled state: every emit site guards with a nil check (and Emit itself
// tolerates a nil receiver), so disabled tracing costs one predictable
// branch and zero allocations on the packet path.
//
// With a positive capacity the tracer is a fixed-size ring: the buffer is
// allocated once up front, Emit never allocates, and once full the oldest
// events are overwritten (Dropped counts them). With capacity ≤ 0 the
// tracer grows without bound and keeps everything — the mode trace exports
// and the golden-trace suite use.
//
// A Tracer is owned by a single run and is not safe for concurrent use;
// campaign parallelism gives every run its own tracer.
type Tracer struct {
	buf  []Event
	ring bool
	head int // oldest event's index once the ring has wrapped
	full bool
	n    int64 // total events emitted
}

// New returns a tracer. capacity > 0 selects the fixed-size ring;
// capacity ≤ 0 keeps every event.
func New(capacity int) *Tracer {
	if capacity > 0 {
		return &Tracer{buf: make([]Event, 0, capacity), ring: true}
	}
	return &Tracer{}
}

// Emit records one event. It is safe to call on a nil tracer (a no-op),
// and in ring mode it never allocates.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.n++
	if t.ring && len(t.buf) == cap(t.buf) {
		t.buf[t.head] = ev
		t.head++
		if t.head == len(t.buf) {
			t.head = 0
		}
		t.full = true
		return
	}
	t.buf = append(t.buf, ev)
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Emitted returns the total number of events emitted, including any the
// ring has overwritten.
func (t *Tracer) Emitted() int64 {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.n - int64(len(t.buf))
}

// Events returns the retained events in emission order (which is
// simulation-time order). The returned slice is freshly allocated; the
// caller may keep it.
func (t *Tracer) Events() []Event {
	if t == nil || len(t.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.head:]...)
		out = append(out, t.buf[:t.head]...)
		return out
	}
	return append(out, t.buf...)
}
