package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Fixed histogram bucket layouts. Every histogram of a given name must use
// the same layout in every run, so per-run registries merge bucket-by-
// bucket and campaign output is byte-stable at any worker count. Bucket
// edges are upper bounds (v ≤ edge); observations beyond the last edge
// land in the overflow bucket.
var (
	// LatencyMsBuckets covers one-way delay, playback latency, jitter,
	// RTT, HET and outage/recovery times in milliseconds.
	LatencyMsBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
	// RateMbpsBuckets covers goodput and target-rate samples in Mbps.
	RateMbpsBuckets = []float64{0.5, 1, 2, 4, 6, 8, 10, 12, 16, 20, 25, 30}
	// SSIMBuckets covers per-frame quality scores.
	SSIMBuckets = []float64{0, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 0.98, 1}
	// FPSBuckets covers frames-played-per-second samples.
	FPSBuckets = []float64{0, 5, 10, 15, 20, 24, 28, 30, 35}
	// ShareBuckets covers per-UE scheduled capacity shares in (0, 1]: the
	// fleet scheduler's grant distribution. The last edge is exactly 1 so
	// the overflow bucket stays empty unless conservation breaks.
	ShareBuckets = []float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
)

// Histogram is a fixed-bucket histogram: Counts[i] tallies observations
// v ≤ Buckets[i] (and greater than the previous edge); Overflow tallies
// the rest. Count is the total number of observations and Sum their sum.
type Histogram struct {
	Buckets  []float64 `json:"buckets"`
	Counts   []int64   `json:"counts"`
	Overflow int64     `json:"overflow"`
	Count    int64     `json:"count"`
	Sum      float64   `json:"sum"`
}

// Observe records one sample. NaN counts into the overflow bucket, and
// only finite observations contribute to Sum — so bucket counts always
// sum to Count and one pathological sample cannot poison the aggregate.
func (h *Histogram) Observe(v float64) {
	h.Count++
	if math.IsNaN(v) {
		h.Overflow++
		return
	}
	if !math.IsInf(v, 0) {
		h.Sum += v
	}
	for i, edge := range h.Buckets {
		if v <= edge {
			h.Counts[i]++
			return
		}
	}
	h.Overflow++
}

// Merge folds o into h bucket-by-bucket. The layouts must match (it
// panics otherwise, like Registry.Merge).
func (h *Histogram) Merge(o *Histogram) { h.merge("histogram", o) }

// merge folds o into h. The layouts must match.
func (h *Histogram) merge(name string, o *Histogram) {
	if len(h.Buckets) != len(o.Buckets) {
		panic(fmt.Sprintf("obs: histogram %q bucket layout mismatch (%d vs %d edges)", name, len(h.Buckets), len(o.Buckets)))
	}
	for i, edge := range h.Buckets {
		if edge != o.Buckets[i] {
			panic(fmt.Sprintf("obs: histogram %q bucket %d mismatch (%g vs %g)", name, i, edge, o.Buckets[i]))
		}
		h.Counts[i] += o.Counts[i]
	}
	h.Overflow += o.Overflow
	h.Count += o.Count
	h.Sum += o.Sum
}

// Registry is a named collection of counters, gauges and histograms — the
// campaign-level metrics surface. It is not safe for concurrent use; the
// campaign engine builds one registry per run and merges them in run-index
// order.
type Registry struct {
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Histogram
	logs     map[string]*LogHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
		logs:     make(map[string]*LogHistogram),
	}
}

// Add increments a counter.
func (r *Registry) Add(name string, delta int64) { r.counters[name] += delta }

// Counter returns a counter's current value.
func (r *Registry) Counter(name string) int64 { return r.counters[name] }

// SetGauge records a gauge value. Gauges merge by maximum — they record
// worst-case watermarks (peak queue delay, slowest ramp-up), for which the
// campaign-level answer is the worst run's.
func (r *Registry) SetGauge(name string, v float64) {
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
}

// Gauge returns a gauge's current value.
func (r *Registry) Gauge(name string) float64 { return r.gauges[name] }

// Histogram returns (creating if needed) the named histogram with the
// given bucket layout. It panics if the name already exists with a
// different layout.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if h, ok := r.hists[name]; ok {
		if len(h.Buckets) != len(buckets) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with a different layout", name))
		}
		return h
	}
	h := &Histogram{Buckets: buckets, Counts: make([]int64, len(buckets))}
	r.hists[name] = h
	return h
}

// LogHistogram returns (creating if needed) the named log-bucketed
// histogram. All log histograms share the package layout (see loghist.go),
// so no bucket negotiation is needed.
func (r *Registry) LogHistogram(name string) *LogHistogram {
	if h, ok := r.logs[name]; ok {
		return h
	}
	h := NewLogHistogram()
	r.logs[name] = h
	return h
}

// Merge folds o into r: counters sum, gauges take the maximum, histograms
// sum bucket-by-bucket. It panics on a histogram bucket-layout mismatch.
// Integer fields merge associatively; histogram Sum is a float, so
// byte-identical exports require a fixed merge order — the campaign
// engine always merges per-run registries flat, in run-index order, which
// is independent of the worker count.
func (r *Registry) Merge(o *Registry) {
	for name, v := range o.counters {
		r.counters[name] += v
	}
	for name, v := range o.gauges {
		r.SetGauge(name, v)
	}
	// Deterministic histogram creation order is irrelevant for the maps
	// themselves, but iterate sorted anyway so any layout-mismatch panic
	// names the same histogram every time.
	names := make([]string, 0, len(o.hists))
	for name := range o.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		oh := o.hists[name]
		h, ok := r.hists[name]
		if !ok {
			h = r.Histogram(name, oh.Buckets)
		}
		h.merge(name, oh)
	}
	for name, oh := range o.logs {
		r.LogHistogram(name).Merge(oh)
	}
}

// Clone returns a deep copy of the registry — the snapshot the telemetry
// hub hands to scrape handlers so exports never race live recording.
func (r *Registry) Clone() *Registry {
	out := NewRegistry()
	out.Merge(r)
	return out
}

// registryJSON is the export shape. encoding/json writes map keys in
// sorted order and formats floats deterministically, so the output is
// byte-stable.
type registryJSON struct {
	Counters   map[string]int64      `json:"counters"`
	Gauges     map[string]float64    `json:"gauges"`
	Histograms map[string]*Histogram `json:"histograms"`
	// LogHistograms is omitted when empty so registries predating the
	// live-telemetry layer (every checked-in baseline) keep their exact
	// bytes.
	LogHistograms map[string]*LogHistogram `json:"loghistograms,omitempty"`
}

// WriteJSON renders the registry as indented JSON with sorted keys.
func (r *Registry) WriteJSON(w io.Writer) error {
	logs := r.logs
	if len(logs) == 0 {
		logs = nil // omitempty needs nil-or-empty; be explicit for old maps
	}
	out, err := json.MarshalIndent(registryJSON{
		Counters:      r.counters,
		Gauges:        r.gauges,
		Histograms:    r.hists,
		LogHistograms: logs,
	}, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}
