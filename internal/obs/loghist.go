package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"rpivideo/internal/metrics"
)

// The log-histogram layout is a package-wide constant shared by every
// LogHistogram, reusing the metrics.Sketch bucketing scheme (bucket i
// covers (gamma^(i-1), gamma^i] with gamma derived from
// metrics.SketchAlpha). A fixed index window keeps Observe allocation-free:
// the dense count array is sized once at creation and indices outside the
// window clamp to its edges. [-500, 700] spans roughly 4.5e-5 .. 1.1e6 in
// the recorded unit (milliseconds for every wired delay), far beyond any
// delay the simulation can produce, so clamping is a formality.
const (
	logHistMinIdx = -500
	logHistMaxIdx = 700
	logHistCells  = logHistMaxIdx - logHistMinIdx + 1
)

// LogHistogram is a log-bucketed histogram for hot-path latency recording:
// Observe is O(1), allocation-free, and costs one math.Log plus an array
// increment. Unlike the fixed-bucket Histogram (whose layouts are named,
// coarse, and part of the byte-stable campaign exports), a LogHistogram
// has ~1% relative bucket resolution everywhere and is meant for the live
// telemetry surface (/metrics). It is not safe for concurrent use; each
// run records into its own and the telemetry hub merges under its lock.
type LogHistogram struct {
	// counts is the dense bucket array, cell j counting index
	// logHistMinIdx+j. Values at or below zero (a delay cannot be
	// negative; zero has no log bucket) land in the zero cell.
	counts []int64
	zero   int64
	count  int64
	sum    float64
	// lo and hi bound the occupied cells (inclusive, as indices into
	// counts); lo > hi means none are occupied. They make export and
	// merge O(occupied span) instead of O(logHistCells).
	lo, hi int
}

// NewLogHistogram returns an empty log histogram.
func NewLogHistogram() *LogHistogram {
	return &LogHistogram{counts: make([]int64, logHistCells), lo: logHistCells, hi: -1}
}

// Observe records one sample. Non-positive and NaN samples count into the
// zero cell and only finite positive samples contribute to Sum, mirroring
// Histogram's poisoning rules.
func (h *LogHistogram) Observe(v float64) {
	h.count++
	if !(v > 0) { // catches v <= 0 and NaN
		h.zero++
		return
	}
	if math.IsInf(v, 1) {
		h.bump(logHistCells - 1)
		return
	}
	h.sum += v
	idx := metrics.BucketIndex(v)
	switch {
	case idx < logHistMinIdx:
		idx = logHistMinIdx
	case idx > logHistMaxIdx:
		idx = logHistMaxIdx
	}
	h.bump(int(idx) - logHistMinIdx)
}

// bump increments one cell, maintaining the occupied span.
func (h *LogHistogram) bump(cell int) {
	h.counts[cell]++
	if cell < h.lo {
		h.lo = cell
	}
	if cell > h.hi {
		h.hi = cell
	}
}

// Count returns the number of observations.
func (h *LogHistogram) Count() int64 { return h.count }

// Sum returns the sum of the finite positive observations.
func (h *LogHistogram) Sum() float64 { return h.sum }

// Merge folds o into h cell-by-cell. Every LogHistogram shares the package
// layout, so no negotiation is needed.
func (h *LogHistogram) Merge(o *LogHistogram) {
	h.count += o.count
	h.sum += o.sum
	h.zero += o.zero
	for cell := o.lo; cell <= o.hi; cell++ {
		if c := o.counts[cell]; c > 0 {
			h.counts[cell] += c
			if cell < h.lo {
				h.lo = cell
			}
			if cell > h.hi {
				h.hi = cell
			}
		}
	}
}

// Clone returns a deep copy.
func (h *LogHistogram) Clone() *LogHistogram {
	c := NewLogHistogram()
	c.Merge(h)
	return c
}

// each walks the occupied buckets in ascending value order, passing each
// bucket's sketch index, upper edge, and count.
func (h *LogHistogram) each(fn func(idx int32, upper float64, count int64)) {
	for cell := h.lo; cell <= h.hi; cell++ {
		if c := h.counts[cell]; c > 0 {
			idx := int32(cell) + logHistMinIdx
			fn(idx, metrics.BucketUpper(idx), c)
		}
	}
}

// logHistJSON is the sparse wire shape: occupied buckets keyed by sketch
// index. encoding/json writes map keys sorted (lexicographically — fine for
// byte stability, which is all the export needs).
type logHistJSON struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Zero    int64            `json:"zero,omitempty"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// MarshalJSON renders the sparse form; a pure function of the recorded
// multiset, so two equal histograms marshal to identical bytes.
func (h *LogHistogram) MarshalJSON() ([]byte, error) {
	out := logHistJSON{Count: h.count, Sum: h.sum, Zero: h.zero}
	if h.lo <= h.hi {
		out.Buckets = make(map[string]int64)
		h.each(func(idx int32, _ float64, c int64) {
			out.Buckets[strconv.FormatInt(int64(idx), 10)] = c
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON reconstructs a histogram marshaled by MarshalJSON,
// overwriting the receiver.
func (h *LogHistogram) UnmarshalJSON(data []byte) error {
	var in logHistJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*h = *NewLogHistogram()
	h.count = in.Count
	h.sum = in.Sum
	h.zero = in.Zero
	for k, c := range in.Buckets {
		idx, err := strconv.ParseInt(k, 10, 32)
		if err != nil {
			return fmt.Errorf("obs: log histogram bucket key %q: %w", k, err)
		}
		if idx < logHistMinIdx || idx > logHistMaxIdx {
			return fmt.Errorf("obs: log histogram bucket index %d outside [%d, %d]", idx, logHistMinIdx, logHistMaxIdx)
		}
		h.counts[int(idx)-logHistMinIdx] = c
		if cell := int(idx) - logHistMinIdx; cell < h.lo {
			h.lo = cell
		}
		if cell := int(idx) - logHistMinIdx; cell > h.hi {
			h.hi = cell
		}
	}
	return nil
}
