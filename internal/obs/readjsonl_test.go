package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestJSONLRoundTrip: ReadJSONL must invert WriteJSONL — times at the
// writer's microsecond truncation, every other field exactly.
func TestJSONLRoundTrip(t *testing.T) {
	meta := RunMeta{Label: "urban-P1-air-gcc", Run: 3, Seed: -42,
		Duration: 371*time.Second + 250*time.Microsecond, Events: 5, Dropped: 1}
	events := []Event{
		{T: 1500 * time.Microsecond, Kind: KindSend, Dir: DirUp, Seq: 1, Aux: 1200},
		{T: 2*time.Millisecond + 700*time.Nanosecond, Kind: KindRecv, Dir: DirUp, Seq: 1, Aux: 1200, V: 37.25},
		{T: 3 * time.Millisecond, Kind: KindDrop, Dir: DirDown, Flags: FlagCtrl, Seq: 9, Aux: 2},
		{T: 4 * time.Millisecond, Kind: KindRTX, Dir: DirUp, Flags: FlagRTX, Seq: 7, Aux: 1100},
		{T: 5 * time.Millisecond, Kind: KindHandover, Seq: 2, Aux: 5, V: 49.5},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, meta, events); err != nil {
		t.Fatal(err)
	}
	runs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	if runs[0].Meta != meta {
		t.Errorf("meta mismatch:\n got %+v\nwant %+v", runs[0].Meta, meta)
	}
	if len(runs[0].Events) != len(events) {
		t.Fatalf("got %d events, want %d", len(runs[0].Events), len(events))
	}
	for i, got := range runs[0].Events {
		want := events[i]
		want.T = want.T.Truncate(time.Microsecond) // writer emits t_us
		if got != want {
			t.Errorf("event %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestJSONLMultiRun: a campaign export with several meta sections splits
// into per-run slices.
func TestJSONLMultiRun(t *testing.T) {
	var buf bytes.Buffer
	for run := 0; run < 3; run++ {
		meta := RunMeta{Label: "x", Run: run, Seed: int64(run), Duration: time.Second, Events: 1}
		ev := []Event{{T: time.Duration(run) * time.Millisecond, Kind: KindStall, Aux: 10}}
		if err := WriteJSONL(&buf, meta, ev); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	for i, r := range runs {
		if r.Meta.Run != i || len(r.Events) != 1 || r.Events[0].Kind != KindStall {
			t.Errorf("run %d parsed wrong: %+v", i, r)
		}
	}
}

// TestJSONLErrors: malformed input fails with a line-numbered error rather
// than silently skewing an analysis.
func TestJSONLErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"event before meta", `{"t_us":1,"kind":"send","seq":0,"aux":0}`, "before any meta"},
		{"unknown kind", "{\"kind\":\"meta\",\"label\":\"x\",\"run\":0,\"seed\":0,\"duration_us\":1,\"events\":1,\"dropped\":0}\n" +
			`{"t_us":1,"kind":"warp","seq":0,"aux":0}`, "unknown kind"},
		{"unknown dir", "{\"kind\":\"meta\",\"label\":\"x\",\"run\":0,\"seed\":0,\"duration_us\":1,\"events\":1,\"dropped\":0}\n" +
			`{"t_us":1,"kind":"send","dir":"sideways","seq":0,"aux":0}`, "unknown dir"},
		{"broken json", `{"kind":`, "line 1"},
	}
	for _, tc := range cases {
		if _, err := ReadJSONL(strings.NewReader(tc.in)); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestKindDirStringInverses pins the name tables as actual inverses, so a
// new Kind cannot silently become unreadable.
func TestKindDirStringInverses(t *testing.T) {
	for k := KindSend; k <= KindCellOverloadEnd; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("kind %d (%s) does not round-trip", k, k)
		}
	}
	if _, ok := KindFromString("unknown"); ok {
		t.Error("the fallback string must not parse as a kind")
	}
	for d := DirNone; d <= DirUp2; d++ {
		got, ok := DirFromString(d.String())
		if !ok || got != d {
			t.Errorf("dir %d (%q) does not round-trip", d, d.String())
		}
	}
}
