package obs

import "sync"

// StatusSnapshot is one live progress sample of a running campaign, fleet,
// or distributed coordinator — the payload of the /status endpoint and the
// /events SSE stream. Producers fill the fields they know; zero values mean
// "not applicable" (a solo campaign has no Workers, a campaign has no
// Cells).
type StatusSnapshot struct {
	// Mode names the producer: "campaign", "fleet", "dist", "experiments".
	Mode string `json:"mode"`
	// Label identifies the workload (scenario name, experiment ID).
	Label string `json:"label,omitempty"`
	// RunsDone / RunsTotal count completed runs against the campaign size.
	RunsDone  int `json:"runs_done"`
	RunsTotal int `json:"runs_total"`
	// RunErrors counts runs that finished with an error.
	RunErrors int `json:"run_errors"`
	// WallSeconds is the wall-clock time since the workload started.
	WallSeconds float64 `json:"wall_seconds"`
	// SimRate is the aggregate simulation speed so far in simulated
	// seconds per wall second (zero when unknown, e.g. dist coordinators,
	// whose shard payloads are opaque).
	SimRate float64 `json:"sim_rate"`
	// ETASeconds extrapolates the remaining wall time from progress so
	// far (zero until the first run completes).
	ETASeconds float64 `json:"eta_seconds"`
	// Done is set on the terminal snapshot.
	Done bool `json:"done"`
	// Workers is the per-worker lease state (dist mode only).
	Workers []WorkerStatus `json:"workers,omitempty"`
	// Cells is the per-cell contention fold (fleet mode only).
	Cells []CellStatus `json:"cells,omitempty"`
}

// WorkerStatus is one distributed worker's coordinator-side state.
type WorkerStatus struct {
	Worker int `json:"worker"`
	// State is the lease state machine phase: "starting", "idle", "busy",
	// "straggler" (lease revoked, second strike armed), or "dead".
	State string `json:"state"`
	// Chunk is the chunk the worker is executing (-1 when none), Attempt
	// how many times that chunk has been granted (retries show as
	// attempt > 1), and Progress the shards received under the current
	// lease.
	Chunk    int `json:"chunk"`
	Attempt  int `json:"attempt,omitempty"`
	Progress int `json:"progress,omitempty"`
}

// CellStatus is one shared cell's attach/overload accounting, published by
// fleet runs once the scheduling fold completes.
type CellStatus struct {
	Cell           int `json:"cell"`
	Attaches       int `json:"attaches"`
	PeakUsers      int `json:"peak_users"`
	OverloadEpochs int `json:"overload_epochs"`
}

// StatusSink receives live telemetry from a running workload: progress
// snapshots and completed runs' metric registries. Implementations must be
// safe for concurrent use — campaign workers publish from many goroutines.
// The Telemetry hub is the standard implementation; the interface keeps
// core/dist decoupled from the HTTP layer.
type StatusSink interface {
	// PublishStatus replaces the current status snapshot. The sink takes
	// ownership of the snapshot's slices; publishers must not mutate them
	// afterwards.
	PublishStatus(StatusSnapshot)
	// ObserveRun folds one completed run's registry into the live metrics
	// surface. The registry must not be mutated afterwards.
	ObserveRun(*Registry)
}

// Telemetry is the live ops hub behind Serve's /metrics, /status and
// /events endpoints: a mutex-guarded merged registry, the latest status
// snapshot, and an SSE subscriber fan-out. It implements StatusSink. The
// zero value is not usable; call NewTelemetry.
type Telemetry struct {
	mu         sync.Mutex
	reg        *Registry
	status     StatusSnapshot
	haveStatus bool
	mode       string
	label      string
	subs       map[int]chan StatusSnapshot
	nextSub    int
	closed     bool
}

// NewTelemetry returns an empty hub.
func NewTelemetry() *Telemetry {
	return &Telemetry{reg: NewRegistry(), subs: make(map[int]chan StatusSnapshot)}
}

// SetLabels sets default Mode/Label values stamped onto published
// snapshots that leave them empty — the workload engines (core, dist)
// don't know what the CLI called them.
func (t *Telemetry) SetLabels(mode, label string) {
	t.mu.Lock()
	t.mode, t.label = mode, label
	t.mu.Unlock()
}

// PublishStatus implements StatusSink: it replaces the snapshot and
// broadcasts it to /events subscribers. Slow subscribers drop snapshots
// rather than block the publisher (the terminal snapshot is re-sent on
// subscribe, so nothing load-bearing is lost).
func (t *Telemetry) PublishStatus(s StatusSnapshot) {
	t.mu.Lock()
	if s.Mode == "" {
		s.Mode = t.mode
	}
	if s.Label == "" {
		s.Label = t.label
	}
	t.status = s
	t.haveStatus = true
	for _, ch := range t.subs {
		select {
		case ch <- s:
		default:
		}
	}
	t.mu.Unlock()
}

// ObserveRun implements StatusSink: it folds one completed run's registry
// into the hub. Live-surface merges are commutative on counts; the float
// histogram sums may differ in the last ulps across completion orders,
// which the live view (unlike the byte-stable campaign exports) tolerates.
func (t *Telemetry) ObserveRun(reg *Registry) {
	if reg == nil {
		return
	}
	t.mu.Lock()
	t.reg.Merge(reg)
	t.mu.Unlock()
}

// Status returns the latest snapshot and whether one has been published.
func (t *Telemetry) Status() (StatusSnapshot, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status, t.haveStatus
}

// SnapshotRegistry returns a deep copy of the merged live registry, safe
// to export without holding the hub lock.
func (t *Telemetry) SnapshotRegistry() *Registry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reg.Clone()
}

// Subscribe registers an /events listener: the returned channel receives
// every subsequent snapshot (dropping under backpressure) and closes when
// the hub shuts down. cancel unregisters; it is idempotent and safe after
// CloseStreams.
func (t *Telemetry) Subscribe() (<-chan StatusSnapshot, func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := make(chan StatusSnapshot, 8)
	if t.closed {
		close(ch)
		return ch, func() {}
	}
	id := t.nextSub
	t.nextSub++
	t.subs[id] = ch
	return ch, func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		if _, ok := t.subs[id]; ok {
			delete(t.subs, id)
			close(ch)
		}
	}
}

// CloseStreams closes every subscriber channel and refuses new ones — the
// server shutdown path, which must unblock in-flight /events handlers so
// http.Server.Shutdown can drain.
func (t *Telemetry) CloseStreams() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for id, ch := range t.subs {
		delete(t.subs, id)
		close(ch)
	}
}
