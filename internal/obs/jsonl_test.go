package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWriteJSONLStableBytes(t *testing.T) {
	meta := RunMeta{Label: "urban-P1-grd-gcc", Run: 2, Seed: 42, Duration: 8 * time.Second, Events: 3, Dropped: 0}
	events := []Event{
		{T: 1500 * time.Microsecond, Kind: KindSend, Dir: DirUp, Seq: 0, Aux: 1200},
		{T: 33 * time.Millisecond, Kind: KindRecv, Dir: DirUp, Seq: 0, Aux: 1200, V: 31.5},
		{T: 40 * time.Millisecond, Kind: KindSend, Dir: DirUp, Flags: FlagCtrl, Seq: 1, Aux: 60},
	}
	want := strings.Join([]string{
		`{"kind":"meta","label":"urban-P1-grd-gcc","run":2,"seed":42,"duration_us":8000000,"events":3,"dropped":0}`,
		`{"t_us":1500,"kind":"send","dir":"up","seq":0,"aux":1200}`,
		`{"t_us":33000,"kind":"recv","dir":"up","seq":0,"aux":1200,"v":31.5}`,
		`{"t_us":40000,"kind":"send","dir":"up","ctrl":true,"seq":1,"aux":60}`,
	}, "\n") + "\n"

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, meta, events); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if got := buf.String(); got != want {
		t.Errorf("JSONL mismatch:\ngot:\n%swant:\n%s", got, want)
	}

	// Rendering the same inputs twice must be byte-identical.
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, meta, events); err != nil {
		t.Fatalf("WriteJSONL (second): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two renderings of the same trace differ")
	}
}

func TestEventKindAndDirStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindSend: "send", KindRecv: "recv", KindDrop: "drop",
		KindOutageStart: "outage-start", KindOutageEnd: "outage-end",
		KindHandover: "handover", KindRLF: "rlf", KindCC: "cc",
		KindFramePlay: "frame-play", KindFrameSkip: "frame-skip", KindStall: "stall",
		Kind(250): "unknown",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	dirs := map[Dir]string{DirNone: "", DirUp: "up", DirDown: "down", DirUp2: "up2"}
	for d, want := range dirs {
		if got := d.String(); got != want {
			t.Errorf("Dir(%d).String() = %q, want %q", d, got, want)
		}
	}
}
