package obs

import (
	"testing"
)

// TestTelemetryLabelStamping: empty Mode/Label pick up the hub defaults;
// producer-set values win.
func TestTelemetryLabelStamping(t *testing.T) {
	tel := NewTelemetry()
	tel.SetLabels("campaign", "urban-gcc")
	tel.PublishStatus(StatusSnapshot{RunsDone: 1})
	st, ok := tel.Status()
	if !ok {
		t.Fatal("no status after publish")
	}
	if st.Mode != "campaign" || st.Label != "urban-gcc" {
		t.Errorf("defaults not stamped: %+v", st)
	}
	tel.PublishStatus(StatusSnapshot{Mode: "dist", Label: "other"})
	if st, _ := tel.Status(); st.Mode != "dist" || st.Label != "other" {
		t.Errorf("producer labels overridden: %+v", st)
	}
}

// TestTelemetryObserveRunIsolation: ObserveRun merges a deep fold — later
// mutation of the hub's snapshot never leaks back, and snapshots of an
// unchanged hub are byte-stable (satellite guarantee for /metrics scrapes).
func TestTelemetryObserveRunIsolation(t *testing.T) {
	tel := NewTelemetry()
	reg := NewRegistry()
	reg.Add("runs", 1)
	reg.LogHistogram("frame_delay_ms").Observe(20)
	tel.ObserveRun(reg)
	tel.ObserveRun(nil) // no-op, not a panic

	snap := tel.SnapshotRegistry()
	if snap.Counter("runs") != 1 {
		t.Fatalf("snapshot counter = %d, want 1", snap.Counter("runs"))
	}
	// Mutating the snapshot must not reach the hub.
	snap.Add("runs", 100)
	snap.LogHistogram("frame_delay_ms").Observe(1)
	again := tel.SnapshotRegistry()
	if again.Counter("runs") != 1 {
		t.Errorf("snapshot mutation leaked into the hub: runs = %d", again.Counter("runs"))
	}
	if again.LogHistogram("frame_delay_ms").Count() != 1 {
		t.Errorf("snapshot mutation leaked into the hub histogram: count = %d",
			again.LogHistogram("frame_delay_ms").Count())
	}
}

// TestTelemetrySubscribe: subscribers receive published snapshots, slow ones
// drop rather than block, cancel is idempotent, and CloseStreams closes every
// channel.
func TestTelemetrySubscribe(t *testing.T) {
	tel := NewTelemetry()
	ch, cancel := tel.Subscribe()
	tel.PublishStatus(StatusSnapshot{RunsDone: 1})
	if st := <-ch; st.RunsDone != 1 {
		t.Errorf("subscriber got %+v", st)
	}

	// Overflow the buffer: publishes beyond the channel capacity drop
	// instead of blocking this goroutine forever.
	for i := 0; i < 50; i++ {
		tel.PublishStatus(StatusSnapshot{RunsDone: i})
	}
	drained := 0
	for {
		select {
		case <-ch:
			drained++
			continue
		default:
		}
		break
	}
	if drained == 0 || drained > 8 {
		t.Errorf("drained %d buffered snapshots, want 1..8", drained)
	}

	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Error("channel still open after cancel")
	}

	ch2, cancel2 := tel.Subscribe()
	tel.CloseStreams()
	tel.CloseStreams() // idempotent
	if _, ok := <-ch2; ok {
		t.Error("channel still open after CloseStreams")
	}
	cancel2() // safe after CloseStreams
	// New subscriptions after shutdown come back pre-closed.
	ch3, _ := tel.Subscribe()
	if _, ok := <-ch3; ok {
		t.Error("post-shutdown subscription channel not closed")
	}
	// Publishing after shutdown is harmless.
	tel.PublishStatus(StatusSnapshot{RunsDone: 99})
}
